// Fuzz harness for the XML front end: the hostile-input surface of the
// whole system (documents arrive from outside; everything downstream
// assumes the hedge the parser built is well formed).
//
// Checked invariants, beyond "no crash / no sanitizer report":
//   - a document that parses also serializes, and the serialization parses
//     again with the same element structure (text nodes may merge when
//     comments separating them are dropped, so only element nodes count);
//   - the streaming parser agrees with the tree parser on acceptance.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "hedge/hedge.h"
#include "xml/xml.h"

namespace {

using namespace hedgeq;

size_t CountElements(const hedge::Hedge& h) {
  size_t n = 0;
  for (hedge::NodeId i = 0; i < h.num_nodes(); ++i) {
    if (h.label(i).kind == hedge::LabelKind::kSymbol) ++n;
  }
  return n;
}

class NullHandler : public xml::XmlHandler {
 public:
  Status StartElement(hedge::SymbolId) override {
    ++elements;
    return Status();
  }
  Status EndElement(hedge::SymbolId) override { return Status(); }
  Status Text(hedge::VarId, std::string_view) override { return Status(); }
  size_t elements = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  xml::XmlParseOptions options;
  options.max_depth = 256;            // recursion bound against nesting bombs
  options.max_input_bytes = size_t{1} << 20;

  hedge::Vocabulary vocab;
  Result<xml::XmlDocument> doc = xml::ParseXml(input, vocab, options);

  hedge::Vocabulary stream_vocab;
  NullHandler handler;
  Status streamed =
      xml::ParseXmlStream(input, stream_vocab, handler, options);
  if (doc.ok() != streamed.ok()) __builtin_trap();

  if (doc.ok() && doc->hedge.num_nodes() > 0) {
    if (handler.elements != CountElements(doc->hedge)) __builtin_trap();
    std::string text = xml::SerializeXml(*doc, vocab);
    Result<xml::XmlDocument> again = xml::ParseXml(text, vocab, options);
    if (!again.ok()) __builtin_trap();
    if (CountElements(again->hedge) != CountElements(doc->hedge)) {
      __builtin_trap();
    }
  }
  return 0;
}
