// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (gcc-only machines). Two modes:
//
//   <harness> file1 [file2 ...]       replay each file through the harness
//   <harness> --smoke <seconds> <dir> load every file in <dir> as a seed,
//                                     then run a deterministic mutation
//                                     loop for the given wall time
//
// The mutation loop is xorshift-driven from a fixed seed, so a given corpus
// replays the same input sequence on every run (modulo how far the clock
// lets it get) — crashes found in CI reproduce locally.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t g_rng = 0x9e3779b97f4a7c15ULL;

uint64_t NextRand() {
  g_rng ^= g_rng << 13;
  g_rng ^= g_rng >> 7;
  g_rng ^= g_rng << 17;
  return g_rng;
}

// Tokens worth splicing into either harness's input: XML scaffolding and
// HRE operators. Structure-aware enough to get past the first parse stages.
const char* kDictionary[] = {
    "<a>",  "</a>", "<a/>",  "<!--", "-->",   "<![CDATA[", "]]>",  "&amp;",
    "&#65;", "a=\"b\"", "<?pi?>", "(",  ")",  "|",  "*",   "+",    "?",
    "{}",   "()",   "$x",    "<",    ">",     "^z",  "@z", "a<%z>",
};

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void RunOne(const std::string& input) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                         input.size());
}

std::string Mutate(const std::vector<std::string>& corpus) {
  std::string out = corpus[NextRand() % corpus.size()];
  size_t rounds = 1 + NextRand() % 4;
  for (size_t r = 0; r < rounds; ++r) {
    switch (NextRand() % 6) {
      case 0:  // flip a byte
        if (!out.empty()) out[NextRand() % out.size()] ^= 1 << (NextRand() % 8);
        break;
      case 1: {  // insert a printable byte
        size_t at = out.empty() ? 0 : NextRand() % out.size();
        out.insert(out.begin() + at,
                   static_cast<char>(' ' + NextRand() % 95));
        break;
      }
      case 2: {  // delete a short range
        if (out.empty()) break;
        size_t at = NextRand() % out.size();
        out.erase(at, 1 + NextRand() % 8);
        break;
      }
      case 3: {  // duplicate a short range
        if (out.empty()) break;
        size_t at = NextRand() % out.size();
        size_t len = 1 + NextRand() % 16;
        out.insert(at, out.substr(at, len));
        break;
      }
      case 4: {  // splice a dictionary token
        const char* token =
            kDictionary[NextRand() % (sizeof(kDictionary) /
                                      sizeof(kDictionary[0]))];
        size_t at = out.empty() ? 0 : NextRand() % out.size();
        out.insert(at, token);
        break;
      }
      case 5: {  // crossover with another seed
        const std::string& other = corpus[NextRand() % corpus.size()];
        if (other.empty()) break;
        size_t cut = NextRand() % (out.size() + 1);
        out = out.substr(0, cut) + other.substr(NextRand() % other.size());
        break;
      }
    }
    if (out.size() > (size_t{1} << 16)) out.resize(size_t{1} << 16);
  }
  return out;
}

int Smoke(int seconds, const std::string& dir) {
  std::vector<std::string> corpus;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) corpus.push_back(ReadAll(entry.path()));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "no corpus files in %s\n", dir.c_str());
    return 1;
  }
  for (const std::string& seed : corpus) RunOne(seed);

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(seconds);
  size_t executions = corpus.size();
  while (std::chrono::steady_clock::now() < deadline) {
    // Check the clock once per batch, not per input.
    for (int i = 0; i < 256; ++i) {
      RunOne(Mutate(corpus));
      ++executions;
    }
  }
  std::printf("smoke ok: %zu inputs, %zu seeds, no crashes\n", executions,
              corpus.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--smoke") == 0) {
    return Smoke(std::atoi(argv[2]), argv[3]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s file...  |  %s --smoke <seconds> <corpus-dir>\n",
                 argv[0], argv[0]);
    return 1;
  }
  for (int i = 1; i < argc; ++i) {
    RunOne(ReadAll(argv[i]));
    std::printf("%s: ok\n", argv[i]);
  }
  return 0;
}
