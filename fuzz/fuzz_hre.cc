// Fuzz harness for the hedge-regular-expression front end and the Lemma 1
// compiler behind it.
//
// Checked invariants, beyond "no crash / no sanitizer report":
//   - HreToString(e) reparses (printer and parser agree on the grammar);
//   - the budgeted compiler either succeeds or fails cleanly, never crashes,
//     on arbitrary accepted expressions;
//   - emptiness is stable across the print/reparse round trip.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "automata/nha.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "util/budget.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace hedgeq;
  if (size > 4096) return 0;  // expressions are small; keep compiles cheap
  std::string_view text(reinterpret_cast<const char*>(data), size);

  hedge::Vocabulary vocab;
  Result<hre::Hre> e = hre::ParseHre(text, vocab);
  if (!e.ok()) return 0;

  std::string printed = hre::HreToString(*e, vocab);
  Result<hre::Hre> again = hre::ParseHre(printed, vocab);
  if (!again.ok()) __builtin_trap();

  ExecBudget budget;
  budget.max_states = size_t{1} << 10;
  budget.max_memory_bytes = size_t{8} << 20;
  budget.max_steps = size_t{1} << 20;
  budget.max_depth = 128;

  BudgetScope scope(budget);
  Result<automata::Nha> nha = hre::CompileHre(*e, scope);
  if (!nha.ok()) return 0;  // clean budget/limit failure is fine
  bool empty = automata::IsEmptyNha(*nha);

  BudgetScope scope2(budget);
  Result<automata::Nha> nha2 = hre::CompileHre(*again, scope2);
  if (nha2.ok() && automata::IsEmptyNha(*nha2) != empty) __builtin_trap();
  return 0;
}
