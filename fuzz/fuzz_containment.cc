// Fuzz harness for the containment-certification pipeline: the input is a
// grammar and two selection queries separated by "\n%%\n" lines. Whenever
// all three parse, QueryContainment runs witnessed, the independent
// checker must accept the verdict it produced, and the containment
// certificate must survive a serialize/deserialize round trip
// byte-identically — any disagreement is a crash.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "hedge/hedge.h"
#include "query/selection.h"
#include "schema/schema.h"
#include "util/budget.h"
#include "verify/certificate.h"
#include "verify/checker.h"

namespace {

constexpr std::string_view kSeparator = "\n%%\n";

// Splits off the prefix before the next separator, or the whole rest.
std::string_view TakeSection(std::string_view* rest) {
  size_t at = rest->find(kSeparator);
  if (at == std::string_view::npos) {
    std::string_view all = *rest;
    *rest = std::string_view();
    return all;
  }
  std::string_view head = rest->substr(0, at);
  rest->remove_prefix(at + kSeparator.size());
  return head;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace hedgeq;
  if (size > 1024) return 0;  // the layered product is expensive; stay small
  std::string_view rest(reinterpret_cast<const char*>(data), size);
  std::string_view grammar = TakeSection(&rest);
  std::string_view q1 = TakeSection(&rest);
  std::string_view q2 = TakeSection(&rest);
  if (q1.empty() || q2.empty()) return 0;

  hedge::Vocabulary vocab;
  Result<schema::Schema> schema = schema::ParseSchema(grammar, vocab);
  if (!schema.ok()) return 0;

  ExecBudget budget;
  budget.max_states = size_t{1} << 9;
  budget.max_memory_bytes = size_t{8} << 20;
  budget.max_steps = size_t{1} << 20;
  budget.max_depth = 64;

  Result<verify::Certificate> cert = verify::BuildContainmentCertificate(
      *schema, q1, q2, vocab, budget);
  if (!cert.ok()) return 0;  // parse/budget failures are clean exits

  if (!verify::CheckCertificate(*cert).empty()) __builtin_trap();

  std::string serialized = verify::SerializeCertificate(*cert, vocab);
  Result<verify::Certificate> back =
      verify::DeserializeCertificate(serialized, vocab);
  if (!back.ok()) __builtin_trap();
  if (verify::SerializeCertificate(*back, vocab) != serialized) {
    __builtin_trap();
  }
  if (!verify::CheckCertificate(*back).empty()) __builtin_trap();
  return 0;
}
