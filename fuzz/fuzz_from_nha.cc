// Fuzz harness for the Lemma 2 direction: every expression the parser
// accepts is compiled to an NHA (Lemma 1), pushed back through the
// witnessed NhaToHre extraction (Lemma 2), and the independent checker
// must accept what the construction produced — a rejection is a crash,
// because it means either a construction bug or a checker bug, both of
// which the fuzzer should surface.
//
// Checked invariants, beyond "no crash / no sanitizer report":
//   - CheckFromNha accepts NhaToHre's own witness;
//   - the packaged from-nha certificate survives a serialize/deserialize
//     round trip byte-identically;
//   - the round-tripped certificate checks clean under BOTH the full and
//     the light checker (light falls through to full for this kind, so a
//     divergence between the two is a dispatch bug).
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "hre/ast.h"
#include "hre/compile.h"
#include "hre/from_nha.h"
#include "util/budget.h"
#include "verify/certificate.h"
#include "verify/checker.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace hedgeq;
  if (size > 512) return 0;  // Lemma 2 is doubly exponential; stay tiny
  std::string_view text(reinterpret_cast<const char*>(data), size);

  hedge::Vocabulary vocab;
  Result<hre::Hre> e = hre::ParseHre(text, vocab);
  if (!e.ok()) return 0;

  ExecBudget budget;
  budget.max_states = size_t{1} << 8;
  budget.max_memory_bytes = size_t{8} << 20;
  budget.max_steps = size_t{1} << 20;
  budget.max_depth = 64;

  BudgetScope scope(budget);
  Result<automata::Nha> nha = hre::CompileHre(*e, scope);
  if (!nha.ok()) return 0;  // clean budget/limit failure is fine

  hre::FromNhaWitness witness;
  Result<hre::Hre> back = hre::NhaToHre(*nha, vocab, &witness);
  if (!back.ok()) return 0;  // split cap / substitution states are fine
  if (!verify::CheckFromNha(*nha, *back, witness).empty()) {
    __builtin_trap();
  }

  Result<verify::Certificate> cert =
      verify::BuildFromNhaCertificate(*nha, vocab);
  if (!cert.ok()) return 0;
  std::string serialized = verify::SerializeCertificate(*cert, vocab);
  Result<verify::Certificate> parsed =
      verify::DeserializeCertificate(serialized, vocab);
  if (!parsed.ok()) __builtin_trap();
  if (verify::SerializeCertificate(*parsed, vocab) != serialized) {
    __builtin_trap();
  }
  if (!verify::CheckCertificate(*parsed).empty()) __builtin_trap();
  if (!verify::CheckCertificateLight(*parsed).empty()) __builtin_trap();
  return 0;
}
