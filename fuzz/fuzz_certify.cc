// Fuzz harness for the translation-validation layer: every expression the
// parser accepts is compiled and pushed through the certified pipeline, and
// the independent checker must accept what the constructions produced — a
// checker rejection is a crash, because it means either a construction bug
// or a checker bug, both of which the fuzzer should surface.
//
// Checked invariants, beyond "no crash / no sanitizer report":
//   - CheckCompile accepts the compiler's own trace;
//   - CheckTrim accepts PruneNha's own witness;
//   - CheckDeterminize accepts the subset construction's own witness;
//   - CheckMinimize accepts the block partition MinimizeDha converged on;
//   - determinize and minimize certificates survive a serialize/deserialize
//     round trip byte-identically and still check clean afterwards.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "util/budget.h"
#include "verify/certificate.h"
#include "verify/checker.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using namespace hedgeq;
  if (size > 2048) return 0;  // certification is quadratic-ish; stay small
  std::string_view text(reinterpret_cast<const char*>(data), size);

  hedge::Vocabulary vocab;
  Result<hre::Hre> e = hre::ParseHre(text, vocab);
  if (!e.ok()) return 0;

  ExecBudget budget;
  budget.max_states = size_t{1} << 9;
  budget.max_memory_bytes = size_t{8} << 20;
  budget.max_steps = size_t{1} << 20;
  budget.max_depth = 128;

  BudgetScope scope(budget);
  hre::CompileTrace trace;
  Result<automata::Nha> nha = hre::CompileHre(*e, scope, &trace);
  if (!nha.ok()) return 0;  // clean budget/limit failure is fine
  if (!verify::CheckCompile(*e, *nha, trace).empty()) __builtin_trap();

  automata::TrimWitness trim;
  automata::Nha trimmed = automata::PruneNha(*nha, nullptr, &trim);
  if (!verify::CheckTrim(*nha, trimmed, trim).empty()) __builtin_trap();

  automata::DeterminizeWitness witness;
  Result<automata::Determinized> det =
      automata::Determinize(*nha, scope, &witness);
  if (!det.ok()) return 0;
  if (!verify::CheckDeterminize(*nha, *det, witness).empty()) {
    __builtin_trap();
  }

  verify::Certificate cert;
  cert.kind = verify::CertificateKind::kDeterminize;
  cert.input = *nha;
  cert.dha = det->dha;
  cert.subsets = det->subsets;
  cert.det = witness;
  std::string serialized = verify::SerializeCertificate(cert, vocab);
  Result<verify::Certificate> back =
      verify::DeserializeCertificate(serialized, vocab);
  if (!back.ok()) __builtin_trap();
  if (verify::SerializeCertificate(*back, vocab) != serialized) {
    __builtin_trap();
  }
  if (!verify::CheckCertificate(*back).empty()) __builtin_trap();

  automata::MinimizeWitness mw;
  automata::Dha minimal = automata::MinimizeDha(det->dha, &mw);
  if (!verify::CheckMinimize(det->dha, minimal, mw).empty()) {
    __builtin_trap();
  }

  verify::Certificate mcert;
  mcert.kind = verify::CertificateKind::kMinimize;
  mcert.min_input = det->dha;
  mcert.min_output = minimal;
  mcert.min = mw;
  std::string mser = verify::SerializeCertificate(mcert, vocab);
  Result<verify::Certificate> mback =
      verify::DeserializeCertificate(mser, vocab);
  if (!mback.ok()) __builtin_trap();
  if (verify::SerializeCertificate(*mback, vocab) != mser) __builtin_trap();
  if (!verify::CheckCertificate(*mback).empty()) __builtin_trap();
  return 0;
}
