file(REMOVE_RECURSE
  "CMakeFiles/regex_simplify_test.dir/regex_simplify_test.cc.o"
  "CMakeFiles/regex_simplify_test.dir/regex_simplify_test.cc.o.d"
  "regex_simplify_test"
  "regex_simplify_test.pdb"
  "regex_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
