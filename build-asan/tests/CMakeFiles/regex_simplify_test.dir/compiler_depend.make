# Empty compiler generated dependencies file for regex_simplify_test.
# This may be replaced when dependencies are built.
