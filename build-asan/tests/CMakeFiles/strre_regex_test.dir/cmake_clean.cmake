file(REMOVE_RECURSE
  "CMakeFiles/strre_regex_test.dir/strre_regex_test.cc.o"
  "CMakeFiles/strre_regex_test.dir/strre_regex_test.cc.o.d"
  "strre_regex_test"
  "strre_regex_test.pdb"
  "strre_regex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strre_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
