# Empty dependencies file for strre_regex_test.
# This may be replaced when dependencies are built.
