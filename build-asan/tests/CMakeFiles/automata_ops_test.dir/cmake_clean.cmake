file(REMOVE_RECURSE
  "CMakeFiles/automata_ops_test.dir/automata_ops_test.cc.o"
  "CMakeFiles/automata_ops_test.dir/automata_ops_test.cc.o.d"
  "automata_ops_test"
  "automata_ops_test.pdb"
  "automata_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
