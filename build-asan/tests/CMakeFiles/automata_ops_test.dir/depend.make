# Empty dependencies file for automata_ops_test.
# This may be replaced when dependencies are built.
