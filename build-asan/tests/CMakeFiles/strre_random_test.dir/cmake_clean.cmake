file(REMOVE_RECURSE
  "CMakeFiles/strre_random_test.dir/strre_random_test.cc.o"
  "CMakeFiles/strre_random_test.dir/strre_random_test.cc.o.d"
  "strre_random_test"
  "strre_random_test.pdb"
  "strre_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strre_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
