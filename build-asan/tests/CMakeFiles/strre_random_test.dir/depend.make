# Empty dependencies file for strre_random_test.
# This may be replaced when dependencies are built.
