file(REMOVE_RECURSE
  "CMakeFiles/pointed_test.dir/pointed_test.cc.o"
  "CMakeFiles/pointed_test.dir/pointed_test.cc.o.d"
  "pointed_test"
  "pointed_test.pdb"
  "pointed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
