# Empty dependencies file for pointed_test.
# This may be replaced when dependencies are built.
