file(REMOVE_RECURSE
  "CMakeFiles/nha_test.dir/nha_test.cc.o"
  "CMakeFiles/nha_test.dir/nha_test.cc.o.d"
  "nha_test"
  "nha_test.pdb"
  "nha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
