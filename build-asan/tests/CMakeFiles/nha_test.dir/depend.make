# Empty dependencies file for nha_test.
# This may be replaced when dependencies are built.
