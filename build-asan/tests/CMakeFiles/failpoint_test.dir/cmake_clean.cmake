file(REMOVE_RECURSE
  "CMakeFiles/failpoint_test.dir/failpoint_test.cc.o"
  "CMakeFiles/failpoint_test.dir/failpoint_test.cc.o.d"
  "failpoint_test"
  "failpoint_test.pdb"
  "failpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
