# Empty compiler generated dependencies file for failpoint_test.
# This may be replaced when dependencies are built.
