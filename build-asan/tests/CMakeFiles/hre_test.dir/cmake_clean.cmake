file(REMOVE_RECURSE
  "CMakeFiles/hre_test.dir/hre_test.cc.o"
  "CMakeFiles/hre_test.dir/hre_test.cc.o.d"
  "hre_test"
  "hre_test.pdb"
  "hre_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hre_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
