# Empty dependencies file for hre_test.
# This may be replaced when dependencies are built.
