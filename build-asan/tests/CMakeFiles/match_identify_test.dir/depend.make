# Empty dependencies file for match_identify_test.
# This may be replaced when dependencies are built.
