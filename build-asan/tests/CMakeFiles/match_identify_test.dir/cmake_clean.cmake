file(REMOVE_RECURSE
  "CMakeFiles/match_identify_test.dir/match_identify_test.cc.o"
  "CMakeFiles/match_identify_test.dir/match_identify_test.cc.o.d"
  "match_identify_test"
  "match_identify_test.pdb"
  "match_identify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_identify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
