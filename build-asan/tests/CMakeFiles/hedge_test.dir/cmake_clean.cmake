file(REMOVE_RECURSE
  "CMakeFiles/hedge_test.dir/hedge_test.cc.o"
  "CMakeFiles/hedge_test.dir/hedge_test.cc.o.d"
  "hedge_test"
  "hedge_test.pdb"
  "hedge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
