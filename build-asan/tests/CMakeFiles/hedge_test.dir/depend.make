# Empty dependencies file for hedge_test.
# This may be replaced when dependencies are built.
