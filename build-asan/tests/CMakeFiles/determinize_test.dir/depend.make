# Empty dependencies file for determinize_test.
# This may be replaced when dependencies are built.
