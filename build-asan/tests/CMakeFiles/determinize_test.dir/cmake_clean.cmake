file(REMOVE_RECURSE
  "CMakeFiles/determinize_test.dir/determinize_test.cc.o"
  "CMakeFiles/determinize_test.dir/determinize_test.cc.o.d"
  "determinize_test"
  "determinize_test.pdb"
  "determinize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
