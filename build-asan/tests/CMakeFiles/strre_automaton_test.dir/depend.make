# Empty dependencies file for strre_automaton_test.
# This may be replaced when dependencies are built.
