file(REMOVE_RECURSE
  "CMakeFiles/strre_automaton_test.dir/strre_automaton_test.cc.o"
  "CMakeFiles/strre_automaton_test.dir/strre_automaton_test.cc.o.d"
  "strre_automaton_test"
  "strre_automaton_test.pdb"
  "strre_automaton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strre_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
