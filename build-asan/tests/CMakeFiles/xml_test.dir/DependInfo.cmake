
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/xml_test.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/xml_test.dir/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/hedgeq_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/strre/CMakeFiles/hedgeq_strre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hedge/CMakeFiles/hedgeq_hedge.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xml/CMakeFiles/hedgeq_xml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/automata/CMakeFiles/hedgeq_automata.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hre/CMakeFiles/hedgeq_hre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/phr/CMakeFiles/hedgeq_phr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/query/CMakeFiles/hedgeq_query.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/schema/CMakeFiles/hedgeq_schema.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/baseline/CMakeFiles/hedgeq_baseline.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/hedgeq_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
