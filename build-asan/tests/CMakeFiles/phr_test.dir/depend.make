# Empty dependencies file for phr_test.
# This may be replaced when dependencies are built.
