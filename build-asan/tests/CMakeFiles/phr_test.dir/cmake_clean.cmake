file(REMOVE_RECURSE
  "CMakeFiles/phr_test.dir/phr_test.cc.o"
  "CMakeFiles/phr_test.dir/phr_test.cc.o.d"
  "phr_test"
  "phr_test.pdb"
  "phr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
