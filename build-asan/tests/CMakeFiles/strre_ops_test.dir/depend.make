# Empty dependencies file for strre_ops_test.
# This may be replaced when dependencies are built.
