file(REMOVE_RECURSE
  "CMakeFiles/strre_ops_test.dir/strre_ops_test.cc.o"
  "CMakeFiles/strre_ops_test.dir/strre_ops_test.cc.o.d"
  "strre_ops_test"
  "strre_ops_test.pdb"
  "strre_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strre_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
