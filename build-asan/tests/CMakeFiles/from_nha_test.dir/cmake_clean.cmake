file(REMOVE_RECURSE
  "CMakeFiles/from_nha_test.dir/from_nha_test.cc.o"
  "CMakeFiles/from_nha_test.dir/from_nha_test.cc.o.d"
  "from_nha_test"
  "from_nha_test.pdb"
  "from_nha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/from_nha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
