# Empty compiler generated dependencies file for from_nha_test.
# This may be replaced when dependencies are built.
