# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for from_nha_test.
