file(REMOVE_RECURSE
  "CMakeFiles/lazy_dha_test.dir/lazy_dha_test.cc.o"
  "CMakeFiles/lazy_dha_test.dir/lazy_dha_test.cc.o.d"
  "lazy_dha_test"
  "lazy_dha_test.pdb"
  "lazy_dha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_dha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
