# Empty dependencies file for lazy_dha_test.
# This may be replaced when dependencies are built.
