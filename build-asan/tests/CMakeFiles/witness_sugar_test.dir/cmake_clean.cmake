file(REMOVE_RECURSE
  "CMakeFiles/witness_sugar_test.dir/witness_sugar_test.cc.o"
  "CMakeFiles/witness_sugar_test.dir/witness_sugar_test.cc.o.d"
  "witness_sugar_test"
  "witness_sugar_test.pdb"
  "witness_sugar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_sugar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
