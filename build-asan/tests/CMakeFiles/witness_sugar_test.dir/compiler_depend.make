# Empty compiler generated dependencies file for witness_sugar_test.
# This may be replaced when dependencies are built.
