# Empty compiler generated dependencies file for hq.
# This may be replaced when dependencies are built.
