file(REMOVE_RECURSE
  "CMakeFiles/hq.dir/hq.cpp.o"
  "CMakeFiles/hq.dir/hq.cpp.o.d"
  "hq"
  "hq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
