# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(hq_gen_and_query "sh" "-c" "/root/repo/build-asan/tools/hq gen article 120 7 > doc.xml && /root/repo/build-asan/tools/hq query 'select(*; figure (section|article)*)' doc.xml | grep -q figure")
set_tests_properties(hq_gen_and_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_xpath "sh" "-c" "/root/repo/build-asan/tools/hq gen article 120 7 > doc2.xml && /root/repo/build-asan/tools/hq xpath '//figure' doc2.xml | grep -q figure")
set_tests_properties(hq_xpath PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_validate "sh" "-c" "/root/repo/build-asan/tools/hq gen article 120 7 > doc3.xml && /root/repo/build-asan/tools/hq validate /root/repo/tools/fixtures/article.grammar doc3.xml | grep -q '^valid'")
set_tests_properties(hq_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_transform_select "sh" "-c" "/root/repo/build-asan/tools/hq transform select /root/repo/tools/fixtures/article.grammar 'select(*; figure (section|article)*)' | grep -q 'figure<N'")
set_tests_properties(hq_transform_select PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_transform_rename "sh" "-c" "/root/repo/build-asan/tools/hq transform rename /root/repo/tools/fixtures/article.grammar 'select(*; figure (section|article)*)' fig | grep -q 'fig<N'")
set_tests_properties(hq_transform_rename PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_transform_delete "sh" "-c" "/root/repo/build-asan/tools/hq transform delete /root/repo/tools/fixtures/article.grammar 'select(*; figure (section|article)*)' | grep -vq figure")
set_tests_properties(hq_transform_delete PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_ambiguous "sh" "-c" "/root/repo/build-asan/tools/hq ambiguous '(a|b)*' | grep -q '^unambiguous' && (/root/repo/build-asan/tools/hq ambiguous 'a|a' | grep -q '^ambiguous')")
set_tests_properties(hq_ambiguous PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_schema_diff "sh" "-c" "/root/repo/build-asan/tools/hq schema-diff /root/repo/tools/fixtures/article.grammar /root/repo/tools/fixtures/article_strict.grammar | grep -q 'strictly included'")
set_tests_properties(hq_schema_diff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_bad_input "sh" "-c" "! /root/repo/build-asan/tools/hq query 'select(' nonexistent.xml 2>/dev/null")
set_tests_properties(hq_bad_input PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_example "sh" "-c" "/root/repo/build-asan/tools/hq example /root/repo/tools/fixtures/article.grammar 'select(*; figure (section|article)*)' | grep -q 'located: figure'")
set_tests_properties(hq_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_contains "sh" "-c" "/root/repo/build-asan/tools/hq contains /root/repo/tools/fixtures/article.grammar 'select(*; figure section article)' 'select(*; figure (section|article)*)' | grep -q '^contained' && ! /root/repo/build-asan/tools/hq contains /root/repo/tools/fixtures/article.grammar 'select(*; figure (section|article)*)' 'select(*; figure section article)' 2>/dev/null | grep -q '^contained'")
set_tests_properties(hq_contains PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(hq_canon "sh" "-c" "/root/repo/build-asan/tools/hq canon /root/repo/tools/fixtures/article.grammar | grep -q 'article<'")
set_tests_properties(hq_canon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;35;add_test;/root/repo/tools/CMakeLists.txt;0;")
