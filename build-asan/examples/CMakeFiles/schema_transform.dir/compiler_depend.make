# Empty compiler generated dependencies file for schema_transform.
# This may be replaced when dependencies are built.
