file(REMOVE_RECURSE
  "CMakeFiles/schema_transform.dir/schema_transform.cpp.o"
  "CMakeFiles/schema_transform.dir/schema_transform.cpp.o.d"
  "schema_transform"
  "schema_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
