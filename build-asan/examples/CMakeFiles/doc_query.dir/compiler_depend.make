# Empty compiler generated dependencies file for doc_query.
# This may be replaced when dependencies are built.
