file(REMOVE_RECURSE
  "CMakeFiles/doc_query.dir/doc_query.cpp.o"
  "CMakeFiles/doc_query.dir/doc_query.cpp.o.d"
  "doc_query"
  "doc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
