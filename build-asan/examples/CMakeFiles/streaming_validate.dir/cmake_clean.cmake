file(REMOVE_RECURSE
  "CMakeFiles/streaming_validate.dir/streaming_validate.cpp.o"
  "CMakeFiles/streaming_validate.dir/streaming_validate.cpp.o.d"
  "streaming_validate"
  "streaming_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
