# Empty compiler generated dependencies file for streaming_validate.
# This may be replaced when dependencies are built.
