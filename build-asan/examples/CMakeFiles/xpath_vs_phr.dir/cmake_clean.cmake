file(REMOVE_RECURSE
  "CMakeFiles/xpath_vs_phr.dir/xpath_vs_phr.cpp.o"
  "CMakeFiles/xpath_vs_phr.dir/xpath_vs_phr.cpp.o.d"
  "xpath_vs_phr"
  "xpath_vs_phr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_vs_phr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
