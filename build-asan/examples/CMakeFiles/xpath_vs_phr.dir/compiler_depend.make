# Empty compiler generated dependencies file for xpath_vs_phr.
# This may be replaced when dependencies are built.
