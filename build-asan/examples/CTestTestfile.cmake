# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-asan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-asan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_doc_query "/root/repo/build-asan/examples/doc_query" "800")
set_tests_properties(example_doc_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_transform "/root/repo/build-asan/examples/schema_transform")
set_tests_properties(example_schema_transform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xpath_vs_phr "/root/repo/build-asan/examples/xpath_vs_phr")
set_tests_properties(example_xpath_vs_phr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_validate "/root/repo/build-asan/examples/streaming_validate" "20000")
set_tests_properties(example_streaming_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
