# Empty compiler generated dependencies file for bench_schema_transform.
# This may be replaced when dependencies are built.
