file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_transform.dir/bench_schema_transform.cc.o"
  "CMakeFiles/bench_schema_transform.dir/bench_schema_transform.cc.o.d"
  "bench_schema_transform"
  "bench_schema_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
