# Empty compiler generated dependencies file for bench_hre_compile.
# This may be replaced when dependencies are built.
