file(REMOVE_RECURSE
  "CMakeFiles/bench_hre_compile.dir/bench_hre_compile.cc.o"
  "CMakeFiles/bench_hre_compile.dir/bench_hre_compile.cc.o.d"
  "bench_hre_compile"
  "bench_hre_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hre_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
