file(REMOVE_RECURSE
  "CMakeFiles/bench_xpath_baseline.dir/bench_xpath_baseline.cc.o"
  "CMakeFiles/bench_xpath_baseline.dir/bench_xpath_baseline.cc.o.d"
  "bench_xpath_baseline"
  "bench_xpath_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xpath_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
