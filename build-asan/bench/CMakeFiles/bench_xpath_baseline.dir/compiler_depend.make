# Empty compiler generated dependencies file for bench_xpath_baseline.
# This may be replaced when dependencies are built.
