file(REMOVE_RECURSE
  "CMakeFiles/bench_determinize.dir/bench_determinize.cc.o"
  "CMakeFiles/bench_determinize.dir/bench_determinize.cc.o.d"
  "bench_determinize"
  "bench_determinize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_determinize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
