# Empty compiler generated dependencies file for bench_determinize.
# This may be replaced when dependencies are built.
