# Empty dependencies file for bench_dha_run.
# This may be replaced when dependencies are built.
