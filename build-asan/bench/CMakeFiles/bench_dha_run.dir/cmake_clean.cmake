file(REMOVE_RECURSE
  "CMakeFiles/bench_dha_run.dir/bench_dha_run.cc.o"
  "CMakeFiles/bench_dha_run.dir/bench_dha_run.cc.o.d"
  "bench_dha_run"
  "bench_dha_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dha_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
