file(REMOVE_RECURSE
  "CMakeFiles/bench_streaming.dir/bench_streaming.cc.o"
  "CMakeFiles/bench_streaming.dir/bench_streaming.cc.o.d"
  "bench_streaming"
  "bench_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
