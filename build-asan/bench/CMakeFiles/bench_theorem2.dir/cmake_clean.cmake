file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem2.dir/bench_theorem2.cc.o"
  "CMakeFiles/bench_theorem2.dir/bench_theorem2.cc.o.d"
  "bench_theorem2"
  "bench_theorem2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
