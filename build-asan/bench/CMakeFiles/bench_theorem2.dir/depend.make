# Empty dependencies file for bench_theorem2.
# This may be replaced when dependencies are built.
