# Empty compiler generated dependencies file for bench_phr_eval.
# This may be replaced when dependencies are built.
