file(REMOVE_RECURSE
  "CMakeFiles/bench_phr_eval.dir/bench_phr_eval.cc.o"
  "CMakeFiles/bench_phr_eval.dir/bench_phr_eval.cc.o.d"
  "bench_phr_eval"
  "bench_phr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
