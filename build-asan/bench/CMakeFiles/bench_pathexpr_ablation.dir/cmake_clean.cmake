file(REMOVE_RECURSE
  "CMakeFiles/bench_pathexpr_ablation.dir/bench_pathexpr_ablation.cc.o"
  "CMakeFiles/bench_pathexpr_ablation.dir/bench_pathexpr_ablation.cc.o.d"
  "bench_pathexpr_ablation"
  "bench_pathexpr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathexpr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
