# Empty dependencies file for bench_pathexpr_ablation.
# This may be replaced when dependencies are built.
