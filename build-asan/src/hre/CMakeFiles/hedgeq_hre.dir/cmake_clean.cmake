file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_hre.dir/ast.cc.o"
  "CMakeFiles/hedgeq_hre.dir/ast.cc.o.d"
  "CMakeFiles/hedgeq_hre.dir/compile.cc.o"
  "CMakeFiles/hedgeq_hre.dir/compile.cc.o.d"
  "CMakeFiles/hedgeq_hre.dir/from_nha.cc.o"
  "CMakeFiles/hedgeq_hre.dir/from_nha.cc.o.d"
  "CMakeFiles/hedgeq_hre.dir/sugar.cc.o"
  "CMakeFiles/hedgeq_hre.dir/sugar.cc.o.d"
  "libhedgeq_hre.a"
  "libhedgeq_hre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_hre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
