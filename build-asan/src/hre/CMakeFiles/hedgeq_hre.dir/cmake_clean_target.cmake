file(REMOVE_RECURSE
  "libhedgeq_hre.a"
)
