
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hre/ast.cc" "src/hre/CMakeFiles/hedgeq_hre.dir/ast.cc.o" "gcc" "src/hre/CMakeFiles/hedgeq_hre.dir/ast.cc.o.d"
  "/root/repo/src/hre/compile.cc" "src/hre/CMakeFiles/hedgeq_hre.dir/compile.cc.o" "gcc" "src/hre/CMakeFiles/hedgeq_hre.dir/compile.cc.o.d"
  "/root/repo/src/hre/from_nha.cc" "src/hre/CMakeFiles/hedgeq_hre.dir/from_nha.cc.o" "gcc" "src/hre/CMakeFiles/hedgeq_hre.dir/from_nha.cc.o.d"
  "/root/repo/src/hre/sugar.cc" "src/hre/CMakeFiles/hedgeq_hre.dir/sugar.cc.o" "gcc" "src/hre/CMakeFiles/hedgeq_hre.dir/sugar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/automata/CMakeFiles/hedgeq_automata.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/strre/CMakeFiles/hedgeq_strre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hedge/CMakeFiles/hedgeq_hedge.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/hedgeq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
