# Empty dependencies file for hedgeq_hre.
# This may be replaced when dependencies are built.
