# Empty dependencies file for hedgeq_query.
# This may be replaced when dependencies are built.
