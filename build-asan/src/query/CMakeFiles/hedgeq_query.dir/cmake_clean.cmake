file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_query.dir/boolean.cc.o"
  "CMakeFiles/hedgeq_query.dir/boolean.cc.o.d"
  "CMakeFiles/hedgeq_query.dir/evaluator.cc.o"
  "CMakeFiles/hedgeq_query.dir/evaluator.cc.o.d"
  "CMakeFiles/hedgeq_query.dir/lazy_phr.cc.o"
  "CMakeFiles/hedgeq_query.dir/lazy_phr.cc.o.d"
  "CMakeFiles/hedgeq_query.dir/phr_compile.cc.o"
  "CMakeFiles/hedgeq_query.dir/phr_compile.cc.o.d"
  "CMakeFiles/hedgeq_query.dir/selection.cc.o"
  "CMakeFiles/hedgeq_query.dir/selection.cc.o.d"
  "libhedgeq_query.a"
  "libhedgeq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
