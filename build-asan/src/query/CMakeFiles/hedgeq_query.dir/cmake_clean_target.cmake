file(REMOVE_RECURSE
  "libhedgeq_query.a"
)
