
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/boolean.cc" "src/query/CMakeFiles/hedgeq_query.dir/boolean.cc.o" "gcc" "src/query/CMakeFiles/hedgeq_query.dir/boolean.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "src/query/CMakeFiles/hedgeq_query.dir/evaluator.cc.o" "gcc" "src/query/CMakeFiles/hedgeq_query.dir/evaluator.cc.o.d"
  "/root/repo/src/query/lazy_phr.cc" "src/query/CMakeFiles/hedgeq_query.dir/lazy_phr.cc.o" "gcc" "src/query/CMakeFiles/hedgeq_query.dir/lazy_phr.cc.o.d"
  "/root/repo/src/query/phr_compile.cc" "src/query/CMakeFiles/hedgeq_query.dir/phr_compile.cc.o" "gcc" "src/query/CMakeFiles/hedgeq_query.dir/phr_compile.cc.o.d"
  "/root/repo/src/query/selection.cc" "src/query/CMakeFiles/hedgeq_query.dir/selection.cc.o" "gcc" "src/query/CMakeFiles/hedgeq_query.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/phr/CMakeFiles/hedgeq_phr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hre/CMakeFiles/hedgeq_hre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/automata/CMakeFiles/hedgeq_automata.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/strre/CMakeFiles/hedgeq_strre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hedge/CMakeFiles/hedgeq_hedge.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/hedgeq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
