file(REMOVE_RECURSE
  "libhedgeq_util.a"
)
