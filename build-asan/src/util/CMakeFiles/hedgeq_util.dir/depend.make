# Empty dependencies file for hedgeq_util.
# This may be replaced when dependencies are built.
