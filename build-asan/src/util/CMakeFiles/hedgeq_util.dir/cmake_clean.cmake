file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_util.dir/bitset.cc.o"
  "CMakeFiles/hedgeq_util.dir/bitset.cc.o.d"
  "CMakeFiles/hedgeq_util.dir/budget.cc.o"
  "CMakeFiles/hedgeq_util.dir/budget.cc.o.d"
  "CMakeFiles/hedgeq_util.dir/failpoint.cc.o"
  "CMakeFiles/hedgeq_util.dir/failpoint.cc.o.d"
  "CMakeFiles/hedgeq_util.dir/interner.cc.o"
  "CMakeFiles/hedgeq_util.dir/interner.cc.o.d"
  "CMakeFiles/hedgeq_util.dir/status.cc.o"
  "CMakeFiles/hedgeq_util.dir/status.cc.o.d"
  "CMakeFiles/hedgeq_util.dir/strings.cc.o"
  "CMakeFiles/hedgeq_util.dir/strings.cc.o.d"
  "libhedgeq_util.a"
  "libhedgeq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
