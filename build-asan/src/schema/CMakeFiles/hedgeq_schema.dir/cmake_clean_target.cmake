file(REMOVE_RECURSE
  "libhedgeq_schema.a"
)
