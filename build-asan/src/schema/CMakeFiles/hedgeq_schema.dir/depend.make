# Empty dependencies file for hedgeq_schema.
# This may be replaced when dependencies are built.
