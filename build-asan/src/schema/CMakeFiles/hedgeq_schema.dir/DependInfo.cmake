
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/algebra.cc" "src/schema/CMakeFiles/hedgeq_schema.dir/algebra.cc.o" "gcc" "src/schema/CMakeFiles/hedgeq_schema.dir/algebra.cc.o.d"
  "/root/repo/src/schema/match_identify.cc" "src/schema/CMakeFiles/hedgeq_schema.dir/match_identify.cc.o" "gcc" "src/schema/CMakeFiles/hedgeq_schema.dir/match_identify.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/schema/CMakeFiles/hedgeq_schema.dir/schema.cc.o" "gcc" "src/schema/CMakeFiles/hedgeq_schema.dir/schema.cc.o.d"
  "/root/repo/src/schema/streaming.cc" "src/schema/CMakeFiles/hedgeq_schema.dir/streaming.cc.o" "gcc" "src/schema/CMakeFiles/hedgeq_schema.dir/streaming.cc.o.d"
  "/root/repo/src/schema/transform.cc" "src/schema/CMakeFiles/hedgeq_schema.dir/transform.cc.o" "gcc" "src/schema/CMakeFiles/hedgeq_schema.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/query/CMakeFiles/hedgeq_query.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/xml/CMakeFiles/hedgeq_xml.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/phr/CMakeFiles/hedgeq_phr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hre/CMakeFiles/hedgeq_hre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/automata/CMakeFiles/hedgeq_automata.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/strre/CMakeFiles/hedgeq_strre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hedge/CMakeFiles/hedgeq_hedge.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/hedgeq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
