file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_schema.dir/algebra.cc.o"
  "CMakeFiles/hedgeq_schema.dir/algebra.cc.o.d"
  "CMakeFiles/hedgeq_schema.dir/match_identify.cc.o"
  "CMakeFiles/hedgeq_schema.dir/match_identify.cc.o.d"
  "CMakeFiles/hedgeq_schema.dir/schema.cc.o"
  "CMakeFiles/hedgeq_schema.dir/schema.cc.o.d"
  "CMakeFiles/hedgeq_schema.dir/streaming.cc.o"
  "CMakeFiles/hedgeq_schema.dir/streaming.cc.o.d"
  "CMakeFiles/hedgeq_schema.dir/transform.cc.o"
  "CMakeFiles/hedgeq_schema.dir/transform.cc.o.d"
  "libhedgeq_schema.a"
  "libhedgeq_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
