# Empty dependencies file for hedgeq_baseline.
# This may be replaced when dependencies are built.
