file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_baseline.dir/translate.cc.o"
  "CMakeFiles/hedgeq_baseline.dir/translate.cc.o.d"
  "CMakeFiles/hedgeq_baseline.dir/xpath.cc.o"
  "CMakeFiles/hedgeq_baseline.dir/xpath.cc.o.d"
  "libhedgeq_baseline.a"
  "libhedgeq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
