file(REMOVE_RECURSE
  "libhedgeq_baseline.a"
)
