file(REMOVE_RECURSE
  "libhedgeq_xml.a"
)
