# Empty dependencies file for hedgeq_xml.
# This may be replaced when dependencies are built.
