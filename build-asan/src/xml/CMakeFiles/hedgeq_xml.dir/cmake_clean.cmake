file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_xml.dir/xml.cc.o"
  "CMakeFiles/hedgeq_xml.dir/xml.cc.o.d"
  "libhedgeq_xml.a"
  "libhedgeq_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
