file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_automata.dir/analysis.cc.o"
  "CMakeFiles/hedgeq_automata.dir/analysis.cc.o.d"
  "CMakeFiles/hedgeq_automata.dir/content_union.cc.o"
  "CMakeFiles/hedgeq_automata.dir/content_union.cc.o.d"
  "CMakeFiles/hedgeq_automata.dir/determinize.cc.o"
  "CMakeFiles/hedgeq_automata.dir/determinize.cc.o.d"
  "CMakeFiles/hedgeq_automata.dir/dha.cc.o"
  "CMakeFiles/hedgeq_automata.dir/dha.cc.o.d"
  "CMakeFiles/hedgeq_automata.dir/lazy_dha.cc.o"
  "CMakeFiles/hedgeq_automata.dir/lazy_dha.cc.o.d"
  "CMakeFiles/hedgeq_automata.dir/nha.cc.o"
  "CMakeFiles/hedgeq_automata.dir/nha.cc.o.d"
  "CMakeFiles/hedgeq_automata.dir/serialize.cc.o"
  "CMakeFiles/hedgeq_automata.dir/serialize.cc.o.d"
  "libhedgeq_automata.a"
  "libhedgeq_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
