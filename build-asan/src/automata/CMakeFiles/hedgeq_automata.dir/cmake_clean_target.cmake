file(REMOVE_RECURSE
  "libhedgeq_automata.a"
)
