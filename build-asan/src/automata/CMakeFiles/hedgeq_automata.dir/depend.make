# Empty dependencies file for hedgeq_automata.
# This may be replaced when dependencies are built.
