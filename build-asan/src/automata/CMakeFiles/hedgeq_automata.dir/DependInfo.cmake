
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/analysis.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/analysis.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/analysis.cc.o.d"
  "/root/repo/src/automata/content_union.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/content_union.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/content_union.cc.o.d"
  "/root/repo/src/automata/determinize.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/determinize.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/determinize.cc.o.d"
  "/root/repo/src/automata/dha.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/dha.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/dha.cc.o.d"
  "/root/repo/src/automata/lazy_dha.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/lazy_dha.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/lazy_dha.cc.o.d"
  "/root/repo/src/automata/nha.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/nha.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/nha.cc.o.d"
  "/root/repo/src/automata/serialize.cc" "src/automata/CMakeFiles/hedgeq_automata.dir/serialize.cc.o" "gcc" "src/automata/CMakeFiles/hedgeq_automata.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/strre/CMakeFiles/hedgeq_strre.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/hedge/CMakeFiles/hedgeq_hedge.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/hedgeq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
