file(REMOVE_RECURSE
  "libhedgeq_hedge.a"
)
