# Empty dependencies file for hedgeq_hedge.
# This may be replaced when dependencies are built.
