
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hedge/hedge.cc" "src/hedge/CMakeFiles/hedgeq_hedge.dir/hedge.cc.o" "gcc" "src/hedge/CMakeFiles/hedgeq_hedge.dir/hedge.cc.o.d"
  "/root/repo/src/hedge/pointed.cc" "src/hedge/CMakeFiles/hedgeq_hedge.dir/pointed.cc.o" "gcc" "src/hedge/CMakeFiles/hedgeq_hedge.dir/pointed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/hedgeq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
