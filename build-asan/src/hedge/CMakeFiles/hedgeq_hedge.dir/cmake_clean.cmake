file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_hedge.dir/hedge.cc.o"
  "CMakeFiles/hedgeq_hedge.dir/hedge.cc.o.d"
  "CMakeFiles/hedgeq_hedge.dir/pointed.cc.o"
  "CMakeFiles/hedgeq_hedge.dir/pointed.cc.o.d"
  "libhedgeq_hedge.a"
  "libhedgeq_hedge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_hedge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
