# Empty dependencies file for hedgeq_workload.
# This may be replaced when dependencies are built.
