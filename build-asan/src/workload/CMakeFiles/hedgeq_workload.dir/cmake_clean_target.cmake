file(REMOVE_RECURSE
  "libhedgeq_workload.a"
)
