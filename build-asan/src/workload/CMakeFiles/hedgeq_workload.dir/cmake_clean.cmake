file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_workload.dir/generators.cc.o"
  "CMakeFiles/hedgeq_workload.dir/generators.cc.o.d"
  "libhedgeq_workload.a"
  "libhedgeq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
