file(REMOVE_RECURSE
  "libhedgeq_strre.a"
)
