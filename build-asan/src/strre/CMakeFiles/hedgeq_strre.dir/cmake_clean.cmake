file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_strre.dir/automaton.cc.o"
  "CMakeFiles/hedgeq_strre.dir/automaton.cc.o.d"
  "CMakeFiles/hedgeq_strre.dir/ops.cc.o"
  "CMakeFiles/hedgeq_strre.dir/ops.cc.o.d"
  "CMakeFiles/hedgeq_strre.dir/regex.cc.o"
  "CMakeFiles/hedgeq_strre.dir/regex.cc.o.d"
  "libhedgeq_strre.a"
  "libhedgeq_strre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_strre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
