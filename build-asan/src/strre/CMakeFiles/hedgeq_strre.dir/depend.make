# Empty dependencies file for hedgeq_strre.
# This may be replaced when dependencies are built.
