# CMake generated Testfile for 
# Source directory: /root/repo/src/phr
# Build directory: /root/repo/build-asan/src/phr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
