file(REMOVE_RECURSE
  "libhedgeq_phr.a"
)
