# Empty dependencies file for hedgeq_phr.
# This may be replaced when dependencies are built.
