file(REMOVE_RECURSE
  "CMakeFiles/hedgeq_phr.dir/phr.cc.o"
  "CMakeFiles/hedgeq_phr.dir/phr.cc.o.d"
  "libhedgeq_phr.a"
  "libhedgeq_phr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedgeq_phr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
