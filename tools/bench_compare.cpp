// bench_compare — regression gate over the BENCH_<name>.json artifacts
// that HEDGEQ_BENCH_MAIN writes (see bench/bench_util.h and
// docs/OBSERVABILITY.md).
//
//   bench_compare [--fail-pct=25] [--warn-pct=10] BASELINE CURRENT
//
// BASELINE and CURRENT are either two artifact files or two directories of
// them (matched by file name: the checked-in bench/baselines/ tree against
// a fresh bench-out/). Every benchmark present in both reports is compared
// on real_time and cpu_time, normalized by the report's time_unit:
//
//   exit 0   no metric slowed down past --warn-pct
//   exit 1   at least one metric slowed down past --fail-pct
//   exit 2   usage or parse error (a gate that cannot read its input must
//            not report "no regression")
//
// Slowdowns between the thresholds print as warnings but stay exit 0, so
// CI can keep advisory families visible without going red on machine
// noise; speedups are reported and never fail. Benchmarks that exist only
// on one side are listed (renames shouldn't silently shrink coverage) but
// do not fail the gate.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using hedgeq::obs::json::Parse;
using hedgeq::obs::json::Value;
using hedgeq::obs::json::ValuePtr;

struct Sample {
  double real_time_ns = 0;
  double cpu_time_ns = 0;
};

// One artifact: benchmark name -> timings, already in nanoseconds.
using Report = std::map<std::string, Sample>;

double UnitToNs(const std::string& unit) {
  if (unit == "ns") return 1;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1;  // google-benchmark default is ns
}

bool LoadReport(const std::string& path, Report& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto parsed = Parse(ss.str());
  if (!parsed.ok()) {
    error = path + ": " + parsed.status().ToString();
    return false;
  }
  const Value* report = (*parsed)->Get("report");
  if (report == nullptr) {
    error = path + ": no \"report\" key (not a BENCH_*.json artifact?)";
    return false;
  }
  const Value* benchmarks = report->Get("benchmarks");
  if (benchmarks == nullptr) {
    // A bench binary that registered nothing still writes "report": null;
    // treat it as an empty (comparable) report.
    return true;
  }
  for (const ValuePtr& entry : benchmarks->array()) {
    const Value* name = entry->Get("name");
    const Value* real_time = entry->Get("real_time");
    const Value* cpu_time = entry->Get("cpu_time");
    if (name == nullptr || real_time == nullptr || cpu_time == nullptr) {
      continue;
    }
    // Repetition aggregates (mean/median/stddev) describe the same runs
    // the plain entries do; comparing both would double-report.
    if (const Value* run_type = entry->Get("run_type");
        run_type != nullptr && run_type->string() == "aggregate") {
      continue;
    }
    const Value* unit = entry->Get("time_unit");
    const double to_ns = UnitToNs(unit != nullptr ? unit->string() : "ns");
    Sample s;
    s.real_time_ns = real_time->number() * to_ns;
    s.cpu_time_ns = cpu_time->number() * to_ns;
    out[name->string()] = s;
  }
  return true;
}

struct Thresholds {
  double fail_pct = 25;
  double warn_pct = 10;
};

// Compares one artifact pair; prints per-metric verdicts. Returns the
// number of hard failures.
int ComparePair(const std::string& label, const Report& base,
                const Report& cur, const Thresholds& t) {
  int failures = 0;
  for (const auto& [name, b] : base) {
    auto it = cur.find(name);
    if (it == cur.end()) {
      std::printf("MISSING %s: %s (in baseline, not in current)\n",
                  label.c_str(), name.c_str());
      continue;
    }
    const Sample& c = it->second;
    const struct {
      const char* metric;
      double base_ns;
      double cur_ns;
    } rows[] = {
        {"real_time", b.real_time_ns, c.real_time_ns},
        {"cpu_time", b.cpu_time_ns, c.cpu_time_ns},
    };
    for (const auto& row : rows) {
      if (row.base_ns <= 0) continue;  // nothing to normalize against
      const double delta_pct = (row.cur_ns - row.base_ns) / row.base_ns * 100;
      if (delta_pct > t.fail_pct) {
        std::printf("FAIL %s: %s %s %+.1f%% (%.0f ns -> %.0f ns)\n",
                    label.c_str(), name.c_str(), row.metric, delta_pct,
                    row.base_ns, row.cur_ns);
        ++failures;
      } else if (delta_pct > t.warn_pct) {
        std::printf("WARN %s: %s %s %+.1f%% (%.0f ns -> %.0f ns)\n",
                    label.c_str(), name.c_str(), row.metric, delta_pct,
                    row.base_ns, row.cur_ns);
      } else if (delta_pct < -t.warn_pct) {
        std::printf("good %s: %s %s %+.1f%%\n", label.c_str(), name.c_str(),
                    row.metric, delta_pct);
      }
    }
  }
  for (const auto& [name, c] : cur) {
    (void)c;
    if (base.find(name) == base.end()) {
      std::printf("NEW %s: %s (not in baseline)\n", label.c_str(),
                  name.c_str());
    }
  }
  return failures;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [--fail-pct=25] [--warn-pct=10] BASELINE CURRENT\n"
      "  BASELINE/CURRENT: two BENCH_*.json artifacts, or two directories\n"
      "  of them (compared pairwise by file name)\n"
      "exit: 0 = within thresholds, 1 = regression past --fail-pct,\n"
      "      2 = usage/parse error\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Thresholds thresholds;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--fail-pct=", 0) == 0) {
      thresholds.fail_pct = std::atof(a.c_str() + sizeof("--fail-pct=") - 1);
    } else if (a.rfind("--warn-pct=", 0) == 0) {
      thresholds.warn_pct = std::atof(a.c_str() + sizeof("--warn-pct=") - 1);
    } else if (a.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(a);
    }
  }
  if (paths.size() != 2) return Usage();

  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> pairs;  // label -> files
  std::error_code ec;
  const bool base_dir = fs::is_directory(paths[0], ec);
  const bool cur_dir = fs::is_directory(paths[1], ec);
  if (base_dir != cur_dir) {
    std::fprintf(stderr,
                 "bench_compare: %s and %s must both be files or both be "
                 "directories\n",
                 paths[0].c_str(), paths[1].c_str());
    return 2;
  }
  int failures = 0;
  int compared = 0;
  auto compare_files = [&](const std::string& label, const std::string& base,
                           const std::string& cur) -> bool {
    Report b, c;
    std::string error;
    if (!LoadReport(base, b, error) || !LoadReport(cur, c, error)) {
      std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
      return false;
    }
    failures += ComparePair(label, b, c, thresholds);
    ++compared;
    return true;
  };
  if (base_dir) {
    for (const fs::directory_entry& entry : fs::directory_iterator(paths[0])) {
      const std::string file = entry.path().filename().string();
      if (file.rfind("BENCH_", 0) != 0 ||
          file.find(".json") == std::string::npos) {
        continue;
      }
      const fs::path cur = fs::path(paths[1]) / file;
      if (!fs::exists(cur, ec)) {
        std::printf("MISSING %s: no current artifact\n", file.c_str());
        continue;
      }
      if (!compare_files(file, entry.path().string(), cur.string())) return 2;
    }
  } else {
    if (!compare_files(fs::path(paths[0]).filename().string(), paths[0],
                       paths[1])) {
      return 2;
    }
  }
  std::printf("bench_compare: %d artifact(s) compared, %d failure(s) "
              "(fail>%.0f%%, warn>%.0f%%)\n",
              compared, failures, thresholds.fail_pct, thresholds.warn_pct);
  return failures > 0 ? 1 : 0;
}
