// hedgeq_lint — static analyzer front end for the hedgeq library.
//
//   hedgeq_lint expr '<hedge regular expression>'
//   hedgeq_lint query '<selection query>' [schema.grammar]
//   hedgeq_lint schema file.grammar
//   hedgeq_lint overlap schema.grammar '<q1>' '<q2>'
//   hedgeq_lint from-json report.json
//
// Findings print one per line ("error[HQL001] <span>: <message> ...");
// pass --json anywhere to emit the structured report instead. `from-json`
// re-reads a previously emitted report, so CI can gate on archived runs.
//
// Exit codes: 0 when no finding is error-severity (notes and warnings are
// advisory), 2 when at least one error-severity finding exists, 1 on usage
// or parse errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hre/ast.h"
#include "lint/lint.h"
#include "query/selection.h"
#include "schema/schema.h"

#include "obs_cli.h"

namespace {

using namespace hedgeq;

// Process-wide --metrics/--trace state; flushed by its destructor on exit.
tools::ObsCli g_obs;

int Fail(const std::string& message) {
  std::fprintf(stderr, "hedgeq_lint: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<schema::Schema> LoadSchema(const std::string& path,
                                  hedge::Vocabulary& vocab) {
  Result<std::string> grammar = ReadFile(path);
  if (!grammar.ok()) return grammar.status();
  return schema::ParseSchema(*grammar, vocab);
}

// Prints the report and returns the process exit code.
int Emit(const std::vector<lint::Diagnostic>& diagnostics, bool json) {
  if (json) {
    if (g_obs.metrics_requested()) {
      // --json --metrics: one merged object so consumers get findings and
      // the metrics snapshot in a single document. Without --metrics the
      // output stays the bare diagnostics array (round-trips via
      // from-json).
      std::printf("{\"diagnostics\": %s,\n\"obs\": %s}\n",
                  lint::DiagnosticsToJson(diagnostics).c_str(),
                  g_obs.TakeMetricsJson().c_str());
    } else {
      std::printf("%s", lint::DiagnosticsToJson(diagnostics).c_str());
    }
  } else {
    for (const lint::Diagnostic& d : diagnostics) {
      std::printf("%s\n", lint::FormatDiagnostic(d).c_str());
    }
    if (diagnostics.empty()) std::printf("clean: no findings\n");
  }
  return lint::HasErrors(diagnostics) ? 2 : 0;
}

int CmdExpr(const std::string& expr, bool json) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(expr, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  lint::LintReport report = lint::LintExpression(*e, vocab);
  return Emit(report.diagnostics, json);
}

int CmdQuery(const std::string& query_text, const char* schema_file,
             bool json) {
  hedge::Vocabulary vocab;
  auto query = query::ParseSelectionQuery(query_text, vocab);
  if (!query.ok()) return Fail(query.status().ToString());
  if (schema_file == nullptr) {
    lint::LintReport report = lint::LintSelectionQuery(*query, vocab);
    return Emit(report.diagnostics, json);
  }
  auto schema = LoadSchema(schema_file, vocab);
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto report = lint::LintQueryUnderSchema(*schema, *query, vocab);
  if (!report.ok()) return Fail(report.status().ToString());
  return Emit(report->diagnostics, json);
}

int CmdSchema(const std::string& schema_file, bool json) {
  hedge::Vocabulary vocab;
  auto schema = LoadSchema(schema_file, vocab);
  if (!schema.ok()) return Fail(schema.status().ToString());
  lint::LintReport report = lint::LintSchema(*schema, vocab);
  return Emit(report.diagnostics, json);
}

int CmdOverlap(const std::string& schema_file, const std::string& q1_text,
               const std::string& q2_text, bool json) {
  hedge::Vocabulary vocab;
  auto schema = LoadSchema(schema_file, vocab);
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto q1 = query::ParseSelectionQuery(q1_text, vocab);
  if (!q1.ok()) return Fail(q1.status().ToString());
  auto q2 = query::ParseSelectionQuery(q2_text, vocab);
  if (!q2.ok()) return Fail(q2.status().ToString());
  auto report = lint::LintQueryOverlap(*schema, *q1, *q2, vocab);
  if (!report.ok()) return Fail(report.status().ToString());
  return Emit(report->diagnostics, json);
}

int CmdSchemaOverlap(const std::string& a_file, const std::string& b_file,
                     bool json) {
  hedge::Vocabulary vocab;
  auto a = LoadSchema(a_file, vocab);
  if (!a.ok()) return Fail(a.status().ToString());
  auto b = LoadSchema(b_file, vocab);
  if (!b.ok()) return Fail(b.status().ToString());
  auto report = lint::LintSchemaOverlap(*a, *b, vocab);
  if (!report.ok()) return Fail(report.status().ToString());
  return Emit(report->diagnostics, json);
}

int CmdFromJson(const std::string& path, bool json) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status().ToString());
  auto diagnostics = lint::ParseDiagnosticsJson(*text);
  if (!diagnostics.ok()) return Fail(diagnostics.status().ToString());
  return Emit(*diagnostics, json);
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hedgeq_lint [--json] expr '<hedge regular expression>'\n"
      "  hedgeq_lint [--json] query '<selection query>' [schema.grammar]\n"
      "  hedgeq_lint [--json] schema file.grammar\n"
      "  hedgeq_lint [--json] overlap schema.grammar '<q1>' '<q2>'\n"
      "  hedgeq_lint [--json] overlap a.grammar b.grammar   (certified "
      "schema algebra)\n"
      "  hedgeq_lint [--json] from-json report.json\n"
      "exit: 0 clean or advisory findings, 2 error findings, 1 bad input\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  g_obs.Configure(args);
  if (args.empty()) {
    Usage();
    return 1;
  }
  const std::string& cmd = args[0];
  if (cmd == "expr" && args.size() == 2) return CmdExpr(args[1], json);
  if (cmd == "query" && (args.size() == 2 || args.size() == 3)) {
    return CmdQuery(args[1], args.size() == 3 ? args[2].c_str() : nullptr,
                    json);
  }
  if (cmd == "schema" && args.size() == 2) return CmdSchema(args[1], json);
  if (cmd == "overlap" && args.size() == 4) {
    return CmdOverlap(args[1], args[2], args[3], json);
  }
  if (cmd == "overlap" && args.size() == 3) {
    return CmdSchemaOverlap(args[1], args[2], json);
  }
  if (cmd == "from-json" && args.size() == 2) {
    return CmdFromJson(args[1], json);
  }
  Usage();
  return 1;
}
