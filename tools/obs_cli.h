#ifndef HEDGEQ_TOOLS_OBS_CLI_H_
#define HEDGEQ_TOOLS_OBS_CLI_H_

// Shared --metrics / --trace / --timings / --flight-recorder flag handling
// for the CLI tools:
//
//   --metrics          print the metrics snapshot (JSON) to stderr at exit
//   --metrics=FILE     write the snapshot to FILE instead ("-" = stdout)
//   --metrics-format=prom|json
//                      exposition format for --metrics; "prom" emits
//                      Prometheus text (scrape-ready, with exact log2
//                      bucket bounds and p50/p90/p99 quantile gauges)
//   --trace=FILE       record spans and write a Chrome trace_event file
//                      (loadable in about:tracing / Perfetto)
//   --timings[=FILE]   per-stage wall-time table, sorted by total time
//                      descending, to stderr (or FILE); stages that never
//                      ran — e.g. determinize on a warm cache hit — are
//                      simply absent
//   --flight-recorder=FILE
//                      arm the flight recorder: every top-level QueryScope
//                      deposits a structured record into the in-process
//                      ring, dumped to FILE at exit (also on SIGUSR1 in
//                      `hq repl`, and regardless of exit status — the
//                      error path is exactly when you want the dump)
//
// Any of the flags turns observability on for the process; without them
// the instrumentation stays behind its disabled fast path.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/catalogue.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "obs/prom.h"

namespace hedgeq::tools {

namespace obs_signal {
// SIGUSR1 support: the handler only sets a flag (async-signal-safe); the
// repl polls it between commands and after EINTR-interrupted reads.
inline volatile std::sig_atomic_t g_dump_requested = 0;
inline void OnSigUsr1(int) { g_dump_requested = 1; }
// SIGTERM/SIGINT: same flag-only pattern. Long-running commands (repl,
// serve) poll it and drain gracefully — finish in-flight work, then return
// through main so ObsCli::Flush writes metrics and the flight recorder.
// A killed server thereby still leaves its last 64 query records on disk.
inline volatile std::sig_atomic_t g_term_requested = 0;
inline void OnTerm(int) { g_term_requested = 1; }
}  // namespace obs_signal

class ObsCli {
 public:
  ObsCli() = default;
  ObsCli(const ObsCli&) = delete;
  ObsCli& operator=(const ObsCli&) = delete;
  ~ObsCli() { Flush(); }

  /// Strips the obs flags out of `args` (so command dispatch never sees
  /// them) and enables observability if any was present.
  void Configure(std::vector<std::string>& args) {
    std::vector<std::string> kept;
    kept.reserve(args.size());
    for (std::string& a : args) {
      if (a == "--metrics") {
        metrics_ = true;
      } else if (a == "--timings") {
        timings_ = true;
      } else if (a.rfind("--timings=", 0) == 0) {
        timings_ = true;
        timings_file_ = a.substr(sizeof("--timings=") - 1);
      } else if (a.rfind("--metrics=", 0) == 0) {
        metrics_ = true;
        metrics_file_ = a.substr(sizeof("--metrics=") - 1);
      } else if (a.rfind("--metrics-format=", 0) == 0) {
        metrics_format_ = a.substr(sizeof("--metrics-format=") - 1);
      } else if (a.rfind("--trace=", 0) == 0) {
        trace_file_ = a.substr(sizeof("--trace=") - 1);
      } else if (a.rfind("--flight-recorder=", 0) == 0) {
        flight_file_ = a.substr(sizeof("--flight-recorder=") - 1);
      } else {
        kept.push_back(std::move(a));
      }
    }
    args = std::move(kept);
    if (metrics_ || timings_ || !trace_file_.empty() ||
        !flight_file_.empty()) {
      obs::RegisterCatalogue();
      obs::SetEnabled(true);
      if (!trace_file_.empty()) obs::SetTraceEnabled(true);
      if (!flight_file_.empty()) {
        obs::SetFlightRecorderEnabled(true);
        // No SA_RESTART: a SIGUSR1 while the repl is blocked in a read
        // surfaces as EINTR so the dump happens immediately, not after
        // the next keystroke.
        struct sigaction sa = {};
        sa.sa_handler = obs_signal::OnSigUsr1;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0;
        sigaction(SIGUSR1, &sa, nullptr);
      }
    }
  }

  bool metrics_requested() const { return metrics_; }
  bool flight_enabled() const { return !flight_file_.empty(); }
  const std::string& flight_file() const { return flight_file_; }

  /// True once per SIGUSR1 received since the last call.
  static bool TakeSignalDumpRequest() {
    if (obs_signal::g_dump_requested == 0) return false;
    obs_signal::g_dump_requested = 0;
    return true;
  }

  /// Routes SIGTERM/SIGINT into the graceful-drain flag below. No
  /// SA_RESTART, so a signal during a blocked request read surfaces as
  /// EINTR and the drain starts immediately. Installed by the repl and
  /// `hq serve` regardless of obs flags — drain semantics are not an
  /// observability opt-in.
  static void InstallTerminationHandlers() {
    struct sigaction sa = {};
    sa.sa_handler = obs_signal::OnTerm;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
  }

  /// True once a SIGTERM/SIGINT arrived (sticky: the process is expected
  /// to drain and exit, not to resume).
  static bool TerminationRequested() {
    return obs_signal::g_term_requested != 0;
  }

  /// Dumps the flight-recorder ring to the configured file now (SIGUSR1
  /// and the repl `flight` command). Safe to call repeatedly; each dump
  /// rewrites the file with the current ring contents.
  bool DumpFlightRecorder() const {
    if (flight_file_.empty()) return false;
    if (!obs::WriteFlightRecorderFile(flight_file_)) {
      std::fprintf(stderr, "warning: cannot write flight recorder to %s\n",
                   flight_file_.c_str());
      return false;
    }
    return true;
  }

  /// For tools whose --json output embeds the snapshot under an "obs" key:
  /// returns the snapshot and suppresses the default emission in Flush.
  std::string TakeMetricsJson() {
    metrics_taken_ = true;
    return obs::Registry().MetricsJson();
  }

  /// Writes whatever was requested. Idempotent; also run by the destructor
  /// so every `return` path in main() flushes — including error exits,
  /// which is when the flight recorder earns its keep.
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    if (metrics_ && !metrics_taken_) {
      const bool prom = metrics_format_ == "prom";
      if (metrics_file_.empty()) {
        std::string text =
            prom ? obs::PrometheusText() : obs::Registry().MetricsJson();
        std::fprintf(stderr, "%s\n", text.c_str());
      } else {
        const bool ok = prom ? obs::WritePrometheusFile(metrics_file_)
                             : obs::WriteMetricsFile(metrics_file_);
        if (!ok) {
          std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                       metrics_file_.c_str());
        }
      }
    }
    if (!trace_file_.empty() && !obs::WriteChromeTraceFile(trace_file_)) {
      std::fprintf(stderr, "warning: cannot write trace to %s\n",
                   trace_file_.c_str());
    }
    if (timings_) PrintTimings(timings_file_);
    if (!flight_file_.empty()) DumpFlightRecorder();
  }

  /// The --timings table: stage / runs / total ms, sorted by total wall
  /// time descending so the expensive stage is always the first line.
  /// Empty `path` means stderr. Also used by the repl `timings` command.
  static void PrintTimings(const std::string& path) {
    std::vector<obs::SpanAggregate> spans = obs::Registry().SpanAggregates();
    std::sort(spans.begin(), spans.end(),
              [](const obs::SpanAggregate& a, const obs::SpanAggregate& b) {
                if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
                return a.name < b.name;
              });
    std::FILE* out = stderr;
    if (!path.empty() && path != "-") {
      out = std::fopen(path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "warning: cannot write timings to %s\n",
                     path.c_str());
        return;
      }
    } else if (path == "-") {
      out = stdout;
    }
    std::fprintf(out, "-- timings (stage / runs / total ms) --\n");
    for (const obs::SpanAggregate& s : spans) {
      std::fprintf(out, "%-34s %6llu %12.3f\n", s.name.c_str(),
                   static_cast<unsigned long long>(s.count),
                   static_cast<double>(s.total_ns) / 1e6);
    }
    if (spans.empty()) std::fprintf(out, "(no stages ran)\n");
    if (out != stderr && out != stdout) std::fclose(out);
  }

 private:
  bool metrics_ = false;
  bool timings_ = false;
  bool metrics_taken_ = false;
  bool flushed_ = false;
  std::string metrics_file_;
  std::string metrics_format_ = "json";
  std::string timings_file_;
  std::string trace_file_;
  std::string flight_file_;
};

}  // namespace hedgeq::tools

#endif  // HEDGEQ_TOOLS_OBS_CLI_H_
