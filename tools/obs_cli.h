#ifndef HEDGEQ_TOOLS_OBS_CLI_H_
#define HEDGEQ_TOOLS_OBS_CLI_H_

// Shared --metrics / --trace flag handling for the CLI tools:
//
//   --metrics        print the metrics snapshot (JSON) to stderr at exit
//   --metrics=FILE   write the snapshot to FILE instead ("-" = stdout)
//   --trace=FILE     record spans and write a Chrome trace_event file
//                    (loadable in about:tracing / Perfetto)
//   --timings        print a per-stage wall-time summary to stderr at exit
//                    (aggregated from the same spans; stages that never
//                    ran — e.g. determinize on a warm cache hit — are
//                    simply absent)
//
// Any of the flags turns observability on for the process; without them
// the instrumentation stays behind its disabled fast path.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/catalogue.h"
#include "obs/obs.h"

namespace hedgeq::tools {

class ObsCli {
 public:
  ObsCli() = default;
  ObsCli(const ObsCli&) = delete;
  ObsCli& operator=(const ObsCli&) = delete;
  ~ObsCli() { Flush(); }

  /// Strips --metrics[=FILE] and --trace=FILE out of `args` (so command
  /// dispatch never sees them) and enables observability if either was
  /// present.
  void Configure(std::vector<std::string>& args) {
    std::vector<std::string> kept;
    kept.reserve(args.size());
    for (std::string& a : args) {
      if (a == "--metrics") {
        metrics_ = true;
      } else if (a == "--timings") {
        timings_ = true;
      } else if (a.rfind("--metrics=", 0) == 0) {
        metrics_ = true;
        metrics_file_ = a.substr(sizeof("--metrics=") - 1);
      } else if (a.rfind("--trace=", 0) == 0) {
        trace_file_ = a.substr(sizeof("--trace=") - 1);
      } else {
        kept.push_back(std::move(a));
      }
    }
    args = std::move(kept);
    if (metrics_ || timings_ || !trace_file_.empty()) {
      obs::RegisterCatalogue();
      obs::SetEnabled(true);
      if (!trace_file_.empty()) obs::SetTraceEnabled(true);
    }
  }

  bool metrics_requested() const { return metrics_; }

  /// For tools whose --json output embeds the snapshot under an "obs" key:
  /// returns the snapshot and suppresses the default emission in Flush.
  std::string TakeMetricsJson() {
    metrics_taken_ = true;
    return obs::Registry().MetricsJson();
  }

  /// Writes whatever was requested. Idempotent; also run by the destructor
  /// so every `return` path in main() flushes.
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    if (metrics_ && !metrics_taken_) {
      if (metrics_file_.empty()) {
        std::string json = obs::Registry().MetricsJson();
        std::fprintf(stderr, "%s\n", json.c_str());
      } else if (!obs::WriteMetricsFile(metrics_file_)) {
        std::fprintf(stderr, "warning: cannot write metrics to %s\n",
                     metrics_file_.c_str());
      }
    }
    if (!trace_file_.empty() && !obs::WriteChromeTraceFile(trace_file_)) {
      std::fprintf(stderr, "warning: cannot write trace to %s\n",
                   trace_file_.c_str());
    }
    if (timings_) {
      std::vector<obs::SpanAggregate> spans = obs::Registry().SpanAggregates();
      std::fprintf(stderr, "-- timings (stage / runs / total ms) --\n");
      for (const obs::SpanAggregate& s : spans) {
        std::fprintf(stderr, "%-34s %6llu %12.3f\n", s.name.c_str(),
                     static_cast<unsigned long long>(s.count),
                     static_cast<double>(s.total_ns) / 1e6);
      }
      if (spans.empty()) std::fprintf(stderr, "(no stages ran)\n");
    }
  }

 private:
  bool metrics_ = false;
  bool timings_ = false;
  bool metrics_taken_ = false;
  bool flushed_ = false;
  std::string metrics_file_;
  std::string trace_file_;
};

}  // namespace hedgeq::tools

#endif  // HEDGEQ_TOOLS_OBS_CLI_H_
