#!/usr/bin/env bash
# One-shot correctness gate: build everything under ASan/UBSan (fuzzers
# included), run the full test suite, run clang-tidy when available, smoke
# the fuzzers, and statically lint the shipped fixtures — failing the whole
# script if hedgeq_lint reports any error-severity finding.
#
# Usage: tools/check.sh [fuzz-seconds]   (default 30)
set -euo pipefail

FUZZ_SECONDS="${1:-30}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "${REPO_ROOT}"
BUILD_DIR="${REPO_ROOT}/build-asan"

step() { printf '\n==> %s\n' "$*"; }

step "configure (asan preset: ASan+UBSan, HEDGEQ_FUZZ=ON)"
cmake --preset asan

step "build"
cmake --build --preset asan -j "$(nproc)"

step "ctest (full suite under ASan/UBSan)"
ctest --preset asan -j "$(nproc)"

step "clang-tidy (lint target; echo-skips when clang-tidy is absent)"
cmake --build --preset asan --target lint

step "fuzzer smoke (${FUZZ_SECONDS}s per harness)"
# Under clang these are libFuzzer binaries; under gcc the standalone driver
# provides the same --smoke interface (deterministic mutation loop).
for harness in fuzz_xml fuzz_hre fuzz_certify fuzz_containment fuzz_from_nha; do
  bin="${BUILD_DIR}/fuzz/${harness}"
  corpus="${REPO_ROOT}/fuzz/corpus/${harness#fuzz_}"
  if [[ -x "${bin}" ]]; then
    "${bin}" --smoke "${FUZZ_SECONDS}" "${corpus}" \
      || { echo "FAIL: ${harness} smoke run crashed"; exit 1; }
  else
    echo "FAIL: ${bin} not built (HEDGEQ_FUZZ should be ON in the asan preset)"
    exit 1
  fi
done

step "static analysis of shipped fixtures (hedgeq_lint must find no errors)"
LINT="${BUILD_DIR}/tools/hedgeq_lint"
# hedgeq_lint exits 2 on error-severity findings, 1 on bad input, 0 otherwise;
# set -e turns any nonzero exit into a script failure.
"${LINT}" schema tools/fixtures/article.grammar
"${LINT}" schema tools/fixtures/article_strict.grammar
# The example queries the README/examples run against the article schema.
"${LINT}" query 'select(*; figure (section|article)*)' tools/fixtures/article.grammar
"${LINT}" query 'select(*; [title<$#text>; section; *] article)' tools/fixtures/article.grammar
"${LINT}" query 'select(*; para* (section|article)*)'

step "translation validation (hedgeq_verify certifies the pipeline)"
VERIFY="${BUILD_DIR}/tools/hedgeq_verify"
# Certify compile/trim/determinize/lazy on representative expressions and
# cross-run every engine via the differential oracle; exits 2 on findings.
"${VERIFY}" expr '(a|b)* c<$x>' 2>/dev/null
"${VERIFY}" expr 'b @z (a<%z> a<%z>)^z' 2>/dev/null
"${VERIFY}" expr 'article<section* figure>*' 2>/dev/null
"${VERIFY}" query 'select(*; figure (section|article)*)'
# Certify minimization, the Theorem 4 class product, query containment in
# both verdict directions, and cross-run every selection engine.
"${VERIFY}" minimize '(a<b*> | b<a*>)*' 2>/dev/null
"${VERIFY}" query 'select((b|$x)*; [(); a; b] [b; a; ()])'
"${VERIFY}" containment tools/fixtures/containment.grammar \
  'select(a<b>; [(); doc; ()])' 'select(a<b b*>; [(); doc; ()])' 2>/dev/null
"${VERIFY}" containment tools/fixtures/containment.grammar \
  'select(a<b b*>; [(); doc; ()])' 'select(a<b>; [(); doc; ()])' 2>/dev/null
"${VERIFY}" select-oracle 'select(a<b*>; [(); doc; ()])' 2 8 2>/dev/null
# Certificates must survive a serialize/deserialize round trip and recheck.
"${VERIFY}" emit-cert det 'a<b*> | c' | "${VERIFY}" cert -
"${VERIFY}" emit-cert trim 'a<b*> | c' | "${VERIFY}" cert -
"${VERIFY}" emit-cert min 'a<b*> | c' | "${VERIFY}" cert -
"${VERIFY}" emit-cert containment tools/fixtures/containment.grammar \
  'select(a<b>; [(); doc; ()])' 'select(a<b b*>; [(); doc; ()])' \
  | "${VERIFY}" cert -
# Lemma 2 and the schema algebra certify end-to-end too, and every kind of
# certificate must also pass the hash-witness light checker.
"${VERIFY}" from-nha 'a<b*> | c' 2>/dev/null
"${VERIFY}" algebra intersect tools/fixtures/article.grammar \
  tools/fixtures/article_strict.grammar 2>/dev/null
"${VERIFY}" emit-cert from-nha 'a<b*> | c' | "${VERIFY}" cert -
"${VERIFY}" emit-cert algebra difference tools/fixtures/article.grammar \
  tools/fixtures/article_strict.grammar | "${VERIFY}" cert -
"${VERIFY}" emit-cert det 'a<b*> | c' | "${VERIFY}" --check=light cert -
"${VERIFY}" emit-cert from-nha 'a<b*> | c' | "${VERIFY}" --check=light cert -

step "seeded bugs (each failpoint must be caught under its own HQV code)"
SEED_TMP="$(mktemp -d)"
# A minimizer that merges two non-bisimilar states: CheckMinimize must
# reject the quotient's final language (HQV010), not trust the partition.
if "${VERIFY}" --failpoint=minimize/merge-nonbisimilar \
     minimize '(a<b*> | b<a*>)*' > "${SEED_TMP}/min.out" 2>/dev/null; then
  echo "FAIL: non-bisimilar merge went uncaught"; exit 1
fi
grep -q 'HQV010' "${SEED_TMP}/min.out" \
  || { echo "FAIL: non-bisimilar merge not reported as HQV010"; exit 1; }
# A containment decision with its verdict flipped: CheckContainment must
# find a usable product state separating the marks (HQV012).
if "${VERIFY}" --failpoint=containment/flip-verdict \
     containment tools/fixtures/containment.grammar \
     'select(a<b b*>; [(); doc; ()])' 'select(a<b>; [(); doc; ()])' \
     > "${SEED_TMP}/cont.out" 2>/dev/null; then
  echo "FAIL: flipped containment verdict went uncaught"; exit 1
fi
grep -q 'HQV012' "${SEED_TMP}/cont.out" \
  || { echo "FAIL: flipped verdict not reported as HQV012"; exit 1; }
# An eager evaluator reporting a wrong node set: the selection-semantics
# oracle must isolate it against the other engines and shrink the
# counterexample (HQV013).
if "${VERIFY}" --failpoint=phr/select-wrong-node \
     select-oracle 'select(a<b*>; [(); doc; ()])' 3 4 \
     > "${SEED_TMP}/sel.out" 2>/dev/null; then
  echo "FAIL: wrong selected node set went uncaught"; exit 1
fi
grep -q 'HQV013' "${SEED_TMP}/sel.out" \
  || { echo "FAIL: selection disagreement not reported as HQV013"; exit 1; }
grep -q 'shrunk from' "${SEED_TMP}/sel.out" \
  || { echo "FAIL: selection counterexample was not shrunk"; exit 1; }
# A Lemma 2 extraction that silently drops a union alternative: the
# recurrence replay in CheckFromNha must notice the missing combination
# (HQV014), not trust the emitted expression.
if "${VERIFY}" --failpoint=from_nha/drop-alternative \
     from-nha 'a<b*> | c' > "${SEED_TMP}/fn.out" 2>/dev/null; then
  echo "FAIL: dropped Lemma 2 alternative went uncaught"; exit 1
fi
grep -q 'HQV014' "${SEED_TMP}/fn.out" \
  || { echo "FAIL: dropped alternative not reported as HQV014"; exit 1; }
# A schema intersection that drops a product rule: the re-derived pairing
# product in CheckAlgebra must disagree (HQV015).
if "${VERIFY}" --failpoint=algebra/drop-rule \
     algebra intersect tools/fixtures/article.grammar \
     tools/fixtures/article_strict.grammar \
     > "${SEED_TMP}/alg.out" 2>/dev/null; then
  echo "FAIL: dropped algebra product rule went uncaught"; exit 1
fi
grep -q 'HQV015' "${SEED_TMP}/alg.out" \
  || { echo "FAIL: dropped product rule not reported as HQV015"; exit 1; }
rm -rf "${SEED_TMP}"

step "metrics snapshot smoke (stable metric names + trace export)"
HQ="${BUILD_DIR}/tools/hq"
OBS_TMP="$(mktemp -d)"
"${HQ}" gen article 200 > "${OBS_TMP}/doc.xml"
"${HQ}" query 'select(*; figure (section|article)*)' "${OBS_TMP}/doc.xml" \
  --metrics="${OBS_TMP}/metrics.json" --trace="${OBS_TMP}/trace.json" \
  > /dev/null
# Golden-gate the metric *names* (values vary by machine): every catalogued
# name must appear in the snapshot. Appending new names is fine; renaming
# or dropping one is a contract break and fails here.
while IFS= read -r name; do
  [[ -z "${name}" || "${name}" == \#* ]] && continue
  grep -q "\"${name}\"" "${OBS_TMP}/metrics.json" \
    || { echo "FAIL: metric '${name}' missing from snapshot (catalogued names are append-only)"; exit 1; }
done < tools/fixtures/metric_names.golden
grep -q '"traceEvents"' "${OBS_TMP}/trace.json" \
  || { echo "FAIL: --trace produced no Chrome trace_event output"; exit 1; }
grep -q '"phr.eval.pass2"' "${OBS_TMP}/trace.json" \
  || { echo "FAIL: trace does not cover the Algorithm 1 traversals"; exit 1; }
rm -rf "${OBS_TMP}"

step "certified cache (warm hit, byte-flip tamper, quarantine, recompute)"
CACHE_TMP="$(mktemp -d)"
CACHE_DIR="${CACHE_TMP}/cache"
CACHE_QUERY='select(*; figure (section|article)*)'
"${HQ}" gen article 200 > "${CACHE_TMP}/doc.xml"
# Cold run populates the cache; the warm run must answer identically from a
# validated hit, with the determinize stage span absent from the snapshot
# (the stage never ran; its counters are pre-registered, the span is not).
"${HQ}" query "${CACHE_QUERY}" "${CACHE_TMP}/doc.xml" \
  --cache-dir="${CACHE_DIR}" > "${CACHE_TMP}/cold.out"
"${HQ}" query "${CACHE_QUERY}" "${CACHE_TMP}/doc.xml" \
  --cache-dir="${CACHE_DIR}" --metrics="${CACHE_TMP}/warm.json" \
  > "${CACHE_TMP}/warm.out"
cmp "${CACHE_TMP}/cold.out" "${CACHE_TMP}/warm.out" \
  || { echo "FAIL: warm cache run changed the query answer"; exit 1; }
grep -q '"cache.hit": [1-9]' "${CACHE_TMP}/warm.json" \
  || { echo "FAIL: warm run shows no cache.hit"; exit 1; }
if grep -q '"automata.determinize": {' "${CACHE_TMP}/warm.json"; then
  echo "FAIL: determinize stage span present despite a warm cache hit"
  exit 1
fi
# Flip one byte in the middle of every cached entry (the run stores both a
# PHR-scoped and an input-keyed determinize entry; whichever the load path
# consults must reject): quarantine with an HQV code (entry + .reason
# sidecar under corrupt/), recompute, and still answer like the cold run.
for entry in "${CACHE_DIR}"/*.cert; do
  printf '\377' | dd of="${entry}" bs=1 seek=120 conv=notrunc status=none
done
"${HQ}" query "${CACHE_QUERY}" "${CACHE_TMP}/doc.xml" \
  --cache-dir="${CACHE_DIR}" --metrics="${CACHE_TMP}/tamper.json" \
  > "${CACHE_TMP}/tamper.out"
cmp "${CACHE_TMP}/cold.out" "${CACHE_TMP}/tamper.out" \
  || { echo "FAIL: tampered cache entry changed the query answer"; exit 1; }
grep -q '"cache.quarantine": [1-9]' "${CACHE_TMP}/tamper.json" \
  || { echo "FAIL: tampered entry was not quarantined"; exit 1; }
ls "${CACHE_DIR}"/corrupt/*.reason > /dev/null 2>&1 \
  || { echo "FAIL: no .reason sidecar under corrupt/"; exit 1; }
grep -q 'HQV' "${CACHE_DIR}"/corrupt/*.reason \
  || { echo "FAIL: quarantine reason carries no HQV code"; exit 1; }
# The rejected entry was transparently recomputed and re-stored: one more
# run is a validated hit again.
"${HQ}" query "${CACHE_QUERY}" "${CACHE_TMP}/doc.xml" \
  --cache-dir="${CACHE_DIR}" --metrics="${CACHE_TMP}/healed.json" \
  > /dev/null
grep -q '"cache.hit": [1-9]' "${CACHE_TMP}/healed.json" \
  || { echo "FAIL: cache did not heal after quarantine"; exit 1; }
# Light-checker tamper: revalidation on load runs the hash-witness light
# check by default, so a byte flipped near the END of the entry — inside
# the digest chain, past what the shape checks re-derive — must still be
# caught, with the quarantine reason carrying the digest-chain code
# (HQV016) and the light-check counter ticking.
rm -rf "${CACHE_DIR}/corrupt"
for entry in "${CACHE_DIR}"/*.cert; do
  entry_size="$(wc -c < "${entry}")"
  printf '\377' | dd of="${entry}" bs=1 seek=$((entry_size - 16)) \
    conv=notrunc status=none
done
"${HQ}" query "${CACHE_QUERY}" "${CACHE_TMP}/doc.xml" \
  --cache-dir="${CACHE_DIR}" --metrics="${CACHE_TMP}/light.json" \
  > "${CACHE_TMP}/light.out"
cmp "${CACHE_TMP}/cold.out" "${CACHE_TMP}/light.out" \
  || { echo "FAIL: light-mode tamper changed the query answer"; exit 1; }
grep -q '"cache.light_checks": [1-9]' "${CACHE_TMP}/light.json" \
  || { echo "FAIL: load revalidation did not run the light checker"; exit 1; }
grep -q 'HQV016' "${CACHE_DIR}"/corrupt/*.reason \
  || { echo "FAIL: digest-chain tamper not quarantined as HQV016"; exit 1; }
# Eviction: a 1-byte bound forces every store to sweep, yet the entry
# just written must survive (the cache stays able to serve its own key).
EVICT_DIR="${CACHE_TMP}/evict"
"${HQ}" canon tools/fixtures/article.grammar \
  --cache-dir="${EVICT_DIR}" > /dev/null
first_entry="$(ls "${EVICT_DIR}"/*.cert | head -1)"
"${HQ}" query "${CACHE_QUERY}" "${CACHE_TMP}/doc.xml" \
  --cache-dir="${EVICT_DIR}" --cache-max-bytes=1 \
  --metrics="${CACHE_TMP}/evict.json" > /dev/null
grep -q '"cache.evictions": [1-9]' "${CACHE_TMP}/evict.json" \
  || { echo "FAIL: over-budget store evicted nothing"; exit 1; }
[[ ! -f "${first_entry}" ]] \
  || { echo "FAIL: oldest entry survived a 1-byte cache bound"; exit 1; }
[[ "$(ls "${EVICT_DIR}"/*.cert | wc -l)" -ge 1 ]] \
  || { echo "FAIL: eviction removed the just-written entry"; exit 1; }
# An already-expired deadline fails closed (exit 4, kDeadlineExceeded),
# never with a wrong or partial answer.
if "${HQ}" canon tools/fixtures/article.grammar --deadline-ms=0 \
     2> "${CACHE_TMP}/deadline.err"; then
  echo "FAIL: --deadline-ms=0 did not fail"; exit 1
fi
grep -q 'deadline-exceeded' "${CACHE_TMP}/deadline.err" \
  || { echo "FAIL: expired deadline not reported as deadline-exceeded"; exit 1; }
rm -rf "${CACHE_TMP}"

step "prometheus exposition (sanitized golden names, buckets, quantiles)"
PROM_TMP="$(mktemp -d)"
"${HQ}" gen article 200 > "${PROM_TMP}/doc.xml"
"${HQ}" query 'select(*; figure (section|article)*)' "${PROM_TMP}/doc.xml" \
  --metrics="${PROM_TMP}/metrics.prom" --metrics-format=prom > /dev/null
# Same append-only name contract as the JSON gate, through the prom name
# mapping (dots -> underscores, hedgeq_ prefix).
while IFS= read -r name; do
  [[ -z "${name}" || "${name}" == \#* ]] && continue
  prom_name="hedgeq_$(printf '%s' "${name}" | tr . _)"
  grep -q "^${prom_name}\b\|^# TYPE ${prom_name} " "${PROM_TMP}/metrics.prom" \
    || { echo "FAIL: '${prom_name}' missing from prom exposition"; exit 1; }
done < tools/fixtures/metric_names.golden
grep -q '^hedgeq_hist_query_latency_us_bucket{le="+Inf"} [1-9]' \
  "${PROM_TMP}/metrics.prom" \
  || { echo "FAIL: query latency histogram has no +Inf bucket count"; exit 1; }
grep -q '^hedgeq_hist_query_latency_us_quantile{q="0.99"} [0-9]' \
  "${PROM_TMP}/metrics.prom" \
  || { echo "FAIL: no p99 quantile in prom exposition"; exit 1; }
grep -q '^hedgeq_span_total_ns{stage="automata.determinize"} [1-9]' \
  "${PROM_TMP}/metrics.prom" \
  || { echo "FAIL: span families missing from prom exposition"; exit 1; }
rm -rf "${PROM_TMP}"

step "flight recorder (SIGUSR1 dump parses and carries the query's stages)"
FLIGHT_TMP="$(mktemp -d)"
"${HQ}" gen article 200 > "${FLIGHT_TMP}/doc.xml"
mkfifo "${FLIGHT_TMP}/stdin"
"${HQ}" repl --flight-recorder="${FLIGHT_TMP}/flight.json" \
  < "${FLIGHT_TMP}/stdin" > "${FLIGHT_TMP}/repl.out" 2>&1 &
REPL_PID=$!
exec 9> "${FLIGHT_TMP}/stdin"
printf 'load %s\nquery select(*; figure (section|article)*)\n' \
  "${FLIGHT_TMP}/doc.xml" >&9
# Give the repl a beat to finish the query, then ask for a dump by signal
# while it is blocked reading the fifo.
sleep 1
kill -USR1 "${REPL_PID}"
for _ in $(seq 1 50); do
  [[ -s "${FLIGHT_TMP}/flight.json" ]] && break
  sleep 0.1
done
[[ -s "${FLIGHT_TMP}/flight.json" ]] \
  || { echo "FAIL: SIGUSR1 produced no flight-recorder dump"; exit 1; }
"${HQ}" obs-parse "${FLIGHT_TMP}/flight.json" > /dev/null \
  || { echo "FAIL: flight dump does not round-trip through the obs parser"; exit 1; }
grep -q '"label": "repl:query ' "${FLIGHT_TMP}/flight.json" \
  || { echo "FAIL: flight dump has no record for the query command"; exit 1; }
grep -q 'phr.compile\|automata.determinize' "${FLIGHT_TMP}/flight.json" \
  || { echo "FAIL: flight record carries no stage durations"; exit 1; }
printf 'quit\n' >&9
exec 9>&-
wait "${REPL_PID}"
rm -rf "${FLIGHT_TMP}"

step "serve chaos matrix (every failpoint fires, zero lost requests)"
SERVE_TMP="$(mktemp -d)"
{
  printf 'gen article 200 11\n'
  for _ in $(seq 1 40); do
    printf 'query select(*; figure (section|article)*)\n'
    printf 'query select(*; caption (section|article)*)\n'
  done
} > "${SERVE_TMP}/requests"
REQ_COUNT="$(grep -c . "${SERVE_TMP}/requests")"
# Same matrix as serve_chaos_test: every cache/IO failpoint armed
# probabilistically (fixed seeds — deterministic), the eager compile path
# failing periodically, the execution path flaking, memoization off so
# every request walks the full pipeline, and a real cache directory so the
# cache failpoints sit on genuinely exercised store/load paths.
"${HQ}" serve --workers=4 --no-memoize \
  --retry-max=3 --retry-backoff-ms=1 --retry-backoff-max-ms=4 \
  --breaker-threshold=4 --breaker-open-ms=5 \
  --cache-dir="${SERVE_TMP}/cache" \
  --requests="${SERVE_TMP}/requests" --chaos-report \
  --failpoint='cache/short-read:p=0.5,seed=1' \
  --failpoint='cache/torn-write:p=0.5,seed=2' \
  --failpoint='cache/enospc:p=0.4,seed=3' \
  --failpoint='cache/rename:p=0.4,seed=4' \
  --failpoint='determinize/subset:every=9' \
  --failpoint='serve/exec:p=0.15,seed=5' \
  > "${SERVE_TMP}/serve.out" 2> "${SERVE_TMP}/serve.err" \
  || { echo "FAIL: hq serve crashed under the chaos matrix"; exit 1; }
# Zero lost requests: exactly one result line per request, in order.
[[ "$(grep -c . "${SERVE_TMP}/serve.out")" -eq "${REQ_COUNT}" ]] \
  || { echo "FAIL: chaos run lost request result lines"; exit 1; }
# The matrix is only a matrix if every armed point actually fired.
for point in cache/short-read cache/torn-write cache/enospc cache/rename \
             determinize/subset serve/exec; do
  fired="$(sed -n "s|^# chaos: ${point} hits=[0-9]* fired=||p" \
    "${SERVE_TMP}/serve.err")"
  [[ -n "${fired}" && "${fired}" -ge 1 ]] \
    || { echo "FAIL: failpoint ${point} never fired in the chaos run"; exit 1; }
done
# Chaos may shed or degrade an answer, never change it: every answered
# line for the same query reports the same located count.
for q in 1 2; do
  answered="$(awk -v q="${q}" \
    '$1 > 0 && (($1 - q) % 2 == 0) && ($2 == "ok" || $2 == "degraded" || $2 == "retried") {print $3}' \
    "${SERVE_TMP}/serve.out" | sort -u | wc -l)"
  [[ "${answered}" -le 1 ]] \
    || { echo "FAIL: chaos run returned inconsistent answers for query ${q}"; exit 1; }
done
rm -rf "${SERVE_TMP}"

step "serve graceful drain (SIGTERM: exit 0, flight dump, shed accounting)"
DRAIN_TMP="$(mktemp -d)"
mkfifo "${DRAIN_TMP}/stdin"
"${HQ}" serve --workers=2 \
  --flight-recorder="${DRAIN_TMP}/flight.json" \
  --metrics="${DRAIN_TMP}/metrics.json" \
  < "${DRAIN_TMP}/stdin" > "${DRAIN_TMP}/serve.out" 2> "${DRAIN_TMP}/serve.err" &
SERVE_PID=$!
exec 8> "${DRAIN_TMP}/stdin"
printf 'gen article 200 11\n' >&8
for _ in $(seq 1 8); do
  printf 'query select(*; figure (section|article)*)\n' >&8
done
# Let the requests land, then terminate while the server blocks on the
# fifo: admission stops, in-flight work finishes, everything flushes.
sleep 1
kill -TERM "${SERVE_PID}"
drain_rc=0
wait "${SERVE_PID}" || drain_rc=$?
exec 8>&-
[[ "${drain_rc}" -eq 0 ]] \
  || { echo "FAIL: SIGTERM drain exited ${drain_rc}, want 0"; exit 1; }
grep -q '(drained on signal)' "${DRAIN_TMP}/serve.err" \
  || { echo "FAIL: serve summary does not report the signal drain"; exit 1; }
# Every admitted request still got its result line (1 gen + 8 queries).
[[ "$(grep -c . "${DRAIN_TMP}/serve.out")" -eq 9 ]] \
  || { echo "FAIL: drain dropped result lines"; exit 1; }
# The drain path flushes the flight recorder; the dump must parse.
[[ -s "${DRAIN_TMP}/flight.json" ]] \
  || { echo "FAIL: SIGTERM drain produced no flight-recorder dump"; exit 1; }
"${HQ}" obs-parse "${DRAIN_TMP}/flight.json" > /dev/null \
  || { echo "FAIL: drain flight dump does not round-trip through the obs parser"; exit 1; }
# serve.shed in the flushed metrics equals the shed result lines printed.
shed_lines="$(grep -c '^[0-9]* shed ' "${DRAIN_TMP}/serve.out" || true)"
shed_metric="$(sed -n 's/.*"serve\.shed": \([0-9]*\).*/\1/p' \
  "${DRAIN_TMP}/metrics.json" | head -1)"
[[ -n "${shed_metric}" && "${shed_metric}" -eq "${shed_lines}" ]] \
  || { echo "FAIL: serve.shed metric (${shed_metric:-missing}) disagrees with shed result lines (${shed_lines})"; exit 1; }
rm -rf "${DRAIN_TMP}"

step "bench_compare gate (identity passes, synthetic slowdown fails)"
BC="${BUILD_DIR}/tools/bench_compare"
BC_TMP="$(mktemp -d)"
cp bench/baselines/BENCH_*.json "${BC_TMP}/" 2>/dev/null || true
if ls "${BC_TMP}"/BENCH_*.json > /dev/null 2>&1; then
  "${BC}" "${BC_TMP}" "${BC_TMP}" > /dev/null \
    || { echo "FAIL: bench_compare rejects identical artifacts"; exit 1; }
  one="$(ls "${BC_TMP}"/BENCH_*.json | head -1)"
  mkdir "${BC_TMP}/slow"
  # Replace every timing with an absurdly slow constant: far past any
  # threshold regardless of the baseline's magnitude or number format
  # (google-benchmark emits scientific notation).
  sed -E 's/"(real_time|cpu_time)": [0-9.eE+-]+/"\1": 9.0e9/g' \
    "${one}" > "${BC_TMP}/slow/$(basename "${one}")"
  if "${BC}" "${one}" "${BC_TMP}/slow/$(basename "${one}")" \
       > "${BC_TMP}/slow.out"; then
    echo "FAIL: bench_compare accepted a 100x slowdown"; exit 1
  fi
  grep -q '^FAIL' "${BC_TMP}/slow.out" \
    || { echo "FAIL: bench_compare slowdown produced no FAIL line"; exit 1; }
else
  echo "  (no committed baselines found; structural gate only)"
  bc_rc=0
  "${BC}" /nonexistent_a.json /nonexistent_b.json > /dev/null 2>&1 || bc_rc=$?
  [[ "${bc_rc}" -eq 2 ]] \
    || { echo "FAIL: bench_compare unreadable input must exit 2"; exit 1; }
fi
rm -rf "${BC_TMP}"

step "all checks passed"
