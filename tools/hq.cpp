// hq — command-line front end for the hedgeq library.
//
//   hq query  '<selection query>' file.xml       locate nodes in a document
//   hq xpath  '<location path>' file.xml         run the XPath-subset engine
//   hq validate schema.grammar file.xml          schema validity
//   hq transform select|delete  schema.grammar '<query>'
//   hq transform rename schema.grammar '<query>' <new-name>
//                                                print the inferred output
//                                                schema (pruned) + witness
//   hq gen article <nodes> [seed]                emit a synthetic document
//   hq ambiguous '<hedge regular expression>'    Section 9 unambiguity check
//
// Queries use the textual syntax documented in the README; documents may be
// XML files or '-' for stdin.
//
// Every command also accepts --metrics[=FILE], --trace=FILE and --timings
// (see tools/obs_cli.h and docs/OBSERVABILITY.md), plus:
//
//   --cache-dir=DIR    persistent certificate-checked automaton cache: a
//                      warm run skips determinization entirely, and every
//                      cached entry is re-validated by the independent
//                      checker before use (see docs/ROBUSTNESS.md)
//   --deadline-ms=N    wall-clock deadline for the exponential
//                      preprocessing stages; past it, commands with a lazy
//                      equivalent degrade to it and the rest exit 4 with
//                      deadline-exceeded
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "baseline/xpath.h"
#include "cache/cache.h"
#include "hre/compile.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/scope.h"
#include "query/selection.h"
#include "schema/algebra.h"
#include "schema/transform.h"
#include "serve/serve.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/generators.h"
#include "xml/xml.h"

#include "obs_cli.h"

namespace {

using namespace hedgeq;

int Fail(const std::string& message) {
  std::fprintf(stderr, "hq: %s\n", message.c_str());
  return 1;
}

// Deadline misses get their own exit code so scripts can tell "too slow"
// from "wrong" without parsing stderr.
int FailStatus(const Status& status) {
  std::fprintf(stderr, "hq: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kDeadlineExceeded ? 4 : 1;
}

// --cache-dir / --deadline-ms state, set once in main before dispatch.
std::unique_ptr<cache::AutomatonCache> g_cache;
bool g_deadline_set = false;
uint64_t g_deadline_ms = 0;

// Commands call this right after creating their vocabulary: the cache
// deserializes automata by name, so it must intern into the same
// vocabulary the command queries with.
void BindCache(hedge::Vocabulary& vocab) {
  if (g_cache != nullptr) g_cache->BindVocabulary(&vocab);
}

// --deadline-ms=0 is a deadline that has already passed (every budgeted
// stage fails its first charge) — deterministic, so scripts and tests can
// exercise the deadline path without racing the clock.
ExecBudget FlagBudget() {
  ExecBudget budget;
  if (g_deadline_set) budget.SetDeadlineAfterMs(g_deadline_ms);
  return budget;
}

Result<std::string> ReadFile(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<xml::XmlDocument> LoadXml(const std::string& path,
                                 hedge::Vocabulary& vocab) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return xml::ParseXml(*text, vocab);
}

std::string DeweyString(const hedge::Hedge& h, hedge::NodeId n) {
  std::string out;
  for (uint32_t step : h.DeweyOf(n)) out += "/" + std::to_string(step);
  return out.empty() ? "/" : out;
}

int CmdQuery(const std::string& query_text, const std::string& file) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto doc = LoadXml(file, vocab);
  if (!doc.ok()) return Fail(doc.status().ToString());
  auto query = query::ParseSelectionQuery(query_text, vocab);
  if (!query.ok()) return Fail(query.status().ToString());
  auto eval = query::SelectionEvaluator::Create(*query, FlagBudget());
  if (!eval.ok()) return FailStatus(eval.status());
  for (hedge::NodeId n : eval->LocatedNodes(doc->hedge)) {
    std::printf("%s\t%s\n", DeweyString(doc->hedge, n).c_str(),
                vocab.symbols.NameOf(doc->hedge.label(n).id).c_str());
  }
  return 0;
}

int CmdXPath(const std::string& path_text, const std::string& file) {
  hedge::Vocabulary vocab;
  auto doc = LoadXml(file, vocab);
  if (!doc.ok()) return Fail(doc.status().ToString());
  auto path = baseline::ParseXPath(path_text, vocab);
  if (!path.ok()) return Fail(path.status().ToString());
  for (hedge::NodeId n : baseline::EvaluateXPath(doc->hedge, *path)) {
    const hedge::Label label = doc->hedge.label(n);
    std::printf("%s\t%s\n", DeweyString(doc->hedge, n).c_str(),
                label.kind == hedge::LabelKind::kSymbol
                    ? vocab.symbols.NameOf(label.id).c_str()
                    : "#text");
  }
  return 0;
}

int CmdValidate(const std::string& schema_file, const std::string& file) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto grammar = ReadFile(schema_file);
  if (!grammar.ok()) return Fail(grammar.status().ToString());
  auto schema = schema::ParseSchema(*grammar, vocab);
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto doc = LoadXml(file, vocab);
  if (!doc.ok()) return Fail(doc.status().ToString());
  bool ok = schema->Validates(doc->hedge);
  std::printf("%s\n", ok ? "valid" : "INVALID");
  return ok ? 0 : 2;
}

int CmdTransform(const std::string& op, const std::string& schema_file,
                 const std::string& query_text, const char* new_name) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto grammar = ReadFile(schema_file);
  if (!grammar.ok()) return Fail(grammar.status().ToString());
  auto input = schema::ParseSchema(*grammar, vocab);
  if (!input.ok()) return Fail(input.status().ToString());
  auto query = query::ParseSelectionQuery(query_text, vocab);
  if (!query.ok()) return Fail(query.status().ToString());

  Result<schema::Schema> output = Status::Internal("unset");
  if (op == "select") {
    output = schema::SelectOutputSchema(*input, *query);
  } else if (op == "delete") {
    output = schema::DeleteOutputSchema(*input, *query);
  } else if (op == "rename") {
    if (new_name == nullptr) {
      return Fail("rename needs a new element name");
    }
    output = schema::RenameOutputSchema(*input, *query,
                                        vocab.symbols.Intern(new_name));
  } else {
    return Fail("unknown transform '" + op + "' (select|delete|rename)");
  }
  if (!output.ok()) return Fail(output.status().ToString());

  schema::Schema pruned(automata::PruneNha(output->nha()));
  std::printf("# inferred output schema (%zu states, %zu rules)\n",
              pruned.nha().num_states(), pruned.nha().rules().size());
  if (pruned.IsEmpty()) {
    std::printf("# EMPTY: the query can never match a valid document\n");
    return 0;
  }
  std::printf("%s", schema::FormatSchema(pruned, vocab).c_str());
  if (auto witness = automata::WitnessHedge(pruned.nha());
      witness.has_value()) {
    xml::XmlDocument wrapped = xml::WrapHedge(*witness, vocab);
    std::printf("# sample member: %s\n",
                xml::SerializeXml(wrapped, vocab).c_str());
  }
  return 0;
}

int CmdExample(const std::string& schema_file, const std::string& query_text) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto grammar = ReadFile(schema_file);
  if (!grammar.ok()) return Fail(grammar.status().ToString());
  auto input = schema::ParseSchema(*grammar, vocab);
  if (!input.ok()) return Fail(input.status().ToString());
  auto query = query::ParseSelectionQuery(query_text, vocab);
  if (!query.ok()) return Fail(query.status().ToString());
  auto sample = schema::SampleMatchingDocument(*input, *query);
  if (!sample.ok()) return Fail(sample.status().ToString());
  if (!sample->has_value()) {
    std::printf("no valid document matches this query\n");
    return 2;
  }
  xml::XmlDocument wrapped = xml::WrapHedge((*sample)->document, vocab);
  std::printf("%s\n", xml::SerializeXml(wrapped, vocab).c_str());
  std::printf("located: %s at %s\n",
              vocab.symbols
                  .NameOf((*sample)->document.label((*sample)->located).id)
                  .c_str(),
              DeweyString((*sample)->document, (*sample)->located).c_str());
  return 0;
}

int CmdContains(const std::string& schema_file, const std::string& q1_text,
                const std::string& q2_text) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto grammar = ReadFile(schema_file);
  if (!grammar.ok()) return Fail(grammar.status().ToString());
  auto input = schema::ParseSchema(*grammar, vocab);
  if (!input.ok()) return Fail(input.status().ToString());
  auto q1 = query::ParseSelectionQuery(q1_text, vocab);
  if (!q1.ok()) return Fail(q1.status().ToString());
  auto q2 = query::ParseSelectionQuery(q2_text, vocab);
  if (!q2.ok()) return Fail(q2.status().ToString());

  auto result = schema::QueryContainment(*input, *q1, *q2);
  if (!result.ok()) return Fail(result.status().ToString());
  if (result->contained) {
    std::printf("contained: every node located by Q1 is located by Q2\n");
    return 0;
  }
  std::printf("NOT contained\n");
  if (result->counterexample.has_value()) {
    xml::XmlDocument wrapped =
        xml::WrapHedge(result->counterexample->document, vocab);
    std::printf("counterexample: %s\n",
                xml::SerializeXml(wrapped, vocab).c_str());
    std::printf("Q1 locates %s at %s; Q2 does not\n",
                vocab.symbols
                    .NameOf(result->counterexample->document
                                .label(result->counterexample->located)
                                .id)
                    .c_str(),
                DeweyString(result->counterexample->document,
                            result->counterexample->located)
                    .c_str());
  }
  return 2;
}

int CmdGen(const std::string& kind, size_t nodes, uint64_t seed) {
  hedge::Vocabulary vocab;
  Rng rng(seed);
  hedge::Hedge doc;
  if (kind == "article") {
    workload::ArticleOptions options;
    options.target_nodes = nodes;
    doc = workload::RandomArticle(rng, vocab, options);
  } else if (kind == "random") {
    workload::RandomHedgeOptions options;
    options.target_nodes = nodes;
    doc = workload::RandomHedge(rng, vocab, options);
  } else {
    return Fail("unknown generator '" + kind + "' (article|random)");
  }
  xml::XmlDocument wrapped = xml::WrapHedge(doc, vocab);
  std::printf("%s\n", xml::SerializeXml(wrapped, vocab).c_str());
  return 0;
}

int CmdSchemaDiff(const std::string& file_a, const std::string& file_b) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto ga = ReadFile(file_a);
  if (!ga.ok()) return Fail(ga.status().ToString());
  auto gb = ReadFile(file_b);
  if (!gb.ok()) return Fail(gb.status().ToString());
  auto a = schema::ParseSchema(*ga, vocab);
  if (!a.ok()) return Fail(file_a + ": " + a.status().ToString());
  auto b = schema::ParseSchema(*gb, vocab);
  if (!b.ok()) return Fail(file_b + ": " + b.status().ToString());

  auto ab = schema::SchemaIncludes(*a, *b);
  auto ba = schema::SchemaIncludes(*b, *a);
  if (!ab.ok()) return Fail(ab.status().ToString());
  if (!ba.ok()) return Fail(ba.status().ToString());
  if (*ab && *ba) {
    std::printf("equivalent\n");
    return 0;
  }
  std::printf("%s\n", *ab   ? "A is strictly included in B"
                      : *ba ? "B is strictly included in A"
                            : "incomparable");
  auto show_witness = [&](const schema::Schema& x, const schema::Schema& y,
                          const char* which) {
    auto diff = schema::DifferenceSchemas(x, y);
    if (!diff.ok()) return;
    if (auto witness = automata::WitnessHedge(diff->nha());
        witness.has_value()) {
      xml::XmlDocument wrapped = xml::WrapHedge(*witness, vocab);
      std::printf("only in %s: %s\n", which,
                  xml::SerializeXml(wrapped, vocab).c_str());
    }
  };
  if (!*ab) show_witness(*a, *b, "A");
  if (!*ba) show_witness(*b, *a, "B");
  return 3;
}

int CmdCanon(const std::string& schema_file) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto grammar = ReadFile(schema_file);
  if (!grammar.ok()) return Fail(grammar.status().ToString());
  auto input = schema::ParseSchema(*grammar, vocab);
  if (!input.ok()) return Fail(input.status().ToString());
  // Canonicalization has no lazy equivalent, so a missed deadline
  // surfaces here as exit 4 rather than a degraded answer.
  auto det = automata::Determinize(input->nha(), FlagBudget());
  if (!det.ok()) return FailStatus(det.status());
  automata::Dha min = automata::MinimizeDha(det->dha);
  schema::Schema canon(
      automata::PruneNha(automata::DhaToNha(min, input->Variables())));
  std::printf("# canonical (determinized, minimized, pruned) form\n%s",
              schema::FormatSchema(canon, vocab).c_str());
  return 0;
}

// Round-trips an obs-produced JSON artifact (metrics snapshot, flight
// recorder dump, BENCH_*.json) through the obs JSON parser — the check.sh
// gates use it to assert dumps are machine-readable without needing an
// external JSON tool.
int CmdObsParse(const std::string& file) {
  auto text = ReadFile(file);
  if (!text.ok()) return Fail(text.status().ToString());
  auto parsed = obs::json::Parse(*text);
  if (!parsed.ok()) return Fail(file + ": " + parsed.status().ToString());
  std::printf("ok\n");
  return 0;
}

// ---------------------------------------------------------------------------
// hq repl — a long-running session against warm state: one vocabulary, one
// loaded document, and a per-query-text evaluator memo, so repeating a
// query skips every compile stage (the per-command stats line then shows
// no automata.determinize at all). Combined with --cache-dir even the
// first compile of a previously-seen query loads certified automata
// instead of determinizing.

// EINTR-aware line read: --flight-recorder installs a SIGUSR1 handler
// without SA_RESTART, so a signal during a blocked read lands here and the
// dump happens immediately instead of after the next keystroke.
bool ReplReadLine(std::string& line, tools::ObsCli& obs_cli) {
  line.clear();
  char buf[4096];
  for (;;) {
    errno = 0;
    if (std::fgets(buf, sizeof(buf), stdin) == nullptr) {
      if (errno == EINTR && !std::feof(stdin)) {
        std::clearerr(stdin);
        if (tools::ObsCli::TakeSignalDumpRequest()) obs_cli.DumpFlightRecorder();
        // SIGTERM/SIGINT: behave like 'quit' — the caller drains and
        // returns through main, so metrics + flight recorder flush.
        if (tools::ObsCli::TerminationRequested()) return false;
        continue;
      }
      return !line.empty();  // EOF: deliver a final unterminated line
    }
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      return true;
    }
  }
}

// The per-command stats line: wall time, the stages that actually ran this
// command (biggest first — a warm evaluator memo hit shows no compile
// stages), cache verdicts and the certify fraction when they moved.
void ReplPrintStats(const obs::ScopeSnapshot& snap) {
  std::string line = "#";
  char num[64];
  std::snprintf(num, sizeof(num), " %.3f ms", snap.wall_ns / 1e6);
  line += num;
  std::vector<obs::SpanAggregate> stages = snap.spans;
  std::sort(stages.begin(), stages.end(),
            [](const obs::SpanAggregate& a, const obs::SpanAggregate& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  if (!stages.empty()) {
    line += " | stages:";
    size_t shown = 0;
    for (const obs::SpanAggregate& s : stages) {
      if (++shown > 8) break;
      std::snprintf(num, sizeof(num), "=%.3fms", s.total_ns / 1e6);
      line += " " + s.name + num;
    }
  }
  const uint64_t hits = snap.CounterValue(obs::metrics::kCacheHit);
  const uint64_t misses = snap.CounterValue(obs::metrics::kCacheMiss);
  if (hits != 0 || misses != 0) {
    std::snprintf(num, sizeof(num), " | cache hit=%llu miss=%llu",
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses));
    line += num;
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == obs::metrics::kDetCertifyFracPct) {
      std::snprintf(num, sizeof(num), " | certify=%llu%%",
                    static_cast<unsigned long long>(value));
      line += num;
    }
  }
  std::printf("%s\n", line.c_str());
}

void ReplHelp() {
  std::printf(
      "repl commands:\n"
      "  load FILE              parse an XML document ('-' = stdin is taken\n"
      "                         by the repl; use a file path)\n"
      "  gen article|random N [seed]   generate a synthetic document\n"
      "  query QUERY            evaluate a selection query against the\n"
      "                         loaded document (evaluators are memoized by\n"
      "                         query text: repeats skip all compilation)\n"
      "  validate SCHEMA_FILE   validate the loaded document\n"
      "  timings                per-stage wall-time table (whole session)\n"
      "  metrics                metrics snapshot JSON\n"
      "  prom                   metrics in Prometheus text format\n"
      "  flight                 dump the flight recorder (to the\n"
      "                         --flight-recorder file, else stdout)\n"
      "  help                   this text\n"
      "  quit | exit            leave (EOF works too)\n"
      "each command ends with a '# <ms> | stages: ...' stats line\n");
}

int CmdRepl(tools::ObsCli& obs_cli) {
  // The repl is an observability surface: metrics and scopes are always on
  // so the stats lines have something to report, whatever flags were given.
  obs::RegisterCatalogue();
  obs::SetEnabled(true);
  // SIGTERM/SIGINT read as 'quit': the loop breaks, the engine drains, and
  // metrics + flight recorder flush on the way out of main.
  tools::ObsCli::InstallTerminationHandlers();
  hedge::Vocabulary vocab;
  BindCache(vocab);
  // load/query route through the serving engine: the document and the
  // evaluator memo live there, and --deadline-ms is re-armed per served
  // request at admission (not one process-wide expiry), so a long session
  // never has later commands spuriously expire.
  serve::EngineOptions engine_options;
  engine_options.workers = 2;
  engine_options.deadline_set = g_deadline_set;
  engine_options.deadline_ms = g_deadline_ms;
  serve::Engine engine(vocab, engine_options);
  engine.Start();
  const bool tty = isatty(fileno(stdin)) != 0;
  if (tty) {
    std::printf("hq repl — 'help' lists commands, 'quit' leaves\n");
  }
  std::string line;
  for (;;) {
    if (tty) {
      std::printf("hq> ");
      std::fflush(stdout);
    }
    if (tools::ObsCli::TakeSignalDumpRequest()) obs_cli.DumpFlightRecorder();
    if (!ReplReadLine(line, obs_cli)) break;
    // Strip comments and surrounding whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    line = line.substr(begin, line.find_last_not_of(" \t") - begin + 1);
    const size_t space = line.find(' ');
    const std::string cmd = line.substr(0, space);
    std::string rest =
        space == std::string::npos ? "" : line.substr(space + 1);
    const size_t rb = rest.find_first_not_of(" \t");
    rest = rb == std::string::npos ? "" : rest.substr(rb);

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      ReplHelp();
      continue;
    }
    if (cmd == "timings") {
      tools::ObsCli::PrintTimings("-");
      continue;
    }
    if (cmd == "metrics") {
      std::printf("%s\n", obs::Registry().MetricsJson().c_str());
      continue;
    }
    if (cmd == "prom") {
      std::printf("%s", obs::PrometheusText().c_str());
      continue;
    }
    if (cmd == "flight") {
      if (obs_cli.flight_enabled()) {
        if (obs_cli.DumpFlightRecorder()) {
          std::printf("flight recorder written to %s\n",
                      obs_cli.flight_file().c_str());
        }
      } else {
        std::printf("%s", obs::FlightRecorderJson().c_str());
      }
      continue;
    }

    if (cmd == "query" && !rest.empty()) {
      // Served request: it runs on the engine's worker pool under its own
      // QueryScope, so the stats line (and flight record) comes from the
      // worker's snapshot and covers exactly this request's work.
      serve::Response resp = engine.Submit(rest, "repl:" + line).get();
      if (resp.outcome == serve::Outcome::kShed ||
          resp.outcome == serve::Outcome::kError) {
        std::printf("error: %s\n", resp.status.ToString().c_str());
      } else {
        for (const std::string& row : resp.answer) {
          std::printf("%s\n", row.c_str());
        }
        std::printf("(%zu located)\n", resp.located);
      }
      ReplPrintStats(resp.scope);
      continue;
    }

    // Document/control commands run on the repl thread under a per-command
    // QueryScope, so their stats lines cover exactly this command's work.
    obs::QueryScope scope("repl:" + line);
    bool failed = false;
    if (cmd == "load" && !rest.empty()) {
      auto loaded = engine.LoadDocumentFile(rest);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        failed = true;
      } else {
        std::printf("loaded %s (%zu nodes)\n", rest.c_str(), *loaded);
      }
    } else if (cmd == "gen") {
      std::istringstream ss(rest);
      std::string kind;
      size_t nodes = 0;
      uint64_t seed = 42;
      ss >> kind >> nodes;
      ss >> seed;
      Rng rng(seed);
      hedge::Hedge h;
      {
        std::lock_guard<std::mutex> vlock(engine.vocab_mutex());
        if (kind == "article") {
          workload::ArticleOptions options;
          options.target_nodes = nodes;
          h = workload::RandomArticle(rng, vocab, options);
        } else if (kind == "random") {
          workload::RandomHedgeOptions options;
          options.target_nodes = nodes;
          h = workload::RandomHedge(rng, vocab, options);
        } else {
          std::printf("error: gen article|random N [seed]\n");
          failed = true;
        }
      }
      if (!failed) {
        xml::XmlDocument wrapped;
        {
          std::lock_guard<std::mutex> vlock(engine.vocab_mutex());
          wrapped = xml::WrapHedge(h, vocab);
        }
        // Outside the vocabulary lock: SetDocument waits for the pool to
        // go idle, and in-flight workers may need that lock to finish.
        const size_t doc_nodes = engine.SetDocument(std::move(wrapped));
        std::printf("generated %s document (%zu nodes)\n", kind.c_str(),
                    doc_nodes);
      }
    } else if (cmd == "validate" && !rest.empty()) {
      auto doc = engine.document();
      if (doc == nullptr) {
        std::printf("error: no document loaded (use load/gen first)\n");
        failed = true;
      } else {
        auto grammar = ReadFile(rest);
        if (!grammar.ok()) {
          std::printf("error: %s\n", grammar.status().ToString().c_str());
          failed = true;
        } else {
          std::lock_guard<std::mutex> vlock(engine.vocab_mutex());
          auto schema = schema::ParseSchema(*grammar, vocab);
          if (!schema.ok()) {
            std::printf("error: %s\n", schema.status().ToString().c_str());
            failed = true;
          } else {
            std::printf("%s\n",
                        schema->Validates(doc->hedge) ? "valid" : "INVALID");
          }
        }
      }
    } else {
      std::printf("error: unknown command '%s' (try 'help')\n", cmd.c_str());
      failed = true;
    }
    if (failed) scope.Annotate("outcome", "error");
    ReplPrintStats(scope.Snapshot());
  }
  engine.Stop();
  return 0;
}

// ---------------------------------------------------------------------------
// hq serve — the batch/fifo front end of serve::Engine. Reads one request
// per line from --requests=FILE (or stdin with '-'):
//
//   load PATH                     install an XML document (barrier)
//   gen article|random N [seed]   install a synthetic document (barrier)
//   query TEXT                    evaluate a selection query
//
// and emits exactly one result line per request on stdout, in request
// order: "<idx> <outcome> ..." with outcome in {ok, shed, degraded,
// retried, error}. SIGTERM/SIGINT drain gracefully: admission stops,
// queued + in-flight requests finish, every pending result line is still
// printed, metrics and the flight recorder flush, and the exit code is 0.

// EINTR-aware request read; returns false on EOF or a termination signal
// (the caller drains either way).
bool ServeReadLine(std::FILE* in, std::string& line, tools::ObsCli& obs_cli) {
  line.clear();
  char buf[4096];
  for (;;) {
    if (tools::ObsCli::TerminationRequested()) return false;
    errno = 0;
    if (std::fgets(buf, sizeof(buf), in) == nullptr) {
      if (errno == EINTR && !std::feof(in)) {
        std::clearerr(in);
        if (tools::ObsCli::TakeSignalDumpRequest()) obs_cli.DumpFlightRecorder();
        continue;
      }
      return !line.empty();
    }
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      return true;
    }
  }
}

int CmdServe(const std::vector<std::string>& args, tools::ObsCli& obs_cli) {
  serve::EngineOptions options;
  options.deadline_set = g_deadline_set;
  options.deadline_ms = g_deadline_ms;
  std::string requests_path = "-";
  bool chaos_report = false;
  std::vector<std::string> failpoint_specs;
  for (const std::string& a : args) {
    if (a.rfind("--workers=", 0) == 0) {
      options.workers = static_cast<size_t>(
          std::atol(a.c_str() + sizeof("--workers=") - 1));
    } else if (a.rfind("--queue-cap=", 0) == 0) {
      options.queue_cap = static_cast<size_t>(
          std::atol(a.c_str() + sizeof("--queue-cap=") - 1));
    } else if (a.rfind("--requests=", 0) == 0) {
      requests_path = a.substr(sizeof("--requests=") - 1);
    } else if (a.rfind("--retry-max=", 0) == 0) {
      options.retry.max_attempts =
          std::atoi(a.c_str() + sizeof("--retry-max=") - 1);
    } else if (a.rfind("--retry-backoff-ms=", 0) == 0) {
      options.retry.backoff_base_ms = static_cast<uint64_t>(
          std::atoll(a.c_str() + sizeof("--retry-backoff-ms=") - 1));
    } else if (a.rfind("--retry-backoff-max-ms=", 0) == 0) {
      options.retry.backoff_max_ms = static_cast<uint64_t>(
          std::atoll(a.c_str() + sizeof("--retry-backoff-max-ms=") - 1));
    } else if (a.rfind("--breaker-threshold=", 0) == 0) {
      options.breaker.failure_threshold =
          std::atoi(a.c_str() + sizeof("--breaker-threshold=") - 1);
    } else if (a.rfind("--breaker-open-ms=", 0) == 0) {
      options.breaker.open_ms = static_cast<uint64_t>(
          std::atoll(a.c_str() + sizeof("--breaker-open-ms=") - 1));
    } else if (a == "--no-memoize") {
      options.memoize = false;
    } else if (a.rfind("--failpoint=", 0) == 0) {
      failpoint_specs.push_back(a.substr(sizeof("--failpoint=") - 1));
    } else if (a == "--chaos-report") {
      chaos_report = true;
    } else {
      return Fail("serve: unknown option '" + a + "'");
    }
  }
  for (const std::string& spec : failpoint_specs) {
    Status armed = failpoint::ArmSpec(spec);
    if (!armed.ok()) return Fail(armed.ToString());
  }

  std::FILE* in = stdin;
  if (requests_path != "-") {
    in = std::fopen(requests_path.c_str(), "r");
    if (in == nullptr) return Fail("cannot open " + requests_path);
  }

  tools::ObsCli::InstallTerminationHandlers();
  hedge::Vocabulary vocab;
  BindCache(vocab);
  serve::Engine engine(vocab, options);
  engine.Start();

  struct Pending {
    size_t idx;
    std::future<serve::Response> future;
  };
  std::vector<Pending> pending;
  std::vector<std::string> results;  // indexed by request idx

  auto result_slot = [&results](size_t idx) -> std::string& {
    if (idx >= results.size()) results.resize(idx + 1);
    return results[idx];
  };
  auto resolve_pending = [&]() {
    for (Pending& p : pending) {
      serve::Response resp = p.future.get();
      std::string line =
          StrCat(p.idx, " ", serve::OutcomeName(resp.outcome),
                 " located=", resp.located, " attempts=", resp.attempts,
                 " wait_us=", resp.queue_wait_us);
      if (!resp.status.ok()) line += " " + resp.status.ToString();
      result_slot(p.idx) = std::move(line);
    }
    pending.clear();
  };

  size_t idx = 0;
  std::string line;
  while (ServeReadLine(in, line, obs_cli)) {
    // Strip comments and whitespace; blank lines are not requests.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    line = line.substr(begin, line.find_last_not_of(" \t") - begin + 1);
    const size_t space = line.find(' ');
    const std::string cmd = line.substr(0, space);
    std::string rest =
        space == std::string::npos ? "" : line.substr(space + 1);
    const size_t rb = rest.find_first_not_of(" \t");
    rest = rb == std::string::npos ? "" : rest.substr(rb);
    const size_t my_idx = idx++;

    if (cmd == "query" && !rest.empty()) {
      pending.push_back(
          {my_idx, engine.Submit(rest, "serve:" + line)});
      continue;
    }
    // Document installs are barriers: outstanding queries resolve against
    // the old document first.
    resolve_pending();
    if (cmd == "load" && !rest.empty()) {
      auto loaded = engine.LoadDocumentFile(rest);
      result_slot(my_idx) =
          loaded.ok() ? StrCat(my_idx, " ok nodes=", *loaded)
                      : StrCat(my_idx, " error ",
                               loaded.status().ToString());
    } else if (cmd == "gen") {
      std::istringstream ss(rest);
      std::string kind;
      size_t nodes = 0;
      uint64_t seed = 42;
      ss >> kind >> nodes;
      ss >> seed;
      Rng rng(seed);
      hedge::Hedge h;
      bool gen_ok = true;
      {
        std::lock_guard<std::mutex> vlock(engine.vocab_mutex());
        if (kind == "article") {
          workload::ArticleOptions gen_options;
          gen_options.target_nodes = nodes;
          h = workload::RandomArticle(rng, vocab, gen_options);
        } else if (kind == "random") {
          workload::RandomHedgeOptions gen_options;
          gen_options.target_nodes = nodes;
          h = workload::RandomHedge(rng, vocab, gen_options);
        } else {
          gen_ok = false;
        }
      }
      if (gen_ok) {
        xml::XmlDocument wrapped;
        {
          std::lock_guard<std::mutex> vlock(engine.vocab_mutex());
          wrapped = xml::WrapHedge(h, vocab);
        }
        const size_t doc_nodes = engine.SetDocument(std::move(wrapped));
        result_slot(my_idx) = StrCat(my_idx, " ok nodes=", doc_nodes);
      } else {
        result_slot(my_idx) =
            StrCat(my_idx, " error gen article|random N [seed]");
      }
    } else {
      result_slot(my_idx) =
          StrCat(my_idx, " error unknown request '", cmd, "'");
    }
  }
  if (in != stdin) std::fclose(in);

  // Drain: stop admitting, let queued + in-flight requests finish, then
  // resolve every outstanding future so each request has its result line.
  engine.Drain();
  resolve_pending();
  for (const std::string& result : results) {
    std::printf("%s\n", result.c_str());
  }
  std::fflush(stdout);

  const serve::Engine::Counters tally = engine.counters();
  std::fprintf(stderr,
               "# serve: requests=%zu ok=%llu degraded=%llu retried=%llu "
               "shed=%llu error=%llu retry_attempts=%llu breaker_trips=%llu%s\n",
               idx, static_cast<unsigned long long>(tally.ok),
               static_cast<unsigned long long>(tally.degraded),
               static_cast<unsigned long long>(tally.retried),
               static_cast<unsigned long long>(tally.shed),
               static_cast<unsigned long long>(tally.errors),
               static_cast<unsigned long long>(tally.retry_attempts),
               static_cast<unsigned long long>(tally.breaker_trips),
               tools::ObsCli::TerminationRequested() ? " (drained on signal)"
                                                     : "");
  if (chaos_report) {
    for (const std::string& name : failpoint::ArmedPoints()) {
      std::fprintf(stderr, "# chaos: %s hits=%llu fired=%llu\n", name.c_str(),
                   static_cast<unsigned long long>(failpoint::HitCount(name)),
                   static_cast<unsigned long long>(
                       failpoint::FiredCount(name)));
    }
  }
  engine.Stop();
  failpoint::DisarmAll();
  return 0;
}

int CmdAmbiguous(const std::string& expr) {
  hedge::Vocabulary vocab;
  BindCache(vocab);
  auto e = hre::ParseHre(expr, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  bool ambiguous = automata::IsAmbiguous(hre::CompileHre(*e));
  std::printf("%s\n", ambiguous ? "ambiguous" : "unambiguous");
  return ambiguous ? 2 : 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hq query '<selection query>' file.xml\n"
      "  hq xpath '<location path>' file.xml\n"
      "  hq validate schema.grammar file.xml\n"
      "  hq transform select|delete schema.grammar '<query>'\n"
      "  hq transform rename schema.grammar '<query>' <new-name>\n"
      "  hq gen article|random <nodes> [seed]\n"
      "  hq example schema.grammar '<query>'   (synthesize a matching doc)\n"
      "  hq contains schema.grammar '<q1>' '<q2>'  (query containment)\n"
      "  hq schema-diff a.grammar b.grammar\n"
      "  hq canon schema.grammar               (canonical minimized form)\n"
      "  hq ambiguous '<hedge regular expression>'\n"
      "  hq repl                               (interactive session: warm\n"
      "                     evaluator memo + cache; 'help' lists commands)\n"
      "  hq serve [--workers=N] [--queue-cap=M] [--requests=FILE|-]\n"
      "                     (concurrent query service: admission control,\n"
      "                     load shedding, retry, circuit breaker, graceful\n"
      "                     drain on SIGTERM/SIGINT; one result line per\n"
      "                     request; see also --retry-max=N,\n"
      "                     --retry-backoff-ms=N, --breaker-threshold=N,\n"
      "                     --breaker-open-ms=N, --no-memoize,\n"
      "                     --failpoint=SPEC (repeatable), --chaos-report)\n"
      "  hq obs-parse FILE  (round-trip an obs JSON artifact; exit 0 iff ok)\n"
      "options (any command):\n"
      "  --metrics[=FILE]   emit a metrics snapshot (stderr, or FILE)\n"
      "  --metrics-format=prom|json  snapshot format (default json);\n"
      "                     prom is Prometheus text exposition\n"
      "  --trace=FILE       write a Chrome trace_event file\n"
      "  --timings[=FILE]   per-stage wall-time summary, sorted by total\n"
      "                     time descending (stderr, or FILE)\n"
      "  --flight-recorder=FILE  record per-query flight records; dump\n"
      "                     them to FILE at exit (and on SIGUSR1 in repl)\n"
      "  --cache-dir=DIR    persistent automaton cache (entries are\n"
      "                     certificate-checked on every load)\n"
      "  --cache-max-bytes=N  evict oldest entries past N total bytes on\n"
      "                     every store (the just-written entry survives)\n"
      "  --cache-max-age-s=N  evict entries older than N seconds on store\n"
      "  --deadline-ms=N    wall-clock deadline for exponential\n"
      "                     preprocessing (degrades to the lazy engine\n"
      "                     where one exists, else exits 4)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  tools::ObsCli obs_cli;  // flushes --metrics/--trace output on any return
  obs_cli.Configure(args);
  {
    std::vector<std::string> kept;
    kept.reserve(args.size());
    uint64_t cache_max_bytes = 0;
    uint64_t cache_max_age_s = 0;
    for (std::string& a : args) {
      if (a.rfind("--cache-dir=", 0) == 0) {
        auto opened =
            cache::AutomatonCache::Open(a.substr(sizeof("--cache-dir=") - 1));
        if (!opened.ok()) return Fail(opened.status().ToString());
        g_cache = std::move(opened).value();
        automata::SetDeterminizeCache(g_cache.get());
      } else if (a.rfind("--cache-max-bytes=", 0) == 0) {
        cache_max_bytes = static_cast<uint64_t>(
            std::atoll(a.c_str() + sizeof("--cache-max-bytes=") - 1));
      } else if (a.rfind("--cache-max-age-s=", 0) == 0) {
        cache_max_age_s = static_cast<uint64_t>(
            std::atoll(a.c_str() + sizeof("--cache-max-age-s=") - 1));
      } else if (a.rfind("--deadline-ms=", 0) == 0) {
        g_deadline_set = true;
        g_deadline_ms = static_cast<uint64_t>(
            std::atoll(a.c_str() + sizeof("--deadline-ms=") - 1));
      } else {
        kept.push_back(std::move(a));
      }
    }
    // Bounds may appear before --cache-dir on the command line; apply them
    // once the cache (if any) exists.
    if (g_cache != nullptr) {
      g_cache->set_max_bytes(cache_max_bytes);
      g_cache->set_max_age_seconds(cache_max_age_s);
    }
    args = std::move(kept);
  }
  const size_t n = args.size();
  if (n < 1) {
    Usage();
    return 1;
  }
  const std::string& cmd = args[0];
  // The repl opens its own per-command scopes; everything else runs under
  // one per-invocation QueryScope so --flight-recorder captures one-shot
  // commands too (inert unless observability is on).
  if (cmd == "repl" && n == 1) return CmdRepl(obs_cli);
  // serve opens one QueryScope per request on its worker threads.
  if (cmd == "serve") {
    return CmdServe({args.begin() + 1, args.end()}, obs_cli);
  }
  obs::QueryScope scope("hq " + cmd);
  if (cmd == "obs-parse" && n == 2) return CmdObsParse(args[1]);
  if (cmd == "query" && n == 3) return CmdQuery(args[1], args[2]);
  if (cmd == "xpath" && n == 3) return CmdXPath(args[1], args[2]);
  if (cmd == "validate" && n == 3) return CmdValidate(args[1], args[2]);
  if (cmd == "transform" && (n == 4 || n == 5)) {
    return CmdTransform(args[1], args[2], args[3],
                        n == 5 ? args[4].c_str() : nullptr);
  }
  if (cmd == "gen" && (n == 3 || n == 4)) {
    return CmdGen(args[1], static_cast<size_t>(std::atol(args[2].c_str())),
                  n == 4 ? static_cast<uint64_t>(std::atoll(args[3].c_str()))
                         : 42);
  }
  if (cmd == "schema-diff" && n == 3) {
    return CmdSchemaDiff(args[1], args[2]);
  }
  if (cmd == "example" && n == 3) return CmdExample(args[1], args[2]);
  if (cmd == "contains" && n == 4) {
    return CmdContains(args[1], args[2], args[3]);
  }
  if (cmd == "canon" && n == 2) return CmdCanon(args[1]);
  if (cmd == "ambiguous" && n == 2) return CmdAmbiguous(args[1]);
  Usage();
  return 1;
}
