// hedgeq_verify — translation validation front end for the hedgeq library.
//
//   hedgeq_verify expr '<hedge regular expression>'
//   hedgeq_verify oracle '<hedge regular expression>' [max_size] [samples]
//   hedgeq_verify query '<selection query>'
//   hedgeq_verify minimize '<hedge regular expression>'
//   hedgeq_verify containment <schema-file|-> '<q1>' '<q2>'
//   hedgeq_verify select-oracle '<selection query>' [max_size] [samples]
//   hedgeq_verify from-nha '<hedge regular expression>'
//   hedgeq_verify algebra <intersect|union|difference> <a.grammar> <b.grammar>
//   hedgeq_verify emit-cert <det|trim|min|from-nha> '<expression>'
//   hedgeq_verify emit-cert containment <schema-file|-> '<q1>' '<q2>'
//   hedgeq_verify emit-cert algebra <op> <a.grammar> <b.grammar>
//   hedgeq_verify [--check=light|full] cert <file|->
//   hedgeq_verify from-json <file|->
//
// `expr` runs the whole pipeline on one expression — compile trace, trim,
// subset construction, lazy-evaluation audit — validating every step with
// the independent checker, then cross-runs all engines on an enumerated +
// sampled hedge corpus (the differential oracle). `query` validates the
// shared-automaton determinization *and* the Theorem 4 class product /
// mirror inside PHR compilation. `minimize` determinizes the expression's
// automaton, minimizes it, and validates the block partition.
// `containment` decides q1 ⊆ q2 under the schema and validates the verdict
// (counterexample replay through the naive evaluator on separation).
// `select-oracle` cross-runs every selection engine — eager, forced-lazy,
// reference matcher, naive enumerator — and compares located node sets.
// `emit-cert` prints a serialized certificate; `cert` re-checks one
// (possibly from another process or machine). Findings use the HQV0xx code
// family; pass --json anywhere for the structured report (round-trips via
// from-json).
//
// Exit codes: 0 clean, 2 at least one error finding, 1 bad input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "hre/from_nha.h"
#include "lint/diagnostics.h"
#include "query/selection.h"
#include "schema/algebra.h"
#include "schema/schema.h"
#include "util/failpoint.h"
#include "verify/certificate.h"
#include "verify/checker.h"
#include "verify/enumerate.h"
#include "verify/oracle.h"

#include "obs_cli.h"

namespace {

using namespace hedgeq;

// Process-wide --metrics/--trace state; flushed by its destructor on exit.
tools::ObsCli g_obs;

int Fail(const std::string& message) {
  std::fprintf(stderr, "hedgeq_verify: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int Emit(const std::vector<lint::Diagnostic>& diagnostics, bool json) {
  if (json) {
    if (g_obs.metrics_requested()) {
      // --json --metrics: one merged object so consumers get findings and
      // the metrics snapshot in a single document. Without --metrics the
      // output stays the bare diagnostics array (round-trips via
      // from-json).
      std::printf("{\"diagnostics\": %s,\n\"obs\": %s}\n",
                  lint::DiagnosticsToJson(diagnostics).c_str(),
                  g_obs.TakeMetricsJson().c_str());
    } else {
      std::printf("%s", lint::DiagnosticsToJson(diagnostics).c_str());
    }
  } else {
    for (const lint::Diagnostic& d : diagnostics) {
      std::printf("%s\n", lint::FormatDiagnostic(d).c_str());
    }
    if (diagnostics.empty()) std::printf("clean: no findings\n");
  }
  return lint::HasErrors(diagnostics) ? 2 : 0;
}

void Append(std::vector<lint::Diagnostic>& all,
            std::vector<lint::Diagnostic> more) {
  for (lint::Diagnostic& d : more) all.push_back(std::move(d));
}

// Every label the vocabulary knows (interner ids are dense).
verify::EnumVocab VocabUniverse(const hedge::Vocabulary& vocab) {
  verify::EnumVocab ev;
  for (InternId i = 0; i < vocab.symbols.size(); ++i) ev.symbols.push_back(i);
  for (InternId i = 0; i < vocab.variables.size(); ++i) {
    ev.variables.push_back(i);
  }
  for (InternId i = 0; i < vocab.substs.size(); ++i) ev.substs.push_back(i);
  return ev;
}

int CmdExpr(const std::string& text, bool json) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(text, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  std::vector<lint::Diagnostic> all;

  BudgetScope scope{ExecBudget{}};
  hre::CompileTrace trace;
  auto nha = hre::CompileHre(*e, scope, &trace);
  if (!nha.ok()) return Fail(nha.status().ToString());
  Append(all, verify::CheckCompile(*e, *nha, trace));

  automata::TrimWitness trim_witness;
  automata::Nha trimmed = automata::PruneNha(*nha, nullptr, &trim_witness);
  Append(all, verify::CheckTrim(*nha, trimmed, trim_witness));

  automata::DeterminizeWitness det_witness;
  auto det = automata::Determinize(*nha, scope, &det_witness);
  if (det.ok()) {
    Append(all, verify::CheckDeterminize(*nha, *det, det_witness));
  } else if (det.status().code() != StatusCode::kResourceExhausted) {
    return Fail(det.status().ToString());
  }

  // Drive the lazy engine over every hedge of up to 2 nodes and audit each
  // fresh (cache-miss) step it takes.
  automata::LazyDha lazy(*nha);
  std::vector<automata::LazyAuditEntry> audit;
  lazy.EnableAudit(&audit);
  verify::EnumVocab ev = VocabUniverse(vocab);
  for (size_t size = 0; size <= 2; ++size) {
    verify::EnumerateHedges(ev, size, 500, [&](const hedge::Hedge& h) {
      lazy.Accepts(h);
      return true;
    });
  }
  Append(all, verify::CheckLazyAudit(*nha, audit));

  auto oracle = verify::RunDifferentialOracle(*e, vocab);
  if (!oracle.ok()) return Fail(oracle.status().ToString());
  std::fprintf(stderr,
               "oracle: %zu hedges (%zu enumerated, %zu sampled), "
               "streaming %zu, validator %zu, naive-unknown %zu, eager=%d\n",
               oracle->hedges_checked, oracle->enumerated, oracle->sampled,
               oracle->streaming_checked, oracle->validator_checked,
               oracle->naive_unknown, oracle->eager_available ? 1 : 0);
  Append(all, oracle->diagnostics);
  return Emit(all, json);
}

int CmdOracle(const std::string& text, const std::vector<std::string>& rest,
              bool json) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(text, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  verify::OracleOptions options;
  if (rest.size() >= 1) options.max_size = std::stoul(rest[0]);
  if (rest.size() >= 2) options.samples = std::stoul(rest[1]);
  auto report = verify::RunDifferentialOracle(*e, vocab, options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::fprintf(stderr,
               "oracle: %zu hedges (%zu enumerated, %zu sampled), "
               "streaming %zu, validator %zu, naive-unknown %zu, eager=%d\n",
               report->hedges_checked, report->enumerated, report->sampled,
               report->streaming_checked, report->validator_checked,
               report->naive_unknown, report->eager_available ? 1 : 0);
  return Emit(report->diagnostics, json);
}

int CmdQuery(const std::string& text, bool json) {
  hedge::Vocabulary vocab;
  auto query = query::ParseSelectionQuery(text, vocab);
  if (!query.ok()) return Fail(query.status().ToString());
  BudgetScope scope{ExecBudget{}};
  query::PhrWitness witness;
  auto compiled = query::CompilePhr(query->envelope, scope, &witness);
  if (!compiled.ok()) return Fail(compiled.status().ToString());
  automata::Determinized det{compiled->dha(), compiled->subsets()};
  std::vector<lint::Diagnostic> all;
  Append(all, verify::CheckDeterminize(witness.union_nha, det, witness.det));
  Append(all, verify::CheckPhrProduct(query->envelope, *compiled, witness));
  return Emit(all, json);
}

int CmdMinimize(const std::string& text, bool json) {
  // The independent checker runs explicitly below; suppress the inline
  // hook so a seeded bug (--failpoint) surfaces as a reported finding
  // instead of aborting inside the construction (HEDGEQ_CERTIFY builds).
  automata::SetMinimizeValidationHook(nullptr);
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(text, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(*e, scope);
  if (!nha.ok()) return Fail(nha.status().ToString());
  auto det = automata::Determinize(*nha, scope);
  if (!det.ok()) return Fail(det.status().ToString());
  verify::Certificate cert = verify::BuildMinimizeCertificate(det->dha);
  std::fprintf(stderr, "minimize: %u -> %u states, %u -> %u h-states\n",
               cert.min_input.num_states(), cert.min_output.num_states(),
               cert.min_input.num_h_states(), cert.min_output.num_h_states());
  return Emit(verify::CheckCertificate(cert), json);
}

int CmdContainment(const std::string& schema_path, const std::string& q1,
                   const std::string& q2, bool json, bool emit_only) {
  // As in CmdMinimize: the explicit CheckCertificate below is the gate;
  // the inline hook would turn a seeded verdict flip into a build error.
  schema::SetContainmentValidationHook(nullptr);
  auto text = ReadFile(schema_path);
  if (!text.ok()) return Fail(text.status().ToString());
  hedge::Vocabulary vocab;
  auto schema = schema::ParseSchema(*text, vocab);
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto cert = verify::BuildContainmentCertificate(*schema, q1, q2, vocab);
  if (!cert.ok()) return Fail(cert.status().ToString());
  if (emit_only) {
    std::printf("%s", verify::SerializeCertificate(*cert, vocab).c_str());
    return 0;
  }
  std::fprintf(stderr, "containment: %s\n",
               cert->containment.contained ? "contained" : "separated");
  return Emit(verify::CheckCertificate(*cert), json);
}

int CmdSelectOracle(const std::string& text,
                    const std::vector<std::string>& rest, bool json) {
  hedge::Vocabulary vocab;
  auto query = query::ParseSelectionQuery(text, vocab);
  if (!query.ok()) return Fail(query.status().ToString());
  verify::OracleOptions options;
  if (rest.size() >= 1) options.max_size = std::stoul(rest[0]);
  if (rest.size() >= 2) options.samples = std::stoul(rest[1]);
  auto report = verify::RunSelectionOracle(*query, vocab, options);
  if (!report.ok()) return Fail(report.status().ToString());
  std::fprintf(stderr,
               "select-oracle: %zu hedges (%zu enumerated, %zu sampled), "
               "naive-unknown %zu, shrink-checks %zu, eager=%d\n",
               report->hedges_checked, report->enumerated, report->sampled,
               report->naive_unknown, report->shrink_checks,
               report->eager_available ? 1 : 0);
  return Emit(report->diagnostics, json);
}

int CmdEmitCert(const std::string& kind, const std::string& text) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(text, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(*e, scope);
  if (!nha.ok()) return Fail(nha.status().ToString());
  if (kind == "det") {
    auto cert = verify::BuildDeterminizeCertificate(*nha, scope);
    if (!cert.ok()) return Fail(cert.status().ToString());
    std::printf("%s", verify::SerializeCertificate(*cert, vocab).c_str());
    return 0;
  }
  if (kind == "trim") {
    verify::Certificate cert = verify::BuildTrimCertificate(*nha);
    std::printf("%s", verify::SerializeCertificate(cert, vocab).c_str());
    return 0;
  }
  if (kind == "min") {
    auto det = automata::Determinize(*nha, scope);
    if (!det.ok()) return Fail(det.status().ToString());
    verify::Certificate cert = verify::BuildMinimizeCertificate(det->dha);
    std::printf("%s", verify::SerializeCertificate(cert, vocab).c_str());
    return 0;
  }
  return Fail("emit-cert kind must be 'det', 'trim' or 'min'");
}

int CmdFromNha(const std::string& text, bool json, bool emit_only) {
  // As in CmdMinimize: the explicit CheckCertificate below is the gate; the
  // inline hook would turn a seeded drop-alternative into a build error.
  hre::SetFromNhaValidationHook(nullptr);
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(text, vocab);
  if (!e.ok()) return Fail(e.status().ToString());
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(*e, scope);
  if (!nha.ok()) return Fail(nha.status().ToString());
  auto cert = verify::BuildFromNhaCertificate(*nha, vocab);
  if (!cert.ok()) return Fail(cert.status().ToString());
  if (emit_only) {
    std::printf("%s", verify::SerializeCertificate(*cert, vocab).c_str());
    return 0;
  }
  std::fprintf(stderr, "from-nha: %u states, %zu splits, %zu entries\n",
               nha->num_states(), cert->fn.splits.size(),
               cert->fn.entries.size());
  return Emit(verify::CheckCertificate(*cert), json);
}

int CmdAlgebra(const std::string& op_word, const std::string& a_path,
               const std::string& b_path, bool json, bool emit_only) {
  // As above: report the seeded algebra/drop-rule as an HQV015 finding
  // instead of aborting inside the construction.
  schema::SetAlgebraValidationHook(nullptr);
  schema::AlgebraOp op;
  if (op_word == "intersect") {
    op = schema::AlgebraOp::kIntersect;
  } else if (op_word == "union") {
    op = schema::AlgebraOp::kUnion;
  } else if (op_word == "difference") {
    op = schema::AlgebraOp::kDifference;
  } else {
    return Fail("algebra op must be 'intersect', 'union' or 'difference'");
  }
  auto a_text = ReadFile(a_path);
  if (!a_text.ok()) return Fail(a_text.status().ToString());
  auto b_text = ReadFile(b_path);
  if (!b_text.ok()) return Fail(b_text.status().ToString());
  hedge::Vocabulary vocab;
  auto a = schema::ParseSchema(*a_text, vocab);
  if (!a.ok()) return Fail(a.status().ToString());
  auto b = schema::ParseSchema(*b_text, vocab);
  if (!b.ok()) return Fail(b.status().ToString());
  auto cert = verify::BuildAlgebraCertificate(*a, *b, op);
  if (!cert.ok()) return Fail(cert.status().ToString());
  if (emit_only) {
    std::printf("%s", verify::SerializeCertificate(*cert, vocab).c_str());
    return 0;
  }
  std::fprintf(stderr, "algebra: %s, %u x %u -> %u states\n",
               op_word.c_str(), a->nha().num_states(), b->nha().num_states(),
               cert->alg_out.num_states());
  return Emit(verify::CheckCertificate(*cert), json);
}

// Splits a file of concatenated serialized certificates at their "end"
// trailer lines. A lone "end" line only terminates a chunk when the next
// line opens a new certificate (or the file ends), so length-prefixed
// section content containing "end" stays inside its chunk.
std::vector<std::string> SplitCertificates(const std::string& text) {
  std::vector<std::string> chunks;
  std::string current;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    const bool last = nl == std::string::npos;
    std::string line =
        last ? text.substr(pos) : text.substr(pos, nl - pos + 1);
    pos = last ? text.size() : nl + 1;
    current += line;
    if (line == "end\n" || line == "end") {
      if (pos >= text.size() || text.compare(pos, 5, "cert ") == 0) {
        chunks.push_back(std::move(current));
        current.clear();
      }
    }
  }
  if (!current.empty()) chunks.push_back(std::move(current));
  return chunks;
}

int CmdCert(const std::string& path, bool json, bool light) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status().ToString());
  std::vector<std::string> chunks = SplitCertificates(*text);
  if (chunks.empty()) return Fail("no certificates in " + path);
  // Check every certificate in the file and report all findings at once —
  // a failed check must not hide later certificates' diagnostics.
  std::vector<lint::Diagnostic> all;
  for (size_t i = 0; i < chunks.size(); ++i) {
    const std::string where =
        chunks.size() == 1 ? std::string("certificate")
                           : "certificate " + std::to_string(i + 1);
    hedge::Vocabulary vocab;
    auto cert = verify::DeserializeCertificate(chunks[i], vocab);
    if (!cert.ok()) {
      all.push_back(lint::Diagnostic{
          lint::Severity::kError,
          lint::DiagnosticCode::kCertificateMalformed, where,
          "undeserializable: " + std::string(cert.status().message()),
          "the file is not (or no longer) a serialized hedgeq certificate"});
      continue;
    }
    size_t begin = all.size();
    Append(all, light ? verify::CheckCertificateLight(*cert)
                      : verify::CheckCertificate(*cert));
    if (chunks.size() > 1) {
      for (size_t d = begin; d < all.size(); ++d) {
        all[d].span = all[d].span.empty() ? where : where + ": " + all[d].span;
      }
    }
  }
  return Emit(all, json);
}

int CmdFromJson(const std::string& path, bool json) {
  auto text = ReadFile(path);
  if (!text.ok()) return Fail(text.status().ToString());
  auto diagnostics = lint::ParseDiagnosticsJson(*text);
  if (!diagnostics.ok()) return Fail(diagnostics.status().ToString());
  return Emit(*diagnostics, json);
}

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  hedgeq_verify [--json] expr '<hedge regular expression>'\n"
      "  hedgeq_verify [--json] oracle '<expression>' [max_size] [samples]\n"
      "  hedgeq_verify [--json] query '<selection query>'\n"
      "  hedgeq_verify [--json] minimize '<expression>'\n"
      "  hedgeq_verify [--json] containment <schema-file|-> '<q1>' '<q2>'\n"
      "  hedgeq_verify [--json] select-oracle '<query>' [max_size] "
      "[samples]\n"
      "  hedgeq_verify [--json] from-nha '<expression>'\n"
      "  hedgeq_verify [--json] algebra <intersect|union|difference> "
      "<a.grammar> <b.grammar>\n"
      "  hedgeq_verify emit-cert <det|trim|min|from-nha> '<expression>'\n"
      "  hedgeq_verify emit-cert containment <schema-file|-> '<q1>' '<q2>'\n"
      "  hedgeq_verify emit-cert algebra <op> <a.grammar> <b.grammar>\n"
      "  hedgeq_verify [--json] [--check=light|full] cert <file|->\n"
      "  hedgeq_verify [--json] from-json <file|->\n"
      "cert accepts a file of concatenated certificates and reports every\n"
      "finding of every certificate before exiting. --check=light uses the\n"
      "digest-chain light checker (HQV016) where a chain is present.\n"
      "exit: 0 certificates valid, 2 findings, 1 bad input\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool light = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg == "--json") {
      json = true;
    } else if (arg == "--check=light") {
      light = true;
    } else if (arg == "--check=full") {
      light = false;
    } else if (arg.rfind("--failpoint=", 0) == 0) {
      // Arms a seeded bug by name (see util/failpoint.h); check.sh uses
      // this to prove each checker catches its construction's failure.
      hedgeq::failpoint::Arm(arg.substr(12));
    } else {
      args.emplace_back(std::move(arg));
    }
  }
  g_obs.Configure(args);
  if (args.empty()) {
    Usage();
    return 1;
  }
  const std::string& cmd = args[0];
  if (cmd == "expr" && args.size() == 2) return CmdExpr(args[1], json);
  if (cmd == "oracle" && args.size() >= 2 && args.size() <= 4) {
    return CmdOracle(args[1],
                     std::vector<std::string>(args.begin() + 2, args.end()),
                     json);
  }
  if (cmd == "query" && args.size() == 2) return CmdQuery(args[1], json);
  if (cmd == "minimize" && args.size() == 2) return CmdMinimize(args[1], json);
  if (cmd == "containment" && args.size() == 4) {
    return CmdContainment(args[1], args[2], args[3], json,
                          /*emit_only=*/false);
  }
  if (cmd == "select-oracle" && args.size() >= 2 && args.size() <= 4) {
    return CmdSelectOracle(
        args[1], std::vector<std::string>(args.begin() + 2, args.end()),
        json);
  }
  if (cmd == "from-nha" && args.size() == 2) {
    return CmdFromNha(args[1], json, /*emit_only=*/false);
  }
  if (cmd == "algebra" && args.size() == 4) {
    return CmdAlgebra(args[1], args[2], args[3], json, /*emit_only=*/false);
  }
  if (cmd == "emit-cert" && args.size() == 5 && args[1] == "containment") {
    return CmdContainment(args[2], args[3], args[4], json,
                          /*emit_only=*/true);
  }
  if (cmd == "emit-cert" && args.size() == 5 && args[1] == "algebra") {
    return CmdAlgebra(args[2], args[3], args[4], json, /*emit_only=*/true);
  }
  if (cmd == "emit-cert" && args.size() == 3 && args[1] == "from-nha") {
    return CmdFromNha(args[2], json, /*emit_only=*/true);
  }
  if (cmd == "emit-cert" && args.size() == 3) {
    return CmdEmitCert(args[1], args[2]);
  }
  if (cmd == "cert" && args.size() == 2) return CmdCert(args[1], json, light);
  if (cmd == "from-json" && args.size() == 2) {
    return CmdFromJson(args[1], json);
  }
  Usage();
  return 1;
}
