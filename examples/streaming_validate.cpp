// Streaming validation: hedge automata run over SAX events with one
// horizontal state per open element, so arbitrarily large documents
// validate in O(depth) memory — the RELAX-style use the paper's Section 2
// situates this work in.
//
// Build & run:  ./build/examples/streaming_validate [nodes]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "schema/streaming.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hedgeq;

  size_t nodes = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 200000;

  hedge::Vocabulary vocab;
  auto schema = schema::ParseSchema(kArticleGrammar, vocab);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  // Determinize once (preprocessing), then validate any number of
  // documents of any size.
  auto validator = schema::StreamingValidator::Create(*schema);
  if (!validator.ok()) {
    std::fprintf(stderr, "determinization error: %s\n",
                 validator.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "validator ready: %u automaton states, %u horizontal states\n",
      validator->dha().num_states(), validator->dha().num_h_states());

  // A large valid document...
  Rng rng(99);
  workload::ArticleOptions options;
  options.target_nodes = nodes;
  hedge::Hedge doc = workload::RandomArticle(rng, vocab, options);
  xml::XmlDocument wrapped = xml::WrapHedge(doc, vocab);
  std::string text = xml::SerializeXml(wrapped, vocab);
  std::printf("document: %zu nodes, %zu bytes of XML\n", doc.num_nodes(),
              text.size());

  auto verdict = validator->Validate(text, vocab);
  if (!verdict.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 verdict.status().ToString().c_str());
    return 1;
  }
  std::printf("streaming verdict: %s\n", *verdict ? "valid" : "INVALID");

  // ...and a near-miss: drop the article title.
  size_t title_start = text.find("<title>");
  size_t title_end = text.find("</title>") + 8;
  std::string broken =
      text.substr(0, title_start) + text.substr(title_end);
  auto verdict2 = validator->Validate(broken, vocab);
  std::printf("without the article title:  %s\n",
              verdict2.ok() && *verdict2 ? "valid (BUG)" : "INVALID");
  return *verdict && !(verdict2.ok() && *verdict2) ? 0 : 1;
}
