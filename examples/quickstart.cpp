// Quickstart: parse an XML document, run a selection query built from a
// hedge regular expression and a pointed hedge representation, and print
// the located nodes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "query/selection.h"
#include "xml/xml.h"

int main() {
  using namespace hedgeq;

  hedge::Vocabulary vocab;

  // 1. Parse a document. XML documents are hedges: elements are symbols in
  //    Sigma, text nodes are variables in X.
  const char* kXml =
      "<article>"
      "  <title>Extended Path Expressions</title>"
      "  <section>"
      "    <title>Intro</title>"
      "    <figure><image/></figure>"
      "    <caption>An automaton</caption>"
      "    <para>text</para>"
      "  </section>"
      "  <section>"
      "    <title>Results</title>"
      "    <figure><image/></figure>"
      "    <para>text</para>"
      "    <section>"
      "      <title>Details</title>"
      "      <figure><image/></figure>"
      "      <caption>Nested</caption>"
      "    </section>"
      "  </section>"
      "</article>";
  auto doc = xml::ParseXml(kXml, vocab);
  if (!doc.ok()) {
    std::fprintf(stderr, "XML error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  // 2. A selection query select(e1; e2):
  //    - e1 (a hedge regular expression) constrains the node's descendants;
  //      '*' means no condition.
  //    - e2 (a pointed hedge representation) constrains everything else,
  //      read bottom-to-top from the node. Triplets [elder; symbol; younger]
  //      constrain the siblings; bare names are classic path steps.
  //    Here: figures whose immediately following sibling is a caption,
  //    anywhere under sections. kAny generates every hedge over the
  //    vocabulary — HREs describe complete subtree structure, so the
  //    "and then anything" tail is explicit.
  const std::string kAny =
      "(article<%z>|title<%z>|section<%z>|para<%z>|figure<%z>|table<%z>|"
      "caption<%z>|image<%z>|$#text)*^z";
  const std::string kQuery =
      "select(*; [*; figure; (" + kAny + " @z caption<%z>) " + kAny +
      "] (section|article)*)";
  auto query = query::ParseSelectionQuery(kQuery, vocab);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 3. Compile once (Theorems 3 and 4; exponential in the query, linear per
  //    document), then evaluate with two depth-first traversals.
  auto evaluator = query::SelectionEvaluator::Create(*query);
  if (!evaluator.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 evaluator.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %s\n\n", kQuery.c_str());
  for (hedge::NodeId n : evaluator->LocatedNodes(doc->hedge)) {
    std::string dewey;
    for (uint32_t step : doc->hedge.DeweyOf(n)) {
      dewey += "/" + std::to_string(step);
    }
    xml::XmlDocument subtree;
    subtree.hedge.AppendCopy(hedge::kNullNode, doc->hedge, n);
    subtree.texts.resize(subtree.hedge.num_nodes());
    subtree.attributes.resize(subtree.hedge.num_nodes());
    std::printf("located %-8s at %s\n",
                vocab.symbols.NameOf(doc->hedge.label(n).id).c_str(),
                dewey.c_str());
  }
  return 0;
}
