// Expressiveness comparison with XPath (Sections 1-2): where both languages
// can express a query they agree on the answers; pointed hedge
// representations additionally capture conditions like "all ancestors are
// labeled section" that XPath's axes cannot express without negated
// predicates. Sibling conditions are built with the hre sugar helpers:
// hedge regular expressions describe complete subtree structure, so "next
// sibling is a caption" is written caption-tree followed by any-hedge.
//
// Build & run:  ./build/examples/xpath_vs_phr
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/xpath.h"
#include "hre/sugar.h"
#include "query/selection.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

using namespace hedgeq;

// Vocabulary-aware query builder for the article corpus.
class ArticleQueries {
 public:
  explicit ArticleQueries(hedge::Vocabulary& vocab)
      : names_(workload::ArticleVocab::Intern(vocab)),
        z_(vocab.substs.Intern("z")) {
    symbols_ = {names_.article, names_.title,   names_.section,
                names_.para,    names_.figure,  names_.table,
                names_.caption, names_.image};
    vars_ = {names_.text};
  }

  hre::Hre Any() const { return hre::AnyHedgeExpr(symbols_, vars_, z_); }
  hre::Hre Tree(hedge::SymbolId a) const {
    return hre::AnyTreeExpr(a, symbols_, vars_, z_);
  }

  // Ascent to the top through sections, then the article root:
  // regex (over triplet indices built by `add`) appended by the caller.
  phr::PointedBaseRep Step(hedge::SymbolId a) const {
    return {nullptr, a, nullptr};
  }

  // [*; figure; caption-tree any]: figures immediately followed by caption.
  query::SelectionQuery FigureThenCaption() const {
    std::vector<phr::PointedBaseRep> triplets;
    triplets.push_back(
        {nullptr, names_.figure, hre::HConcat(Tree(names_.caption), Any())});
    triplets.push_back(Step(names_.section));
    triplets.push_back(Step(names_.article));
    strre::Regex regex = strre::Concat(
        strre::Sym(0), strre::Star(strre::Alt(strre::Sym(1), strre::Sym(2))));
    return {nullptr, phr::Phr(std::move(triplets), std::move(regex))};
  }

  // Negation by construction: no younger sibling at all, or the first
  // younger sibling is a non-caption tree (or a text leaf).
  query::SelectionQuery FigureNotThenCaption() const {
    std::vector<hedge::SymbolId> non_caption;
    for (hedge::SymbolId s : symbols_) {
      if (s != names_.caption) non_caption.push_back(s);
    }
    hre::Hre first_not_caption = hre::HConcat(
        hre::HUnion(hre::AnyTreeOfExpr(non_caption, symbols_, vars_, z_),
                    hre::HVar(names_.text)),
        Any());
    std::vector<phr::PointedBaseRep> triplets;
    triplets.push_back({nullptr, names_.figure,
                        hre::HUnion(hre::HEpsilon(),
                                    std::move(first_not_caption))});
    triplets.push_back(Step(names_.section));
    triplets.push_back(Step(names_.article));
    strre::Regex regex = strre::Concat(
        strre::Sym(0), strre::Star(strre::Alt(strre::Sym(1), strre::Sym(2))));
    return {nullptr, phr::Phr(std::move(triplets), std::move(regex))};
  }

  // [any figure-tree; caption; *]: captions right after a figure.
  query::SelectionQuery CaptionAfterFigure() const {
    std::vector<phr::PointedBaseRep> triplets;
    triplets.push_back(
        {hre::HConcat(Any(), Tree(names_.figure)), names_.caption, nullptr});
    triplets.push_back(Step(names_.section));
    triplets.push_back(Step(names_.article));
    strre::Regex regex = strre::Concat(
        strre::Sym(0), strre::Star(strre::Alt(strre::Sym(1), strre::Sym(2))));
    return {nullptr, phr::Phr(std::move(triplets), std::move(regex))};
  }

  const workload::ArticleVocab& names() const { return names_; }

 private:
  workload::ArticleVocab names_;
  hedge::SubstId z_;
  std::vector<hedge::SymbolId> symbols_;
  std::vector<hedge::VarId> vars_;
};

size_t Count(const std::vector<bool>& v) {
  size_t n = 0;
  for (bool b : v) n += b ? 1 : 0;
  return n;
}

}  // namespace

int main() {
  hedge::Vocabulary vocab;
  ArticleQueries queries(vocab);
  Rng rng(7);
  workload::ArticleOptions options;
  options.target_nodes = 1500;
  hedge::Hedge doc = workload::RandomArticle(rng, vocab, options);
  std::printf("document: %zu nodes\n\n", doc.num_nodes());

  struct Pair {
    const char* description;
    const char* xpath;
    query::SelectionQuery query;
  };
  std::vector<Pair> pairs;
  {
    auto q1 = query::ParseSelectionQuery(
        "select(*; figure (section|article)*)", vocab);
    pairs.push_back({"all figures", "//figure", std::move(q1).value()});
    auto q2 = query::ParseSelectionQuery(
        "select(*; figure section+ article)", vocab);
    pairs.push_back({"figures under a section chain",
                     "/article/section//figure", std::move(q2).value()});
  }
  pairs.push_back({"figures immediately followed by a caption",
                   "//figure[following-sibling::*[1][self::caption]]",
                   queries.FigureThenCaption()});
  pairs.push_back({"captions right after a figure",
                   "//caption[preceding-sibling::*[1][self::figure]]",
                   queries.CaptionAfterFigure()});

  size_t figures_total = 0, with_caption = 0, without_caption = 0;
  for (Pair& p : pairs) {
    auto xp = baseline::ParseXPath(p.xpath, vocab);
    if (!xp.ok()) {
      std::fprintf(stderr, "xpath parse error: %s\n",
                   xp.status().ToString().c_str());
      return 1;
    }
    auto eval = query::SelectionEvaluator::Create(p.query);
    if (!eval.ok()) {
      std::fprintf(stderr, "compile error: %s\n",
                   eval.status().ToString().c_str());
      return 1;
    }
    std::vector<hedge::NodeId> xpath_result =
        baseline::EvaluateXPath(doc, *xp);
    std::vector<hedge::NodeId> phr_result = eval->LocatedNodes(doc);
    std::printf("%-48s xpath=%4zu  phr=%4zu  %s\n", p.description,
                xpath_result.size(), phr_result.size(),
                xpath_result == phr_result ? "AGREE" : "DISAGREE");
    if (std::string(p.description) == "all figures") {
      figures_total = phr_result.size();
    } else if (std::string(p.description) ==
               "figures immediately followed by a caption") {
      with_caption = phr_result.size();
    }
  }

  // The complement query needs not() in XPath 1.0 (outside our subset and
  // outside classic path expressions); pointed hedge representations write
  // the negation structurally.
  {
    auto eval =
        query::SelectionEvaluator::Create(queries.FigureNotThenCaption());
    without_caption = Count(eval->Locate(doc));
    std::printf("%-48s xpath=n/a   phr=%4zu\n",
                "figures NOT immediately followed by a caption",
                without_caption);
  }
  std::printf("\npartition check: %zu with + %zu without = %zu figures\n",
              with_caption, without_caption, figures_total);

  // Beyond XPath: "figures ALL of whose ancestors are sections" — XPath's
  // axes can assert existence of ancestors but a location path cannot
  // demand that every ancestor satisfy a test (the paper's a* example).
  {
    auto q = query::ParseSelectionQuery("select(*; figure section*)", vocab);
    auto eval = query::SelectionEvaluator::Create(*q);
    size_t hits = Count(eval->Locate(doc));
    // In this corpus every figure lives under sections below the article
    // root, so the honest all-ancestors query (which excludes the article)
    // matches nothing — exactly the distinction XPath cannot draw.
    std::printf(
        "\nbeyond-XPath 'figure section*' (every ancestor a section, no "
        "article root allowed): %zu nodes\n",
        hits);
    auto q2 = query::ParseSelectionQuery(
        "select(*; figure section* article)", vocab);
    auto eval2 = query::SelectionEvaluator::Create(*q2);
    std::printf(
        "with the article root admitted ('figure section* article'):   "
        "%zu nodes\n",
        Count(eval2->Locate(doc)));
  }
  return 0;
}
