// Schema transformation (Section 8): given an input schema and a selection
// query, construct output schemas for select (what do results look like?)
// and delete (what do documents look like after removing the results?),
// using match-identifying hedge automata.
//
// Build & run:  ./build/examples/schema_transform
#include <cstdio>

#include "query/selection.h"
#include "schema/transform.h"

namespace {

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

}  // namespace

int main() {
  using namespace hedgeq;

  hedge::Vocabulary vocab;
  auto input = schema::ParseSchema(kArticleGrammar, vocab);
  if (!input.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }
  std::printf("input schema: %zu states, %zu rules\n",
              input->nha().num_states(), input->nha().rules().size());

  struct Case {
    const char* name;
    const char* query;
  };
  const Case cases[] = {
      {"select figures anywhere", "select(*; figure (section|article)*)"},
      {"select sections made of title+tables",
       "select(title<$#text> table*; section (section|article)*)"},
      {"select captions directly under article (impossible)",
       "select(*; caption article)"},
  };

  for (const Case& c : cases) {
    auto query = query::ParseSelectionQuery(c.query, vocab);
    if (!query.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    auto output = schema::SelectOutputSchema(*input, *query);
    if (!output.ok()) {
      std::fprintf(stderr, "transform error: %s\n",
                   output.status().ToString().c_str());
      return 1;
    }
    std::printf("\n[select] %s\n  query: %s\n", c.name, c.query);
    std::printf("  output schema: %zu states, %zu rules, %s\n",
                output->nha().num_states(), output->nha().rules().size(),
                output->IsEmpty() ? "EMPTY (query can never match)"
                                  : "non-empty");
    if (auto witness = automata::WitnessHedge(output->nha());
        witness.has_value()) {
      std::printf("  sample result: %s\n",
                  witness->ToString(vocab).c_str());
    }
  }

  // Deletion: documents with every figure removed still follow a schema —
  // the inferred one.
  auto del_query = query::ParseSelectionQuery(
      "select(*; figure (section|article)*)", vocab);
  auto deleted = schema::DeleteOutputSchema(*input, *del_query);
  if (!deleted.ok()) {
    std::fprintf(stderr, "transform error: %s\n",
                 deleted.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[delete] figures anywhere\n");
  std::printf("  output schema: %zu states, %zu rules\n",
              deleted->nha().num_states(), deleted->nha().rules().size());
  auto doc_with_figure = ParseHedge(
      "article<title<$#text> section<title<$#text> figure<image>>>", vocab);
  auto doc_without = ParseHedge(
      "article<title<$#text> section<title<$#text>>>", vocab);
  std::printf("  validates doc containing a figure:  %s\n",
              deleted->Validates(*doc_with_figure) ? "yes (BUG)" : "no");
  std::printf("  validates figure-free counterpart:  %s\n",
              deleted->Validates(*doc_without) ? "yes" : "no (BUG)");
  return 0;
}
