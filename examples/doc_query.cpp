// Document querying scenario: the paper's motivating examples (Section 1)
// over a generated article corpus, written in the textual query syntax.
//
// Hedge regular expressions describe complete subtree structure, so sibling
// conditions spell out an explicit "anything" tail; kAny below generates
// every hedge over the article vocabulary (the hre::AnyHedgeExpr helper
// builds the same expression programmatically).
//
// Build & run:  ./build/examples/doc_query [nodes]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "query/selection.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace {

// Any hedge over the article vocabulary (including the empty hedge).
const std::string kAny =
    "(article<%z>|title<%z>|section<%z>|para<%z>|figure<%z>|table<%z>|"
    "caption<%z>|image<%z>|$#text)*^z";
// Exactly one tree with the given label and arbitrary content.
std::string Tree(const std::string& label) {
  return "(" + kAny + " @z " + label + "<%z>)";
}

struct NamedQuery {
  std::string name;
  std::string text;
};

std::vector<NamedQuery> BuildQueries() {
  std::vector<NamedQuery> out;
  out.push_back({"figures in sections (the paper's (section*, figure))",
                 "select(*; figure section* article)"});
  out.push_back({"figures at any depth",
                 "select(*; figure (section|article)*)"});
  out.push_back({"figures immediately followed by a caption",
                 "select(*; [*; figure; " + Tree("caption") + " " + kAny +
                     "] (section|article)*)"});
  out.push_back(
      {"figures NOT immediately followed by a caption",
       "select(*; [*; figure; ()|((" + Tree("article") + "|" + Tree("title") +
           "|" + Tree("section") + "|" + Tree("para") + "|" + Tree("figure") +
           "|" + Tree("table") + "|" + Tree("image") + "|$#text) " + kAny +
           ")] (section|article)*)"});
  out.push_back({"sections whose content is title followed by paras only",
                 "select(title<$#text> para<$#text>*; "
                 "section (section|article)*)"});
  out.push_back({"sections with no figure among the children",
                 "select((" + Tree("title") + "|" + Tree("para") + "|" +
                     Tree("caption") + "|" + Tree("table") + "|" +
                     Tree("section") + "|$#text)*; "
                     "section (section|article)*)"});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hedgeq;

  size_t nodes = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 2000;

  hedge::Vocabulary vocab;
  Rng rng(2001);
  workload::ArticleOptions options;
  options.target_nodes = nodes;
  hedge::Hedge doc = workload::RandomArticle(rng, vocab, options);
  std::printf("generated article corpus: %zu nodes\n\n", doc.num_nodes());

  size_t figures = 0, with_caption = 0, without_caption = 0;
  for (const NamedQuery& q : BuildQueries()) {
    auto parsed = query::ParseSelectionQuery(q.text, vocab);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error in '%s': %s\n", q.name.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto evaluator = query::SelectionEvaluator::Create(*parsed);
    if (!evaluator.ok()) {
      std::fprintf(stderr, "compile error in '%s': %s\n", q.name.c_str(),
                   evaluator.status().ToString().c_str());
      return 1;
    }
    std::vector<hedge::NodeId> located = evaluator->LocatedNodes(doc);
    std::printf("%-58s -> %5zu nodes\n", q.name.c_str(), located.size());
    for (size_t i = 0; i < located.size() && i < 2; ++i) {
      std::string dewey;
      for (uint32_t step : doc.DeweyOf(located[i])) {
        dewey += "/" + std::to_string(step);
      }
      std::printf("    e.g. %s at %s\n",
                  vocab.symbols.NameOf(doc.label(located[i]).id).c_str(),
                  dewey.c_str());
    }
    if (q.name == "figures at any depth") figures = located.size();
    if (q.name == "figures immediately followed by a caption") {
      with_caption = located.size();
    }
    if (q.name == "figures NOT immediately followed by a caption") {
      without_caption = located.size();
    }
  }
  std::printf("\nconsistency: %zu + %zu = %zu figures\n", with_caption,
              without_caption, figures);
  return with_caption + without_caption == figures ? 0 : 1;
}
