// E8 (claim C8): comparison with the XPath-subset baseline on queries both
// formalisms express. The automaton evaluator pays one pass regardless of
// query shape; the XPath engine walks axes per step and re-evaluates
// predicates per candidate.
#include <benchmark/benchmark.h>

#include "baseline/xpath.h"
#include "bench/bench_util.h"
#include "query/selection.h"

namespace hedgeq {
namespace {

void BM_XPathAllFigures(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto xp = baseline::ParseXPath("//figure", vocab);
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<hedge::NodeId> result = baseline::EvaluateXPath(doc, *xp);
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_XPathAllFigures)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_PhrAllFigures(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigurePathQuery(vocab);
  auto eval = query::SelectionEvaluator::Create(q);
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<hedge::NodeId> result = eval->LocatedNodes(doc);
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_PhrAllFigures)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_XPathFigureCaption(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto xp = baseline::ParseXPath(
      "//figure[following-sibling::*[1][self::caption]]", vocab);
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<hedge::NodeId> result = baseline::EvaluateXPath(doc, *xp);
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_XPathFigureCaption)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_PhrFigureCaption(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigureCaptionQuery(vocab);
  auto eval = query::SelectionEvaluator::Create(q);
  if (!eval.ok()) {
    state.SkipWithError(eval.status().ToString().c_str());
    return;
  }
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    std::vector<hedge::NodeId> result = eval->LocatedNodes(doc);
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_PhrFigureCaption)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_xpath_baseline)
