// E10: streaming validation (O(depth) memory, no tree) against DOM-style
// parse-then-run validation — the practical payoff of the horizontal-DFA
// representation of deterministic hedge automata.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "schema/streaming.h"

namespace hedgeq {
namespace {

std::string MakeXml(size_t nodes, hedge::Vocabulary& vocab) {
  hedge::Hedge doc = bench::MakeArticle(vocab, nodes);
  xml::XmlDocument wrapped = xml::WrapHedge(doc, vocab);
  return xml::SerializeXml(wrapped, vocab);
}

void BM_StreamingValidate(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto schema = schema::ParseSchema(bench::ArticleGrammar(), vocab);
  auto validator = schema::StreamingValidator::Create(*schema);
  if (!validator.ok()) {
    state.SkipWithError(validator.status().ToString().c_str());
    return;
  }
  std::string text = MakeXml(static_cast<size_t>(state.range(0)), vocab);
  bool valid = false;
  for (auto _ : state) {
    auto verdict = validator->Validate(text, vocab);
    valid = verdict.ok() && *verdict;
    benchmark::DoNotOptimize(verdict);
  }
  if (!valid) {
    state.SkipWithError("document unexpectedly invalid");
    return;
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StreamingValidate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_DomValidate(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto schema = schema::ParseSchema(bench::ArticleGrammar(), vocab);
  auto det = automata::Determinize(schema->nha());
  if (!det.ok()) {
    state.SkipWithError(det.status().ToString().c_str());
    return;
  }
  std::string text = MakeXml(static_cast<size_t>(state.range(0)), vocab);
  bool valid = false;
  for (auto _ : state) {
    auto doc = xml::ParseXml(text, vocab);
    valid = doc.ok() && det->dha.Accepts(doc->hedge);
    benchmark::DoNotOptimize(doc);
  }
  if (!valid) {
    state.SkipWithError("document unexpectedly invalid");
    return;
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_DomValidate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_streaming)
