// E1 (claim C1): deterministic hedge automaton execution is linear in the
// number of nodes — ns/node should be flat across document sizes.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "query/phr_compile.h"

namespace hedgeq {
namespace {

// Runs the shared DHA of a compiled sibling-order query over article
// documents of the size given by the benchmark argument.
void BM_DhaRunArticle(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigureCaptionQuery(vocab);
  auto compiled = query::CompilePhr(q.envelope);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->dha().Run(doc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(doc.num_nodes()) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_DhaRunArticle)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// Same sweep on uniform trees (fixed shape: fanout 4), separating document
// shape from size.
void BM_DhaRunUniformTree(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto phr = phr::ParsePhr("a (a)*", vocab);
  auto compiled = query::CompilePhr(*phr);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  hedge::Hedge doc = workload::UniformTree(
      vocab, static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->dha().Run(doc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
}
BENCHMARK(BM_DhaRunUniformTree)
    ->DenseRange(4, 10, 2)  // depth: 4^d nodes
    ->Unit(benchmark::kMicrosecond);

// Acceptance check (run + final DFA over the roots).
void BM_DhaAccepts(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigurePathQuery(vocab);
  auto compiled = query::CompilePhr(q.envelope);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled->dha().Accepts(doc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
}
BENCHMARK(BM_DhaAccepts)->Arg(10000)->Arg(100000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_dha_run)
