// E4 (claim C2): Lemma 1 compilation of hedge regular expressions to
// non-deterministic hedge automata takes time (and produces automata of
// size) linear in the expression size.
#include <benchmark/benchmark.h>

#include <string>

#include "hre/compile.h"

#include "bench/bench_util.h"

namespace hedgeq {
namespace {

// Wide family: (a<$x>|b<c d>)^n concatenated.
std::string WideExpr(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += " ";
    out += "(a<$x>|b<c d>)";
  }
  return out;
}

// Deep family: a<a<...a<$x>...> b> nested n levels.
std::string DeepExpr(int n) {
  std::string out = "$x";
  for (int i = 0; i < n; ++i) out = "a<" + out + " b>";
  return out;
}

// Operator-heavy family: alternating star/union/optional wrappers (linear
// growth in n).
std::string MixedExpr(int n) {
  std::string out = "a";
  for (int i = 0; i < n; ++i) {
    out = "(" + out + "|b)* c?";
  }
  return out;
}

template <std::string (*MakeExpr)(int)>
void CompileFamily(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(MakeExpr(static_cast<int>(state.range(0))), vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  size_t expr_size = hre::HreSize(*e);
  size_t states = 0;
  for (auto _ : state) {
    automata::Nha nha = hre::CompileHre(*e);
    states = nha.num_states();
    benchmark::DoNotOptimize(nha);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(expr_size));
  state.counters["expr_size"] = static_cast<double>(expr_size);
  state.counters["nha_states"] = static_cast<double>(states);
  state.counters["states_per_expr_node"] =
      static_cast<double>(states) / static_cast<double>(expr_size);
}

void BM_CompileWide(benchmark::State& state) {
  CompileFamily<WideExpr>(state);
}
BENCHMARK(BM_CompileWide)->Arg(10)->Arg(100)->Arg(1000)->Arg(3000)->Unit(
    benchmark::kMicrosecond);

void BM_CompileDeep(benchmark::State& state) {
  CompileFamily<DeepExpr>(state);
}
BENCHMARK(BM_CompileDeep)->Arg(10)->Arg(100)->Arg(1000)->Arg(3000)->Unit(
    benchmark::kMicrosecond);

void BM_CompileMixed(benchmark::State& state) {
  CompileFamily<MixedExpr>(state);
}
BENCHMARK(BM_CompileMixed)->Arg(10)->Arg(100)->Arg(1000)->Unit(
    benchmark::kMicrosecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_hre_compile)
