// E2 (claim C4): Algorithm 1 evaluates pointed hedge representations with
// two depth-first traversals in time linear in the node count.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "query/evaluator.h"

namespace hedgeq {
namespace {

void RunLocate(benchmark::State& state, const query::SelectionQuery& q,
               hedge::Vocabulary& vocab) {
  auto evaluator = query::PhrEvaluator::Create(q.envelope);
  if (!evaluator.ok()) {
    state.SkipWithError(evaluator.status().ToString().c_str());
    return;
  }
  hedge::Hedge doc =
      hedgeq::bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  size_t located = 0;
  for (auto _ : state) {
    std::vector<bool> result = evaluator->Locate(doc);
    located = 0;
    for (bool b : result) located += b ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
  state.counters["located"] = static_cast<double>(located);
}

// Classic path expression (degenerate triplets).
void BM_LocatePathExpression(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = hedgeq::bench::FigurePathQuery(vocab);
  RunLocate(state, q, vocab);
}
BENCHMARK(BM_LocatePathExpression)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// Full sibling-condition query (elder/younger hedge regular expressions).
void BM_LocateSiblingCondition(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = hedgeq::bench::FigureCaptionQuery(vocab);
  RunLocate(state, q, vocab);
}
BENCHMARK(BM_LocateSiblingCondition)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// Document-shape ablation: sibling-class machinery cost depends on sibling
// counts (suffix-function composition is O(children x classes) per group),
// so wide flat documents are its worst case and deep chains its best.
void BM_LocateByShape(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = hedgeq::bench::FigureCaptionQuery(vocab);
  auto evaluator = query::PhrEvaluator::Create(q.envelope);
  if (!evaluator.ok()) {
    state.SkipWithError(evaluator.status().ToString().c_str());
    return;
  }
  // range(0): 0 = wide (one section, ~65k figure children),
  //           1 = deep (chain of 65k nested sections),
  //           2 = bushy (fanout 4).
  hedge::Hedge doc;
  switch (state.range(0)) {
    case 0:
      doc = workload::UniformTree(vocab, 1, 1 << 16, "section");
      break;
    case 1:
      doc = workload::UniformTree(vocab, 1 << 16, 1, "section");
      break;
    default:
      doc = workload::UniformTree(vocab, 8, 4, "section");
      break;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->Locate(doc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
}
BENCHMARK(BM_LocateByShape)->DenseRange(0, 2)->Unit(
    benchmark::kMicrosecond);

// Compile-time (preprocessing) cost, for contrast with per-document cost.
void BM_CompilePhrOnce(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = hedgeq::bench::FigureCaptionQuery(vocab);
  for (auto _ : state) {
    auto compiled = query::CompilePhr(q.envelope);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompilePhrOnce)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_phr_eval)
