// E7 (claim C7): for traditional path expressions, the simplified
// match-identifying construction at the end of Section 8 (no equivalence
// classes, no consistency subtraction) against the general Theorem 5
// construction.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "schema/match_identify.h"

namespace hedgeq {
namespace {

struct Setup {
  hedge::Vocabulary vocab;
  std::optional<query::CompiledPhr> compiled;
  std::vector<hedge::SymbolId> symbols;
  std::vector<hedge::VarId> vars;
};

Setup MakeSetup() {
  Setup s;
  auto phr = phr::ParsePhr("figure (section|article)*", s.vocab);
  auto compiled = query::CompilePhr(*phr);
  s.compiled = std::move(compiled).value();
  workload::ArticleVocab names = workload::ArticleVocab::Intern(s.vocab);
  s.symbols = {names.article, names.title, names.section, names.para,
               names.figure,  names.table, names.caption, names.image};
  s.vars = {names.text};
  return s;
}

void BM_GeneralConstruction(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t states = 0, rules = 0;
  for (auto _ : state) {
    schema::MatchIdentifying up =
        schema::BuildMatchIdentifying(*s.compiled, s.symbols, s.vars);
    states = up.nha().num_states();
    rules = up.nha().rules().size();
    benchmark::DoNotOptimize(up);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_GeneralConstruction)->Unit(benchmark::kMillisecond);

void BM_SimplifiedPathConstruction(benchmark::State& state) {
  Setup s = MakeSetup();
  size_t states = 0, rules = 0;
  for (auto _ : state) {
    schema::MatchIdentifying up =
        schema::BuildMatchIdentifyingPathExpr(*s.compiled, s.symbols, s.vars);
    states = up.nha().num_states();
    rules = up.nha().rules().size();
    benchmark::DoNotOptimize(up);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_SimplifiedPathConstruction)->Unit(benchmark::kMillisecond);

// Longer path expressions: construction cost vs path length for both.
void BM_GeneralVsPathLength(benchmark::State& state) {
  hedge::Vocabulary vocab;
  std::string text = "figure";
  for (int i = 0; i < state.range(0); ++i) text += " (section|article)";
  auto phr = phr::ParsePhr(text, vocab);
  auto compiled = query::CompilePhr(*phr);
  workload::ArticleVocab names = workload::ArticleVocab::Intern(vocab);
  std::vector<hedge::SymbolId> symbols = {
      names.article, names.title, names.section, names.para,
      names.figure,  names.table, names.caption, names.image};
  std::vector<hedge::VarId> vars = {names.text};
  for (auto _ : state) {
    schema::MatchIdentifying up =
        schema::BuildMatchIdentifying(*compiled, symbols, vars);
    benchmark::DoNotOptimize(up);
  }
}
BENCHMARK(BM_GeneralVsPathLength)->DenseRange(1, 7, 2)->Unit(
    benchmark::kMillisecond);

void BM_SimplifiedVsPathLength(benchmark::State& state) {
  hedge::Vocabulary vocab;
  std::string text = "figure";
  for (int i = 0; i < state.range(0); ++i) text += " (section|article)";
  auto phr = phr::ParsePhr(text, vocab);
  auto compiled = query::CompilePhr(*phr);
  workload::ArticleVocab names = workload::ArticleVocab::Intern(vocab);
  std::vector<hedge::SymbolId> symbols = {
      names.article, names.title, names.section, names.para,
      names.figure,  names.table, names.caption, names.image};
  std::vector<hedge::VarId> vars = {names.text};
  for (auto _ : state) {
    schema::MatchIdentifying up = schema::BuildMatchIdentifyingPathExpr(
        *compiled, symbols, vars);
    benchmark::DoNotOptimize(up);
  }
}
BENCHMARK(BM_SimplifiedVsPathLength)->DenseRange(1, 7, 2)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_pathexpr_ablation)
