// E6 (claim C5): the two-traversal automaton evaluation (linear) against
// the naive per-node envelope re-matching (quadratic and worse). The shape
// to reproduce: the automaton evaluator wins by a widening margin as
// documents grow.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "query/selection.h"

namespace hedgeq {
namespace {

void BM_AlgorithmOne(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigureCaptionQuery(vocab);
  auto eval = query::SelectionEvaluator::Create(q);
  if (!eval.ok()) {
    state.SkipWithError(eval.status().ToString().c_str());
    return;
  }
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval->Locate(doc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
}
BENCHMARK(BM_AlgorithmOne)
    ->Arg(100)
    ->Arg(316)
    ->Arg(1000)
    ->Arg(3162)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_NaivePerNode(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigureCaptionQuery(vocab);
  query::NaiveSelectionEvaluator naive(q);
  hedge::Hedge doc =
      bench::MakeArticle(vocab, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive.Locate(doc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(doc.num_nodes()));
  state.counters["nodes"] = static_cast<double>(doc.num_nodes());
}
// The naive evaluator re-extracts and re-matches each node's envelope; it
// is already ~1000x slower at 3k nodes, so the sweep stops there.
BENCHMARK(BM_NaivePerNode)
    ->Arg(100)
    ->Arg(316)
    ->Arg(1000)
    ->Arg(3162)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_vs_naive)
