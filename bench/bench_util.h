#ifndef HEDGEQ_BENCH_BENCH_UTIL_H_
#define HEDGEQ_BENCH_BENCH_UTIL_H_

// Shared workload builders for the experiment harness (see DESIGN.md
// section 4 for the experiment index E1..E8).

#include <string>
#include <vector>

#include "hre/sugar.h"
#include "query/selection.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::bench {

/// Deterministic article document with ~n nodes.
inline hedge::Hedge MakeArticle(hedge::Vocabulary& vocab, size_t n,
                                uint64_t seed = 42) {
  Rng rng(seed);
  workload::ArticleOptions options;
  options.target_nodes = n;
  return workload::RandomArticle(rng, vocab, options);
}

/// Path-expression query: figures anywhere under sections/article.
inline query::SelectionQuery FigurePathQuery(hedge::Vocabulary& vocab) {
  auto q = query::ParseSelectionQuery(
      "select(*; figure (section|article)*)", vocab);
  return std::move(q).value();
}

/// Sibling-order query: figures immediately followed by a caption (built
/// with the any-hedge sugar; exercises the full Theorem 4 machinery).
inline query::SelectionQuery FigureCaptionQuery(hedge::Vocabulary& vocab) {
  workload::ArticleVocab names = workload::ArticleVocab::Intern(vocab);
  std::vector<hedge::SymbolId> symbols = {
      names.article, names.title, names.section, names.para,
      names.figure,  names.table, names.caption, names.image};
  std::vector<hedge::VarId> vars = {names.text};
  hedge::SubstId z = vocab.substs.Intern("z");
  hre::Hre any = hre::AnyHedgeExpr(symbols, vars, z);
  hre::Hre caption_tree = hre::AnyTreeExpr(names.caption, symbols, vars, z);

  std::vector<phr::PointedBaseRep> triplets;
  triplets.push_back(
      {nullptr, names.figure, hre::HConcat(caption_tree, any)});
  triplets.push_back({nullptr, names.section, nullptr});
  triplets.push_back({nullptr, names.article, nullptr});
  strre::Regex regex = strre::Concat(
      strre::Sym(0), strre::Star(strre::Alt(strre::Sym(1), strre::Sym(2))));
  return {nullptr, phr::Phr(std::move(triplets), std::move(regex))};
}

/// The article grammar, optionally widened with `extra_paras` additional
/// paragraph flavors (schema-size scaling for E5).
inline std::string ArticleGrammar(size_t extra_paras = 0) {
  std::string item_union = "Para|Figure|Caption|Table|Section";
  std::string extra_rules;
  for (size_t i = 0; i < extra_paras; ++i) {
    std::string name = "Para" + std::to_string(i);
    item_union += "|" + name;
    extra_rules += name + " = para" + std::to_string(i) + "<Text>\n";
  }
  return "start   = Article\n"
         "Article = article<Title Section*>\n"
         "Title   = title<Text>\n"
         "Text    = $#text\n"
         "Section = section<Title (" +
         item_union +
         ")*>\n"
         "Para    = para<Text>\n"
         "Figure  = figure<Image>\n"
         "Image   = image<>\n"
         "Caption = caption<Text>\n"
         "Table   = table<>\n" +
         extra_rules;
}

}  // namespace hedgeq::bench

#endif  // HEDGEQ_BENCH_BENCH_UTIL_H_
