#ifndef HEDGEQ_BENCH_BENCH_UTIL_H_
#define HEDGEQ_BENCH_BENCH_UTIL_H_

// Shared workload builders for the experiment harness (see DESIGN.md
// section 4 for the experiment index E1..E8), plus the HEDGEQ_BENCH_MAIN
// entry point that gives every bench binary a machine-readable
// BENCH_<name>.json artifact (see docs/OBSERVABILITY.md).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "hre/sugar.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "query/selection.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::bench {

/// Deterministic article document with ~n nodes.
inline hedge::Hedge MakeArticle(hedge::Vocabulary& vocab, size_t n,
                                uint64_t seed = 42) {
  Rng rng(seed);
  workload::ArticleOptions options;
  options.target_nodes = n;
  return workload::RandomArticle(rng, vocab, options);
}

/// Path-expression query: figures anywhere under sections/article.
inline query::SelectionQuery FigurePathQuery(hedge::Vocabulary& vocab) {
  auto q = query::ParseSelectionQuery(
      "select(*; figure (section|article)*)", vocab);
  return std::move(q).value();
}

/// Sibling-order query: figures immediately followed by a caption (built
/// with the any-hedge sugar; exercises the full Theorem 4 machinery).
inline query::SelectionQuery FigureCaptionQuery(hedge::Vocabulary& vocab) {
  workload::ArticleVocab names = workload::ArticleVocab::Intern(vocab);
  std::vector<hedge::SymbolId> symbols = {
      names.article, names.title, names.section, names.para,
      names.figure,  names.table, names.caption, names.image};
  std::vector<hedge::VarId> vars = {names.text};
  hedge::SubstId z = vocab.substs.Intern("z");
  hre::Hre any = hre::AnyHedgeExpr(symbols, vars, z);
  hre::Hre caption_tree = hre::AnyTreeExpr(names.caption, symbols, vars, z);

  std::vector<phr::PointedBaseRep> triplets;
  triplets.push_back(
      {nullptr, names.figure, hre::HConcat(caption_tree, any)});
  triplets.push_back({nullptr, names.section, nullptr});
  triplets.push_back({nullptr, names.article, nullptr});
  strre::Regex regex = strre::Concat(
      strre::Sym(0), strre::Star(strre::Alt(strre::Sym(1), strre::Sym(2))));
  return {nullptr, phr::Phr(std::move(triplets), std::move(regex))};
}

/// The article grammar, optionally widened with `extra_paras` additional
/// paragraph flavors (schema-size scaling for E5).
inline std::string ArticleGrammar(size_t extra_paras = 0) {
  std::string item_union = "Para|Figure|Caption|Table|Section";
  std::string extra_rules;
  for (size_t i = 0; i < extra_paras; ++i) {
    std::string name = "Para" + std::to_string(i);
    item_union += "|" + name;
    extra_rules += name + " = para" + std::to_string(i) + "<Text>\n";
  }
  return "start   = Article\n"
         "Article = article<Title Section*>\n"
         "Title   = title<Text>\n"
         "Text    = $#text\n"
         "Section = section<Title (" +
         item_union +
         ")*>\n"
         "Para    = para<Text>\n"
         "Figure  = figure<Image>\n"
         "Image   = image<>\n"
         "Caption = caption<Text>\n"
         "Table   = table<>\n" +
         extra_rules;
}

/// Replacement for BENCHMARK_MAIN(): runs the registered benchmarks with the
/// usual console output, captures google-benchmark's JSON report on the
/// side, and writes `BENCH_<name>.json` containing
///
///   {"bench": "<name>", "report": <google-benchmark JSON>,
///    "obs": <metrics snapshot>}
///
/// to HEDGEQ_BENCH_OUT_DIR (default: the working directory). Observability
/// counters are on during the run so the "obs" section attributes work to
/// pipeline stages; set HEDGEQ_BENCH_OBS=0 to measure with the
/// instrumentation on its disabled fast path instead (the snapshot is then
/// all zeros).
inline int BenchMain(const char* name, int argc, char** argv) {
  const char* obs_env = std::getenv("HEDGEQ_BENCH_OBS");
  const bool obs_on = obs_env == nullptr || std::string(obs_env) != "0";
  obs::RegisterCatalogue();
  obs::SetEnabled(obs_on);

  const char* dir = std::getenv("HEDGEQ_BENCH_OUT_DIR");
  std::string prefix = (dir != nullptr && *dir != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
  // The library only routes its JSON reporter through flags, so append
  // --benchmark_out pointing at a scratch file (flags parse in order, so
  // these win over anything the caller passed).
  std::string raw_path = prefix + "BENCH_" + name + ".raw.json";
  std::string out_flag = "--benchmark_out=" + raw_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::ostringstream captured;
  {
    std::ifstream raw(raw_path);
    captured << raw.rdbuf();
  }
  std::remove(raw_path.c_str());
  std::string report = captured.str();
  if (report.empty()) report = "null";

  std::string path = prefix + "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return 0;  // the benchmark itself succeeded
  }
  out << "{\"bench\": \"" << name << "\",\n\"report\": " << report
      << ",\n\"obs\": " << obs::Registry().MetricsJson() << "}\n";
  return 0;
}

}  // namespace hedgeq::bench

/// Drop-in replacement for BENCHMARK_MAIN() used by every bench_* binary.
#define HEDGEQ_BENCH_MAIN(name)                             \
  int main(int argc, char** argv) {                         \
    return ::hedgeq::bench::BenchMain(#name, argc, argv);   \
  }

#endif  // HEDGEQ_BENCH_BENCH_UTIL_H_
