// E9 (Theorem 2): round-trip cost between the two formalisms. Lemma 1
// (expression -> automaton) is linear; Lemma 2 (automaton -> expression)
// pays the decomposition recursion — expression size grows steeply with
// the number of split states, the asymmetry the paper's Section 9 remarks
// on understandability hinge on.
#include <benchmark/benchmark.h>

#include <string>

#include "automata/analysis.h"
#include "hre/compile.h"
#include "hre/from_nha.h"

#include "bench/bench_util.h"

namespace hedgeq {
namespace {

// Family with k distinct tree shapes: a<b ... k times nested alternation>.
std::string Family(int k) {
  std::string expr = "$x";
  for (int i = 0; i < k; ++i) {
    expr = "(a<" + expr + ">|b<" + expr + " " + "$x*>)";
  }
  return expr + "*";
}

void BM_Lemma1Compile(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(Family(static_cast<int>(state.range(0))), vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  size_t states = 0;
  for (auto _ : state) {
    automata::Nha nha = hre::CompileHre(*e);
    states = nha.num_states();
    benchmark::DoNotOptimize(nha);
  }
  state.counters["nha_states"] = static_cast<double>(states);
}
BENCHMARK(BM_Lemma1Compile)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);

void BM_Lemma2RoundTrip(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(Family(static_cast<int>(state.range(0))), vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  automata::Nha pruned = automata::PruneNha(hre::CompileHre(*e));
  size_t expr_size = 0;
  for (auto _ : state) {
    auto back = hre::NhaToHre(pruned, vocab);
    if (!back.ok()) {
      state.SkipWithError(back.status().ToString().c_str());
      return;
    }
    expr_size = hre::HreSize(*back);
    benchmark::DoNotOptimize(back);
  }
  state.counters["nha_states"] = static_cast<double>(pruned.num_states());
  state.counters["expr_size"] = static_cast<double>(expr_size);
}
// expr_size counts unique DAG nodes; the unfolded expression tree is
// doubly exponential (k=3 unfolds to ~4e10 nodes).
BENCHMARK(BM_Lemma2RoundTrip)->DenseRange(1, 3)->Unit(
    benchmark::kMillisecond);

void BM_AmbiguityCheck(benchmark::State& state) {
  // Section 9 machinery: the unambiguity decision procedure on the same
  // family (flagged self-product emptiness).
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(Family(static_cast<int>(state.range(0))), vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  automata::Nha pruned = automata::PruneNha(hre::CompileHre(*e));
  bool ambiguous = false;
  for (auto _ : state) {
    ambiguous = automata::IsAmbiguous(pruned);
    benchmark::DoNotOptimize(ambiguous);
  }
  state.counters["ambiguous"] = ambiguous ? 1 : 0;
}
BENCHMARK(BM_AmbiguityCheck)->DenseRange(1, 3)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_theorem2)
