// E5 (claim C6): schema transformation via match-identifying hedge automata
// — output-schema construction cost as the input schema grows.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "schema/transform.h"

namespace hedgeq {
namespace {

void BM_SelectOutputSchema(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto input = schema::ParseSchema(
      bench::ArticleGrammar(static_cast<size_t>(state.range(0))), vocab);
  if (!input.ok()) {
    state.SkipWithError(input.status().ToString().c_str());
    return;
  }
  auto q = query::ParseSelectionQuery(
      "select(*; figure (section|article)*)", vocab);
  size_t out_states = 0, out_rules = 0;
  for (auto _ : state) {
    auto output = schema::SelectOutputSchema(*input, *q);
    if (!output.ok()) {
      state.SkipWithError(output.status().ToString().c_str());
      return;
    }
    out_states = output->nha().num_states();
    out_rules = output->nha().rules().size();
    benchmark::DoNotOptimize(output);
  }
  state.counters["schema_rules"] =
      static_cast<double>(input->nha().rules().size());
  state.counters["output_states"] = static_cast<double>(out_states);
  state.counters["output_rules"] = static_cast<double>(out_rules);
}
BENCHMARK(BM_SelectOutputSchema)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_DeleteOutputSchema(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto input = schema::ParseSchema(
      bench::ArticleGrammar(static_cast<size_t>(state.range(0))), vocab);
  if (!input.ok()) {
    state.SkipWithError(input.status().ToString().c_str());
    return;
  }
  auto q = query::ParseSelectionQuery(
      "select(*; figure (section|article)*)", vocab);
  for (auto _ : state) {
    auto output = schema::DeleteOutputSchema(*input, *q);
    benchmark::DoNotOptimize(output);
  }
}
BENCHMARK(BM_DeleteOutputSchema)
    ->Arg(0)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Sibling-condition query against the fixed article schema: the heavier
// Theorem 5 consistency machinery.
void BM_SelectOutputSiblingQuery(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto input = schema::ParseSchema(bench::ArticleGrammar(), vocab);
  if (!input.ok()) {
    state.SkipWithError(input.status().ToString().c_str());
    return;
  }
  query::SelectionQuery q = bench::FigureCaptionQuery(vocab);
  size_t out_states = 0;
  for (auto _ : state) {
    auto output = schema::SelectOutputSchema(*input, q);
    if (!output.ok()) {
      state.SkipWithError(output.status().ToString().c_str());
      return;
    }
    out_states = output->nha().num_states();
    benchmark::DoNotOptimize(output);
  }
  state.counters["output_states"] = static_cast<double>(out_states);
}
BENCHMARK(BM_SelectOutputSiblingQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_schema_transform)
