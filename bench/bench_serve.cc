// E18: the serving layer under load. Two questions: how does request
// throughput scale with the worker pool (the admission queue and the
// vocabulary lock are the contended resources), and how does the shed
// rate respond to offered load once the bounded queue is the backstop —
// the load-shedding curve that justifies admission control over an
// unbounded queue (which converts overload into latency for everyone).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "serve/serve.h"
#include "xml/xml.h"

namespace hedgeq {
namespace {

constexpr const char* kQuery = "select(*; figure (section|article)*)";
constexpr size_t kDocNodes = 2000;

// Throughput of a warm service (memoized evaluator, steady document) as
// the pool widens. Queue is roomy and there is no deadline, so nothing
// sheds: this isolates dispatch + evaluation cost per request.
void BM_ServeThroughput(benchmark::State& state) {
  hedge::Vocabulary vocab;
  hedge::Hedge doc = bench::MakeArticle(vocab, kDocNodes);
  serve::EngineOptions options;
  options.workers = static_cast<size_t>(state.range(0));
  options.queue_cap = 4096;
  serve::Engine engine(vocab, options);
  engine.SetDocument(xml::WrapHedge(doc, vocab));
  engine.Start();

  constexpr size_t kBatch = 256;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(kBatch);
  for (auto _ : state) {
    for (size_t i = 0; i < kBatch; ++i) {
      futures.push_back(engine.Submit(kQuery));
    }
    for (auto& f : futures) {
      serve::Response resp = f.get();
      if (resp.outcome != serve::Outcome::kOk) {
        state.SkipWithError("unexpected non-ok outcome");
        return;
      }
      benchmark::DoNotOptimize(resp.located);
    }
    futures.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  engine.Stop();
}
BENCHMARK(BM_ServeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Shed rate vs offered load: a deliberately small pool behind a
// deliberately small admission queue, hit with bursts of increasing
// size. Admission control turns the overload into immediate, cheap
// sheds instead of unbounded queueing; the "shed_rate" counter is the
// E18 curve (burst 16 fits, burst 1024 mostly sheds).
void BM_ServeShedRateVsOfferedLoad(benchmark::State& state) {
  hedge::Vocabulary vocab;
  hedge::Hedge doc = bench::MakeArticle(vocab, kDocNodes);
  serve::EngineOptions options;
  options.workers = 2;
  options.queue_cap = 16;
  serve::Engine engine(vocab, options);
  engine.SetDocument(xml::WrapHedge(doc, vocab));
  engine.Start();

  const size_t burst = static_cast<size_t>(state.range(0));
  uint64_t offered = 0;
  uint64_t shed = 0;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(burst);
  for (auto _ : state) {
    for (size_t i = 0; i < burst; ++i) {
      futures.push_back(engine.Submit(kQuery));
    }
    for (auto& f : futures) {
      serve::Response resp = f.get();
      ++offered;
      if (resp.outcome == serve::Outcome::kShed) ++shed;
      benchmark::DoNotOptimize(resp.located);
    }
    futures.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(offered));
  state.counters["shed_rate"] = benchmark::Counter(
      offered == 0 ? 0.0
                   : static_cast<double>(shed) / static_cast<double>(offered));
  engine.Stop();
}
BENCHMARK(BM_ServeShedRateVsOfferedLoad)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The cost of resilience: the full retry + breaker machinery on the
// happy path (no faults armed) against the same batch with the
// machinery maximally exercised memo-off. Keeps the serving layer's
// overhead honest relative to bare evaluator calls.
void BM_ServeColdCompilePath(benchmark::State& state) {
  hedge::Vocabulary vocab;
  hedge::Hedge doc = bench::MakeArticle(vocab, kDocNodes);
  serve::EngineOptions options;
  options.workers = static_cast<size_t>(state.range(0));
  options.queue_cap = 4096;
  options.memoize = false;  // every request re-parses and re-compiles
  serve::Engine engine(vocab, options);
  engine.SetDocument(xml::WrapHedge(doc, vocab));
  engine.Start();

  constexpr size_t kBatch = 64;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(kBatch);
  for (auto _ : state) {
    for (size_t i = 0; i < kBatch; ++i) {
      futures.push_back(engine.Submit(kQuery));
    }
    for (auto& f : futures) {
      serve::Response resp = f.get();
      if (resp.outcome != serve::Outcome::kOk) {
        state.SkipWithError("unexpected non-ok outcome");
        return;
      }
      benchmark::DoNotOptimize(resp.located);
    }
    futures.clear();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
  engine.Stop();
}
BENCHMARK(BM_ServeColdCompilePath)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_serve)
