// E3 (claim C3): determinization of hedge automata is exponential in the
// worst case, but document-like expressions determinize quickly — the
// paper's "we conjecture that such conversion is usually efficient".
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "bench/bench_util.h"
#include "hre/compile.h"
#include "lint/analyze.h"
#include "query/phr_compile.h"
#include "util/rng.h"
#include "verify/certificate.h"
#include "verify/checker.h"

namespace hedgeq {
namespace {

// Adversarial family: c< (a|b)* a (a|b)^{k-1} > — "the k-th child from the
// end is an a". The content model's NFA needs k states of lookback, so the
// horizontal determinization materializes ~2^k subsets.
std::string AdversarialExpr(int k) {
  std::string expr = "c<(a|b)* a";
  for (int i = 1; i < k; ++i) expr += " (a|b)";
  expr += ">";
  return expr;
}

void BM_DeterminizeAdversarial(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(AdversarialExpr(static_cast<int>(state.range(0))),
                         vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  automata::Nha nha = hre::CompileHre(*e);
  size_t h_states = 0, dha_states = 0;
  for (auto _ : state) {
    auto det = automata::Determinize(nha);
    if (!det.ok()) {
      state.SkipWithError(det.status().ToString().c_str());
      return;
    }
    h_states = det->dha.num_h_states();
    dha_states = det->dha.num_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["h_states"] = static_cast<double>(h_states);
  state.counters["dha_states"] = static_cast<double>(dha_states);
  // hedgeq::lint's static prediction next to the measured blowup (E12):
  // the estimate should track log2(h_states) across the family.
  state.counters["est_log2_h"] =
      static_cast<double>(lint::ProfileNha(nha).log2_h_estimate);
}
BENCHMARK(BM_DeterminizeAdversarial)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMillisecond);

// Document-like expressions: the kind of content models real schemas and
// queries use. Expected to stay tiny (supporting the conjecture).
void BM_DeterminizeDocumentLike(benchmark::State& state) {
  hedge::Vocabulary vocab;
  const char* exprs[] = {
      "section<title<$#text> (para<$#text>|figure<image>)*>",
      "article<title<$#text> section<title<$#text> para<$#text>*>*>",
      "(a|b c)* d? (e|f)+",
      "figure<image> caption<$#text>?",
  };
  auto e = hre::ParseHre(exprs[state.range(0)], vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  automata::Nha nha = hre::CompileHre(*e);
  size_t h_states = 0;
  for (auto _ : state) {
    auto det = automata::Determinize(nha);
    h_states = det->dha.num_h_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["h_states"] = static_cast<double>(h_states);
  // Document-like content models should also *predict* as cheap.
  state.counters["est_log2_h"] =
      static_cast<double>(lint::ProfileNha(nha).log2_h_estimate);
}
BENCHMARK(BM_DeterminizeDocumentLike)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMicrosecond);

// A document for the adversarial family: one c node with ~64 random a/b
// children (every letter of lookback exercised).
hedge::Hedge AdversarialDoc(hedge::Vocabulary& vocab) {
  Rng rng(12345);
  hedge::Hedge h;
  hedge::NodeId root =
      h.Append(hedge::kNullNode, hedge::Label::Symbol(vocab.symbols.Intern("c")));
  hedge::SymbolId a = vocab.symbols.Intern("a");
  hedge::SymbolId b = vocab.symbols.Intern("b");
  for (int i = 0; i < 64; ++i) {
    h.Append(root, hedge::Label::Symbol(rng.Below(2) == 0 ? a : b));
  }
  return h;
}

// Eager column of the eager-vs-lazy comparison: pay the full 2^k subset
// construction, then answer by table lookup. Past k≈16 this is the path
// the ExecBudget cuts off.
void BM_AdversarialEagerTotal(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(AdversarialExpr(static_cast<int>(state.range(0))),
                         vocab);
  automata::Nha nha = hre::CompileHre(*e);
  hedge::Hedge doc = AdversarialDoc(vocab);
  size_t h_states = 0;
  for (auto _ : state) {
    auto det = automata::Determinize(nha);
    if (!det.ok()) {
      state.SkipWithError(det.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(det->dha.Accepts(doc));
    h_states = det->dha.num_h_states();
  }
  state.counters["h_states"] = static_cast<double>(h_states);
}
BENCHMARK(BM_AdversarialEagerTotal)
    ->DenseRange(2, 16, 2)
    ->Unit(benchmark::kMillisecond);

// Lazy column: no preprocessing at all — on-the-fly subset simulation
// materializes only the horizontal sets this document touches, so the
// cost is flat in k where the eager column is exponential.
void BM_AdversarialLazyTotal(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(AdversarialExpr(static_cast<int>(state.range(0))),
                         vocab);
  automata::Nha nha = hre::CompileHre(*e);
  hedge::Hedge doc = AdversarialDoc(vocab);
  size_t materialized = 0;
  for (auto _ : state) {
    automata::LazyDha lazy(nha);
    benchmark::DoNotOptimize(lazy.Accepts(doc));
    materialized = lazy.stats().states_materialized;
  }
  state.counters["materialized"] = static_cast<double>(materialized);
}
BENCHMARK(BM_AdversarialLazyTotal)
    ->DenseRange(2, 24, 2)
    ->Unit(benchmark::kMillisecond);

// Minimization after determinization (the Section 9 optimization pass):
// how much of the subset-construction output is redundant? On the
// adversarial family the 2^k horizontal states are inherent (the language
// really needs k letters of lookback), so minimization confirms rather
// than collapses the blowup.
void BM_MinimizeAfterDeterminize(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(AdversarialExpr(static_cast<int>(state.range(0))),
                         vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  auto det = automata::Determinize(hre::CompileHre(*e));
  if (!det.ok()) {
    state.SkipWithError(det.status().ToString().c_str());
    return;
  }
  size_t h_before = det->dha.num_h_states(), h_after = 0;
  for (auto _ : state) {
    automata::Dha min = automata::MinimizeDha(det->dha);
    h_after = min.num_h_states();
    benchmark::DoNotOptimize(min);
  }
  state.counters["h_before"] = static_cast<double>(h_before);
  state.counters["h_after"] = static_cast<double>(h_after);
}
BENCHMARK(BM_MinimizeAfterDeterminize)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

// The certify column (E13): subset construction with its witness recorded,
// followed by the independent checker. `certify_frac` is the fraction of
// each iteration spent in verify::CheckDeterminize — the translation-
// validation overhead, targeted at <15% of construction cost.
void BM_DeterminizeCertified(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(AdversarialExpr(static_cast<int>(state.range(0))),
                         vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  automata::Nha nha = hre::CompileHre(*e);
  double total_ns = 0, certify_ns = 0;
  size_t h_states = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    BudgetScope scope{ExecBudget{}};
    automata::DeterminizeWitness witness;
    auto det = automata::Determinize(nha, scope, &witness);
    if (!det.ok()) {
      state.SkipWithError(det.status().ToString().c_str());
      return;
    }
    auto t1 = std::chrono::steady_clock::now();
    auto findings = verify::CheckDeterminize(nha, *det, witness);
    auto t2 = std::chrono::steady_clock::now();
    if (!findings.empty()) {
      state.SkipWithError("checker rejected the construction");
      return;
    }
    total_ns += std::chrono::duration<double, std::nano>(t2 - t0).count();
    certify_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
    h_states = det->dha.num_h_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["h_states"] = static_cast<double>(h_states);
  state.counters["certify_frac"] =
      total_ns > 0 ? certify_ns / total_ns : 0.0;
}
BENCHMARK(BM_DeterminizeCertified)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond);

// The light-checker column (E16): same construction, but revalidation runs
// the hash-witness light check — digest chain over the stored sets, full
// final-DFA/iota/start re-derivation, and a budgeted row sample — instead
// of the full witness replay. This is what every warm cache load pays;
// certify_frac here is targeted at <=20% at k=12 (full checking sits near
// 50%).
void BM_DeterminizeCertifiedLight(benchmark::State& state) {
  hedge::Vocabulary vocab;
  auto e = hre::ParseHre(AdversarialExpr(static_cast<int>(state.range(0))),
                         vocab);
  if (!e.ok()) {
    state.SkipWithError(e.status().ToString().c_str());
    return;
  }
  automata::Nha nha = hre::CompileHre(*e);
  double total_ns = 0, certify_ns = 0;
  size_t h_states = 0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    BudgetScope scope{ExecBudget{}};
    automata::DeterminizeWitness witness;
    auto det = automata::Determinize(nha, scope, &witness);
    if (!det.ok()) {
      state.SkipWithError(det.status().ToString().c_str());
      return;
    }
    auto t1 = std::chrono::steady_clock::now();
    // Certificate assembly is untimed on both sides of the ratio: the
    // cache hands the light checker an already-materialized certificate,
    // so revalidation cost is the check alone.
    verify::Certificate cert;
    cert.kind = verify::CertificateKind::kDeterminize;
    cert.input = nha;
    cert.dha = det->dha;
    cert.subsets = det->subsets;
    cert.det = witness;
    auto t2 = std::chrono::steady_clock::now();
    auto findings = verify::CheckCertificateLight(cert);
    auto t3 = std::chrono::steady_clock::now();
    if (!findings.empty()) {
      state.SkipWithError("light checker rejected the construction");
      return;
    }
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count() +
                std::chrono::duration<double, std::nano>(t3 - t2).count();
    certify_ns += std::chrono::duration<double, std::nano>(t3 - t2).count();
    h_states = det->dha.num_h_states();
    benchmark::DoNotOptimize(det);
  }
  state.counters["h_states"] = static_cast<double>(h_states);
  state.counters["certify_frac"] =
      total_ns > 0 ? certify_ns / total_ns : 0.0;
}
BENCHMARK(BM_DeterminizeCertifiedLight)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond);

// The full Theorem 4 pipeline (determinize + class product + mirror) on a
// realistic query, the preprocessing the paper calls exponential-but-fine.
void BM_Theorem4Pipeline(benchmark::State& state) {
  hedge::Vocabulary vocab;
  query::SelectionQuery q = bench::FigureCaptionQuery(vocab);
  size_t classes = 0;
  for (auto _ : state) {
    auto compiled = query::CompilePhr(q.envelope);
    classes = compiled->num_classes();
    benchmark::DoNotOptimize(compiled);
  }
  state.counters["equiv_classes"] = static_cast<double>(classes);
}
BENCHMARK(BM_Theorem4Pipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hedgeq

HEDGEQ_BENCH_MAIN(bench_determinize)
