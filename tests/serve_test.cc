// serve::Engine contract tests: admission control and queue-cap shedding,
// per-request deadlines that cover queue wait + execution (re-armed at
// admission, never process-wide), bounded retry with backoff for transient
// faults only, the circuit breaker's closed/open/half-open cycle, and
// graceful drain resolving every outstanding future exactly once.
#include "serve/serve.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "query/selection.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "xml/xml.h"

namespace hedgeq::serve {
namespace {

constexpr const char* kQuery = "select(*; figure (section|article)*)";

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  // A small article document plus the single-threaded oracle answer for
  // kQuery against it, computed with no faults armed.
  xml::XmlDocument MakeDoc(size_t target_nodes = 120, uint64_t seed = 7) {
    Rng rng(seed);
    workload::ArticleOptions options;
    options.target_nodes = target_nodes;
    hedge::Hedge h = workload::RandomArticle(rng, vocab_, options);
    return xml::WrapHedge(h, vocab_);
  }

  size_t OracleLocated(const xml::XmlDocument& doc) {
    auto q = query::ParseSelectionQuery(kQuery, vocab_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto eval = query::SelectionEvaluator::Create(*q);
    EXPECT_TRUE(eval.ok()) << eval.status().ToString();
    return eval->LocatedNodes(doc.hedge).size();
  }

  hedge::Vocabulary vocab_;
};

TEST_F(ServeTest, AnswersMatchDirectEvaluation) {
  xml::XmlDocument doc = MakeDoc();
  const size_t expected = OracleLocated(doc);
  ASSERT_GT(expected, 0u);

  EngineOptions options;
  options.workers = 4;
  Engine engine(vocab_, options);
  engine.SetDocument(std::move(doc));
  engine.Start();

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(engine.Submit(kQuery));
  for (auto& f : futures) {
    Response resp = f.get();
    EXPECT_EQ(resp.outcome, Outcome::kOk) << resp.status.ToString();
    EXPECT_EQ(resp.located, expected);
    EXPECT_EQ(resp.answer.size(), expected);
    EXPECT_EQ(resp.attempts, 1);
    EXPECT_FALSE(resp.degraded);
  }
  engine.Stop();
  const Engine::Counters tally = engine.counters();
  EXPECT_EQ(tally.submitted, 8u);
  EXPECT_EQ(tally.admitted, 8u);
  EXPECT_EQ(tally.completed, 8u);
  EXPECT_EQ(tally.ok, 8u);
  EXPECT_EQ(tally.shed, 0u);
}

TEST_F(ServeTest, QueueCapOverflowShedsImmediately) {
  EngineOptions options;
  options.queue_cap = 2;
  Engine engine(vocab_, options);
  engine.SetDocument(MakeDoc());

  // Submitting before Start makes the overflow deterministic: nothing
  // drains the queue, so requests 3 and 4 must shed at admission.
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(engine.Submit(kQuery));
  for (int i = 2; i < 4; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    Response resp = futures[i].get();
    EXPECT_EQ(resp.outcome, Outcome::kShed);
    EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(resp.attempts, 0);  // never executed
  }
  // Drain still owes the two admitted requests their answers.
  engine.Drain();
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(futures[i].get().outcome, Outcome::kOk);
  }
  EXPECT_EQ(engine.counters().shed, 2u);
}

TEST_F(ServeTest, ExpiredDeadlineShedsWithoutExecuting) {
  EngineOptions options;
  options.deadline_set = true;
  options.deadline_ms = 0;  // every request is born expired
  Engine engine(vocab_, options);
  engine.SetDocument(MakeDoc());
  engine.Start();
  for (int i = 0; i < 4; ++i) {
    Response resp = engine.Submit(kQuery).get();
    EXPECT_EQ(resp.outcome, Outcome::kShed);
    EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(resp.attempts, 0) << "shed requests must never execute";
    EXPECT_EQ(resp.located, 0u);
  }
  EXPECT_EQ(engine.counters().shed, 4u);
  EXPECT_EQ(engine.counters().ok, 0u);
}

TEST_F(ServeTest, DeadlineIsReArmedPerRequest) {
  // Regression for the repl bug this PR fixes: --deadline-ms used to be a
  // process-wide deadline, so any request after the first deadline_ms of
  // process lifetime failed. Per-request arming means a request submitted
  // long after engine start still gets its full window.
  EngineOptions options;
  options.deadline_set = true;
  options.deadline_ms = 5000;
  Engine engine(vocab_, options);
  engine.SetDocument(MakeDoc());
  engine.Start();
  EXPECT_EQ(engine.Submit(kQuery).get().outcome, Outcome::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // More engine lifetime has elapsed than one window ago; a process-wide
  // deadline armed at start would now be closer to expiry for no reason —
  // the re-armed one is indistinguishable from the first request's.
  Response late = engine.Submit(kQuery).get();
  EXPECT_EQ(late.outcome, Outcome::kOk) << late.status.ToString();
}

TEST_F(ServeTest, TransientFailureIsRetriedToSuccess) {
  EngineOptions options;
  options.workers = 1;
  options.retry.backoff_base_ms = 1;
  Engine engine(vocab_, options);
  xml::XmlDocument doc = MakeDoc();
  const size_t expected = OracleLocated(doc);
  engine.SetDocument(std::move(doc));
  engine.Start();

  failpoint::ArmFirstN("serve/exec", 1);  // fail once, then heal
  Response resp = engine.Submit(kQuery).get();
  EXPECT_EQ(resp.outcome, Outcome::kRetried);
  EXPECT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.attempts, 2);
  EXPECT_EQ(resp.located, expected) << "retried answer must be complete";
  const Engine::Counters tally = engine.counters();
  EXPECT_EQ(tally.retried, 1u);
  EXPECT_EQ(tally.retry_attempts, 1u);
}

TEST_F(ServeTest, RetryBudgetExhaustionIsError) {
  EngineOptions options;
  options.workers = 1;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 1;
  Engine engine(vocab_, options);
  engine.SetDocument(MakeDoc());
  engine.Start();

  failpoint::Arm("serve/exec");  // absorbing: every attempt fails
  Response resp = engine.Submit(kQuery).get();
  EXPECT_EQ(resp.outcome, Outcome::kError);
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(resp.attempts, 3);
  EXPECT_EQ(engine.counters().retry_attempts, 2u);
  EXPECT_EQ(engine.counters().errors, 1u);
}

TEST_F(ServeTest, SemanticErrorsAreNeverRetried) {
  EngineOptions options;
  options.workers = 1;
  options.retry.max_attempts = 5;
  Engine engine(vocab_, options);
  engine.Start();

  // No document: FailedPrecondition, one attempt, no backoff sleeps.
  Response no_doc = engine.Submit(kQuery).get();
  EXPECT_EQ(no_doc.outcome, Outcome::kError);
  EXPECT_EQ(no_doc.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(no_doc.attempts, 1);

  engine.SetDocument(MakeDoc());
  // Parse error: same contract.
  Response bad = engine.Submit("select(").get();
  EXPECT_EQ(bad.outcome, Outcome::kError);
  EXPECT_EQ(bad.attempts, 1);
  EXPECT_EQ(engine.counters().retry_attempts, 0u);
}

TEST_F(ServeTest, BreakerTripsAfterConsecutiveEagerFailures) {
  EngineOptions options;
  options.workers = 1;
  options.breaker.failure_threshold = 3;
  options.breaker.open_ms = 60'000;  // stays open for the whole test
  Engine engine(vocab_, options);
  xml::XmlDocument doc = MakeDoc();
  const size_t expected = OracleLocated(doc);
  engine.SetDocument(std::move(doc));
  engine.Start();

  // Every eager compile degrades to the lazy engine; answers stay correct.
  failpoint::Arm("determinize/subset");
  for (int i = 0; i < 3; ++i) {
    // Degraded evaluators are never memoized, so each identical request
    // still exercises the breaker.
    Response resp = engine.Submit(kQuery).get();
    EXPECT_EQ(resp.outcome, Outcome::kDegraded) << resp.status.ToString();
    EXPECT_TRUE(resp.degraded);
    EXPECT_FALSE(resp.breaker_was_open) << "breaker must not trip early";
    EXPECT_EQ(resp.located, expected);
  }
  EXPECT_EQ(engine.breaker_state(), Engine::BreakerState::kOpen);
  EXPECT_EQ(engine.counters().breaker_trips, 1u);

  // While open, requests skip the eager path entirely — even with the
  // fault disarmed they run lazy-only (a closed breaker would now serve
  // this request eagerly as kOk, so kDegraded + breaker_was_open proves
  // the eager path was never consulted). Answers stay correct.
  failpoint::DisarmAll();
  Response open_resp = engine.Submit(kQuery).get();
  EXPECT_EQ(open_resp.outcome, Outcome::kDegraded);
  EXPECT_TRUE(open_resp.breaker_was_open);
  EXPECT_EQ(open_resp.located, expected);
}

TEST_F(ServeTest, BreakerHalfOpensAndRecovers) {
  EngineOptions options;
  options.workers = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_ms = 30;
  options.memoize = false;  // every request exercises the breaker
  Engine engine(vocab_, options);
  xml::XmlDocument doc = MakeDoc();
  const size_t expected = OracleLocated(doc);
  engine.SetDocument(std::move(doc));
  engine.Start();

  failpoint::Arm("determinize/subset");
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(engine.Submit(kQuery).get().outcome, Outcome::kDegraded);
  }
  ASSERT_EQ(engine.breaker_state(), Engine::BreakerState::kOpen);

  // Probe while the fault persists: half-open -> re-open, second trip.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(engine.Submit(kQuery).get().outcome, Outcome::kDegraded);
  EXPECT_EQ(engine.breaker_state(), Engine::BreakerState::kOpen);
  EXPECT_EQ(engine.counters().breaker_trips, 2u);

  // Probe after the fault heals: half-open -> closed, eager service again.
  failpoint::DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Response recovered = engine.Submit(kQuery).get();
  EXPECT_EQ(recovered.outcome, Outcome::kOk) << recovered.status.ToString();
  EXPECT_FALSE(recovered.degraded);
  EXPECT_EQ(recovered.located, expected);
  EXPECT_EQ(engine.breaker_state(), Engine::BreakerState::kClosed);
}

TEST_F(ServeTest, DrainResolvesEveryFutureThenShedsNewWork) {
  EngineOptions options;
  options.workers = 2;
  Engine engine(vocab_, options);
  engine.SetDocument(MakeDoc());
  engine.Start();

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(engine.Submit(kQuery));
  engine.Drain();
  size_t terminal = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "drain must resolve every outstanding future";
    f.get();
    ++terminal;
  }
  EXPECT_EQ(terminal, futures.size());
  EXPECT_EQ(engine.counters().completed, 12u);

  Response late = engine.Submit(kQuery).get();
  EXPECT_EQ(late.outcome, Outcome::kShed);
  EXPECT_EQ(late.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, DrainFlushesRequestsQueuedBeforeStart) {
  Engine engine(vocab_, EngineOptions{});
  engine.SetDocument(MakeDoc());
  std::future<Response> f = engine.Submit(kQuery);
  engine.Drain();  // brings the pool up just to flush the queue
  EXPECT_EQ(f.get().outcome, Outcome::kOk);
}

TEST_F(ServeTest, CancelAllShedsInsteadOfAnswering) {
  EngineOptions options;
  options.workers = 1;
  Engine engine(vocab_, options);
  engine.SetDocument(MakeDoc());
  engine.Start();
  engine.CancelAll();
  Response resp = engine.Submit(kQuery).get();
  EXPECT_EQ(resp.outcome, Outcome::kShed);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.located, 0u);
}

}  // namespace
}  // namespace hedgeq::serve
