#include <gtest/gtest.h>

#include "strre/regex.h"
#include "util/interner.h"

namespace hedgeq::strre {
namespace {

class RegexTest : public ::testing::Test {
 protected:
  Symbol Resolve(std::string_view name) { return interner_.Intern(name); }
  std::function<Symbol(std::string_view)> resolver() {
    return [this](std::string_view s) { return Resolve(s); };
  }
  std::function<std::string(Symbol)> namer() {
    return [this](Symbol s) { return interner_.NameOf(s); };
  }
  Interner interner_;
};

TEST_F(RegexTest, FactorySimplifications) {
  EXPECT_EQ(Concat(Epsilon(), Sym(1))->kind(), RegexKind::kSymbol);
  EXPECT_EQ(Concat(EmptySet(), Sym(1))->kind(), RegexKind::kEmptySet);
  EXPECT_EQ(Alt(EmptySet(), Sym(1))->kind(), RegexKind::kSymbol);
  EXPECT_EQ(Star(Epsilon())->kind(), RegexKind::kEpsilon);
  EXPECT_EQ(Star(Star(Sym(1)))->kind(), RegexKind::kStar);
  EXPECT_EQ(Optional(EmptySet())->kind(), RegexKind::kEpsilon);
}

TEST_F(RegexTest, ParseBasics) {
  auto r = ParseRegex("a b|c*", resolver());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind(), RegexKind::kUnion);
}

TEST_F(RegexTest, ParseEpsilonAndEmpty) {
  auto eps = ParseRegex("()", resolver());
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ((*eps)->kind(), RegexKind::kEpsilon);

  auto empty = ParseRegex("{}", resolver());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)->kind(), RegexKind::kEmptySet);
}

TEST_F(RegexTest, ParsePostfixChain) {
  auto r = ParseRegex("a*+?", resolver());
  ASSERT_TRUE(r.ok());
}

TEST_F(RegexTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseRegex("a )", resolver()).ok());
  EXPECT_FALSE(ParseRegex("(a", resolver()).ok());
  EXPECT_FALSE(ParseRegex("|a", resolver()).ok());
  EXPECT_FALSE(ParseRegex("", resolver()).ok());
  EXPECT_FALSE(ParseRegex("{a}", resolver()).ok());
}

TEST_F(RegexTest, RoundTripPrinting) {
  for (const char* text :
       {"a", "a b", "a|b", "(a|b) c*", "a+ b?", "()", "{}", "a (b|()) c"}) {
    auto r = ParseRegex(text, resolver());
    ASSERT_TRUE(r.ok()) << text;
    std::string printed = RegexToString(*r, namer());
    auto r2 = ParseRegex(printed, resolver());
    ASSERT_TRUE(r2.ok()) << printed;
    // Printing the reparse must be stable.
    EXPECT_EQ(RegexToString(*r2, namer()), printed);
  }
}

TEST_F(RegexTest, SizeCountsNodes) {
  auto r = ParseRegex("a b", resolver());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(RegexSize(*r), 3u);  // concat + two symbols
  EXPECT_EQ(RegexSize(Sym(0)), 1u);
}

TEST_F(RegexTest, LiteralBuildsConcatenation) {
  Regex lit = Literal({0, 1, 2});
  EXPECT_EQ(RegexSize(lit), 5u);  // 3 symbols + 2 concats
  EXPECT_EQ(Literal({})->kind(), RegexKind::kEpsilon);
}

}  // namespace
}  // namespace hedgeq::strre
