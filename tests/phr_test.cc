#include <gtest/gtest.h>

#include "hedge/pointed.h"
#include "phr/phr.h"

namespace hedgeq::phr {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

class PhrTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Phr ParseP(const std::string& text) {
    auto r = ParsePhr(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(PhrTest, ParseBareSymbolsArePathSteps) {
  Phr phr = ParseP("(section)* figure");
  EXPECT_EQ(phr.triplets().size(), 2u);
  EXPECT_TRUE(phr.IsPathExpression());
}

TEST_F(PhrTest, ParseTriplets) {
  Phr phr = ParseP("[(); a; b] [b; a; ()]");
  ASSERT_EQ(phr.triplets().size(), 2u);
  EXPECT_FALSE(phr.IsPathExpression());
  EXPECT_EQ(phr.triplets()[0].elder->kind(), hre::HreKind::kEpsilon);
  EXPECT_EQ(vocab_.symbols.NameOf(phr.triplets()[0].label), "a");
}

TEST_F(PhrTest, ParseStarCondition) {
  Phr phr = ParseP("[*; a; caption b*]");
  ASSERT_EQ(phr.triplets().size(), 1u);
  EXPECT_EQ(phr.triplets()[0].elder, nullptr);
  EXPECT_NE(phr.triplets()[0].younger, nullptr);
}

TEST_F(PhrTest, ParseErrors) {
  Vocabulary v;
  EXPECT_FALSE(ParsePhr("", v).ok());
  EXPECT_FALSE(ParsePhr("[a; b]", v).ok());
  EXPECT_FALSE(ParsePhr("[a; b; c; d]", v).ok());
  EXPECT_FALSE(ParsePhr("[; a; ]", v).ok());
  EXPECT_FALSE(ParsePhr("(a", v).ok());
  EXPECT_FALSE(ParsePhr("[a; ; b]", v).ok());
}

TEST_F(PhrTest, RoundTripPrinting) {
  for (const char* text :
       {"a", "(section)* figure", "[(); a; b] [b; a; ()]",
        "[a<%z>*^z; b; a<%z>*^z]*", "(a|b)+ [*; c; d*]?"}) {
    Phr phr = ParseP(text);
    std::string printed = phr.ToString(vocab_);
    Phr phr2 = ParseP(printed);
    EXPECT_EQ(phr2.ToString(vocab_), printed) << text;
  }
}

TEST_F(PhrTest, NaiveMatcherPathExpression) {
  // PHR "figure section*" (bottom-to-top): the located node is a figure and
  // every ancestor is a section.
  Phr phr = ParseP("figure section*");
  NaivePhrMatcher matcher(phr);
  EXPECT_TRUE(matcher.Matches(Parse("section<figure<@>>")));
  EXPECT_TRUE(matcher.Matches(Parse("figure<@>")));
  EXPECT_TRUE(matcher.Matches(Parse("section<section<figure<@> para>>")));
  EXPECT_FALSE(matcher.Matches(Parse("doc<figure<@>>")));
  EXPECT_FALSE(matcher.Matches(Parse("section<para<@>>")));
  EXPECT_FALSE(matcher.Matches(Parse("section<section<@>>")));
}

TEST_F(PhrTest, NaiveMatcherSiblingConditions) {
  // Figures whose immediately following sibling is a caption, at any depth:
  // [*; figure; caption (...)*] then any path upward. The younger condition
  // uses an HRE: caption<$t?> then anything.
  Phr phr = ParseP(
      "[*; figure; caption<$t*> (section<%z>*^z|para|caption|figure|$t)*] "
      "(section|doc)*");
  NaivePhrMatcher matcher(phr);
  EXPECT_TRUE(matcher.Matches(
      Parse("doc<section<figure<@> caption<$t>>>")));
  EXPECT_TRUE(matcher.Matches(
      Parse("doc<section<figure<@> caption<$t> para>>")));
  EXPECT_FALSE(matcher.Matches(Parse("doc<section<figure<@>>>")));
  EXPECT_FALSE(matcher.Matches(
      Parse("doc<section<figure<@> para caption<$t>>>")));
}

TEST_F(PhrTest, PaperSection5Example) {
  // (a<z>^{*z}, b, a<z>^{*z})^*: parent of eta is b, ancestors all b, all
  // other nodes a.
  Phr phr = ParseP("[a<%z>*^z; b; a<%z>*^z]*");
  NaivePhrMatcher matcher(phr);
  EXPECT_TRUE(matcher.Matches(Parse("b<@>")));
  EXPECT_TRUE(matcher.Matches(Parse("a b<a<a> b<@> a> a")));
  EXPECT_TRUE(matcher.Matches(Parse("b<b<b<@>>>")));
  EXPECT_FALSE(matcher.Matches(Parse("a<@>")));
  EXPECT_FALSE(matcher.Matches(Parse("b<a<b<@>>>")));  // an ancestor is a
  EXPECT_FALSE(matcher.Matches(Parse("c b<@>")));      // a sibling is c
}

TEST_F(PhrTest, NaiveMatcherEtaEdgeCases) {
  Phr phr = ParseP("a*");
  NaivePhrMatcher matcher(phr);
  // Not pointed at all.
  EXPECT_FALSE(matcher.Matches(Parse("a<b>")));
  // Bare eta decomposes into zero bases; a* accepts the empty sequence.
  EXPECT_TRUE(matcher.Matches(Parse("@")));
  // Top-level eta with siblings has no base decomposition.
  EXPECT_FALSE(matcher.Matches(Parse("a @")));
}

}  // namespace
}  // namespace hedgeq::phr
