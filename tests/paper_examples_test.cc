// Reproduces the worked examples of the paper verbatim, end to end.
#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "hre/compile.h"
#include "phr/phr.h"
#include "query/selection.h"
#include "strre/ops.h"

namespace hedgeq {
namespace {

using automata::HState;
using automata::Nha;
using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;

class PaperExamplesTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

// Section 3: the computation of d<p<x> p<y>> d<p<x>> by M0 is
// qd<qp1<qx> qp2<qy>> qd<qp1<qx>>, whose ceil qd qd lies in F0.
TEST_F(PaperExamplesTest, Section3ComputationOfM0) {
  Nha m0;
  HState qd = m0.AddState();
  HState qp1 = m0.AddState();
  HState qp2 = m0.AddState();
  HState qx = m0.AddState();
  HState qy = m0.AddState();
  m0.AddVariableState(vocab_.variables.Intern("x"), qx);
  m0.AddVariableState(vocab_.variables.Intern("y"), qy);
  m0.AddRule(vocab_.symbols.Intern("d"),
             strre::CompileRegex(
                 strre::Concat(strre::Sym(qp1), strre::Star(strre::Sym(qp2)))),
             qd);
  m0.AddRule(vocab_.symbols.Intern("p"), strre::CompileRegex(strre::Sym(qx)),
             qp1);
  m0.AddRule(vocab_.symbols.Intern("p"), strre::CompileRegex(strre::Sym(qy)),
             qp2);
  m0.SetFinal(strre::CompileRegex(strre::Star(strre::Sym(qd))));

  Hedge h = Parse("d<p<$x> p<$y>> d<p<$x>>");
  EXPECT_TRUE(m0.Accepts(h));

  // M0 is deterministic on this hedge: each node's state set is the
  // singleton from the paper's computation.
  std::vector<Bitset> sets = m0.ComputeStateSets(h);
  auto only = [&](NodeId n, HState q) {
    EXPECT_EQ(sets[n].Count(), 1u) << "node " << n;
    EXPECT_TRUE(sets[n].Test(q)) << "node " << n;
  };
  NodeId d1 = h.roots()[0], d2 = h.roots()[1];
  only(d1, qd);
  only(d2, qd);
  only(h.ChildrenOf(d1)[0], qp1);
  only(h.ChildrenOf(d1)[1], qp2);
  only(h.ChildrenOf(d2)[0], qp1);
}

// Definition 3/4: the paper's M0 built directly as a *deterministic* hedge
// automaton (hand-coded horizontal DFA + assignments), checking the
// displayed computation M||u = qd<qp1<qx> qp2<qy>> qd<qp1<qx>> node by
// node.
TEST_F(PaperExamplesTest, Definition4ComputationByHandBuiltDha) {
  // States: 0=qd 1=qp1 2=qp2 3=qx 4=qy 5=q0 (dead).
  // Horizontal DFA states encode how far a child sequence matches either
  // qx (h1), qy (h2), or qp1 qp2* (h3); h0 = start, h4 = dead.
  automata::Dha m0(6, 5, /*h_start=*/0, /*sink=*/5);
  auto set_row = [&](automata::HhState h, std::initializer_list<
                                               std::pair<int, int>> moves) {
    for (automata::HState q = 0; q < 6; ++q) m0.SetHTransition(h, q, 4);
    for (auto [q, to] : moves) {
      m0.SetHTransition(h, static_cast<automata::HState>(q),
                        static_cast<automata::HhState>(to));
    }
  };
  set_row(0, {{3, 1}, {4, 2}, {1, 3}});  // from start: qx, qy, or qp1
  set_row(1, {});                        // after qx: nothing more
  set_row(2, {});                        // after qy: nothing more
  set_row(3, {{2, 3}});                  // qp1 qp2*: more qp2
  set_row(4, {});                        // dead

  hedge::SymbolId d = vocab_.symbols.Intern("d");
  hedge::SymbolId p = vocab_.symbols.Intern("p");
  for (automata::HhState h = 0; h < 5; ++h) {
    m0.SetAssign(d, h, h == 3 ? 0u : 5u);  // qd iff children in qp1 qp2*
    m0.SetAssign(p, h, h == 1 ? 1u : h == 2 ? 2u : 5u);  // qp1 / qp2
  }
  m0.SetVariableState(vocab_.variables.Intern("x"), 3);
  m0.SetVariableState(vocab_.variables.Intern("y"), 4);
  // F0 = L(qd*).
  strre::Dfa final_dfa;
  strre::StateId f0 = final_dfa.AddState(true);
  final_dfa.SetTransition(f0, 0, f0);
  m0.SetFinalDfa(std::move(final_dfa));

  Hedge h = Parse("d<p<$x> p<$y>> d<p<$x>>");
  std::vector<automata::HState> run = m0.Run(h);
  NodeId d1 = h.roots()[0], d2 = h.roots()[1];
  EXPECT_EQ(run[d1], 0u);                          // qd
  EXPECT_EQ(run[d2], 0u);                          // qd
  EXPECT_EQ(run[h.ChildrenOf(d1)[0]], 1u);         // qp1
  EXPECT_EQ(run[h.ChildrenOf(d1)[1]], 2u);         // qp2
  EXPECT_EQ(run[h.ChildrenOf(d2)[0]], 1u);         // qp1
  // "The ceil of this computation is qd qd, which is contained by F0."
  EXPECT_TRUE(m0.Accepts(h));
  // Rejections flow through the dead state q0.
  EXPECT_FALSE(m0.Accepts(Parse("d<p<$y>>")));
  EXPECT_FALSE(m0.Accepts(Parse("d<p<$x> p<$x>>")));
}

// Section 4: L(a<z>^{*z}) contains all hedges where every symbol is a and
// every substitution symbol is z, at any height.
TEST_F(PaperExamplesTest, Section4VerticalClosureLanguage) {
  auto e = hre::ParseHre("a<%z>*^z", vocab_);
  ASSERT_TRUE(e.ok());
  Nha m = hre::CompileHre(*e);
  for (const char* pos : {"", "a", "a a a", "a<a>", "a<a<a<a>>>", "a<%z> a",
                          "a<a<%z> a<%z>>"}) {
    EXPECT_TRUE(m.Accepts(Parse(pos))) << pos;
  }
  for (const char* neg : {"b", "a<b>", "a b", "$x", "a<$x>"}) {
    EXPECT_FALSE(m.Accepts(Parse(neg))) << neg;
  }
  // Precise reading of Definition 12: the content of every node is either
  // the bare substitution leaf z or a sequence of a-trees — never a mix
  // (each embedding replaces a z wholesale). The paper's prose summary
  // ("all hedges where every symbol is a") glosses over this.
  EXPECT_FALSE(m.Accepts(Parse("a<a<%z> %z>")));
}

// Section 6: the Theorem 3 marked automaton for e = (b|x)* on
// b a<a<b x> b>. Erratum: the paper's displayed computation
// (q2,0)(q2,0)<(q2,1)<(q0,0)(q1,0)>(q2,0)> contradicts its own
// construction — every leaf b has subhedge epsilon, and epsilon lies in
// L((b|x)*) and in alpha^{-1}(b, q0), so the three leaf b's are marked
// (q0,1) as well. Definition 22 agrees: their subhedges are in L(e1); it
// is the *envelope* condition of the full selection that singles out the
// intended node (checked in Section6SelectionEndToEnd below).
TEST_F(PaperExamplesTest, Section6MarkedAutomaton) {
  auto e = hre::ParseHre("(b|$x)*", vocab_);
  ASSERT_TRUE(e.ok());
  auto det = automata::Determinize(hre::CompileHre(*e));
  ASSERT_TRUE(det.ok());

  Hedge h = Parse("b a<a<b $x> b>");
  NodeId top_b = h.roots()[0];
  NodeId outer_a = h.roots()[1];
  NodeId inner_a = h.ChildrenOf(outer_a)[0];
  NodeId inner_b = h.ChildrenOf(inner_a)[0];
  NodeId last_b = h.ChildrenOf(outer_a)[1];

  auto expected = [&](NodeId n) {
    return n == inner_a || n == top_b || n == inner_b || n == last_b;
  };

  automata::Dha::MarkedRun run = det->dha.RunWithMarks(h);
  for (NodeId n = 0; n < h.num_nodes(); ++n) {
    if (h.label(n).kind != hedge::LabelKind::kSymbol) continue;
    EXPECT_EQ(run.marks[n], expected(n)) << "node " << n;
  }

  // And the explicit Theorem 3 automaton M-down-e agrees and accepts all.
  // "a" is not in the expression's alphabet, so it must be covered
  // explicitly for the pair construction to keep its mark bit.
  std::vector<hedge::SymbolId> cover = {vocab_.symbols.Intern("a"),
                                        vocab_.symbols.Intern("b")};
  automata::Dha marked = automata::BuildMarkedDha(det->dha, cover);
  std::vector<HState> states = marked.Run(h);
  for (NodeId n = 0; n < h.num_nodes(); ++n) {
    if (h.label(n).kind != hedge::LabelKind::kSymbol) continue;
    EXPECT_EQ(states[n] % 2 == 1, expected(n)) << "node " << n;
  }
  EXPECT_TRUE(marked.Accepts(h));
}

// Section 5: the PHR (a<z>^{*z}, b, a<z>^{*z})^* matches pointed hedges
// whose eta-parent and all its ancestors are b while everything else is a —
// evaluated here by the production Algorithm 1, not just the oracle.
TEST_F(PaperExamplesTest, Section5PhrViaAlgorithmOne) {
  auto phr = phr::ParsePhr("[a<%z>*^z; b; a<%z>*^z]*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto eval = query::PhrEvaluator::Create(*phr);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();

  Hedge doc = Parse("a b<a<a> b<a> a> a");
  // Nodes: a, b (ancestors all b: trivially), b's children a<a>, b<a>, a.
  // Located: the outer b (parent chain empty, siblings all a) and the inner
  // b (ancestor chain = b, siblings a<a> and a... wait: envelope of inner b
  // has elder sibling a<a> and younger a, all-a: located).
  std::vector<bool> located = eval->Locate(doc);
  NodeId outer_b = doc.roots()[1];
  NodeId inner_b = doc.ChildrenOf(outer_b)[1];
  size_t count = 0;
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (located[n]) ++count;
  }
  EXPECT_TRUE(located[outer_b]);
  EXPECT_TRUE(located[inner_b]);
  EXPECT_EQ(count, 2u);
}

// Section 6 complete selection: select((b|x)*, (eps,a,b)(b,a,eps)) locates
// the paper's node via the production evaluator.
TEST_F(PaperExamplesTest, Section6SelectionEndToEnd) {
  auto q = query::ParseSelectionQuery(
      "select((b|$x)*; [(); a; b] [b; a; ()])", vocab_);
  ASSERT_TRUE(q.ok());
  auto eval = query::SelectionEvaluator::Create(*q);
  ASSERT_TRUE(eval.ok());
  Hedge doc = Parse("b a<a<b $x> b>");
  std::vector<NodeId> located = eval->LocatedNodes(doc);
  ASSERT_EQ(located.size(), 1u);
  EXPECT_EQ(located[0], doc.ChildrenOf(doc.roots()[1])[0]);
}

// Section 1's motivating path expression (section*, figure): figures in
// sections at any nesting depth.
TEST_F(PaperExamplesTest, Section1PathExpression) {
  auto phr = phr::ParsePhr("figure section*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto eval = query::PhrEvaluator::Create(*phr);
  ASSERT_TRUE(eval.ok());
  Hedge doc =
      Parse("section<figure section<section<figure>> para<figure>> figure");
  std::vector<bool> located = eval->Locate(doc);
  size_t count = 0;
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (located[n]) ++count;
  }
  // figure under section, figure under section<section<...>>, top figure;
  // NOT the figure inside para.
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace hedgeq
