#include <gtest/gtest.h>

#include "baseline/translate.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::baseline {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;

class TranslateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::ArticleVocab names = workload::ArticleVocab::Intern(vocab_);
    alphabet_ = {names.article, names.title,   names.section, names.para,
                 names.figure,  names.table,   names.caption, names.image};
  }

  // Locates via the translated selection query.
  std::vector<NodeId> ViaPhr(const Hedge& doc, const std::string& xpath) {
    auto parsed = ParseXPath(xpath, vocab_);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto translated = TranslateXPath(*parsed, alphabet_);
    EXPECT_TRUE(translated.ok()) << xpath << ": "
                                 << translated.status().ToString();
    auto eval = query::SelectionEvaluator::Create(*translated);
    EXPECT_TRUE(eval.ok()) << eval.status().ToString();
    return eval->LocatedNodes(doc);
  }

  std::vector<NodeId> ViaXPath(const Hedge& doc, const std::string& xpath) {
    auto parsed = ParseXPath(xpath, vocab_);
    EXPECT_TRUE(parsed.ok());
    return EvaluateXPath(doc, *parsed);
  }

  Vocabulary vocab_;
  std::vector<hedge::SymbolId> alphabet_;
};

TEST_F(TranslateTest, AgreementOnRandomArticles) {
  const char* paths[] = {
      "/article",
      "/article/section",
      "/article/section/figure",
      "//figure",
      "//section//figure",
      "/article//para",
      "//section/section",
      "//*",
      "/article/*/figure",
      "/*/section",
      "//image",
      "//section/*",
      "/descendant::figure",
      "/article/descendant::caption",
  };
  Rng rng(606);
  for (int trial = 0; trial < 5; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 100 + 150 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    for (const char* path : paths) {
      EXPECT_EQ(ViaXPath(doc, path), ViaPhr(doc, path))
          << path << " on trial " << trial;
    }
  }
}

TEST_F(TranslateTest, NamesOutsideAlphabetMatchNothing) {
  Rng rng(1);
  workload::ArticleOptions options;
  options.target_nodes = 200;
  Hedge doc = workload::RandomArticle(rng, vocab_, options);
  EXPECT_TRUE(ViaPhr(doc, "//nonexistent").empty());
  EXPECT_TRUE(ViaPhr(doc, "/article/nonexistent/figure").empty());
}

TEST_F(TranslateTest, OutsideFragmentIsRejected) {
  auto reject = [&](const std::string& xpath) {
    auto parsed = ParseXPath(xpath, vocab_);
    ASSERT_TRUE(parsed.ok()) << xpath;
    auto translated = TranslateXPath(*parsed, alphabet_);
    EXPECT_FALSE(translated.ok()) << xpath;
    EXPECT_EQ(translated.status().code(), StatusCode::kInvalidArgument);
  };
  reject("//figure[following-sibling::caption]");  // predicate
  reject("//figure/parent::section");              // reverse axis
  reject("//caption/preceding-sibling::figure");   // sibling axis
  reject("//title/text()");                        // text result
  reject("//figure/..");                           // parent abbreviation
}

TEST_F(TranslateTest, TranslatedQueriesArePathExpressions) {
  auto parsed = ParseXPath("//section/figure", vocab_);
  ASSERT_TRUE(parsed.ok());
  auto translated = TranslateXPath(*parsed, alphabet_);
  ASSERT_TRUE(translated.ok());
  EXPECT_TRUE(translated->envelope.IsPathExpression());
  EXPECT_EQ(translated->subhedge, nullptr);
}

}  // namespace
}  // namespace hedgeq::baseline
