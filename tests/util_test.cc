#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace hedgeq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad regex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "invalid-argument: bad regex");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InternerTest, AssignsDenseIds) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.NameOf(1), "b");
}

TEST(InternerTest, FindDoesNotIntern) {
  Interner interner;
  EXPECT_FALSE(interner.Find("x").has_value());
  interner.Intern("x");
  EXPECT_EQ(interner.Find("x").value(), 0u);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(BitsetTest, SetTestReset) {
  Bitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, ToVectorAscending) {
  Bitset b(100);
  b.Set(99);
  b.Set(3);
  b.Set(64);
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{3, 64, 99}));
}

TEST(BitsetTest, OrAndIntersects) {
  Bitset a(10), b(10);
  a.Set(1);
  b.Set(2);
  EXPECT_FALSE(a.Intersects(b));
  Bitset c = a;
  c |= b;
  EXPECT_TRUE(c.Test(1));
  EXPECT_TRUE(c.Test(2));
  EXPECT_TRUE(c.Intersects(b));
  c &= b;
  EXPECT_FALSE(c.Test(1));
  EXPECT_TRUE(c.Test(2));
}

TEST(BitsetTest, EqualityAndHash) {
  Bitset a(70), b(70);
  a.Set(5);
  b.Set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(6);
  EXPECT_FALSE(a == b);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangeInclusive) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(StringsTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b"), "a1b");
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, SplitAndStrip) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StripAsciiWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

}  // namespace
}  // namespace hedgeq
