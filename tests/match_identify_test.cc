#include <gtest/gtest.h>

#include "query/evaluator.h"
#include "schema/match_identify.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::schema {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;
using query::CompiledPhr;
using query::CompilePhr;

class MatchIdentifyTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  // Random hedges over {a0..a2} with $x leaves (all covered below).
  Hedge RandomDoc(Rng& rng, size_t nodes) {
    workload::RandomHedgeOptions options;
    options.target_nodes = nodes;
    options.num_symbols = 3;
    return workload::RandomHedge(rng, vocab_, options);
  }

  std::vector<hedge::SymbolId> CoveredSymbols() {
    return {vocab_.symbols.Intern("a0"), vocab_.symbols.Intern("a1"),
            vocab_.symbols.Intern("a2")};
  }
  std::vector<hedge::VarId> CoveredVars() {
    return {vocab_.variables.Intern("x")};
  }

  Vocabulary vocab_;
};

TEST_F(MatchIdentifyTest, AcceptsEveryCoveredHedge) {
  auto phr = phr::ParsePhr("[a0*; a1; *] (a0|a1|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  std::vector<hedge::SymbolId> symbols = CoveredSymbols();
  std::vector<hedge::VarId> vars = CoveredVars();
  MatchIdentifying up = BuildMatchIdentifying(*compiled, symbols, vars);

  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Hedge doc = RandomDoc(rng, 5 + rng.Below(30));
    EXPECT_TRUE(up.nha().Accepts(doc)) << doc.ToString(vocab_);
  }
  EXPECT_TRUE(up.nha().Accepts(Parse("")));
}

TEST_F(MatchIdentifyTest, UniqueRunIsAValidComputation) {
  auto phr = phr::ParsePhr("[a0*; a1; a0*] (a0|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  std::vector<hedge::SymbolId> symbols = CoveredSymbols();
  std::vector<hedge::VarId> vars = CoveredVars();
  MatchIdentifying up = BuildMatchIdentifying(*compiled, symbols, vars);

  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    Hedge doc = RandomDoc(rng, 5 + rng.Below(25));
    std::vector<uint32_t> expected = up.UniqueRunStates(doc);
    std::vector<Bitset> sets = up.nha().ComputeStateSets(doc);
    for (NodeId n = 0; n < doc.num_nodes(); ++n) {
      EXPECT_TRUE(sets[n].Test(expected[n]))
          << "node " << n << " in " << doc.ToString(vocab_);
    }
  }
}

TEST_F(MatchIdentifyTest, MarksAgreeWithAlgorithmOne) {
  auto phr = phr::ParsePhr("[a0*; a1; (a0|a1|$x)*] (a0|a1|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  std::vector<hedge::SymbolId> symbols = CoveredSymbols();
  std::vector<hedge::VarId> vars = CoveredVars();
  query::PhrEvaluator evaluator(std::move(compiled).value());
  // The evaluator owns its CompiledPhr; UniqueRun needs one that outlives
  // the MatchIdentifying, so compile a second (deterministic) copy.
  auto compiled2 = CompilePhr(*phr);
  ASSERT_TRUE(compiled2.ok());
  MatchIdentifying up2 = BuildMatchIdentifying(*compiled2, symbols, vars);

  Rng rng(33);
  for (int trial = 0; trial < 15; ++trial) {
    Hedge doc = RandomDoc(rng, 5 + rng.Below(40));
    EXPECT_EQ(up2.UniqueRunMarks(doc), evaluator.Locate(doc))
        << doc.ToString(vocab_);
  }
}

TEST_F(MatchIdentifyTest, PathExpressionVariantAgrees) {
  auto phr = phr::ParsePhr("a1 a0*", vocab_);
  ASSERT_TRUE(phr.ok());
  ASSERT_TRUE(phr->IsPathExpression());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->num_classes(), 1u);

  std::vector<hedge::SymbolId> symbols = CoveredSymbols();
  std::vector<hedge::VarId> vars = CoveredVars();
  MatchIdentifying general = BuildMatchIdentifying(*compiled, symbols, vars);
  MatchIdentifying simplified =
      BuildMatchIdentifyingPathExpr(*compiled, symbols, vars);

  Rng rng(34);
  for (int trial = 0; trial < 15; ++trial) {
    Hedge doc = RandomDoc(rng, 5 + rng.Below(30));
    EXPECT_EQ(general.nha().Accepts(doc), simplified.nha().Accepts(doc));
    EXPECT_EQ(general.UniqueRunMarks(doc), simplified.UniqueRunMarks(doc))
        << doc.ToString(vocab_);
    // Both accept everything covered.
    EXPECT_TRUE(simplified.nha().Accepts(doc));
  }
}

TEST_F(MatchIdentifyTest, MarkedStatesAreFinNStates) {
  auto phr = phr::ParsePhr("a0*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  std::vector<hedge::SymbolId> symbols = CoveredSymbols();
  std::vector<hedge::VarId> vars = CoveredVars();
  MatchIdentifying up = BuildMatchIdentifying(*compiled, symbols, vars);
  for (uint32_t state = 0; state < up.nha().num_states(); ++state) {
    if (!up.marked()[state]) continue;
    EXPECT_FALSE(up.IsLeafState(state));
    uint32_t s = up.SOf(state);
    EXPECT_LT(s, up.dead_s());
    EXPECT_TRUE(compiled->mirror().IsAccepting(s));
  }
}

}  // namespace
}  // namespace hedgeq::schema
