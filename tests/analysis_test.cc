#include <gtest/gtest.h>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "hre/compile.h"
#include "strre/ops.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::automata {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

class AnalysisTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Nha Compile(const std::string& expr) {
    auto e = hre::ParseHre(expr, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return hre::CompileHre(*e);
  }
  Vocabulary vocab_;
};

TEST_F(AnalysisTest, PrunePreservesLanguage) {
  Rng rng(55);
  for (const char* expr :
       {"a<b c>*", "(a|b)* c", "a<%z>*^z", "d<p<$x> p<$y>*>*",
        "(b|c) @z a<%z>"}) {
    Nha original = Compile(expr);
    Nha pruned = PruneNha(original);
    EXPECT_LE(pruned.num_states(), original.num_states()) << expr;
    for (int trial = 0; trial < 40; ++trial) {
      workload::RandomHedgeOptions options;
      options.target_nodes = 1 + rng.Below(12);
      options.num_symbols = 4;
      Hedge doc = workload::RandomHedge(rng, vocab_, options);
      EXPECT_EQ(original.Accepts(doc), pruned.Accepts(doc))
          << expr << " on " << doc.ToString(vocab_);
    }
  }
}

TEST_F(AnalysisTest, PruneDropsUnderivableStates) {
  // q1 is underivable (its only rule needs itself); q0 depends on q1.
  Nha nha;
  HState q0 = nha.AddState();
  HState q1 = nha.AddState();
  HState q2 = nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Sym(q1)), q0);
  nha.AddRule(a, strre::CompileRegex(strre::Sym(q1)), q1);
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q2);
  nha.SetFinal(strre::CompileRegex(
      strre::Alt(strre::Sym(q0), strre::Sym(q2))));
  Nha pruned = PruneNha(nha);
  EXPECT_EQ(pruned.num_states(), 1u);  // only q2 survives
  EXPECT_TRUE(pruned.Accepts(Parse("a")));
  EXPECT_FALSE(pruned.Accepts(Parse("a<a>")));
}

TEST_F(AnalysisTest, PruneDropsNonCoReachableStates) {
  // q1 is derivable but never used by the final language.
  Nha nha;
  HState q0 = nha.AddState();
  HState q1 = nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q0);
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q1);
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));
  Nha pruned = PruneNha(nha);
  EXPECT_EQ(pruned.num_states(), 1u);
  EXPECT_TRUE(pruned.Accepts(Parse("a")));
}

TEST_F(AnalysisTest, PruneEmptyLanguage) {
  Nha pruned = PruneNha(Compile("{}"));
  EXPECT_EQ(pruned.num_states(), 0u);
  EXPECT_TRUE(IsEmptyNha(pruned));
}

TEST_F(AnalysisTest, PruneZeroStateAutomaton) {
  // The degenerate automaton: no states, no rules, default final language.
  Nha nha;
  EXPECT_TRUE(IsEmptyNha(nha));
  EXPECT_EQ(ReachableStates(nha).Count(), 0u);
  std::vector<HState> mapping;
  Nha pruned = PruneNha(nha, &mapping);
  EXPECT_EQ(pruned.num_states(), 0u);
  EXPECT_TRUE(mapping.empty());
  EXPECT_TRUE(IsEmptyNha(pruned));
}

TEST_F(AnalysisTest, SingleStateSelfLoopNullableContent) {
  // q0 <- a<q0*>: the content model accepts epsilon, so a<> derives q0 and
  // the self-loop is productive — everything survives the prune.
  Nha nha;
  HState q0 = nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Star(strre::Sym(q0))), q0);
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));
  EXPECT_FALSE(IsEmptyNha(nha));
  EXPECT_EQ(ReachableStates(nha).Count(), 1u);
  Nha pruned = PruneNha(nha);
  EXPECT_EQ(pruned.num_states(), 1u);
  EXPECT_TRUE(pruned.Accepts(Parse("a")));
  EXPECT_TRUE(pruned.Accepts(Parse("a<a a>")));
}

TEST_F(AnalysisTest, SingleStateSelfLoopStrictContent) {
  // q0 <- a<q0>: deriving q0 needs q0 first; nothing bottoms out.
  Nha nha;
  HState q0 = nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Sym(q0)), q0);
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));
  EXPECT_TRUE(IsEmptyNha(nha));
  EXPECT_EQ(ReachableStates(nha).Count(), 0u);
  std::vector<HState> mapping;
  Nha pruned = PruneNha(nha, &mapping);
  EXPECT_EQ(pruned.num_states(), 0u);
  ASSERT_EQ(mapping.size(), 1u);
  EXPECT_EQ(mapping[q0], strre::kNoState);
}

TEST_F(AnalysisTest, AllUselessNhaPrunesToNothing) {
  // Every state is derivable, but the final language is empty: no state
  // appears in any accepting computation, so the prune removes them all.
  Nha nha;
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  for (int i = 0; i < 4; ++i) {
    HState q = nha.AddState();
    nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q);
  }
  nha.SetFinal(strre::CompileRegex(strre::EmptySet()));
  EXPECT_EQ(ReachableStates(nha).Count(), 4u);
  EXPECT_TRUE(IsEmptyNha(nha));
  std::vector<HState> mapping;
  Nha pruned = PruneNha(nha, &mapping);
  EXPECT_EQ(pruned.num_states(), 0u);
  ASSERT_EQ(mapping.size(), 4u);
  for (HState q = 0; q < 4; ++q) EXPECT_EQ(mapping[q], strre::kNoState);
}

TEST_F(AnalysisTest, PruneMappingTracksSurvivors) {
  // Mixed automaton: q0 usable, q1 underivable, q2 derivable-but-useless.
  Nha nha;
  HState q0 = nha.AddState();
  HState q1 = nha.AddState();
  HState q2 = nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q0);
  nha.AddRule(a, strre::CompileRegex(strre::Sym(q1)), q1);
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q2);
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));
  std::vector<HState> mapping;
  Nha pruned = PruneNha(nha, &mapping);
  ASSERT_EQ(mapping.size(), 3u);
  EXPECT_NE(mapping[q0], strre::kNoState);
  EXPECT_EQ(mapping[q1], strre::kNoState);
  EXPECT_EQ(mapping[q2], strre::kNoState);
  EXPECT_EQ(pruned.num_states(), 1u);
  EXPECT_TRUE(pruned.Accepts(Parse("a")));
}

class MinimizeDhaTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Dha Determinized(const std::string& expr) {
    auto e = hre::ParseHre(expr, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    auto det = Determinize(hre::CompileHre(*e));
    EXPECT_TRUE(det.ok()) << det.status().ToString();
    return std::move(det->dha);
  }
  Vocabulary vocab_;
};

TEST_F(MinimizeDhaTest, PreservesLanguageOnRandomDocuments) {
  Rng rng(606060);
  for (const char* expr :
       {"(a|b)* c", "a<b c>*", "d<p<$x> p<$y>*>*", "(a<(b|$x)*>|b)*",
        "a<%z>*^z", "(a|a|a) b"}) {
    Dha dha = Determinized(expr);
    Dha min = MinimizeDha(dha);
    EXPECT_LE(min.num_states(), dha.num_states()) << expr;
    EXPECT_LE(min.num_h_states(), dha.num_h_states()) << expr;
    for (int trial = 0; trial < 60; ++trial) {
      workload::RandomHedgeOptions options;
      options.target_nodes = 1 + rng.Below(12);
      options.num_symbols = 4;
      Hedge doc = workload::RandomHedge(rng, vocab_, options);
      ASSERT_EQ(dha.Accepts(doc), min.Accepts(doc))
          << expr << " on " << doc.ToString(vocab_);
    }
  }
}

TEST_F(MinimizeDhaTest, MergesEquivalentStates) {
  // (a|b) c determinizes to distinct subsets for the a-tree and the b-tree,
  // but no context distinguishes them (the final language treats them
  // identically and no content model mentions either): minimization merges
  // them.
  Dha redundant = Determinized("(a|b) c");
  Dha min = MinimizeDha(redundant);
  EXPECT_LT(min.num_states(), redundant.num_states());

  // Idempotence.
  Dha min2 = MinimizeDha(min);
  EXPECT_EQ(min2.num_states(), min.num_states());
  EXPECT_EQ(min2.num_h_states(), min.num_h_states());
}

TEST_F(MinimizeDhaTest, AgreesOnPaperExamples) {
  Dha dha = Determinized("d<p<$x> p<$y>*>*");
  Dha min = MinimizeDha(dha);
  for (const char* text :
       {"", "d<p<$x>>", "d<p<$x> p<$y>> d<p<$x>>", "d<p<$y>>",
        "d<p<$x> p<$x>>", "p<$x>"}) {
    Hedge h = Parse(text);
    EXPECT_EQ(dha.Accepts(h), min.Accepts(h)) << text;
  }
}

TEST_F(MinimizeDhaTest, WitnessMapsEveryStateOntoTheQuotient) {
  for (const char* expr : {"(a|b) c", "a<b c>*", "(a<(b|$x)*>|b)*"}) {
    Dha dha = Determinized(expr);
    MinimizeWitness witness;
    Dha min = MinimizeDha(dha, &witness);

    ASSERT_EQ(witness.qblock.size(), dha.num_states()) << expr;
    ASSERT_EQ(witness.hblock.size(), dha.num_h_states()) << expr;

    // Every input state lands inside the quotient, and every quotient
    // state is some block's image — the witness is a total surjection.
    std::vector<bool> q_hit(min.num_states(), false);
    for (uint32_t block : witness.qblock) {
      ASSERT_LT(block, min.num_states()) << expr;
      q_hit[block] = true;
    }
    std::vector<bool> h_hit(min.num_h_states(), false);
    for (uint32_t block : witness.hblock) {
      ASSERT_LT(block, min.num_h_states()) << expr;
      h_hit[block] = true;
    }
    for (size_t q = 0; q < q_hit.size(); ++q)
      EXPECT_TRUE(q_hit[q]) << expr << ": unreached quotient state " << q;
    for (size_t h = 0; h < h_hit.size(); ++h)
      EXPECT_TRUE(h_hit[h]) << expr << ": unreached quotient h-state " << h;
  }
}

TEST_F(MinimizeDhaTest, WitnessRecordsTheMergeItPerformed) {
  // (a|b) c strictly shrinks, so some pair of distinct input states must
  // share a block — the witness names the merge instead of hiding it.
  Dha dha = Determinized("(a|b) c");
  MinimizeWitness witness;
  Dha min = MinimizeDha(dha, &witness);
  ASSERT_LT(min.num_states(), dha.num_states());

  bool merged = false;
  for (size_t i = 0; i < witness.qblock.size() && !merged; ++i)
    for (size_t j = i + 1; j < witness.qblock.size(); ++j)
      if (witness.qblock[i] == witness.qblock[j]) {
        merged = true;
        break;
      }
  EXPECT_TRUE(merged) << "strict shrink with no shared block in the witness";
}

struct AmbiguityCase {
  const char* expr;
  bool ambiguous;
};

class AmbiguityTest : public ::testing::TestWithParam<AmbiguityCase> {};

TEST_P(AmbiguityTest, MatchesExpectation) {
  Vocabulary vocab;
  auto e = hre::ParseHre(GetParam().expr, vocab);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  Nha nha = hre::CompileHre(*e);
  EXPECT_EQ(IsAmbiguous(nha), GetParam().ambiguous) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AmbiguityTest,
    ::testing::Values(
        // Unambiguous expressions: every accepted hedge has one labeling.
        AmbiguityCase{"a", false},
        AmbiguityCase{"a b", false},
        AmbiguityCase{"a*", false},
        AmbiguityCase{"(a|b)*", false},
        AmbiguityCase{"a<b*> c", false},
        AmbiguityCase{"$x", false},
        AmbiguityCase{"{}", false},
        AmbiguityCase{"()", false},
        // Duplicated alternatives create two labelings of the same hedge.
        AmbiguityCase{"a|a", true},
        AmbiguityCase{"$x|$x", true},
        AmbiguityCase{"a*|a", true},       // "a" matched by either branch
        AmbiguityCase{"a<b|b>", true},     // ambiguity below the root
        AmbiguityCase{"(a|()) (a|())", true},  // "a" splits two ways
        // Union with disjoint first symbols stays unambiguous.
        AmbiguityCase{"a b|b a", false},
        // Classic regex ambiguity: (a*)* -- the star of a nullable.
        AmbiguityCase{"a**", false},  // collapsed by the factory, still one
        AmbiguityCase{"(a|a b) b*", true}   // "a b" splits two ways
        ));

TEST(AmbiguityDirectTest, SelfIntersectionOfDifferentStates) {
  // Two rules assign different states to the same tree: ambiguous even
  // though the string language is trivial.
  Vocabulary vocab;
  Nha nha;
  HState q0 = nha.AddState();
  HState q1 = nha.AddState();
  hedge::SymbolId a = vocab.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q0);
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q1);
  nha.SetFinal(strre::CompileRegex(
      strre::Alt(strre::Sym(q0), strre::Sym(q1))));
  EXPECT_TRUE(IsAmbiguous(nha));

  // Restricting the final language to one state removes the ambiguity.
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));
  EXPECT_FALSE(IsAmbiguous(nha));
}

}  // namespace
}  // namespace hedgeq::automata
