// Robustness sweeps: every parser must reject (never crash on) arbitrary
// byte soup, near-miss mutations of valid inputs, and adversarial nesting.
#include <gtest/gtest.h>

#include <string>

#include "baseline/xpath.h"
#include "hre/ast.h"
#include "phr/phr.h"
#include "query/selection.h"
#include "schema/schema.h"
#include "util/rng.h"
#include "xml/xml.h"

namespace hedgeq {
namespace {

using hedge::Vocabulary;

std::string RandomBytes(Rng& rng, size_t len) {
  // Printable-heavy soup with the grammar's metacharacters over-represented.
  static const char kChars[] =
      "abcxyz $%@<>()[]{}|*+?^;=/#!&'\"-_.0123456789\n\t\\";
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kChars[rng.Below(sizeof(kChars) - 1)];
  }
  return out;
}

// Every parser, one entry point each; none may crash.
void TryAll(const std::string& input) {
  Vocabulary vocab;
  (void)ParseHedge(input, vocab);
  (void)hre::ParseHre(input, vocab);
  (void)phr::ParsePhr(input, vocab);
  (void)query::ParseSelectionQuery(input, vocab);
  (void)schema::ParseSchema(input, vocab);
  (void)baseline::ParseXPath(input, vocab);
  (void)xml::ParseXml(input, vocab);
  (void)strre::ParseRegex(input, [&](std::string_view name) {
    return vocab.symbols.Intern(name);
  });
}

TEST(FuzzParsersTest, RandomByteSoup) {
  Rng rng(0xF0220);
  for (int trial = 0; trial < 300; ++trial) {
    TryAll(RandomBytes(rng, 1 + rng.Below(120)));
  }
}

TEST(FuzzParsersTest, MutatedValidInputs) {
  const char* seeds[] = {
      "select((b|$x)*; [(); a; b] [b; a; ()])",
      "a<b<$x> %z> c @z d<%z>*^z",
      "<doc a='1'><p>hi &amp; bye</p><![CDATA[x]]></doc>",
      "start = A\nA = a<B* C?>\nB = b<>\nC = $t",
      "//figure[following-sibling::*[1][self::caption]]",
  };
  Rng rng(0xF0221);
  for (const char* seed : seeds) {
    std::string base = seed;
    for (int trial = 0; trial < 120; ++trial) {
      std::string mutated = base;
      size_t edits = 1 + rng.Below(4);
      for (size_t e = 0; e < edits && !mutated.empty(); ++e) {
        size_t pos = rng.Below(mutated.size());
        switch (rng.Below(3)) {
          case 0:
            mutated[pos] = static_cast<char>(32 + rng.Below(95));
            break;
          case 1:
            mutated.erase(pos, 1);
            break;
          default:
            mutated.insert(pos, 1, static_cast<char>(32 + rng.Below(95)));
            break;
        }
      }
      TryAll(mutated);
    }
  }
}

TEST(FuzzParsersTest, DeepNestingDoesNotOverflow) {
  // Parsers recurse on nesting; make sure plausible depths are fine and
  // errors (not crashes) come back for unbalanced versions.
  std::string open, both;
  for (int i = 0; i < 2000; ++i) {
    open += "a<";
    both += "a<";
  }
  std::string closed = both;
  for (int i = 0; i < 2000; ++i) closed += ">";
  Vocabulary vocab;
  EXPECT_FALSE(ParseHedge(open, vocab).ok());
  EXPECT_TRUE(ParseHedge(closed, vocab).ok());

  std::string xml_open, xml_closed;
  for (int i = 0; i < 2000; ++i) xml_open += "<a>";
  xml_closed = xml_open;
  for (int i = 0; i < 2000; ++i) xml_closed += "</a>";
  EXPECT_FALSE(xml::ParseXml(xml_open, vocab).ok());
  EXPECT_TRUE(xml::ParseXml(xml_closed, vocab).ok());
}

TEST(FuzzParsersTest, ErrorsCarryPositions) {
  Vocabulary vocab;
  auto r = ParseHedge("a<b $", vocab);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);

  auto x = xml::ParseXml("<a><b></a>", vocab);
  ASSERT_FALSE(x.ok());
  EXPECT_NE(x.status().message().find("mismatched"), std::string::npos);
}

}  // namespace
}  // namespace hedgeq
