#include <gtest/gtest.h>

#include "automata/streaming.h"
#include "hre/compile.h"
#include "schema/streaming.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "xml/xml.h"

namespace hedgeq {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

// Feeds a hedge's structure as events (the DOM-free path the tests compare
// against the batch run).
void FeedHedge(const Hedge& h, hedge::NodeId n,
               automata::StreamingDhaRun& run) {
  const hedge::Label label = h.label(n);
  if (label.kind == hedge::LabelKind::kVariable) {
    run.Text(label.id);
    return;
  }
  run.StartElement(label.id);
  for (hedge::NodeId c = h.first_child(n); c != hedge::kNullNode;
       c = h.next_sibling(c)) {
    FeedHedge(h, c, run);
  }
  run.EndElement(label.id);
}

TEST(StreamingDhaTest, AgreesWithBatchRunOnRandomDocuments) {
  Vocabulary vocab;
  auto e = hre::ParseHre("(a0<(a0|a1|$x)*>|a1<$x*>)*", vocab);
  ASSERT_TRUE(e.ok());
  auto det = automata::Determinize(hre::CompileHre(*e));
  ASSERT_TRUE(det.ok());

  Rng rng(1234);
  int accepted = 0;
  for (int trial = 0; trial < 80; ++trial) {
    workload::RandomHedgeOptions options;
    options.target_nodes = 1 + rng.Below(30);
    options.num_symbols = 2;
    Hedge doc = workload::RandomHedge(rng, vocab, options);
    automata::StreamingDhaRun run(det->dha);
    for (hedge::NodeId r : doc.roots()) FeedHedge(doc, r, run);
    bool streaming = run.Accepted();
    bool batch = det->dha.Accepts(doc);
    ASSERT_EQ(streaming, batch) << doc.ToString(vocab);
    accepted += batch ? 1 : 0;
  }
  EXPECT_GT(accepted, 0);
}

TEST(StreamingDhaTest, MaxDepthTracksOpenElements) {
  Vocabulary vocab;
  auto e = hre::ParseHre("a<%z>*^z", vocab);
  ASSERT_TRUE(e.ok());
  auto det = automata::Determinize(hre::CompileHre(*e));
  ASSERT_TRUE(det.ok());

  Hedge deep = workload::UniformTree(vocab, 6, 1);  // a chain of depth 7
  automata::StreamingDhaRun run(det->dha);
  for (hedge::NodeId r : deep.roots()) FeedHedge(deep, r, run);
  EXPECT_TRUE(run.Accepted());
  EXPECT_EQ(run.max_depth(), 7u);
  EXPECT_FALSE(run.InProgress());
}

TEST(StreamingValidatorTest, AgreesWithDomValidationOnXml) {
  Vocabulary vocab;
  auto schema = schema::ParseSchema(kArticleGrammar, vocab);
  ASSERT_TRUE(schema.ok());
  auto validator = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(validator.ok()) << validator.status().ToString();

  Rng rng(777);
  for (int trial = 0; trial < 6; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 60 + 50 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab, options);
    xml::XmlDocument wrapped = xml::WrapHedge(doc, vocab);
    std::string text = xml::SerializeXml(wrapped, vocab);

    auto verdict = validator->Validate(text, vocab);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_TRUE(*verdict) << text.substr(0, 120);
  }

  // Violations are caught too.
  auto bad = validator->Validate(
      "<article><section><title>t</title></section></article>", vocab);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(*bad);  // missing the article title

  // Malformed XML is a parse error, not a verdict.
  auto malformed = validator->Validate("<article>", vocab);
  EXPECT_FALSE(malformed.ok());
}

TEST(StreamingValidatorTest, HandlesLargeDocumentsShallowStack) {
  Vocabulary vocab;
  auto schema = schema::ParseSchema(kArticleGrammar, vocab);
  ASSERT_TRUE(schema.ok());
  auto validator = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(validator.ok());

  Rng rng(55);
  workload::ArticleOptions options;
  options.target_nodes = 30000;
  Hedge doc = workload::RandomArticle(rng, vocab, options);
  xml::XmlDocument wrapped = xml::WrapHedge(doc, vocab);
  std::string text = xml::SerializeXml(wrapped, vocab);
  auto verdict = validator->Validate(text, vocab);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
}

TEST(StreamingHandlerTest, HandlerErrorsAbortTheParse) {
  // A handler can abort mid-stream; the parser propagates the status.
  class Bomb : public xml::XmlHandler {
   public:
    Status StartElement(hedge::SymbolId) override {
      if (++count_ == 3) return Status::FailedPrecondition("boom");
      return Status::Ok();
    }
    Status EndElement(hedge::SymbolId) override { return Status::Ok(); }
    Status Text(hedge::VarId, std::string_view) override {
      return Status::Ok();
    }

   private:
    int count_ = 0;
  };
  Vocabulary vocab;
  Bomb bomb;
  Status s = xml::ParseXmlStream("<a><b/><c/><d/></a>", vocab, bomb);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace hedgeq
