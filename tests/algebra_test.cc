#include <gtest/gtest.h>

#include "schema/algebra.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::schema {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

class AlgebraTest : public ::testing::Test {
 protected:
  Schema ParseS(const std::string& text) {
    auto r = ParseSchema(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(AlgebraTest, IntersectUnionBasics) {
  // A: docs of a's (at least one); B: docs of length exactly 2 over {a,b}.
  Schema a_docs = ParseS("start = A+\nA = a<>");
  Schema two = ParseS("start = X X\nX = a<>\nX = b<>");
  Schema inter = IntersectSchemas(a_docs, two);
  EXPECT_TRUE(inter.Validates(Parse("a a")));
  EXPECT_FALSE(inter.Validates(Parse("a")));
  EXPECT_FALSE(inter.Validates(Parse("a b")));
  EXPECT_FALSE(inter.Validates(Parse("b b")));

  Schema uni = UnionSchemas(a_docs, two);
  EXPECT_TRUE(uni.Validates(Parse("a")));
  EXPECT_TRUE(uni.Validates(Parse("a b")));
  EXPECT_TRUE(uni.Validates(Parse("b a")));
  EXPECT_FALSE(uni.Validates(Parse("b")));
  EXPECT_FALSE(uni.Validates(Parse("b b b")));
}

TEST_F(AlgebraTest, ComplementFlipsMembershipOverJointVocabulary) {
  Schema a_docs = ParseS("start = A+\nA = a<>");
  Schema universe = ParseS("start = X*\nX = a<>\nX = b<X*>");
  auto comp = ComplementSchema(a_docs, universe);
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  EXPECT_FALSE(comp->Validates(Parse("a")));
  EXPECT_FALSE(comp->Validates(Parse("a a")));
  EXPECT_TRUE(comp->Validates(Parse("")));
  EXPECT_TRUE(comp->Validates(Parse("b")));
  EXPECT_TRUE(comp->Validates(Parse("a b")));
  EXPECT_TRUE(comp->Validates(Parse("a<a>")));  // a with content is not A+
}

TEST_F(AlgebraTest, DifferenceAndInclusion) {
  Schema any_ab = ParseS("start = X*\nX = a<>\nX = b<>");
  Schema only_a = ParseS("start = A*\nA = a<>");
  auto diff = DifferenceSchemas(any_ab, only_a);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->Validates(Parse("")));
  EXPECT_FALSE(diff->Validates(Parse("a a")));
  EXPECT_TRUE(diff->Validates(Parse("a b")));
  EXPECT_TRUE(diff->Validates(Parse("b")));

  auto inc = SchemaIncludes(only_a, any_ab);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(*inc);
  auto not_inc = SchemaIncludes(any_ab, only_a);
  ASSERT_TRUE(not_inc.ok());
  EXPECT_FALSE(*not_inc);
}

TEST_F(AlgebraTest, EquivalenceOfSyntacticVariants) {
  // A+ written two ways.
  Schema v1 = ParseS("start = A A*\nA = a<>");
  Schema v2 = ParseS("start = A* A\nA = a<>");
  Schema v3 = ParseS("start = A*\nA = a<>");
  auto eq12 = SchemasEquivalent(v1, v2);
  ASSERT_TRUE(eq12.ok());
  EXPECT_TRUE(*eq12);
  auto eq13 = SchemasEquivalent(v1, v3);
  ASSERT_TRUE(eq13.ok());
  EXPECT_FALSE(*eq13);  // v3 also accepts the empty document
}

TEST_F(AlgebraTest, ArticleSchemaRefinement) {
  // A stricter article (figures always captioned) is included in the
  // permissive one.
  Schema permissive = ParseS(
      "start = Article\n"
      "Article = article<Title Section*>\n"
      "Title = title<Text>\n"
      "Text = $#text\n"
      "Section = section<Title (Para|Figure|Caption)*>\n"
      "Para = para<Text>\n"
      "Figure = figure<>\n"
      "Caption = caption<Text>\n");
  Schema strict = ParseS(
      "start = Article\n"
      "Article = article<Title Section*>\n"
      "Title = title<Text>\n"
      "Text = $#text\n"
      "Section = section<Title (Para|Figure Caption)*>\n"
      "Para = para<Text>\n"
      "Figure = figure<>\n"
      "Caption = caption<Text>\n");
  auto inc = SchemaIncludes(strict, permissive);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(*inc);
  auto rev = SchemaIncludes(permissive, strict);
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(*rev);

  // Witness of the difference: a figure without its caption.
  auto diff = DifferenceSchemas(permissive, strict);
  ASSERT_TRUE(diff.ok());
  auto witness = automata::WitnessHedge(diff->nha());
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(permissive.Validates(*witness));
  EXPECT_FALSE(strict.Validates(*witness));
}

TEST_F(AlgebraTest, RandomizedBooleanLaws) {
  Schema s1 = ParseS("start = X*\nX = a<X*>\nX = b<>");
  Schema s2 = ParseS("start = Y Y*\nY = a<>\nY = b<Y?>");
  Schema inter = IntersectSchemas(s1, s2);
  Schema uni = UnionSchemas(s1, s2);
  auto comp1 = ComplementSchema(s1, s2);
  ASSERT_TRUE(comp1.ok());

  Rng rng(88);
  for (int trial = 0; trial < 80; ++trial) {
    workload::RandomHedgeOptions options;
    options.target_nodes = 1 + rng.Below(8);
    options.num_symbols = 2;  // a0/a1... different names than a/b
    Hedge doc = workload::RandomHedge(rng, vocab_, options);
    bool in1 = s1.Validates(doc);
    bool in2 = s2.Validates(doc);
    EXPECT_EQ(inter.Validates(doc), in1 && in2) << doc.ToString(vocab_);
    EXPECT_EQ(uni.Validates(doc), in1 || in2) << doc.ToString(vocab_);
  }
  // Complement laws on the joint vocabulary {a, b}.
  for (const char* text : {"", "a", "b", "a b", "a<a b>", "b<b<a>>",
                           "a<b> a", "b b b"}) {
    Hedge doc = Parse(text);
    EXPECT_NE(s1.Validates(doc), comp1->Validates(doc)) << text;
  }
}

}  // namespace
}  // namespace hedgeq::schema
