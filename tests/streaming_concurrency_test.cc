// Thread-safety contract of the streaming validator, exercised for the
// tsan preset (CMakePresets.json): the eager engine is an immutable Dha
// table, so ONE validator may serve many threads concurrently; the lazy
// fallback memoizes subsets on the fly, so each thread gets its OWN
// validator instance (the documented clone-per-thread pattern).
//
// Run under `cmake --preset tsan` to have ThreadSanitizer check the claim;
// under the plain presets this still verifies concurrent results agree
// with the single-threaded verdicts.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "schema/schema.h"
#include "schema/streaming.h"

namespace hedgeq::schema {
namespace {

constexpr char kGrammar[] =
    "start = Doc\n"
    "Doc = doc<Sec*>\n"
    "Sec = sec<(Para|Sec)*>\n"
    "Para = para<>\n";

struct Case {
  const char* xml;
  bool valid;
};

constexpr Case kCases[] = {
    {"<doc/>", true},
    {"<doc><sec/></doc>", true},
    {"<doc><sec><para/><sec><para/></sec></sec></doc>", true},
    {"<doc><para/></doc>", false},      // para not allowed directly in doc
    {"<sec/>", false},                  // wrong root
    {"<doc><sec><doc/></sec></doc>", false},
};

TEST(StreamingConcurrencyTest, OneEagerValidatorManyThreads) {
  hedge::Vocabulary vocab;
  auto schema = ParseSchema(kGrammar, vocab);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto validator = StreamingValidator::Create(*schema);
  ASSERT_TRUE(validator.ok()) << validator.status().ToString();
  ASSERT_FALSE(validator->fallback_used())
      << "tiny schema must determinize eagerly";

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&validator, &mismatches, vocab]() mutable {
      // Per-thread vocabulary copy: interning is not synchronized, but the
      // symbol ids the schema compiled against are already present.
      for (int round = 0; round < 50; ++round) {
        for (const Case& c : kCases) {
          auto verdict = validator->Validate(c.xml, vocab);
          if (!verdict.ok() || *verdict != c.valid) ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(StreamingConcurrencyTest, LazyFallbackUsesOneValidatorPerThread) {
  hedge::Vocabulary vocab;
  auto schema = ParseSchema(kGrammar, vocab);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  ExecBudget tiny;
  tiny.max_states = 1;  // force the lazy fallback
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&schema, &tiny, &mismatches, vocab]() mutable {
      // LazyDha is not thread-safe: clone one validator per thread.
      auto validator = StreamingValidator::Create(*schema, tiny);
      if (!validator.ok()) {
        ++mismatches;
        return;
      }
      if (!validator->fallback_used()) return;  // machine determinized anyway
      for (int round = 0; round < 25; ++round) {
        for (const Case& c : kCases) {
          auto verdict = validator->Validate(c.xml, vocab);
          if (!verdict.ok() || *verdict != c.valid) ++mismatches;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// The obs registry is the one piece of process-global mutable state the
// pipeline touches from every thread, so hammer it from many threads with
// metrics AND trace collection on while validations run. tsan checks the
// lock-free counter/gauge paths, the mutex-protected interning slow path,
// and the trace buffer appends; the assertions check nothing was lost.
TEST(StreamingConcurrencyTest, ObsRegistryIsThreadSafe) {
  obs::Registry().Reset();
  obs::SetEnabled(true);
  obs::SetTraceEnabled(true);
  obs::RegisterCatalogue();

  hedge::Vocabulary vocab;
  auto schema = ParseSchema(kGrammar, vocab);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto validator = StreamingValidator::Create(*schema);
  ASSERT_TRUE(validator.ok()) << validator.status().ToString();

  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&validator, &mismatches, vocab, t]() mutable {
      obs::Counter* shared =
          obs::Registry().GetCounter("test.concurrency.shared");
      // Per-thread interning of a distinct name races the registry's
      // slow-path mutex against the other threads' fast paths.
      obs::Counter* own = obs::Registry().GetCounter(
          "test.concurrency.thread" + std::to_string(t));
      for (int round = 0; round < kRounds; ++round) {
        obs::Span span("test.concurrency.round");
        for (const Case& c : kCases) {
          auto verdict = validator->Validate(c.xml, vocab);
          if (!verdict.ok() || *verdict != c.valid) ++mismatches;
        }
        shared->Increment();
        own->Increment();
        span.AddArg("round", static_cast<uint64_t>(round));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(obs::Registry().GetCounter("test.concurrency.shared")->value(),
            static_cast<uint64_t>(kThreads) * kRounds);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(obs::Registry()
                  .GetCounter("test.concurrency.thread" + std::to_string(t))
                  ->value(),
              static_cast<uint64_t>(kRounds));
  }
  // The validations inside each round emit their own pipeline spans
  // (schema.validate, xml.parse, ...), so count only the per-round span.
  size_t round_events = 0;
  for (const obs::TraceEvent& e : obs::Registry().SnapshotTrace()) {
    if (e.name == "test.concurrency.round") ++round_events;
  }
  EXPECT_EQ(round_events, static_cast<size_t>(kThreads) * kRounds);

  obs::SetEnabled(false);
  obs::SetTraceEnabled(false);
  obs::Registry().Reset();
}

}  // namespace
}  // namespace hedgeq::schema
