#include <gtest/gtest.h>

#include "hedge/hedge.h"

namespace hedgeq::hedge {
namespace {

class HedgeTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(HedgeTest, ParseEmpty) {
  Hedge h = Parse("");
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.roots().size(), 0u);
}

TEST_F(HedgeTest, ParseAbbreviatedLeaf) {
  // "a" abbreviates a<> (Definition 1 discussion).
  Hedge h = Parse("a");
  ASSERT_EQ(h.roots().size(), 1u);
  EXPECT_EQ(h.label(h.roots()[0]).kind, LabelKind::kSymbol);
  EXPECT_EQ(h.first_child(h.roots()[0]), kNullNode);
}

TEST_F(HedgeTest, ParsePaperExample) {
  // a<eps> b<b<eps> x> from Section 3, written a b<b $x>.
  Hedge h = Parse("a b<b $x>");
  ASSERT_EQ(h.roots().size(), 2u);
  NodeId b = h.roots()[1];
  std::vector<NodeId> kids = h.ChildrenOf(b);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(h.label(kids[0]).kind, LabelKind::kSymbol);
  EXPECT_EQ(h.label(kids[1]).kind, LabelKind::kVariable);
  EXPECT_EQ(vocab_.variables.NameOf(h.label(kids[1]).id), "x");
}

TEST_F(HedgeTest, RoundTrip) {
  for (const char* text :
       {"a", "a b c", "a<b<c> $x> d", "d<p<$x> p<$y>> d<p<$x>>",
        "a<%z> b<@>", "b a<a<b $x> b>"}) {
    Hedge h = Parse(text);
    EXPECT_EQ(h.ToString(vocab_), text);
  }
}

TEST_F(HedgeTest, ParseErrors) {
  Vocabulary v;
  EXPECT_FALSE(ParseHedge("a<", v).ok());
  EXPECT_FALSE(ParseHedge("a>", v).ok());
  EXPECT_FALSE(ParseHedge("$", v).ok());
  EXPECT_FALSE(ParseHedge("<a>", v).ok());
}

TEST_F(HedgeTest, CeilMatchesPaper) {
  // Ceil of a<x> is a; ceil of a b<b x> is ab (Definition 2).
  Hedge h = Parse("a<$x>");
  std::vector<Label> ceil = h.Ceil();
  ASSERT_EQ(ceil.size(), 1u);
  EXPECT_EQ(ceil[0].kind, LabelKind::kSymbol);

  Hedge h2 = Parse("a b<b $x>");
  EXPECT_EQ(h2.Ceil().size(), 2u);
}

TEST_F(HedgeTest, StructuralNavigation) {
  Hedge h = Parse("a<b c d>");
  NodeId a = h.roots()[0];
  std::vector<NodeId> kids = h.ChildrenOf(a);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(h.parent(kids[1]), a);
  EXPECT_EQ(h.prev_sibling(kids[1]), kids[0]);
  EXPECT_EQ(h.next_sibling(kids[1]), kids[2]);
  EXPECT_EQ(h.prev_sibling(kids[0]), kNullNode);
  EXPECT_EQ(h.next_sibling(kids[2]), kNullNode);
}

TEST_F(HedgeTest, PreOrderVisitsAllNodesParentFirst) {
  Hedge h = Parse("a<b<c>> d");
  std::vector<NodeId> order = h.PreOrder();
  EXPECT_EQ(order.size(), h.num_nodes());
  // Parents precede children.
  for (NodeId n : order) {
    if (h.parent(n) != kNullNode) {
      auto parent_pos = std::find(order.begin(), order.end(), h.parent(n));
      auto node_pos = std::find(order.begin(), order.end(), n);
      EXPECT_LT(parent_pos - order.begin(), node_pos - order.begin());
    }
  }
}

TEST_F(HedgeTest, DeweyRoundTrip) {
  Hedge h = Parse("a<b c<d e>> f");
  for (NodeId n : h.PreOrder()) {
    EXPECT_EQ(h.AtDewey(h.DeweyOf(n)), n);
  }
  EXPECT_EQ(h.AtDewey({9}), kNullNode);
  EXPECT_EQ(h.AtDewey({0, 5}), kNullNode);
}

TEST_F(HedgeTest, DepthAndSubtreeSize) {
  Hedge h = Parse("a<b<c> d>");
  NodeId a = h.roots()[0];
  EXPECT_EQ(h.DepthOf(a), 0u);
  NodeId b = h.ChildrenOf(a)[0];
  EXPECT_EQ(h.DepthOf(b), 1u);
  EXPECT_EQ(h.DepthOf(h.ChildrenOf(b)[0]), 2u);
  EXPECT_EQ(h.SubtreeSize(a), 4u);
  EXPECT_EQ(h.SubtreeSize(b), 2u);
}

TEST_F(HedgeTest, SubhedgeMatchesPaperExample) {
  // Section 6: the subhedge of the first second-level node of b a<a<b x> b>
  // is "b x".
  Hedge h = Parse("b a<a<b $x> b>");
  NodeId second_top = h.roots()[1];
  NodeId target = h.ChildrenOf(second_top)[0];
  Hedge sub = h.SubhedgeOf(target);
  Hedge expected = Parse("b $x");
  EXPECT_TRUE(sub.EqualTo(expected));
}

TEST_F(HedgeTest, EnvelopeMatchesPaperExample) {
  // ... and its envelope is b a<a<eta> b>.
  Hedge h = Parse("b a<a<b $x> b>");
  NodeId second_top = h.roots()[1];
  NodeId target = h.ChildrenOf(second_top)[0];
  NodeId eta_parent = kNullNode;
  Hedge env = h.EnvelopeOf(target, &eta_parent);
  Hedge expected = Parse("b a<a<@> b>");
  EXPECT_TRUE(env.EqualTo(expected));
  EXPECT_EQ(env.label(eta_parent).id, h.label(target).id);
}

TEST_F(HedgeTest, EqualToIsStructural) {
  Hedge h1 = Parse("a<b> c");
  Hedge h2 = Parse("a<b> c");
  Hedge h3 = Parse("a<c> c");
  Hedge h4 = Parse("a<b>");
  EXPECT_TRUE(h1.EqualTo(h2));
  EXPECT_FALSE(h1.EqualTo(h3));
  EXPECT_FALSE(h1.EqualTo(h4));
}

TEST_F(HedgeTest, AppendCopyDeepCopies) {
  Hedge src = Parse("a<b<c> d>");
  Hedge dst;
  dst.AppendCopy(kNullNode, src, src.roots()[0]);
  EXPECT_TRUE(dst.EqualTo(src));
}

TEST_F(HedgeTest, ChildrenHaveLargerIdsThanParents) {
  // The bottom-up executors rely on this arena invariant.
  Hedge h = Parse("a<b<c d> e<f>> g<h>");
  for (NodeId n : h.PreOrder()) {
    if (h.parent(n) != kNullNode) {
      EXPECT_GT(n, h.parent(n));
    }
  }
}

}  // namespace
}  // namespace hedgeq::hedge
