// Boolean-operation laws for hedge automata over random documents, plus
// determinization/complement interplay — the closure properties Section 8
// leans on ("regular sets are closed under ... boolean operations").
#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "hre/compile.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::automata {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

class HedgeBooleanTest : public ::testing::Test {
 protected:
  Nha Compile(const std::string& expr) {
    auto e = hre::ParseHre(expr, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return hre::CompileHre(*e);
  }

  // Random hedges over the fixed vocabulary {a, b} x {x}.
  Hedge RandomDoc(Rng& rng) {
    hedge::SymbolId a = vocab_.symbols.Intern("a");
    hedge::SymbolId b = vocab_.symbols.Intern("b");
    hedge::VarId x = vocab_.variables.Intern("x");
    Hedge h;
    std::vector<hedge::NodeId> open = {hedge::kNullNode};
    size_t size = 1 + rng.Below(10);
    for (size_t i = 0; i < size; ++i) {
      hedge::NodeId parent = open[rng.Below(open.size())];
      switch (rng.Below(3)) {
        case 0:
          open.push_back(h.Append(parent, hedge::Label::Symbol(a)));
          break;
        case 1:
          open.push_back(h.Append(parent, hedge::Label::Symbol(b)));
          break;
        default:
          h.Append(parent, hedge::Label::Variable(x));
          break;
      }
    }
    return h;
  }

  Vocabulary vocab_;
};

TEST_F(HedgeBooleanTest, IntersectionAndUnionLaws) {
  const char* exprs[] = {"(a|b|$x)*", "a (a|b|$x)*", "(a<(a|b|$x)*>|b|$x)*",
                         "($x|a)*", "(b<$x*>|a)*"};
  Rng rng(31337);
  for (const char* ea : exprs) {
    for (const char* eb : exprs) {
      Nha a = Compile(ea);
      Nha b = Compile(eb);
      Nha inter = IntersectNha(a, b);
      Nha uni = UnionNha(a, b);
      for (int trial = 0; trial < 15; ++trial) {
        Hedge doc = RandomDoc(rng);
        bool in_a = a.Accepts(doc);
        bool in_b = b.Accepts(doc);
        ASSERT_EQ(inter.Accepts(doc), in_a && in_b)
            << ea << " ∩ " << eb << " on " << doc.ToString(vocab_);
        ASSERT_EQ(uni.Accepts(doc), in_a || in_b)
            << ea << " ∪ " << eb << " on " << doc.ToString(vocab_);
      }
    }
  }
}

TEST_F(HedgeBooleanTest, ComplementViaDeterminization) {
  Rng rng(404);
  for (const char* expr : {"a (a|b|$x)*", "(a<(b|$x)*>|b)*", "($x $x)*"}) {
    Nha nha = Compile(expr);
    auto det = Determinize(nha);
    ASSERT_TRUE(det.ok());
    Dha comp = ComplementDha(det->dha);
    for (int trial = 0; trial < 30; ++trial) {
      Hedge doc = RandomDoc(rng);
      ASSERT_NE(nha.Accepts(doc), comp.Accepts(doc))
          << expr << " on " << doc.ToString(vocab_);
    }
  }
}

TEST_F(HedgeBooleanTest, DoubleComplementRestoresLanguage) {
  Rng rng(808);
  Nha nha = Compile("(a<(b|$x)*>|b)*");
  auto det = Determinize(nha);
  ASSERT_TRUE(det.ok());
  Dha comp2 = ComplementDha(ComplementDha(det->dha));
  for (int trial = 0; trial < 30; ++trial) {
    Hedge doc = RandomDoc(rng);
    ASSERT_EQ(nha.Accepts(doc), comp2.Accepts(doc)) << doc.ToString(vocab_);
  }
}

TEST_F(HedgeBooleanTest, EmptinessOfContradictoryIntersection) {
  // "root label a" ∩ "root label b" at the top level = empty.
  Nha only_a = Compile("a<(a|b|$x)*>");
  Nha only_b = Compile("b<(a|b|$x)*>");
  EXPECT_TRUE(IsEmptyNha(IntersectNha(only_a, only_b)));
  EXPECT_FALSE(IsEmptyNha(UnionNha(only_a, only_b)));
}

TEST_F(HedgeBooleanTest, IntersectionAssociatesOnMembership) {
  Rng rng(111);
  Nha a = Compile("(a|b|$x)*");
  Nha b = Compile("(a<(a|b|$x)*>|$x)*");
  Nha c = Compile("($x|a|b)*");
  Nha left = IntersectNha(IntersectNha(a, b), c);
  Nha right = IntersectNha(a, IntersectNha(b, c));
  for (int trial = 0; trial < 20; ++trial) {
    Hedge doc = RandomDoc(rng);
    ASSERT_EQ(left.Accepts(doc), right.Accepts(doc)) << doc.ToString(vocab_);
  }
}

}  // namespace
}  // namespace hedgeq::automata
