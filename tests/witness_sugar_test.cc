#include <gtest/gtest.h>

#include <functional>

#include "automata/nha.h"
#include "hre/compile.h"
#include "hre/sugar.h"
#include "strre/ops.h"
#include "schema/schema.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq {
namespace {

using automata::Nha;
using automata::WitnessHedge;
using hedge::Hedge;
using hedge::Vocabulary;

class WitnessTest : public ::testing::Test {
 protected:
  Nha Compile(const std::string& expr) {
    auto e = hre::ParseHre(expr, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return hre::CompileHre(*e);
  }
  Vocabulary vocab_;
};

TEST_F(WitnessTest, WitnessIsAccepted) {
  for (const char* expr :
       {"()", "a", "a<b c>", "(a|b)* c", "a<%z>*^z", "d<p<$x> p<$y>*>+",
        "(b|c) @z a<%z>"}) {
    Nha nha = Compile(expr);
    auto witness = WitnessHedge(nha);
    ASSERT_TRUE(witness.has_value()) << expr;
    EXPECT_TRUE(nha.Accepts(*witness))
        << expr << " does not accept its own witness "
        << witness->ToString(vocab_);
  }
}

TEST_F(WitnessTest, EmptyLanguageHasNoWitness) {
  EXPECT_FALSE(WitnessHedge(Compile("{}")).has_value());
  // b needs an underivable content.
  Nha dead;
  automata::HState q0 = dead.AddState();
  automata::HState q1 = dead.AddState();
  dead.AddRule(vocab_.symbols.Intern("b"),
               strre::CompileRegex(strre::Sym(q1)), q0);
  dead.SetFinal(strre::CompileRegex(strre::Sym(q0)));
  EXPECT_FALSE(WitnessHedge(dead).has_value());
}

TEST_F(WitnessTest, EpsilonWitnessIsEmptyHedge) {
  auto witness = WitnessHedge(Compile("()"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST_F(WitnessTest, SchemaWitnessValidates) {
  auto schema = schema::ParseSchema(
      "start = Article\n"
      "Article = article<Title Section*>\n"
      "Title = title<Text>\n"
      "Text = $#text\n"
      "Section = section<Title Para+>\n"
      "Para = para<Text>\n",
      vocab_);
  ASSERT_TRUE(schema.ok());
  auto witness = WitnessHedge(schema->nha());
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(schema->Validates(*witness));
}

class SugarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = vocab_.symbols.Intern("a");
    b_ = vocab_.symbols.Intern("b");
    x_ = vocab_.variables.Intern("x");
    z_ = vocab_.substs.Intern("z");
    symbols_ = {a_, b_};
    vars_ = {x_};
  }
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
  hedge::SymbolId a_, b_;
  hedge::VarId x_;
  hedge::SubstId z_;
  std::vector<hedge::SymbolId> symbols_;
  std::vector<hedge::VarId> vars_;
};

TEST_F(SugarTest, AnyHedgeAcceptsEverythingOverVocabulary) {
  Nha any = hre::CompileHre(hre::AnyHedgeExpr(symbols_, vars_, z_));
  Rng rng(9);
  EXPECT_TRUE(any.Accepts(Parse("")));
  for (int trial = 0; trial < 60; ++trial) {
    workload::RandomHedgeOptions options;
    options.target_nodes = 1 + rng.Below(20);
    options.num_symbols = 2;  // generator uses a0, a1
    Hedge doc = workload::RandomHedge(rng, vocab_, options);
    // Rebuild with our {a, b} alphabet by relabeling.
    Hedge relabeled;
    std::function<void(hedge::NodeId, hedge::NodeId)> copy =
        [&](hedge::NodeId src, hedge::NodeId parent) {
          hedge::Label label = doc.label(src);
          if (label.kind == hedge::LabelKind::kSymbol) {
            label.id = label.id % 2 == 0 ? a_ : b_;
          } else {
            label = hedge::Label::Variable(x_);
          }
          hedge::NodeId c = relabeled.Append(parent, label);
          for (hedge::NodeId kid = doc.first_child(src);
               kid != hedge::kNullNode; kid = doc.next_sibling(kid)) {
            copy(kid, c);
          }
        };
    for (hedge::NodeId r : doc.roots()) copy(r, hedge::kNullNode);
    EXPECT_TRUE(any.Accepts(relabeled)) << relabeled.ToString(vocab_);
  }
  // ... but not hedges mentioning foreign names.
  EXPECT_FALSE(any.Accepts(Parse("outsider")));
  EXPECT_FALSE(any.Accepts(Parse("a<$other>")));
}

TEST_F(SugarTest, AnyTreeIsExactlyOneTreeWithTheLabel) {
  Nha tree_a = hre::CompileHre(hre::AnyTreeExpr(a_, symbols_, vars_, z_));
  EXPECT_TRUE(tree_a.Accepts(Parse("a")));
  EXPECT_TRUE(tree_a.Accepts(Parse("a<b $x>")));
  EXPECT_TRUE(tree_a.Accepts(Parse("a<a<b> b<a>>")));
  EXPECT_FALSE(tree_a.Accepts(Parse("")));
  EXPECT_FALSE(tree_a.Accepts(Parse("b")));
  EXPECT_FALSE(tree_a.Accepts(Parse("a a")));
  EXPECT_FALSE(tree_a.Accepts(Parse("$x")));
}

TEST_F(SugarTest, AnyTreeOfUnionsLabels) {
  Nha tree = hre::CompileHre(
      hre::AnyTreeOfExpr(symbols_, symbols_, vars_, z_));
  EXPECT_TRUE(tree.Accepts(Parse("a<b>")));
  EXPECT_TRUE(tree.Accepts(Parse("b")));
  EXPECT_FALSE(tree.Accepts(Parse("a b")));
  EXPECT_FALSE(tree.Accepts(Parse("")));
}

}  // namespace
}  // namespace hedgeq
