// Query containment and equivalence under a schema, with counterexample
// synthesis — the Section 9 "optimization techniques" question made
// decidable by match-identifying products.
#include <gtest/gtest.h>

#include <memory>

#include "query/selection.h"
#include "schema/transform.h"

namespace hedgeq::schema {
namespace {

using hedge::Vocabulary;

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

class ContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = ParseSchema(kArticleGrammar, vocab_);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    schema_ = std::make_unique<Schema>(std::move(s).value());
  }
  query::SelectionQuery ParseQ(const std::string& text) {
    auto r = query::ParseSelectionQuery(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(ContainmentTest, StrictContainment) {
  // Figures directly under a top-level section ⊆ figures anywhere.
  query::SelectionQuery narrow = ParseQ("select(*; figure section article)");
  query::SelectionQuery wide = ParseQ("select(*; figure (section|article)*)");

  auto forward = QueryContainment(*schema_, narrow, wide);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  EXPECT_TRUE(forward->contained);
  EXPECT_FALSE(forward->counterexample.has_value());

  auto backward = QueryContainment(*schema_, wide, narrow);
  ASSERT_TRUE(backward.ok());
  EXPECT_FALSE(backward->contained);
  // The counterexample shows a node wide locates but narrow does not: a
  // figure deeper than one section.
  ASSERT_TRUE(backward->counterexample.has_value());
  const hedge::Hedge& doc = backward->counterexample->document;
  hedge::NodeId n = backward->counterexample->located;
  EXPECT_TRUE(schema_->Validates(doc));
  auto wide_eval = query::SelectionEvaluator::Create(wide);
  auto narrow_eval = query::SelectionEvaluator::Create(narrow);
  EXPECT_TRUE(wide_eval->Locate(doc)[n]) << doc.ToString(vocab_);
  EXPECT_FALSE(narrow_eval->Locate(doc)[n]) << doc.ToString(vocab_);
}

TEST_F(ContainmentTest, SchemaMakesSyntacticallyDifferentQueriesEquivalent) {
  // Under this schema every figure's content is exactly one image, so the
  // subhedge condition "image" is vacuous — the queries differ as syntax
  // but locate identical nodes on every valid document.
  query::SelectionQuery plain = ParseQ("select(*; figure (section|article)*)");
  query::SelectionQuery with_subhedge =
      ParseQ("select(image; figure (section|article)*)");
  auto equivalent =
      QueriesEquivalentUnderSchema(*schema_, plain, with_subhedge);
  ASSERT_TRUE(equivalent.ok()) << equivalent.status().ToString();
  EXPECT_TRUE(*equivalent);

  // Without schema support the distinction matters: sections with only a
  // title vs all sections.
  query::SelectionQuery sections =
      ParseQ("select(*; section (section|article)*)");
  query::SelectionQuery title_only =
      ParseQ("select(title<$#text>; section (section|article)*)");
  auto not_equiv =
      QueriesEquivalentUnderSchema(*schema_, sections, title_only);
  ASSERT_TRUE(not_equiv.ok());
  EXPECT_FALSE(*not_equiv);
  // But the subhedge-constrained one is contained in the plain one.
  auto inc = QueryContainment(*schema_, title_only, sections);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->contained);
}

TEST_F(ContainmentTest, DisjointQueriesContainedOnlyViaEmptiness) {
  // Captions directly under article never match; the empty query is
  // contained in everything.
  query::SelectionQuery impossible = ParseQ("select(*; caption article)");
  query::SelectionQuery anything = ParseQ("select(*; figure (section|article)*)");
  auto inc = QueryContainment(*schema_, impossible, anything);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->contained);
  auto rev = QueryContainment(*schema_, anything, impossible);
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(rev->contained);
}

TEST_F(ContainmentTest, SiblingConditionRefinesPathQuery) {
  query::SelectionQuery with_caption = ParseQ(
      "select(*; [*; figure; caption<$#text> "
      "(para<$#text>|figure<image>|caption<$#text>|table|"
      "section<%z>*^z|title<$#text>|$#text)*] (section|article)*)");
  query::SelectionQuery all_figures =
      ParseQ("select(*; figure (section|article)*)");
  auto inc = QueryContainment(*schema_, with_caption, all_figures);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_TRUE(inc->contained);
  auto rev = QueryContainment(*schema_, all_figures, with_caption);
  ASSERT_TRUE(rev.ok());
  EXPECT_FALSE(rev->contained);
  ASSERT_TRUE(rev->counterexample.has_value());
  // The counterexample figure is not followed by a caption.
  const hedge::Hedge& doc = rev->counterexample->document;
  hedge::NodeId n = rev->counterexample->located;
  hedge::NodeId next = doc.next_sibling(n);
  EXPECT_TRUE(next == hedge::kNullNode ||
              vocab_.symbols.NameOf(doc.label(next).id) != "caption")
      << doc.ToString(vocab_);
}

}  // namespace
}  // namespace hedgeq::schema
