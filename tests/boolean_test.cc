// Boolean combinations of selection queries: evaluation-level closure and
// the schema-level transforms built on the layered product.
#include <gtest/gtest.h>

#include <memory>

#include "query/boolean.h"
#include "schema/transform.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::query {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

class BooleanTest : public ::testing::Test {
 protected:
  SelectionQuery ParseQ(const std::string& text) {
    auto r = ParseSelectionQuery(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(BooleanTest, FormulaEvaluation) {
  BooleanQuery q = BooleanQuery::Or(
      BooleanQuery::And(
          BooleanQuery::Leaf(ParseQ("select(*; figure article)")),
          BooleanQuery::Not(
              BooleanQuery::Leaf(ParseQ("select(*; caption article)")))),
      BooleanQuery::Leaf(ParseQ("select(*; para article)")));
  EXPECT_EQ(q.Leaves().size(), 3u);
  // (a && !b) || c
  EXPECT_TRUE(q.Evaluate({true, false, false}));
  EXPECT_FALSE(q.Evaluate({true, true, false}));
  EXPECT_TRUE(q.Evaluate({true, true, true}));
  EXPECT_FALSE(q.Evaluate({false, false, false}));
}

TEST_F(BooleanTest, LocateCombinesLeafVerdicts) {
  // All figures, minus figures immediately followed by a caption =
  // figures not followed by a caption, cross-checked against the direct
  // structural query from the examples.
  SelectionQuery all = ParseQ("select(*; figure (section|article)*)");
  SelectionQuery with_caption = ParseQ(
      "select(*; [*; figure; caption<$#text> "
      "(para<$#text>|figure<image>|caption<$#text>|table|"
      "section<%z>*^z|title<$#text>|$#text)*] (section|article)*)");
  BooleanQuery difference =
      BooleanQuery::And(BooleanQuery::Leaf(all),
                        BooleanQuery::Not(BooleanQuery::Leaf(with_caption)));
  auto boolean_eval = BooleanEvaluator::Create(std::move(difference));
  ASSERT_TRUE(boolean_eval.ok()) << boolean_eval.status().ToString();

  auto all_eval = SelectionEvaluator::Create(all);
  auto cap_eval = SelectionEvaluator::Create(with_caption);
  ASSERT_TRUE(all_eval.ok());
  ASSERT_TRUE(cap_eval.ok());

  Rng rng(4040);
  for (int trial = 0; trial < 6; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 80 + 60 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    std::vector<bool> combined = boolean_eval->Locate(doc);
    std::vector<bool> a = all_eval->Locate(doc);
    std::vector<bool> b = cap_eval->Locate(doc);
    for (NodeId n = 0; n < doc.num_nodes(); ++n) {
      bool expected = doc.label(n).kind == hedge::LabelKind::kSymbol &&
                      a[n] && !b[n];
      ASSERT_EQ(combined[n], expected) << "node " << n;
    }
  }
}

TEST_F(BooleanTest, NotLocatesAllOtherElements) {
  SelectionQuery figs = ParseQ("select(*; figure (section|article)*)");
  auto not_figs =
      BooleanEvaluator::Create(BooleanQuery::Not(BooleanQuery::Leaf(figs)));
  ASSERT_TRUE(not_figs.ok());
  auto r = ParseHedge("article<title<$#text> section<figure<image>>>",
                      vocab_);
  ASSERT_TRUE(r.ok());
  std::vector<bool> located = not_figs->Locate(*r);
  size_t count = 0;
  for (NodeId n = 0; n < r->num_nodes(); ++n) {
    if (located[n]) {
      ++count;
      EXPECT_NE(vocab_.symbols.NameOf(r->label(n).id), "figure");
    }
  }
  // article, title, section, image — everything but figure and the text.
  EXPECT_EQ(count, 4u);
}

TEST_F(BooleanTest, SchemaLevelSelectAndSample) {
  auto schema = schema::ParseSchema(kArticleGrammar, vocab_);
  ASSERT_TRUE(schema.ok());

  // Sections that contain a figure child but no caption child (a condition
  // that needs negation): expressed as leaf1 AND NOT leaf2 over subhedge
  // conditions via sibling machinery... here simply: sections whose
  // envelope path matches, with different subhedge constraints.
  SelectionQuery has_fig = ParseQ(
      "select((title<$#text>|para<$#text>|figure<image>|caption<$#text>|"
      "table|section<%z>*^z|$#text)* figure<image> "
      "(title<$#text>|para<$#text>|figure<image>|caption<$#text>|table|"
      "section<%z>*^z|$#text)*; section (section|article)*)");
  SelectionQuery has_cap = ParseQ(
      "select((title<$#text>|para<$#text>|figure<image>|caption<$#text>|"
      "table|section<%z>*^z|$#text)* caption<$#text> "
      "(title<$#text>|para<$#text>|figure<image>|caption<$#text>|table|"
      "section<%z>*^z|$#text)*; section (section|article)*)");
  BooleanQuery fig_no_cap =
      BooleanQuery::And(BooleanQuery::Leaf(has_fig),
                        BooleanQuery::Not(BooleanQuery::Leaf(has_cap)));

  // A sample document must exist, validate, and be located correctly.
  auto sample =
      schema::SampleMatchingDocumentBoolean(*schema, fig_no_cap);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  ASSERT_TRUE(sample->has_value());
  const Hedge& doc = (*sample)->document;
  NodeId located = (*sample)->located;
  EXPECT_TRUE(schema->Validates(doc)) << doc.ToString(vocab_);
  auto evaluator = BooleanEvaluator::Create(fig_no_cap);
  ASSERT_TRUE(evaluator.ok());
  EXPECT_TRUE(evaluator->Locate(doc)[located]) << doc.ToString(vocab_);

  // The select-output schema accepts exactly such sections: with a figure,
  // without a caption.
  auto output = schema::SelectOutputSchemaBoolean(*schema, fig_no_cap);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto yes = ParseHedge("section<title<$#text> figure<image>>", vocab_);
  auto no1 = ParseHedge(
      "section<title<$#text> figure<image> caption<$#text>>", vocab_);
  auto no2 = ParseHedge("section<title<$#text> para<$#text>>", vocab_);
  EXPECT_TRUE(output->Validates(*yes));
  EXPECT_FALSE(output->Validates(*no1));
  EXPECT_FALSE(output->Validates(*no2));
}

}  // namespace
}  // namespace hedgeq::query
