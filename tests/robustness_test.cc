// End-to-end robustness: hostile inputs (nesting bombs, oversized
// documents, bad character references) fail with clean Statuses, and
// adversarial queries/schemas whose eager determinization blows a small
// ExecBudget still evaluate correctly through the lazy engines.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/determinize.h"
#include "hre/ast.h"
#include "phr/phr.h"
#include "query/evaluator.h"
#include "query/phr_compile.h"
#include "schema/schema.h"
#include "schema/streaming.h"
#include "strre/regex.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "xml/xml.h"

namespace hedgeq {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

// ---------------------------------------------------------------------------
// XML resource limits.

class CountingHandler : public xml::XmlHandler {
 public:
  Status StartElement(hedge::SymbolId) override {
    ++starts;
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId) override { return Status::Ok(); }
  Status Text(hedge::VarId, std::string_view) override { return Status::Ok(); }
  size_t starts = 0;
};

TEST(XmlRobustnessTest, NestingBombFailsCleanlyInBothParsers) {
  // 100k nested opens would overflow the native stack without the depth
  // cap; with it, both parsers stop at max_depth with a clean Status.
  std::string bomb;
  bomb.reserve(300000);
  for (int i = 0; i < 100000; ++i) bomb += "<a>";
  Vocabulary vocab;

  auto doc = xml::ParseXml(bomb, vocab);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doc.status().message().find("max_depth"), std::string::npos)
      << doc.status().ToString();

  CountingHandler handler;
  Status s = xml::ParseXmlStream(bomb, vocab, handler);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("max_depth"), std::string::npos);
  // The stream got exactly as deep as the cap allows before stopping.
  EXPECT_LE(handler.starts, xml::XmlParseOptions{}.max_depth);
}

TEST(XmlRobustnessTest, DepthLimitIsConfigurable) {
  std::string nested;
  for (int i = 0; i < 50; ++i) nested += "<a>";
  for (int i = 0; i < 50; ++i) nested += "</a>";
  Vocabulary vocab;
  EXPECT_TRUE(xml::ParseXml(nested, vocab).ok());
  xml::XmlParseOptions tight;
  tight.max_depth = 10;
  auto doc = xml::ParseXml(nested, vocab, tight);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

TEST(XmlRobustnessTest, InputSizeCapRejectsBeforeParsing) {
  Vocabulary vocab;
  xml::XmlParseOptions options;
  options.max_input_bytes = 16;
  std::string big = "<a>" + std::string(100, 'x') + "</a>";
  auto doc = xml::ParseXml(big, vocab, options);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(doc.status().message().find("max_input_bytes"), std::string::npos)
      << doc.status().ToString();
  CountingHandler handler;
  Status s = xml::ParseXmlStream(big, vocab, handler, options);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(handler.starts, 0u);
  // Within the cap everything still parses.
  EXPECT_TRUE(xml::ParseXml("<a>x</a>", vocab, options).ok());
}

TEST(XmlRobustnessTest, BadCharacterReferencesAreRejected) {
  Vocabulary vocab;
  for (const char* payload :
       {"&#x110000;",  // beyond U+10FFFF
        "&#xD800;",    // surrogate half
        "&#0;",        // NUL is not an XML character
        "&#;",         // no digits
        "&#x;",        // no hex digits
        "&#99999999999999999999;"}) {  // overflows any integer type
    std::string doc = std::string("<a>") + payload + "</a>";
    auto parsed = xml::ParseXml(doc, vocab);
    ASSERT_FALSE(parsed.ok()) << payload;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << payload << ": " << parsed.status().ToString();
  }
  // Sane references still work.
  auto ok = xml::ParseXml("<a>&#65;&#x1F600;</a>", vocab);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// ---------------------------------------------------------------------------
// Expression-parser nesting bombs (HRE, string regex, PHR).

TEST(ParserRobustnessTest, HreNestingBombFailsCleanly) {
  std::string bomb(100000, '(');
  bomb += "a";
  bomb.append(100000, ')');
  Vocabulary vocab;
  auto e = hre::ParseHre(bomb, vocab);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
  // Reasonable nesting is untouched.
  std::string fine(100, '(');
  fine += "a";
  fine.append(100, ')');
  EXPECT_TRUE(hre::ParseHre(fine, vocab).ok());
}

TEST(ParserRobustnessTest, RegexNestingBombFailsCleanly) {
  std::string bomb(100000, '(');
  bomb += "a";
  bomb.append(100000, ')');
  auto resolve = [](std::string_view) { return strre::Symbol{0}; };
  auto r = strre::ParseRegex(bomb, resolve);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  std::string fine(100, '(');
  fine += "a";
  fine.append(100, ')');
  EXPECT_TRUE(strre::ParseRegex(fine, resolve).ok());
}

TEST(ParserRobustnessTest, PhrNestingBombFailsCleanly) {
  std::string bomb(100000, '(');
  bomb += "a";
  bomb.append(100000, ')');
  Vocabulary vocab;
  auto p = phr::ParsePhr(bomb, vocab);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Adversarial determinization: the k-th-tree-from-the-end family needs
// 2^k horizontal states eagerly but only O(per-document) work lazily.

// "the k-th elder sibling from the end is an a0 tree", as an HRE sequence.
// Each position is a single tree with arbitrary {a0,a1} content (the
// vertical closure sits inside the content, so the expression cannot match
// the empty forest).
std::string KthFromEndElder(int k) {
  const std::string content = "(a0<%z>|a1<%z>|$x)*^z";
  const std::string any = "(a0<" + content + ">|a1<" + content + ">|$x)";
  std::string out = any + "* a0<" + content + ">";
  for (int i = 1; i < k; ++i) out += " " + any;
  return out;
}

TEST(AdversarialBudgetTest, PhrEvaluatorLazyFallbackMatchesEager) {
  Vocabulary vocab;
  std::string query = "[" + KthFromEndElder(6) + "; a1; *] (a0|a1)*";
  auto phr = phr::ParsePhr(query, vocab);
  ASSERT_TRUE(phr.ok()) << phr.status().ToString();

  // Unlimited: eager compilation succeeds and is the reference.
  auto eager = query::PhrEvaluator::Create(*phr);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  ASSERT_FALSE(eager->fallback_used());

  // Tight cap: eager compilation provably fails...
  ExecBudget budget;
  budget.max_states = 100;  // the elder condition alone lifts to 2^6+ states
  auto compiled = query::CompilePhr(*phr, budget);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted);

  // ...and the evaluator degrades to the lazy engine with identical answers.
  auto lazy = query::PhrEvaluator::Create(*phr, budget);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  ASSERT_TRUE(lazy->fallback_used());

  // A deterministic hit first: the final a1 has six elder siblings whose
  // sixth-from-the-end is an a0 tree.
  auto witness = ParseHedge("a0<a1 $x> a0 a1 a0 a1 a1 a1", vocab);
  ASSERT_TRUE(witness.ok());
  std::vector<bool> witness_want = eager->Locate(*witness);
  EXPECT_EQ(lazy->Locate(*witness), witness_want);
  size_t located_total = 0;
  for (bool b : witness_want) located_total += b ? 1 : 0;
  EXPECT_GT(located_total, 0u);  // the family is not vacuous

  Rng rng(20010615);
  workload::RandomHedgeOptions options;
  options.num_symbols = 2;  // a0, a1
  options.target_nodes = 60;
  for (int trial = 0; trial < 12; ++trial) {
    Hedge doc = workload::RandomHedge(rng, vocab, options);
    std::vector<bool> want = eager->Locate(doc);
    std::vector<bool> got = lazy->Locate(doc);
    EXPECT_EQ(got, want) << "trial " << trial;
  }

  automata::EvalStats stats = lazy->stats();
  EXPECT_TRUE(stats.fallback_used);
  EXPECT_GT(stats.states_materialized, 0u);
  // Cache memory stayed under the lazy engine's cap (one entry of slack
  // for the insert that triggers eviction).
  EXPECT_LE(stats.peak_cache_bytes,
            automata::LazyDhaOptions{}.max_cache_bytes + 1024);
}

TEST(AdversarialBudgetTest, StreamingValidatorLazyFallbackMatchesEager) {
  constexpr int k = 8;
  std::string grammar = "start = R\nR = r<(A|B)* A";
  for (int i = 1; i < k; ++i) grammar += " (A|B)";
  grammar += ">\nA = a<(A|B)*>\nB = b<(A|B)*>\n";
  Vocabulary vocab;
  auto schema = schema::ParseSchema(grammar, vocab);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  auto eager = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  ASSERT_FALSE(eager->fallback_used());

  ExecBudget budget;
  budget.max_states = 64;  // the content model needs 2^8 horizontal sets
  auto det = automata::Determinize(schema->nha(), budget);
  ASSERT_FALSE(det.ok());  // the cap genuinely defeats eager preprocessing
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);

  auto lazy = schema::StreamingValidator::Create(*schema, budget);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  ASSERT_TRUE(lazy->fallback_used());

  Rng rng(8080);
  int valid_count = 0;
  size_t total_materialized = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::string doc = "<r>";
    size_t roots = k + rng.Below(12);
    for (size_t i = 0; i < roots; ++i) {
      doc += rng.Below(2) == 0 ? "<a></a>" : "<b></b>";
    }
    doc += "</r>";
    auto want = eager->Validate(doc, vocab);
    auto got = lazy->ValidateWithStats(doc, vocab);
    ASSERT_TRUE(want.ok() && got.ok()) << doc;
    EXPECT_EQ(got->valid, *want) << doc;
    EXPECT_TRUE(got->stats.fallback_used);
    // Later trials may be answered entirely from warm caches, so the
    // materialization count is only guaranteed across the whole sweep.
    total_materialized += got->stats.states_materialized;
    valid_count += *want ? 1 : 0;
  }
  EXPECT_GT(total_materialized, 0u);
  // Both verdicts occur, so the agreement above is meaningful.
  EXPECT_GT(valid_count, 0);
  EXPECT_LT(valid_count, 30);
}

TEST(AdversarialBudgetTest, ExpiredDeadlineDegradesStreamingValidatorToLazy) {
  // A wall-clock deadline that has already passed defeats eager
  // determinization on its first charge, exactly like a blown state cap —
  // and the validator degrades to the lazy engine instead of failing.
  std::string grammar =
      "start = R\nR = r<(A|B)*>\nA = a<(A|B)*>\nB = b<(A|B)*>\n";
  Vocabulary vocab;
  auto schema = schema::ParseSchema(grammar, vocab);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();

  auto eager = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();

  ExecBudget budget;
  budget.SetDeadlineAfterMs(0);  // already expired, deterministically
  auto det = automata::Determinize(schema->nha(), budget);
  ASSERT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kDeadlineExceeded);

  auto lazy = schema::StreamingValidator::Create(*schema, budget);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  ASSERT_TRUE(lazy->fallback_used());

  for (const char* doc :
       {"<r><a></a><b></b></r>", "<r></r>", "<a></a>", "<r><c></c></r>"}) {
    auto want = eager->Validate(doc, vocab);
    auto got = lazy->Validate(doc, vocab);
    if (!want.ok()) {
      // Unknown symbols reject in both engines the same way.
      EXPECT_EQ(got.ok(), want.ok()) << doc;
      continue;
    }
    ASSERT_TRUE(got.ok()) << doc << ": " << got.status().ToString();
    EXPECT_EQ(*got, *want) << doc;
  }
}

}  // namespace
}  // namespace hedgeq
