#include <gtest/gtest.h>

#include "automata/nha.h"
#include "strre/ops.h"

namespace hedgeq::automata {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;
using strre::CompileRegex;
using strre::Concat;
using strre::Epsilon;
using strre::Star;
using strre::Sym;

class NhaTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  // The paper's M0 (Section 3, without the explicit dead state q0): accepts
  // sequences of trees d<p<x>>, d<p<x> p<y>>, d<p<x> p<y> p<y>>, ...
  Nha BuildM0() {
    Nha m;
    HState qd = m.AddState();
    HState qp1 = m.AddState();
    HState qp2 = m.AddState();
    HState qx = m.AddState();
    HState qy = m.AddState();
    m.AddVariableState(vocab_.variables.Intern("x"), qx);
    m.AddVariableState(vocab_.variables.Intern("y"), qy);
    hedge::SymbolId d = vocab_.symbols.Intern("d");
    hedge::SymbolId p = vocab_.symbols.Intern("p");
    m.AddRule(d, CompileRegex(Concat(Sym(qp1), Star(Sym(qp2)))), qd);
    m.AddRule(p, CompileRegex(Sym(qx)), qp1);
    m.AddRule(p, CompileRegex(Sym(qy)), qp2);
    m.SetFinal(CompileRegex(Star(Sym(qd))));
    return m;
  }

  // The paper's M1 (Section 3): non-deterministic; iota(y) is empty, and
  // alpha(p, qx qx) = {qp1, qp2}, alpha(p, qx) = {qp1}.
  Nha BuildM1() {
    Nha m;
    HState qd = m.AddState();
    HState qp1 = m.AddState();
    HState qp2 = m.AddState();
    HState qx = m.AddState();
    m.AddVariableState(vocab_.variables.Intern("x"), qx);
    hedge::SymbolId d = vocab_.symbols.Intern("d");
    hedge::SymbolId p = vocab_.symbols.Intern("p");
    m.AddRule(d, CompileRegex(Concat(Sym(qp1), Star(Sym(qp2)))), qd);
    m.AddRule(p, CompileRegex(Concat(Sym(qx), Sym(qx))), qp1);
    m.AddRule(p, CompileRegex(Concat(Sym(qx), Sym(qx))), qp2);
    m.AddRule(p, CompileRegex(Sym(qx)), qp1);
    m.SetFinal(CompileRegex(Star(Sym(qd))));
    return m;
  }

  Vocabulary vocab_;
};

TEST_F(NhaTest, M0AcceptsPaperExample) {
  Nha m0 = BuildM0();
  // d<p<x> p<y>> d<p<x>> is the paper's worked acceptance example.
  EXPECT_TRUE(m0.Accepts(Parse("d<p<$x> p<$y>> d<p<$x>>")));
  EXPECT_TRUE(m0.Accepts(Parse("")));
  EXPECT_TRUE(m0.Accepts(Parse("d<p<$x>>")));
  EXPECT_TRUE(m0.Accepts(Parse("d<p<$x> p<$y> p<$y>>")));
}

TEST_F(NhaTest, M0Rejections) {
  Nha m0 = BuildM0();
  EXPECT_FALSE(m0.Accepts(Parse("d<p<$y>>")));       // first child must be p<x>
  EXPECT_FALSE(m0.Accepts(Parse("d<p<$x> p<$x>>"))); // second must be p<y>
  EXPECT_FALSE(m0.Accepts(Parse("p<$x>")));          // top level must be d's
  EXPECT_FALSE(m0.Accepts(Parse("d")));              // d needs children
  EXPECT_FALSE(m0.Accepts(Parse("$x")));             // bare variable
}

TEST_F(NhaTest, M1MatchesPaperWorkedExamples) {
  Nha m1 = BuildM1();
  // "The set of computations of the first hedge is empty."
  EXPECT_FALSE(m1.Accepts(Parse("d<p<$x> p<$y>>")));
  // "...the second hedge is accepted."
  EXPECT_TRUE(m1.Accepts(Parse("d<p<$x $x> p<$x $x>>")));
}

TEST_F(NhaTest, ComputeStateSetsExposesNondeterminism) {
  Nha m1 = BuildM1();
  Hedge h = Parse("d<p<$x $x> p<$x $x>>");
  std::vector<Bitset> sets = m1.ComputeStateSets(h);
  // Each p node can be assigned both qp1 and qp2 (states 1 and 2).
  hedge::NodeId d = h.roots()[0];
  for (hedge::NodeId p : h.ChildrenOf(d)) {
    EXPECT_TRUE(sets[p].Test(1));
    EXPECT_TRUE(sets[p].Test(2));
  }
  EXPECT_TRUE(sets[d].Test(0));
}

TEST_F(NhaTest, IntersectionOfM0AndM1) {
  // L(M0) requires p<x> then p<y>*; L(M1) requires every p to hold x's and
  // iota(y) empty. Intersection: only d<p<x>> sequences survive.
  Nha inter = IntersectNha(BuildM0(), BuildM1());
  EXPECT_TRUE(inter.Accepts(Parse("d<p<$x>>")));
  EXPECT_TRUE(inter.Accepts(Parse("d<p<$x>> d<p<$x>>")));
  EXPECT_TRUE(inter.Accepts(Parse("")));
  EXPECT_FALSE(inter.Accepts(Parse("d<p<$x> p<$y>>")));
  EXPECT_FALSE(inter.Accepts(Parse("d<p<$x $x>>")));
}

TEST_F(NhaTest, UnionAcceptsEitherLanguage) {
  Nha u = UnionNha(BuildM0(), BuildM1());
  EXPECT_TRUE(u.Accepts(Parse("d<p<$x> p<$y>>")));    // only M0
  EXPECT_TRUE(u.Accepts(Parse("d<p<$x $x>>")));       // only M1
  EXPECT_FALSE(u.Accepts(Parse("d<p<$y>>")));         // neither
}

TEST_F(NhaTest, EmptinessAndReachability) {
  EXPECT_FALSE(IsEmptyNha(BuildM0()));
  EXPECT_FALSE(IsEmptyNha(BuildM1()));

  // An automaton whose only rule needs an underivable state is empty.
  Nha dead;
  HState q0 = dead.AddState();
  HState q1 = dead.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  dead.AddRule(a, CompileRegex(Sym(q1)), q0);  // q1 never derivable
  dead.SetFinal(CompileRegex(Sym(q0)));
  EXPECT_TRUE(IsEmptyNha(dead));
  Bitset reach = ReachableStates(dead);
  EXPECT_FALSE(reach.Test(q0));
  EXPECT_FALSE(reach.Test(q1));
}

TEST_F(NhaTest, EmptyFinalLanguageMeansEmpty) {
  Nha m = BuildM0();
  m.SetFinal(CompileRegex(strre::EmptySet()));
  EXPECT_TRUE(IsEmptyNha(m));
}

TEST_F(NhaTest, EpsilonOnlyLanguage) {
  Nha m;
  m.SetFinal(CompileRegex(Epsilon()));
  EXPECT_TRUE(m.Accepts(Parse("")));
  EXPECT_FALSE(m.Accepts(Parse("a")));
  EXPECT_FALSE(IsEmptyNha(m));
}

TEST_F(NhaTest, SubstitutionLeavesCarryStates) {
  // Automaton for { a<z> }: iota(z) = {zbar}, alpha(a, zbar) = q.
  Nha m;
  HState zbar = m.AddState();
  HState q = m.AddState();
  m.AddSubstState(vocab_.substs.Intern("z"), zbar);
  m.AddRule(vocab_.symbols.Intern("a"), CompileRegex(Sym(zbar)), q);
  m.SetFinal(CompileRegex(Sym(q)));
  EXPECT_TRUE(m.Accepts(Parse("a<%z>")));
  EXPECT_FALSE(m.Accepts(Parse("a")));
  EXPECT_FALSE(m.Accepts(Parse("%z")));
}

}  // namespace
}  // namespace hedgeq::automata
