#include <gtest/gtest.h>

#include "schema/schema.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "xml/xml.h"

namespace hedgeq::schema {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

constexpr const char* kArticleGrammar = R"(
# The article schema used across tests and benchmarks.
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

class SchemaTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Schema ParseS(const std::string& text) {
    auto r = ParseSchema(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(SchemaTest, ValidatesHandWrittenDocuments) {
  Schema schema = ParseS(kArticleGrammar);
  EXPECT_TRUE(schema.Validates(
      Parse("article<title<$#text> section<title<$#text> para<$#text>>>")));
  EXPECT_TRUE(schema.Validates(Parse("article<title<$#text>>")));
  EXPECT_TRUE(schema.Validates(
      Parse("article<title<$#text> section<title<$#text> figure<image> "
            "caption<$#text>>>")));
  // Violations.
  EXPECT_FALSE(schema.Validates(Parse("article")));  // missing title
  EXPECT_FALSE(schema.Validates(
      Parse("article<section<title<$#text>> title<$#text>>")));  // order
  EXPECT_FALSE(schema.Validates(
      Parse("article<title<$#text> para<$#text>>")));  // para at top
  EXPECT_FALSE(schema.Validates(
      Parse("article<title<$#text> section<title<$#text> figure>>")));
  EXPECT_FALSE(schema.Validates(Parse("")));
}

TEST_F(SchemaTest, ValidatesGeneratedArticles) {
  Schema schema = ParseS(kArticleGrammar);
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 50 + 70 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    EXPECT_TRUE(schema.Validates(doc)) << doc.ToString(vocab_);
  }
}

TEST_F(SchemaTest, ValidatesParsedXml) {
  Schema schema = ParseS(kArticleGrammar);
  auto doc = xml::ParseXml(
      "<article><title>t</title>"
      "<section><title>s</title><figure><image/></figure>"
      "<caption>c</caption></section></article>",
      vocab_);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(schema.Validates(doc->hedge));
}

TEST_F(SchemaTest, MultipleRulesPerNonterminalUnion) {
  Schema schema = ParseS(
      "start = Doc\n"
      "Doc = doc<Item*>\n"
      "Item = a<>\n"
      "Item = b<Item>\n");
  EXPECT_TRUE(schema.Validates(Parse("doc<a b<a> b<b<a>>>")));
  EXPECT_FALSE(schema.Validates(Parse("doc<b>")));
}

TEST_F(SchemaTest, StartUnion) {
  Schema schema = ParseS(
      "start = A | B B\n"
      "A = a<>\n"
      "B = b<>\n");
  EXPECT_TRUE(schema.Validates(Parse("a")));
  EXPECT_TRUE(schema.Validates(Parse("b b")));
  EXPECT_FALSE(schema.Validates(Parse("b")));
  EXPECT_FALSE(schema.Validates(Parse("a b")));
}

TEST_F(SchemaTest, SemicolonSeparatedDeclarations) {
  Schema schema = ParseS("start = A; A = a<B*>; B = b<>");
  EXPECT_TRUE(schema.Validates(Parse("a<b b>")));
}

TEST_F(SchemaTest, Errors) {
  Vocabulary v;
  EXPECT_FALSE(ParseSchema("", v).ok());
  EXPECT_FALSE(ParseSchema("A = a<>", v).ok());            // no start
  EXPECT_FALSE(ParseSchema("start = A", v).ok());          // unknown A
  EXPECT_FALSE(ParseSchema("start = A\nA = a<B>", v).ok());  // unknown B
  EXPECT_FALSE(ParseSchema("start = A\nA = <>", v).ok());
  EXPECT_FALSE(ParseSchema("start = A\nA = $", v).ok());
  EXPECT_FALSE(ParseSchema("bogus line\nstart = A\nA = a<>", v).ok());
  // A doubled '=' must not produce a symbol literally named "= a" — such
  // a name cannot survive the whitespace-tokenized serializers (found by
  // fuzz_containment as a certificate round-trip failure).
  EXPECT_FALSE(ParseSchema("start = A\nA = = a<>", v).ok());
  EXPECT_FALSE(ParseSchema("start = A\nA B = a<>", v).ok());
  EXPECT_FALSE(ParseSchema("start = A\nA = $x y", v).ok());
}

TEST_F(SchemaTest, EmptinessDetection) {
  // B is underivable: its only rule needs itself.
  Schema empty = ParseS(
      "start = B\n"
      "B = b<B>\n");
  EXPECT_TRUE(empty.IsEmpty());

  Schema nonempty = ParseS(
      "start = B\n"
      "B = b<B?>\n");
  EXPECT_FALSE(nonempty.IsEmpty());
}

TEST_F(SchemaTest, SymbolsAndVariables) {
  Schema schema = ParseS(kArticleGrammar);
  EXPECT_EQ(schema.Symbols().size(), 8u);
  EXPECT_EQ(schema.Variables().size(), 1u);
}

}  // namespace
}  // namespace hedgeq::schema
