// Theorem 2 round trips: expression -> automaton (Lemma 1) -> expression
// (Lemma 2) -> automaton, comparing languages on random hedges.
#include <gtest/gtest.h>

#include "automata/analysis.h"
#include "hre/compile.h"
#include "hre/from_nha.h"
#include "strre/ops.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::hre {
namespace {

using automata::Nha;
using hedge::Hedge;
using hedge::Vocabulary;

class FromNhaTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(FromNhaTest, RegexToHreStructure) {
  auto resolve = [](std::string_view) { return strre::Symbol{0}; };
  auto r = strre::ParseRegex("(x|y)* x+", resolve);
  ASSERT_TRUE(r.ok());
  Vocabulary vocab;
  hedge::VarId v = vocab.variables.Intern("v");
  Hre hre = RegexToHre(*r, [&](strre::Symbol) { return HVar(v); });
  // ($v|$v)* ($v $v*): shape preserved, leaves mapped.
  EXPECT_EQ(hre->kind(), HreKind::kConcat);
}

TEST_F(FromNhaTest, HandAutomatonRoundTrip) {
  // The paper's M0 language: sequences of d<p<x> p<y>*>.
  Nha m0;
  automata::HState qd = m0.AddState();
  automata::HState qp1 = m0.AddState();
  automata::HState qp2 = m0.AddState();
  automata::HState qx = m0.AddState();
  automata::HState qy = m0.AddState();
  m0.AddVariableState(vocab_.variables.Intern("x"), qx);
  m0.AddVariableState(vocab_.variables.Intern("y"), qy);
  m0.AddRule(vocab_.symbols.Intern("d"),
             strre::CompileRegex(
                 strre::Concat(strre::Sym(qp1), strre::Star(strre::Sym(qp2)))),
             qd);
  m0.AddRule(vocab_.symbols.Intern("p"), strre::CompileRegex(strre::Sym(qx)),
             qp1);
  m0.AddRule(vocab_.symbols.Intern("p"), strre::CompileRegex(strre::Sym(qy)),
             qp2);
  m0.SetFinal(strre::CompileRegex(strre::Star(strre::Sym(qd))));

  auto expr = NhaToHre(m0, vocab_);
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  Nha back = CompileHre(*expr);

  for (const char* text :
       {"", "d<p<$x>>", "d<p<$x> p<$y>> d<p<$x>>", "d<p<$x> p<$y> p<$y>>"}) {
    EXPECT_TRUE(back.Accepts(Parse(text))) << text;
  }
  for (const char* text :
       {"d", "p<$x>", "d<p<$y>>", "d<p<$x> p<$x>>", "$x",
        "d<p<$x>> p<$y>"}) {
    EXPECT_FALSE(back.Accepts(Parse(text))) << text;
  }
}

class Theorem2RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(Theorem2RoundTrip, LanguagesAgreeOnRandomHedges) {
  Vocabulary vocab;
  auto e = ParseHre(GetParam(), vocab);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  Nha nha = CompileHre(*e);
  // Prune first: Lemma 2 is doubly exponential in split-state count.
  Nha pruned = automata::PruneNha(nha);
  auto back_expr = NhaToHre(pruned, vocab);
  ASSERT_TRUE(back_expr.ok()) << back_expr.status().ToString();
  Nha back = CompileHre(*back_expr);

  Rng rng(2026);
  int accepted = 0;
  for (int trial = 0; trial < 120; ++trial) {
    workload::RandomHedgeOptions options;
    options.target_nodes = 1 + rng.Below(8);
    options.num_symbols = 2;  // a0, a1 - rename below
    Hedge raw = workload::RandomHedge(rng, vocab, options);
    // Relabel onto the expression's probable vocabulary {a, b, $x, $y}.
    hedge::SymbolId a = vocab.symbols.Intern("a");
    hedge::SymbolId b = vocab.symbols.Intern("b");
    hedge::VarId x = vocab.variables.Intern("x");
    hedge::VarId y = vocab.variables.Intern("y");
    Hedge doc;
    std::vector<hedge::NodeId> map(raw.num_nodes());
    for (hedge::NodeId n : raw.PreOrder()) {
      hedge::Label label = raw.label(n);
      if (label.kind == hedge::LabelKind::kSymbol) {
        label.id = label.id % 2 == 0 ? a : b;
      } else {
        label = label.id % 2 == 0 ? hedge::Label::Variable(x)
                                  : hedge::Label::Variable(y);
      }
      hedge::NodeId parent = raw.parent(n) == hedge::kNullNode
                                 ? hedge::kNullNode
                                 : map[raw.parent(n)];
      map[n] = doc.Append(parent, label);
    }
    bool expected = nha.Accepts(doc);
    EXPECT_EQ(back.Accepts(doc), expected)
        << GetParam() << " on " << doc.ToString(vocab);
    accepted += expected ? 1 : 0;
  }
  // Also the canonical members/non-members: empty hedge.
  Hedge empty;
  EXPECT_EQ(back.Accepts(empty), nha.Accepts(empty));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem2RoundTrip,
                         ::testing::Values("a", "a*", "a|b", "a<b>",
                                           "a<b*>*", "(a b)*", "a<$x>",
                                           "($x|$y)*", "a<a<$x>|b>",
                                           "a<b> b<a>", "(a<$x*>|b)*"));

TEST_F(FromNhaTest, RejectsSubstitutionStates) {
  auto e = ParseHre("a<%z>", vocab_);
  ASSERT_TRUE(e.ok());
  Nha nha = CompileHre(*e);
  auto back = NhaToHre(nha, vocab_);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FromNhaTest, EmptyAutomaton) {
  Nha empty;
  empty.SetFinal(strre::CompileRegex(strre::EmptySet()));
  auto expr = NhaToHre(empty, vocab_);
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind(), HreKind::kEmptySet);
}

}  // namespace
}  // namespace hedgeq::hre
