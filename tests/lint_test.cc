#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/analysis.h"
#include "hre/compile.h"
#include "lint/analyze.h"
#include "lint/lint.h"
#include "query/evaluator.h"
#include "query/selection.h"
#include "schema/schema.h"
#include "schema/transform.h"
#include "strre/ops.h"

namespace hedgeq::lint {
namespace {

using automata::HState;
using automata::Nha;
using hedge::Vocabulary;

size_t CountCode(const std::vector<Diagnostic>& diagnostics,
                 DiagnosticCode code) {
  return std::count_if(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

class LintTest : public ::testing::Test {
 protected:
  hre::Hre ParseExpr(const std::string& text) {
    auto e = hre::ParseHre(text, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }
  query::SelectionQuery ParseQuery(const std::string& text) {
    auto q = query::ParseSelectionQuery(text, vocab_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }
  schema::Schema ParseGrammar(const std::string& text) {
    auto s = schema::ParseSchema(text, vocab_);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return std::move(s).value();
  }

  // doc<sec*>, sec<(para|sec)*>, para<> — sec can nest.
  schema::Schema DocSchema() {
    return ParseGrammar(
        "start = Doc\n"
        "Doc = doc<Sec*>\n"
        "Sec = sec<(Para|Sec)*>\n"
        "Para = para<>\n");
  }

  Vocabulary vocab_;
};

// ---------------------------------------------------------------------------
// Expression-level codes (HQL001, HQL002, HQL201, HQL202).

TEST_F(LintTest, EmptyExpressionIsAnError) {
  // c<{}> concatenated with a: the {} poisons the whole expression.
  LintReport report = LintExpression(ParseExpr("c<{}> a"), vocab_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(CountCode(report.diagnostics, DiagnosticCode::kEmptyExpression),
            1u);
  // The minimal empty subterm ({} itself) is reported separately.
  EXPECT_EQ(
      CountCode(report.diagnostics, DiagnosticCode::kEmptySubexpression), 1u);
}

TEST_F(LintTest, EmptyRootAloneIsNotAlsoASubexpressionFinding) {
  LintReport report = LintExpression(ParseExpr("{}"), vocab_);
  EXPECT_EQ(CountCode(report.diagnostics, DiagnosticCode::kEmptyExpression),
            1u);
  EXPECT_EQ(
      CountCode(report.diagnostics, DiagnosticCode::kEmptySubexpression), 0u);
}

TEST_F(LintTest, EmptySubexpressionUnderUnionIsAWarningOnly) {
  // The whole language is nonempty (left branch), but c<{}> is dead code.
  LintReport report = LintExpression(ParseExpr("(a|b)*|c<{}>"), vocab_);
  EXPECT_FALSE(report.has_errors());
  ASSERT_EQ(
      CountCode(report.diagnostics, DiagnosticCode::kEmptySubexpression), 1u);
  // Only the *minimal* empty subterm is flagged; c<{}> (empty because its
  // child is) is not reported on top of it.
  const Diagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.span.find("{}"), std::string::npos);
}

TEST_F(LintTest, EmbedEmptinessDecidedByCompilation) {
  // {} @z e2 is nonempty iff e2 has a z-free member — the structural rules
  // cannot answer that, so the compile-probe path must run. (b<%z>|c) has
  // the z-free member c, which survives even with nothing to substitute...
  LintReport report = LintExpression(ParseExpr("{} @z (b<%z>|c)"), vocab_);
  EXPECT_EQ(CountCode(report.diagnostics, DiagnosticCode::kEmptyExpression),
            0u);
  // ...while every member of b<%z> mentions z, so the embedding is empty.
  LintReport empty = LintExpression(ParseExpr("{} @z b<%z>"), vocab_);
  EXPECT_EQ(CountCode(empty.diagnostics, DiagnosticCode::kEmptyExpression),
            1u);
}

TEST_F(LintTest, AmbiguousExpressionGetsANote) {
  LintReport report = LintExpression(ParseExpr("a|a"), vocab_);
  ASSERT_EQ(
      CountCode(report.diagnostics, DiagnosticCode::kAmbiguousExpression),
      1u);
  EXPECT_EQ(report.max_severity(), Severity::kNote);

  LintReport clean = LintExpression(ParseExpr("(a|b)*"), vocab_);
  EXPECT_EQ(
      CountCode(clean.diagnostics, DiagnosticCode::kAmbiguousExpression), 0u);
}

TEST_F(LintTest, AmbiguityCheckCanBeDisabled) {
  LintOptions options;
  options.check_ambiguity = false;
  LintReport report = LintExpression(ParseExpr("a|a"), vocab_, options);
  EXPECT_EQ(
      CountCode(report.diagnostics, DiagnosticCode::kAmbiguousExpression),
      0u);
}

TEST_F(LintTest, BlowupRiskFlaggedOnAdversarialFamily) {
  // (a|b)* a (a|b)^(k-1): the classic 2^k witness for Theorem 1's
  // exponential lower bound. With the warning threshold lowered to 2^3 the
  // k=6 member must trip HQL201.
  std::string expr = "(a|b)* a";
  for (int i = 0; i < 5; ++i) expr += " (a|b)";
  LintOptions options;
  options.blowup_warn_log2 = 3;
  LintReport report = LintExpression(ParseExpr(expr), vocab_, options);
  EXPECT_GE(
      CountCode(report.diagnostics,
                DiagnosticCode::kDeterminizationBlowupRisk),
      1u);
  // A deterministic expression stays quiet even at the low threshold.
  LintReport clean = LintExpression(ParseExpr("a b c"), vocab_, options);
  EXPECT_EQ(CountCode(clean.diagnostics,
                      DiagnosticCode::kDeterminizationBlowupRisk),
            0u);
}

TEST_F(LintTest, ProfileEstimateGrowsWithTheFamily) {
  auto estimate = [&](int k) {
    std::string expr = "(a|b)* a";
    for (int i = 1; i < k; ++i) expr += " (a|b)";
    return ProfileNha(hre::CompileHre(ParseExpr(expr))).log2_h_estimate;
  };
  EXPECT_LT(estimate(2), estimate(8));
  // The estimate is a log2, so it must stay sane (<= worst case bound).
  NondetProfile p = ProfileNha(hre::CompileHre(ParseExpr("(a|b)* a (a|b)")));
  EXPECT_LE(p.log2_h_estimate, p.log2_h_worst);
  EXPECT_LE(p.nondet_branch_points, p.content_nfa_states);
}

// ---------------------------------------------------------------------------
// Automaton-level codes (HQL003, HQL101, HQL102).

TEST_F(LintTest, EmptyAutomatonIsAnError) {
  // The only rule needs its own target state: nothing is derivable.
  Nha nha;
  HState q0 = nha.AddState();
  nha.AddRule(vocab_.symbols.Intern("a"),
              strre::CompileRegex(strre::Sym(q0)), q0);
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));

  std::vector<Diagnostic> out;
  LintNha(nha, LintOptions{}, "test automaton", out);
  ASSERT_EQ(CountCode(out, DiagnosticCode::kEmptyAutomaton), 1u);
  EXPECT_EQ(out.front().severity, Severity::kError);
  // Emptiness subsumes the hygiene findings; nothing else is reported.
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(LintTest, UnreachableStatesFlagged) {
  // q1 is underivable (self-recursive content); q2 carries the language.
  Nha nha;
  HState q1 = nha.AddState();
  HState q2 = nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  nha.AddRule(a, strre::CompileRegex(strre::Sym(q1)), q1);
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q2);
  nha.SetFinal(strre::CompileRegex(
      strre::Alt(strre::Sym(q1), strre::Sym(q2))));

  std::vector<Diagnostic> out;
  LintNha(nha, LintOptions{}, "test automaton", out);
  EXPECT_EQ(CountCode(out, DiagnosticCode::kUnreachableStates), 1u);
  EXPECT_EQ(CountCode(out, DiagnosticCode::kEmptyAutomaton), 0u);
}

TEST_F(LintTest, UselessStatesAboveThirtyPercentAreAWarning) {
  // All three states are derivable but only q0 is usable: 2/3 useless,
  // well above the 30% acceptance bar (and the 25% default warn ratio).
  Nha nha;
  HState q0 = nha.AddState();
  nha.AddState();
  nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  for (HState q = 0; q < 3; ++q) {
    nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), q);
  }
  nha.SetFinal(strre::CompileRegex(strre::Sym(q0)));

  TrimReport trim = AnalyzeTrim(nha, LintOptions{});
  EXPECT_EQ(trim.states_before, 3u);
  EXPECT_EQ(trim.states_after, 1u);
  EXPECT_EQ(trim.unreachable, 0u);
  EXPECT_EQ(trim.useless, 2u);
  EXPECT_GE(trim.DeadFraction(), 0.3);
  // The probe determinizations ran (tiny automaton) and show the savings.
  EXPECT_GE(trim.probe_h_states_before, trim.probe_h_states_after);
  EXPECT_GT(trim.probe_h_states_after, 0u);

  std::vector<Diagnostic> out;
  LintNha(nha, LintOptions{}, "test automaton", out);
  ASSERT_EQ(CountCode(out, DiagnosticCode::kUselessStates), 1u);
  auto it = std::find_if(out.begin(), out.end(), [](const Diagnostic& d) {
    return d.code == DiagnosticCode::kUselessStates;
  });
  EXPECT_EQ(it->severity, Severity::kWarning);
}

TEST_F(LintTest, FewUselessStatesAreOnlyANote) {
  // 1 of 5 states useless (20%): below the 25% default, stays a note.
  Nha nha;
  for (int i = 0; i < 5; ++i) nha.AddState();
  hedge::SymbolId a = vocab_.symbols.Intern("a");
  // Chain: q0 <- a<q1...>, ..., q3 <- a<>; q4 derivable but unused.
  for (HState q = 0; q < 3; ++q) {
    nha.AddRule(a, strre::CompileRegex(strre::Sym(q + 1)), q);
  }
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), 3);
  nha.AddRule(a, strre::CompileRegex(strre::Epsilon()), 4);
  nha.SetFinal(strre::CompileRegex(strre::Sym(0)));

  std::vector<Diagnostic> out;
  LintNha(nha, LintOptions{}, "test automaton", out);
  auto it = std::find_if(out.begin(), out.end(), [](const Diagnostic& d) {
    return d.code == DiagnosticCode::kUselessStates;
  });
  ASSERT_NE(it, out.end());
  EXPECT_EQ(it->severity, Severity::kNote);
}

TEST_F(LintTest, TrimmedAutomatonIsClean) {
  Nha pruned = automata::PruneNha(hre::CompileHre(ParseExpr("(a|b)* c")));
  std::vector<Diagnostic> out;
  LintNha(pruned, LintOptions{}, "test automaton", out);
  EXPECT_EQ(CountCode(out, DiagnosticCode::kUnreachableStates), 0u);
  EXPECT_EQ(CountCode(out, DiagnosticCode::kUselessStates), 0u);
}

// ---------------------------------------------------------------------------
// Schema-aware codes (HQL004, HQL301, HQL302).

TEST_F(LintTest, EmptySchemaIsAnError) {
  schema::Schema schema = ParseGrammar(
      "start = A\n"
      "A = a<A>\n");  // the rule chain never bottoms out
  LintReport report = LintSchema(schema, vocab_);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(CountCode(report.diagnostics, DiagnosticCode::kEmptySchema), 1u);
}

TEST_F(LintTest, HealthySchemaHasNoErrors) {
  LintReport report = LintSchema(DocSchema(), vocab_);
  EXPECT_FALSE(report.has_errors());
}

TEST_F(LintTest, QueryUnsatisfiableUnderSchemaFlagged) {
  schema::Schema schema = DocSchema();
  // 'bogus' labels no node of any schema-valid document.
  query::SelectionQuery unsat = ParseQuery("select(*; bogus sec* doc)");
  auto report = LintQueryUnderSchema(schema, unsat, vocab_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(CountCode(report->diagnostics,
                      DiagnosticCode::kQueryUnsatisfiableUnderSchema),
            1u);
  EXPECT_TRUE(report->has_errors());
}

TEST_F(LintTest, StructurallyImpossibleQueryFlagged) {
  schema::Schema schema = DocSchema();
  // Every symbol exists, but para never directly contains doc's children:
  // a doc node is never below a para node.
  query::SelectionQuery unsat = ParseQuery("select(*; doc para sec doc)");
  auto report = LintQueryUnderSchema(schema, unsat, vocab_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(CountCode(report->diagnostics,
                      DiagnosticCode::kQueryUnsatisfiableUnderSchema),
            1u);
}

TEST_F(LintTest, SatisfiableQueryUnderSchemaIsClean) {
  schema::Schema schema = DocSchema();
  query::SelectionQuery sat = ParseQuery("select(*; para sec+ doc)");
  auto report = LintQueryUnderSchema(schema, sat, vocab_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(CountCode(report->diagnostics,
                      DiagnosticCode::kQueryUnsatisfiableUnderSchema),
            0u);
  EXPECT_FALSE(report->has_errors());
}

TEST_F(LintTest, SubsumedQueryFlaggedInOneDirectionOnly) {
  schema::Schema schema = DocSchema();
  // q1 requires exactly one sec ancestor level; q2 allows any. Since sec
  // nests, q2 strictly contains q1.
  query::SelectionQuery q1 = ParseQuery("select(*; para sec doc)");
  query::SelectionQuery q2 = ParseQuery("select(*; para sec+ doc)");
  auto report = LintQueryOverlap(schema, q1, q2, vocab_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(CountCode(report->diagnostics,
                      DiagnosticCode::kQuerySubsumedByQuery),
            1u);
  EXPECT_EQ(report->diagnostics.front().span, "q1 vs q2");
  EXPECT_EQ(report->diagnostics.front().severity, Severity::kWarning);
}

TEST_F(LintTest, EquivalentQueriesFlaggedBothWays) {
  schema::Schema schema = DocSchema();
  query::SelectionQuery q1 = ParseQuery("select(*; para sec+ doc)");
  query::SelectionQuery q2 = ParseQuery("select(*; para sec* sec doc)");
  auto report = LintQueryOverlap(schema, q1, q2, vocab_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(CountCode(report->diagnostics,
                      DiagnosticCode::kQuerySubsumedByQuery),
            2u);
}

// ---------------------------------------------------------------------------
// Pre-flight hooks.

TEST_F(LintTest, EvaluatorPreflightRejectsImpossibleTriplet) {
  // The elder condition c<{}> denotes {}: the triplet can never match.
  query::SelectionQuery query =
      ParseQuery("select(*; [c<{}>; para; *] sec doc)");
  std::vector<Diagnostic> diagnostics;
  auto eval = query::SelectionEvaluator::Create(
      query, ExecBudget{}, vocab_, LintOptions{}, &diagnostics);
  EXPECT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(HasErrors(diagnostics));
  EXPECT_GE(CountCode(diagnostics, DiagnosticCode::kEmptyExpression), 1u);
  // Spans say where inside the query the dead condition sits.
  EXPECT_NE(diagnostics.front().span.find("elder"), std::string::npos);
}

TEST_F(LintTest, EvaluatorPreflightCanBeAdvisory) {
  query::SelectionQuery query =
      ParseQuery("select(*; [c<{}>; para; *] sec doc)");
  LintOptions advisory;
  advisory.fail_on_error = false;
  std::vector<Diagnostic> diagnostics;
  auto eval = query::SelectionEvaluator::Create(
      query, ExecBudget{}, vocab_, advisory, &diagnostics);
  EXPECT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_TRUE(HasErrors(diagnostics));  // findings still surface
}

TEST_F(LintTest, EvaluatorPreflightPassesCleanQueries) {
  query::SelectionQuery query = ParseQuery("select(*; para sec+ doc)");
  std::vector<Diagnostic> diagnostics;
  auto eval = query::SelectionEvaluator::Create(
      query, ExecBudget{}, vocab_, LintOptions{}, &diagnostics);
  EXPECT_TRUE(eval.ok()) << eval.status().ToString();
  EXPECT_FALSE(HasErrors(diagnostics));
}

TEST_F(LintTest, PhrEvaluatorPreflightRejectsEmptyCondition) {
  auto phr = phr::ParsePhr("[c<{}> a; para; *]", vocab_);
  ASSERT_TRUE(phr.ok()) << phr.status().ToString();
  auto eval = query::PhrEvaluator::Create(*phr, ExecBudget{}, vocab_,
                                          LintOptions{});
  EXPECT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LintTest, TransformPreflightRejectsUnsatisfiableQuery) {
  schema::Schema schema = DocSchema();
  query::SelectionQuery unsat = ParseQuery("select(*; bogus sec* doc)");
  std::vector<Diagnostic> diagnostics;
  auto product = schema::BuildMatchIdentifyingProduct(
      schema, unsat, ExecBudget{}, LintOptions{}, &diagnostics);
  EXPECT_FALSE(product.ok());
  EXPECT_EQ(product.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CountCode(diagnostics,
                      DiagnosticCode::kQueryUnsatisfiableUnderSchema),
            1u);

  LintOptions advisory;
  advisory.fail_on_error = false;
  std::vector<Diagnostic> advisory_diags;
  auto tolerated = schema::BuildMatchIdentifyingProduct(
      schema, unsat, ExecBudget{}, advisory, &advisory_diags);
  EXPECT_TRUE(tolerated.ok()) << tolerated.status().ToString();
  EXPECT_EQ(CountCode(advisory_diags,
                      DiagnosticCode::kQueryUnsatisfiableUnderSchema),
            1u);
}

TEST_F(LintTest, TransformPreflightPassesSatisfiableQuery) {
  schema::Schema schema = DocSchema();
  query::SelectionQuery sat = ParseQuery("select(*; para sec+ doc)");
  auto product = schema::BuildMatchIdentifyingProduct(
      schema, sat, ExecBudget{}, LintOptions{});
  EXPECT_TRUE(product.ok()) << product.status().ToString();
}

TEST_F(LintTest, ErrorStatusHonorsTheBeginIndex) {
  std::vector<Diagnostic> diagnostics(2);
  diagnostics[0].severity = Severity::kError;
  diagnostics[0].message = "stale";
  diagnostics[1].severity = Severity::kWarning;
  EXPECT_FALSE(ErrorStatus(diagnostics, 0).ok());
  EXPECT_TRUE(ErrorStatus(diagnostics, 1).ok());  // pre-existing error skipped
  EXPECT_TRUE(ErrorStatus(diagnostics, 2).ok());
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing: names, formatting, JSON round trip.

TEST(DiagnosticsTest, EveryCodeHasStableUniqueNames) {
  const DiagnosticCode all[] = {
      DiagnosticCode::kEmptyExpression,
      DiagnosticCode::kEmptySubexpression,
      DiagnosticCode::kEmptyAutomaton,
      DiagnosticCode::kEmptySchema,
      DiagnosticCode::kUnreachableStates,
      DiagnosticCode::kUselessStates,
      DiagnosticCode::kDeterminizationBlowupRisk,
      DiagnosticCode::kAmbiguousExpression,
      DiagnosticCode::kQueryUnsatisfiableUnderSchema,
      DiagnosticCode::kQuerySubsumedByQuery,
  };
  std::vector<std::string> names;
  std::vector<std::string> slugs;
  for (DiagnosticCode code : all) {
    names.emplace_back(DiagnosticCodeName(code));
    slugs.emplace_back(DiagnosticCodeSlug(code));
    EXPECT_EQ(names.back().substr(0, 3), "HQL");
  }
  EXPECT_EQ(names.front(), "HQL001");
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  std::sort(slugs.begin(), slugs.end());
  EXPECT_EQ(std::adjacent_find(slugs.begin(), slugs.end()), slugs.end());
}

TEST(DiagnosticsTest, FormatIsReadable) {
  Diagnostic d{Severity::kError, DiagnosticCode::kEmptyExpression, "a<{}>",
               "denotes the empty language", "remove the {} branch"};
  EXPECT_EQ(FormatDiagnostic(d),
            "error[HQL001] a<{}>: denotes the empty language "
            "(hint: remove the {} branch)");
}

TEST(DiagnosticsTest, JsonRoundTripsEveryCodeAndSeverity) {
  const DiagnosticCode all[] = {
      DiagnosticCode::kEmptyExpression,
      DiagnosticCode::kEmptySubexpression,
      DiagnosticCode::kEmptyAutomaton,
      DiagnosticCode::kEmptySchema,
      DiagnosticCode::kUnreachableStates,
      DiagnosticCode::kUselessStates,
      DiagnosticCode::kDeterminizationBlowupRisk,
      DiagnosticCode::kAmbiguousExpression,
      DiagnosticCode::kQueryUnsatisfiableUnderSchema,
      DiagnosticCode::kQuerySubsumedByQuery,
  };
  const Severity severities[] = {Severity::kNote, Severity::kWarning,
                                 Severity::kError};
  std::vector<Diagnostic> diagnostics;
  int i = 0;
  for (DiagnosticCode code : all) {
    Diagnostic d;
    d.severity = severities[i++ % 3];
    d.code = code;
    d.span = "span " + std::to_string(i);
    d.message = "msg with \"quotes\", back\\slash,\nnewline\tand tab";
    d.hint = i % 2 ? "" : "a hint\rwith control \x01 char";
    diagnostics.push_back(std::move(d));
  }
  std::string json = DiagnosticsToJson(diagnostics);
  auto parsed = ParseDiagnosticsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(*parsed, diagnostics);
  // Serialization is deterministic: a second trip emits identical bytes.
  EXPECT_EQ(DiagnosticsToJson(*parsed), json);
}

TEST(DiagnosticsTest, EmptyReportRoundTrips) {
  auto parsed = ParseDiagnosticsJson(DiagnosticsToJson({}));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
}

TEST(DiagnosticsTest, MalformedJsonIsRejected) {
  for (const char* bad : {
           "",                                         // no array
           "{",                                        // not an array
           "[{]",                                      // broken object
           "[{\"severity\":\"error\"}]",               // missing code
           "[{\"code\":\"HQL001\"}]",                  // missing severity
           "[{\"severity\":\"fatal\",\"code\":\"HQL001\"}]",  // bad severity
           "[{\"severity\":\"error\",\"code\":\"HQL999\"}]",  // unknown code
           "[{\"severity\":\"error\",\"code\":\"HQL001\","
           "\"extra\":\"x\"}]",                        // unknown key
           "[{\"severity\":\"error\",\"code\":\"HQL001\"}] trailing",
       }) {
    auto parsed = ParseDiagnosticsJson(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(DiagnosticsTest, SeverityHelpers) {
  std::vector<Diagnostic> diagnostics(2);
  diagnostics[0].severity = Severity::kNote;
  diagnostics[1].severity = Severity::kWarning;
  EXPECT_FALSE(HasErrors(diagnostics));
  EXPECT_EQ(MaxSeverity(diagnostics), Severity::kWarning);
  diagnostics.push_back({});
  diagnostics.back().severity = Severity::kError;
  EXPECT_TRUE(HasErrors(diagnostics));
  EXPECT_EQ(MaxSeverity(diagnostics), Severity::kError);
  EXPECT_EQ(MaxSeverity({}), Severity::kNote);
}

}  // namespace
}  // namespace hedgeq::lint
