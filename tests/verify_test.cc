#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "lint/diagnostics.h"
#include "phr/phr.h"
#include "query/phr_compile.h"
#include "query/selection.h"
#include "schema/match_identify.h"
#include "schema/schema.h"
#include "schema/transform.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "verify/certificate.h"
#include "verify/checker.h"
#include "verify/enumerate.h"
#include "verify/naive_match.h"
#include "verify/oracle.h"
#include "workload/generators.h"

namespace hedgeq::verify {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;
using lint::Diagnostic;
using lint::DiagnosticCode;

bool HasCode(const std::vector<Diagnostic>& diagnostics,
             DiagnosticCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

std::string Render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += lint::FormatDiagnostic(d) + "\n";
  }
  return out;
}

// Expressions covering every HRE construct, including the substitution
// forms (embed, vertical closure) the certificates must handle.
const char* const kSweep[] = {
    "()",
    "{}",
    "a",
    "$x",
    "a<b*>",
    "(a|b)* c<$x>",
    "a<(b|$x)* c?>+",
    "(b|c) @z a<%z>",
    "a<%z> @z a<%z>",
    "a<%z>*^z",
    "b @z (a<%z> a<%z>)^z",
    "(article<section* figure>|$x)*",
};

class VerifyTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  hre::Hre Parse(const std::string& text) {
    auto e = hre::ParseHre(text, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  Hedge ParseH(const std::string& text) {
    auto h = hedge::ParseHedge(text, vocab_);
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    return std::move(h).value();
  }

  Vocabulary vocab_;
};

// --- Positive certification: the constructions' own witnesses check clean.

TEST_F(VerifyTest, PipelineCertifiesCleanAcrossSweep) {
  for (const char* text : kSweep) {
    SCOPED_TRACE(text);
    hre::Hre e = Parse(text);
    BudgetScope scope{ExecBudget{}};
    hre::CompileTrace trace;
    auto nha = hre::CompileHre(e, scope, &trace);
    ASSERT_TRUE(nha.ok()) << nha.status().ToString();
    EXPECT_EQ(Render(CheckCompile(e, *nha, trace)), "");

    automata::TrimWitness trim;
    automata::Nha trimmed = automata::PruneNha(*nha, nullptr, &trim);
    EXPECT_EQ(Render(CheckTrim(*nha, trimmed, trim)), "");

    automata::DeterminizeWitness witness;
    auto det = automata::Determinize(*nha, scope, &witness);
    ASSERT_TRUE(det.ok()) << det.status().ToString();
    EXPECT_EQ(Render(CheckDeterminize(*nha, *det, witness)), "");

    // The trimmed automaton must also certify.
    automata::DeterminizeWitness witness2;
    auto det2 = automata::Determinize(trimmed, scope, &witness2);
    ASSERT_TRUE(det2.ok());
    EXPECT_EQ(Render(CheckDeterminize(trimmed, *det2, witness2)), "");
  }
}

TEST_F(VerifyTest, LazyAuditCertifiesClean) {
  hre::Hre e = Parse("(a<b* $x>|b)*");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  automata::LazyDha lazy(*nha);
  std::vector<automata::LazyAuditEntry> audit;
  lazy.EnableAudit(&audit);
  for (const char* doc : {"", "b", "a<$x>", "a<b b $x> b", "a<a<$x>>"}) {
    lazy.Accepts(ParseH(doc));
  }
  EXPECT_FALSE(audit.empty());
  EXPECT_EQ(Render(CheckLazyAudit(*nha, audit)), "");
}

TEST_F(VerifyTest, ProjectionCertifiesCleanOnRandomDocs) {
  auto phr = phr::ParsePhr("[a0*; a1; *] (a0|a1|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = query::CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  std::vector<hedge::SymbolId> symbols = {vocab_.symbols.Intern("a0"),
                                          vocab_.symbols.Intern("a1"),
                                          vocab_.symbols.Intern("a2")};
  std::vector<hedge::VarId> vars = {vocab_.variables.Intern("x")};
  schema::MatchIdentifying mi =
      schema::BuildMatchIdentifying(*compiled, symbols, vars);
  Rng rng(7);
  workload::RandomHedgeOptions options;
  options.num_symbols = 3;
  for (int i = 0; i < 20; ++i) {
    options.target_nodes = 1 + static_cast<size_t>(rng.Below(30));
    Hedge doc = workload::RandomHedge(rng, vocab_, options);
    EXPECT_EQ(Render(CheckProjection(mi, *compiled, doc)), "");
  }
}

TEST_F(VerifyTest, PhrWitnessCertifiesClean) {
  auto phr = phr::ParsePhr("[a0*; a1; *] (a0|a1|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  BudgetScope scope{ExecBudget{}};
  query::PhrWitness witness;
  auto compiled = query::CompilePhr(*phr, scope, &witness);
  ASSERT_TRUE(compiled.ok());
  automata::Determinized det{compiled->dha(), compiled->subsets()};
  EXPECT_EQ(Render(CheckDeterminize(witness.union_nha, det, witness.det)),
            "");
}

// --- The seeded construction bug: flipped final acceptance must be caught
// by the checker (HQV003) and the differential oracle (HQV009).

TEST_F(VerifyTest, SeededFlipFinalCaughtByCheckerAndOracle) {
  hre::Hre e = Parse("a b*");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());

  failpoint::Arm("determinize/flip-final");
#ifdef HEDGEQ_CERTIFY
  // With inline certification linked in, the corrupted construction cannot
  // even return: the hook rejects the witness inside Determinize.
  {
    BudgetScope inline_scope{ExecBudget{}};
    auto rejected = automata::Determinize(*nha, inline_scope);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
  }
  // Stand the hook down so the bug can reach the checker and the oracle.
  automata::DeterminizeValidationHook saved =
      automata::GetDeterminizeValidationHook();
  automata::SetDeterminizeValidationHook(nullptr);
#endif

  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(*nha, scope, &witness);
  ASSERT_TRUE(det.ok());
  std::vector<Diagnostic> diagnostics =
      CheckDeterminize(*nha, *det, witness);
  EXPECT_TRUE(HasCode(diagnostics, DiagnosticCode::kFinalSetInconsistent))
      << Render(diagnostics);
  EXPECT_FALSE(HasCode(diagnostics, DiagnosticCode::kDifferentialDisagreement));

  auto report = RunDifferentialOracle(e, vocab_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(HasCode(report->diagnostics,
                      DiagnosticCode::kDifferentialDisagreement))
      << Render(report->diagnostics);

  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  automata::SetDeterminizeValidationHook(saved);
#endif

  // Disarmed, both are clean again.
  automata::DeterminizeWitness clean_witness;
  BudgetScope scope2{ExecBudget{}};
  auto clean = automata::Determinize(*nha, scope2, &clean_witness);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(Render(CheckDeterminize(*nha, *clean, clean_witness)), "");
  auto clean_report = RunDifferentialOracle(e, vocab_);
  ASSERT_TRUE(clean_report.ok());
  EXPECT_EQ(Render(clean_report->diagnostics), "");
}

// --- Tamper detection: each corruption maps to its HQV code.

TEST_F(VerifyTest, TamperedHorizontalWitnessRejected) {
  hre::Hre e = Parse("a<b*>");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(*nha, scope, &witness);
  ASSERT_TRUE(det.ok());
  ASSERT_FALSE(witness.h_sets.empty());
  Bitset& h0 = witness.h_sets[det->dha.h_start()];
  h0.Set(0);
  h0.Reset(1);  // guarantee a change whatever the set was
  std::vector<Diagnostic> diagnostics =
      CheckDeterminize(*nha, *det, witness);
  EXPECT_FALSE(diagnostics.empty());
}

TEST_F(VerifyTest, TamperedAssignmentRejected) {
  hre::Hre e = Parse("a");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(*nha, scope, &witness);
  ASSERT_TRUE(det.ok());
  hedge::SymbolId a = *vocab_.symbols.Find("a");
  // 'a' assigned at the empty-children horizontal start must be nonempty;
  // redirect it to the sink.
  ASSERT_NE(det->dha.Assign(a, det->dha.h_start()), det->dha.sink());
  det->dha.SetAssign(a, det->dha.h_start(), det->dha.sink());
  std::vector<Diagnostic> diagnostics =
      CheckDeterminize(*nha, *det, witness);
  EXPECT_TRUE(HasCode(diagnostics, DiagnosticCode::kAssignmentIncoherent))
      << Render(diagnostics);
}

TEST_F(VerifyTest, TamperedTrimWitnessRejected) {
  hre::Hre e = Parse("(a|b<{}>)*");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  automata::TrimWitness witness;
  automata::Nha trimmed = automata::PruneNha(*nha, nullptr, &witness);
  ASSERT_GT(witness.useful.size(), 0u);
  if (witness.useful.Test(0)) {
    witness.useful.Reset(0);
  } else {
    witness.useful.Set(0);
  }
  std::vector<Diagnostic> diagnostics = CheckTrim(*nha, trimmed, witness);
  EXPECT_TRUE(HasCode(diagnostics, DiagnosticCode::kTrimWitnessMismatch))
      << Render(diagnostics);
}

TEST_F(VerifyTest, TamperedCompileTraceRejected) {
  hre::Hre e = Parse("a<b*> | $x");
  BudgetScope scope{ExecBudget{}};
  hre::CompileTrace trace;
  auto nha = hre::CompileHre(e, scope, &trace);
  ASSERT_TRUE(nha.ok());
  ASSERT_GE(trace.entries.size(), 2u);
  hre::CompileTrace wrong_order = trace;
  std::swap(wrong_order.entries[0], wrong_order.entries[1]);
  EXPECT_TRUE(HasCode(CheckCompile(e, *nha, wrong_order),
                      DiagnosticCode::kCompileWitnessRejected));
  hre::CompileTrace wrong_counts = trace;
  wrong_counts.entries.back().states_after += 1;
  EXPECT_TRUE(HasCode(CheckCompile(e, *nha, wrong_counts),
                      DiagnosticCode::kCompileWitnessRejected));
}

TEST_F(VerifyTest, TamperedLazyAuditRejected) {
  hre::Hre e = Parse("a<b*>");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  automata::LazyDha lazy(*nha);
  std::vector<automata::LazyAuditEntry> audit;
  lazy.EnableAudit(&audit);
  lazy.Accepts(ParseH("a<b>"));
  ASSERT_FALSE(audit.empty());
  automata::LazyAuditEntry& entry = audit.back();
  if (entry.result.size() > 0) {
    if (entry.result.Test(0)) {
      entry.result.Reset(0);
    } else {
      entry.result.Set(0);
    }
  }
  EXPECT_TRUE(HasCode(CheckLazyAudit(*nha, audit),
                      DiagnosticCode::kLazyAuditMismatch));
}

TEST_F(VerifyTest, MismatchedProjectionRejected) {
  auto phr = phr::ParsePhr("[a0*; a1; *] (a0|a1|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = query::CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  std::vector<hedge::SymbolId> symbols = {vocab_.symbols.Intern("a0"),
                                          vocab_.symbols.Intern("a1"),
                                          vocab_.symbols.Intern("a2")};
  std::vector<hedge::VarId> vars = {vocab_.variables.Intern("x")};
  schema::MatchIdentifying mi =
      schema::BuildMatchIdentifying(*compiled, symbols, vars);
  // A compiled automaton for a different PHR over a disjoint alphabet: the
  // unique run cannot project onto its DHA's run.
  auto other = phr::ParsePhr("[b0*; b1; *] (b0|b1)*", vocab_);
  ASSERT_TRUE(other.ok());
  auto other_compiled = query::CompilePhr(*other);
  ASSERT_TRUE(other_compiled.ok());
  Hedge doc = ParseH("a0<> a1<> a2<$x>");
  std::vector<Diagnostic> diagnostics =
      CheckProjection(mi, *other_compiled, doc);
  EXPECT_TRUE(HasCode(diagnostics,
                      DiagnosticCode::kProjectionHomomorphismViolated))
      << Render(diagnostics);
}

// --- Certificates: round trip and malformed-input rejection.

TEST_F(VerifyTest, CertificateRoundTripsByteIdentically) {
  // The two-variable case pins canonical var ordering in SerializeNha
  // (var_map is unordered; a fuzz run caught the nondeterministic order).
  for (const char* text :
       {"a<b*> | c", "(b|c) @z a<%z>", "($xa|b)* c<$x a*>"}) {
    SCOPED_TRACE(text);
    hre::Hre e = Parse(text);
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(e, scope);
    ASSERT_TRUE(nha.ok());

    auto det_cert = BuildDeterminizeCertificate(*nha, scope);
    ASSERT_TRUE(det_cert.ok()) << det_cert.status().ToString();
    EXPECT_EQ(Render(CheckCertificate(*det_cert)), "");
    std::string serialized = SerializeCertificate(*det_cert, vocab_);
    auto back = DeserializeCertificate(serialized, vocab_);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(SerializeCertificate(*back, vocab_), serialized);
    EXPECT_EQ(Render(CheckCertificate(*back)), "");

    Certificate trim_cert = BuildTrimCertificate(*nha);
    EXPECT_EQ(Render(CheckCertificate(trim_cert)), "");
    std::string trim_serialized = SerializeCertificate(trim_cert, vocab_);
    auto trim_back = DeserializeCertificate(trim_serialized, vocab_);
    ASSERT_TRUE(trim_back.ok()) << trim_back.status().ToString();
    EXPECT_EQ(SerializeCertificate(*trim_back, vocab_), trim_serialized);
    EXPECT_EQ(Render(CheckCertificate(*trim_back)), "");
  }
}

TEST_F(VerifyTest, MalformedCertificatesRejected) {
  hre::Hre e = Parse("a<b*>");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  auto cert = BuildDeterminizeCertificate(*nha, scope);
  ASSERT_TRUE(cert.ok());
  std::string good = SerializeCertificate(*cert, vocab_);

  EXPECT_FALSE(DeserializeCertificate("", vocab_).ok());
  EXPECT_FALSE(DeserializeCertificate("garbage\n", vocab_).ok());
  EXPECT_FALSE(DeserializeCertificate("cert 2 determinize\n", vocab_).ok());
  EXPECT_FALSE(DeserializeCertificate("cert 1 bogus\n", vocab_).ok());
  // Truncation anywhere must be caught by the line-count framing.
  for (size_t cut : {good.size() / 4, good.size() / 2, good.size() - 2}) {
    EXPECT_FALSE(DeserializeCertificate(good.substr(0, cut), vocab_).ok())
        << "cut at " << cut;
  }
  // Blown-up witness-set width: structurally parseable, so it may pass
  // deserialization, but then the independent checker must reject it.
  std::string corrupt = good;
  size_t pos = corrupt.find("\nset ");
  ASSERT_NE(pos, std::string::npos);
  corrupt.replace(pos, 5, "\nset 99999 ");
  auto corrupted = DeserializeCertificate(corrupt, vocab_);
  if (corrupted.ok()) {
    EXPECT_FALSE(CheckCertificate(*corrupted).empty());
  }
}

TEST_F(VerifyTest, DiagnosticsToStatusCollapsesFindings) {
  EXPECT_TRUE(DiagnosticsToStatus({}).ok());
  Diagnostic d;
  d.severity = lint::Severity::kError;
  d.code = DiagnosticCode::kFinalSetInconsistent;
  d.span = "final/0";
  d.message = "boom";
  Status status = DiagnosticsToStatus({d});
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("HQV003"), std::string::npos);
}

TEST_F(VerifyTest, HqvDiagnosticsRoundTripThroughJson) {
  std::vector<Diagnostic> diagnostics;
  Diagnostic d;
  d.severity = lint::Severity::kError;
  d.code = DiagnosticCode::kDifferentialDisagreement;
  d.span = "hedge/a<b>";
  d.message = "engines disagree: nha=1 eager=0";
  diagnostics.push_back(d);
  std::string json = lint::DiagnosticsToJson(diagnostics);
  auto back = lint::ParseDiagnosticsJson(json);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(lint::DiagnosticsToJson(*back), json);
  EXPECT_TRUE(HasCode(*back, DiagnosticCode::kDifferentialDisagreement));
}

// --- Enumeration: the recurrences and the enumerator must agree.

TEST_F(VerifyTest, EnumerationMatchesCountingRecurrences) {
  EnumVocab ev;
  ev.symbols = {vocab_.symbols.Intern("a"), vocab_.symbols.Intern("b")};
  ev.variables = {vocab_.variables.Intern("x")};
  ev.substs = {vocab_.substs.Intern("z")};
  EXPECT_EQ(CountHedges(ev, 0), 1u);
  EXPECT_EQ(CountTrees(ev, 1), 4u);
  for (size_t size = 0; size <= 4; ++size) {
    SCOPED_TRACE(size);
    size_t emitted = EnumerateHedges(ev, size, size_t{1} << 20,
                                     [&](const Hedge& h) {
                                       EXPECT_EQ(h.num_nodes(), size);
                                       return true;
                                     });
    EXPECT_EQ(emitted, CountHedges(ev, size));
  }
}

TEST_F(VerifyTest, SamplingIsSizedAndDeterministic) {
  EnumVocab ev;
  ev.symbols = {vocab_.symbols.Intern("a"), vocab_.symbols.Intern("b")};
  ev.variables = {vocab_.variables.Intern("x")};
  SplitMix64 rng1(42), rng2(42);
  for (int i = 0; i < 50; ++i) {
    Hedge h1 = SampleHedge(ev, 6, rng1);
    Hedge h2 = SampleHedge(ev, 6, rng2);
    EXPECT_EQ(h1.num_nodes(), 6u);
    EXPECT_TRUE(h1.EqualTo(h2));
  }
  EnumVocab empty;
  SplitMix64 rng3(1);
  EXPECT_TRUE(SampleHedge(empty, 3, rng3).empty());
}

// --- The naive reference matcher: pinned substitution semantics.

TEST_F(VerifyTest, NaiveMatcherPinnedSemantics) {
  struct Case {
    const char* expr;
    const char* hedge;
    bool expect;
  };
  const Case cases[] = {
      {"(b|c) @z a<%z>", "a<b>", true},
      {"(b|c) @z a<%z>", "a<c>", true},
      {"(b|c) @z a<%z>", "a<>", false},
      {"(b|c) @z a<%z>", "a<%z>", false},
      {"(b|c) @z a<%z>", "b", false},
      {"a<%z> @z a<%z>", "a<a<%z>>", true},
      {"a<%z> @z a<%z>", "a<%z>", false},
      {"a<%z> @z a<%z>", "a<a<b>>", false},
      {"a<%z>*^z", "", true},
      {"a<%z>*^z", "a<%z>", true},
      {"a<%z>*^z", "a<a<%z>>", true},
      {"a<%z>*^z", "a<a<%z> a<%z>>", true},
      {"a<%z>*^z", "b<%z>", false},
      {"a<%z>*^z", "%z", false},
      {"b @z (a<%z> a<%z>)^z", "a<b> a<b>", true},
      {"b @z (a<%z> a<%z>)^z", "a<a<b> a<b>> a<b>", true},
      {"b @z (a<%z> a<%z>)^z", "a<b>", false},
      {"b @z (a<%z> a<%z>)^z", "a<%z> a<%z>", false},
      {"$x*", "$x $x $x", true},
      {"$x*", "$x $y", false},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(std::string(c.expr) + " vs " + c.hedge);
    std::optional<bool> verdict = NaiveHreMatch(Parse(c.expr), ParseH(c.hedge));
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(*verdict, c.expect);
  }
}

TEST_F(VerifyTest, NaiveMatcherReportsUnknownOnBudget) {
  hre::Hre e = Parse("(a*)* (a*)* (a*)* (a*)*");
  Hedge h = ParseH("a a a a a a a a a a a a b");
  NaiveMatchOptions options;
  options.max_steps = 50;
  EXPECT_FALSE(NaiveHreMatch(e, h, options).has_value());
}

// --- The differential oracle.

TEST_F(VerifyTest, OracleCleanAcrossSweep) {
  for (const char* text : kSweep) {
    SCOPED_TRACE(text);
    hre::Hre e = Parse(text);
    OracleOptions options;
    options.max_size = 3;
    options.samples = 16;
    auto report = RunDifferentialOracle(e, vocab_, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(Render(report->diagnostics), "");
    EXPECT_GT(report->hedges_checked, 0u);
    EXPECT_GT(report->enumerated, 0u);
    EXPECT_TRUE(report->eager_available);
  }
}

TEST_F(VerifyTest, OracleCoversStreamingAndValidatorTiers) {
  hre::Hre e = Parse("doc<(sec|$x)*>");
  auto report = RunDifferentialOracle(e, vocab_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(Render(report->diagnostics), "");
  EXPECT_GT(report->streaming_checked, 0u);
  EXPECT_GT(report->validator_checked, 0u);
  EXPECT_GT(report->sampled, 0u);
}

// --- Counterexample shrinking (delta debugging over hedges).

TEST_F(VerifyTest, ShrinkHedgeReducesToTheFailureCore) {
  // Predicate: "some node is labelled `bad`". Deleting subtrees and
  // hoisting children must strip everything else away, leaving the single
  // 1-minimal node.
  hedge::SymbolId bad = vocab_.symbols.Intern("bad");
  Hedge start = ParseH("a<b c<bad d>> e");
  ASSERT_GT(start.num_nodes(), 1u);
  auto has_bad = [&](const Hedge& h) {
    for (hedge::NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind == hedge::LabelKind::kSymbol &&
          h.label(n).id == bad) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(has_bad(start));

  size_t checks = 0;
  Hedge small = ShrinkHedge(start, has_bad, /*max_checks=*/1024, &checks);
  EXPECT_EQ(small.num_nodes(), 1u) << small.ToString(vocab_);
  EXPECT_TRUE(has_bad(small)) << "shrinking must preserve the failure";
  EXPECT_GT(checks, 0u);
  EXPECT_LE(checks, 1024u);
}

TEST_F(VerifyTest, ShrinkHedgeRespectsTheCheckCap) {
  hedge::SymbolId bad = vocab_.symbols.Intern("bad");
  Hedge start = ParseH("a<b c<bad d>> e");
  auto has_bad = [&](const Hedge& h) {
    for (hedge::NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind == hedge::LabelKind::kSymbol &&
          h.label(n).id == bad) {
        return true;
      }
    }
    return false;
  };
  // A cap of 1 allows a single candidate; the result can shrink at most one
  // step, and the budget is reported as fully spent.
  size_t checks = 0;
  Hedge barely = ShrinkHedge(start, has_bad, /*max_checks=*/1, &checks);
  EXPECT_EQ(checks, 1u);
  EXPECT_GE(barely.num_nodes(), start.num_nodes() - 1);
  EXPECT_TRUE(has_bad(barely));

  // A zero cap returns the input untouched.
  Hedge untouched = ShrinkHedge(start, has_bad, /*max_checks=*/0, &checks);
  EXPECT_EQ(checks, 0u);
  EXPECT_EQ(untouched.num_nodes(), start.num_nodes());
}

TEST_F(VerifyTest, ShrinkHedgeIsOneMinimalForSparsePredicates) {
  // Predicate: "at least two `keep` nodes" — the minimum is two nodes, and
  // a 1-minimal shrink must land exactly there, never at one.
  hedge::SymbolId keep = vocab_.symbols.Intern("keep");
  Hedge start = ParseH("x<keep<y> z> keep w");
  auto two_keeps = [&](const Hedge& h) {
    size_t count = 0;
    for (hedge::NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind == hedge::LabelKind::kSymbol &&
          h.label(n).id == keep) {
        ++count;
      }
    }
    return count >= 2;
  };
  ASSERT_TRUE(two_keeps(start));
  Hedge small = ShrinkHedge(start, two_keeps, /*max_checks=*/1024);
  EXPECT_EQ(small.num_nodes(), 2u) << small.ToString(vocab_);
  EXPECT_TRUE(two_keeps(small));
}

TEST_F(VerifyTest, OracleShrinksItsCounterexamples) {
  // The seeded flip-final bug makes the engines disagree; with shrinking
  // on (the default), the reported hedge must itself still disagree and be
  // 1-minimal: removing any further node loses the disagreement. For this
  // bug the minimal counterexample is the empty hedge, which the
  // enumeration tier reaches first — so also check the option plumbing by
  // turning shrinking off.
  hre::Hre e = Parse("a b*");
#ifdef HEDGEQ_CERTIFY
  automata::DeterminizeValidationHook saved =
      automata::GetDeterminizeValidationHook();
  automata::SetDeterminizeValidationHook(nullptr);
#endif
  failpoint::Arm("determinize/flip-final");

  OracleOptions with_shrink;
  auto report = RunDifferentialOracle(e, vocab_, with_shrink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(HasCode(report->diagnostics,
                      DiagnosticCode::kDifferentialDisagreement))
      << Render(report->diagnostics);

  OracleOptions no_shrink;
  no_shrink.shrink = false;
  auto raw_report = RunDifferentialOracle(e, vocab_, no_shrink);
  ASSERT_TRUE(raw_report.ok());
  EXPECT_TRUE(HasCode(raw_report->diagnostics,
                      DiagnosticCode::kDifferentialDisagreement));
  EXPECT_EQ(raw_report->shrink_checks, 0u)
      << "shrink=false must not spend re-checks";

  // Every reported hedge is no larger than its no-shrink counterpart, and
  // the smallest finding is the truly minimal counterexample for this bug:
  // the empty hedge (rendered with an empty span suffix).
  ASSERT_FALSE(report->diagnostics.empty());
  EXPECT_EQ(report->diagnostics.front().span, "hedge/")
      << Render(report->diagnostics);

  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  automata::SetDeterminizeValidationHook(saved);
#endif
}

// --- Minimization certificates (HQV010).

TEST_F(VerifyTest, MinimizeCertifiesCleanAcrossSweep) {
  for (const char* text : kSweep) {
    SCOPED_TRACE(text);
    hre::Hre e = Parse(text);
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(e, scope);
    ASSERT_TRUE(nha.ok());
    auto det = automata::Determinize(*nha, scope);
    ASSERT_TRUE(det.ok());
    automata::MinimizeWitness witness;
    automata::Dha minimal = automata::MinimizeDha(det->dha, &witness);
    EXPECT_EQ(Render(CheckMinimize(det->dha, minimal, witness)), "");
  }
}

TEST_F(VerifyTest, SeededNonBisimilarMergeCaughtByCheckMinimize) {
  hre::Hre e = Parse("(a<b*> | b<a*>)*");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  auto det = automata::Determinize(*nha, scope);
  ASSERT_TRUE(det.ok());
#ifdef HEDGEQ_CERTIFY
  // The inline minimize hook aborts on a rejected witness; stand it down
  // so the seeded bug reaches the independent checker.
  automata::MinimizeValidationHook saved =
      automata::GetMinimizeValidationHook();
  automata::SetMinimizeValidationHook(nullptr);
#endif
  failpoint::Arm("minimize/merge-nonbisimilar");
  automata::MinimizeWitness witness;
  automata::Dha merged = automata::MinimizeDha(det->dha, &witness);
  std::vector<Diagnostic> diagnostics =
      CheckMinimize(det->dha, merged, witness);
  EXPECT_TRUE(HasCode(diagnostics, DiagnosticCode::kMinimizeWitnessRejected))
      << Render(diagnostics);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  automata::SetMinimizeValidationHook(saved);
#endif
  // Disarmed, the same pipeline certifies clean again.
  automata::MinimizeWitness clean;
  automata::Dha minimal = automata::MinimizeDha(det->dha, &clean);
  EXPECT_EQ(Render(CheckMinimize(det->dha, minimal, clean)), "");
}

TEST_F(VerifyTest, TamperedMinimizeWitnessRejected) {
  hre::Hre e = Parse("(a<b*> | b<a*>)*");
  BudgetScope scope{ExecBudget{}};
  auto nha = hre::CompileHre(e, scope);
  ASSERT_TRUE(nha.ok());
  auto det = automata::Determinize(*nha, scope);
  ASSERT_TRUE(det.ok());
  automata::MinimizeWitness witness;
  automata::Dha minimal = automata::MinimizeDha(det->dha, &witness);
  ASSERT_GE(witness.qblock.size(), 2u);
  // Rerouting one input state to a different block must break either the
  // congruence or the final-language check — never pass silently.
  automata::MinimizeWitness tampered = witness;
  tampered.qblock[0] =
      (tampered.qblock[0] + 1) % minimal.num_states();
  EXPECT_FALSE(CheckMinimize(det->dha, minimal, tampered).empty());
}

// --- Theorem 4 product witnesses (HQV011).

TEST_F(VerifyTest, PhrProductWitnessCertifiesClean) {
  for (const char* text :
       {"[a0*; a1; *] (a0|a1|a2)*", "[(); a0; a1] [a1; a0; ()]",
        "[(a0|$x)*; a1; *] (a0|a1)*"}) {
    SCOPED_TRACE(text);
    auto phr = phr::ParsePhr(text, vocab_);
    ASSERT_TRUE(phr.ok());
    BudgetScope scope{ExecBudget{}};
    query::PhrWitness witness;
    auto compiled = query::CompilePhr(*phr, scope, &witness);
    ASSERT_TRUE(compiled.ok());
    EXPECT_EQ(Render(CheckPhrProduct(*phr, *compiled, witness)), "");
  }
}

TEST_F(VerifyTest, TamperedPhrProductWitnessRejected) {
  auto phr = phr::ParsePhr("[a0*; a1; *] (a0|a1|a2)*", vocab_);
  ASSERT_TRUE(phr.ok());
  BudgetScope scope{ExecBudget{}};
  query::PhrWitness witness;
  auto compiled = query::CompilePhr(*phr, scope, &witness);
  ASSERT_TRUE(compiled.ok());
  // Claiming the elder-class component accepts everything breaks the
  // saturation tables against the recomputed component acceptance.
  query::PhrWitness tampered = witness;
  ASSERT_FALSE(tampered.elder_any.empty());
  tampered.elder_any[0] = !tampered.elder_any[0];
  std::vector<Diagnostic> diagnostics =
      CheckPhrProduct(*phr, *compiled, tampered);
  EXPECT_FALSE(diagnostics.empty());
}

// --- Containment certificates (HQV012).

constexpr const char* kContainGrammar =
    "start = Doc\nDoc = doc<A*>\nA = a<B*>\nB = b<>\n";

TEST_F(VerifyTest, ContainmentCertificateBothVerdictsCheckClean) {
  auto schema = schema::ParseSchema(kContainGrammar, vocab_);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  const char* at_least_one = "select(a<b b*>; [(); doc; ()])";
  const char* exactly_one = "select(a<b>; [(); doc; ()])";

  auto contained = BuildContainmentCertificate(*schema, exactly_one,
                                               at_least_one, vocab_);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  EXPECT_TRUE(contained->containment.contained);
  EXPECT_EQ(Render(CheckCertificate(*contained)), "");

  auto separated = BuildContainmentCertificate(*schema, at_least_one,
                                               exactly_one, vocab_);
  ASSERT_TRUE(separated.ok());
  EXPECT_FALSE(separated->containment.contained);
  ASSERT_TRUE(separated->containment.counterexample.has_value());
  EXPECT_EQ(Render(CheckCertificate(*separated)), "");
}

TEST_F(VerifyTest, SeededFlippedContainmentVerdictCaught) {
  auto schema = schema::ParseSchema(kContainGrammar, vocab_);
  ASSERT_TRUE(schema.ok());
#ifdef HEDGEQ_CERTIFY
  schema::ContainmentValidationHook saved =
      schema::GetContainmentValidationHook();
  schema::SetContainmentValidationHook(nullptr);
#endif
  failpoint::Arm("containment/flip-verdict");
  auto cert = BuildContainmentCertificate(
      *schema, "select(a<b b*>; [(); doc; ()])",
      "select(a<b>; [(); doc; ()])", vocab_);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  // The flip turned a separation into a claimed containment; the marked
  // fixpoint replay must find the separating product state.
  EXPECT_TRUE(cert->containment.contained);
  std::vector<Diagnostic> diagnostics = CheckCertificate(*cert);
  EXPECT_TRUE(
      HasCode(diagnostics, DiagnosticCode::kContainmentCertificateRejected))
      << Render(diagnostics);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  schema::SetContainmentValidationHook(saved);
#endif
}

TEST_F(VerifyTest, NewCertificateKindsRoundTripByteIdentically) {
  // Minimize: build from a determinized sweep expression.
  for (const char* text : {"a<b*> | c", "(a<b*> | b<a*>)*"}) {
    SCOPED_TRACE(text);
    hre::Hre e = Parse(text);
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(e, scope);
    ASSERT_TRUE(nha.ok());
    auto det = automata::Determinize(*nha, scope);
    ASSERT_TRUE(det.ok());
    Certificate cert = BuildMinimizeCertificate(det->dha);
    EXPECT_EQ(Render(CheckCertificate(cert)), "");
    std::string serialized = SerializeCertificate(cert, vocab_);
    auto back = DeserializeCertificate(serialized, vocab_);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(SerializeCertificate(*back, vocab_), serialized);
    EXPECT_EQ(Render(CheckCertificate(*back)), "");
  }
  // Containment: both verdict shapes (with and without a counterexample).
  auto schema = schema::ParseSchema(kContainGrammar, vocab_);
  ASSERT_TRUE(schema.ok());
  const char* q1 = "select(a<b b*>; [(); doc; ()])";
  const char* q2 = "select(a<b>; [(); doc; ()])";
  for (bool forward : {true, false}) {
    SCOPED_TRACE(forward);
    auto cert = forward
                    ? BuildContainmentCertificate(*schema, q1, q2, vocab_)
                    : BuildContainmentCertificate(*schema, q2, q1, vocab_);
    ASSERT_TRUE(cert.ok());
    std::string serialized = SerializeCertificate(*cert, vocab_);
    auto back = DeserializeCertificate(serialized, vocab_);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(SerializeCertificate(*back, vocab_), serialized);
    EXPECT_EQ(Render(CheckCertificate(*back)), "");
  }
}

// --- The selection-semantics oracle (HQV013).

TEST_F(VerifyTest, SelectionOracleCleanOnRepresentativeQueries) {
  for (const char* text :
       {"select(a<b*>; [(); doc; ()])",
        "select((b|$x)*; [(); a; b] [b; a; ()])", "select(*; a (a|b)*)"}) {
    SCOPED_TRACE(text);
    auto query = query::ParseSelectionQuery(text, vocab_);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    OracleOptions options;
    options.max_size = 3;
    options.samples = 8;
    auto report = RunSelectionOracle(*query, vocab_, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(Render(report->diagnostics), "");
    EXPECT_GT(report->hedges_checked, 0u);
    EXPECT_GT(report->enumerated, 0u);
  }
}

TEST_F(VerifyTest, SeededWrongSelectionCaughtAndShrunk) {
  auto query =
      query::ParseSelectionQuery("select(a<b*>; [(); doc; ()])", vocab_);
  ASSERT_TRUE(query.ok());
  failpoint::Arm("phr/select-wrong-node");
  OracleOptions options;
  options.max_size = 3;
  options.samples = 4;
  auto report = RunSelectionOracle(*query, vocab_, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(
      HasCode(report->diagnostics, DiagnosticCode::kSelectionDisagreement))
      << Render(report->diagnostics);
  EXPECT_GT(report->shrink_checks, 0u);
  // At least one 3-node disagreement must have been delta-debugged down,
  // and the finding records the pre-shrink hedge for reproduction.
  EXPECT_NE(Render(report->diagnostics).find("shrunk from"),
            std::string::npos)
      << Render(report->diagnostics);
  failpoint::DisarmAll();

  // Disarmed, the same query cross-checks clean.
  auto clean = RunSelectionOracle(*query, vocab_, options);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(Render(clean->diagnostics), "");
}

TEST_F(VerifyTest, ShrunkSelectionCounterexampleIsMinimalAndReproduces) {
  // Shrink a seeded selection disagreement by hand with the public
  // ShrinkHedge + engine panel, mirroring what the oracle does: the result
  // must still disagree (reproduction) and be 1-minimal for this bug — a
  // single parent over the flipped symbol node.
  auto query =
      query::ParseSelectionQuery("select(a<b*>; [(); doc; ()])", vocab_);
  ASSERT_TRUE(query.ok());
  auto evaluator = query::SelectionEvaluator::Create(*query);
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  auto disagrees = [&](const Hedge& h) {
    std::vector<bool> eager = evaluator->Locate(h);
    std::optional<std::vector<bool>> naive = NaiveSelectionLocate(*query, h);
    return naive.has_value() && eager != *naive;
  };

  failpoint::Arm("phr/select-wrong-node");
  // Node 0's content matches the subhedge, so the flipped envelope mark is
  // visible through the conjunction with the subhedge marks.
  Hedge start = ParseH("doc<a<b b>> b");
  ASSERT_TRUE(disagrees(start));
  size_t checks = 0;
  Hedge small = ShrinkHedge(start, disagrees, /*max_checks=*/512, &checks);
  EXPECT_TRUE(disagrees(small)) << small.ToString(vocab_);
  EXPECT_LT(small.num_nodes(), start.num_nodes());
  // 1-minimal for this bug: a subhedge-matching node needs one child, so
  // two nodes is the floor and the shrinker must land exactly there.
  EXPECT_EQ(small.num_nodes(), 2u) << small.ToString(vocab_);
  EXPECT_GT(checks, 0u);
  failpoint::DisarmAll();
  EXPECT_FALSE(disagrees(small)) << "disarmed engines must agree again";
}

// --- The naive selection enumerator: pinned Definition 22 semantics.

TEST_F(VerifyTest, NaiveSelectionLocatePinnedSemantics) {
  auto query =
      query::ParseSelectionQuery("select(a<b*>; [(); doc; ()])", vocab_);
  ASSERT_TRUE(query.ok());
  struct Case {
    const char* hedge;
    std::vector<hedge::NodeId> expect;
  };
  const Case cases[] = {
      // The doc node's content matches a<b*> and its envelope (no elder,
      // no younger, root) matches [(); doc; ()].
      {"doc<a>", {0}},
      {"doc<a<b b>>", {0}},  // the subhedge allows any number of bs
      {"doc<a<c>>", {}},     // content does not match the subhedge
      {"a", {}},             // wrong label for the envelope triplet
      {"doc<a> doc<a>", {}},  // siblings break the () elder/younger regexes
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.hedge);
    Hedge h = ParseH(c.hedge);
    std::optional<std::vector<bool>> located =
        NaiveSelectionLocate(*query, h);
    ASSERT_TRUE(located.has_value());
    std::vector<hedge::NodeId> got;
    for (hedge::NodeId n = 0; n < h.num_nodes(); ++n) {
      if ((*located)[n]) got.push_back(n);
    }
    EXPECT_EQ(got, c.expect);
  }
}

}  // namespace
}  // namespace hedgeq::verify
