// Print/parse round-trip properties across the surface syntaxes, on
// randomized inputs.
#include <gtest/gtest.h>

#include "hre/sugar.h"
#include "hre/compile.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

TEST(RoundTripTest, RandomHedgesSurviveToStringParse) {
  Vocabulary vocab;
  Rng rng(808080);
  for (int trial = 0; trial < 60; ++trial) {
    workload::RandomHedgeOptions options;
    options.target_nodes = 1 + rng.Below(40);
    options.num_symbols = 3;
    Hedge h = workload::RandomHedge(rng, vocab, options);
    std::string text = h.ToString(vocab);
    auto back = ParseHedge(text, vocab);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_TRUE(back->EqualTo(h)) << text;
    EXPECT_EQ(back->ToString(vocab), text);
  }
}

TEST(RoundTripTest, SugarExpressionsPrintAndReparse) {
  Vocabulary vocab;
  hedge::SymbolId a = vocab.symbols.Intern("a");
  hedge::SymbolId b = vocab.symbols.Intern("b");
  hedge::VarId x = vocab.variables.Intern("x");
  hedge::SubstId z = vocab.substs.Intern("z");
  std::vector<hedge::SymbolId> symbols = {a, b};
  std::vector<hedge::VarId> vars = {x};

  for (hre::Hre e :
       {hre::AnyHedgeExpr(symbols, vars, z),
        hre::AnyTreeExpr(a, symbols, vars, z),
        hre::AnyTreeOfExpr(symbols, symbols, vars, z),
        hre::HConcat(hre::AnyTreeExpr(b, symbols, vars, z),
                     hre::AnyHedgeExpr(symbols, vars, z))}) {
    std::string text = hre::HreToString(e, vocab);
    auto back = hre::ParseHre(text, vocab);
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(hre::HreToString(*back, vocab), text);
    // And the reparse denotes the same language (spot checks).
    automata::Nha m1 = hre::CompileHre(e);
    automata::Nha m2 = hre::CompileHre(*back);
    Rng rng(11);
    for (int trial = 0; trial < 25; ++trial) {
      workload::RandomHedgeOptions options;
      options.target_nodes = 1 + rng.Below(8);
      options.num_symbols = 2;  // a0/a1; not in {a,b} so mostly rejections
      Hedge doc = workload::RandomHedge(rng, vocab, options);
      ASSERT_EQ(m1.Accepts(doc), m2.Accepts(doc)) << text;
    }
    for (const char* doc : {"", "a", "b<a $x>", "a b", "$x"}) {
      auto h = ParseHedge(doc, vocab);
      ASSERT_TRUE(h.ok());
      ASSERT_EQ(m1.Accepts(*h), m2.Accepts(*h)) << text << " on " << doc;
    }
  }
}

}  // namespace
}  // namespace hedgeq
