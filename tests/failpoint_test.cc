// Fault-injection matrix: arm each HEDGEQ_FAILPOINT site and drive every
// public entry point over it, proving the repo's robustness contract —
// direct pipelines (Determinize, CompilePhr, schema algebra) surface the
// injected kResourceExhausted as a clean Status, while evaluator-level
// factories (PhrEvaluator, SelectionEvaluator, StreamingValidator) degrade
// to their lazy engines and still answer correctly. Nothing aborts, leaks,
// or returns a silently partial result.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/determinize.h"
#include "hre/compile.h"
#include "phr/phr.h"
#include "query/boolean.h"
#include "query/evaluator.h"
#include "query/phr_compile.h"
#include "query/selection.h"
#include "schema/algebra.h"
#include "schema/streaming.h"
#include "util/failpoint.h"

namespace hedgeq {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  phr::Phr ParseQuery(const char* text) {
    auto r = phr::ParsePhr(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  // Asserts `s` is the injected failure from failpoint `name`.
  void ExpectInjected(const Status& s, const char* name) {
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
    EXPECT_NE(s.message().find("injected"), std::string::npos)
        << s.ToString();
    EXPECT_NE(s.message().find(name), std::string::npos) << s.ToString();
    EXPECT_GE(failpoint::HitCount(name), 1u);
  }

  Vocabulary vocab_;
};

TEST_F(FailpointTest, ArmSkipDisarmSemantics) {
  EXPECT_TRUE(failpoint::Check("unit/none").ok());  // unarmed: free pass
  failpoint::Arm("unit/point", /*skip=*/2);
  EXPECT_TRUE(failpoint::Check("unit/point").ok());
  EXPECT_TRUE(failpoint::Check("unit/point").ok());
  Status s = failpoint::Check("unit/point");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failpoint::HitCount("unit/point"), 3u);
  EXPECT_EQ(failpoint::ArmedPoints(),
            std::vector<std::string>{"unit/point"});
  failpoint::Disarm("unit/point");
  EXPECT_TRUE(failpoint::Check("unit/point").ok());
  EXPECT_TRUE(failpoint::ArmedPoints().empty());
}

TEST_F(FailpointTest, FirstNModeHealsAfterNFailures) {
  // kFirstN models a transient fault: the first n hits fail, then the
  // point heals — this is what makes retry-success tests deterministic.
  failpoint::ArmFirstN("unit/transient", 2);
  EXPECT_FALSE(failpoint::Check("unit/transient").ok());
  EXPECT_FALSE(failpoint::Check("unit/transient").ok());
  EXPECT_TRUE(failpoint::Check("unit/transient").ok());
  EXPECT_TRUE(failpoint::Check("unit/transient").ok());
  EXPECT_EQ(failpoint::HitCount("unit/transient"), 4u);
  EXPECT_EQ(failpoint::FiredCount("unit/transient"), 2u);
}

TEST_F(FailpointTest, EveryNthModeFiresPeriodically) {
  failpoint::ArmEveryNth("unit/periodic", 3);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (!failpoint::Check("unit/periodic").ok()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(failpoint::FiredCount("unit/periodic"), 3u);
}

TEST_F(FailpointTest, ProbabilityModeIsSeededAndDeterministic) {
  // Same seed → identical fire pattern; the stream is per-point (the name
  // is mixed into the seed) so distinct points decorrelate.
  auto pattern = [](double p, uint64_t seed) {
    failpoint::ArmProbability("unit/prob", p, seed);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(!failpoint::Check("unit/prob").ok());
    }
    failpoint::DisarmAll();
    return fires;
  };
  const std::vector<bool> a = pattern(0.5, 7);
  const std::vector<bool> b = pattern(0.5, 7);
  EXPECT_EQ(a, b);
  // Degenerate probabilities are exact, not approximate.
  EXPECT_EQ(pattern(0.0, 7), std::vector<bool>(64, false));
  EXPECT_EQ(pattern(1.0, 7), std::vector<bool>(64, true));
  // p=0.5 over 64 draws fires at least once and spares at least once.
  EXPECT_NE(a, std::vector<bool>(64, false));
  EXPECT_NE(a, std::vector<bool>(64, true));
}

TEST_F(FailpointTest, ArmSpecGrammar) {
  EXPECT_TRUE(failpoint::ArmSpec("unit/a").ok());
  EXPECT_TRUE(failpoint::ArmSpec("unit/b:skip=2").ok());
  EXPECT_TRUE(failpoint::ArmSpec("unit/c:first=1").ok());
  EXPECT_TRUE(failpoint::ArmSpec("unit/d:every=4").ok());
  EXPECT_TRUE(failpoint::ArmSpec("unit/e:p=0.25,seed=9").ok());
  EXPECT_EQ(failpoint::ArmedPoints().size(), 5u);
  EXPECT_FALSE(failpoint::Check("unit/a").ok());
  EXPECT_TRUE(failpoint::Check("unit/b").ok());
  EXPECT_TRUE(failpoint::Check("unit/b").ok());
  EXPECT_FALSE(failpoint::Check("unit/b").ok());
  EXPECT_FALSE(failpoint::Check("unit/c").ok());
  EXPECT_TRUE(failpoint::Check("unit/c").ok());
  // Bad specs are rejected, not silently ignored.
  EXPECT_FALSE(failpoint::ArmSpec("").ok());
  EXPECT_FALSE(failpoint::ArmSpec("unit/x:every=0").ok());
  EXPECT_FALSE(failpoint::ArmSpec("unit/x:p=2.0").ok());
  EXPECT_FALSE(failpoint::ArmSpec("unit/x:bogus=1").ok());
  EXPECT_FALSE(failpoint::ArmSpec("unit/x:every=2,p=0.5").ok());
}

TEST_F(FailpointTest, ReArmResetsCounters) {
  failpoint::ArmFirstN("unit/rearm", 1);
  EXPECT_FALSE(failpoint::Check("unit/rearm").ok());
  EXPECT_TRUE(failpoint::Check("unit/rearm").ok());
  failpoint::ArmFirstN("unit/rearm", 1);  // re-arm: fresh hit/fired state
  EXPECT_EQ(failpoint::HitCount("unit/rearm"), 0u);
  EXPECT_EQ(failpoint::FiredCount("unit/rearm"), 0u);
  EXPECT_FALSE(failpoint::Check("unit/rearm").ok());
}

TEST_F(FailpointTest, DeterminizeSitesFailCleanly) {
  auto e = hre::ParseHre("d<p<$x $x>*>", vocab_);
  ASSERT_TRUE(e.ok());
  automata::Nha nha = hre::CompileHre(*e);
  for (const char* name :
       {"determinize/alloc", "determinize/subset", "determinize/htrans"}) {
    failpoint::Arm(name);
    auto det = automata::Determinize(nha, ExecBudget{});
    ASSERT_FALSE(det.ok()) << name;
    ExpectInjected(det.status(), name);
    failpoint::DisarmAll();
    // Disarmed, the same input determinizes fine — no lingering state.
    EXPECT_TRUE(automata::Determinize(nha, ExecBudget{}).ok()) << name;
  }
}

TEST_F(FailpointTest, PhrPipelinePropagatesEveryStage) {
  phr::Phr phr = ParseQuery("[a*; b; a*] (a|b)*");
  for (const char* name :
       {"phr/compile", "hre/compile", "determinize/alloc",
        "determinize/subset", "determinize/htrans", "determinize/lift",
        "phr/product", "phr/mirror"}) {
    failpoint::Arm(name);
    auto compiled = query::CompilePhr(phr, ExecBudget{});
    ASSERT_FALSE(compiled.ok()) << name;
    ExpectInjected(compiled.status(), name);
    failpoint::DisarmAll();
  }
  EXPECT_TRUE(query::CompilePhr(phr, ExecBudget{}).ok());
}

TEST_F(FailpointTest, PhrEvaluatorFallsBackPerStage) {
  phr::Phr phr = ParseQuery("[a*; b; a*] (a|b)*");
  // Reference evaluator, built before any point is armed (eager path).
  auto reference = query::PhrEvaluator::Create(phr);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->fallback_used());
  Hedge doc = Parse("b<a a b<a>> a<b>");
  std::vector<bool> expected = reference->Locate(doc);

  // Any eager-only stage failing flips Create to the lazy engine, which
  // answers identically.
  for (const char* name :
       {"phr/compile", "determinize/alloc", "determinize/subset",
        "determinize/htrans", "determinize/lift", "phr/product",
        "phr/mirror"}) {
    failpoint::Arm(name);
    auto evaluator = query::PhrEvaluator::Create(phr);
    ASSERT_TRUE(evaluator.ok())
        << name << ": " << evaluator.status().ToString();
    EXPECT_TRUE(evaluator->fallback_used()) << name;
    EXPECT_EQ(evaluator->Locate(doc), expected) << name;
    failpoint::DisarmAll();
  }

  // "hre/compile" is shared by both engines, so there Create fails — but
  // cleanly, with the injected status.
  failpoint::Arm("hre/compile");
  auto evaluator = query::PhrEvaluator::Create(phr);
  ASSERT_FALSE(evaluator.ok());
  ExpectInjected(evaluator.status(), "hre/compile");
}

TEST_F(FailpointTest, SelectionEvaluatorCoversBothStages) {
  auto q = query::ParseSelectionQuery("select((b|$x)*; [(); a; b] [b; a; ()])",
                                      vocab_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto reference = query::SelectionEvaluator::Create(*q);
  ASSERT_TRUE(reference.ok());
  Hedge doc = Parse("a<b $x> a<$x> b<a<b> a>");
  std::vector<bool> expected = reference->Locate(doc);

  // The subhedge failpoint fires before any fallback exists: clean error.
  failpoint::Arm("selection/subhedge");
  auto failed = query::SelectionEvaluator::Create(*q);
  ASSERT_FALSE(failed.ok());
  ExpectInjected(failed.status(), "selection/subhedge");
  failpoint::DisarmAll();

  // A determinization failure degrades both stages to lazy engines.
  failpoint::Arm("determinize/subset");
  auto lazy = query::SelectionEvaluator::Create(*q);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_TRUE(lazy->fallback_used());
  EXPECT_EQ(lazy->Locate(doc), expected);
  EXPECT_TRUE(lazy->stats().fallback_used);
}

TEST_F(FailpointTest, BooleanEvaluatorLeavesDegradeToo) {
  auto q1 = query::ParseSelectionQuery("select(*; b a*)", vocab_);
  auto q2 = query::ParseSelectionQuery("select(*; a (a|b)*)", vocab_);
  ASSERT_TRUE(q1.ok() && q2.ok());
  query::BooleanQuery formula = query::BooleanQuery::And(
      query::BooleanQuery::Leaf(*q1),
      query::BooleanQuery::Not(query::BooleanQuery::Leaf(*q2)));
  auto reference = query::BooleanEvaluator::Create(formula);
  ASSERT_TRUE(reference.ok());
  Hedge doc = Parse("a<b b<a>> b");
  std::vector<bool> expected = reference->Locate(doc);

  failpoint::Arm("determinize/subset");
  auto lazy = query::BooleanEvaluator::Create(formula);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_EQ(lazy->Locate(doc), expected);
}

TEST_F(FailpointTest, SchemaAlgebraPropagatesCleanly) {
  auto a = schema::ParseSchema("start = A\nA = a<A*>\n", vocab_);
  auto b = schema::ParseSchema("start = B\nB = a<B* C*>\nC = b<>\n", vocab_);
  ASSERT_TRUE(a.ok() && b.ok());
  for (const char* name : {"schema/complement", "determinize/subset"}) {
    failpoint::Arm(name);
    auto comp = schema::ComplementSchema(*a, *b, ExecBudget{});
    ASSERT_FALSE(comp.ok()) << name;
    ExpectInjected(comp.status(), name);
    // The whole decision-procedure chain surfaces the same clean error.
    auto inc = schema::SchemaIncludes(*a, *b, ExecBudget{});
    ASSERT_FALSE(inc.ok()) << name;
    EXPECT_EQ(inc.status().code(), StatusCode::kResourceExhausted);
    auto eq = schema::SchemasEquivalent(*a, *b, ExecBudget{});
    ASSERT_FALSE(eq.ok()) << name;
    failpoint::DisarmAll();
  }
  auto inc = schema::SchemaIncludes(*a, *b, ExecBudget{});
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(*inc);  // a<A*> trees are a special case of b's grammar
}

TEST_F(FailpointTest, StreamingValidatorFallsBack) {
  auto schema = schema::ParseSchema(
      "start = Doc\n"
      "Doc = doc<Item*>\n"
      "Item = item<Text*>\n"
      "Text = $#text\n",
      vocab_);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto reference = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->fallback_used());
  const char* kGood = "<doc><item>hi</item><item></item></doc>";
  const char* kBad = "<doc><bogus></bogus></doc>";

  // The create-stage failpoint fires before the engines split: clean error.
  failpoint::Arm("streaming/create");
  auto failed = schema::StreamingValidator::Create(*schema);
  ASSERT_FALSE(failed.ok());
  ExpectInjected(failed.status(), "streaming/create");
  failpoint::DisarmAll();

  // Determinization failing degrades to the lazy engine; verdicts agree.
  failpoint::Arm("determinize/subset");
  auto lazy = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(lazy.ok()) << lazy.status().ToString();
  EXPECT_TRUE(lazy->fallback_used());
  failpoint::DisarmAll();
  for (const char* text : {kGood, kBad}) {
    auto want = reference->Validate(text, vocab_);
    auto got = lazy->ValidateWithStats(text, vocab_);
    ASSERT_TRUE(want.ok() && got.ok()) << text;
    EXPECT_EQ(got->valid, *want) << text;
    EXPECT_TRUE(got->stats.fallback_used);
  }
}

}  // namespace
}  // namespace hedgeq
