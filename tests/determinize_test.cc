#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "automata/dha.h"
#include "automata/nha.h"
#include "strre/ops.h"
#include "util/rng.h"

namespace hedgeq::automata {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;
using strre::CompileRegex;
using strre::Concat;
using strre::Star;
using strre::Sym;

class DeterminizeTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Nha BuildM1() {
    Nha m;
    HState qd = m.AddState();
    HState qp1 = m.AddState();
    HState qp2 = m.AddState();
    HState qx = m.AddState();
    m.AddVariableState(vocab_.variables.Intern("x"), qx);
    hedge::SymbolId d = vocab_.symbols.Intern("d");
    hedge::SymbolId p = vocab_.symbols.Intern("p");
    m.AddRule(d, CompileRegex(Concat(Sym(qp1), Star(Sym(qp2)))), qd);
    m.AddRule(p, CompileRegex(Concat(Sym(qx), Sym(qx))), qp1);
    m.AddRule(p, CompileRegex(Concat(Sym(qx), Sym(qx))), qp2);
    m.AddRule(p, CompileRegex(Sym(qx)), qp1);
    m.SetFinal(CompileRegex(Star(Sym(qd))));
    return m;
  }

  // Generates a random hedge over {a,b} x {x} with ~`size` nodes.
  Hedge RandomHedge(Rng& rng, int size) {
    Hedge h;
    std::vector<hedge::NodeId> open = {hedge::kNullNode};
    hedge::SymbolId a = vocab_.symbols.Intern("a");
    hedge::SymbolId b = vocab_.symbols.Intern("b");
    hedge::VarId x = vocab_.variables.Intern("x");
    for (int i = 0; i < size; ++i) {
      hedge::NodeId parent = open[rng.Below(open.size())];
      switch (rng.Below(3)) {
        case 0:
          open.push_back(h.Append(parent, hedge::Label::Symbol(a)));
          break;
        case 1:
          open.push_back(h.Append(parent, hedge::Label::Symbol(b)));
          break;
        default:
          h.Append(parent, hedge::Label::Variable(x));
          break;
      }
    }
    return h;
  }

  // A small non-deterministic automaton over {a,b}: accepts hedges with at
  // least one "a" node all of whose children are x leaves.
  Nha BuildGuesser() {
    Nha m;
    HState any = m.AddState();   // any tree
    HState hit = m.AddState();   // subtree containing the pattern
    HState leaf = m.AddState();  // x leaf
    hedge::SymbolId a = vocab_.symbols.Intern("a");
    hedge::SymbolId b = vocab_.symbols.Intern("b");
    m.AddVariableState(vocab_.variables.Intern("x"), leaf);
    strre::Regex anyseq = Star(strre::Alt(Sym(any), Sym(leaf)));
    for (hedge::SymbolId s : {a, b}) {
      m.AddRule(s, CompileRegex(anyseq), any);
      // Propagate a hit from any child position.
      m.AddRule(s,
                CompileRegex(strre::ConcatAll(
                    {anyseq, Sym(hit), anyseq})),
                hit);
    }
    // The pattern itself: an "a" whose children are all x leaves (at least
    // one child, to keep it non-trivial).
    m.AddRule(a, CompileRegex(strre::Plus(Sym(leaf))), hit);
    m.SetFinal(CompileRegex(strre::ConcatAll(
        {Star(strre::Alt(Sym(any), Sym(leaf))), Sym(hit),
         Star(strre::Alt(Sym(any), Sym(leaf)))})));
    return m;
  }

  // Reference implementation of the guesser property.
  bool HasPattern(const Hedge& h) {
    hedge::SymbolId a = vocab_.symbols.Intern("a");
    for (hedge::NodeId n : h.PreOrder()) {
      if (h.label(n).kind != hedge::LabelKind::kSymbol ||
          h.label(n).id != a) {
        continue;
      }
      std::vector<hedge::NodeId> kids = h.ChildrenOf(n);
      if (kids.empty()) continue;
      bool all_leaves = true;
      for (hedge::NodeId c : kids) {
        if (h.label(c).kind != hedge::LabelKind::kVariable) {
          all_leaves = false;
          break;
        }
      }
      if (all_leaves) return true;
    }
    return false;
  }

  Vocabulary vocab_;
};

TEST_F(DeterminizeTest, DhaAgreesWithNhaOnPaperExamples) {
  Nha m1 = BuildM1();
  auto det = Determinize(m1);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  const Dha& dha = det->dha;
  for (const char* text :
       {"d<p<$x> p<$y>>", "d<p<$x $x> p<$x $x>>", "d<p<$x>>", "",
        "d<p<$x $x>>", "d<p<$x $x> p<$x $x> p<$x $x>>", "p<$x>",
        "d<p<$x $x> p<$x>>", "d<p<$x> p<$x $x>>"}) {
    Hedge h = Parse(text);
    EXPECT_EQ(m1.Accepts(h), dha.Accepts(h)) << text;
  }
}

TEST_F(DeterminizeTest, SinkIsEmptySubset) {
  auto det = Determinize(BuildM1());
  ASSERT_TRUE(det.ok());
  EXPECT_EQ(det->dha.sink(), 0u);
  EXPECT_TRUE(det->subsets[0].None());
}

TEST_F(DeterminizeTest, RunAssignsSubsetOfSimulatedStates) {
  Nha m1 = BuildM1();
  auto det = Determinize(m1);
  ASSERT_TRUE(det.ok());
  Hedge h = Parse("d<p<$x $x> p<$x $x>>");
  std::vector<Bitset> sets = m1.ComputeStateSets(h);
  std::vector<HState> run = det->dha.Run(h);
  for (hedge::NodeId n = 0; n < h.num_nodes(); ++n) {
    if (h.label(n).kind == hedge::LabelKind::kEta) continue;
    EXPECT_EQ(det->subsets[run[n]], sets[n]) << "node " << n;
  }
}

TEST_F(DeterminizeTest, RandomizedAgreementWithSimulation) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  Rng rng(20260706);
  int accepted = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Hedge h = RandomHedge(rng, 1 + static_cast<int>(rng.Below(40)));
    bool expected = HasPattern(h);
    EXPECT_EQ(guesser.Accepts(h), expected) << h.ToString(vocab_);
    EXPECT_EQ(det->dha.Accepts(h), expected) << h.ToString(vocab_);
    accepted += expected ? 1 : 0;
  }
  // Sanity: the workload exercises both outcomes.
  EXPECT_GT(accepted, 10);
  EXPECT_LT(accepted, 190);
}

TEST_F(DeterminizeTest, CapsAreEnforced) {
  ExecBudget budget;
  budget.max_states = 1;  // sink alone already hits the cap
  auto det = Determinize(BuildM1(), budget);
  ASSERT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
  // The message names the count reached and the knob to raise.
  EXPECT_NE(det.status().message().find("max_states"), std::string::npos)
      << det.status().message();
  EXPECT_NE(det.status().message().find("reached"), std::string::npos);
}

TEST_F(DeterminizeTest, ByteCapIsEnforced) {
  ExecBudget budget;
  budget.max_memory_bytes = 1;  // the first interned subset busts it
  auto det = Determinize(BuildM1(), budget);
  ASSERT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(det.status().message().find("max_memory_bytes"),
            std::string::npos)
      << det.status().message();
}

TEST_F(DeterminizeTest, UnknownSymbolsFallToSink) {
  auto det = Determinize(BuildM1());
  ASSERT_TRUE(det.ok());
  Hedge h = Parse("unheard-of<d<p<$x $x>>>");
  std::vector<HState> run = det->dha.Run(h);
  EXPECT_EQ(run[h.roots()[0]], det->dha.sink());
  EXPECT_FALSE(det->dha.Accepts(h));
}

TEST_F(DeterminizeTest, MarkedDhaMatchesRunWithMarks) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok());
  Dha marked = BuildMarkedDha(det->dha);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Hedge h = RandomHedge(rng, 1 + static_cast<int>(rng.Below(30)));
    Dha::MarkedRun mr = det->dha.RunWithMarks(h);
    std::vector<HState> run2 = marked.Run(h);
    for (hedge::NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind != hedge::LabelKind::kSymbol) continue;
      // Marked DHA state encodes (q, bit) as 2q + bit.
      EXPECT_EQ(run2[n] / 2, mr.states[n]);
      EXPECT_EQ(run2[n] % 2 == 1, mr.marks[n]);
    }
    EXPECT_TRUE(marked.Accepts(h));  // Theorem 3: accepts every hedge
  }
}

TEST_F(DeterminizeTest, ComplementDhaFlipsAcceptance) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok());
  Dha comp = ComplementDha(det->dha);
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    Hedge h = RandomHedge(rng, 1 + static_cast<int>(rng.Below(25)));
    EXPECT_NE(det->dha.Accepts(h), comp.Accepts(h));
  }
}

TEST_F(DeterminizeTest, DhaToNhaPreservesLanguage) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok());
  Nha back = DhaToNha(det->dha);
  Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    Hedge h = RandomHedge(rng, 1 + static_cast<int>(rng.Below(20)));
    EXPECT_EQ(det->dha.Accepts(h), back.Accepts(h)) << h.ToString(vocab_);
  }
}

TEST_F(DeterminizeTest, LiftToSubsetsMatchesSemantics) {
  Nha m1 = BuildM1();
  auto det = Determinize(m1);
  ASSERT_TRUE(det.ok());
  // Lift the final language and compare with the built-in final DFA on the
  // state sequences produced by runs.
  strre::Dfa lifted = LiftToSubsets(m1.final_nfa(), det->subsets);
  for (const char* text : {"", "d<p<$x>>", "d<p<$x>> d<p<$x $x>>", "p<$x>"}) {
    Hedge h = Parse(text);
    std::vector<HState> run = det->dha.Run(h);
    std::vector<strre::Symbol> roots;
    for (hedge::NodeId r : h.roots()) roots.push_back(run[r]);
    EXPECT_EQ(lifted.Accepts(roots), det->dha.Accepts(h)) << text;
  }
}

}  // namespace
}  // namespace hedgeq::automata
