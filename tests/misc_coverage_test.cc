// Coverage for corners the module suites leave out: determinization caps,
// choice simulation, minimization on real schemas, interner/bitset edges.
#include <gtest/gtest.h>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "hre/compile.h"
#include "schema/schema.h"
#include "strre/ops.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

TEST(DeterminizeCapsTest, HorizontalStateCap) {
  Vocabulary vocab;
  auto e = hre::ParseHre("c<(a|b)* a (a|b) (a|b) (a|b) (a|b) (a|b)>", vocab);
  ASSERT_TRUE(e.ok());
  automata::Nha nha = hre::CompileHre(*e);
  ExecBudget budget;
  budget.max_states = 8;  // the horizontal sets alone need ~2^6
  auto det = automata::Determinize(nha, budget);
  ASSERT_FALSE(det.ok());
  EXPECT_EQ(det.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(det.status().message().find("max_states"), std::string::npos);
}

TEST(AcceptsChoicesTest, Basics) {
  // Language (0 1 | 2): choices per position.
  auto nfa = strre::CompileRegex(strre::Alt(
      strre::Concat(strre::Sym(0), strre::Sym(1)), strre::Sym(2)));
  using Choices = std::vector<std::vector<strre::Symbol>>;
  EXPECT_TRUE(strre::AcceptsChoices(nfa, Choices{{0, 5}, {1}}));
  EXPECT_TRUE(strre::AcceptsChoices(nfa, Choices{{2}}));
  EXPECT_TRUE(strre::AcceptsChoices(nfa, Choices{{0, 2}}));  // picks 2
  EXPECT_FALSE(strre::AcceptsChoices(nfa, Choices{{0}}));
  EXPECT_FALSE(strre::AcceptsChoices(nfa, Choices{{0}, {0}}));
  EXPECT_FALSE(strre::AcceptsChoices(nfa, Choices{}));
  // Empty choice set at a position kills every word.
  EXPECT_FALSE(strre::AcceptsChoices(nfa, Choices{{0}, {}}));
}

TEST(MinimizeDhaTest, ArticleSchemaStaysValidAndSmall) {
  Vocabulary vocab;
  auto schema = schema::ParseSchema(
      "start = Article\n"
      "Article = article<Title Section*>\n"
      "Title = title<Text>\n"
      "Text = $#text\n"
      "Section = section<Title (Para|Figure)*>\n"
      "Para = para<Text>\n"
      "Figure = figure<>\n",
      vocab);
  ASSERT_TRUE(schema.ok());
  auto det = automata::Determinize(schema->nha());
  ASSERT_TRUE(det.ok());
  automata::Dha min = automata::MinimizeDha(det->dha);
  EXPECT_LE(min.num_states(), det->dha.num_states());

  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 30 + 30 * trial;
    // The generator emits captions/tables/images this schema rejects, so
    // both accept and reject paths are exercised.
    Hedge doc = workload::RandomArticle(rng, vocab, options);
    EXPECT_EQ(det->dha.Accepts(doc), min.Accepts(doc));
    EXPECT_EQ(schema->Validates(doc), min.Accepts(doc));
  }
}

TEST(BitsetEdgeTest, ZeroAndWordBoundarySizes) {
  Bitset empty(0);
  EXPECT_TRUE(empty.None());
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_TRUE(empty.ToVector().empty());

  Bitset b64(64);
  b64.Set(63);
  EXPECT_TRUE(b64.Test(63));
  EXPECT_EQ(b64.Count(), 1u);
  Bitset b65(65);
  b65.Set(64);
  EXPECT_EQ(b65.ToVector(), (std::vector<uint32_t>{64}));
}

TEST(ShortestWordTest, ContainingLetter) {
  // (a|b)* with letters {0,1}; shortest word containing 1 is "1".
  auto nfa = strre::CompileRegex(
      strre::Star(strre::Alt(strre::Sym(0), strre::Sym(1))));
  Bitset allowed(2);
  allowed.Set(0);
  allowed.Set(1);
  auto word = automata::ShortestWordContaining(nfa, allowed, 1);
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, (std::vector<strre::Symbol>{1}));

  // If the letter is not allowed, no word qualifies.
  Bitset only_zero(2);
  only_zero.Set(0);
  EXPECT_FALSE(
      automata::ShortestWordContaining(nfa, only_zero, 1).has_value());

  // Letter required but the language never contains it after position 0:
  // language = 0 1: containing 0 -> "0 1".
  auto seq = strre::CompileRegex(strre::Concat(strre::Sym(0), strre::Sym(1)));
  auto w2 = automata::ShortestWordContaining(seq, allowed, 0);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(*w2, (std::vector<strre::Symbol>{0, 1}));
}

TEST(VocabularyTest, NamespacesAreDisjoint) {
  Vocabulary vocab;
  hedge::SymbolId sym = vocab.symbols.Intern("x");
  hedge::VarId var = vocab.variables.Intern("x");
  hedge::SubstId sub = vocab.substs.Intern("x");
  // Same spelling, independent interners: each starts at id 0.
  EXPECT_EQ(sym, 0u);
  EXPECT_EQ(var, 0u);
  EXPECT_EQ(sub, 0u);
  EXPECT_EQ(vocab.symbols.size(), 1u);
  EXPECT_EQ(vocab.variables.size(), 1u);
}

TEST(HedgeLabelTest, EqualityAcrossKinds) {
  using hedge::Label;
  EXPECT_TRUE(Label::Eta() == Label::Eta());
  EXPECT_FALSE(Label::Symbol(0) == Label::Variable(0));
  EXPECT_FALSE(Label::Symbol(0) == Label::Symbol(1));
  EXPECT_TRUE(Label::Subst(2) == Label::Subst(2));
}

}  // namespace
}  // namespace hedgeq
