#include <gtest/gtest.h>

#include "strre/ops.h"
#include "util/interner.h"

namespace hedgeq::strre {
namespace {

const std::vector<Symbol> kAlphabet = {0, 1, 2};

Symbol ResolveAbc(std::string_view name) {
  if (name == "a") return 0;
  if (name == "b") return 1;
  if (name == "c") return 2;
  ADD_FAILURE() << "unknown symbol " << name;
  return 99;
}

std::string NameAbc(Symbol s) {
  return std::string(1, static_cast<char>('a' + s));
}

Regex Rx(const std::string& text) {
  auto r = ParseRegex(text, ResolveAbc);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

bool SameLanguage(const Regex& a, const Regex& b) {
  return Equivalent(MinimalDfaOfRegex(a, kAlphabet),
                    MinimalDfaOfRegex(b, kAlphabet), kAlphabet);
}

class SimplifyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SimplifyTest, PreservesLanguage) {
  Regex e = Rx(GetParam());
  Regex s = SimplifyRegex(e);
  EXPECT_TRUE(SameLanguage(e, s))
      << GetParam() << " simplified to " << RegexToString(s, NameAbc);
  EXPECT_LE(RegexSize(s), RegexSize(e)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimplifyTest,
    ::testing::Values("a|a", "a a*", "a* a", "()|a a*", "()|a|b",
                      "a|a b", "a b|a c", "a b c|a b a|a c",
                      "(a?|b)*", "(a*|b)*", "a* a?", "a* a*",
                      "(a|b)|(b|a)", "()|(a|()) a*", "a?|b?",
                      "((a))", "a* (a*)?", "{}|a", "a|{}",
                      "(a+)*", "(a?)+", "a b|a", "a b a|a b b"));

TEST(SimplifyShapeTest, CanonicalForms) {
  auto printed = [](const Regex& e) { return RegexToString(e, NameAbc); };
  EXPECT_EQ(printed(SimplifyRegex(Rx("a|a"))), "a");
  EXPECT_EQ(printed(SimplifyRegex(Rx("a a*"))), "a+");
  EXPECT_EQ(printed(SimplifyRegex(Rx("()|a a*"))), "a*");
  EXPECT_EQ(printed(SimplifyRegex(Rx("a|a b"))), "a b?");
  EXPECT_EQ(printed(SimplifyRegex(Rx("a b|a c"))), "a (b|c)");
  EXPECT_EQ(printed(SimplifyRegex(Rx("(a?|b)*"))), "(a|b)*");
  EXPECT_EQ(printed(SimplifyRegex(Rx("a* a?"))), "a*");
  EXPECT_EQ(printed(SimplifyRegex(Rx("(a+)*"))), "a*");
}

class NfaToRegexTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NfaToRegexTest, RoundTripPreservesLanguage) {
  Regex e = Rx(GetParam());
  Nfa nfa = CompileRegex(e);
  Regex back = NfaToRegex(nfa);
  EXPECT_TRUE(SameLanguage(e, back))
      << GetParam() << " came back as " << RegexToString(back, NameAbc);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NfaToRegexTest,
    ::testing::Values("{}", "()", "a", "a b c", "a|b|c", "(a|b)* c",
                      "a* b* c*", "(a b)* c?", "a (b|c)+ a",
                      "((a|b) (b|c))*", "(a a|b b)*", "a* (b a*)*",
                      "(a|b c)* (c|())"));

TEST(NfaToRegexTest, MinimalDfaRoundTrip) {
  // Going through the minimal DFA produces compact output.
  Regex e = Rx("(a|b)* b (a|b)");
  Dfa min = MinimalDfaOfRegex(e, kAlphabet);
  Regex back = NfaToRegex(NfaFromDfa(min));
  EXPECT_TRUE(SameLanguage(e, back));
}

TEST(NfaToRegexTest, EmptyAutomaton) {
  Nfa empty;
  EXPECT_EQ(NfaToRegex(empty)->kind(), RegexKind::kEmptySet);
}

}  // namespace
}  // namespace hedgeq::strre
