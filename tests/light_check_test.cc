// Light-vs-full checker parity (HQV016 machinery): the hash-witness light
// checker must accept every certificate kind the full checker accepts,
// reject every seeded construction bug the full checker rejects, and — the
// one place the two differ — catch digest-chain tampering that the full
// checker, which re-derives everything from the stored sets and never
// consults the chain, cannot see.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/determinize.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "hre/from_nha.h"
#include "lint/diagnostics.h"
#include "query/selection.h"
#include "schema/algebra.h"
#include "schema/schema.h"
#include "util/failpoint.h"
#include "verify/certificate.h"
#include "verify/checker.h"
#include "verify/oracle.h"

namespace hedgeq::verify {
namespace {

using hedge::Vocabulary;
using lint::Diagnostic;
using lint::DiagnosticCode;

bool HasCode(const std::vector<Diagnostic>& diagnostics,
             DiagnosticCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

std::string Render(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += lint::FormatDiagnostic(d) + "\n";
  }
  return out;
}

constexpr const char* kContainGrammar =
    "start = Doc\nDoc = doc<A*>\nA = a<B*>\nB = b<>\n";

class LightCheckTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  hre::Hre Parse(const std::string& text) {
    auto e = hre::ParseHre(text, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return std::move(e).value();
  }

  schema::Schema ParseS(const std::string& text) {
    auto s = schema::ParseSchema(text, vocab_);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return std::move(s).value();
  }

  automata::Nha Compile(const std::string& text) {
    hre::Hre e = Parse(text);
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(e, scope);
    EXPECT_TRUE(nha.ok()) << nha.status().ToString();
    return std::move(nha).value();
  }

  // Both check modes accept `cert`, directly and after a serialization
  // round trip (the cache revalidates deserialized certificates, so parity
  // on the round-tripped form is what actually matters).
  void ExpectBothModesAccept(const Certificate& cert) {
    EXPECT_EQ(Render(CheckCertificate(cert)), "");
    EXPECT_EQ(Render(CheckCertificateLight(cert)), "");
    std::string serialized = SerializeCertificate(cert, vocab_);
    auto back = DeserializeCertificate(serialized, vocab_);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(Render(CheckCertificate(*back)), "");
    EXPECT_EQ(Render(CheckCertificateLight(*back)), "");
  }

  void ExpectBothModesReject(const Certificate& cert, DiagnosticCode code) {
    std::vector<Diagnostic> full = CheckCertificate(cert);
    EXPECT_TRUE(HasCode(full, code)) << Render(full);
    std::vector<Diagnostic> light = CheckCertificateLight(cert);
    EXPECT_TRUE(HasCode(light, code)) << Render(light);
  }

  Vocabulary vocab_;
};

// --- Parity on clean certificates: every kind, both modes.

TEST_F(LightCheckTest, EveryCertificateKindAcceptedByBothModes) {
  BudgetScope scope{ExecBudget{}};

  for (const char* text : {"a<b*> | c", "(a|b)* c<$x>", "a<%z>*^z"}) {
    SCOPED_TRACE(text);
    automata::Nha nha = Compile(text);
    auto det_cert = BuildDeterminizeCertificate(nha, scope);
    ASSERT_TRUE(det_cert.ok()) << det_cert.status().ToString();
    ExpectBothModesAccept(*det_cert);
    ExpectBothModesAccept(BuildTrimCertificate(nha));
    auto det = automata::Determinize(nha, scope);
    ASSERT_TRUE(det.ok());
    ExpectBothModesAccept(BuildMinimizeCertificate(det->dha));
  }

  {
    automata::Nha nha = Compile("a<b*> | c");
    auto cert = BuildFromNhaCertificate(nha, vocab_);
    ASSERT_TRUE(cert.ok()) << cert.status().ToString();
    ExpectBothModesAccept(*cert);
  }

  {
    auto schema = schema::ParseSchema(kContainGrammar, vocab_);
    ASSERT_TRUE(schema.ok());
    const char* q1 = "select(a<b b*>; [(); doc; ()])";
    const char* q2 = "select(a<b>; [(); doc; ()])";
    for (bool forward : {true, false}) {
      SCOPED_TRACE(forward);
      auto cert =
          forward ? BuildContainmentCertificate(*schema, q1, q2, vocab_)
                  : BuildContainmentCertificate(*schema, q2, q1, vocab_);
      ASSERT_TRUE(cert.ok()) << cert.status().ToString();
      ExpectBothModesAccept(*cert);
    }
  }

  {
    schema::Schema a = ParseS("start = A+\nA = a<>");
    schema::Schema b = ParseS("start = X X\nX = a<>\nX = b<>");
    for (schema::AlgebraOp op :
         {schema::AlgebraOp::kIntersect, schema::AlgebraOp::kUnion,
          schema::AlgebraOp::kDifference}) {
      SCOPED_TRACE(static_cast<int>(op));
      auto cert = BuildAlgebraCertificate(a, b, op);
      ASSERT_TRUE(cert.ok()) << cert.status().ToString();
      ExpectBothModesAccept(*cert);
    }
  }
}

// --- Parity on seeded bugs: each certificate-carried failpoint must be
// rejected under its own HQV code by BOTH modes (light re-derives the
// lifted final DFA and falls through to the full checker for non-chain
// kinds, so no seeded bug may slip through in light mode).

TEST_F(LightCheckTest, SeededFlipFinalRejectedByBothModes) {
  automata::Nha nha = Compile("a b*");
#ifdef HEDGEQ_CERTIFY
  automata::DeterminizeValidationHook saved =
      automata::GetDeterminizeValidationHook();
  automata::SetDeterminizeValidationHook(nullptr);
#endif
  failpoint::Arm("determinize/flip-final");
  BudgetScope scope{ExecBudget{}};
  auto cert = BuildDeterminizeCertificate(nha, scope);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  automata::SetDeterminizeValidationHook(saved);
#endif
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  ExpectBothModesReject(*cert, DiagnosticCode::kFinalSetInconsistent);
}

TEST_F(LightCheckTest, SeededNonBisimilarMergeRejectedByBothModes) {
  automata::Nha nha = Compile("(a<b*> | b<a*>)*");
  BudgetScope scope{ExecBudget{}};
  auto det = automata::Determinize(nha, scope);
  ASSERT_TRUE(det.ok());
#ifdef HEDGEQ_CERTIFY
  automata::MinimizeValidationHook saved =
      automata::GetMinimizeValidationHook();
  automata::SetMinimizeValidationHook(nullptr);
#endif
  failpoint::Arm("minimize/merge-nonbisimilar");
  Certificate cert = BuildMinimizeCertificate(det->dha);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  automata::SetMinimizeValidationHook(saved);
#endif
  ExpectBothModesReject(cert, DiagnosticCode::kMinimizeWitnessRejected);
}

TEST_F(LightCheckTest, SeededFlippedVerdictRejectedByBothModes) {
  auto schema = schema::ParseSchema(kContainGrammar, vocab_);
  ASSERT_TRUE(schema.ok());
#ifdef HEDGEQ_CERTIFY
  schema::ContainmentValidationHook saved =
      schema::GetContainmentValidationHook();
  schema::SetContainmentValidationHook(nullptr);
#endif
  failpoint::Arm("containment/flip-verdict");
  auto cert = BuildContainmentCertificate(
      *schema, "select(a<b b*>; [(); doc; ()])",
      "select(a<b>; [(); doc; ()])", vocab_);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  schema::SetContainmentValidationHook(saved);
#endif
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  ExpectBothModesReject(*cert,
                        DiagnosticCode::kContainmentCertificateRejected);
}

TEST_F(LightCheckTest, SeededDroppedAlternativeRejectedByBothModes) {
  automata::Nha nha = Compile("a<b*> | c");
#ifdef HEDGEQ_CERTIFY
  hre::FromNhaValidationHook saved = hre::GetFromNhaValidationHook();
  hre::SetFromNhaValidationHook(nullptr);
#endif
  failpoint::Arm("from_nha/drop-alternative");
  auto cert = BuildFromNhaCertificate(nha, vocab_);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  hre::SetFromNhaValidationHook(saved);
#endif
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  ExpectBothModesReject(*cert, DiagnosticCode::kFromNhaWitnessRejected);
}

TEST_F(LightCheckTest, SeededDroppedProductRuleRejectedByBothModes) {
  schema::Schema a = ParseS("start = A+\nA = a<>");
  schema::Schema b = ParseS("start = X X\nX = a<>\nX = b<>");
#ifdef HEDGEQ_CERTIFY
  schema::AlgebraValidationHook saved = schema::GetAlgebraValidationHook();
  schema::SetAlgebraValidationHook(nullptr);
#endif
  failpoint::Arm("algebra/drop-rule");
  auto cert =
      BuildAlgebraCertificate(a, b, schema::AlgebraOp::kIntersect);
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  schema::SetAlgebraValidationHook(saved);
#endif
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  ExpectBothModesReject(*cert, DiagnosticCode::kAlgebraWitnessRejected);
}

TEST_F(LightCheckTest, SeededWrongSelectionCaughtRegardlessOfCheckMode) {
  // Selection verdicts never travel through certificates, so the cache's
  // check mode cannot weaken them: the wrong-node failpoint is caught by
  // the selection-semantics oracle (HQV013) exactly as in full mode.
  auto query =
      query::ParseSelectionQuery("select(a<b*>; [(); doc; ()])", vocab_);
  ASSERT_TRUE(query.ok());
  failpoint::Arm("phr/select-wrong-node");
  OracleOptions options;
  options.max_size = 3;
  options.samples = 4;
  auto report = RunSelectionOracle(*query, vocab_, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(
      HasCode(report->diagnostics, DiagnosticCode::kSelectionDisagreement))
      << Render(report->diagnostics);
}

// --- The one asymmetry: digest-chain tampering. The full checker
// re-derives everything from the stored sets and never reads the chain;
// only the light checker recomputes it (HQV016).

TEST_F(LightCheckTest, TamperedDigestChainCaughtOnlyByLightChecker) {
  automata::Nha nha = Compile("a<b*> | c");
  BudgetScope scope{ExecBudget{}};
  auto cert = BuildDeterminizeCertificate(nha, scope);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  ASSERT_FALSE(cert->det.chain.empty())
      << "determinize witnesses must record a digest chain";

  Certificate tampered = *cert;
  std::string& link = tampered.det.chain[tampered.det.chain.size() / 2];
  link[0] = link[0] == '0' ? '1' : '0';

  EXPECT_EQ(Render(CheckCertificate(tampered)), "")
      << "the full checker never consults the chain";
  std::vector<Diagnostic> light = CheckCertificateLight(tampered);
  EXPECT_TRUE(HasCode(light, DiagnosticCode::kDigestChainMismatch))
      << Render(light);

  // A truncated chain (wrong link count) is equally rejected.
  Certificate truncated = *cert;
  truncated.det.chain.pop_back();
  EXPECT_TRUE(HasCode(CheckCertificateLight(truncated),
                      DiagnosticCode::kDigestChainMismatch));

  // And the untampered certificate stays clean in both modes.
  ExpectBothModesAccept(*cert);
}

}  // namespace
}  // namespace hedgeq::verify
