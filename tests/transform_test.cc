#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "query/selection.h"
#include "schema/transform.h"
#include "schema/algebra.h"
#include "automata/analysis.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::schema {
namespace {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::NodeId;
using hedge::Vocabulary;

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

// Copies the subtree rooted at n into a fresh single-tree hedge.
Hedge SubtreeOf(const Hedge& doc, NodeId n) {
  Hedge out;
  out.AppendCopy(kNullNode, doc, n);
  return out;
}

// Copies the document, dropping the subtrees of all `drop` nodes.
Hedge EraseNodes(const Hedge& doc, const std::vector<bool>& drop) {
  Hedge out;
  // Recursive copy in document order.
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId parent) {
    if (drop[src]) return;
    NodeId c = out.Append(parent, doc.label(src));
    for (NodeId kid = doc.first_child(src); kid != kNullNode;
         kid = doc.next_sibling(kid)) {
      copy(kid, c);
    }
  };
  for (NodeId r : doc.roots()) copy(r, kNullNode);
  return out;
}

class TransformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = ParseSchema(kArticleGrammar, vocab_);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    schema_ = std::make_unique<Schema>(std::move(s).value());
  }

  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  query::SelectionQuery ParseQ(const std::string& text) {
    auto r = query::ParseSelectionQuery(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Vocabulary vocab_;
  std::unique_ptr<Schema> schema_;
};

TEST_F(TransformTest, ProductPreservesSchemaLanguage) {
  query::SelectionQuery q = ParseQ("select(*; figure (section|article)*)");
  auto prod = BuildMatchIdentifyingProduct(*schema_, q);
  ASSERT_TRUE(prod.ok()) << prod.status().ToString();
  Rng rng(40);
  for (int trial = 0; trial < 6; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 40 + 40 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    EXPECT_TRUE(prod->nha.Accepts(doc));
  }
  EXPECT_FALSE(prod->nha.Accepts(Parse("article")));  // schema violation
}

TEST_F(TransformTest, SelectOutputValidatesLocatedSubtrees) {
  query::SelectionQuery q = ParseQ("select(*; figure (section|article)*)");
  auto output = SelectOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_FALSE(output->IsEmpty());

  query::SelectionQuery q2 = ParseQ("select(*; figure (section|article)*)");
  auto eval = query::SelectionEvaluator::Create(q2);
  ASSERT_TRUE(eval.ok());

  Rng rng(41);
  size_t checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 60 + 40 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    for (NodeId n : eval->LocatedNodes(doc)) {
      EXPECT_TRUE(output->Validates(SubtreeOf(doc, n)));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  // Non-results are rejected: a paragraph subtree, a caption, a bare image.
  EXPECT_FALSE(output->Validates(Parse("para<$#text>")));
  EXPECT_FALSE(output->Validates(Parse("caption<$#text>")));
  EXPECT_FALSE(output->Validates(Parse("image")));
  // The only possible result shape in this schema.
  EXPECT_TRUE(output->Validates(Parse("figure<image>")));
  // A figure with wrong content can never be located in a valid document.
  EXPECT_FALSE(output->Validates(Parse("figure<para<$#text>>")));
  EXPECT_FALSE(output->Validates(Parse("figure")));
}

TEST_F(TransformTest, SelectOutputRespectsEnvelopeContext) {
  // Sections directly under the article (not nested) whose first item
  // after the title is a figure: context constrains what can be selected.
  query::SelectionQuery q =
      ParseQ("select(title<$#text> figure<image> "
             "(para<$#text>|figure<image>|caption<$#text>|table|"
             "section<%z>*^z|$#text)*; section article)");
  auto output = SelectOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_FALSE(output->IsEmpty());
  EXPECT_TRUE(output->Validates(
      Parse("section<title<$#text> figure<image>>")));
  EXPECT_FALSE(output->Validates(
      Parse("section<title<$#text> para<$#text>>")));
  EXPECT_FALSE(output->Validates(Parse("figure<image>")));
}

TEST_F(TransformTest, ImpossibleQueryYieldsEmptyOutput) {
  // Captions can never appear directly under article in a valid document.
  query::SelectionQuery q = ParseQ("select(*; caption article)");
  auto output = SelectOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok());
  EXPECT_TRUE(output->IsEmpty());
}

TEST_F(TransformTest, SubhedgeConditionNarrowsOutput) {
  // Sections whose content is exactly a title followed by tables.
  query::SelectionQuery q =
      ParseQ("select(title<$#text> table*; section (section|article)*)");
  auto output = SelectOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_TRUE(output->Validates(Parse("section<title<$#text> table table>")));
  EXPECT_TRUE(output->Validates(Parse("section<title<$#text>>")));
  EXPECT_FALSE(
      output->Validates(Parse("section<title<$#text> para<$#text>>")));
}

TEST_F(TransformTest, DeleteAllFigures) {
  query::SelectionQuery q = ParseQ("select(*; figure (section|article)*)");
  auto output = DeleteOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  query::SelectionQuery q2 = ParseQ("select(*; figure (section|article)*)");
  auto eval = query::SelectionEvaluator::Create(q2);
  ASSERT_TRUE(eval.ok());

  Rng rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 60 + 40 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    Hedge erased = EraseNodes(doc, eval->Locate(doc));
    EXPECT_TRUE(output->Validates(erased)) << erased.ToString(vocab_);
  }

  // Documents still containing figures are not erase images.
  EXPECT_FALSE(output->Validates(
      Parse("article<title<$#text> section<title<$#text> figure<image>>>")));
  // The figure-free version is.
  EXPECT_TRUE(output->Validates(
      Parse("article<title<$#text> section<title<$#text>>>")));
  // But other schema constraints still apply.
  EXPECT_FALSE(output->Validates(Parse("article")));
}

TEST_F(TransformTest, RenameFiguresEverywhere) {
  query::SelectionQuery q = ParseQ("select(*; figure (section|article)*)");
  hedge::SymbolId fig = vocab_.symbols.Intern("fig");
  auto output = RenameOutputSchema(*schema_, q, fig);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  auto eval = query::SelectionEvaluator::Create(q);
  ASSERT_TRUE(eval.ok());

  // Property: relabeling located nodes of valid documents yields members.
  Rng rng(44);
  for (int trial = 0; trial < 5; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 60 + 40 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    std::vector<bool> located = eval->Locate(doc);
    Hedge renamed;
    std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId parent) {
      hedge::Label label = doc.label(src);
      if (located[src]) label.id = fig;
      NodeId c = renamed.Append(parent, label);
      for (NodeId kid = doc.first_child(src); kid != kNullNode;
           kid = doc.next_sibling(kid)) {
        copy(kid, c);
      }
    };
    for (NodeId r : doc.roots()) copy(r, kNullNode);
    EXPECT_TRUE(output->Validates(renamed)) << renamed.ToString(vocab_);
    // Documents still using the old name where it would be located are not
    // members (every figure is located by this query).
    bool had_figure = false;
    for (bool b : located) had_figure |= b;
    if (had_figure) {
      EXPECT_FALSE(output->Validates(doc));
    }
  }

  EXPECT_TRUE(output->Validates(
      Parse("article<title<$#text> section<title<$#text> fig<image>>>")));
  EXPECT_FALSE(output->Validates(
      Parse("article<title<$#text> section<title<$#text> figure<image>>>")));
}

TEST_F(TransformTest, RenameWithSiblingConditionIsSelective) {
  // Rename only figures immediately followed by a caption.
  query::SelectionQuery q = ParseQ(
      "select(*; [*; figure; caption<$#text> "
      "(para<$#text>|figure<image>|caption<$#text>|table|"
      "section<%z>*^z|title<$#text>|$#text)*] (section|article)*)");
  hedge::SymbolId fig = vocab_.symbols.Intern("fig");
  auto output = RenameOutputSchema(*schema_, q, fig);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // Captioned figure renamed, bare figure untouched.
  EXPECT_TRUE(output->Validates(
      Parse("article<title<$#text> section<title<$#text> fig<image> "
            "caption<$#text> figure<image>>>")));
  // A captioned figure must not keep the old name.
  EXPECT_FALSE(output->Validates(
      Parse("article<title<$#text> section<title<$#text> figure<image> "
            "caption<$#text>>>")));
  // An uncaptioned fig (renamed where nothing was located) is wrong too.
  EXPECT_FALSE(output->Validates(
      Parse("article<title<$#text> section<title<$#text> fig<image>>>")));
}

TEST_F(TransformTest, FormatSchemaRoundTripsTransformOutputs) {
  query::SelectionQuery q = ParseQ("select(*; figure (section|article)*)");
  auto output = DeleteOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok());
  Schema pruned(automata::PruneNha(output->nha()));
  std::string grammar = FormatSchema(pruned, vocab_);
  auto reparsed = ParseSchema(grammar, vocab_);
  ASSERT_TRUE(reparsed.ok()) << grammar << "\n"
                             << reparsed.status().ToString();
  auto equal = SchemasEquivalent(pruned, *reparsed);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(*equal) << grammar;
}

TEST_F(TransformTest, FormatSchemaRoundTripsInputGrammar) {
  std::string grammar = FormatSchema(*schema_, vocab_);
  auto reparsed = ParseSchema(grammar, vocab_);
  ASSERT_TRUE(reparsed.ok()) << grammar;
  auto equal = SchemasEquivalent(*schema_, *reparsed);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(*equal) << grammar;
}

TEST_F(TransformTest, SampleMatchingDocumentIsValidAndLocates) {
  struct Case {
    const char* name;
    const char* query;
  };
  const Case cases[] = {
      {"figures anywhere", "select(*; figure (section|article)*)"},
      {"empty-content sections at depth 2",
       "select(title<$#text>; section section article)"},
      {"figure followed by caption",
       "select(*; [*; figure; caption<$#text> "
       "(para<$#text>|figure<image>|caption<$#text>|table|"
       "section<%z>*^z|title<$#text>|$#text)*] (section|article)*)"},
  };
  for (const Case& c : cases) {
    query::SelectionQuery q = ParseQ(c.query);
    auto sample = SampleMatchingDocument(*schema_, q);
    ASSERT_TRUE(sample.ok()) << c.name << ": " << sample.status().ToString();
    ASSERT_TRUE(sample->has_value()) << c.name;
    const Hedge& doc = (*sample)->document;
    NodeId located = (*sample)->located;

    EXPECT_TRUE(schema_->Validates(doc))
        << c.name << ": " << doc.ToString(vocab_);
    auto eval = query::SelectionEvaluator::Create(q);
    ASSERT_TRUE(eval.ok());
    std::vector<bool> hits = eval->Locate(doc);
    ASSERT_LT(located, hits.size()) << c.name;
    EXPECT_TRUE(hits[located])
        << c.name << ": node " << located << " in " << doc.ToString(vocab_);
  }
}

TEST_F(TransformTest, SampleMatchingDocumentEmptyWhenImpossible) {
  query::SelectionQuery q = ParseQ("select(*; caption article)");
  auto sample = SampleMatchingDocument(*schema_, q);
  ASSERT_TRUE(sample.ok());
  EXPECT_FALSE(sample->has_value());
}

TEST_F(TransformTest, DeleteWithSiblingCondition) {
  // Delete figures immediately followed by a caption.
  query::SelectionQuery q = ParseQ(
      "select(*; [*; figure; caption<$#text> "
      "(para<$#text>|figure<image>|caption<$#text>|table|"
      "section<%z>*^z|title<$#text>|$#text)*] (section|article)*)");
  auto output = DeleteOutputSchema(*schema_, q);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  auto eval = query::SelectionEvaluator::Create(q);
  ASSERT_TRUE(eval.ok());

  Rng rng(43);
  for (int trial = 0; trial < 6; ++trial) {
    workload::ArticleOptions options;
    options.target_nodes = 60 + 40 * trial;
    Hedge doc = workload::RandomArticle(rng, vocab_, options);
    Hedge erased = EraseNodes(doc, eval->Locate(doc));
    EXPECT_TRUE(output->Validates(erased)) << erased.ToString(vocab_);
  }
}

}  // namespace
}  // namespace hedgeq::schema
