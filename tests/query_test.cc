#include <gtest/gtest.h>

#include <string>

#include "query/evaluator.h"
#include "query/phr_compile.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::query {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;
using phr::NaivePhrMatcher;
using phr::ParsePhr;
using phr::Phr;

// PHRs exercised by the randomized agreement sweep. All symbols come from
// the article/random generators' vocabulary.
const char* kSweepPhrs[] = {
    // Pure path expressions.
    "figure section*",
    "figure (section|article)*",
    "para section* article",
    "(section)+",
    // Sibling conditions.
    "[*; figure; caption<$#text*> (para<$#text*>|figure|caption<$#text*>|"
    "table|section<%z>*^z|image|title<$#text*>|$#text)*] (section|article)*",
    "[title<$#text*>; figure; *] (section|article)*",
    "[*; section; ()] (section|article)*",
    // Conditions on both sides.
    "[(para<$#text*>|title<$#text*>)*; figure; *] (section|article)*",
    // Counting ancestors: figures at even section depth (regex structure
    // over the vertical axis — beyond XPath's location paths).
    "figure (section section)* article",
    "figure section (section section)* article",
    // Random-hedge alphabet (a0..a3, $x).
    "a0*",
    "a1 a0*",
    "[a0<%z>*^z|$x (a0<%z>*^z|a1<%z>*^z|$x)*; a1; *] (a0|a1|a2|a3)*",
    "[*; a2; (a0<%z>*^z|a1<%z>*^z|a2<%z>*^z|a3<%z>*^z|$x)* $x] (a0|a1)*",
};

class PhrAgreementTest : public ::testing::TestWithParam<const char*> {};

// The central correctness property: Algorithm 1 (two linear traversals via
// Theorem 4 artifacts) locates exactly the nodes whose envelopes the direct
// Definition 19 matcher accepts.
TEST_P(PhrAgreementTest, EvaluatorAgreesWithNaiveOracle) {
  Vocabulary vocab;
  auto phr = ParsePhr(GetParam(), vocab);
  ASSERT_TRUE(phr.ok()) << phr.status().ToString();
  auto evaluator = PhrEvaluator::Create(*phr);
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  NaivePhrMatcher naive(*phr);

  Rng rng(20010615);
  size_t total_located = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Hedge doc;
    if (trial % 2 == 0) {
      workload::ArticleOptions options;
      options.target_nodes = 60 + 30 * trial;
      doc = workload::RandomArticle(rng, vocab, options);
    } else {
      workload::RandomHedgeOptions options;
      options.target_nodes = 40 + 20 * trial;
      doc = workload::RandomHedge(rng, vocab, options);
    }
    std::vector<bool> located = evaluator->Locate(doc);
    for (NodeId n = 0; n < doc.num_nodes(); ++n) {
      bool expected = false;
      if (doc.label(n).kind == hedge::LabelKind::kSymbol) {
        expected = naive.Matches(doc.EnvelopeOf(n));
      }
      EXPECT_EQ(located[n], expected)
          << GetParam() << " node " << n << " in " << doc.ToString(vocab);
      total_located += located[n] ? 1 : 0;
    }
  }
  // The sweep should not be vacuous for path-style queries; sibling-heavy
  // ones may legitimately match rarely.
  (void)total_located;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PhrAgreementTest,
                         ::testing::ValuesIn(kSweepPhrs));

class QueryTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(QueryTest, PathExpressionLocatesFiguresUnderSections) {
  auto phr = ParsePhr("figure section*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto evaluator = PhrEvaluator::Create(*phr);
  ASSERT_TRUE(evaluator.ok());

  Hedge doc = Parse("section<figure section<figure para> para> figure");
  std::vector<bool> located = evaluator->Locate(doc);
  std::vector<NodeId> hits;
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (located[n]) hits.push_back(n);
  }
  // All three figures: two nested under sections, one at the top level.
  ASSERT_EQ(hits.size(), 3u);
  for (NodeId n : hits) {
    EXPECT_EQ(vocab_.symbols.NameOf(doc.label(n).id), "figure");
  }
}

TEST_F(QueryTest, AllAncestorsCondition) {
  // The paper's "a*" path expression beyond XPath: every ancestor is a.
  auto phr = ParsePhr("b a*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto evaluator = PhrEvaluator::Create(*phr);
  ASSERT_TRUE(evaluator.ok());

  Hedge doc = Parse("a<b a<b> c<b>> b");
  std::vector<bool> located = evaluator->Locate(doc);
  size_t count = 0;
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!located[n]) continue;
    ++count;
    for (NodeId p = doc.parent(n); p != hedge::kNullNode; p = doc.parent(p)) {
      EXPECT_EQ(vocab_.symbols.NameOf(doc.label(p).id), "a");
    }
  }
  // b under a, b under a<a>, and the top-level b; NOT the b under c.
  EXPECT_EQ(count, 3u);
}

TEST_F(QueryTest, SiblingClassesMatchDirectRuns) {
  auto phr = ParsePhr("[a0*; a1; a0*] (a0|a1)*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());

  Rng rng(5);
  workload::RandomHedgeOptions options;
  options.target_nodes = 80;
  Hedge doc = workload::RandomHedge(rng, vocab_, options);
  std::vector<automata::HState> states = compiled->dha().Run(doc);
  SiblingClasses classes =
      ComputeSiblingClasses(doc, states, compiled->equiv());

  // Reference: run the equiv DFA directly on each prefix/suffix.
  auto check_group = [&](const std::vector<NodeId>& kids) {
    for (size_t j = 0; j < kids.size(); ++j) {
      std::vector<strre::Symbol> prefix, suffix;
      for (size_t i = 0; i < j; ++i) prefix.push_back(states[kids[i]]);
      for (size_t i = j + 1; i < kids.size(); ++i) {
        suffix.push_back(states[kids[i]]);
      }
      EXPECT_EQ(classes.elder[kids[j]], compiled->equiv().Run(prefix));
      EXPECT_EQ(classes.younger[kids[j]], compiled->equiv().Run(suffix));
    }
  };
  check_group(doc.roots());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind == hedge::LabelKind::kSymbol) {
      check_group(doc.ChildrenOf(n));
    }
  }
}

TEST_F(QueryTest, CompiledArtifactsShapes) {
  auto phr = ParsePhr("[(); a; b] [b; a; ()]", vocab_);
  ASSERT_TRUE(phr.ok());
  auto compiled = CompilePhr(*phr);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->num_triplets(), 2u);
  EXPECT_EQ(compiled->num_symbols(), 1u);  // only symbol "a"
  EXPECT_GE(compiled->num_classes(), 2u);
  // The equivalence DFA is complete over the DHA states.
  for (strre::StateId c = 0; c < compiled->equiv().num_states(); ++c) {
    for (automata::HState q = 0; q < compiled->dha().num_states(); ++q) {
      EXPECT_NE(compiled->equiv().Next(c, q), strre::kNoState);
    }
  }
}

TEST_F(QueryTest, UnknownSymbolsNeverLocated) {
  auto phr = ParsePhr("figure section*", vocab_);
  ASSERT_TRUE(phr.ok());
  auto evaluator = PhrEvaluator::Create(*phr);
  ASSERT_TRUE(evaluator.ok());
  Hedge doc = Parse("weird<figure>");
  std::vector<bool> located = evaluator->Locate(doc);
  // The figure's ancestor is not a section: not located. The weird node has
  // no triplet: not located either.
  for (NodeId n = 0; n < doc.num_nodes(); ++n) EXPECT_FALSE(located[n]);
}

TEST_F(QueryTest, DeterminizationCapsFallBackToLazyEngine) {
  auto phr = ParsePhr("[a<%z>*^z; b; a<%z>*^z]*", vocab_);
  ASSERT_TRUE(phr.ok());
  ExecBudget budget;
  budget.max_states = 1;
  // The raw compilation reports exhaustion...
  auto compiled = CompilePhr(*phr, budget);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted);
  // ...but the evaluator degrades to the lazy engine and still answers.
  auto evaluator = PhrEvaluator::Create(*phr, budget);
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  EXPECT_TRUE(evaluator->fallback_used());
  EXPECT_EQ(evaluator->compiled(), nullptr);
  Hedge doc = Parse("b<a<a>>");
  std::vector<bool> located = evaluator->Locate(doc);
  EXPECT_EQ(located.size(), doc.num_nodes());
  EXPECT_TRUE(evaluator->stats().fallback_used);
}

}  // namespace
}  // namespace hedgeq::query
