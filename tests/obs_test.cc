// hedgeq::obs — registry semantics, exporter round-trips (we parse what we
// emit), span nesting under early exit and exceptions, catalogue name
// stability, and the zero-overhead guard for disabled instrumentation.
//
// Each TEST runs in its own process under ctest (gtest_discover_tests), but
// every test that flips the global gates restores them and resets the
// registry anyway, so the file also behaves when run as one binary.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "automata/lazy_dha.h"
#include "obs/catalogue.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/scope.h"
#include "query/selection.h"
#include "schema/schema.h"
#include "schema/streaming.h"
#include "xml/xml.h"

namespace hedgeq::obs {
namespace {

// Restores the global gates and zeroes the registry around one test.
class ObsGuard {
 public:
  ObsGuard() {
    Registry().Reset();
    SetEnabled(true);
  }
  ~ObsGuard() {
    SetEnabled(false);
    SetTraceEnabled(false);
    Registry().Reset();
  }
};

TEST(ObsRegistryTest, CountersGaugesHistogramsAggregate) {
  ObsGuard guard;
  Counter* c = Registry().GetCounter("test.counter");
  c->Add(3);
  c->Increment();
  EXPECT_EQ(c->value(), 4u);
  EXPECT_EQ(Registry().GetCounter("test.counter"), c) << "interned by name";

  Gauge* g = Registry().GetGauge("test.gauge");
  g->Set(7);
  g->SetMax(5);
  EXPECT_EQ(g->value(), 7u) << "SetMax must not lower";
  g->SetMax(11);
  EXPECT_EQ(g->value(), 11u);

  Histogram* h = Registry().GetHistogram("test.hist");
  h->Observe(0);
  h->Observe(1);
  h->Observe(1023);  // bucket 9
  h->Observe(1024);  // bucket 10
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 0u + 1 + 1023 + 1024);
  EXPECT_EQ(h->bucket(0), 2u) << "0 and 1 both land in bucket 0";
  EXPECT_EQ(h->bucket(9), 1u);
  EXPECT_EQ(h->bucket(10), 1u);

  Registry().Reset();
  EXPECT_EQ(c->value(), 0u) << "Reset zeroes but keeps handles valid";
  EXPECT_EQ(h->count(), 0u);
}

TEST(ObsRegistryTest, MacrosAreNoOpsWhileDisabled) {
  Registry().Reset();
  ASSERT_FALSE(Enabled()) << "tests start with the gate off";
  HEDGEQ_OBS_COUNT("test.disabled.counter", 5);
  HEDGEQ_OBS_GAUGE_SET("test.disabled.gauge", 5);
  HEDGEQ_OBS_OBSERVE("test.disabled.hist", 5);
  { HEDGEQ_OBS_SPAN(span, "test.disabled.span"); }
  for (const std::string& name : Registry().MetricNames()) {
    EXPECT_EQ(name.find("test.disabled"), std::string::npos)
        << "disabled macro registered " << name;
  }
}

TEST(ObsRegistryTest, MetricsJsonRoundTrips) {
  ObsGuard guard;
  Registry().GetCounter("rt.counter")->Add(42);
  Registry().GetGauge("rt.gauge")->Set(7);
  Registry().GetHistogram("rt.hist")->Observe(9);
  Registry().RecordSpan("rt.span", 1500);
  Registry().RecordSpan("rt.span", 500);

  const std::string snapshot = Registry().MetricsJson();
  Result<json::ValuePtr> parsed = json::Parse(snapshot);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << snapshot;
  const json::Value& root = **parsed;

  const json::Value* counters = root.Get("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* c = counters->Get("rt.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->integer(), 42);

  const json::Value* gauges = root.Get("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Get("rt.gauge"), nullptr);
  EXPECT_EQ(gauges->Get("rt.gauge")->integer(), 7);

  const json::Value* hists = root.Get("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* h = hists->Get("rt.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Get("count")->integer(), 1);
  EXPECT_EQ(h->Get("sum")->integer(), 9);

  const json::Value* spans = root.Get("spans");
  ASSERT_NE(spans, nullptr);
  const json::Value* s = spans->Get("rt.span");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->Get("count")->integer(), 2);
  EXPECT_EQ(s->Get("total_ns")->integer(), 2000);
}

TEST(ObsRegistryTest, HostileMetricAndSpanNamesEscapeCleanly) {
  ObsGuard guard;
  // Nothing in the pipeline emits names like these, but the snapshot must
  // not become unparseable if a caller does: quotes, backslashes and
  // control characters all have to survive the JSON round trip.
  const std::string hostile = "bad\"name\\with\tescapes";
  Registry().GetCounter(hostile)->Add(1);
  Registry().RecordSpan(hostile, 99);
  const std::string snapshot = Registry().MetricsJson();
  Result<json::ValuePtr> parsed = json::Parse(snapshot);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << snapshot;
  const json::Value* counters = (*parsed)->Get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Get(hostile), nullptr) << "name survives verbatim";
  EXPECT_EQ(counters->Get(hostile)->integer(), 1);
  const json::Value* spans = (*parsed)->Get("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(spans->Get(hostile), nullptr);
  EXPECT_EQ(spans->Get(hostile)->Get("total_ns")->integer(), 99);
}

TEST(ObsRegistryTest, SnapshotCarriesCurrentProcessGauges) {
  ObsGuard guard;
  RegisterCatalogue();
  const std::string snapshot = Registry().MetricsJson();
  Result<json::ValuePtr> parsed = json::Parse(snapshot);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* gauges = (*parsed)->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* rss = gauges->Get(metrics::kProcessPeakRssBytes);
  ASSERT_NE(rss, nullptr);
  EXPECT_GT(rss->integer(), 1 << 20) << "a running test uses > 1 MiB";
  const json::Value* threads = gauges->Get(metrics::kProcessThreads);
  ASSERT_NE(threads, nullptr);
  EXPECT_GE(threads->integer(), 1);
  ASSERT_NE(gauges->Get(metrics::kProcessWallMs), nullptr);
}

TEST(ObsTraceTest, ChromeTraceJsonRoundTripsWithNesting) {
  ObsGuard guard;
  SetTraceEnabled(true);
  {
    HEDGEQ_OBS_SPAN(outer, "trace.outer");
    outer.AddArg("k", 3);
    { HEDGEQ_OBS_SPAN(inner, "trace.inner"); }
  }
  const std::string trace = Registry().ChromeTraceJson();
  Result<json::ValuePtr> parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << trace;
  const json::Value* events = (*parsed)->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 2u);

  // Both spans can open within the same microsecond, so identify them by
  // name rather than relying on the exporter's ts ordering.
  const json::Value* outer_p = nullptr;
  const json::Value* inner_p = nullptr;
  for (const json::ValuePtr& e : events->array()) {
    if (e->Get("name")->string() == "trace.outer") outer_p = e.get();
    if (e->Get("name")->string() == "trace.inner") inner_p = e.get();
  }
  ASSERT_NE(outer_p, nullptr);
  ASSERT_NE(inner_p, nullptr);
  const json::Value& outer = *outer_p;
  const json::Value& inner = *inner_p;
  EXPECT_EQ(inner.Get("ph")->string(), "X");
  EXPECT_EQ(inner.Get("args")->Get("depth")->integer(), 1);
  EXPECT_EQ(outer.Get("args")->Get("depth")->integer(), 0);
  EXPECT_EQ(outer.Get("args")->Get("k")->integer(), 3);
  // The outer span contains the inner one in time.
  EXPECT_LE(outer.Get("ts")->integer(), inner.Get("ts")->integer());
}

TEST(ObsTraceTest, SpansCloseThroughEarlyExitAndException) {
  ObsGuard guard;
  SetTraceEnabled(true);

  auto early_exit = [](bool bail) {
    HEDGEQ_OBS_SPAN(span, "trace.early");
    if (bail) return 1;
    return 0;
  };
  EXPECT_EQ(early_exit(true), 1);

  try {
    HEDGEQ_OBS_SPAN(span, "trace.throwing");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }

  // Both spans must have closed at depth 0; a leak would leave the next
  // span at depth > 0.
  {
    HEDGEQ_OBS_SPAN(span, "trace.after");
  }
  std::vector<TraceEvent> events = Registry().SnapshotTrace();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "trace.early");
  EXPECT_EQ(events[1].name, "trace.throwing");
  EXPECT_EQ(events[2].name, "trace.after");
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.depth, 0u) << e.name << " opened at a leaked depth";
  }
}

TEST(ObsCatalogueTest, RegisteredNamesAreStable) {
  ObsGuard guard;
  RegisterCatalogue();
  std::set<std::string> names;
  for (const std::string& n : Registry().MetricNames()) names.insert(n);

  for (const char* c : CatalogueCounters()) {
    EXPECT_TRUE(names.count(std::string("counter/") + c)) << c;
  }
  for (const char* g : CatalogueGauges()) {
    EXPECT_TRUE(names.count(std::string("gauge/") + g)) << g;
  }
  for (const char* h : CatalogueHistograms()) {
    EXPECT_TRUE(names.count(std::string("histogram/") + h)) << h;
  }
  // Spot-check entries the docs and check.sh golden file rely on. These are
  // contractual: never rename, only append (see catalogue.h).
  EXPECT_TRUE(names.count("counter/automata.determinize.subsets_explored"));
  EXPECT_TRUE(names.count("counter/phr.eval.pass1.nodes"));
  EXPECT_TRUE(names.count("counter/automata.lazy.cache_hits"));
  EXPECT_TRUE(names.count("gauge/automata.determinize.certify_frac_pct"));
  EXPECT_TRUE(names.count("histogram/hist.doc_nodes"));
}

TEST(ObsScopeTest, ScopesOnDistinctThreadsNeverCrossAttribute) {
  // The serve::Engine contract: each worker opens its own top-level
  // QueryScope, so per-request attribution must be airtight across a pool
  // — work done by thread A while thread B's scope is open lands in A's
  // scope only, nested scopes included, and annotations never migrate.
  ObsGuard guard;

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  // The shared counter every thread bumps: a scope that aggregated
  // cross-thread would see up to kThreads * kIters here.
  Counter* shared = Registry().GetCounter(metrics::kServeAdmitted);
  std::vector<ScopeSnapshot> outer(kThreads);
  std::vector<ScopeSnapshot> inner(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Per-thread marker counters: if attribution ever crossed threads,
      // a scope would see some other thread's marker.
      const std::string mine = "test.scope.thread" + std::to_string(t);
      Counter* marker = Registry().GetCounter(mine);
      Counter* nested = Registry().GetCounter(mine + ".nested");
      QueryScope outer_scope("outer:" + std::to_string(t));
      outer_scope.Annotate("thread", std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        marker->Increment();
        shared->Increment();
      }
      {
        QueryScope inner_scope("inner:" + std::to_string(t));
        for (int i = 0; i < kIters; ++i) nested->Increment();
        inner[t] = inner_scope.Snapshot();
      }
      outer[t] = outer_scope.Snapshot();
    });
  }
  for (std::thread& t : pool) t.join();

  for (int t = 0; t < kThreads; ++t) {
    const std::string mine = "test.scope.thread" + std::to_string(t);
    // Own work, fully attributed.
    EXPECT_EQ(outer[t].CounterValue(mine), static_cast<uint64_t>(kIters));
    EXPECT_EQ(outer[t].CounterValue(metrics::kServeAdmitted),
              static_cast<uint64_t>(kIters))
        << "a scope must see only its own thread's share of a shared "
           "counter";
    // The inner scope saw only its own nested work, and the outer scope
    // absorbed it on close (nesting composes within a thread).
    EXPECT_EQ(inner[t].CounterValue(mine + ".nested"),
              static_cast<uint64_t>(kIters));
    EXPECT_EQ(inner[t].CounterValue(mine), 0u)
        << "inner scope must not see pre-existing outer counts";
    EXPECT_EQ(outer[t].CounterValue(mine + ".nested"),
              static_cast<uint64_t>(kIters));
    // No sibling thread's markers or annotations leaked in.
    for (int u = 0; u < kThreads; ++u) {
      if (u == t) continue;
      const std::string theirs = "test.scope.thread" + std::to_string(u);
      EXPECT_EQ(outer[t].CounterValue(theirs), 0u)
          << "thread " << u << "'s work leaked into thread " << t
          << "'s scope";
      EXPECT_EQ(outer[t].CounterValue(theirs + ".nested"), 0u);
    }
    ASSERT_EQ(outer[t].annotations.size(), 1u);
    EXPECT_EQ(outer[t].annotations[0].first, "thread");
    EXPECT_EQ(outer[t].annotations[0].second, std::to_string(t));
  }
  // Scopes attribute, they never divert: the process registry still saw
  // everything from every thread.
  EXPECT_EQ(shared->value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ObsPipelineTest, InstrumentedPipelineFillsMetrics) {
  ObsGuard guard;
  SetTraceEnabled(true);
  RegisterCatalogue();

  hedge::Vocabulary vocab;
  auto doc = xml::ParseXml(
      "<article><title/><section><figure><image/></figure></section>"
      "</article>",
      vocab);
  ASSERT_TRUE(doc.ok());
  auto query = query::ParseSelectionQuery(
      "select(*; figure (section|article)*)", vocab);
  ASSERT_TRUE(query.ok());
  auto eval = query::SelectionEvaluator::Create(*query);
  ASSERT_TRUE(eval.ok());
  std::vector<hedge::NodeId> located = eval->LocatedNodes(doc->hedge);
  EXPECT_EQ(located.size(), 1u);

  auto counter = [](const char* name) {
    return Registry().GetCounter(name)->value();
  };
  EXPECT_GT(counter(metrics::kXmlParseBytes), 0u);
  EXPECT_EQ(counter(metrics::kXmlParseNodes), doc->hedge.num_nodes());
  EXPECT_GT(counter(metrics::kDetSubsetsExplored), 0u);
  EXPECT_GT(counter(metrics::kPhrCompileTriplets), 0u);
  EXPECT_EQ(counter(metrics::kPhrEvalPass1Nodes), doc->hedge.num_nodes());
  EXPECT_EQ(counter(metrics::kPhrEvalPass2Nodes), doc->hedge.num_nodes());
  EXPECT_EQ(counter(metrics::kPhrEvalLocated), 1u);
  EXPECT_GT(Registry().GetGauge(metrics::kXmlParseMaxDepth)->value(), 0u);

  std::set<std::string> span_names;
  for (const TraceEvent& e : Registry().SnapshotTrace()) {
    span_names.insert(e.name);
  }
  EXPECT_TRUE(span_names.count(spans::kXmlParse));
  EXPECT_TRUE(span_names.count(spans::kDeterminize));
  EXPECT_TRUE(span_names.count(spans::kPhrCompile));
  EXPECT_TRUE(span_names.count(spans::kPhrEvalPass1));
  EXPECT_TRUE(span_names.count(spans::kPhrEvalPass2));
}

TEST(ObsPipelineTest, StreamingValidationReportsDeltaStats) {
  ObsGuard guard;
  hedge::Vocabulary vocab;
  auto schema = schema::ParseSchema(
      "start = Doc\nDoc = doc<Sec*>\nSec = sec<>\n", vocab);
  ASSERT_TRUE(schema.ok());

  ExecBudget tiny;
  tiny.max_states = 1;  // force the lazy fallback
  auto validator = schema::StreamingValidator::Create(*schema, tiny);
  ASSERT_TRUE(validator.ok());
  ASSERT_TRUE(validator->fallback_used());

  auto v1 = validator->ValidateWithStats("<doc><sec/></doc>", vocab);
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->valid);
  auto v2 = validator->ValidateWithStats("<doc><sec/></doc>", vocab);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->valid);
  // Per-run deltas: the second, fully cached run must not re-report the
  // first run's materializations (the old ResetStats-based accounting did
  // this correctly but mutated the shared engine; deltas must agree).
  EXPECT_EQ(v2->stats.states_materialized, 0u)
      << "second run should be served from cache";
  EXPECT_GT(v2->stats.cache_hits, 0u);
  EXPECT_GT(Registry().GetCounter(metrics::kSchemaValidateEvents)->value(),
            0u);
  EXPECT_EQ(
      Registry().GetCounter(metrics::kSchemaValidateFallbackRuns)->value(),
      2u);
}

TEST(ObsStatsTest, EvalStatsDeltaSubtractsCountersKeepsPeak) {
  automata::EvalStats before;
  before.states_materialized = 5;
  before.cache_hits = 10;
  before.cache_misses = 5;
  before.cache_evictions = 1;
  before.peak_cache_bytes = 100;
  automata::EvalStats after = before;
  after.states_materialized = 7;
  after.cache_hits = 25;
  after.cache_misses = 7;
  after.cache_evictions = 1;
  after.peak_cache_bytes = 250;
  after.fallback_used = true;

  automata::EvalStats d = automata::EvalStats::Delta(before, after);
  EXPECT_EQ(d.states_materialized, 2u);
  EXPECT_EQ(d.cache_hits, 15u);
  EXPECT_EQ(d.cache_misses, 2u);
  EXPECT_EQ(d.cache_evictions, 0u);
  EXPECT_EQ(d.peak_cache_bytes, 250u) << "high-water mark carries over";
  EXPECT_TRUE(d.fallback_used);
}

// The disabled fast path must stay branch-plus-relaxed-load cheap. The
// bound is deliberately loose (100x a plain loop) so the test never flakes
// under load; catching an accidental mutex or map lookup on the fast path
// is the point, and those are >1000x.
TEST(ObsOverheadTest, DisabledMacroIsNearFree) {
  ASSERT_FALSE(Enabled());
  constexpr int kIters = 2'000'000;

  volatile uint64_t sink = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) sink = sink + 1;
  auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    HEDGEQ_OBS_COUNT("overhead.test", 1);
    sink = sink + 1;
  }
  auto t2 = std::chrono::steady_clock::now();

  const auto plain = t1 - t0;
  const auto instrumented = t2 - t1;
  EXPECT_LT(instrumented.count(), plain.count() * 100 + 10'000'000)
      << "disabled HEDGEQ_OBS_COUNT is too expensive: plain="
      << plain.count() << "ns instrumented=" << instrumented.count() << "ns";
}

}  // namespace
}  // namespace hedgeq::obs
