// The chaos matrix: every cache/IO failpoint armed probabilistically (with
// fixed seeds — the schedule is chaotic, the fault pattern is not) while
// the full worker pool serves a request storm. The robustness contract
// under fire:
//   1. every submitted request resolves to exactly one terminal outcome,
//   2. every non-shed, non-error answer matches the single-threaded oracle
//      computed with no faults armed (degraded and retried included —
//      degradation and retry are answer-preserving, never answer-changing),
//   3. the process neither crashes nor deadlocks (the test finishing is
//      the assertion; ctest's timeout is the backstop).
// Run under the tsan preset this is also the engine's data-race proof.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "automata/determinize.h"
#include "cache/cache.h"
#include "query/selection.h"
#include "serve/serve.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "xml/xml.h"

namespace hedgeq::serve {
namespace {

namespace fs = std::filesystem;

const char* const kQueries[] = {
    "select(*; figure (section|article)*)",
    "select(*; caption (section|article)*)",
    "select(*; title section*)",
    "select((para|$x)*; [(); figure; caption] (para|figure|caption|section)*)",
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

TEST(ServeChaosTest, FullMatrixUnderConcurrency) {
  hedge::Vocabulary vocab;
  Rng rng(11);
  workload::ArticleOptions doc_options;
  doc_options.target_nodes = 200;
  hedge::Hedge h = workload::RandomArticle(rng, vocab, doc_options);
  xml::XmlDocument doc = xml::WrapHedge(h, vocab);

  // Single-threaded oracle, computed before any fault is armed and before
  // the cache is installed.
  size_t oracle[kNumQueries];
  for (size_t q = 0; q < kNumQueries; ++q) {
    auto parsed = query::ParseSelectionQuery(kQueries[q], vocab);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto eval = query::SelectionEvaluator::Create(*parsed);
    ASSERT_TRUE(eval.ok()) << eval.status().ToString();
    oracle[q] = eval->LocatedNodes(doc.hedge).size();
  }

  // A real on-disk automaton cache so the cache failpoints fire on the
  // engine's actual load/store path (the engine wraps it in its lock).
  const std::string dir =
      (fs::path(::testing::TempDir()) / "hedgeq_serve_chaos").string();
  fs::remove_all(dir);
  auto cache = cache::AutomatonCache::Open(dir);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  cache.value()->BindVocabulary(&vocab);
  automata::SetDeterminizeCache(cache.value().get());

  EngineOptions options;
  options.workers = 4;
  options.queue_cap = 512;
  options.memoize = false;  // every request walks the full compile path
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 1;
  options.retry.backoff_max_ms = 4;
  options.breaker.failure_threshold = 4;
  options.breaker.open_ms = 5;  // the breaker cycles during the storm
  Engine engine(vocab, options);
  engine.SetDocument(std::move(doc));
  engine.Start();

  const char* const kArmed[] = {
      "cache/short-read", "cache/torn-write", "cache/enospc",
      "cache/rename",     "determinize/subset", "serve/exec",
  };
  failpoint::ArmProbability("cache/short-read", 0.5, 1);
  failpoint::ArmProbability("cache/torn-write", 0.5, 2);
  failpoint::ArmProbability("cache/enospc", 0.4, 3);
  failpoint::ArmProbability("cache/rename", 0.4, 4);
  failpoint::ArmEveryNth("determinize/subset", 9);
  failpoint::ArmProbability("serve/exec", 0.15, 5);

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 50;
  struct Tagged {
    size_t query;
    std::future<Response> future;
  };
  std::vector<std::vector<Tagged>> per_thread(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      per_thread[t].reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        const size_t q = static_cast<size_t>(t + i) % kNumQueries;
        per_thread[t].push_back({q, engine.Submit(kQueries[q])});
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  size_t total = 0, answered = 0, shed = 0, errors = 0;
  for (auto& batch : per_thread) {
    for (Tagged& tagged : batch) {
      Response resp = tagged.future.get();  // exactly one terminal outcome
      ++total;
      switch (resp.outcome) {
        case Outcome::kOk:
        case Outcome::kDegraded:
        case Outcome::kRetried:
          // Chaos may degrade or delay an answer; it must never change it.
          EXPECT_EQ(resp.located, oracle[tagged.query])
              << kQueries[tagged.query] << " under "
              << OutcomeName(resp.outcome);
          EXPECT_TRUE(resp.status.ok());
          ++answered;
          break;
        case Outcome::kShed:
          EXPECT_FALSE(resp.status.ok());
          ++shed;
          break;
        case Outcome::kError:
          EXPECT_FALSE(resp.status.ok());
          ++errors;
          break;
      }
    }
  }
  EXPECT_EQ(total, static_cast<size_t>(kSubmitters * kPerSubmitter));
  // No deadlines and a roomy queue: nothing should shed in this storm, and
  // plenty must still answer despite the fault rates.
  EXPECT_EQ(shed, 0u);
  EXPECT_GT(answered, 0u);

  engine.Stop();
  const Engine::Counters tally = engine.counters();
  EXPECT_EQ(tally.completed, total);
  EXPECT_EQ(tally.ok + tally.degraded + tally.retried + tally.shed +
                tally.errors,
            total)
      << "every request gets exactly one terminal outcome";
  EXPECT_EQ(tally.errors, errors);

  // The matrix is only a matrix if every armed point actually fired.
  for (const char* name : kArmed) {
    EXPECT_GE(failpoint::FiredCount(name), 1u) << name << " never fired";
  }

  failpoint::DisarmAll();
  automata::SetDeterminizeCache(nullptr);
  fs::remove_all(dir);
}

TEST(ServeChaosTest, DocumentLoadRetriesTransientIoFaults) {
  hedge::Vocabulary vocab;
  Rng rng(3);
  workload::ArticleOptions doc_options;
  doc_options.target_nodes = 60;
  hedge::Hedge h = workload::RandomArticle(rng, vocab, doc_options);
  xml::XmlDocument doc = xml::WrapHedge(h, vocab);
  const std::string path =
      (fs::path(::testing::TempDir()) / "hedgeq_serve_chaos_doc.xml")
          .string();
  {
    const std::string text = xml::SerializeXml(doc, vocab);
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

  EngineOptions options;
  options.retry.max_attempts = 3;
  options.retry.backoff_base_ms = 1;
  Engine engine(vocab, options);
  engine.Start();

  // Two transient faults, three attempts: the load succeeds on the last.
  failpoint::ArmFirstN("serve/load-doc", 2);
  auto loaded = engine.LoadDocumentFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, doc.hedge.num_nodes());
  EXPECT_EQ(engine.counters().retry_attempts, 2u);

  // An absorbing fault exhausts the retry budget and surfaces cleanly.
  failpoint::Arm("serve/load-doc");
  auto failed = engine.LoadDocumentFile(path);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  failpoint::DisarmAll();

  // A semantic error (missing file) is not retried.
  const uint64_t retries_before = engine.counters().retry_attempts;
  auto missing = engine.LoadDocumentFile(path + ".nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.counters().retry_attempts, retries_before);

  engine.Stop();
  fs::remove(path);
}

}  // namespace
}  // namespace hedgeq::serve
