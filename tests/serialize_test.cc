#include <gtest/gtest.h>

#include "automata/determinize.h"
#include "automata/serialize.h"
#include "hre/compile.h"
#include "schema/schema.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::automata {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

TEST(SerializeTest, RoundTripPreservesLanguage) {
  Vocabulary vocab;
  Rng rng(707);
  for (const char* expr :
       {"a", "(a|b)* c", "a<b<$x> c>*", "a<%z>*^z", "d<p<$x> p<$y>*>+",
        "(b|c) @z a<%z>"}) {
    auto e = hre::ParseHre(expr, vocab);
    ASSERT_TRUE(e.ok());
    Nha original = hre::CompileHre(*e);
    std::string text = SerializeNha(original, vocab);

    // Load into a FRESH vocabulary: names must re-intern consistently.
    Vocabulary vocab2;
    auto loaded = DeserializeNha(text, vocab2);
    ASSERT_TRUE(loaded.ok()) << expr << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->num_states(), original.num_states());
    EXPECT_EQ(loaded->rules().size(), original.rules().size());

    for (int trial = 0; trial < 30; ++trial) {
      workload::RandomHedgeOptions options;
      options.target_nodes = 1 + rng.Below(10);
      // Same generator stream against both vocabularies: the documents are
      // structurally identical because names intern in the same order.
      Rng fork1 = rng;
      Rng fork2 = rng;
      Hedge doc1 = workload::RandomHedge(fork1, vocab, options);
      Hedge doc2 = workload::RandomHedge(fork2, vocab2, options);
      rng = fork1;
      ASSERT_EQ(original.Accepts(doc1), loaded->Accepts(doc2)) << expr;
    }
  }
}

TEST(SerializeTest, SchemaRoundTrip) {
  Vocabulary vocab;
  auto schema = schema::ParseSchema(
      "start = A\nA = a<B* C?>\nB = b<>\nC = $t\n", vocab);
  ASSERT_TRUE(schema.ok());
  std::string text = SerializeNha(schema->nha(), vocab);
  auto loaded = DeserializeNha(text, vocab);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const char* doc : {"a", "a<b b>", "a<$t>", "a<b $t>", "a<$t b>", "b"}) {
    auto h = ParseHedge(doc, vocab);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(schema->nha().Accepts(*h), loaded->Accepts(*h)) << doc;
  }
}

TEST(SerializeTest, RejectsMalformedInput) {
  Vocabulary vocab;
  EXPECT_FALSE(DeserializeNha("", vocab).ok());
  EXPECT_FALSE(DeserializeNha("nha 2\nstates 1\nfinal\n", vocab).ok());
  EXPECT_FALSE(DeserializeNha("nha 1\nstates x\n", vocab).ok());
  EXPECT_FALSE(
      DeserializeNha("nha 1\nstates 1\nrule a 5\nnfa 0 -\naccept\nend\n"
                     "final\nnfa 0 -\naccept\nend\n",
                     vocab)
          .ok());  // target out of range
  EXPECT_FALSE(
      DeserializeNha("nha 1\nstates 1\nbogus\n", vocab).ok());
  // Truncated nfa block.
  EXPECT_FALSE(
      DeserializeNha("nha 1\nstates 1\nfinal\nnfa 2 0\naccept 1\nt 0 0 1\n",
                     vocab)
          .ok());
}

TEST(SerializeTest, DhaRoundTripIsByteIdentical) {
  Vocabulary vocab;
  for (const char* expr :
       {"a", "(a|b)* c<$x>", "a<b<$x> c>*", "a<%z>*^z", "(b|c) @z a<%z>"}) {
    auto e = hre::ParseHre(expr, vocab);
    ASSERT_TRUE(e.ok());
    Nha nha = hre::CompileHre(*e);
    BudgetScope scope{ExecBudget{}};
    auto det = Determinize(nha, scope);
    ASSERT_TRUE(det.ok()) << expr;
    std::string text = SerializeDha(det->dha, vocab);

    Vocabulary vocab2;
    auto loaded = DeserializeDha(text, vocab2);
    ASSERT_TRUE(loaded.ok()) << expr << ": " << loaded.status().ToString();
    // Re-serializing the loaded automaton against the fresh vocabulary must
    // reproduce the exact bytes (the format is canonical).
    EXPECT_EQ(SerializeDha(*loaded, vocab2), text) << expr;

    Rng rng(19);
    for (int trial = 0; trial < 20; ++trial) {
      workload::RandomHedgeOptions options;
      options.target_nodes = 1 + rng.Below(8);
      Rng fork1 = rng;
      Rng fork2 = rng;
      Hedge doc1 = workload::RandomHedge(fork1, vocab, options);
      Hedge doc2 = workload::RandomHedge(fork2, vocab2, options);
      rng = fork1;
      ASSERT_EQ(det->dha.Accepts(doc1), loaded->Accepts(doc2)) << expr;
    }
  }
}

TEST(SerializeTest, DhaRejectsMalformedInput) {
  Vocabulary vocab;
  EXPECT_FALSE(DeserializeDha("", vocab).ok());
  EXPECT_FALSE(DeserializeDha("nha 1\n", vocab).ok());
  EXPECT_FALSE(DeserializeDha("dha 2\nstates 1 0\n", vocab).ok());
  EXPECT_FALSE(DeserializeDha("dha 1\nstates x 0\n", vocab).ok());
  // Sink out of range.
  EXPECT_FALSE(
      DeserializeDha("dha 1\nstates 1 4\nhstates 1 0\nfinal 1 0\nend\n",
                     vocab)
          .ok());
  // Assignment references a horizontal state that does not exist.
  EXPECT_FALSE(
      DeserializeDha("dha 1\nstates 1 0\nhstates 1 0\nassign a 7 0\n"
                     "final 1 0\nend\n",
                     vocab)
          .ok());
  // Transition target out of range in the lifted final DFA.
  EXPECT_FALSE(
      DeserializeDha("dha 1\nstates 1 0\nhstates 1 0\nfinal 1 0\n"
                     "d 0 0 9\nend\n",
                     vocab)
          .ok());
  // Accepting state out of range.
  EXPECT_FALSE(
      DeserializeDha("dha 1\nstates 1 0\nhstates 1 0\nfinal 1 0\n"
                     "accept 3\nend\n",
                     vocab)
          .ok());
  // Missing end trailer.
  EXPECT_FALSE(
      DeserializeDha("dha 1\nstates 1 0\nhstates 1 0\nfinal 1 0\n", vocab)
          .ok());

  // Sanity: a real serialization still loads after this gauntlet.
  auto e = hre::ParseHre("a<b*>", vocab);
  ASSERT_TRUE(e.ok());
  Nha nha = hre::CompileHre(*e);
  BudgetScope scope{ExecBudget{}};
  auto det = Determinize(nha, scope);
  ASSERT_TRUE(det.ok());
  EXPECT_TRUE(DeserializeDha(SerializeDha(det->dha, vocab), vocab).ok());
}

TEST(SerializeTest, CommentsAndBlankLinesIgnored) {
  Vocabulary vocab;
  auto schema = schema::ParseSchema("start = A\nA = a<>\n", vocab);
  ASSERT_TRUE(schema.ok());
  std::string text = SerializeNha(schema->nha(), vocab);
  std::string padded = "# cached automaton\n\n" + text + "\n# trailing\n";
  auto loaded = DeserializeNha(padded, vocab);
  ASSERT_TRUE(loaded.ok());
  auto h = ParseHedge("a", vocab);
  EXPECT_TRUE(loaded->Accepts(*h));
}

}  // namespace
}  // namespace hedgeq::automata
