#include <gtest/gtest.h>

#include "strre/automaton.h"
#include "strre/ops.h"

namespace hedgeq::strre {
namespace {

std::vector<Symbol> W(std::initializer_list<Symbol> syms) { return syms; }

TEST(NfaTest, HandBuiltAcceptance) {
  // (ab)* by hand.
  Nfa nfa;
  StateId s0 = nfa.AddState(true);
  StateId s1 = nfa.AddState(false);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 1, s0);
  EXPECT_TRUE(nfa.Accepts(W({})));
  EXPECT_TRUE(nfa.Accepts(W({0, 1})));
  EXPECT_TRUE(nfa.Accepts(W({0, 1, 0, 1})));
  EXPECT_FALSE(nfa.Accepts(W({0})));
  EXPECT_FALSE(nfa.Accepts(W({1, 0})));
}

TEST(NfaTest, EpsilonMoves) {
  Nfa nfa;
  StateId s0 = nfa.AddState(false);
  StateId s1 = nfa.AddState(false);
  StateId s2 = nfa.AddState(true);
  nfa.AddEpsilon(s0, s1);
  nfa.AddTransition(s1, 5, s2);
  EXPECT_TRUE(nfa.Accepts(W({5})));
  EXPECT_FALSE(nfa.Accepts(W({})));
}

TEST(NfaTest, AlphabetInUse) {
  Nfa nfa;
  StateId s0 = nfa.AddState();
  nfa.AddTransition(s0, 7, s0);
  nfa.AddTransition(s0, 3, s0);
  nfa.AddTransition(s0, 7, s0);
  EXPECT_EQ(nfa.AlphabetInUse(), (std::vector<Symbol>{3, 7}));
}

TEST(DfaTest, RunAndImplicitDead) {
  Dfa dfa;
  StateId s0 = dfa.AddState(false);
  StateId s1 = dfa.AddState(true);
  dfa.SetTransition(s0, 0, s1);
  EXPECT_EQ(dfa.Run(W({0})), s1);
  EXPECT_EQ(dfa.Run(W({1})), kNoState);
  EXPECT_TRUE(dfa.Accepts(W({0})));
  EXPECT_FALSE(dfa.Accepts(W({0, 0})));
}

TEST(DfaTest, NextFromDeadStaysDead) {
  Dfa dfa;
  dfa.AddState(false);
  EXPECT_EQ(dfa.Next(kNoState, 0), kNoState);
}

TEST(EmptyAutomataTest, EmptyNfaAcceptsNothing) {
  Nfa nfa;
  EXPECT_FALSE(nfa.Accepts(W({})));
  EXPECT_TRUE(IsEmpty(nfa));
}

}  // namespace
}  // namespace hedgeq::strre
