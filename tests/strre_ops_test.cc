#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "strre/ops.h"
#include "util/interner.h"

namespace hedgeq::strre {
namespace {

// Fixed tiny alphabet {a=0, b=1, c=2} for exhaustive comparisons.
const std::vector<Symbol> kAlphabet = {0, 1, 2};

Symbol ResolveAbc(std::string_view name) {
  if (name == "a") return 0;
  if (name == "b") return 1;
  if (name == "c") return 2;
  ADD_FAILURE() << "unknown symbol " << name;
  return 99;
}

Regex Rx(const std::string& text) {
  auto r = ParseRegex(text, ResolveAbc);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// All words over kAlphabet with length <= max_len.
std::vector<std::vector<Symbol>> AllWords(size_t max_len) {
  std::vector<std::vector<Symbol>> out = {{}};
  std::vector<std::vector<Symbol>> frontier = {{}};
  for (size_t len = 1; len <= max_len; ++len) {
    std::vector<std::vector<Symbol>> next;
    for (const auto& w : frontier) {
      for (Symbol s : kAlphabet) {
        auto w2 = w;
        w2.push_back(s);
        next.push_back(w2);
        out.push_back(std::move(w2));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

class RegexSemanticsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegexSemanticsTest, DeterminizePreservesLanguage) {
  Regex e = Rx(GetParam());
  Nfa nfa = CompileRegex(e);
  Dfa dfa = Determinize(nfa);
  for (const auto& w : AllWords(5)) {
    EXPECT_EQ(nfa.Accepts(w), dfa.Accepts(w)) << GetParam();
  }
}

TEST_P(RegexSemanticsTest, MinimizePreservesLanguage) {
  Regex e = Rx(GetParam());
  Dfa dfa = Determinize(CompileRegex(e));
  Dfa min = Minimize(dfa, kAlphabet);
  for (const auto& w : AllWords(5)) {
    EXPECT_EQ(dfa.Accepts(w), min.Accepts(w)) << GetParam();
  }
  EXPECT_LE(min.num_states(), dfa.num_states() + 1);
}

TEST_P(RegexSemanticsTest, ComplementFlipsMembership) {
  Regex e = Rx(GetParam());
  Dfa dfa = Determinize(CompileRegex(e));
  Dfa comp = Complement(dfa, kAlphabet);
  for (const auto& w : AllWords(5)) {
    EXPECT_NE(dfa.Accepts(w), comp.Accepts(w)) << GetParam();
  }
}

TEST_P(RegexSemanticsTest, ReverseAcceptsMirror) {
  Regex e = Rx(GetParam());
  Nfa nfa = CompileRegex(e);
  Nfa rev = ReverseNfa(nfa);
  for (const auto& w : AllWords(4)) {
    std::vector<Symbol> mirror(w.rbegin(), w.rend());
    EXPECT_EQ(nfa.Accepts(w), rev.Accepts(mirror)) << GetParam();
  }
}

TEST_P(RegexSemanticsTest, MinimalDfaEquivalentToSelf) {
  Regex e = Rx(GetParam());
  Dfa a = MinimalDfaOfRegex(e, kAlphabet);
  Dfa b = Determinize(CompileRegex(e));
  EXPECT_TRUE(Equivalent(a, b, kAlphabet)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegexSemanticsTest,
    ::testing::Values("{}", "()", "a", "a b c", "a|b", "(a|b)*",
                      "a* b* c*", "(a b)* c?", "a (b|c)+ a", "(a|b|c)*",
                      "((a|b) (b|c))*", "a? b? c?", "(a a|b b)*",
                      "a* (b a*)*", "(a|()) (b|{}) c*"));

TEST(ProductTest, IntersectionOfOverlappingStars) {
  // (a|b)* intersect (b|c)* == b*.
  Dfa ab = Determinize(CompileRegex(Rx("(a|b)*")));
  Dfa bc = Determinize(CompileRegex(Rx("(b|c)*")));
  Dfa inter = Product(ab, bc, BoolOp::kAnd);
  Dfa bstar = Determinize(CompileRegex(Rx("b*")));
  EXPECT_TRUE(Equivalent(inter, bstar, kAlphabet));
}

TEST(ProductTest, UnionCoversBoth) {
  Dfa a = Determinize(CompileRegex(Rx("a a")));
  Dfa b = Determinize(CompileRegex(Rx("b")));
  Dfa u = Product(a, b, BoolOp::kOr);
  EXPECT_TRUE(u.Accepts(std::vector<Symbol>{0, 0}));
  EXPECT_TRUE(u.Accepts(std::vector<Symbol>{1}));
  EXPECT_FALSE(u.Accepts(std::vector<Symbol>{0}));
}

TEST(ProductTest, DifferenceRemovesSecond) {
  Dfa all = Determinize(CompileRegex(Rx("(a|b|c)*")));
  Dfa b = Determinize(CompileRegex(Rx("(a|b)*")));
  Dfa diff = Product(all, b, BoolOp::kDiff);
  EXPECT_FALSE(diff.Accepts(std::vector<Symbol>{}));
  EXPECT_FALSE(diff.Accepts(std::vector<Symbol>{0, 1}));
  EXPECT_TRUE(diff.Accepts(std::vector<Symbol>{2}));
  EXPECT_TRUE(diff.Accepts(std::vector<Symbol>{0, 2, 1}));
}

TEST(NfaCombinatorTest, UnionConcatStar) {
  Nfa a = CompileRegex(Rx("a"));
  Nfa b = CompileRegex(Rx("b"));
  Nfa u = UnionNfa(a, b);
  EXPECT_TRUE(u.Accepts(std::vector<Symbol>{0}));
  EXPECT_TRUE(u.Accepts(std::vector<Symbol>{1}));
  EXPECT_FALSE(u.Accepts(std::vector<Symbol>{0, 1}));

  Nfa cat = ConcatNfa(a, b);
  EXPECT_TRUE(cat.Accepts(std::vector<Symbol>{0, 1}));
  EXPECT_FALSE(cat.Accepts(std::vector<Symbol>{0}));

  Nfa star = StarNfa(cat);
  EXPECT_TRUE(star.Accepts(std::vector<Symbol>{}));
  EXPECT_TRUE(star.Accepts(std::vector<Symbol>{0, 1, 0, 1}));
  EXPECT_FALSE(star.Accepts(std::vector<Symbol>{0, 1, 0}));
}

TEST(SubstituteSetsTest, RelabelsAndFansOut) {
  Nfa a = CompileRegex(Rx("a b"));
  // a -> {b, c}; b -> {a}.
  Nfa sub = SubstituteSets(a, [](Symbol s) {
    if (s == 0) return std::vector<Symbol>{1, 2};
    return std::vector<Symbol>{0};
  });
  EXPECT_TRUE(sub.Accepts(std::vector<Symbol>{1, 0}));
  EXPECT_TRUE(sub.Accepts(std::vector<Symbol>{2, 0}));
  EXPECT_FALSE(sub.Accepts(std::vector<Symbol>{0, 1}));
}

TEST(EmptinessTest, WitnessIsShortest) {
  Dfa d = Determinize(CompileRegex(Rx("a a a|b b")));
  auto w = ShortestWitness(d);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->size(), 2u);
  EXPECT_EQ(*w, (std::vector<Symbol>{1, 1}));
}

TEST(EmptinessTest, EmptyLanguage) {
  Dfa d = Determinize(CompileRegex(Rx("{}")));
  EXPECT_TRUE(IsEmpty(d));
  EXPECT_FALSE(ShortestWitness(d).has_value());
}

TEST(CompleteTest, TotalOverAlphabet) {
  Dfa d = Determinize(CompileRegex(Rx("a")));
  Dfa total = Complete(d, kAlphabet);
  for (StateId s = 0; s < total.num_states(); ++s) {
    for (Symbol a : kAlphabet) {
      EXPECT_NE(total.Next(s, a), kNoState);
    }
  }
}

TEST(MinimizeTest, CollapsesRedundantStates) {
  // (a|b) and (b|a) compile to different NFAs but the same 2-state min DFA.
  Dfa m1 = MinimalDfaOfRegex(Rx("a|b"), kAlphabet);
  Dfa m2 = MinimalDfaOfRegex(Rx("b|a"), kAlphabet);
  EXPECT_EQ(m1.num_states(), m2.num_states());
  EXPECT_EQ(m1.num_states(), 2u);
}

TEST(ProductAllTest, StatesAreRightInvariantClasses) {
  // Components: F1 = a*, F2 = (a|b)* b. Two words land in the same product
  // state iff every right-extension is treated identically by both.
  std::vector<Dfa> parts;
  parts.push_back(Determinize(CompileRegex(Rx("a*"))));
  parts.push_back(Determinize(CompileRegex(Rx("(a|b)* b"))));
  MultiDfa multi = ProductAll(parts, kAlphabet);

  // The product is total.
  for (StateId s = 0; s < multi.dfa.num_states(); ++s) {
    for (Symbol a : kAlphabet) EXPECT_NE(multi.dfa.Next(s, a), kNoState);
  }

  // Saturation: class membership determines acceptance in each component.
  for (const auto& w : AllWords(4)) {
    StateId cls = multi.dfa.Run(w);
    ASSERT_NE(cls, kNoState);
    EXPECT_EQ(parts[0].Accepts(w), multi.component_accepts[0][cls]);
    EXPECT_EQ(parts[1].Accepts(w), multi.component_accepts[1][cls]);
  }

  // Right invariance: w1 ~ w2 implies w1 x ~ w2 x for every letter. This is
  // structural (same state, same successor); spot-check a pair.
  StateId c1 = multi.dfa.Run(std::vector<Symbol>{0});
  StateId c2 = multi.dfa.Run(std::vector<Symbol>{0, 0});
  if (c1 == c2) {
    for (Symbol a : kAlphabet) {
      EXPECT_EQ(multi.dfa.Next(c1, a), multi.dfa.Next(c2, a));
    }
  }
}

}  // namespace
}  // namespace hedgeq::strre
