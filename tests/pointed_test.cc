#include <gtest/gtest.h>

#include "hedge/pointed.h"

namespace hedgeq::hedge {
namespace {

class PointedTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(PointedTest, FindEta) {
  EXPECT_TRUE(FindEta(Parse("a<@>")).has_value());
  EXPECT_FALSE(FindEta(Parse("a<b>")).has_value());
  EXPECT_FALSE(FindEta(Parse("a<@> b<@>")).has_value());  // two etas
  EXPECT_TRUE(IsPointed(Parse("a<$x> b<c<@> $y>")));
}

TEST_F(PointedTest, ProductMatchesFigure1) {
  // Figure 1: a<x> b<eta>  (+)  a<x> b<c<eta> y>  =  a<x> b<c<a<x> b<eta>> y>.
  Hedge u = Parse("a<$x> b<@>");
  Hedge v = Parse("a<$x> b<c<@> $y>");
  Hedge product = PointedProduct(u, v);
  Hedge expected = Parse("a<$x> b<c<a<$x> b<@>> $y>");
  EXPECT_TRUE(product.EqualTo(expected));
}

TEST_F(PointedTest, ProductIsAssociative) {
  Hedge u = Parse("a<@>");
  Hedge v = Parse("b<@> c");
  Hedge w = Parse("d d<@>");
  Hedge left = PointedProduct(PointedProduct(u, v), w);
  Hedge right = PointedProduct(u, PointedProduct(v, w));
  EXPECT_TRUE(left.EqualTo(right));
}

TEST_F(PointedTest, DecomposeMatchesPaperExample) {
  // a<x> b<c<eta> y> decomposes into c<eta> y and a<x> b<eta> (Section 5).
  Hedge u = Parse("a<$x> b<c<@> $y>");
  std::vector<PointedBase> bases = Decompose(u);
  ASSERT_EQ(bases.size(), 2u);

  // Innermost: c<eta> y -> elder = eps, label = c, younger = y.
  EXPECT_TRUE(bases[0].elder.empty());
  EXPECT_EQ(vocab_.symbols.NameOf(bases[0].label), "c");
  EXPECT_TRUE(bases[0].younger.EqualTo(Parse("$y")));

  // Topmost: a<x> b<eta> -> elder = a<x>, label = b, younger = eps.
  EXPECT_TRUE(bases[1].elder.EqualTo(Parse("a<$x>")));
  EXPECT_EQ(vocab_.symbols.NameOf(bases[1].label), "b");
  EXPECT_TRUE(bases[1].younger.empty());
}

TEST_F(PointedTest, DecomposeRecomposeRoundTrip) {
  for (const char* text :
       {"a<@>", "a b<@> c", "a<b<c<@>>>", "a<$x> b<c<@> $y>",
        "x y<a b<d<@> e> c>", "p q<r<s<@> t> u> v"}) {
    Hedge u = Parse(text);
    std::vector<PointedBase> bases = Decompose(u);
    Hedge rebuilt = Recompose(bases);
    EXPECT_TRUE(rebuilt.EqualTo(u)) << text;
  }
}

TEST_F(PointedTest, DecompositionDepthEqualsEtaDepth) {
  Hedge u = Parse("a<b<c<d<@>>>>");
  EXPECT_EQ(Decompose(u).size(), 4u);
}

TEST_F(PointedTest, EnvelopeDecomposesWithNodeLevelFirst) {
  // The envelope of node n decomposes with base 0 describing n itself:
  // elder siblings of n, label of n, younger siblings of n (Section 7).
  Hedge doc = Parse("r<a b<c d e> f>");
  NodeId r = doc.roots()[0];
  NodeId b = doc.ChildrenOf(r)[1];
  NodeId d = doc.ChildrenOf(b)[1];
  Hedge env = doc.EnvelopeOf(d);
  std::vector<PointedBase> bases = Decompose(env);
  ASSERT_EQ(bases.size(), 3u);
  EXPECT_EQ(vocab_.symbols.NameOf(bases[0].label), "d");
  EXPECT_TRUE(bases[0].elder.EqualTo(Parse("c")));
  EXPECT_TRUE(bases[0].younger.EqualTo(Parse("e")));
  EXPECT_EQ(vocab_.symbols.NameOf(bases[1].label), "b");
  EXPECT_TRUE(bases[1].elder.EqualTo(Parse("a")));
  EXPECT_TRUE(bases[1].younger.EqualTo(Parse("f")));
  EXPECT_EQ(vocab_.symbols.NameOf(bases[2].label), "r");
}

}  // namespace
}  // namespace hedgeq::hedge
