#include <gtest/gtest.h>

#include "workload/generators.h"

namespace hedgeq::workload {
namespace {

using hedge::Hedge;
using hedge::Vocabulary;

TEST(RandomHedgeTest, ExactNodeCountAndDeterminism) {
  Vocabulary v1, v2;
  Rng r1(11), r2(11);
  RandomHedgeOptions options;
  options.target_nodes = 500;
  Hedge h1 = RandomHedge(r1, v1, options);
  Hedge h2 = RandomHedge(r2, v2, options);
  EXPECT_EQ(h1.num_nodes(), 500u);
  EXPECT_TRUE(h1.EqualTo(h2));
}

TEST(RandomHedgeTest, DifferentSeedsDiffer) {
  Vocabulary vocab;
  Rng r1(1), r2(2);
  RandomHedgeOptions options;
  options.target_nodes = 200;
  Hedge h1 = RandomHedge(r1, vocab, options);
  Hedge h2 = RandomHedge(r2, vocab, options);
  EXPECT_FALSE(h1.EqualTo(h2));
}

TEST(RandomHedgeTest, RespectsSymbolCount) {
  Vocabulary vocab;
  Rng rng(3);
  RandomHedgeOptions options;
  options.target_nodes = 300;
  options.num_symbols = 2;
  Hedge h = RandomHedge(rng, vocab, options);
  for (hedge::NodeId n : h.PreOrder()) {
    if (h.label(n).kind == hedge::LabelKind::kSymbol) {
      EXPECT_LT(h.label(n).id, 2u);
    }
  }
}

TEST(RandomArticleTest, StructureBasics) {
  Vocabulary vocab;
  Rng rng(7);
  ArticleOptions options;
  options.target_nodes = 800;
  Hedge h = RandomArticle(rng, vocab, options);
  ArticleVocab names = ArticleVocab::Intern(vocab);

  // Roughly the requested size (the builder may finish a subtree).
  EXPECT_GE(h.num_nodes(), 800u);
  EXPECT_LE(h.num_nodes(), 900u);

  ASSERT_EQ(h.roots().size(), 1u);
  EXPECT_EQ(h.label(h.roots()[0]).id, names.article);

  size_t figures = 0, captions_after_figure = 0;
  for (hedge::NodeId n : h.PreOrder()) {
    if (h.label(n).kind != hedge::LabelKind::kSymbol) continue;
    if (h.label(n).id == names.figure) {
      ++figures;
      hedge::NodeId next = h.next_sibling(n);
      if (next != hedge::kNullNode && h.label(next).id == names.caption) {
        ++captions_after_figure;
      }
    }
    if (h.label(n).id == names.section) {
      EXPECT_LE(h.DepthOf(n), options.max_section_depth);
    }
  }
  // The workload must exercise both figure variants.
  EXPECT_GT(figures, 5u);
  EXPECT_GT(captions_after_figure, 0u);
  EXPECT_LT(captions_after_figure, figures);
}

TEST(UniformTreeTest, SizeFormula) {
  Vocabulary vocab;
  Hedge h = UniformTree(vocab, 3, 2);  // 1 + 2 + 4 + 8
  EXPECT_EQ(h.num_nodes(), 15u);
  Hedge flat = UniformTree(vocab, 1, 10);
  EXPECT_EQ(flat.num_nodes(), 11u);
}

}  // namespace
}  // namespace hedgeq::workload
