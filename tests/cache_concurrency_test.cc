// Many threads, one cache directory. AutomatonCache instances are
// thread-compatible (one per thread), but any number of them may share a
// directory: writers publish with temp-file + atomic rename, so a reader
// sees the old entry, the new entry, or none — never a torn prefix — and
// every hit is still certificate-checked. Run under the tsan preset this
// doubles as a data-race check on the digest/serialize/validate paths.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "automata/determinize.h"
#include "automata/serialize.h"
#include "cache/cache.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "util/budget.h"

namespace hedgeq::cache {
namespace {

namespace fs = std::filesystem;

const char* const kExprs[] = {
    "a<b*> | c",
    "(a|b)* c<$x>",
    "article<section* figure>",
    "a b*",
};
constexpr size_t kNumExprs = sizeof(kExprs) / sizeof(kExprs[0]);

struct CompiledExpr {
  automata::Nha nha;
  automata::Determinized det;
  automata::DeterminizeWitness witness;
};

// Compiles and determinizes every expression against `vocab`.
std::vector<CompiledExpr> CompileAll(hedge::Vocabulary& vocab) {
  std::vector<CompiledExpr> out;
  for (const char* text : kExprs) {
    auto e = hre::ParseHre(text, vocab);
    EXPECT_TRUE(e.ok());
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(*e, scope);
    EXPECT_TRUE(nha.ok());
    automata::DeterminizeWitness witness;
    auto det = automata::Determinize(*nha, scope, &witness);
    EXPECT_TRUE(det.ok());
    out.push_back(CompiledExpr{std::move(nha).value(), std::move(det).value(),
                               std::move(witness)});
  }
  return out;
}

TEST(CacheConcurrencyTest, ManyThreadsShareOneDirectorySafely) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "hedgeq_cache_mt").string();
  fs::remove_all(dir);

  // Reference serializations from a main-thread pipeline.
  std::vector<std::string> want;
  {
    hedge::Vocabulary vocab;
    for (const CompiledExpr& c : CompileAll(vocab)) {
      want.push_back(automata::SerializeDha(c.det.dha, vocab));
    }
  }
  ASSERT_EQ(want.size(), kNumExprs);

  constexpr int kThreads = 8;
  constexpr int kIters = 32;
  std::atomic<uint64_t> hits{0};
  std::atomic<int> wrong{0};
  std::atomic<int> setup_failures{0};

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Per-thread vocabulary and cache instance; only the directory (and
      // the process-wide obs/failpoint globals, both idle here) is shared.
      hedge::Vocabulary vocab;
      auto cache = AutomatonCache::Open(dir);
      if (!cache.ok()) {
        ++setup_failures;
        return;
      }
      cache.value()->BindVocabulary(&vocab);
      std::vector<CompiledExpr> compiled = CompileAll(vocab);
      if (compiled.size() != kNumExprs) {
        ++setup_failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        const size_t k = static_cast<size_t>(t + i) % kNumExprs;
        const CompiledExpr& c = compiled[k];
        // Interleave rewrites of the same keys with lookups so renames
        // race against reads and each other.
        if ((t + i) % 3 == 0) {
          cache.value()->Store(c.nha, c.det, c.witness);
        }
        automata::Determinized out{automata::Dha{1, 1, 0, 0}, {}};
        automata::DeterminizeWitness witness;
        if (cache.value()->Lookup(c.nha, &out, &witness)) {
          ++hits;
          if (automata::SerializeDha(out.dha, vocab) != want[k]) ++wrong;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(setup_failures.load(), 0);
  EXPECT_EQ(wrong.load(), 0) << "a hit must always be the correct automaton";
  // Every thread stores each key at least once over kIters, so hits are
  // plentiful even under maximal interleaving.
  EXPECT_GT(hits.load(), 0u);

  // The atomic-rename protocol leaves no temp files behind.
  size_t stray_temps = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(".tmp.", 0) == 0) {
      ++stray_temps;
    }
  }
  EXPECT_EQ(stray_temps, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hedgeq::cache
