// Many threads, one cache directory. AutomatonCache instances are
// thread-compatible (one per thread), but any number of them may share a
// directory: writers publish with temp-file + atomic rename, so a reader
// sees the old entry, the new entry, or none — never a torn prefix — and
// every hit is still certificate-checked. Run under the tsan preset this
// doubles as a data-race check on the digest/serialize/validate paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "automata/determinize.h"
#include "automata/serialize.h"
#include "cache/cache.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "util/budget.h"

namespace hedgeq::cache {
namespace {

namespace fs = std::filesystem;

const char* const kExprs[] = {
    "a<b*> | c",
    "(a|b)* c<$x>",
    "article<section* figure>",
    "a b*",
};
constexpr size_t kNumExprs = sizeof(kExprs) / sizeof(kExprs[0]);

struct CompiledExpr {
  automata::Nha nha;
  automata::Determinized det;
  automata::DeterminizeWitness witness;
};

// Compiles and determinizes every expression against `vocab`.
std::vector<CompiledExpr> CompileAll(hedge::Vocabulary& vocab) {
  std::vector<CompiledExpr> out;
  for (const char* text : kExprs) {
    auto e = hre::ParseHre(text, vocab);
    EXPECT_TRUE(e.ok());
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(*e, scope);
    EXPECT_TRUE(nha.ok());
    automata::DeterminizeWitness witness;
    auto det = automata::Determinize(*nha, scope, &witness);
    EXPECT_TRUE(det.ok());
    out.push_back(CompiledExpr{std::move(nha).value(), std::move(det).value(),
                               std::move(witness)});
  }
  return out;
}

TEST(CacheConcurrencyTest, ManyThreadsShareOneDirectorySafely) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "hedgeq_cache_mt").string();
  fs::remove_all(dir);

  // Reference serializations from a main-thread pipeline.
  std::vector<std::string> want;
  {
    hedge::Vocabulary vocab;
    for (const CompiledExpr& c : CompileAll(vocab)) {
      want.push_back(automata::SerializeDha(c.det.dha, vocab));
    }
  }
  ASSERT_EQ(want.size(), kNumExprs);

  constexpr int kThreads = 8;
  constexpr int kIters = 32;
  std::atomic<uint64_t> hits{0};
  std::atomic<int> wrong{0};
  std::atomic<int> setup_failures{0};

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Per-thread vocabulary and cache instance; only the directory (and
      // the process-wide obs/failpoint globals, both idle here) is shared.
      hedge::Vocabulary vocab;
      auto cache = AutomatonCache::Open(dir);
      if (!cache.ok()) {
        ++setup_failures;
        return;
      }
      cache.value()->BindVocabulary(&vocab);
      std::vector<CompiledExpr> compiled = CompileAll(vocab);
      if (compiled.size() != kNumExprs) {
        ++setup_failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        const size_t k = static_cast<size_t>(t + i) % kNumExprs;
        const CompiledExpr& c = compiled[k];
        // Interleave rewrites of the same keys with lookups so renames
        // race against reads and each other.
        if ((t + i) % 3 == 0) {
          cache.value()->Store(c.nha, c.det, c.witness);
        }
        automata::Determinized out{automata::Dha{1, 1, 0, 0}, {}};
        automata::DeterminizeWitness witness;
        if (cache.value()->Lookup(c.nha, &out, &witness)) {
          ++hits;
          if (automata::SerializeDha(out.dha, vocab) != want[k]) ++wrong;
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(setup_failures.load(), 0);
  EXPECT_EQ(wrong.load(), 0) << "a hit must always be the correct automaton";
  // Every thread stores each key at least once over kIters, so hits are
  // plentiful even under maximal interleaving.
  EXPECT_GT(hits.load(), 0u);

  // The atomic-rename protocol leaves no temp files behind.
  size_t stray_temps = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(".tmp.", 0) == 0) {
      ++stray_temps;
    }
  }
  EXPECT_EQ(stray_temps, 0u);
  fs::remove_all(dir);
}

// Serialization modulo harmless assignment rows: `absent symbol` and `row
// of all sink targets` are the same total function, and a byte flip in a
// sink row's symbol name manufactures exactly that difference without
// changing any answer — the certificate checker rightly accepts it. The
// canonical form drops sink-target assign lines so the comparison below
// is semantic, not textual.
std::string CanonicalDha(const automata::Dha& dha,
                         const hedge::Vocabulary& vocab) {
  std::istringstream in(automata::SerializeDha(dha, vocab));
  const std::string sink = std::to_string(dha.sink());
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("assign ", 0) == 0 &&
        line.size() > sink.size() + 1 &&
        line.compare(line.size() - sink.size() - 1, sink.size() + 1,
                     " " + sink) == 0) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

// The serving-era stress shape: a pool of load/store threads (one cache
// instance each, as `hq serve` workers behind the engine's lock would
// drive them) while one sweeper instance flips --cache-max-bytes between
// tiny and unbounded — so eviction sweeps race every lookup and store —
// and a tamperer flips bytes in published entries on disk. The contract:
// corrupt or half-evicted entries quarantine into recomputes, never into
// wrong automata; a hit is always (semantically) the correct automaton.
TEST(CacheConcurrencyTest, EvictionSweepAndTamperingStayAnswerPreserving) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "hedgeq_cache_sweep").string();
  fs::remove_all(dir);

  std::vector<std::string> want;
  {
    hedge::Vocabulary vocab;
    for (const CompiledExpr& c : CompileAll(vocab)) {
      want.push_back(CanonicalDha(c.det.dha, vocab));
    }
  }
  ASSERT_EQ(want.size(), kNumExprs);

  constexpr int kThreads = 6;
  constexpr int kIters = 48;
  std::atomic<uint64_t> hits{0};
  std::atomic<int> wrong{0};
  std::atomic<int> setup_failures{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      hedge::Vocabulary vocab;
      auto cache = AutomatonCache::Open(dir);
      if (!cache.ok()) {
        ++setup_failures;
        return;
      }
      cache.value()->BindVocabulary(&vocab);
      std::vector<CompiledExpr> compiled = CompileAll(vocab);
      if (compiled.size() != kNumExprs) {
        ++setup_failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        const size_t k = static_cast<size_t>(t + i) % kNumExprs;
        const CompiledExpr& c = compiled[k];
        cache.value()->Store(c.nha, c.det, c.witness);
        automata::Determinized out{automata::Dha{1, 1, 0, 0}, {}};
        automata::DeterminizeWitness witness;
        if (cache.value()->Lookup(c.nha, &out, &witness)) {
          ++hits;
          if (CanonicalDha(out.dha, vocab) != want[k]) ++wrong;
        }
      }
    });
  }

  // The sweeper: its own instance over the same directory, alternating a
  // one-byte bound (every Store sweeps everything but the newest entry)
  // with unbounded, republishing to trigger the sweep each time.
  std::thread sweeper([&] {
    hedge::Vocabulary vocab;
    auto cache = AutomatonCache::Open(dir);
    if (!cache.ok()) {
      ++setup_failures;
      return;
    }
    cache.value()->BindVocabulary(&vocab);
    std::vector<CompiledExpr> compiled = CompileAll(vocab);
    int flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.value()->set_max_bytes((flip++ % 2 == 0) ? 1 : 0);
      const CompiledExpr& c = compiled[static_cast<size_t>(flip) % kNumExprs];
      cache.value()->Store(c.nha, c.det, c.witness);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // The tamperer: flips one byte in the middle of each published entry it
  // can see. Readers must reject these via the certificate check.
  std::thread tamperer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::error_code ec;
      for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
           it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const std::string name = it->path().filename().string();
        if (name.rfind(".tmp.", 0) == 0) continue;
        std::FILE* f = std::fopen(it->path().c_str(), "r+b");
        if (f == nullptr) continue;
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        if (size > 8) {
          std::fseek(f, size / 2, SEEK_SET);
          const int byte = std::fgetc(f);
          if (byte != EOF) {
            std::fseek(f, size / 2, SEEK_SET);
            std::fputc(byte ^ 0x5a, f);
          }
        }
        std::fclose(f);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : pool) t.join();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();
  tamperer.join();

  EXPECT_EQ(setup_failures.load(), 0);
  EXPECT_EQ(wrong.load(), 0)
      << "eviction sweeps and tampering must only ever cause misses";
  // Every worker stores immediately before looking up, so even the 1-byte
  // bound leaves hits on the table.
  EXPECT_GT(hits.load(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hedgeq::cache
