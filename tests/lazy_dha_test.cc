// Equivalence of the on-the-fly subset engine (automata/lazy_dha.h) with
// eager Theorem 1 determinization: same subsets per node, same acceptance,
// same Theorem 3 marks — including under a cache so small that the LRU
// evicts constantly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "hre/compile.h"
#include "strre/ops.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::automata {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;
using strre::CompileRegex;
using strre::Concat;
using strre::Star;
using strre::Sym;

class LazyDhaTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  // The paper's Example 1 automaton (dealer / purchase pairs).
  Nha BuildM1() {
    Nha m;
    HState qd = m.AddState();
    HState qp1 = m.AddState();
    HState qp2 = m.AddState();
    HState qx = m.AddState();
    m.AddVariableState(vocab_.variables.Intern("x"), qx);
    hedge::SymbolId d = vocab_.symbols.Intern("d");
    hedge::SymbolId p = vocab_.symbols.Intern("p");
    m.AddRule(d, CompileRegex(Concat(Sym(qp1), Star(Sym(qp2)))), qd);
    m.AddRule(p, CompileRegex(Concat(Sym(qx), Sym(qx))), qp1);
    m.AddRule(p, CompileRegex(Concat(Sym(qx), Sym(qx))), qp2);
    m.AddRule(p, CompileRegex(Sym(qx)), qp1);
    m.SetFinal(CompileRegex(Star(Sym(qd))));
    return m;
  }

  // A deliberately nondeterministic automaton: accepts hedges over {a,b,x}
  // containing an "a" node whose children are all x leaves.
  Nha BuildGuesser() {
    Nha m;
    HState any = m.AddState();
    HState hit = m.AddState();
    HState leaf = m.AddState();
    hedge::SymbolId a = vocab_.symbols.Intern("a");
    hedge::SymbolId b = vocab_.symbols.Intern("b");
    m.AddVariableState(vocab_.variables.Intern("x"), leaf);
    strre::Regex anyseq = Star(strre::Alt(Sym(any), Sym(leaf)));
    for (hedge::SymbolId s : {a, b}) {
      m.AddRule(s, CompileRegex(anyseq), any);
      m.AddRule(s, CompileRegex(strre::ConcatAll({anyseq, Sym(hit), anyseq})),
                hit);
    }
    m.AddRule(a, CompileRegex(strre::Plus(Sym(leaf))), hit);
    m.SetFinal(CompileRegex(strre::ConcatAll(
        {Star(strre::Alt(Sym(any), Sym(leaf))), Sym(hit),
         Star(strre::Alt(Sym(any), Sym(leaf)))})));
    return m;
  }

  Hedge RandomDoc(Rng& rng, int size) {
    Hedge h;
    std::vector<NodeId> open = {hedge::kNullNode};
    hedge::SymbolId a = vocab_.symbols.Intern("a");
    hedge::SymbolId b = vocab_.symbols.Intern("b");
    hedge::VarId x = vocab_.variables.Intern("x");
    for (int i = 0; i < size; ++i) {
      NodeId parent = open[rng.Below(open.size())];
      switch (rng.Below(3)) {
        case 0:
          open.push_back(h.Append(parent, hedge::Label::Symbol(a)));
          break;
        case 1:
          open.push_back(h.Append(parent, hedge::Label::Symbol(b)));
          break;
        default:
          h.Append(parent, hedge::Label::Variable(x));
          break;
      }
    }
    return h;
  }

  // Asserts lazy and eager agree on `h`: per-node subsets, acceptance.
  void ExpectAgreement(const Nha& nha, const Determinized& det,
                       const LazyDha& lazy, const Hedge& h) {
    std::vector<HState> eager_run = det.dha.Run(h);
    std::vector<Bitset> lazy_run = lazy.Run(h);
    for (NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind == hedge::LabelKind::kEta) continue;
      EXPECT_EQ(lazy_run[n], det.subsets[eager_run[n]])
          << "node " << n << " in " << h.ToString(vocab_);
    }
    EXPECT_EQ(lazy.Accepts(h), det.dha.Accepts(h)) << h.ToString(vocab_);
    EXPECT_EQ(lazy.Accepts(h), nha.Accepts(h)) << h.ToString(vocab_);
  }

  Vocabulary vocab_;
};

TEST_F(LazyDhaTest, SubsetsMatchEagerOnPaperExamples) {
  Nha m1 = BuildM1();
  auto det = Determinize(m1);
  ASSERT_TRUE(det.ok());
  LazyDha lazy(m1);
  for (const char* text :
       {"d<p<$x> p<$y>>", "d<p<$x $x> p<$x $x>>", "d<p<$x>>", "",
        "d<p<$x $x>>", "d<p<$x $x> p<$x $x> p<$x $x>>", "p<$x>",
        "d<p<$x $x> p<$x>>", "unheard-of<d<p<$x>>>"}) {
    ExpectAgreement(m1, *det, lazy, Parse(text));
  }
  EXPECT_GT(lazy.stats().states_materialized, 0u);
  EXPECT_GT(lazy.stats().cache_hits, 0u);  // repeats pay a lookup, not work
}

TEST_F(LazyDhaTest, RandomizedAgreementWithEagerAndNha) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok());
  LazyDha lazy(guesser);
  Rng rng(20260806);
  for (int trial = 0; trial < 150; ++trial) {
    ExpectAgreement(guesser, *det, lazy,
                    RandomDoc(rng, 1 + static_cast<int>(rng.Below(40))));
  }
}

TEST_F(LazyDhaTest, MarkedRunMatchesEager) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok());
  LazyDha lazy(guesser);
  Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    Hedge h = RandomDoc(rng, 1 + static_cast<int>(rng.Below(30)));
    Dha::MarkedRun eager = det->dha.RunWithMarks(h);
    LazyDha::MarkedRun got = lazy.RunWithMarks(h);
    for (NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind != hedge::LabelKind::kSymbol) continue;
      EXPECT_EQ(got.marks[n], eager.marks[n])
          << "node " << n << " in " << h.ToString(vocab_);
      EXPECT_EQ(got.states[n], det->subsets[eager.states[n]]);
    }
  }
}

TEST_F(LazyDhaTest, StreamingRunMatchesBatchAcceptance) {
  Nha guesser = BuildGuesser();
  LazyDha lazy(guesser);
  Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    Hedge h = RandomDoc(rng, 1 + static_cast<int>(rng.Below(30)));
    LazyStreamingRun run(lazy);
    // Emit the document as SAX events, children between start and end.
    auto emit = [&](auto&& self, NodeId n) -> void {
      for (; n != hedge::kNullNode; n = h.next_sibling(n)) {
        const hedge::Label label = h.label(n);
        if (label.kind == hedge::LabelKind::kVariable) {
          run.Text(label.id);
        } else if (label.kind == hedge::LabelKind::kSymbol) {
          run.StartElement(label.id);
          self(self, h.first_child(n));
          run.EndElement(label.id);
        }
      }
    };
    emit(emit, h.roots().empty() ? hedge::kNullNode : h.roots().front());
    EXPECT_FALSE(run.InProgress());
    EXPECT_EQ(run.Accepted(), lazy.Accepts(h)) << h.ToString(vocab_);
  }
}

TEST_F(LazyDhaTest, TinyCacheEvictsButStaysCorrect) {
  Nha guesser = BuildGuesser();
  auto det = Determinize(guesser);
  ASSERT_TRUE(det.ok());
  LazyDhaOptions options;
  options.max_cache_bytes = 256;  // a handful of entries at most
  LazyDha lazy(guesser, options);
  Rng rng(4242);
  for (int trial = 0; trial < 80; ++trial) {
    Hedge h = RandomDoc(rng, 1 + static_cast<int>(rng.Below(35)));
    EXPECT_EQ(lazy.Accepts(h), det->dha.Accepts(h)) << h.ToString(vocab_);
  }
  const EvalStats& stats = lazy.stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_GT(stats.states_materialized, 0u);
  // The high-water mark can overshoot the cap by at most the one entry
  // that triggered eviction.
  EXPECT_LE(stats.peak_cache_bytes, options.max_cache_bytes + 1024);
}

TEST_F(LazyDhaTest, HreCompiledAutomataAgree) {
  Rng rng(99);
  workload::RandomHedgeOptions doc_options;
  doc_options.target_nodes = 60;
  for (const char* expr :
       {"(a0<%z>*^z|a1<%z>*^z|a2<%z>*^z|a3<%z>*^z|$x)*",
        "a0<%z>*^z (a0<%z>*^z|a1<%z>*^z|$x)*",
        "(a0<(a1<%z>*^z|$x)*>|a1<%z>*^z)*"}) {
    auto e = hre::ParseHre(expr, vocab_);
    ASSERT_TRUE(e.ok()) << expr << ": " << e.status().ToString();
    Nha nha = hre::CompileHre(*e);
    auto det = Determinize(nha);
    ASSERT_TRUE(det.ok()) << expr;
    LazyDha lazy(nha);
    for (int trial = 0; trial < 25; ++trial) {
      Hedge doc = workload::RandomHedge(rng, vocab_, doc_options);
      ExpectAgreement(nha, *det, lazy, doc);
    }
  }
}

TEST_F(LazyDhaTest, StatsResetClearsCounters) {
  Nha m1 = BuildM1();
  LazyDha lazy(m1);
  (void)lazy.Accepts(Parse("d<p<$x $x>>"));
  EXPECT_GT(lazy.stats().states_materialized, 0u);
  lazy.ResetStats();
  EXPECT_EQ(lazy.stats().states_materialized, 0u);
  EXPECT_EQ(lazy.stats().cache_hits, 0u);
  EXPECT_EQ(lazy.stats().cache_evictions, 0u);
}

}  // namespace
}  // namespace hedgeq::automata
