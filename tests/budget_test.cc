// Unit tests for the resource-governance primitives (util/budget.h): every
// cap trips with an informative kResourceExhausted naming the stage, the
// count reached, and the knob to raise.
#include <gtest/gtest.h>

#include <limits>

#include "util/budget.h"

namespace hedgeq {
namespace {

bool Contains(const Status& s, const char* needle) {
  return s.message().find(needle) != std::string::npos;
}

TEST(BudgetScopeTest, StateCapTripsWithInformativeMessage) {
  ExecBudget budget;
  budget.max_states = 10;
  BudgetScope scope(budget);
  EXPECT_TRUE(scope.ChargeStates(10, "determinize").ok());
  EXPECT_EQ(scope.states_used(), 10u);
  Status s = scope.ChargeStates(1, "determinize");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Contains(s, "determinize")) << s.ToString();
  EXPECT_TRUE(Contains(s, "max_states=10")) << s.ToString();
  EXPECT_TRUE(Contains(s, "reached 11")) << s.ToString();
  EXPECT_TRUE(Contains(s, "larger ExecBudget")) << s.ToString();
}

TEST(BudgetScopeTest, ByteCapReleasesAllowReuse) {
  ExecBudget budget;
  budget.max_memory_bytes = 100;
  BudgetScope scope(budget);
  EXPECT_TRUE(scope.ChargeBytes(80, "cache").ok());
  Status s = scope.ChargeBytes(40, "cache");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Contains(s, "max_memory_bytes")) << s.ToString();
  // Eviction gives the bytes back; the pool is reusable.
  scope.ReleaseBytes(60);
  EXPECT_EQ(scope.bytes_used(), 60u);
  EXPECT_TRUE(scope.ChargeBytes(40, "cache").ok());
  // Over-release clamps to zero rather than underflowing.
  scope.ReleaseBytes(std::numeric_limits<size_t>::max());
  EXPECT_EQ(scope.bytes_used(), 0u);
}

TEST(BudgetScopeTest, StepCapIsCumulativeAcrossStages) {
  ExecBudget budget;
  budget.max_steps = 5;
  BudgetScope scope(budget);
  EXPECT_TRUE(scope.ChargeSteps(3, "stage-one").ok());
  EXPECT_TRUE(scope.ChargeSteps(2, "stage-two").ok());
  // One shared pool: the third stage pays for the first two.
  Status s = scope.ChargeSteps(1, "stage-three");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Contains(s, "stage-three")) << s.ToString();
  EXPECT_TRUE(Contains(s, "max_steps")) << s.ToString();
}

TEST(BudgetScopeTest, DepthGuardIsRaii) {
  ExecBudget budget;
  budget.max_depth = 2;
  BudgetScope scope(budget);
  {
    DepthGuard d1(scope, "recurse");
    EXPECT_TRUE(d1.status().ok());
    {
      DepthGuard d2(scope, "recurse");
      EXPECT_TRUE(d2.status().ok());
      DepthGuard d3(scope, "recurse");
      EXPECT_EQ(d3.status().code(), StatusCode::kResourceExhausted);
      EXPECT_TRUE(Contains(d3.status(), "max_depth")) << d3.status().ToString();
    }
    // Unwinding restores headroom.
    EXPECT_EQ(scope.depth(), 1u);
    DepthGuard d4(scope, "recurse");
    EXPECT_TRUE(d4.status().ok());
  }
  EXPECT_EQ(scope.depth(), 0u);
}

TEST(BudgetScopeTest, UnlimitedNeverTrips) {
  BudgetScope scope(ExecBudget::Unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(scope.ChargeStates(1 << 20, "x").ok());
    EXPECT_TRUE(scope.ChargeBytes(size_t{1} << 30, "x").ok());
    EXPECT_TRUE(scope.ChargeSteps(1 << 30, "x").ok());
  }
}

TEST(ExecBudgetTest, DefaultsAreFiniteAndNonTrivial) {
  ExecBudget budget;
  EXPECT_GE(budget.max_states, size_t{1} << 16);
  EXPECT_LT(budget.max_states, std::numeric_limits<size_t>::max());
  EXPECT_GE(budget.max_memory_bytes, size_t{64} << 20);
  EXPECT_LT(budget.max_memory_bytes, std::numeric_limits<size_t>::max());
  EXPECT_GE(budget.max_depth, size_t{256});
}

TEST(DeadlineTest, DefaultBudgetHasNoDeadline) {
  ExecBudget budget;
  EXPECT_FALSE(budget.has_deadline());
  BudgetScope scope(budget);
  // No deadline, no token: the probe is free and never trips.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(scope.ChargeSteps(1, "x").ok());
  }
}

TEST(DeadlineTest, ExpiredDeadlineFailsTheFirstChargeAndSticks) {
  ExecBudget budget;
  budget.SetDeadlineAfterMs(0);  // deadline == now: already expired
  EXPECT_TRUE(budget.has_deadline());
  BudgetScope scope(budget);
  Status s = scope.ChargeStates(1, "determinize");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(s, "determinize")) << s.ToString();
  EXPECT_TRUE(Contains(s, "deadline")) << s.ToString();
  // Sticky: once expired, every later charge fails without re-reading the
  // clock, through any of the charge entry points.
  EXPECT_EQ(scope.ChargeBytes(1, "x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scope.ChargeSteps(1, "x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scope.CheckDeadline("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, GenerousDeadlinePassesAmortizedChecks) {
  ExecBudget budget;
  budget.SetDeadlineAfterMs(60 * 1000);
  BudgetScope scope(budget);
  // Far past the check stride, so the clock genuinely gets consulted.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(scope.ChargeSteps(1, "x").ok());
  }
}

TEST(DeadlineTest, CancelTokenFiresAsDeadlineExceeded) {
  CancelToken token;
  ExecBudget budget;
  budget.cancel = &token;
  BudgetScope scope(budget);
  EXPECT_TRUE(scope.ChargeSteps(1, "stage").ok());
  token.Cancel();
  // The token is read on every probe (no stride), so the very next charge
  // observes it.
  Status s = scope.ChargeSteps(1, "stage");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(Contains(s, "cancelled")) << s.ToString();
  EXPECT_EQ(scope.ChargeStates(1, "stage").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(DeadlineTest, DeadlineStatusIsDegradable) {
  EXPECT_TRUE(IsDegradable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsDegradable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsDegradable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsDegradable(StatusCode::kInternal));
  EXPECT_FALSE(IsDegradable(StatusCode::kOk));
}

}  // namespace
}  // namespace hedgeq
