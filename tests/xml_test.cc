#include <gtest/gtest.h>

#include "xml/xml.h"

namespace hedgeq::xml {
namespace {

using hedge::LabelKind;
using hedge::NodeId;
using hedge::Vocabulary;

TEST(XmlParseTest, SimpleElement) {
  Vocabulary vocab;
  auto doc = ParseXml("<a/>", vocab);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_EQ(doc->hedge.roots().size(), 1u);
  EXPECT_EQ(vocab.symbols.NameOf(doc->hedge.label(doc->hedge.roots()[0]).id),
            "a");
}

TEST(XmlParseTest, NestedStructureAndText) {
  Vocabulary vocab;
  auto doc = ParseXml("<doc><p>hello</p><p>world</p></doc>", vocab);
  ASSERT_TRUE(doc.ok());
  NodeId root = doc->hedge.roots()[0];
  std::vector<NodeId> ps = doc->hedge.ChildrenOf(root);
  ASSERT_EQ(ps.size(), 2u);
  NodeId text = doc->hedge.first_child(ps[0]);
  ASSERT_NE(text, hedge::kNullNode);
  EXPECT_EQ(doc->hedge.label(text).kind, LabelKind::kVariable);
  EXPECT_EQ(doc->texts[text], "hello");
}

TEST(XmlParseTest, WhitespaceTextDroppedByDefault) {
  Vocabulary vocab;
  auto doc = ParseXml("<a>\n  <b/>\n  <c/>\n</a>", vocab);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->hedge.ChildrenOf(doc->hedge.roots()[0]).size(), 2u);

  XmlParseOptions keep;
  keep.ignore_whitespace_text = false;
  auto doc2 = ParseXml("<a>\n  <b/>\n</a>", vocab, keep);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->hedge.ChildrenOf(doc2->hedge.roots()[0]).size(), 3u);
}

TEST(XmlParseTest, AttributesInSideTable) {
  Vocabulary vocab;
  auto doc = ParseXml(R"(<a id="1" class='x y'/>)", vocab);
  ASSERT_TRUE(doc.ok());
  NodeId root = doc->hedge.roots()[0];
  ASSERT_EQ(doc->attributes[root].size(), 2u);
  EXPECT_EQ(doc->attributes[root][0].first, "id");
  EXPECT_EQ(doc->attributes[root][0].second, "1");
  EXPECT_EQ(doc->attributes[root][1].second, "x y");
}

TEST(XmlParseTest, AttributesAsElements) {
  Vocabulary vocab;
  XmlParseOptions options;
  options.attributes_as_elements = true;
  auto doc = ParseXml(R"(<a id="1"><b/></a>)", vocab, options);
  ASSERT_TRUE(doc.ok());
  NodeId root = doc->hedge.roots()[0];
  std::vector<NodeId> kids = doc->hedge.ChildrenOf(root);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(vocab.symbols.NameOf(doc->hedge.label(kids[0]).id), "@id");
}

TEST(XmlParseTest, EntitiesAndCharRefs) {
  Vocabulary vocab;
  auto doc = ParseXml("<a>&lt;&amp;&gt;&#65;&#x42;</a>", vocab);
  ASSERT_TRUE(doc.ok());
  NodeId text = doc->hedge.first_child(doc->hedge.roots()[0]);
  EXPECT_EQ(doc->texts[text], "<&>AB");
}

TEST(XmlParseTest, CommentsCdataPisAndDoctype) {
  Vocabulary vocab;
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE doc [<!ELEMENT doc ANY>]>\n"
      "<!-- comment -->\n"
      "<doc><!-- inner --><![CDATA[<raw>&stuff;]]><?pi data?></doc>",
      vocab);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  NodeId text = doc->hedge.first_child(doc->hedge.roots()[0]);
  ASSERT_NE(text, hedge::kNullNode);
  EXPECT_EQ(doc->texts[text], "<raw>&stuff;");
}

TEST(XmlParseTest, Malformed) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseXml("<a>", vocab).ok());
  EXPECT_FALSE(ParseXml("<a></b>", vocab).ok());
  EXPECT_FALSE(ParseXml("<a attr></a>", vocab).ok());
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>", vocab).ok());
  EXPECT_FALSE(ParseXml("<a><b att='<'/></a>", vocab).ok());
  EXPECT_FALSE(ParseXml("text outside", vocab).ok());
  EXPECT_FALSE(ParseXml("<a><!-- unterminated </a>", vocab).ok());
}

TEST(XmlSerializeTest, RoundTrip) {
  Vocabulary vocab;
  const std::string input =
      R"(<doc id="7"><p>hi &amp; bye</p><hr/><p>two</p></doc>)";
  auto doc = ParseXml(input, vocab);
  ASSERT_TRUE(doc.ok());
  std::string printed = SerializeXml(*doc, vocab);
  auto doc2 = ParseXml(printed, vocab);
  ASSERT_TRUE(doc2.ok()) << printed;
  EXPECT_TRUE(doc->hedge.EqualTo(doc2->hedge));
  EXPECT_EQ(printed, SerializeXml(*doc2, vocab));
}

TEST(XmlSerializeTest, EscapesSpecials) {
  EXPECT_EQ(EscapeText("a<b&c>d\"e"), "a&lt;b&amp;c&gt;d&quot;e");
}

TEST(XmlParseTest, MultipleTopLevelElementsFormAHedge) {
  // Hedges are sequences of trees; the parser accepts fragment inputs.
  Vocabulary vocab;
  auto doc = ParseXml("<a/><b/><c/>", vocab);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->hedge.roots().size(), 3u);
}

}  // namespace
}  // namespace hedgeq::xml
