#include <gtest/gtest.h>

#include "query/selection.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace hedgeq::query {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;

class SelectionTest : public ::testing::Test {
 protected:
  Hedge Parse(const std::string& text) {
    auto r = ParseHedge(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  SelectionQuery ParseQ(const std::string& text) {
    auto r = ParseSelectionQuery(text, vocab_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }
  Vocabulary vocab_;
};

TEST_F(SelectionTest, ParseForms) {
  SelectionQuery q1 = ParseQ("select((b|$x)*; [(); a; b] [b; a; ()])");
  EXPECT_NE(q1.subhedge, nullptr);
  EXPECT_EQ(q1.envelope.triplets().size(), 2u);

  SelectionQuery q2 = ParseQ("select(*; figure section*)");
  EXPECT_EQ(q2.subhedge, nullptr);
  EXPECT_TRUE(q2.envelope.IsPathExpression());

  EXPECT_FALSE(ParseSelectionQuery("select(a)", vocab_).ok());
  EXPECT_FALSE(ParseSelectionQuery("sel(a; b)", vocab_).ok());
  EXPECT_FALSE(ParseSelectionQuery("select(a; )", vocab_).ok());
}

TEST_F(SelectionTest, PaperSection6WorkedExample) {
  // select(e1, e2) with e1 = (b|x)* and e2 = (eps, a, b)(b, a, eps) locates
  // the first second-level node of the second top-level node of
  // b a<a<b x> b>.
  SelectionQuery q = ParseQ("select((b|$x)*; [(); a; b] [b; a; ()])");
  auto eval = SelectionEvaluator::Create(q);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();

  Hedge doc = Parse("b a<a<b $x> b>");
  std::vector<NodeId> located = eval->LocatedNodes(doc);
  ASSERT_EQ(located.size(), 1u);
  NodeId expected = doc.ChildrenOf(doc.roots()[1])[0];
  EXPECT_EQ(located[0], expected);
}

TEST_F(SelectionTest, SubhedgeConditionFilters) {
  // Locate sections whose content is exactly one figure.
  SelectionQuery q = ParseQ("select(figure; section (section|doc)*)");
  auto eval = SelectionEvaluator::Create(q);
  ASSERT_TRUE(eval.ok());
  Hedge doc = Parse("doc<section<figure> section<figure para> section>");
  std::vector<NodeId> located = eval->LocatedNodes(doc);
  ASSERT_EQ(located.size(), 1u);
  EXPECT_EQ(located[0], doc.ChildrenOf(doc.roots()[0])[0]);
}

TEST_F(SelectionTest, SubhedgeConditionAppliesToUnknownLabels) {
  // e1 constrains the children only; the node's own label is governed by
  // the envelope side. With an unconditional envelope step for "mystery",
  // a mystery node with a b-child is located even though e1 never mentions
  // mystery.
  SelectionQuery q = ParseQ("select(b; mystery doc*)");
  auto eval = SelectionEvaluator::Create(q);
  ASSERT_TRUE(eval.ok());
  Hedge doc = Parse("doc<mystery<b> mystery<c> mystery>");
  std::vector<NodeId> located = eval->LocatedNodes(doc);
  ASSERT_EQ(located.size(), 1u);
  EXPECT_EQ(located[0], doc.ChildrenOf(doc.roots()[0])[0]);
}

struct SelectionCase {
  const char* name;
  const char* query;
};

class SelectionAgreementTest
    : public ::testing::TestWithParam<SelectionCase> {};

TEST_P(SelectionAgreementTest, EvaluatorAgreesWithNaiveOracle) {
  Vocabulary vocab;
  auto q = ParseSelectionQuery(GetParam().query, vocab);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto eval = SelectionEvaluator::Create(*q);
  ASSERT_TRUE(eval.ok()) << eval.status().ToString();
  NaiveSelectionEvaluator naive(*q);

  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    Hedge doc;
    if (trial % 2 == 0) {
      workload::ArticleOptions options;
      options.target_nodes = 80 + 40 * trial;
      doc = workload::RandomArticle(rng, vocab, options);
    } else {
      workload::RandomHedgeOptions options;
      options.target_nodes = 50 + 25 * trial;
      doc = workload::RandomHedge(rng, vocab, options);
    }
    EXPECT_EQ(eval->Locate(doc), naive.Locate(doc))
        << GetParam().name << " on " << doc.ToString(vocab);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectionAgreementTest,
    ::testing::Values(
        SelectionCase{"figures_under_sections",
                      "select(*; figure (section|article)*)"},
        SelectionCase{"empty_figures",
                      "select((); figure (section|article)*)"},
        SelectionCase{"sections_with_leading_title",
                      "select(title<$#text*> (para<$#text*>|figure|"
                      "caption<$#text*>|table|section<%z>*^z|$#text)*; "
                      "section (section|article)*)"},
        SelectionCase{"figure_with_caption_following",
                      "select(*; [*; figure; caption<$#text*> "
                      "(para<$#text*>|figure|caption<$#text*>|table|"
                      "section<%z>*^z|title<$#text*>|$#text)*] "
                      "(section|article)*)"},
        SelectionCase{"random_alphabet_a1_with_only_a0_descendants",
                      "select((a0<%z>*^z|$x)*; a1 (a0|a1|a2|a3)*)"}),
    [](const ::testing::TestParamInfo<SelectionCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hedgeq::query
