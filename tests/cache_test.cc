// The persistent automaton cache (src/cache/) and its one invariant:
// never trust cached bytes. Every hit is re-validated by the independent
// certificate checker; every corruption — truncation, garbage, a valid
// certificate of the wrong automaton, a seeded construction bug, any
// injected I/O fault — is rejected, quarantined with its reason, and
// transparently recomputed. The fault matrix at the bottom proves each
// failure mode degrades to the cost of a cold run, never a wrong answer.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "automata/determinize.h"
#include "automata/serialize.h"
#include "cache/cache.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "phr/phr.h"
#include "query/phr_compile.h"
#include "util/budget.h"
#include "util/failpoint.h"
#include "verify/certificate.h"

namespace hedgeq::cache {
namespace {

namespace fs = std::filesystem;
using hedge::Vocabulary;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            (std::string("hedgeq_cache_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }

  void TearDown() override {
    automata::SetDeterminizeCache(nullptr);
    failpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  automata::Nha Compile(const std::string& expr) {
    auto e = hre::ParseHre(expr, vocab_);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    BudgetScope scope{ExecBudget{}};
    auto nha = hre::CompileHre(*e, scope);
    EXPECT_TRUE(nha.ok()) << nha.status().ToString();
    return std::move(nha).value();
  }

  std::unique_ptr<AutomatonCache> OpenCache() {
    auto c = AutomatonCache::Open(dir_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    c.value()->BindVocabulary(&vocab_);
    return std::move(c).value();
  }

  std::string Dha(const automata::Dha& dha) {
    return automata::SerializeDha(dha, vocab_);
  }

  // Quarantined entries (excluding their .reason sidecars).
  std::vector<std::string> QuarantinedEntries() {
    std::vector<std::string> names;
    fs::path corrupt = fs::path(dir_) / "corrupt";
    if (!fs::exists(corrupt)) return names;
    for (const auto& entry : fs::directory_iterator(corrupt)) {
      std::string name = entry.path().filename().string();
      if (name.size() < 7 || name.substr(name.size() - 7) != ".reason") {
        names.push_back(entry.path().string());
      }
    }
    return names;
  }

  Vocabulary vocab_;
  std::string dir_;
};

// An empty placeholder a Lookup can fill (Dha has no default constructor).
automata::Determinized Placeholder() {
  return automata::Determinized{automata::Dha{1, 1, 0, 0}, {}};
}

TEST_F(CacheTest, MissThenStoreThenValidatedHit) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::Nha nha = Compile("a<b*> | c");

  automata::Determinized out = Placeholder();
  automata::DeterminizeWitness w;
  EXPECT_FALSE(cache->Lookup(nha, &out, &w));
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_TRUE(cache->last_reject_reason().empty()) << "absent entry, no blame";

  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(nha, scope, &witness);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  cache->Store(nha, *det, witness);
  EXPECT_EQ(cache->stats().stores, 1u);
  EXPECT_EQ(cache->stats().store_errors, 0u);
  EXPECT_TRUE(fs::exists(cache->EntryPathFor(nha)));

  automata::Determinized hit = Placeholder();
  automata::DeterminizeWitness hw;
  ASSERT_TRUE(cache->Lookup(nha, &hit, &hw));
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().quarantines, 0u);
  EXPECT_EQ(Dha(hit.dha), Dha(det->dha));
  EXPECT_EQ(hit.subsets, det->subsets);
  EXPECT_EQ(hw.h_sets, witness.h_sets);
  EXPECT_EQ(hw.final_sets, witness.final_sets);
}

TEST_F(CacheTest, KeyIsStablePerAutomatonAndDistinctAcrossAutomata) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::Nha a = Compile("a<b*>");
  automata::Nha a2 = Compile("a<b*>");
  automata::Nha b = Compile("(a|b)*");
  EXPECT_EQ(cache->KeyFor(a), cache->KeyFor(a2));
  EXPECT_NE(cache->KeyFor(a), cache->KeyFor(b));
  EXPECT_EQ(cache->KeyFor(a).size(), 32u) << "128-bit hex digest";
}

TEST_F(CacheTest, InstalledCacheServesRepeatDeterminizations) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::SetDeterminizeCache(cache.get());
  automata::Nha nha = Compile("(a|b)* c<$x>");

  auto cold = automata::Determinize(nha);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().stores, 1u);

  auto warm = automata::Determinize(nha);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u) << "second run must not recompute";
  EXPECT_EQ(Dha(warm->dha), Dha(cold->dha));
}

TEST_F(CacheTest, SeededBugInStoredCertificateIsRejectedWithItsHqvCode) {
  automata::Nha nha = Compile("a b*");
  auto reference = automata::Determinize(nha);
  ASSERT_TRUE(reference.ok());

  std::unique_ptr<AutomatonCache> cache = OpenCache();
#ifdef HEDGEQ_CERTIFY
  // Stand the inline-certification hook down so the seeded bug can reach
  // the cache at all; the cache's own checker must then catch it.
  automata::DeterminizeValidationHook saved =
      automata::GetDeterminizeValidationHook();
  automata::SetDeterminizeValidationHook(nullptr);
#endif
  failpoint::Arm("determinize/flip-final");
  automata::SetDeterminizeCache(cache.get());
  auto corrupted = automata::Determinize(nha);
  ASSERT_TRUE(corrupted.ok()) << "the seeded bug flips acceptance silently";
  EXPECT_EQ(cache->stats().stores, 1u) << "the bad certificate was persisted";
  failpoint::DisarmAll();
#ifdef HEDGEQ_CERTIFY
  automata::SetDeterminizeValidationHook(saved);
#endif

  // Warm run: the stored certificate deserializes fine and describes this
  // exact input — only the independent checker can tell it lies. HQV003 is
  // the final-set inconsistency the flipped bit creates.
  auto warm = automata::Determinize(nha);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(cache->stats().hits, 0u) << "a rejected entry must not hit";
  EXPECT_EQ(cache->stats().validate_rejects, 1u);
  EXPECT_EQ(cache->stats().quarantines, 1u);
  EXPECT_NE(cache->last_reject_reason().find("HQV003"), std::string::npos)
      << cache->last_reject_reason();
  EXPECT_EQ(Dha(warm->dha), Dha(reference->dha)) << "recompute heals";

  // The bad entry moved to corrupt/ with a .reason sidecar naming the code.
  std::vector<std::string> quarantined = QuarantinedEntries();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_NE(ReadFile(quarantined[0] + ".reason").find("HQV003"),
            std::string::npos);

  // The recompute re-stored a good certificate; the next run hits.
  auto healed = automata::Determinize(nha);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(Dha(healed->dha), Dha(reference->dha));
}

TEST_F(CacheTest, TamperedEntriesAreQuarantinedNotServed) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::Nha a = Compile("a<b*>");
  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness w;
  auto det = automata::Determinize(a, scope, &w);
  ASSERT_TRUE(det.ok());
  cache->Store(a, *det, w);
  const std::string path = cache->EntryPathFor(a);
  const std::string good = ReadFile(path);
  ASSERT_FALSE(good.empty());

  automata::Determinized out = Placeholder();
  automata::DeterminizeWitness ow;

  // Truncated below the payload size the header promises.
  WriteFile(path, good.substr(0, good.size() - 7));
  EXPECT_FALSE(cache->Lookup(a, &out, &ow));
  EXPECT_NE(cache->last_reject_reason().find("truncated payload"),
            std::string::npos)
      << cache->last_reject_reason();
  EXPECT_FALSE(fs::exists(path)) << "rejected entries leave the hot path";

  // Arbitrary garbage.
  WriteFile(path, "this is not a cache entry\n");
  EXPECT_FALSE(cache->Lookup(a, &out, &ow));
  EXPECT_NE(cache->last_reject_reason().find("malformed header"),
            std::string::npos)
      << cache->last_reject_reason();

  // A *valid* certificate of a different automaton, header key rewritten
  // to collide: deserializes and re-validates clean, but certifies the
  // wrong input. Only the input byte-compare can catch this one.
  automata::Nha b = Compile("c | d");
  const std::string akey = cache->KeyFor(a);
  const std::string bkey = cache->KeyFor(b);
  std::string forged = good;
  size_t pos = forged.find(akey);
  ASSERT_NE(pos, std::string::npos);
  forged.replace(pos, akey.size(), bkey);
  WriteFile(cache->EntryPathFor(b), forged);
  EXPECT_FALSE(cache->Lookup(b, &out, &ow));
  EXPECT_NE(cache->last_reject_reason().find("input mismatch"),
            std::string::npos)
      << cache->last_reject_reason();

  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_EQ(cache->stats().quarantines, 3u);
  EXPECT_EQ(QuarantinedEntries().size(), 3u);
  // Structural rejections all carry the malformed-certificate HQV code.
  for (const std::string& entry : QuarantinedEntries()) {
    EXPECT_NE(ReadFile(entry + ".reason").find("HQV001"), std::string::npos)
        << entry;
  }
}

TEST_F(CacheTest, EveryInjectedFaultDegradesToRecomputeNeverWrongAnswer) {
  automata::Nha nha = Compile("(a|b)* c?");
  auto reference = automata::Determinize(nha);
  ASSERT_TRUE(reference.ok());
  const std::string want = Dha(reference->dha);

  struct Fault {
    const char* point;
    bool store_side;  // arm before the cold run (write path) or after it
  };
  const Fault kMatrix[] = {
      {"cache/enospc", true},      // temp-file write fails
      {"cache/rename", true},      // atomic publish fails
      {"cache/torn-write", true},  // half an entry lands on disk anyway
      {"cache/short-read", false},  // a good entry reads back truncated
  };
  for (const Fault& f : kMatrix) {
    SCOPED_TRACE(f.point);
    fs::remove_all(dir_);
    std::unique_ptr<AutomatonCache> cache = OpenCache();
    automata::SetDeterminizeCache(cache.get());

    if (f.store_side) failpoint::Arm(f.point);
    auto cold = automata::Determinize(nha);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(Dha(cold->dha), want);
    if (!f.store_side) failpoint::Arm(f.point);

    auto faulted = automata::Determinize(nha);
    ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
    EXPECT_EQ(Dha(faulted->dha), want) << "fault must never change the answer";
    EXPECT_EQ(cache->stats().hits, 0u)
        << "nothing that failed validation may count as a hit";

    const bool write_failed =
        std::string(f.point) == "cache/enospc" ||
        std::string(f.point) == "cache/rename";
    if (write_failed) {
      EXPECT_GT(cache->stats().store_errors, 0u);
      EXPECT_EQ(cache->stats().quarantines, 0u);
      EXPECT_FALSE(fs::exists(cache->EntryPathFor(nha)))
          << "a failed store must not publish an entry";
    } else {
      EXPECT_GT(cache->stats().quarantines, 0u);
      EXPECT_FALSE(QuarantinedEntries().empty());
    }

    // Clear the fault: the pipeline heals without intervention.
    failpoint::DisarmAll();
    auto healed = automata::Determinize(nha);
    ASSERT_TRUE(healed.ok());
    EXPECT_EQ(Dha(healed->dha), want);
    auto hit = automata::Determinize(nha);
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(Dha(hit->dha), want);
    EXPECT_GT(cache->stats().hits, 0u) << "post-fault runs hit again";
    automata::SetDeterminizeCache(nullptr);
  }
}

TEST_F(CacheTest, InstancesWithDistinctVocabulariesShareOneDirectory) {
  // Entries are content-addressed over the *name-rendered* automaton, so a
  // second process (modelled here as a second instance with a fresh intern
  // table) hits on entries the first one wrote.
  std::unique_ptr<AutomatonCache> writer = OpenCache();
  automata::Nha a = Compile("article<section* figure>");
  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness w;
  auto det = automata::Determinize(a, scope, &w);
  ASSERT_TRUE(det.ok());
  writer->Store(a, *det, w);

  Vocabulary other;
  auto reader = AutomatonCache::Open(dir_);
  ASSERT_TRUE(reader.ok());
  reader.value()->BindVocabulary(&other);
  auto e = hre::ParseHre("article<section* figure>", other);
  ASSERT_TRUE(e.ok());
  BudgetScope scope2{ExecBudget{}};
  auto nha2 = hre::CompileHre(*e, scope2);
  ASSERT_TRUE(nha2.ok());

  EXPECT_EQ(reader.value()->KeyFor(*nha2), writer->KeyFor(a))
      << "content keys are vocabulary-independent";
  automata::Determinized hit = Placeholder();
  automata::DeterminizeWitness hw;
  ASSERT_TRUE(reader.value()->Lookup(*nha2, &hit, &hw));
  EXPECT_EQ(reader.value()->stats().hits, 1u);
  EXPECT_EQ(automata::SerializeDha(hit.dha, other),
            automata::SerializeDha(det->dha, vocab_));
}

TEST_F(CacheTest, ValidatedHitSkipsTheDeterminizeStageSpan) {
  // Restores the obs gates and zeroes the registry around the test.
  struct ObsGuard {
    ObsGuard() {
      obs::Registry().Reset();
      obs::RegisterCatalogue();
      obs::SetEnabled(true);
    }
    ~ObsGuard() {
      obs::SetEnabled(false);
      obs::Registry().Reset();
    }
  } guard;

  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::SetDeterminizeCache(cache.get());
  automata::Nha nha = Compile("(a|b)* c<$x>");

  auto span_count = [](const char* name) -> uint64_t {
    for (const obs::SpanAggregate& s : obs::Registry().SpanAggregates()) {
      if (s.name == name) return s.count;
    }
    return 0;
  };

  auto cold = automata::Determinize(nha);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(span_count(obs::spans::kDeterminize), 1u);
  EXPECT_EQ(span_count(obs::spans::kCacheStoreSpan), 1u);

  auto warm = automata::Determinize(nha);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(span_count(obs::spans::kDeterminize), 1u)
      << "a validated hit must not open the determinize stage span";
  EXPECT_GE(span_count(obs::spans::kCacheLoad), 2u);
  EXPECT_EQ(obs::Registry().GetCounter(obs::metrics::kCacheHit)->value(), 1u);
}

TEST_F(CacheTest, ByteBoundSweepEvictsOldestButNeverJustWrittenEntry) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  cache->set_max_bytes(1);  // smaller than any single entry

  BudgetScope scope{ExecBudget{}};
  automata::Nha first = Compile("a<b*> | c");
  automata::DeterminizeWitness w1;
  auto det1 = automata::Determinize(first, scope, &w1);
  ASSERT_TRUE(det1.ok()) << det1.status().ToString();
  cache->Store(first, *det1, w1);
  // The sole entry exceeds the budget, yet must survive: a cache that
  // evicts what it just wrote can never serve its own key.
  EXPECT_TRUE(fs::exists(cache->EntryPathFor(first)));
  EXPECT_EQ(cache->stats().evictions, 0u);

  // Backdate it so LRU order is unambiguous even on filesystems with
  // coarse mtime resolution.
  fs::last_write_time(
      cache->EntryPathFor(first),
      fs::file_time_type::clock::now() - std::chrono::hours(1));

  automata::Nha second = Compile("(a|b)* c<$x>");
  automata::DeterminizeWitness w2;
  auto det2 = automata::Determinize(second, scope, &w2);
  ASSERT_TRUE(det2.ok()) << det2.status().ToString();
  cache->Store(second, *det2, w2);

  EXPECT_FALSE(fs::exists(cache->EntryPathFor(first)))
      << "over budget, the stale entry must go";
  EXPECT_TRUE(fs::exists(cache->EntryPathFor(second)))
      << "the just-written entry is never swept";
  EXPECT_GE(cache->stats().evictions, 1u);

  automata::Determinized hit = Placeholder();
  automata::DeterminizeWitness hw;
  EXPECT_TRUE(cache->Lookup(second, &hit, &hw))
      << "the survivor must still validate and serve";
  EXPECT_FALSE(cache->Lookup(first, &hit, &hw));
}

TEST_F(CacheTest, AgeBoundSweepExpiresStaleEntriesOnStore) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  cache->set_max_age_seconds(60);

  BudgetScope scope{ExecBudget{}};
  automata::Nha first = Compile("a b*");
  automata::DeterminizeWitness w1;
  auto det1 = automata::Determinize(first, scope, &w1);
  ASSERT_TRUE(det1.ok()) << det1.status().ToString();
  cache->Store(first, *det1, w1);
  fs::last_write_time(
      cache->EntryPathFor(first),
      fs::file_time_type::clock::now() - std::chrono::hours(2));

  automata::Nha second = Compile("(a|b)*");
  automata::DeterminizeWitness w2;
  auto det2 = automata::Determinize(second, scope, &w2);
  ASSERT_TRUE(det2.ok()) << det2.status().ToString();
  cache->Store(second, *det2, w2);

  EXPECT_FALSE(fs::exists(cache->EntryPathFor(first)))
      << "entries past the age bound expire on the next store";
  EXPECT_TRUE(fs::exists(cache->EntryPathFor(second)));
  EXPECT_EQ(cache->stats().evictions, 1u);
}

TEST_F(CacheTest, UnboundedDefaultNeverEvicts) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();

  BudgetScope scope{ExecBudget{}};
  automata::Nha first = Compile("a<b*> | c");
  automata::DeterminizeWitness w1;
  auto det1 = automata::Determinize(first, scope, &w1);
  ASSERT_TRUE(det1.ok()) << det1.status().ToString();
  cache->Store(first, *det1, w1);
  fs::last_write_time(
      cache->EntryPathFor(first),
      fs::file_time_type::clock::now() - std::chrono::hours(48));

  automata::Nha second = Compile("(a|b)*");
  automata::DeterminizeWitness w2;
  auto det2 = automata::Determinize(second, scope, &w2);
  ASSERT_TRUE(det2.ok()) << det2.status().ToString();
  cache->Store(second, *det2, w2);

  EXPECT_TRUE(fs::exists(cache->EntryPathFor(first)))
      << "with both knobs at 0 nothing is ever swept, however old";
  EXPECT_TRUE(fs::exists(cache->EntryPathFor(second)));
  EXPECT_EQ(cache->stats().evictions, 0u);
}

TEST_F(CacheTest, EntrySwappedToAnotherCertificateKindIsQuarantined) {
  // A well-formed minimize certificate smuggled into a determinize entry
  // (header intact, payload length honest) must still be rejected by the
  // kind check in the validation ladder, not accepted for its shape.
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::Nha nha = Compile("a<b*> | c");

  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(nha, scope, &witness);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  cache->Store(nha, *det, witness);

  verify::Certificate min_cert = verify::BuildMinimizeCertificate(det->dha);
  std::string payload = verify::SerializeCertificate(min_cert, vocab_);
  std::ostringstream entry;
  entry << "hqcache 2 determinize " << cache->KeyFor(nha) << " "
        << payload.size() << "\n"
        << payload;
  WriteFile(cache->EntryPathFor(nha), entry.str());

  automata::Determinized out = Placeholder();
  automata::DeterminizeWitness hw;
  EXPECT_FALSE(cache->Lookup(nha, &out, &hw));
  EXPECT_EQ(cache->stats().quarantines, 1u);
  EXPECT_NE(cache->last_reject_reason().find("not a determinize certificate"),
            std::string::npos)
      << cache->last_reject_reason();
  EXPECT_EQ(QuarantinedEntries().size(), 1u);
}

TEST_F(CacheTest, ScopedStoreAndLookupRoundTrip) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::Nha nha = Compile("a<b*> | c");

  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(nha, scope, &witness);
  ASSERT_TRUE(det.ok()) << det.status().ToString();

  const std::string pipeline_key = "select(a<b*> | c; [(); doc; ()])";
  cache->StoreScoped(pipeline_key, nha, *det, witness);
  EXPECT_TRUE(fs::exists(cache->ScopedEntryPathFor(pipeline_key)));
  // The scoped key is derived from the pipeline text, not the automaton:
  // the input-keyed entry path stays unpopulated.
  EXPECT_FALSE(fs::exists(cache->EntryPathFor(nha)));

  automata::Determinized hit{automata::Dha(1, 1, 0, 0), {}};
  automata::DeterminizeWitness hw;
  EXPECT_TRUE(cache->LookupScoped(pipeline_key, nha, &hit, &hw));
  EXPECT_EQ(Dha(hit.dha), Dha(det->dha));
  EXPECT_EQ(cache->stats().hits, 1u);
  // A different pipeline key misses; so does the input-keyed lookup.
  EXPECT_FALSE(cache->LookupScoped("select(other; ...)", nha, &hit, &hw));
  EXPECT_FALSE(cache->Lookup(nha, &hit, &hw));
}

TEST_F(CacheTest, ScopedHitRejectsSwappedInputAutomaton) {
  // The ladder is unchanged for scoped entries: a scoped hit whose stored
  // input does not byte-match the pipeline's union NHA is quarantined.
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::Nha nha = Compile("a<b*> | c");
  automata::Nha other = Compile("(a|b)*");

  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(nha, scope, &witness);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  cache->StoreScoped("pipeline", nha, *det, witness);

  automata::Determinized hit{automata::Dha(1, 1, 0, 0), {}};
  automata::DeterminizeWitness hw;
  EXPECT_FALSE(cache->LookupScoped("pipeline", other, &hit, &hw));
  EXPECT_EQ(cache->stats().quarantines, 1u);
}

TEST_F(CacheTest, LoadRevalidationDefaultsToLightCheck) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  ASSERT_EQ(cache->check_mode(), CheckMode::kLight);
  automata::Nha nha = Compile("a<b*> | c");

  BudgetScope scope{ExecBudget{}};
  automata::DeterminizeWitness witness;
  auto det = automata::Determinize(nha, scope, &witness);
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  cache->Store(nha, *det, witness);

  automata::Determinized hit{automata::Dha(1, 1, 0, 0), {}};
  automata::DeterminizeWitness hw;
  EXPECT_TRUE(cache->Lookup(nha, &hit, &hw));
  EXPECT_EQ(cache->stats().light_checks, 1u);

  cache->set_check_mode(CheckMode::kFull);
  EXPECT_TRUE(cache->Lookup(nha, &hit, &hw));
  EXPECT_EQ(cache->stats().light_checks, 1u)
      << "full mode must not tick the light-check counter";
}

TEST_F(CacheTest, CompilePhrHitsTheScopedEntryEndToEnd) {
  std::unique_ptr<AutomatonCache> cache = OpenCache();
  automata::SetDeterminizeCache(cache.get());

  auto phr = phr::ParsePhr("[a<b*>; doc; *]", vocab_);
  ASSERT_TRUE(phr.ok()) << phr.status().ToString();
  const std::string key = phr->ToString(vocab_);

  BudgetScope cold{ExecBudget{}};
  auto first = query::CompilePhr(*phr, cold, nullptr, key);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(fs::exists(cache->ScopedEntryPathFor(key)));
  uint64_t misses_after_cold = cache->stats().misses;
  EXPECT_GE(misses_after_cold, 1u);

  BudgetScope warm{ExecBudget{}};
  auto second = query::CompilePhr(*phr, warm, nullptr, key);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GE(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, misses_after_cold)
      << "the warm compile must not miss again";
}

TEST_F(CacheTest, OpenFailsCleanlyWhenDirectoryCannotBeCreated) {
  // A plain file where the cache directory should go: create_directories
  // cannot succeed, and Open must say so instead of half-working.
  WriteFile(dir_, "occupied\n");
  auto cache = AutomatonCache::Open(dir_);
  ASSERT_FALSE(cache.ok());
  EXPECT_EQ(cache.status().code(), StatusCode::kFailedPrecondition);
  fs::remove(dir_);
}

}  // namespace
}  // namespace hedgeq::cache
