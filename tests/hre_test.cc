#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/determinize.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "util/rng.h"

namespace hedgeq::hre {
namespace {

using automata::Determinize;
using automata::Nha;
using hedge::Hedge;
using hedge::Vocabulary;

struct MatchCase {
  const char* expr;
  std::vector<const char*> accepted;
  std::vector<const char*> rejected;
};

class HreMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(HreMatchTest, CompiledAutomatonMatchesSemantics) {
  const MatchCase& c = GetParam();
  Vocabulary vocab;
  auto e = ParseHre(c.expr, vocab);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  Nha nha = CompileHre(*e);
  for (const char* text : c.accepted) {
    auto h = ParseHedge(text, vocab);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_TRUE(nha.Accepts(*h)) << c.expr << " should accept " << text;
  }
  for (const char* text : c.rejected) {
    auto h = ParseHedge(text, vocab);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_FALSE(nha.Accepts(*h)) << c.expr << " should reject " << text;
  }
}

TEST_P(HreMatchTest, DeterminizedAgrees) {
  const MatchCase& c = GetParam();
  Vocabulary vocab;
  auto e = ParseHre(c.expr, vocab);
  ASSERT_TRUE(e.ok());
  auto det = Determinize(CompileHre(*e));
  ASSERT_TRUE(det.ok()) << det.status().ToString();
  for (const char* text : c.accepted) {
    auto h = ParseHedge(text, vocab);
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(det->dha.Accepts(*h)) << c.expr << " / " << text;
  }
  for (const char* text : c.rejected) {
    auto h = ParseHedge(text, vocab);
    ASSERT_TRUE(h.ok());
    EXPECT_FALSE(det->dha.Accepts(*h)) << c.expr << " / " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HreMatchTest,
    ::testing::Values(
        // Case 1-3: primitives.
        MatchCase{"{}", {}, {"", "a", "$x"}},
        MatchCase{"()", {""}, {"a", "$x", "a b"}},
        MatchCase{"$x", {"$x"}, {"", "$y", "a", "$x $x"}},
        // Case 4: trees. Bare "a" is a<()>.
        MatchCase{"a", {"a"}, {"", "b", "a<a>", "a a"}},
        MatchCase{"a<$x>", {"a<$x>"}, {"a", "a<$y>", "a<$x $x>", "b<$x>"}},
        MatchCase{"a<b c>", {"a<b c>"}, {"a<b>", "a<c b>", "a<b c d>"}},
        // Case 5-7: horizontal operators.
        MatchCase{"a b", {"a b"}, {"a", "b a", "a b b"}},
        MatchCase{"a|b<$x>", {"a", "b<$x>"}, {"b", "a b<$x>"}},
        MatchCase{"a*", {"", "a", "a a a"}, {"b", "a b"}},
        MatchCase{"(a|b)*", {"", "a b a", "b b"}, {"c", "a c"}},
        MatchCase{"a+ b?", {"a", "a b", "a a a b"}, {"", "b", "a b b"}},
        // Nesting.
        MatchCase{"d<p<$x> p<$y>*>*",
                  {"", "d<p<$x>>", "d<p<$x> p<$y>> d<p<$x>>",
                   "d<p<$x> p<$y> p<$y>>"},
                  {"d<p<$y>>", "d<p<$x> p<$x>>", "p<$x>", "d"}},
        // Case 8: substitution leaves.
        MatchCase{"a<%z>", {"a<%z>"}, {"a", "a<%w>", "a<a<%z>>"}},
        // Case 9: embedding. (b|c) @z a<%z> = { a<b>, a<c> }.
        MatchCase{"(b|c) @z a<%z>",
                  {"a<b>", "a<c>"},
                  {"a<%z>", "a", "a<b c>", "b"}},
        // Independent choice at each occurrence (Definition 10's example).
        MatchCase{"(b|c) @z (a<%z> a<%z>)",
                  {"a<b> a<b>", "a<b> a<c>", "a<c> a<b>", "a<c> a<c>"},
                  {"a<b>", "a<%z> a<b>", "a<b> a<b> a<b>"}},
        // z may survive inside e1.
        MatchCase{"a<%z> @z a<%z>",
                  {"a<a<%z>>"},
                  {"a<%z>", "a<a<a>>", "a<a>"}},
        // Embedding a sequence.
        MatchCase{"(b b) @z a<%z>", {"a<b b>"}, {"a<b>", "a<b b b>"}},
        // Case 10: vertical closure. The paper's a<z>^{*z}: all hedges with
        // every symbol a and every substitution symbol z.
        MatchCase{"a<%z>*^z",
                  {"", "a", "a a", "a<a>", "a<a<a> a> a", "a<%z>",
                   "a<a<%z> a>"},
                  {"b", "a<b>", "a<a> b", "a<%w>"}},
        // Vertical closure of a two-tree expression: every level is a pair
        // of a-trees whose content is either z or another pair.
        MatchCase{"(a<%z> a<%z>)^z",
                  {"a<%z> a<%z>", "a<a<%z> a<%z>> a<%z>",
                   "a<a<%z> a<%z>> a<a<%z> a<%z>>"},
                  {"", "a<%z>", "a<%z> a<%z> a<%z>", "a<a<%z>> a<%z>",
                   "a<a> a<%z>"}},
        // Embedding into a closure: close, then plug b's at leftover z's.
        MatchCase{"b @z (a<%z> a<%z>)^z",
                  {"a<b> a<b>", "a<a<b> a<b>> a<b>"},
                  {"a<b>", "a<%z> a<b>", "b", "a<b> a<b> a<b>"}}));

TEST(HreParseTest, RoundTripPrinting) {
  Vocabulary vocab;
  for (const char* text :
       {"a", "a b", "a|b", "a<b<$x>|()>", "a<%z>*^z", "(b|c) @z a<%z>",
        "(a<%z> a<%z>)^z", "$x* a+"}) {
    auto e = ParseHre(text, vocab);
    ASSERT_TRUE(e.ok()) << text << ": " << e.status().ToString();
    std::string printed = HreToString(*e, vocab);
    auto e2 = ParseHre(printed, vocab);
    ASSERT_TRUE(e2.ok()) << printed;
    EXPECT_EQ(HreToString(*e2, vocab), printed) << text;
  }
}

TEST(HreParseTest, Errors) {
  Vocabulary vocab;
  EXPECT_FALSE(ParseHre("", vocab).ok());
  EXPECT_FALSE(ParseHre("a<", vocab).ok());
  EXPECT_FALSE(ParseHre("a |", vocab).ok());
  EXPECT_FALSE(ParseHre("^z", vocab).ok());
  EXPECT_FALSE(ParseHre("@z a", vocab).ok());
  EXPECT_FALSE(ParseHre("a<%z", vocab).ok());
}

TEST(HreCompileTest, CompilationIsLinearish) {
  // Claim C2 sanity check: automaton size grows linearly with expression
  // size for a deeply nested expression family.
  Vocabulary vocab;
  std::string expr = "a";
  size_t prev_states = 0;
  for (int depth = 0; depth < 6; ++depth) {
    expr = "a<" + expr + " " + expr + ">";
    auto e = ParseHre(expr, vocab);
    ASSERT_TRUE(e.ok());
    Nha nha = CompileHre(*e);
    if (prev_states > 0) {
      EXPECT_LE(nha.num_states(), 3 * prev_states + 8);
    }
    prev_states = nha.num_states();
  }
}

TEST(HreCompileTest, VCloseDepthStress) {
  // Pair trees: membership must hold at any depth, rejecting near-miss
  // shapes. Each a node holds either b (after embedding) or another pair.
  Vocabulary vocab;
  auto e = ParseHre("b @z (a<%z> a<%z>)^z", vocab);
  ASSERT_TRUE(e.ok());
  Nha nha = CompileHre(*e);

  std::string full = "b";
  for (int d = 0; d < 5; ++d) {
    full = "a<" + full + "> a<" + full + ">";
    auto h = ParseHedge(full, vocab);
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(nha.Accepts(*h)) << "depth " << d;
  }
  // Unbalanced nesting is still fine (each slot embeds independently)...
  auto lopsided = ParseHedge("a<a<b> a<b>> a<b>", vocab);
  ASSERT_TRUE(lopsided.ok());
  EXPECT_TRUE(nha.Accepts(*lopsided));
  // ...but arity violations are not.
  auto bad = ParseHedge("a<a<b> a<b> a<b>> a<b>", vocab);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(nha.Accepts(*bad));
}

TEST(HreCompileTest, RandomAHedgesAgainstAllAExpression) {
  // Property sweep: random hedges over {a, b} tested against a<%z>*^z,
  // whose language is exactly "every symbol is a" (paper Section 4).
  Vocabulary vocab;
  auto e = ParseHre("a<%z>*^z", vocab);
  ASSERT_TRUE(e.ok());
  Nha nha = CompileHre(*e);
  hedge::SymbolId a = vocab.symbols.Intern("a");
  hedge::SymbolId b = vocab.symbols.Intern("b");

  Rng rng(42);
  for (int trial = 0; trial < 150; ++trial) {
    Hedge h;
    bool all_a = true;
    std::vector<hedge::NodeId> open = {hedge::kNullNode};
    int size = 1 + static_cast<int>(rng.Below(15));
    for (int i = 0; i < size; ++i) {
      hedge::NodeId parent = open[rng.Below(open.size())];
      hedge::SymbolId s = rng.Chance(0.8) ? a : b;
      if (s != a) all_a = false;
      open.push_back(h.Append(parent, hedge::Label::Symbol(s)));
    }
    EXPECT_EQ(nha.Accepts(h), all_a) << h.ToString(vocab);
  }
}

}  // namespace
}  // namespace hedgeq::hre
