// Randomized algebra checks for the string-automata substrate: generated
// regexes, exhaustive short-word comparison, and boolean-operation laws.
#include <gtest/gtest.h>

#include "strre/ops.h"
#include "util/rng.h"

namespace hedgeq::strre {
namespace {

const std::vector<Symbol> kAlphabet = {0, 1};

Regex RandomRegex(Rng& rng, int depth) {
  if (depth <= 0 || rng.Chance(0.3)) {
    switch (rng.Below(4)) {
      case 0:
        return Sym(0);
      case 1:
        return Sym(1);
      case 2:
        return Epsilon();
      default:
        return rng.Chance(0.2) ? EmptySet() : Sym(rng.Below(2));
    }
  }
  switch (rng.Below(5)) {
    case 0:
      return Concat(RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1));
    case 1:
      return Alt(RandomRegex(rng, depth - 1), RandomRegex(rng, depth - 1));
    case 2:
      return Star(RandomRegex(rng, depth - 1));
    case 3:
      return Plus(RandomRegex(rng, depth - 1));
    default:
      return Optional(RandomRegex(rng, depth - 1));
  }
}

std::vector<std::vector<Symbol>> AllWords(size_t max_len) {
  std::vector<std::vector<Symbol>> out = {{}};
  std::vector<std::vector<Symbol>> frontier = {{}};
  for (size_t len = 1; len <= max_len; ++len) {
    std::vector<std::vector<Symbol>> next;
    for (const auto& w : frontier) {
      for (Symbol s : kAlphabet) {
        auto w2 = w;
        w2.push_back(s);
        next.push_back(w2);
        out.push_back(std::move(w2));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST(StrreRandomTest, PipelineAgreesOnRandomRegexes) {
  Rng rng(314159);
  const std::vector<std::vector<Symbol>> words = AllWords(6);
  for (int trial = 0; trial < 60; ++trial) {
    Regex e = RandomRegex(rng, 4);
    Nfa nfa = CompileRegex(e);
    Dfa dfa = Determinize(nfa);
    Dfa min = Minimize(dfa, kAlphabet);
    Dfa comp = Complement(min, kAlphabet);
    Regex simplified = SimplifyRegex(e);
    Nfa simp_nfa = CompileRegex(simplified);
    Regex back = NfaToRegex(nfa);
    Nfa back_nfa = CompileRegex(back);
    for (const auto& w : words) {
      bool expected = nfa.Accepts(w);
      ASSERT_EQ(dfa.Accepts(w), expected) << trial;
      ASSERT_EQ(min.Accepts(w), expected) << trial;
      ASSERT_NE(comp.Accepts(w), expected) << trial;
      ASSERT_EQ(simp_nfa.Accepts(w), expected)
          << trial << " simplify changed the language";
      ASSERT_EQ(back_nfa.Accepts(w), expected)
          << trial << " NfaToRegex changed the language";
    }
  }
}

TEST(StrreRandomTest, BooleanLaws) {
  Rng rng(2718);
  const std::vector<std::vector<Symbol>> words = AllWords(5);
  for (int trial = 0; trial < 40; ++trial) {
    Dfa a = Determinize(CompileRegex(RandomRegex(rng, 3)));
    Dfa b = Determinize(CompileRegex(RandomRegex(rng, 3)));
    Dfa inter = Product(a, b, BoolOp::kAnd);
    Dfa uni = Product(a, b, BoolOp::kOr);
    Dfa diff = Product(a, b, BoolOp::kDiff);
    for (const auto& w : words) {
      bool in_a = a.Accepts(w);
      bool in_b = b.Accepts(w);
      ASSERT_EQ(inter.Accepts(w), in_a && in_b);
      ASSERT_EQ(uni.Accepts(w), in_a || in_b);
      ASSERT_EQ(diff.Accepts(w), in_a && !in_b);
    }
    // De Morgan: complement(a ∪ b) == complement(a) ∩ complement(b).
    Dfa lhs = Complement(uni, kAlphabet);
    Dfa rhs = Product(Complement(a, kAlphabet), Complement(b, kAlphabet),
                      BoolOp::kAnd);
    ASSERT_TRUE(Equivalent(lhs, rhs, kAlphabet)) << trial;
  }
}

TEST(StrreRandomTest, MinimizeIsIdempotentAndMinimal) {
  Rng rng(999);
  for (int trial = 0; trial < 40; ++trial) {
    Regex e = RandomRegex(rng, 4);
    Dfa m1 = Minimize(Determinize(CompileRegex(e)), kAlphabet);
    Dfa m2 = Minimize(m1, kAlphabet);
    EXPECT_EQ(m1.num_states(), m2.num_states()) << trial;
    EXPECT_TRUE(Equivalent(m1, m2, kAlphabet)) << trial;
    // No smaller equivalent DFA can exist: every pair of states must be
    // distinguishable. Spot-check via the Myhill-Nerode property: states
    // reached by some word are pairwise inequivalent; checked implicitly
    // by idempotence above plus reachability pruning inside Minimize.
  }
}

TEST(StrreRandomTest, ReverseIsInvolutionOnTheLanguage) {
  Rng rng(5150);
  const std::vector<std::vector<Symbol>> words = AllWords(5);
  for (int trial = 0; trial < 30; ++trial) {
    Nfa nfa = CompileRegex(RandomRegex(rng, 3));
    Nfa rev2 = ReverseNfa(ReverseNfa(nfa));
    for (const auto& w : words) {
      ASSERT_EQ(nfa.Accepts(w), rev2.Accepts(w)) << trial;
    }
  }
}

}  // namespace
}  // namespace hedgeq::strre
