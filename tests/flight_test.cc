// Per-query observability: QueryScope attribution and nesting, the flight
// recorder ring (wrap, drops, JSON round-trip), Prometheus exposition, and
// exact log2-histogram quantile extraction.
//
// Like obs_test.cc, every test restores the global gates it flips, so the
// file behaves both per-process under ctest and as one binary.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/catalogue.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "obs/scope.h"

namespace hedgeq::obs {
namespace {

class ObsGuard {
 public:
  ObsGuard() {
    Registry().Reset();
    ResetFlightRecorder();
    SetEnabled(true);
  }
  ~ObsGuard() {
    SetEnabled(false);
    SetTraceEnabled(false);
    SetFlightRecorderEnabled(false);
    ResetFlightRecorder();
    Registry().Reset();
  }
};

// ---------------------------------------------------------------------------
// QueryScope

TEST(QueryScopeTest, AttributesMetricsToTheOpenScope) {
  ObsGuard guard;
  Counter* c = Registry().GetCounter("test.scope.counter");
  Gauge* g = Registry().GetGauge("test.scope.gauge");
  Histogram* h = Registry().GetHistogram("test.scope.hist");
  c->Add(5);  // before the scope: process-level only
  ScopeSnapshot snap;
  {
    QueryScope scope("q1");
    ASSERT_TRUE(scope.active());
    ASSERT_EQ(QueryScope::Current(), &scope);
    c->Add(2);
    g->Set(9);
    g->Set(4);  // gauges are last-wins inside a scope
    h->Observe(10);
    h->Observe(20);
    Registry().RecordSpan("test.scope.stage", 1500);
    snap = scope.Snapshot();
  }
  EXPECT_EQ(QueryScope::Current(), nullptr);
  EXPECT_EQ(c->value(), 7u) << "process rollup still sees everything";
  EXPECT_EQ(snap.CounterValue("test.scope.counter"), 2u)
      << "the scope sees only what happened inside it";
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 4u);
  ASSERT_EQ(snap.hists.size(), 1u);
  EXPECT_EQ(snap.hists[0].count, 2u);
  EXPECT_EQ(snap.hists[0].sum, 30u);
  EXPECT_EQ(snap.SpanTotalNs("test.scope.stage"), 1500u);
}

TEST(QueryScopeTest, NestedScopeFlushesIntoParent) {
  ObsGuard guard;
  Counter* c = Registry().GetCounter("test.nest.counter");
  QueryScope outer("outer");
  c->Add(1);
  {
    QueryScope inner("inner");
    c->Add(10);
    inner.Annotate("k", "v");
    EXPECT_EQ(inner.Snapshot().CounterValue("test.nest.counter"), 10u);
  }
  ScopeSnapshot snap = outer.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.nest.counter"), 11u)
      << "inner activity merges into the parent on close";
  ASSERT_EQ(snap.annotations.size(), 1u);
  EXPECT_EQ(snap.annotations[0].first, "k");
}

TEST(QueryScopeTest, InertWhenObservabilityDisabled) {
  Registry().Reset();
  SetEnabled(false);
  QueryScope scope("nothing");
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(QueryScope::Current(), nullptr);
  EXPECT_TRUE(scope.Snapshot().counters.empty());
  Registry().Reset();
}

TEST(QueryScopeTest, TopLevelScopeFeedsLatencyHistogram) {
  ObsGuard guard;
  { QueryScope scope("latency"); }
  EXPECT_EQ(Registry().GetHistogram(metrics::kHistQueryLatencyUs)->count(), 1u);
}

TEST(QueryScopeTest, ScopesAreThreadLocal) {
  ObsGuard guard;
  Counter* c = Registry().GetCounter("test.tl.counter");
  QueryScope scope("main-thread");
  std::thread other([&] {
    // No scope is open on this thread, so nothing is attributed.
    EXPECT_EQ(QueryScope::Current(), nullptr);
    c->Add(100);
  });
  other.join();
  c->Add(1);
  EXPECT_EQ(scope.Snapshot().CounterValue("test.tl.counter"), 1u);
  EXPECT_EQ(c->value(), 101u);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorderTest, TopLevelScopeDepositsARecord) {
  ObsGuard guard;
  SetFlightRecorderEnabled(true);
  {
    QueryScope scope("the-query");
    Registry().GetCounter("cache.hit")->Add(3);
    Registry().RecordSpan("automata.determinize", 5000);
    scope.Annotate("cache.reject", "HQV003: tampered");
  }
  std::vector<FlightRecordView> records = FlightRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].label, "the-query");
  EXPECT_EQ(records[0].outcome, "ok");
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_GT(records[0].unix_ms, 0u);
  ASSERT_EQ(records[0].stages.size(), 1u);
  EXPECT_EQ(records[0].stages[0].name, "automata.determinize");
  ASSERT_FALSE(records[0].counters.empty());
  EXPECT_EQ(records[0].counters[0].first, "cache.hit")
      << "cache.* counters sort first in the record";
  ASSERT_EQ(records[0].annotations.size(), 1u);
  EXPECT_EQ(records[0].annotations[0].second, "HQV003: tampered");
}

TEST(FlightRecorderTest, OutcomeAnnotationOverridesOk) {
  ObsGuard guard;
  SetFlightRecorderEnabled(true);
  {
    QueryScope scope("degraded");
    scope.Annotate("outcome", "degraded_lazy");
  }
  std::vector<FlightRecordView> records = FlightRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, "degraded_lazy");
}

TEST(FlightRecorderTest, NestedScopesDepositOneRecord) {
  ObsGuard guard;
  SetFlightRecorderEnabled(true);
  {
    QueryScope outer("outer");
    QueryScope inner("inner");
  }
  EXPECT_EQ(FlightRecords().size(), 1u)
      << "only the top-level scope records; the inner one flushed into it";
}

TEST(FlightRecorderTest, RingWrapKeepsTheNewestRecords) {
  ObsGuard guard;
  SetFlightRecorderEnabled(true);
  const size_t capacity = FlightRecorderCapacity();
  const size_t total = capacity + 17;
  for (size_t i = 0; i < total; ++i) {
    QueryScope scope("q" + std::to_string(i));
  }
  std::vector<FlightRecordView> records = FlightRecords();
  ASSERT_EQ(records.size(), capacity);
  EXPECT_EQ(FlightRecordsDropped(), 0u) << "sequential writes never contend";
  // Oldest-to-newest, and exactly the last `capacity` sequence numbers.
  EXPECT_EQ(records.front().seq, total - capacity + 1);
  EXPECT_EQ(records.back().seq, total);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, JsonRoundTripsThroughObsParser) {
  ObsGuard guard;
  SetFlightRecorderEnabled(true);
  {
    // Hostile label: quotes, backslash, newline all must survive export.
    QueryScope scope("say \"hi\" \\ twice\n");
    Registry().GetCounter("cache.miss")->Increment();
    Registry().RecordSpan("xml.parse", 1234);
    scope.Annotate("outcome", "error");
  }
  const std::string text = FlightRecorderJson();
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* fr = (*parsed)->Get("flight_recorder");
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->Get("capacity")->integer(),
            static_cast<int64_t>(FlightRecorderCapacity()));
  const json::Value* records = fr->Get("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->array().size(), 1u);
  const json::Value& rec = *records->array()[0];
  EXPECT_EQ(rec.Get("label")->string(), "say \"hi\" \\ twice\n");
  EXPECT_EQ(rec.Get("outcome")->string(), "error");
  EXPECT_EQ(rec.Get("counters")->Get("cache.miss")->integer(), 1);
  EXPECT_EQ(rec.Get("stages")->array()[0]->Get("name")->string(), "xml.parse");
}

TEST(FlightRecorderTest, DisabledRecorderDepositsNothing) {
  ObsGuard guard;
  ASSERT_FALSE(FlightRecorderEnabled());
  { QueryScope scope("unrecorded"); }
  EXPECT_TRUE(FlightRecords().empty());
}

TEST(FlightRecorderTest, ConcurrentScopesAllLand) {
  ObsGuard guard;
  SetFlightRecorderEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryScope scope("t" + std::to_string(t) + ":" + std::to_string(i));
        Registry().GetCounter("test.conc")->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every deposit either landed or was counted as dropped (contention on a
  // wrapped slot) — none may vanish silently.
  EXPECT_EQ(FlightRecords().size() + FlightRecordsDropped(),
            static_cast<size_t>(kThreads * kPerThread));
  auto parsed = json::Parse(FlightRecorderJson());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

// ---------------------------------------------------------------------------
// Exact log2-histogram quantiles

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  ObsGuard guard;
  Histogram* h = Registry().GetHistogram("test.q.empty");
  EXPECT_EQ(HistogramQuantile(*h, 0.5), 0u);
  EXPECT_EQ(HistogramQuantile(*h, 0.99), 0u);
}

TEST(HistogramQuantileTest, ExactBucketBoundaries) {
  ObsGuard guard;
  Histogram* h = Registry().GetHistogram("test.q.split");
  // 100 observations in bucket 0 (values 0..1, upper bound 1) and 100 in
  // bucket 1 (values 2..3, upper bound 3).
  for (int i = 0; i < 100; ++i) h->Observe(1);
  for (int i = 0; i < 100; ++i) h->Observe(2);
  // rank(0.5) = ceil(0.5*200) = 100 — exactly exhausts bucket 0.
  EXPECT_EQ(HistogramQuantile(*h, 0.5), 1u);
  // One observation past the boundary crosses into bucket 1.
  h->Observe(0);  // bucket 0 now holds 101 of 201; rank(0.5)=101 stays in it
  EXPECT_EQ(HistogramQuantile(*h, 0.5), 1u);
  EXPECT_EQ(HistogramQuantile(*h, 0.9), 3u);
  EXPECT_EQ(HistogramQuantile(*h, 0.99), 3u);
  EXPECT_EQ(HistogramQuantile(*h, 1.0), 3u);
}

TEST(HistogramQuantileTest, SingleObservationDominatesEveryQuantile) {
  ObsGuard guard;
  Histogram* h = Registry().GetHistogram("test.q.single");
  h->Observe(1023);  // bucket 9, upper bound exactly 1023
  EXPECT_EQ(HistogramQuantile(*h, 0.0), 1023u);
  EXPECT_EQ(HistogramQuantile(*h, 0.5), 1023u);
  EXPECT_EQ(HistogramQuantile(*h, 1.0), 1023u);
}

TEST(HistogramQuantileTest, BucketUpperBoundsAreTight) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(9), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(62), (uint64_t{2} << 62) - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(63), ~uint64_t{0});
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PrometheusTest, EmitsTypedFamiliesWithSanitizedNames) {
  ObsGuard guard;
  Registry().GetCounter("cache.hit")->Add(4);
  Registry().GetGauge("process.threads")->Set(2);
  const std::string text = PrometheusText();
  EXPECT_NE(text.find("# TYPE hedgeq_cache_hit counter\n"), std::string::npos);
  EXPECT_NE(text.find("hedgeq_cache_hit 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hedgeq_process_threads gauge\n"),
            std::string::npos);
  // Metric *names* must be fully sanitized (dots map to underscores);
  // label values like stage="automata.determinize" keep their dots.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    EXPECT_EQ(name.find('.'), std::string::npos) << line;
    EXPECT_EQ(name.rfind("hedgeq_", 0), 0u) << line;
  }
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithExactBounds) {
  ObsGuard guard;
  Histogram* h = Registry().GetHistogram("test.prom.hist");
  h->Observe(1);   // bucket 0 (le 1)
  h->Observe(1);
  h->Observe(2);   // bucket 1 (le 3)
  const std::string text = PrometheusText();
  EXPECT_NE(text.find("hedgeq_test_prom_hist_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("hedgeq_test_prom_hist_bucket{le=\"3\"} 3\n"),
            std::string::npos)
      << "bucket counts are cumulative";
  EXPECT_NE(text.find("hedgeq_test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("hedgeq_test_prom_hist_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("hedgeq_test_prom_hist_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("hedgeq_test_prom_hist_quantile{q=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("hedgeq_test_prom_hist_quantile{q=\"0.99\"} 3\n"),
            std::string::npos);
}

TEST(PrometheusTest, SpanAggregatesBecomeLabeledFamilies) {
  ObsGuard guard;
  Registry().RecordSpan("automata.determinize", 2000);
  Registry().RecordSpan("automata.determinize", 3000);
  const std::string text = PrometheusText();
  EXPECT_NE(
      text.find("hedgeq_span_count{stage=\"automata.determinize\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("hedgeq_span_total_ns{stage=\"automata.determinize\"} 5000\n"),
      std::string::npos);
}

TEST(PrometheusTest, ProcessGaugesAreRefreshedInline) {
  ObsGuard guard;
  RegisterCatalogue();
  const std::string text = PrometheusText();
  // UpdateProcessGauges ran: RSS and wall-clock cannot be zero by now.
  size_t at = text.find("hedgeq_process_peak_rss_bytes ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(text.substr(at).find("hedgeq_process_peak_rss_bytes 0\n"), 0u);
}

}  // namespace
}  // namespace hedgeq::obs
