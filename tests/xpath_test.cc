#include <gtest/gtest.h>

#include "baseline/xpath.h"
#include "xml/xml.h"

namespace hedgeq::baseline {
namespace {

using hedge::Hedge;
using hedge::NodeId;
using hedge::Vocabulary;

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseXml(
        "<doc>"
        "<section><title>one</title><figure/><caption>c1</caption>"
        "<para>p</para></section>"
        "<section><title>two</title><figure/><para>p</para>"
        "<section><figure/><caption>c2</caption></section></section>"
        "</doc>",
        vocab_);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = std::move(doc).value().hedge;
  }

  std::vector<NodeId> Eval(const std::string& xpath) {
    auto p = ParseXPath(xpath, vocab_);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return EvaluateXPath(doc_, *p);
  }

  std::string NameOf(NodeId n) {
    return vocab_.symbols.NameOf(doc_.label(n).id);
  }

  Vocabulary vocab_;
  Hedge doc_;
};

TEST_F(XPathTest, ChildSteps) {
  EXPECT_EQ(Eval("/doc").size(), 1u);
  EXPECT_EQ(Eval("/doc/section").size(), 2u);
  EXPECT_EQ(Eval("/doc/section/title").size(), 2u);
  EXPECT_EQ(Eval("/nope").size(), 0u);
}

TEST_F(XPathTest, DescendantShortcut) {
  EXPECT_EQ(Eval("//figure").size(), 3u);
  EXPECT_EQ(Eval("//section").size(), 3u);
  EXPECT_EQ(Eval("//section//figure").size(), 3u);
  EXPECT_EQ(Eval("/doc//caption").size(), 2u);
}

TEST_F(XPathTest, Wildcards) {
  EXPECT_EQ(Eval("/doc/*").size(), 2u);
  EXPECT_EQ(Eval("/*").size(), 1u);
  // text() selects text nodes.
  EXPECT_EQ(Eval("//title/text()").size(), 2u);
}

TEST_F(XPathTest, ExplicitAxes) {
  EXPECT_EQ(Eval("//figure/parent::section").size(), 3u);
  EXPECT_EQ(Eval("//caption/ancestor::section").size(), 3u);
  EXPECT_EQ(Eval("//figure/following-sibling::caption").size(), 2u);
  EXPECT_EQ(Eval("//caption/preceding-sibling::figure").size(), 2u);
  EXPECT_EQ(Eval("//figure/self::figure").size(), 3u);
  // Union over the three figures: each figure, section1..3, and doc.
  EXPECT_EQ(Eval("//figure/ancestor-or-self::*").size(), 7u);
}

TEST_F(XPathTest, ExistencePredicates) {
  // Figures having SOME following caption sibling.
  std::vector<NodeId> with_caption =
      Eval("//figure[following-sibling::caption]");
  EXPECT_EQ(with_caption.size(), 2u);
  // Sections containing figures.
  EXPECT_EQ(Eval("//section[figure]").size(), 3u);
  // Sections containing nested sections.
  EXPECT_EQ(Eval("//section[section]").size(), 1u);
}

TEST_F(XPathTest, PositionPredicates) {
  EXPECT_EQ(Eval("/doc/section[1]/title/text()").size(), 1u);
  EXPECT_EQ(Eval("/doc/section[2]/section").size(), 1u);
  EXPECT_EQ(Eval("/doc/section[3]").size(), 0u);
  // The paper's motivating query: figures whose IMMEDIATELY following
  // sibling is a caption.
  EXPECT_EQ(Eval("//figure[following-sibling::*[1][self::caption]]").size(),
            2u);
}

TEST_F(XPathTest, DotAndDotDot) {
  EXPECT_EQ(Eval("//figure/.").size(), 3u);
  EXPECT_EQ(Eval("//caption/..").size(), 2u);
}

TEST_F(XPathTest, ResultsInDocumentOrderDeduplicated) {
  std::vector<NodeId> all = Eval("//*");
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1], all[i]);
  }
}

TEST_F(XPathTest, ParseErrors) {
  Vocabulary v;
  EXPECT_FALSE(ParseXPath("", v).ok());
  EXPECT_FALSE(ParseXPath("//figure[", v).ok());
  EXPECT_FALSE(ParseXPath("//figure[0]", v).ok());
  EXPECT_FALSE(ParseXPath("bogus-axis::a", v).ok());
  EXPECT_FALSE(ParseXPath("a/", v).ok());
  EXPECT_FALSE(ParseXPath("comment()", v).ok());
}

TEST_F(XPathTest, RoundTripPrinting) {
  for (const char* text :
       {"/doc/section", "//figure[following-sibling::*[1][self::caption]]",
        "//caption/ancestor::section", "/doc/section[2]/section"}) {
    auto p = ParseXPath(text, vocab_);
    ASSERT_TRUE(p.ok()) << text;
    std::string printed = XPathToString(*p, vocab_);
    auto p2 = ParseXPath(printed, vocab_);
    ASSERT_TRUE(p2.ok()) << printed;
    EXPECT_EQ(EvaluateXPath(doc_, *p), EvaluateXPath(doc_, *p2)) << text;
  }
}

}  // namespace
}  // namespace hedgeq::baseline
