// End-to-end pipeline: generate -> serialize -> reparse -> validate
// (streaming and DOM) -> query (three evaluation strategies) -> transform
// -> check outputs, all against one another.
#include <gtest/gtest.h>

#include <functional>

#include "baseline/translate.h"
#include "hre/ast.h"
#include "baseline/xpath.h"
#include "query/selection.h"
#include "schema/streaming.h"
#include "schema/transform.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "xml/xml.h"

namespace hedgeq {
namespace {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::NodeId;
using hedge::Vocabulary;

constexpr const char* kArticleGrammar = R"(
start   = Article
Article = article<Title Section*>
Title   = title<Text>
Text    = $#text
Section = section<Title (Para|Figure|Caption|Table|Section)*>
Para    = para<Text>
Figure  = figure<Image>
Image   = image<>
Caption = caption<Text>
Table   = table<>
)";

TEST(IntegrationTest, FullPipeline) {
  Vocabulary vocab;

  // 1. Generate and serialize.
  Rng rng(20010604);
  workload::ArticleOptions options;
  options.target_nodes = 900;
  Hedge generated = workload::RandomArticle(rng, vocab, options);
  xml::XmlDocument wrapped = xml::WrapHedge(generated, vocab);
  std::string text = xml::SerializeXml(wrapped, vocab);

  // 2. Reparse: structure survives the round trip.
  auto doc = xml::ParseXml(text, vocab);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->hedge.EqualTo(generated));

  // 3. Validate, twice: DOM and streaming agree.
  auto schema = schema::ParseSchema(kArticleGrammar, vocab);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Validates(doc->hedge));
  auto validator = schema::StreamingValidator::Create(*schema);
  ASSERT_TRUE(validator.ok());
  auto verdict = validator->Validate(text, vocab);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);

  // 4. Query three ways: Algorithm 1, the naive oracle, and XPath (via the
  // translator) — identical answers.
  auto xpath = baseline::ParseXPath("//section//figure", vocab);
  ASSERT_TRUE(xpath.ok());
  std::vector<hedge::SymbolId> alphabet = schema->Symbols();
  auto translated = baseline::TranslateXPath(*xpath, alphabet);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  auto eval = query::SelectionEvaluator::Create(*translated);
  ASSERT_TRUE(eval.ok());
  query::NaiveSelectionEvaluator naive(*translated);

  std::vector<NodeId> via_algorithm = eval->LocatedNodes(doc->hedge);
  std::vector<NodeId> via_xpath =
      baseline::EvaluateXPath(doc->hedge, *xpath);
  std::vector<bool> via_naive = naive.Locate(doc->hedge);
  EXPECT_EQ(via_algorithm, via_xpath);
  std::vector<NodeId> naive_nodes;
  for (NodeId n = 0; n < via_naive.size(); ++n) {
    if (via_naive[n]) naive_nodes.push_back(n);
  }
  EXPECT_EQ(via_algorithm, naive_nodes);
  ASSERT_FALSE(via_algorithm.empty());

  // 5. Transform: the select-output schema accepts every located subtree,
  // and the delete-output schema accepts the erased document.
  auto select_out = schema::SelectOutputSchema(*schema, *translated);
  ASSERT_TRUE(select_out.ok());
  for (NodeId n : via_algorithm) {
    Hedge subtree;
    subtree.AppendCopy(kNullNode, doc->hedge, n);
    EXPECT_TRUE(select_out->Validates(subtree));
  }

  auto delete_out = schema::DeleteOutputSchema(*schema, *translated);
  ASSERT_TRUE(delete_out.ok());
  Hedge erased;
  std::function<void(NodeId, NodeId)> copy = [&](NodeId src, NodeId parent) {
    if (via_naive[src]) return;
    NodeId c = erased.Append(parent, doc->hedge.label(src));
    for (NodeId kid = doc->hedge.first_child(src); kid != kNullNode;
         kid = doc->hedge.next_sibling(kid)) {
      copy(kid, c);
    }
  };
  for (NodeId r : doc->hedge.roots()) copy(r, kNullNode);
  EXPECT_TRUE(delete_out->Validates(erased));

  // 6. The erased document no longer matches the query anywhere.
  EXPECT_TRUE(eval->LocatedNodes(erased).empty());
}

TEST(IntegrationTest, AttributesAsElementsEnableAttributeConditions) {
  // Section 2's closing remark: attribute conditions reduce to symbol
  // conditions. With attributes_as_elements, an attribute is a leading
  // @-named child, and the subhedge expression can require it.
  Vocabulary vocab;
  xml::XmlParseOptions options;
  options.attributes_as_elements = true;
  auto doc = xml::ParseXml(
      "<doc>"
      "<figure id='f1'><image/></figure>"
      "<figure><image/></figure>"
      "<figure id='f3'><image/></figure>"
      "</doc>",
      vocab, options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Figures that HAVE an id attribute: subhedge starts with @id<text>.
  // '@' clashes with the embed operator in the textual syntax, so this
  // query is built with the factories.
  hedge::SymbolId at_id = vocab.symbols.Intern("@id");
  hedge::SymbolId image = vocab.symbols.Intern("image");
  hedge::VarId text_var = vocab.variables.Intern("#text");
  std::vector<phr::PointedBaseRep> triplets = {
      {nullptr, vocab.symbols.Intern("figure"), nullptr},
      {nullptr, vocab.symbols.Intern("doc"), nullptr}};
  query::SelectionQuery q{
      hre::HConcat(hre::HTree(at_id, hre::HVar(text_var)),
                   hre::HTree(image, hre::HEpsilon())),
      phr::Phr(std::move(triplets),
               strre::Concat(strre::Sym(0), strre::Sym(1)))};
  auto eval = query::SelectionEvaluator::Create(q);
  ASSERT_TRUE(eval.ok());
  std::vector<NodeId> located = eval->LocatedNodes(doc->hedge);
  ASSERT_EQ(located.size(), 2u);
  EXPECT_EQ(doc->attributes[located[0]][0].second, "f1");
  EXPECT_EQ(doc->attributes[located[1]][0].second, "f3");
}

}  // namespace
}  // namespace hedgeq
