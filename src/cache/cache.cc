#include "cache/cache.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "automata/serialize.h"
#include "lint/diagnostics.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "obs/scope.h"
#include "util/digest.h"
#include "util/failpoint.h"
#include "util/strings.h"
#include "verify/certificate.h"
#include "verify/checker.h"

namespace hedgeq::cache {

namespace fs = std::filesystem;

namespace {

// Bump on any change to the entry layout or the serialization formats it
// embeds: the version participates in the content hash, so old entries
// become unreachable (and eventually quarantine-free garbage) instead of
// parse errors. v2: certificates carry the digestchain section.
constexpr int kFormatVersion = 2;
constexpr const char* kMagic = "hqcache";
constexpr const char* kKind = "determinize";
// Key kind of scoped entries (keyed by caller-supplied PHR source text
// instead of the serialized input automaton). Distinct from kKind so a
// scoped key can never collide with an input key for a different
// automaton; the entry payload and header kind are identical.
constexpr const char* kScopedKind = "phr";

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  *out = buf.str();
  return true;
}

}  // namespace

std::atomic<uint64_t> AutomatonCache::temp_counter_{0};

Result<std::unique_ptr<AutomatonCache>> AutomatonCache::Open(std::string dir) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "corrupt", ec);
  if (ec) {
    return Status::FailedPrecondition(
        StrCat("cache: cannot create cache directory '", dir,
               "': ", ec.message()));
  }
  return std::unique_ptr<AutomatonCache>(new AutomatonCache(std::move(dir)));
}

std::string AutomatonCache::KeyFor(const automata::Nha& input) const {
  std::string canonical =
      StrCat(kMagic, " ", kFormatVersion, " ", kKind, "\n",
             automata::SerializeNha(input, *vocab_));
  return Digest128(canonical);
}

std::string AutomatonCache::ScopedKeyFor(std::string_view key_material) const {
  std::string canonical =
      StrCat(kMagic, " ", kFormatVersion, " ", kScopedKind, "\n", key_material);
  return Digest128(canonical);
}

std::string AutomatonCache::EntryPathFor(const automata::Nha& input) const {
  return (fs::path(dir_) / (KeyFor(input) + ".cert")).string();
}

std::string AutomatonCache::ScopedEntryPathFor(
    std::string_view key_material) const {
  return (fs::path(dir_) / (ScopedKeyFor(key_material) + ".cert")).string();
}

void AutomatonCache::Quarantine(const std::string& entry_path,
                                const std::string& reason) {
  ++stats_.quarantines;
  HEDGEQ_OBS_COUNT(obs::metrics::kCacheQuarantine, 1);
  last_reject_ = reason;
  // Attribute the rejection (with its HQV reason) to the query being
  // served, so flight records carry *why* the cache refused the entry.
  if (auto* scope = obs::QueryScope::Current(); scope != nullptr) {
    scope->Annotate("cache.reject", reason);
  }
  fs::path src(entry_path);
  fs::path dst = fs::path(dir_) / "corrupt" /
                 StrCat(src.filename().string(), ".",
                        temp_counter_.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  fs::rename(src, dst, ec);
  if (ec) {
    // Another process may have quarantined (or replaced) it first; make
    // sure the bad entry at least stops being served.
    fs::remove(src, ec);
    return;
  }
  std::ofstream sidecar(dst.string() + ".reason",
                        std::ios::binary | std::ios::trunc);
  if (sidecar) sidecar << reason << "\n";
}

bool AutomatonCache::Lookup(const automata::Nha& input,
                            automata::Determinized* out,
                            automata::DeterminizeWitness* witness) {
  if (vocab_ == nullptr) return false;
  return LookupAt(KeyFor(input), input, out, witness);
}

bool AutomatonCache::LookupScoped(std::string_view key_material,
                                  const automata::Nha& input,
                                  automata::Determinized* out,
                                  automata::DeterminizeWitness* witness) {
  if (vocab_ == nullptr) return false;
  return LookupAt(ScopedKeyFor(key_material), input, out, witness);
}

bool AutomatonCache::LookupAt(const std::string& key,
                              const automata::Nha& input,
                              automata::Determinized* out,
                              automata::DeterminizeWitness* witness) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kCacheLoad);
  last_reject_.clear();
  const std::string expected_input = automata::SerializeNha(input, *vocab_);
  const std::string path = (fs::path(dir_) / (key + ".cert")).string();

  auto miss = [&]() {
    ++stats_.misses;
    HEDGEQ_OBS_COUNT(obs::metrics::kCacheMiss, 1);
    return false;
  };

  std::string raw;
  if (!ReadFileToString(path, &raw)) return miss();
  if (!failpoint::Check("cache/short-read").ok()) {
    // A torn read of a good entry: the validation ladder below must treat
    // the prefix exactly like any other corrupt entry.
    raw.resize(raw.size() / 2);
  }

  // Header: "hqcache <version> determinize <key> <payload-bytes>\n".
  size_t nl = raw.find('\n');
  bool header_ok = false;
  size_t payload_bytes = 0;
  if (nl != std::string::npos) {
    std::istringstream header(raw.substr(0, nl));
    std::string magic, kind, stored_key;
    int version = 0;
    if (header >> magic >> version >> kind >> stored_key >> payload_bytes &&
        magic == kMagic && version == kFormatVersion && kind == kKind &&
        stored_key == key) {
      header_ok = true;
    }
  }
  if (!header_ok) {
    Quarantine(path, StrCat(lint::DiagnosticCodeName(
                        lint::DiagnosticCode::kCertificateMalformed),
                    ": malformed header, not a readable cache entry"));
    return miss();
  }
  std::string_view payload = std::string_view(raw).substr(nl + 1);
  if (payload.size() != payload_bytes) {
    Quarantine(path, StrCat(lint::DiagnosticCodeName(
                            lint::DiagnosticCode::kCertificateMalformed),
                        ": truncated payload, header promises ",
                        payload_bytes, " bytes, found ", payload.size()));
    return miss();
  }

  Result<verify::Certificate> cert =
      verify::DeserializeCertificate(payload, *vocab_);
  if (!cert.ok()) {
    Quarantine(path, StrCat(lint::DiagnosticCodeName(
                            lint::DiagnosticCode::kCertificateMalformed),
                        ": undeserializable, ", cert.status().message()));
    return miss();
  }
  if (cert->kind != verify::CertificateKind::kDeterminize) {
    Quarantine(path, StrCat(lint::DiagnosticCodeName(
                        lint::DiagnosticCode::kCertificateMalformed),
                    ": entry is not a determinize certificate"));
    return miss();
  }
  // Guards against both hash collisions and entries tampered into a
  // *valid* certificate of some other automaton: valid is not enough, it
  // must certify exactly this input.
  if (automata::SerializeNha(cert->input, *vocab_) != expected_input) {
    Quarantine(path, StrCat(lint::DiagnosticCodeName(
                        lint::DiagnosticCode::kCertificateMalformed),
                    ": input mismatch, entry certifies a different "
                    "automaton"));
    return miss();
  }
  std::vector<lint::Diagnostic> findings;
  if (check_mode_ == CheckMode::kLight) {
    ++stats_.light_checks;
    HEDGEQ_OBS_COUNT(obs::metrics::kCacheLightChecks, 1);
    findings = verify::CheckCertificateLight(*cert);
  } else {
    findings = verify::CheckCertificate(*cert);
  }
  if (!findings.empty()) {
    ++stats_.validate_rejects;
    HEDGEQ_OBS_COUNT(obs::metrics::kCacheValidateReject, 1);
    Quarantine(path, StrCat(lint::DiagnosticCodeName(findings.front().code),
                            ": ", findings.front().message));
    return miss();
  }

  out->dha = std::move(cert->dha);
  out->subsets = std::move(cert->subsets);
  if (witness != nullptr) *witness = std::move(cert->det);
  ++stats_.hits;
  HEDGEQ_OBS_COUNT(obs::metrics::kCacheHit, 1);
  return true;
}

void AutomatonCache::Store(const automata::Nha& input,
                           const automata::Determinized& out,
                           const automata::DeterminizeWitness& witness) {
  if (vocab_ == nullptr) return;
  StoreAt(KeyFor(input), input, out, witness);
}

void AutomatonCache::StoreScoped(std::string_view key_material,
                                 const automata::Nha& input,
                                 const automata::Determinized& out,
                                 const automata::DeterminizeWitness& witness) {
  if (vocab_ == nullptr) return;
  StoreAt(ScopedKeyFor(key_material), input, out, witness);
}

void AutomatonCache::StoreAt(const std::string& key,
                             const automata::Nha& input,
                             const automata::Determinized& out,
                             const automata::DeterminizeWitness& witness) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kCacheStoreSpan);
  auto store_error = [&]() {
    ++stats_.store_errors;
    HEDGEQ_OBS_COUNT(obs::metrics::kCacheStoreError, 1);
  };

  verify::Certificate cert;
  cert.kind = verify::CertificateKind::kDeterminize;
  cert.input = input;
  cert.dha = out.dha;
  cert.subsets = out.subsets;
  cert.det = witness;
  const std::string payload = verify::SerializeCertificate(cert, *vocab_);
  std::string body = StrCat(kMagic, " ", kFormatVersion, " ", kKind, " ", key,
                            " ", payload.size(), "\n", payload);
  if (!failpoint::Check("cache/torn-write").ok()) {
    // Simulates a write torn by power loss on a filesystem without atomic
    // publish: half the entry lands on disk and *is* renamed into place.
    // The Lookup validation ladder must quarantine it.
    body.resize(body.size() / 2);
  }

  const std::string final_path = (fs::path(dir_) / (key + ".cert")).string();
  const std::string temp_path =
      (fs::path(dir_) /
       StrCat(".tmp.", key, ".", static_cast<uint64_t>(::getpid()), ".",
              temp_counter_.fetch_add(1, std::memory_order_relaxed)))
          .string();
  bool write_ok = failpoint::Check("cache/enospc").ok();
  if (write_ok) {
    std::ofstream temp(temp_path, std::ios::binary | std::ios::trunc);
    write_ok = static_cast<bool>(temp.write(body.data(),
                                            static_cast<std::streamsize>(
                                                body.size())));
    temp.close();
    write_ok = write_ok && !temp.fail();
  }
  if (!write_ok) {
    std::error_code ec;
    fs::remove(temp_path, ec);
    store_error();
    return;
  }
  std::error_code ec;
  if (!failpoint::Check("cache/rename").ok()) {
    ec = std::make_error_code(std::errc::io_error);
  } else {
    // Atomic publish: readers see the old entry, the new entry, or none —
    // never a prefix. Concurrent writers of one key race benignly; the
    // last rename wins and both entries were valid.
    fs::rename(temp_path, final_path, ec);
  }
  if (ec) {
    std::error_code rm;
    fs::remove(temp_path, rm);
    store_error();
    return;
  }
  ++stats_.stores;
  HEDGEQ_OBS_COUNT(obs::metrics::kCacheStore, 1);
  SweepAfterStore(final_path);
}

void AutomatonCache::SweepAfterStore(const std::string& just_written) {
  if (max_bytes_ == 0 && max_age_seconds_ == 0) return;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    uint64_t size;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return;
  for (const fs::directory_entry& de : it) {
    std::error_code sec;
    if (!de.is_regular_file(sec) || sec) continue;
    if (de.path().extension() != ".cert") continue;
    const uint64_t size = de.file_size(sec);
    if (sec) continue;
    const fs::file_time_type mtime = de.last_write_time(sec);
    if (sec) continue;
    total += size;
    entries.push_back(Entry{de.path(), mtime, size});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  const fs::file_time_type now = fs::file_time_type::clock::now();
  for (const Entry& e : entries) {
    const bool expired =
        max_age_seconds_ != 0 &&
        now - e.mtime > std::chrono::seconds(max_age_seconds_);
    const bool over = max_bytes_ != 0 && total > max_bytes_;
    // Entries are oldest-first, so once the front entry is fresh and the
    // directory fits, nothing behind it can need evicting either.
    if (!expired && !over) break;
    // The entry published by this very Store is sacrosanct: even a bound
    // smaller than one entry must leave the cache able to serve the key
    // it just computed.
    if (e.path.string() == just_written) continue;
    std::error_code rec;
    if (fs::remove(e.path, rec) && !rec) {
      total -= e.size;
      ++stats_.evictions;
      HEDGEQ_OBS_COUNT(obs::metrics::kCacheEvictions, 1);
    }
  }
}

}  // namespace hedgeq::cache
