#ifndef HEDGEQ_CACHE_CACHE_H_
#define HEDGEQ_CACHE_CACHE_H_

// hedgeq::cache — a content-addressed, cross-process persistent cache for
// compiled automata, installed into the determinize pipeline through the
// automata::DeterminizeCache hook.
//
// The one invariant everything here serves: **never trust cached bytes**.
// A lookup only returns a hit after the stored certificate has been
// re-validated from scratch by the independent checker (verify/checker.h)
// *and* the stored input automaton byte-compares equal to the input being
// determinized. Anything else — truncated file, flipped bit, wrong version,
// hash collision, a write torn by a crash — is rejected with its HQV
// diagnostic code, moved into the `corrupt/` subdirectory for post-mortem,
// and transparently recomputed. The cache can therefore make queries
// faster but never wrong: the worst possible corruption degrades to the
// cost of a cold run plus one rename.
//
// Crash and contention safety. Entries are written to a unique temp file
// in the cache directory and published with an atomic rename, so readers
// never observe a partially written entry under POSIX rename semantics.
// Concurrent writers of the same key are benign: both produce a valid
// entry for the same content hash and the last rename wins. Concurrent
// processes sharing a directory need no locks.
//
// Fault injection. Four util/failpoint points cover the I/O failure modes
// the propagation-matrix test (tests/cache_test.cc) proves all degrade to
// a recompute, never a wrong answer:
//   cache/torn-write   Store publishes a half-written payload (simulating
//                      a filesystem without atomic-rename durability)
//   cache/short-read   Lookup sees a truncated read of a good entry
//   cache/enospc       the temp-file write fails (disk full)
//   cache/rename       the publishing rename fails

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "automata/determinize.h"
#include "automata/nha.h"
#include "hedge/hedge.h"
#include "util/status.h"

namespace hedgeq::cache {

/// Monotonic per-instance totals, mirrored into the obs `cache.*` counters.
/// `hits` counts only fully re-validated entries; every `validate_rejects`
/// is also a `quarantines` (quarantine additionally counts entries that
/// failed before the checker ran: bad header, undeserializable payload,
/// input mismatch).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t validate_rejects = 0;
  uint64_t quarantines = 0;
  uint64_t stores = 0;
  uint64_t store_errors = 0;
  uint64_t evictions = 0;
  uint64_t light_checks = 0;
};

/// How Lookup revalidates a stored certificate before serving it.
enum class CheckMode {
  /// verify::CheckCertificateLight — the per-step digest chain plus a
  /// seeded sample of full subset re-derivations and a full final-DFA
  /// walk. The default: it cuts the revalidation share of a cache hit
  /// (automata.determinize.certify_frac_pct) while corruption anywhere in
  /// the entry is still caught deterministically (HQV016).
  kLight,
  /// Full verify::CheckCertificate re-derivation on every hit
  /// (`--check=full`).
  kFull,
};

/// The persistent automaton cache. Thread-compatible: one instance must
/// not be shared across threads without external synchronization, but any
/// number of instances (in any number of processes) may share one cache
/// directory — cross-instance safety is purely filesystem-level.
class AutomatonCache final : public automata::DeterminizeCache {
 public:
  /// Opens (creating if needed) `dir` and its `corrupt/` subdirectory.
  /// Fails with kFailedPrecondition when the directories cannot be
  /// created.
  static Result<std::unique_ptr<AutomatonCache>> Open(std::string dir);

  /// Binds the vocabulary used to render automata to their canonical text
  /// form. Must be called before Lookup/Store; the returned DHA's symbol
  /// ids are only meaningful against this vocabulary, so it must be the
  /// one the querying pipeline interns into.
  void BindVocabulary(hedge::Vocabulary* vocab) { vocab_ = vocab; }

  /// automata::DeterminizeCache: returns true only for an entry that
  /// passed the full validation ladder (header, exact length,
  /// deserialize, input byte-compare, certificate check).
  bool Lookup(const automata::Nha& input, automata::Determinized* out,
              automata::DeterminizeWitness* witness) override;

  /// automata::DeterminizeCache: fire-and-forget persistence via
  /// temp-file + atomic rename. Failures are counted, never propagated.
  void Store(const automata::Nha& input, const automata::Determinized& out,
             const automata::DeterminizeWitness& witness) override;

  /// Scoped entry points (automata::DeterminizeCache): key the entry by an
  /// opaque caller byte string — query/phr_compile passes the source PHR
  /// text rendered against the vocabulary — instead of the serialized
  /// input automaton, so a whole Theorem 4 pipeline can hit without first
  /// rebuilding its subhedge NHA's canonical form. The validation ladder
  /// is unchanged: the stored input automaton is still byte-compared and
  /// the certificate still re-checked before a hit is served.
  bool LookupScoped(std::string_view key_material,
                    const automata::Nha& input, automata::Determinized* out,
                    automata::DeterminizeWitness* witness) override;
  void StoreScoped(std::string_view key_material, const automata::Nha& input,
                   const automata::Determinized& out,
                   const automata::DeterminizeWitness& witness) override;

  /// Content key of `input` under the bound vocabulary: a 128-bit hex
  /// digest of the canonical serialized automaton plus the entry-format
  /// version, so a format bump invalidates old entries by construction.
  std::string KeyFor(const automata::Nha& input) const;

  /// Content key of a scoped entry (same versioning, "phr" key kind).
  std::string ScopedKeyFor(std::string_view key_material) const;

  /// Where the entry for `input` lives ("<dir>/<key>.cert"); the file may
  /// not exist. Exposed for tests and the check.sh tamper gate.
  std::string EntryPathFor(const automata::Nha& input) const;

  /// Where the scoped entry for `key_material` lives; may not exist.
  std::string ScopedEntryPathFor(std::string_view key_material) const;

  /// Selects how Lookup revalidates entries (default CheckMode::kLight);
  /// `hedgeq_verify --check=full` and the E16 benchmark flip this.
  void set_check_mode(CheckMode mode) { check_mode_ = mode; }
  CheckMode check_mode() const { return check_mode_; }

  const CacheStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

  /// Bounds the total size of `*.cert` entries in the directory; 0 (the
  /// default) means unbounded. When a Store pushes the directory over the
  /// bound, entries are evicted oldest-mtime-first (LRU by publish time)
  /// until it fits again — the just-published entry is never evicted, so
  /// a bound smaller than one entry still leaves the cache functional.
  void set_max_bytes(uint64_t max_bytes) { max_bytes_ = max_bytes; }
  uint64_t max_bytes() const { return max_bytes_; }

  /// Age bound on entries, in seconds since last publish; 0 (the default)
  /// means no age bound. Expired entries are swept on the next Store.
  void set_max_age_seconds(uint64_t seconds) { max_age_seconds_ = seconds; }
  uint64_t max_age_seconds() const { return max_age_seconds_; }

  /// Why the most recent Lookup rejected an entry (empty when the last
  /// lookup hit or found no entry). Carries the HQV code when the
  /// certificate checker did the rejecting.
  const std::string& last_reject_reason() const { return last_reject_; }

 private:
  explicit AutomatonCache(std::string dir) : dir_(std::move(dir)) {}

  /// Shared bodies of the input-keyed and scoped entry points: the key
  /// decides the file name, everything else — the validation ladder, the
  /// temp-file + rename publish — is identical.
  bool LookupAt(const std::string& key, const automata::Nha& input,
                automata::Determinized* out,
                automata::DeterminizeWitness* witness);
  void StoreAt(const std::string& key, const automata::Nha& input,
               const automata::Determinized& out,
               const automata::DeterminizeWitness& witness);

  /// Moves a bad entry to corrupt/ (unique name), writes a sidecar
  /// `.reason` file with `reason`, and counts the quarantine.
  void Quarantine(const std::string& entry_path, const std::string& reason);

  /// Eviction sweep run after every successful Store: removes entries
  /// past `max_age_seconds_`, then oldest-first until the directory fits
  /// in `max_bytes_`. Never touches `just_written`.
  void SweepAfterStore(const std::string& just_written);

  std::string dir_;
  hedge::Vocabulary* vocab_ = nullptr;
  CheckMode check_mode_ = CheckMode::kLight;
  uint64_t max_bytes_ = 0;
  uint64_t max_age_seconds_ = 0;
  CacheStats stats_;
  std::string last_reject_;
  // Distinguishes temp files of instances sharing one process.
  static std::atomic<uint64_t> temp_counter_;
};

}  // namespace hedgeq::cache

#endif  // HEDGEQ_CACHE_CACHE_H_
