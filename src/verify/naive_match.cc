#include "verify/naive_match.h"

#include <span>
#include <vector>

namespace hedgeq::verify {

namespace {

using hedge::Hedge;
using hedge::Label;
using hedge::LabelKind;
using hedge::NodeId;
using hre::HreKind;
using hre::HreNode;

class Matcher {
 public:
  Matcher(const Hedge& doc, size_t max_steps)
      : doc_(doc), max_steps_(max_steps) {}

  bool overflowed() const { return overflowed_; }

  // Environments are indices into an append-only binding arena (-1 = empty):
  // a plain stack would not work, because MatchSubst resumes matching under
  // a *prefix* of the environment while the bindings pushed after that
  // prefix are still live in the enclosing call.
  struct Binding {
    hedge::SubstId z;
    const HreNode* expr;
    int32_t parent;
    bool mandatory;  // @z embedding (must substitute) vs ^z closure (may)
  };

  int32_t Push(hedge::SubstId z, const HreNode* expr, int32_t parent,
               bool mandatory) {
    bindings_.push_back(Binding{z, expr, parent, mandatory});
    return static_cast<int32_t>(bindings_.size()) - 1;
  }

  bool Match(std::span<const NodeId> trees, const HreNode* e, int32_t env) {
    if (++steps_ > max_steps_) {
      overflowed_ = true;
      return false;
    }
    switch (e->kind()) {
      case HreKind::kEmptySet:
        return false;
      case HreKind::kEpsilon:
        return trees.empty();
      case HreKind::kVariable:
        return trees.size() == 1 &&
               doc_.label(trees[0]) == Label::Variable(e->id());
      case HreKind::kTree: {
        if (trees.size() != 1 ||
            !(doc_.label(trees[0]) == Label::Symbol(e->id()))) {
          return false;
        }
        std::vector<NodeId> kids = doc_.ChildrenOf(trees[0]);
        return Match(kids, e->left().get(), env);
      }
      case HreKind::kSubstLeaf: {
        if (trees.size() != 1 ||
            !(doc_.label(trees[0]) == Label::Symbol(e->id()))) {
          return false;
        }
        std::vector<NodeId> kids = doc_.ChildrenOf(trees[0]);
        return MatchSubst(kids, e->subst(), env);
      }
      case HreKind::kConcat: {
        for (size_t i = 0; i <= trees.size(); ++i) {
          if (Match(trees.subspan(0, i), e->left().get(), env) &&
              Match(trees.subspan(i), e->right().get(), env)) {
            return true;
          }
          if (overflowed_) return false;
        }
        return false;
      }
      case HreKind::kUnion:
        return Match(trees, e->left().get(), env) ||
               Match(trees, e->right().get(), env);
      case HreKind::kStar: {
        if (trees.empty()) return true;
        // Nonempty first iteration, so the suffix strictly shrinks.
        for (size_t i = 1; i <= trees.size(); ++i) {
          if (Match(trees.subspan(0, i), e->left().get(), env) &&
              Match(trees.subspan(i), e, env)) {
            return true;
          }
          if (overflowed_) return false;
        }
        return false;
      }
      case HreKind::kEmbed:
        // L(e1) o_z L(e2): match e2, with every z-leaf obliged to expand
        // to e1 under the environment captured here (binding time).
        return Match(trees, e->right().get(),
                     Push(e->subst(), e->left().get(), env, true));
      case HreKind::kVClose:
        // e^z: match e once; z-leaves may re-expand the closure or defer
        // to the outer environment.
        return Match(trees, e->left().get(),
                     Push(e->subst(), e, env, false));
    }
    return false;
  }

  // The content of an a<%z> leaf: what may stand in for z under `env`.
  bool MatchSubst(std::span<const NodeId> trees, hedge::SubstId z,
                  int32_t env) {
    if (++steps_ > max_steps_) {
      overflowed_ = true;
      return false;
    }
    int32_t b = env;
    while (b >= 0 && bindings_[b].z != z) b = bindings_[b].parent;
    if (b < 0) {
      // Unbound: the leaf stays literal.
      return trees.size() == 1 && doc_.label(trees[0]) == Label::Subst(z);
    }
    const Binding bound = bindings_[b];
    if (bound.mandatory) {
      return Match(trees, bound.expr, bound.parent);
    }
    // Vertical closure: expand once more (the stored expression is the
    // ^z node itself, which re-binds), or keep the leaf / defer outward.
    return Match(trees, bound.expr, bound.parent) ||
           MatchSubst(trees, z, bound.parent);
  }

 private:
  const Hedge& doc_;
  const size_t max_steps_;
  std::vector<Binding> bindings_;
  size_t steps_ = 0;
  bool overflowed_ = false;
};

}  // namespace

std::optional<bool> NaiveHreMatch(const hre::Hre& e, const hedge::Hedge& h,
                                  const NaiveMatchOptions& options) {
  Matcher matcher(h, options.max_steps);
  bool verdict = matcher.Match(h.roots(), e.get(), -1);
  if (matcher.overflowed()) return std::nullopt;
  return verdict;
}

}  // namespace hedgeq::verify
