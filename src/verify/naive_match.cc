#include "verify/naive_match.h"

#include <span>
#include <vector>

#include "hedge/pointed.h"
#include "phr/phr.h"
#include "strre/ops.h"
#include "util/bitset.h"

namespace hedgeq::verify {

namespace {

using hedge::Hedge;
using hedge::Label;
using hedge::LabelKind;
using hedge::NodeId;
using hre::HreKind;
using hre::HreNode;

class Matcher {
 public:
  Matcher(const Hedge& doc, size_t max_steps)
      : doc_(doc), max_steps_(max_steps) {}

  bool overflowed() const { return overflowed_; }

  // Environments are indices into an append-only binding arena (-1 = empty):
  // a plain stack would not work, because MatchSubst resumes matching under
  // a *prefix* of the environment while the bindings pushed after that
  // prefix are still live in the enclosing call.
  struct Binding {
    hedge::SubstId z;
    const HreNode* expr;
    int32_t parent;
    bool mandatory;  // @z embedding (must substitute) vs ^z closure (may)
  };

  int32_t Push(hedge::SubstId z, const HreNode* expr, int32_t parent,
               bool mandatory) {
    bindings_.push_back(Binding{z, expr, parent, mandatory});
    return static_cast<int32_t>(bindings_.size()) - 1;
  }

  bool Match(std::span<const NodeId> trees, const HreNode* e, int32_t env) {
    if (++steps_ > max_steps_) {
      overflowed_ = true;
      return false;
    }
    switch (e->kind()) {
      case HreKind::kEmptySet:
        return false;
      case HreKind::kEpsilon:
        return trees.empty();
      case HreKind::kVariable:
        return trees.size() == 1 &&
               doc_.label(trees[0]) == Label::Variable(e->id());
      case HreKind::kTree: {
        if (trees.size() != 1 ||
            !(doc_.label(trees[0]) == Label::Symbol(e->id()))) {
          return false;
        }
        std::vector<NodeId> kids = doc_.ChildrenOf(trees[0]);
        return Match(kids, e->left().get(), env);
      }
      case HreKind::kSubstLeaf: {
        if (trees.size() != 1 ||
            !(doc_.label(trees[0]) == Label::Symbol(e->id()))) {
          return false;
        }
        std::vector<NodeId> kids = doc_.ChildrenOf(trees[0]);
        return MatchSubst(kids, e->subst(), env);
      }
      case HreKind::kConcat: {
        for (size_t i = 0; i <= trees.size(); ++i) {
          if (Match(trees.subspan(0, i), e->left().get(), env) &&
              Match(trees.subspan(i), e->right().get(), env)) {
            return true;
          }
          if (overflowed_) return false;
        }
        return false;
      }
      case HreKind::kUnion:
        return Match(trees, e->left().get(), env) ||
               Match(trees, e->right().get(), env);
      case HreKind::kStar: {
        if (trees.empty()) return true;
        // Nonempty first iteration, so the suffix strictly shrinks.
        for (size_t i = 1; i <= trees.size(); ++i) {
          if (Match(trees.subspan(0, i), e->left().get(), env) &&
              Match(trees.subspan(i), e, env)) {
            return true;
          }
          if (overflowed_) return false;
        }
        return false;
      }
      case HreKind::kEmbed:
        // L(e1) o_z L(e2): match e2, with every z-leaf obliged to expand
        // to e1 under the environment captured here (binding time).
        return Match(trees, e->right().get(),
                     Push(e->subst(), e->left().get(), env, true));
      case HreKind::kVClose:
        // e^z: match e once; z-leaves may re-expand the closure or defer
        // to the outer environment.
        return Match(trees, e->left().get(),
                     Push(e->subst(), e, env, false));
    }
    return false;
  }

  // The content of an a<%z> leaf: what may stand in for z under `env`.
  bool MatchSubst(std::span<const NodeId> trees, hedge::SubstId z,
                  int32_t env) {
    if (++steps_ > max_steps_) {
      overflowed_ = true;
      return false;
    }
    int32_t b = env;
    while (b >= 0 && bindings_[b].z != z) b = bindings_[b].parent;
    if (b < 0) {
      // Unbound: the leaf stays literal.
      return trees.size() == 1 && doc_.label(trees[0]) == Label::Subst(z);
    }
    const Binding bound = bindings_[b];
    if (bound.mandatory) {
      return Match(trees, bound.expr, bound.parent);
    }
    // Vertical closure: expand once more (the stored expression is the
    // ^z node itself, which re-binds), or keep the leaf / defer outward.
    return Match(trees, bound.expr, bound.parent) ||
           MatchSubst(trees, z, bound.parent);
  }

 private:
  const Hedge& doc_;
  const size_t max_steps_;
  std::vector<Binding> bindings_;
  size_t steps_ = 0;
  bool overflowed_ = false;
};

}  // namespace

std::optional<bool> NaiveHreMatch(const hre::Hre& e, const hedge::Hedge& h,
                                  const NaiveMatchOptions& options) {
  Matcher matcher(h, options.max_steps);
  bool verdict = matcher.Match(h.roots(), e.get(), -1);
  if (matcher.overflowed()) return std::nullopt;
  return verdict;
}

namespace {

// Marked-set simulation of a Thompson NFA over letter *choices*: position i
// of the word may read any letter in choices[i]. Local re-implementation so
// the selection oracle does not lean on strre::AcceptsChoices.
bool RegexAcceptsChoices(const strre::Nfa& nfa,
                         const std::vector<std::vector<strre::Symbol>>&
                             choices) {
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return false;
  auto close = [&](Bitset& set) {
    std::vector<uint32_t> queue = set.ToVector();
    while (!queue.empty()) {
      uint32_t s = queue.back();
      queue.pop_back();
      for (strre::StateId t : nfa.EpsilonsFrom(s)) {
        if (!set.Test(t)) {
          set.Set(t);
          queue.push_back(t);
        }
      }
    }
  };
  Bitset cur(nfa.num_states());
  cur.Set(nfa.start());
  close(cur);
  for (const std::vector<strre::Symbol>& letters : choices) {
    Bitset next(nfa.num_states());
    for (uint32_t s : cur.ToVector()) {
      for (const strre::Nfa::Transition& t : nfa.TransitionsFrom(s)) {
        for (strre::Symbol a : letters) {
          if (t.symbol == a) {
            next.Set(t.to);
            break;
          }
        }
      }
    }
    close(next);
    cur = std::move(next);
  }
  for (uint32_t s : cur.ToVector()) {
    if (nfa.IsAccepting(s)) return true;
  }
  return false;
}

}  // namespace

std::optional<std::vector<bool>> NaiveSelectionLocate(
    const query::SelectionQuery& query, const hedge::Hedge& doc,
    const NaiveMatchOptions& options) {
  const strre::Nfa regex_nfa = strre::CompileRegex(query.envelope.regex());
  const std::vector<phr::PointedBaseRep>& triplets =
      query.envelope.triplets();
  std::vector<bool> located(doc.num_nodes(), false);
  for (hedge::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind != hedge::LabelKind::kSymbol) continue;
    if (query.subhedge != nullptr) {
      std::optional<bool> sub =
          NaiveHreMatch(query.subhedge, doc.SubhedgeOf(n), options);
      if (!sub.has_value()) return std::nullopt;
      if (!*sub) continue;
    }
    const Hedge env = doc.EnvelopeOf(n);
    std::optional<hedge::NodeId> eta = hedge::FindEta(env);
    if (!eta.has_value()) continue;
    if (env.parent(*eta) == hedge::kNullNode) {
      // Bare eta: only the empty base word reads it.
      located[n] = env.num_nodes() == 1 && RegexAcceptsChoices(regex_nfa, {});
      continue;
    }
    const std::vector<hedge::PointedBase> bases = hedge::Decompose(env);
    std::vector<std::vector<strre::Symbol>> choices(bases.size());
    bool dead = false;
    for (size_t i = 0; i < bases.size() && !dead; ++i) {
      for (size_t t = 0; t < triplets.size(); ++t) {
        const phr::PointedBaseRep& rep = triplets[t];
        if (rep.label != bases[i].label) continue;
        if (rep.elder != nullptr) {
          std::optional<bool> m =
              NaiveHreMatch(rep.elder, bases[i].elder, options);
          if (!m.has_value()) return std::nullopt;
          if (!*m) continue;
        }
        if (rep.younger != nullptr) {
          std::optional<bool> m =
              NaiveHreMatch(rep.younger, bases[i].younger, options);
          if (!m.has_value()) return std::nullopt;
          if (!*m) continue;
        }
        choices[i].push_back(static_cast<strre::Symbol>(t));
      }
      dead = choices[i].empty();
    }
    located[n] = !dead && RegexAcceptsChoices(regex_nfa, choices);
  }
  return located;
}

}  // namespace hedgeq::verify
