#include "verify/enumerate.h"

namespace hedgeq::verify {

namespace {

using hedge::Hedge;
using hedge::Label;
using hedge::NodeId;

struct TreeSpec {
  Label label;
  std::vector<TreeSpec> kids;
};

size_t NumLeafLabels(const EnumVocab& v) {
  return v.symbols.size() + v.variables.size() + v.substs.size();
}

// T(t) and H(n) tables up to `size` (node counts are tiny, so plain
// uint64 arithmetic is fine).
void CountTables(const EnumVocab& v, size_t size, std::vector<uint64_t>& t,
                 std::vector<uint64_t>& h) {
  t.assign(size + 1, 0);
  h.assign(size + 1, 0);
  h[0] = 1;
  for (size_t n = 1; n <= size; ++n) {
    t[n] = n == 1 ? NumLeafLabels(v) : v.symbols.size() * h[n - 1];
    for (size_t k = 1; k <= n; ++k) h[n] += t[k] * h[n - k];
  }
}

void AppendSpec(Hedge& out, NodeId parent, const TreeSpec& spec) {
  NodeId id = out.Append(parent, spec.label);
  for (const TreeSpec& kid : spec.kids) AppendSpec(out, id, kid);
}

// fn returns false to stop enumeration; Emit* propagate that upward.
bool EmitTrees(const EnumVocab& v, size_t size,
               const std::function<bool(const TreeSpec&)>& fn);

bool EmitHedges(const EnumVocab& v, size_t size, std::vector<TreeSpec>& acc,
                const std::function<bool(const std::vector<TreeSpec>&)>& fn) {
  if (size == 0) return fn(acc);
  for (size_t t = 1; t <= size; ++t) {
    bool keep_going = EmitTrees(v, t, [&](const TreeSpec& tree) {
      acc.push_back(tree);
      bool cont = EmitHedges(v, size - t, acc, fn);
      acc.pop_back();
      return cont;
    });
    if (!keep_going) return false;
  }
  return true;
}

bool EmitTrees(const EnumVocab& v, size_t size,
               const std::function<bool(const TreeSpec&)>& fn) {
  if (size == 1) {
    for (hedge::SymbolId a : v.symbols) {
      if (!fn(TreeSpec{Label::Symbol(a), {}})) return false;
    }
    for (hedge::VarId x : v.variables) {
      if (!fn(TreeSpec{Label::Variable(x), {}})) return false;
    }
    for (hedge::SubstId z : v.substs) {
      if (!fn(TreeSpec{Label::Subst(z), {}})) return false;
    }
    return true;
  }
  std::vector<TreeSpec> acc;
  return EmitHedges(v, size - 1, acc,
                    [&](const std::vector<TreeSpec>& kids) {
                      for (hedge::SymbolId a : v.symbols) {
                        if (!fn(TreeSpec{Label::Symbol(a), kids})) {
                          return false;
                        }
                      }
                      return true;
                    });
}

void SampleHedgeInto(const EnumVocab& v, size_t size, SplitMix64& rng,
                     const std::vector<uint64_t>& t,
                     const std::vector<uint64_t>& h, Hedge& out,
                     NodeId parent);

void SampleTreeInto(const EnumVocab& v, size_t size, SplitMix64& rng,
                    const std::vector<uint64_t>& t,
                    const std::vector<uint64_t>& h, Hedge& out,
                    NodeId parent) {
  if (size == 1) {
    uint64_t pick = rng.Below(NumLeafLabels(v));
    if (pick < v.symbols.size()) {
      out.Append(parent, Label::Symbol(v.symbols[pick]));
      return;
    }
    pick -= v.symbols.size();
    if (pick < v.variables.size()) {
      out.Append(parent, Label::Variable(v.variables[pick]));
      return;
    }
    pick -= v.variables.size();
    out.Append(parent, Label::Subst(v.substs[pick]));
    return;
  }
  uint64_t pick = rng.Below(v.symbols.size());
  NodeId id = out.Append(parent, Label::Symbol(v.symbols[pick]));
  SampleHedgeInto(v, size - 1, rng, t, h, out, id);
}

void SampleHedgeInto(const EnumVocab& v, size_t size, SplitMix64& rng,
                     const std::vector<uint64_t>& t,
                     const std::vector<uint64_t>& h, Hedge& out,
                     NodeId parent) {
  size_t remaining = size;
  while (remaining > 0) {
    // First-tree size k with probability T(k) * H(remaining - k) / H(remaining).
    uint64_t pick = rng.Below(h[remaining]);
    size_t k = remaining;
    for (size_t cand = 1; cand <= remaining; ++cand) {
      uint64_t weight = t[cand] * h[remaining - cand];
      if (pick < weight) {
        k = cand;
        break;
      }
      pick -= weight;
    }
    SampleTreeInto(v, k, rng, t, h, out, parent);
    remaining -= k;
  }
}

}  // namespace

uint64_t CountTrees(const EnumVocab& vocab, size_t size) {
  if (size == 0) return 0;
  std::vector<uint64_t> t, h;
  CountTables(vocab, size, t, h);
  return t[size];
}

uint64_t CountHedges(const EnumVocab& vocab, size_t size) {
  std::vector<uint64_t> t, h;
  CountTables(vocab, size, t, h);
  return h[size];
}

size_t EnumerateHedges(const EnumVocab& vocab, size_t size, size_t max_count,
                       const std::function<bool(const hedge::Hedge&)>& fn) {
  size_t emitted = 0;
  std::vector<TreeSpec> acc;
  EmitHedges(vocab, size, acc, [&](const std::vector<TreeSpec>& specs) {
    if (emitted >= max_count) return false;
    Hedge out;
    for (const TreeSpec& spec : specs) {
      AppendSpec(out, hedge::kNullNode, spec);
    }
    ++emitted;
    return fn(out);
  });
  return emitted;
}

hedge::Hedge SampleHedge(const EnumVocab& vocab, size_t size,
                         SplitMix64& rng) {
  Hedge out;
  std::vector<uint64_t> t, h;
  CountTables(vocab, size, t, h);
  if (h[size] == 0) return out;
  SampleHedgeInto(vocab, size, rng, t, h, out, hedge::kNullNode);
  return out;
}

}  // namespace hedgeq::verify
