#ifndef HEDGEQ_VERIFY_CERTIFICATE_H_
#define HEDGEQ_VERIFY_CERTIFICATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "automata/dha.h"
#include "automata/nha.h"
#include "hedge/hedge.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::verify {

/// Which transformation a certificate witnesses.
enum class CertificateKind {
  kDeterminize,  // Theorem 1 subset construction (automata/determinize.cc)
  kTrim,         // reach/co-reach pruning (automata::PruneNha)
};

/// A self-contained, serializable record of one automaton transformation:
/// the input, the output, and the witness data the construction recorded.
/// The independent checker (verify/checker.h) validates a certificate
/// without re-running — or trusting — the construction that produced it;
/// this is the translation-validation artifact of the pipeline.
struct Certificate {
  CertificateKind kind = CertificateKind::kDeterminize;
  automata::Nha input;

  // kDeterminize payload: the output DHA, its per-state NHA subsets, and
  // the horizontal/final witness sets.
  automata::Dha dha{1, 1, 0, 0};
  std::vector<Bitset> subsets;
  automata::DeterminizeWitness det;

  // kTrim payload: the pruned automaton plus the trim witness.
  automata::Nha trimmed;
  automata::TrimWitness trim;
};

/// Runs the budgeted Theorem 1 construction on `input` and packages the
/// result as a certificate. Fails only when the construction itself fails
/// (budget, or inline-certification rejection under HEDGEQ_CERTIFY).
Result<Certificate> BuildDeterminizeCertificate(const automata::Nha& input,
                                                BudgetScope& scope);

/// Runs PruneNha on `input` and packages the result as a certificate.
Certificate BuildTrimCertificate(const automata::Nha& input);

/// Line-oriented text form, deterministic byte-for-byte for a given
/// certificate and vocabulary (sections are length-prefixed in lines):
///
///   cert 1 <determinize|trim>
///   input <line-count>
///   <SerializeNha output>
///   ... kind-specific sections ...
///   end
std::string SerializeCertificate(const Certificate& cert,
                                 const hedge::Vocabulary& vocab);

/// Inverse of SerializeCertificate; new names are interned into `vocab`.
/// Malformed input (bad counts, out-of-range indices, truncated sections)
/// is rejected with kInvalidArgument — deserialization validates shape, the
/// checker validates meaning.
Result<Certificate> DeserializeCertificate(std::string_view text,
                                           hedge::Vocabulary& vocab);

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_CERTIFICATE_H_
