#ifndef HEDGEQ_VERIFY_CERTIFICATE_H_
#define HEDGEQ_VERIFY_CERTIFICATE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "automata/dha.h"
#include "automata/nha.h"
#include "hedge/hedge.h"
#include "hre/from_nha.h"
#include "query/selection.h"
#include "schema/algebra.h"
#include "schema/transform.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::verify {

/// Which transformation a certificate witnesses.
enum class CertificateKind {
  kDeterminize,  // Theorem 1 subset construction (automata/determinize.cc)
  kTrim,         // reach/co-reach pruning (automata::PruneNha)
  kMinimize,     // block partition of automata::MinimizeDha
  kContainment,  // schema containment verdict (schema::QueryContainment)
  kFromNha,      // Lemma 2 expression extraction (hre::NhaToHre)
  kAlgebra,      // schema Boolean algebra (schema::IntersectSchemas & co.)
};

/// A self-contained, serializable record of one automaton transformation:
/// the input, the output, and the witness data the construction recorded.
/// The independent checker (verify/checker.h) validates a certificate
/// without re-running — or trusting — the construction that produced it;
/// this is the translation-validation artifact of the pipeline.
struct Certificate {
  CertificateKind kind = CertificateKind::kDeterminize;
  automata::Nha input;

  // kDeterminize payload: the output DHA, its per-state NHA subsets, and
  // the horizontal/final witness sets.
  automata::Dha dha{1, 1, 0, 0};
  std::vector<Bitset> subsets;
  automata::DeterminizeWitness det;

  // kTrim payload: the pruned automaton plus the trim witness.
  automata::Nha trimmed;
  automata::TrimWitness trim;

  // kMinimize payload: the input and minimized DHAs plus the block
  // partition the refinement converged on (`input` is unused).
  automata::Dha min_input{1, 1, 0, 0};
  automata::Dha min_output{1, 1, 0, 0};
  automata::MinimizeWitness min;

  // kContainment payload: the schema's NHA travels in `input`; the queries
  // as source text (re-parsed against the vocabulary on load), the verdict
  // with its optional separating document, and the layered product with
  // both mark tables.
  std::string q1_text;
  std::string q2_text;
  std::optional<query::SelectionQuery> q1;
  std::optional<query::SelectionQuery> q2;
  schema::ContainmentResult containment{true, std::nullopt};
  schema::ContainmentWitness cont;

  // kFromNha payload: the source NHA travels in `input`; the emitted
  // expression plus the state-elimination recurrence witness.
  hre::Hre fn_output;
  hre::FromNhaWitness fn;

  // kAlgebra payload: operand `a` travels in `input`; operand `b`, the
  // result automaton, and the product/pairing witness.
  automata::Nha alg_b;
  automata::Nha alg_out;
  schema::AlgebraWitness alg;
};

/// Runs the budgeted Theorem 1 construction on `input` and packages the
/// result as a certificate. Fails only when the construction itself fails
/// (budget, or inline-certification rejection under HEDGEQ_CERTIFY).
Result<Certificate> BuildDeterminizeCertificate(const automata::Nha& input,
                                                BudgetScope& scope);

/// Runs PruneNha on `input` and packages the result as a certificate.
Certificate BuildTrimCertificate(const automata::Nha& input);

/// Runs MinimizeDha on `input` and packages the quotient plus the block
/// partition as a certificate (minimization itself cannot fail).
Certificate BuildMinimizeCertificate(const automata::Dha& input);

/// Parses both query texts, runs the witnessed QueryContainment decision
/// under `schema`, and packages the verdict, the layered product and the
/// mark tables (plus the counterexample document on non-containment).
Result<Certificate> BuildContainmentCertificate(const schema::Schema& schema,
                                                std::string_view q1_text,
                                                std::string_view q2_text,
                                                hedge::Vocabulary& vocab,
                                                const ExecBudget& options = {});

/// Runs the witnessed Lemma 2 extraction on `input` (fresh "_zq<i>"
/// substitution symbols are interned into `vocab`) and packages the emitted
/// expression plus the recurrence witness. Fails when the construction
/// fails (substitution-state input, split cap, inline rejection).
Result<Certificate> BuildFromNhaCertificate(const automata::Nha& input,
                                            hedge::Vocabulary& vocab);

/// Runs the witnessed schema-algebra operation `op` on `a` and `b` and
/// packages operands, output and witness. Only kDifference can fail (its
/// embedded complement determinizes under `budget`).
Result<Certificate> BuildAlgebraCertificate(const schema::Schema& a,
                                            const schema::Schema& b,
                                            schema::AlgebraOp op,
                                            const ExecBudget& budget = {});

/// Line-oriented text form, deterministic byte-for-byte for a given
/// certificate and vocabulary (sections are length-prefixed in lines):
///
///   cert 1 <determinize|trim|minimize|containment|fromnha|algebra>
///   input <line-count>
///   <SerializeNha output>
///   ... kind-specific sections ...
///   end
///
/// (minimize certificates carry two embedded DHAs instead of the input
/// NHA; containment certificates embed the schema NHA as `input`, the two
/// query texts, the product NHA, the mark tables, and — when separated —
/// the counterexample document with its located node; fromnha certificates
/// embed the emitted expression, the split table and the recurrence
/// entries; algebra certificates embed the second operand, the output and
/// the product/offset/complement witness; determinize certificates end
/// with an optional `digestchain` section — deliberately last, so
/// tamper-detection tests can target it by offset.)
std::string SerializeCertificate(const Certificate& cert,
                                 const hedge::Vocabulary& vocab);

/// Inverse of SerializeCertificate; new names are interned into `vocab`.
/// Malformed input (bad counts, out-of-range indices, truncated sections)
/// is rejected with kInvalidArgument — deserialization validates shape, the
/// checker validates meaning.
Result<Certificate> DeserializeCertificate(std::string_view text,
                                           hedge::Vocabulary& vocab);

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_CERTIFICATE_H_
