#include "verify/checker.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <unordered_set>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "strre/ops.h"
#include "util/digest.h"
#include "util/strings.h"
#include "verify/enumerate.h"
#include "verify/naive_match.h"

namespace hedgeq::verify {

using automata::Dha;
using automata::HState;
using automata::HhState;
using automata::Nha;
using lint::Diagnostic;
using lint::DiagnosticCode;
using lint::Severity;
using strre::Nfa;

namespace {

constexpr size_t kMaxFindings = 64;

void Report(std::vector<Diagnostic>& out, DiagnosticCode code,
            std::string span, std::string message) {
  if (out.size() >= kMaxFindings) return;
  Diagnostic d;
  d.severity = Severity::kError;
  d.code = code;
  d.span = std::move(span);
  d.message = std::move(message);
  out.push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Independent recomputation primitives. These deliberately re-derive what
// automata/content_union.cc and the constructions compute, from the input
// NHA alone: the combined content-NFA layout is pure arithmetic (rule
// contents concatenated in rule order), and closures/steps are re-coded
// here rather than calling the construction helpers.

struct ContentIndex {
  std::vector<size_t> offset;  // offset[r]: first combined state of rule r
  size_t total = 0;            // total combined states
};

ContentIndex IndexContents(const Nha& nha) {
  ContentIndex ci;
  ci.offset.reserve(nha.rules().size());
  for (const Nha::Rule& rule : nha.rules()) {
    ci.offset.push_back(ci.total);
    ci.total += rule.content.num_states();
  }
  return ci;
}

// Rule index owning combined state `cs` (cs must be < ci.total).
size_t RuleOf(const ContentIndex& ci, uint32_t cs) {
  size_t lo = 0, hi = ci.offset.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (ci.offset[mid] <= cs) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Memoized per-state epsilon closures over the combined content space —
// the checker-side analogue of the determinizer's interned-Bitset pool.
// Closing a set ORs per-state closures computed once on demand, so the
// dense (h, letter) loops of CheckDeterminize and the audit replay stop
// re-walking the same epsilon edges for every pair. One pool per check:
// it borrows the input NHA and index, never the construction's own state.
class CombinedClosurePool {
 public:
  CombinedClosurePool(const Nha& nha, const ContentIndex& ci)
      : nha_(nha), ci_(ci), closure_(ci.total) {}

  /// Replaces `set` with its epsilon closure.
  void Close(Bitset& set) {
    Bitset out(ci_.total);
    for (uint32_t cs : set.ToVector()) out |= ClosureOf(cs);
    set = std::move(out);
  }

  /// One horizontal step over the combined content model: the (closed)
  /// set reached from `h` by reading any NHA state in `letter`.
  Bitset Step(const Bitset& h, const Bitset& letter) {
    Bitset next(ci_.total);
    for (uint32_t cs : h.ToVector()) {
      size_t r = RuleOf(ci_, cs);
      const Nfa& content = nha_.rules()[r].content;
      uint32_t local = cs - static_cast<uint32_t>(ci_.offset[r]);
      for (const Nfa::Transition& t : content.TransitionsFrom(local)) {
        if (t.symbol < letter.size() && letter.Test(t.symbol)) {
          next.Set(static_cast<uint32_t>(ci_.offset[r]) + t.to);
        }
      }
    }
    Close(next);
    return next;
  }

  /// Per-symbol closed target unions out of `h`: for every NHA state q
  /// labelling a transition from some member of `h`, the epsilon-closed
  /// union of those transitions' targets. Closure distributes over union,
  /// so Step(h, letter) equals the union of the rows of the letter's
  /// members — each row pre-closed once per h — which turns the dense
  /// (h, letter) matrix walk of CheckDeterminize into word-wide ORs
  /// instead of a transition re-walk per letter.
  std::unordered_map<uint32_t, Bitset> TargetsBySymbol(const Bitset& h) {
    std::unordered_map<uint32_t, Bitset> out;
    for (uint32_t cs : h.ToVector()) {
      size_t r = RuleOf(ci_, cs);
      const Nfa& content = nha_.rules()[r].content;
      uint32_t local = cs - static_cast<uint32_t>(ci_.offset[r]);
      for (const Nfa::Transition& t : content.TransitionsFrom(local)) {
        auto [it, fresh] = out.try_emplace(t.symbol, Bitset(ci_.total));
        it->second.Set(static_cast<uint32_t>(ci_.offset[r]) + t.to);
      }
    }
    // Close each row once at the end: distinct transitions often share a
    // target, so closing the deduplicated row beats OR-ing a closure per
    // transition.
    for (auto& [symbol, row] : out) Close(row);
    return out;
  }

 private:
  const Bitset& ClosureOf(uint32_t cs) {
    Bitset& c = closure_[cs];
    if (c.size() == ci_.total) return c;  // default-constructed = unfilled
    c = Bitset(ci_.total);
    c.Set(cs);
    std::deque<uint32_t> queue{cs};
    while (!queue.empty()) {
      uint32_t s = queue.front();
      queue.pop_front();
      size_t r = RuleOf(ci_, s);
      const Nfa& content = nha_.rules()[r].content;
      uint32_t local = s - static_cast<uint32_t>(ci_.offset[r]);
      for (strre::StateId t : content.EpsilonsFrom(local)) {
        uint32_t to = static_cast<uint32_t>(ci_.offset[r]) + t;
        if (!c.Test(to)) {
          c.Set(to);
          queue.push_back(to);
        }
      }
    }
    return c;
  }

  const Nha& nha_;
  const ContentIndex& ci_;
  std::vector<Bitset> closure_;  // per combined state, filled lazily
};

// Epsilon closure within a single NFA.
void CloseNfa(const Nfa& nfa, Bitset& set) {
  std::deque<uint32_t> queue;
  for (uint32_t s : set.ToVector()) queue.push_back(s);
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    for (strre::StateId t : nfa.EpsilonsFrom(s)) {
      if (!set.Test(t)) {
        set.Set(t);
        queue.push_back(t);
      }
    }
  }
}

// Per-symbol target sets of the rules accepting somewhere in `h`.
std::map<hedge::SymbolId, Bitset> AcceptTargets(const Nha& nha,
                                                const ContentIndex& ci,
                                                const Bitset& h) {
  std::map<hedge::SymbolId, Bitset> out;
  for (uint32_t cs : h.ToVector()) {
    size_t r = RuleOf(ci, cs);
    const Nha::Rule& rule = nha.rules()[r];
    uint32_t local = cs - static_cast<uint32_t>(ci.offset[r]);
    if (rule.content.IsAccepting(local)) {
      auto [it, inserted] =
          out.try_emplace(rule.symbol, Bitset(nha.num_states()));
      it->second.Set(rule.target);
    }
  }
  return out;
}

// Does `nfa` accept some word using only letters in `allowed`?
bool AcceptsOverAlphabet(const Nfa& nfa, const Bitset& allowed) {
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return false;
  Bitset seen(nfa.num_states());
  std::deque<strre::StateId> queue;
  seen.Set(nfa.start());
  queue.push_back(nfa.start());
  while (!queue.empty()) {
    strre::StateId s = queue.front();
    queue.pop_front();
    if (nfa.IsAccepting(s)) return true;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.symbol < allowed.size() && allowed.Test(t.symbol) &&
          !seen.Test(t.to)) {
        seen.Set(t.to);
        queue.push_back(t.to);
      }
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) {
      if (!seen.Test(t)) {
        seen.Set(t);
        queue.push_back(t);
      }
    }
  }
  return false;
}

// Letters (restricted to `allowed`) occurring on some accepting path of
// `nfa` whose every letter is in `allowed`.
Bitset LettersOnAcceptingPaths(const Nfa& nfa, const Bitset& allowed,
                               size_t num_letters) {
  Bitset usable(num_letters);
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return usable;
  auto ok = [&](strre::Symbol p) {
    return p < allowed.size() && allowed.Test(p);
  };
  Bitset fwd(nfa.num_states());
  std::deque<strre::StateId> queue;
  fwd.Set(nfa.start());
  queue.push_back(nfa.start());
  while (!queue.empty()) {
    strre::StateId s = queue.front();
    queue.pop_front();
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (ok(t.symbol) && !fwd.Test(t.to)) {
        fwd.Set(t.to);
        queue.push_back(t.to);
      }
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) {
      if (!fwd.Test(t)) {
        fwd.Set(t);
        queue.push_back(t);
      }
    }
  }
  std::vector<std::vector<strre::StateId>> rev(nfa.num_states());
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (ok(t.symbol)) rev[t.to].push_back(s);
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) rev[t].push_back(s);
  }
  Bitset bwd(nfa.num_states());
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsAccepting(s)) {
      bwd.Set(s);
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    strre::StateId s = queue.front();
    queue.pop_front();
    for (strre::StateId t : rev[s]) {
      if (!bwd.Test(t)) {
        bwd.Set(t);
        queue.push_back(t);
      }
    }
  }
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    if (!fwd.Test(s)) continue;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (ok(t.symbol) && bwd.Test(t.to) && t.symbol < num_letters) {
        usable.Set(t.symbol);
      }
    }
  }
  return usable;
}

// Structural NFA equality: same states, start, acceptance, transition
// multisets and epsilon sets.
bool NfaStructEq(const Nfa& a, const Nfa& b) {
  if (a.num_states() != b.num_states() || a.start() != b.start()) {
    return false;
  }
  for (strre::StateId s = 0; s < a.num_states(); ++s) {
    if (a.IsAccepting(s) != b.IsAccepting(s)) return false;
    std::vector<std::pair<strre::Symbol, strre::StateId>> ta, tb;
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      ta.emplace_back(t.symbol, t.to);
    }
    for (const Nfa::Transition& t : b.TransitionsFrom(s)) {
      tb.emplace_back(t.symbol, t.to);
    }
    std::sort(ta.begin(), ta.end());
    std::sort(tb.begin(), tb.end());
    if (ta != tb) return false;
    std::vector<strre::StateId> ea(a.EpsilonsFrom(s).begin(),
                                   a.EpsilonsFrom(s).end());
    std::vector<strre::StateId> eb(b.EpsilonsFrom(s).begin(),
                                   b.EpsilonsFrom(s).end());
    std::sort(ea.begin(), ea.end());
    std::sort(eb.begin(), eb.end());
    if (ea != eb) return false;
  }
  return true;
}

// Projection of an NFA over NHA-state letters through a state renaming
// (kNoState letters drop their transitions) — the checker's own version of
// the trim's content projection.
Nfa ProjectLetters(const Nfa& in, const std::vector<HState>& rename) {
  Nfa out;
  for (strre::StateId s = 0; s < in.num_states(); ++s) {
    out.AddState(in.IsAccepting(s));
  }
  if (in.start() != strre::kNoState) out.SetStart(in.start());
  for (strre::StateId s = 0; s < in.num_states(); ++s) {
    for (const Nfa::Transition& t : in.TransitionsFrom(s)) {
      if (t.symbol < rename.size() && rename[t.symbol] != strre::kNoState) {
        out.AddTransition(s, rename[t.symbol], t.to);
      }
    }
    for (strre::StateId t : in.EpsilonsFrom(s)) out.AddEpsilon(s, t);
  }
  return out;
}

// RAII observation of one checker invocation: a verify.check span plus the
// verify.* counters, reading the diagnostics vector at scope exit so every
// early `return out;` path is covered (the named return value outlives the
// guard under NRVO).
class CheckObserver {
 public:
  explicit CheckObserver(const std::vector<Diagnostic>& out)
      : span_(obs::spans::kVerifyCheck), out_(out) {}
  ~CheckObserver() {
    if (obs::Enabled()) {
      HEDGEQ_OBS_COUNT(obs::metrics::kVerifyChecksRun, 1);
      HEDGEQ_OBS_COUNT(obs::metrics::kVerifyFindings, out_.size());
      span_.AddArg("findings", out_.size());
    }
  }
  CheckObserver(const CheckObserver&) = delete;
  CheckObserver& operator=(const CheckObserver&) = delete;

 private:
  obs::Span span_;
  const std::vector<Diagnostic>& out_;
};

std::vector<uint32_t> SortedStates(const std::vector<HState>& states) {
  std::vector<uint32_t> out(states.begin(), states.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Shared sections of the full (CheckDeterminize) and light
// (CheckCertificateLight) determinize checkers. Each reports into `out`;
// DetShape returns false when the semantic sections cannot safely index
// through the certificate's arrays.

bool DetShape(const Nha& input, const automata::Determinized& output,
              const automata::DeterminizeWitness& witness,
              const ContentIndex& ci, std::vector<Diagnostic>& out) {
  const Dha& dha = output.dha;
  const std::vector<Bitset>& subsets = output.subsets;
  const size_t nq = input.num_states();
  if (subsets.empty() || subsets.size() != dha.num_states()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "subsets",
           StrCat("subset count ", subsets.size(), " != DHA states ",
                  dha.num_states()));
    return false;
  }
  if (witness.h_sets.empty() ||
      witness.h_sets.size() != dha.num_h_states()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "hsets",
           StrCat("horizontal witness count ", witness.h_sets.size(),
                  " != DHA horizontal states ", dha.num_h_states()));
    return false;
  }
  if (dha.h_start() >= witness.h_sets.size()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "hstart",
           "horizontal start out of range");
    return false;
  }
  for (size_t i = 0; i < subsets.size(); ++i) {
    if (subsets[i].size() != nq) {
      Report(out, DiagnosticCode::kCertificateMalformed,
             StrCat("subset/", i),
             StrCat("subset width ", subsets[i].size(), " != NHA states ",
                    nq));
      return false;
    }
  }
  for (size_t i = 0; i < witness.h_sets.size(); ++i) {
    if (witness.h_sets[i].size() != ci.total) {
      Report(out, DiagnosticCode::kCertificateMalformed, StrCat("hset/", i),
             StrCat("horizontal set width ", witness.h_sets[i].size(),
                    " != combined content states ", ci.total));
      return false;
    }
  }
  if (!subsets[dha.sink()].None()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "sink",
           "sink state does not denote the empty subset");
  }
  {
    std::unordered_set<Bitset, BitsetHash> seen;
    for (size_t i = 0; i < subsets.size(); ++i) {
      if (!seen.insert(subsets[i]).second) {
        Report(out, DiagnosticCode::kCertificateMalformed,
               StrCat("subset/", i), "duplicate DHA state subset");
      }
    }
    seen.clear();
    for (size_t i = 0; i < witness.h_sets.size(); ++i) {
      if (!seen.insert(witness.h_sets[i]).second) {
        Report(out, DiagnosticCode::kCertificateMalformed,
               StrCat("hset/", i), "duplicate horizontal witness set");
      }
    }
  }
  return true;
}

void DetHStart(const Nha& input, const Dha& dha,
               const automata::DeterminizeWitness& witness,
               const ContentIndex& ci, CombinedClosurePool& pool,
               std::vector<Diagnostic>& out) {
  Bitset h0(ci.total);
  for (size_t r = 0; r < input.rules().size(); ++r) {
    const Nfa& content = input.rules()[r].content;
    if (content.num_states() > 0 && content.start() != strre::kNoState) {
      h0.Set(static_cast<uint32_t>(ci.offset[r]) + content.start());
    }
  }
  pool.Close(h0);
  if (!(witness.h_sets[dha.h_start()] == h0)) {
    Report(out, DiagnosticCode::kSubsetTransitionIncoherent, "hstart",
           "horizontal start set is not the closure of the content start "
           "states");
  }
}

void DetIota(const Nha& input, const Dha& dha,
             const std::vector<Bitset>& subsets,
             std::vector<Diagnostic>& out) {
  const size_t nq = input.num_states();
  for (const auto& [x, states] : input.var_map()) {
    Bitset expect(nq);
    for (HState q : states) expect.Set(q);
    HState sid = dha.VariableState(x);
    if (sid >= subsets.size() || !(subsets[sid] == expect)) {
      Report(out, DiagnosticCode::kAssignmentIncoherent, StrCat("var/", x),
             "variable state does not denote iota(x)");
    }
  }
  for (const auto& [x, sid] : dha.var_map()) {
    if (!input.var_map().contains(x)) {
      Report(out, DiagnosticCode::kAssignmentIncoherent, StrCat("var/", x),
             "DHA knows a variable the input does not");
    }
  }
  for (const auto& [z, states] : input.subst_map()) {
    Bitset expect(nq);
    for (HState q : states) expect.Set(q);
    HState sid = dha.SubstState(z);
    if (sid >= subsets.size() || !(subsets[sid] == expect)) {
      Report(out, DiagnosticCode::kAssignmentIncoherent, StrCat("subst/", z),
             "substitution state does not denote iota(z)");
    }
  }
  for (const auto& [z, sid] : dha.subst_map()) {
    if (!input.subst_map().contains(z)) {
      Report(out, DiagnosticCode::kAssignmentIncoherent, StrCat("subst/", z),
             "DHA knows a substitution symbol the input does not");
    }
  }
}

void DetFinal(const Nha& input, const Dha& dha,
              const std::vector<Bitset>& subsets,
              const std::vector<std::vector<uint32_t>>& subset_bits,
              const automata::DeterminizeWitness& witness,
              std::vector<Diagnostic>& out) {
  const Nfa& fl = input.final_nfa();
  const strre::Dfa& fdfa = dha.final_dfa();
  if (witness.final_sets.size() != fdfa.num_states()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "finalsets",
           StrCat("final witness count ", witness.final_sets.size(),
                  " != final DFA states ", fdfa.num_states()));
    return;
  }
  if (fl.num_states() == 0 || fl.start() == strre::kNoState) {
    // Empty final language: one dead total state.
    if (fdfa.num_states() != 1 || fdfa.IsAccepting(0)) {
      Report(out, DiagnosticCode::kFinalSetInconsistent, "final",
             "empty final language must lift to one non-accepting state");
    } else {
      for (HState sid = 0; sid < subsets.size(); ++sid) {
        if (fdfa.Next(0, sid) != 0) {
          Report(out, DiagnosticCode::kFinalSetInconsistent, "final",
                 "dead final state must loop on every letter");
          break;
        }
      }
    }
    return;
  }
  for (size_t i = 0; i < witness.final_sets.size(); ++i) {
    if (witness.final_sets[i].size() != fl.num_states()) {
      Report(out, DiagnosticCode::kCertificateMalformed,
             StrCat("finalset/", i), "final witness set width mismatch");
      return;
    }
  }
  if (fdfa.start() == strre::kNoState ||
      fdfa.start() >= witness.final_sets.size()) {
    Report(out, DiagnosticCode::kFinalSetInconsistent, "final",
           "lifted final DFA has no start state");
    return;
  }
  {
    Bitset start(fl.num_states());
    start.Set(fl.start());
    CloseNfa(fl, start);
    if (!(witness.final_sets[fdfa.start()] == start)) {
      Report(out, DiagnosticCode::kFinalSetInconsistent, "final/start",
             "final DFA start does not denote the closed final-NFA start");
    }
  }
  // Per-state epsilon closures of the final NFA, filled on demand: the
  // same distribute-closure-over-union rewrite as the horizontal matrix,
  // so each final DFA state walks its NFA transitions once, not once per
  // subset letter.
  std::vector<Bitset> fl_closure(fl.num_states());
  auto fl_closure_of = [&](uint32_t s) -> const Bitset& {
    Bitset& c = fl_closure[s];
    if (c.size() != fl.num_states()) {
      c = Bitset(fl.num_states());
      c.Set(s);
      CloseNfa(fl, c);
    }
    return c;
  };
  for (strre::StateId f = 0; f < fdfa.num_states(); ++f) {
    bool want_accepting = false;
    std::unordered_map<uint32_t, Bitset> frows;
    for (uint32_t s : witness.final_sets[f].ToVector()) {
      if (fl.IsAccepting(s)) want_accepting = true;
      for (const Nfa::Transition& t : fl.TransitionsFrom(s)) {
        auto [it, fresh] = frows.try_emplace(t.symbol, fl.num_states());
        it->second |= fl_closure_of(t.to);
      }
    }
    if (want_accepting != fdfa.IsAccepting(f)) {
      Report(out, DiagnosticCode::kFinalSetInconsistent,
             StrCat("final/", f),
             "lifted final DFA acceptance disagrees with the witnessed "
             "final-NFA state set");
    }
    Bitset next(fl.num_states());
    for (HState sid = 0; sid < subsets.size(); ++sid) {
      next.ClearAll();
      for (uint32_t q : subset_bits[sid]) {
        auto it = frows.find(q);
        if (it != frows.end()) next |= it->second;
      }
      strre::StateId to = fdfa.Next(f, sid);
      if (to == strre::kNoState || to >= witness.final_sets.size()) {
        Report(out, DiagnosticCode::kFinalSetInconsistent,
               StrCat("final/", f, "/", sid),
               "lifted final DFA is not total over subset letters");
      } else if (!(witness.final_sets[to] == next)) {
        Report(out, DiagnosticCode::kFinalSetInconsistent,
               StrCat("final/", f, "/", sid),
               "lifted final DFA transition does not match the recomputed "
               "step");
      }
    }
  }
}

// One horizontal row re-derived in full — closedness, every transition out
// of `h`, and every assignment at `h`. The light checker samples rows
// through this; CheckDeterminize keeps its own dense loops (same logic) so
// its finding order stays stable.
void DetRow(HhState h, const Nha& input, const ContentIndex& ci,
            CombinedClosurePool& pool, const Dha& dha,
            const automata::DeterminizeWitness& witness,
            const std::vector<Bitset>& subsets,
            const std::vector<std::vector<uint32_t>>& subset_bits,
            const std::set<hedge::SymbolId>& all_symbols,
            std::vector<Diagnostic>& out) {
  bool is_closed = true;
  for (uint32_t cs : witness.h_sets[h].ToVector()) {
    size_t r = RuleOf(ci, cs);
    const Nfa& content = input.rules()[r].content;
    uint32_t local = cs - static_cast<uint32_t>(ci.offset[r]);
    for (strre::StateId t : content.EpsilonsFrom(local)) {
      if (!witness.h_sets[h].Test(static_cast<uint32_t>(ci.offset[r]) + t)) {
        is_closed = false;
        break;
      }
    }
    if (!is_closed) break;
  }
  if (!is_closed) {
    Report(out, DiagnosticCode::kSubsetTransitionIncoherent,
           StrCat("hset/", h), "horizontal set is not epsilon-closed");
    return;
  }
  const std::unordered_map<uint32_t, Bitset> targets =
      pool.TargetsBySymbol(witness.h_sets[h]);
  Bitset expect(ci.total);
  for (HState sid = 0; sid < subsets.size(); ++sid) {
    expect.ClearAll();
    for (uint32_t q : subset_bits[sid]) {
      auto it = targets.find(q);
      if (it != targets.end()) expect |= it->second;
    }
    HhState to = dha.HNext(h, sid);
    if (to >= witness.h_sets.size()) {
      Report(out, DiagnosticCode::kCertificateMalformed,
             StrCat("htrans/", h, "/", sid),
             "horizontal transition target out of range");
    } else if (!(witness.h_sets[to] == expect)) {
      Report(out, DiagnosticCode::kSubsetTransitionIncoherent,
             StrCat("htrans/", h, "/", sid),
             "horizontal transition does not match the recomputed subset "
             "step");
    }
  }
  std::map<hedge::SymbolId, Bitset> accept =
      AcceptTargets(input, ci, witness.h_sets[h]);
  for (hedge::SymbolId symbol : all_symbols) {
    HState sid = dha.Assign(symbol, h);
    if (sid >= subsets.size()) {
      Report(out, DiagnosticCode::kCertificateMalformed,
             StrCat("assign/", symbol, "/", h),
             "assignment target out of range");
      continue;
    }
    auto it = accept.find(symbol);
    const bool match = it == accept.end() ? subsets[sid].None()
                                          : subsets[sid] == it->second;
    if (!match) {
      Report(out, DiagnosticCode::kAssignmentIncoherent,
             StrCat("assign/", symbol, "/", h),
             "assignment does not match the accepting rules' targets");
    }
  }
}

}  // namespace

std::vector<Diagnostic> CheckDeterminize(
    const Nha& input, const automata::Determinized& output,
    const automata::DeterminizeWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const Dha& dha = output.dha;
  const std::vector<Bitset>& subsets = output.subsets;
  const ContentIndex ci = IndexContents(input);
  CombinedClosurePool pool(input, ci);

  // --- Shape (HQV001). Shape failures abort: the semantic checks below
  // index through these arrays.
  if (!DetShape(input, output, witness, ci, out)) return out;

  // --- Horizontal start: closure of every rule content's start state.
  DetHStart(input, dha, witness, ci, pool, out);

  // --- Horizontal transitions (HQV002): every (h, subset-letter) entry of
  // the dense matrix must be the recomputed closed step. The step is
  // recomputed as a union of per-symbol pre-closed target rows (see
  // TargetsBySymbol), so each h walks its transitions once rather than
  // once per letter.
  std::vector<std::vector<uint32_t>> subset_bits(subsets.size());
  for (size_t i = 0; i < subsets.size(); ++i) {
    subset_bits[i] = subsets[i].ToVector();
  }
  for (HhState h = 0; h < witness.h_sets.size(); ++h) {
    // Closedness in place: a set is epsilon-closed iff every member's
    // epsilon successors are already members — no closure materialized.
    bool is_closed = true;
    for (uint32_t cs : witness.h_sets[h].ToVector()) {
      size_t r = RuleOf(ci, cs);
      const Nfa& content = input.rules()[r].content;
      uint32_t local = cs - static_cast<uint32_t>(ci.offset[r]);
      for (strre::StateId t : content.EpsilonsFrom(local)) {
        if (!witness.h_sets[h].Test(static_cast<uint32_t>(ci.offset[r]) +
                                    t)) {
          is_closed = false;
          break;
        }
      }
      if (!is_closed) break;
    }
    if (!is_closed) {
      Report(out, DiagnosticCode::kSubsetTransitionIncoherent,
             StrCat("hset/", h), "horizontal set is not epsilon-closed");
      continue;
    }
    const std::unordered_map<uint32_t, Bitset> targets =
        pool.TargetsBySymbol(witness.h_sets[h]);
    Bitset expect(ci.total);
    for (HState sid = 0; sid < subsets.size(); ++sid) {
      expect.ClearAll();
      for (uint32_t q : subset_bits[sid]) {
        auto it = targets.find(q);
        if (it != targets.end()) expect |= it->second;
      }
      HhState to = dha.HNext(h, sid);
      if (to >= witness.h_sets.size()) {
        Report(out, DiagnosticCode::kCertificateMalformed,
               StrCat("htrans/", h, "/", sid),
               "horizontal transition target out of range");
      } else if (!(witness.h_sets[to] == expect)) {
        Report(out, DiagnosticCode::kSubsetTransitionIncoherent,
               StrCat("htrans/", h, "/", sid),
               "horizontal transition does not match the recomputed subset "
               "step");
      }
    }
  }

  // --- Assignments (HQV004): alpha(symbol, h) must denote exactly the
  // targets of the rules accepting at h.
  std::set<hedge::SymbolId> all_symbols;
  for (const Nha::Rule& rule : input.rules()) all_symbols.insert(rule.symbol);
  for (const auto& [symbol, row] : dha.assign_map()) {
    all_symbols.insert(symbol);
  }
  for (HhState h = 0; h < witness.h_sets.size(); ++h) {
    std::map<hedge::SymbolId, Bitset> expect =
        AcceptTargets(input, ci, witness.h_sets[h]);
    for (hedge::SymbolId symbol : all_symbols) {
      HState sid = dha.Assign(symbol, h);
      if (sid >= subsets.size()) {
        Report(out, DiagnosticCode::kCertificateMalformed,
               StrCat("assign/", symbol, "/", h),
               "assignment target out of range");
        continue;
      }
      auto it = expect.find(symbol);
      const bool match = it == expect.end() ? subsets[sid].None()
                                            : subsets[sid] == it->second;
      if (!match) {
        Report(out, DiagnosticCode::kAssignmentIncoherent,
               StrCat("assign/", symbol, "/", h),
               "assignment does not match the accepting rules' targets");
      }
    }
  }

  // --- iota (HQV004): variable/substitution states denote the input sets.
  DetIota(input, dha, subsets, out);

  // --- Lifted final DFA (HQV003): simulation against the witnessed
  // final-NFA state sets.
  DetFinal(input, dha, subsets, subset_bits, witness, out);
  return out;
}

std::vector<Diagnostic> CheckTrim(const Nha& input, const Nha& output,
                                  const automata::TrimWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const size_t n = input.num_states();
  if (witness.derivable.size() != n || witness.useful.size() != n ||
      witness.mapping.size() != n) {
    Report(out, DiagnosticCode::kCertificateMalformed, "trim",
           "trim witness widths do not match the input state count");
    return out;
  }

  // --- Own bottom-up derivability fixpoint.
  Bitset derivable(n);
  for (const auto& [x, states] : input.var_map()) {
    for (HState q : states) derivable.Set(q);
  }
  for (const auto& [z, states] : input.subst_map()) {
    for (HState q : states) derivable.Set(q);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : input.rules()) {
      if (derivable.Test(rule.target)) continue;
      if (AcceptsOverAlphabet(rule.content, derivable)) {
        derivable.Set(rule.target);
        changed = true;
      }
    }
  }
  if (!(witness.derivable == derivable)) {
    Report(out, DiagnosticCode::kTrimWitnessMismatch, "derivable",
           "witnessed derivable set does not match the recomputed "
           "bottom-up fixpoint");
  }

  // --- Own co-reachability fixpoint, seeded from the final language.
  Bitset co = LettersOnAcceptingPaths(input.final_nfa(), derivable, n);
  changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : input.rules()) {
      if (!co.Test(rule.target)) continue;
      Bitset usable = LettersOnAcceptingPaths(rule.content, derivable, n);
      Bitset before = co;
      co |= usable;
      if (!(co == before)) changed = true;
    }
  }
  Bitset useful = derivable;
  useful &= co;
  if (!(witness.useful == useful)) {
    Report(out, DiagnosticCode::kTrimWitnessMismatch, "useful",
           "witnessed useful set does not match derivable ∧ co-reachable");
  }

  // --- Renaming: dense, increasing, defined exactly on the useful states.
  HState next_id = 0;
  bool mapping_ok = true;
  for (HState q = 0; q < n; ++q) {
    const bool kept = witness.mapping[q] != strre::kNoState;
    if (kept != witness.useful.Test(q) ||
        (kept && witness.mapping[q] != next_id)) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("map/", q),
             "renaming is not the dense order-preserving map of the useful "
             "states");
      mapping_ok = false;
      break;
    }
    if (kept) ++next_id;
  }
  if (!mapping_ok) return out;
  if (output.num_states() != next_id) {
    Report(out, DiagnosticCode::kTrimWitnessMismatch, "output",
           StrCat("output has ", output.num_states(),
                  " states, renaming produces ", next_id));
    return out;
  }

  // --- Structural projection: the output must be exactly the input
  // filtered to useful targets with letters renamed.
  size_t out_rule = 0;
  for (size_t r = 0; r < input.rules().size(); ++r) {
    const Nha::Rule& rule = input.rules()[r];
    if (rule.target >= n || !witness.useful.Test(rule.target)) continue;
    if (out_rule >= output.rules().size()) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("rule/", r),
             "output is missing a rule with a useful target");
      return out;
    }
    const Nha::Rule& projected = output.rules()[out_rule];
    if (projected.symbol != rule.symbol ||
        projected.target != witness.mapping[rule.target] ||
        !NfaStructEq(projected.content,
                     ProjectLetters(rule.content, witness.mapping))) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("rule/", r),
             "output rule is not the projection of the input rule");
    }
    ++out_rule;
  }
  if (out_rule != output.rules().size()) {
    Report(out, DiagnosticCode::kTrimWitnessMismatch, "rules",
           "output has rules beyond the projected input rules");
  }
  for (const auto& [x, states] : input.var_map()) {
    std::vector<uint32_t> expect;
    for (HState q : states) {
      if (witness.useful.Test(q)) expect.push_back(witness.mapping[q]);
    }
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    if (SortedStates(output.VariableStates(x)) != expect) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("var/", x),
             "projected variable states disagree");
    }
  }
  for (const auto& [x, states] : output.var_map()) {
    if (!input.var_map().contains(x)) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("var/", x),
             "output knows a variable the input does not");
    }
  }
  for (const auto& [z, states] : input.subst_map()) {
    std::vector<uint32_t> expect;
    for (HState q : states) {
      if (witness.useful.Test(q)) expect.push_back(witness.mapping[q]);
    }
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    if (SortedStates(output.SubstStates(z)) != expect) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("subst/", z),
             "projected substitution states disagree");
    }
  }
  for (const auto& [z, states] : output.subst_map()) {
    if (!input.subst_map().contains(z)) {
      Report(out, DiagnosticCode::kTrimWitnessMismatch, StrCat("subst/", z),
             "output knows a substitution symbol the input does not");
    }
  }
  if (!NfaStructEq(output.final_nfa(),
                   ProjectLetters(input.final_nfa(), witness.mapping))) {
    Report(out, DiagnosticCode::kTrimWitnessMismatch, "final",
           "output final language is not the projection of the input's");
  }
  return out;
}

namespace {

int CompileArity(hre::HreKind kind) {
  switch (kind) {
    case hre::HreKind::kEmptySet:
    case hre::HreKind::kEpsilon:
    case hre::HreKind::kVariable:
    case hre::HreKind::kSubstLeaf:
      return 0;
    case hre::HreKind::kTree:
    case hre::HreKind::kStar:
    case hre::HreKind::kVClose:
      return 1;
    case hre::HreKind::kConcat:
    case hre::HreKind::kUnion:
    case hre::HreKind::kEmbed:
      return 2;
  }
  return 0;
}

// The compiler's own recursion order, as a post-order kind sequence
// (kEmbed compiles its right child e2 before its left child e1). Returns
// false when the sequence exceeds `limit` (sharing blow-up or mismatch).
bool ExpectedKindSequence(const hre::Hre& root, size_t limit,
                          std::vector<hre::HreKind>& out) {
  struct Item {
    const hre::HreNode* node;
    bool expanded;
  };
  std::vector<Item> stack{{root.get(), false}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (item.expanded) {
      out.push_back(item.node->kind());
      if (out.size() > limit) return false;
      continue;
    }
    stack.push_back({item.node, true});
    switch (item.node->kind()) {
      case hre::HreKind::kTree:
      case hre::HreKind::kStar:
      case hre::HreKind::kVClose:
        stack.push_back({item.node->left().get(), false});
        break;
      case hre::HreKind::kConcat:
      case hre::HreKind::kUnion:
        // Left compiled first: push right below left on the stack.
        stack.push_back({item.node->right().get(), false});
        stack.push_back({item.node->left().get(), false});
        break;
      case hre::HreKind::kEmbed:
        // e2 (right) compiled first.
        stack.push_back({item.node->left().get(), false});
        stack.push_back({item.node->right().get(), false});
        break;
      default:
        break;
    }
  }
  return true;
}

}  // namespace

std::vector<Diagnostic> CheckCompile(const hre::Hre& expr, const Nha& output,
                                     const hre::CompileTrace& trace) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  if (expr == nullptr || trace.entries.empty()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "compile",
           "empty compile trace");
    return out;
  }
  std::vector<hre::HreKind> expected;
  if (!ExpectedKindSequence(expr, trace.entries.size(), expected) ||
      expected.size() != trace.entries.size()) {
    Report(out, DiagnosticCode::kCompileWitnessRejected, "compile",
           "trace length does not match the expression's traversal");
    return out;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (trace.entries[i].kind != expected[i]) {
      Report(out, DiagnosticCode::kCompileWitnessRejected,
             StrCat("entry/", i),
             "trace case order does not match the expression's traversal");
      return out;
    }
  }

  // Replay the per-case accounting on a summary stack.
  struct Span {
    size_t sb, sa, rb, ra;
  };
  std::vector<Span> stack;
  for (size_t i = 0; i < trace.entries.size(); ++i) {
    const hre::CompileTraceEntry& e = trace.entries[i];
    if (e.states_after < e.states_before || e.rules_after < e.rules_before) {
      Report(out, DiagnosticCode::kCompileWitnessRejected,
             StrCat("entry/", i), "state or rule count decreased");
      return out;
    }
    const int arity = CompileArity(e.kind);
    if (static_cast<int>(stack.size()) < arity) {
      Report(out, DiagnosticCode::kCompileWitnessRejected,
             StrCat("entry/", i), "trace underflows its child entries");
      return out;
    }
    size_t child_sa = e.states_before;  // end of the children's range
    size_t child_ra = e.rules_before;
    if (arity >= 1) {
      const Span& last = stack.back();
      child_sa = last.sa;
      child_ra = last.ra;
      const Span& first = stack[stack.size() - arity];
      bool contiguous = first.sb == e.states_before &&
                        first.rb == e.rules_before;
      if (arity == 2) {
        const Span& second = stack.back();
        contiguous = contiguous && second.sb == first.sa &&
                     second.rb == first.ra;
      }
      if (!contiguous) {
        Report(out, DiagnosticCode::kCompileWitnessRejected,
               StrCat("entry/", i),
               "child entries are not contiguous inside their parent");
        return out;
      }
    }
    size_t own_states = 0, own_rules = 0;
    switch (e.kind) {
      case hre::HreKind::kVariable:
        own_states = 1;
        break;
      case hre::HreKind::kSubstLeaf:
        own_states = 2;
        own_rules = 1;
        break;
      case hre::HreKind::kTree:
        own_states = 1;
        own_rules = 1;
        break;
      default:
        break;
    }
    if (e.states_after != child_sa + own_states ||
        e.rules_after != child_ra + own_rules) {
      Report(out, DiagnosticCode::kCompileWitnessRejected,
             StrCat("entry/", i),
             StrCat("case accounting does not close: states ",
                    e.states_before, "->", e.states_after, ", rules ",
                    e.rules_before, "->", e.rules_after));
      return out;
    }
    stack.resize(stack.size() - static_cast<size_t>(arity));
    stack.push_back(
        Span{e.states_before, e.states_after, e.rules_before, e.rules_after});
  }
  if (stack.size() != 1 || stack[0].sb != 0 || stack[0].rb != 0) {
    Report(out, DiagnosticCode::kCompileWitnessRejected, "compile",
           "trace does not reduce to a single root span");
    return out;
  }
  if (stack[0].sa != output.num_states() ||
      stack[0].ra != output.rules().size() ||
      trace.total_states != output.num_states() ||
      trace.total_rules != output.rules().size()) {
    Report(out, DiagnosticCode::kCompileWitnessRejected, "compile",
           StrCat("trace totals (", stack[0].sa, " states, ", stack[0].ra,
                  " rules) do not match the output (",
                  output.num_states(), ", ", output.rules().size(), ")"));
  }
  return out;
}

std::vector<Diagnostic> CheckLazyAudit(
    const Nha& nha, std::span<const automata::LazyAuditEntry> entries) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const ContentIndex ci = IndexContents(nha);
  CombinedClosurePool pool(nha, ci);
  const size_t nq = nha.num_states();
  for (size_t i = 0; i < entries.size(); ++i) {
    const automata::LazyAuditEntry& e = entries[i];
    if (e.h.size() != ci.total) {
      Report(out, DiagnosticCode::kCertificateMalformed,
             StrCat("audit/", i), "audited horizontal set width mismatch");
      continue;
    }
    if (e.is_assign) {
      if (e.result.size() != nq) {
        Report(out, DiagnosticCode::kCertificateMalformed,
               StrCat("audit/", i), "audited assignment width mismatch");
        continue;
      }
      Bitset expect(nq);
      for (uint32_t cs : e.h.ToVector()) {
        size_t r = RuleOf(ci, cs);
        const Nha::Rule& rule = nha.rules()[r];
        uint32_t local = cs - static_cast<uint32_t>(ci.offset[r]);
        if (rule.symbol == e.symbol && rule.content.IsAccepting(local)) {
          expect.Set(rule.target);
        }
      }
      if (!(expect == e.result)) {
        Report(out, DiagnosticCode::kLazyAuditMismatch, StrCat("audit/", i),
               "memoized assignment disagrees with independent "
               "recomputation");
      }
    } else {
      if (e.subset.size() != nq || e.result.size() != ci.total) {
        Report(out, DiagnosticCode::kCertificateMalformed,
               StrCat("audit/", i), "audited step width mismatch");
        continue;
      }
      Bitset expect = pool.Step(e.h, e.subset);
      if (!(expect == e.result)) {
        Report(out, DiagnosticCode::kLazyAuditMismatch, StrCat("audit/", i),
               "memoized horizontal step disagrees with independent "
               "recomputation");
      }
    }
  }
  return out;
}

std::vector<Diagnostic> CheckProjection(const schema::MatchIdentifying& mi,
                                        const query::CompiledPhr& compiled,
                                        const hedge::Hedge& doc) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const std::vector<uint32_t> states = mi.UniqueRunStates(doc);
  const std::vector<bool> marks = mi.UniqueRunMarks(doc);
  const std::vector<HState> dha_run = compiled.dha().Run(doc);
  const std::vector<Bitset> sets = mi.nha().ComputeStateSets(doc);
  if (states.size() != doc.num_nodes() || marks.size() != doc.num_nodes()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "projection",
           "unique run does not cover the document");
    return out;
  }
  for (hedge::NodeId n = 0; n < doc.num_nodes(); ++n) {
    const uint32_t st = states[n];
    if (st >= mi.nha().num_states()) {
      Report(out, DiagnosticCode::kCertificateMalformed, StrCat("node/", n),
             "unique-run state out of range");
      continue;
    }
    const bool is_leaf_node =
        doc.label(n).kind != hedge::LabelKind::kSymbol;
    if (mi.IsLeafState(st) != is_leaf_node) {
      Report(out, DiagnosticCode::kProjectionHomomorphismViolated,
             StrCat("node/", n),
             "leaf/product state does not match the node's label kind");
    }
    if (mi.QOf(st) != dha_run[n]) {
      Report(out, DiagnosticCode::kProjectionHomomorphismViolated,
             StrCat("node/", n),
             "product state does not project onto the shared DHA's run");
    }
    if (!sets[n].Test(st)) {
      Report(out, DiagnosticCode::kProjectionHomomorphismViolated,
             StrCat("node/", n),
             "claimed unique-run state is not assignable by the "
             "match-identifying NHA");
    }
    if (st < mi.marked().size() && marks[n] != mi.marked()[st]) {
      Report(out, DiagnosticCode::kProjectionHomomorphismViolated,
             StrCat("node/", n),
             "unique-run mark disagrees with the marked-state table");
    }
  }
  return out;
}

std::vector<Diagnostic> CheckMinimize(
    const Dha& input, const Dha& output,
    const automata::MinimizeWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const size_t nq = input.num_states();
  const size_t nh = input.num_h_states();

  // --- Shape (HQV001): block maps total over the input, block ids in
  // range, every output state/horizontal state has a preimage.
  if (witness.qblock.size() != nq || witness.hblock.size() != nh) {
    Report(out, DiagnosticCode::kCertificateMalformed, "minimize",
           StrCat("partition widths (", witness.qblock.size(), ", ",
                  witness.hblock.size(), ") do not match the input (", nq,
                  ", ", nh, ")"));
    return out;
  }
  std::vector<bool> qseen(output.num_states(), false);
  std::vector<bool> hseen(output.num_h_states(), false);
  for (size_t q = 0; q < nq; ++q) {
    if (witness.qblock[q] >= output.num_states()) {
      Report(out, DiagnosticCode::kCertificateMalformed, StrCat("qblock/", q),
             "block id out of range of the output states");
      return out;
    }
    qseen[witness.qblock[q]] = true;
  }
  for (size_t h = 0; h < nh; ++h) {
    if (witness.hblock[h] >= output.num_h_states()) {
      Report(out, DiagnosticCode::kCertificateMalformed, StrCat("hblock/", h),
             "block id out of range of the output horizontal states");
      return out;
    }
    hseen[witness.hblock[h]] = true;
  }
  for (size_t b = 0; b < qseen.size(); ++b) {
    if (!qseen[b]) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected,
             StrCat("block/", b), "output state has no preimage block");
    }
  }
  for (size_t b = 0; b < hseen.size(); ++b) {
    if (!hseen[b]) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected,
             StrCat("hblock/", b),
             "output horizontal state has no preimage block");
    }
  }

  // --- Congruence: the block maps must commute with every transition
  // table. Together with the final-language walk below this proves the
  // quotient is language-preserving, without re-running the refinement.
  if (output.h_start() != witness.hblock[input.h_start()]) {
    Report(out, DiagnosticCode::kMinimizeWitnessRejected, "hstart",
           "output horizontal start is not the start's block");
  }
  if (output.sink() != witness.qblock[input.sink()]) {
    Report(out, DiagnosticCode::kMinimizeWitnessRejected, "sink",
           "output sink is not the sink's block");
  }
  for (HhState h = 0; h < nh; ++h) {
    for (HState q = 0; q < nq; ++q) {
      if (witness.hblock[input.HNext(h, q)] !=
          output.HNext(witness.hblock[h], witness.qblock[q])) {
        Report(out, DiagnosticCode::kMinimizeWitnessRejected,
               StrCat("htrans/", h, "/", q),
               "horizontal transition does not commute with the partition");
      }
    }
  }
  std::set<hedge::SymbolId> all_symbols;
  for (const auto& [symbol, row] : input.assign_map()) {
    all_symbols.insert(symbol);
  }
  for (const auto& [symbol, row] : output.assign_map()) {
    all_symbols.insert(symbol);
  }
  for (hedge::SymbolId symbol : all_symbols) {
    for (HhState h = 0; h < nh; ++h) {
      if (witness.qblock[input.Assign(symbol, h)] !=
          output.Assign(symbol, witness.hblock[h])) {
        Report(out, DiagnosticCode::kMinimizeWitnessRejected,
               StrCat("assign/", symbol, "/", h),
               "assignment does not commute with the partition");
      }
    }
  }
  for (const auto& [x, q] : input.var_map()) {
    auto it = output.var_map().find(x);
    if (it == output.var_map().end() || it->second != witness.qblock[q]) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected, StrCat("var/", x),
             "variable state is not the input state's block");
    }
  }
  for (const auto& [x, q] : output.var_map()) {
    if (!input.var_map().contains(x)) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected, StrCat("var/", x),
             "output knows a variable the input does not");
    }
  }
  for (const auto& [z, q] : input.subst_map()) {
    auto it = output.subst_map().find(z);
    if (it == output.subst_map().end() || it->second != witness.qblock[q]) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected,
             StrCat("subst/", z),
             "substitution state is not the input state's block");
    }
  }
  for (const auto& [z, q] : output.subst_map()) {
    if (!input.subst_map().contains(z)) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected,
             StrCat("subst/", z),
             "output knows a substitution symbol the input does not");
    }
  }

  // --- Final-language preservation: walk the product of the input's
  // final DFA (letters: input states) against the output's final DFA read
  // through the block map. Implicit dead sinks are modeled as a virtual
  // non-accepting state so partial DFAs compare soundly.
  const strre::Dfa& fin = input.final_dfa();
  const strre::Dfa& fout = output.final_dfa();
  const strre::StateId in_dead = static_cast<strre::StateId>(fin.num_states());
  const strre::StateId out_dead =
      static_cast<strre::StateId>(fout.num_states());
  auto in_id = [&](strre::StateId s) { return s == strre::kNoState ? in_dead : s; };
  auto out_id = [&](strre::StateId s) {
    return s == strre::kNoState ? out_dead : s;
  };
  std::vector<bool> visited(
      (static_cast<size_t>(in_dead) + 1) * (out_dead + 1), false);
  std::deque<std::pair<strre::StateId, strre::StateId>> queue;
  auto push = [&](strre::StateId a, strre::StateId b) {
    size_t key = static_cast<size_t>(a) * (out_dead + 1) + b;
    if (!visited[key]) {
      visited[key] = true;
      queue.emplace_back(a, b);
    }
  };
  push(in_id(fin.start()), out_id(fout.start()));
  while (!queue.empty()) {
    auto [a, b] = queue.front();
    queue.pop_front();
    const bool acc_a = a != in_dead && fin.IsAccepting(a);
    const bool acc_b = b != out_dead && fout.IsAccepting(b);
    if (acc_a != acc_b) {
      Report(out, DiagnosticCode::kMinimizeWitnessRejected,
             StrCat("final/", a, "/", b),
             "quotient's final language differs from the input's");
      break;
    }
    if (a == in_dead && b == out_dead) continue;
    for (HState q = 0; q < nq; ++q) {
      strre::StateId a2 = a == in_dead ? in_dead : in_id(fin.Next(a, q));
      strre::StateId b2 =
          b == out_dead ? out_dead : out_id(fout.Next(b, witness.qblock[q]));
      push(a2, b2);
    }
  }
  return out;
}

std::vector<Diagnostic> CheckPhrProduct(const phr::Phr& phr,
                                        const query::CompiledPhr& compiled,
                                        const query::PhrWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const size_t n = phr.triplets().size();
  const size_t num_dha = compiled.dha().num_states();

  // --- Shape (HQV001).
  if (witness.elder_final.size() != n || witness.younger_final.size() != n ||
      witness.elder_any.size() != n || witness.younger_any.size() != n ||
      witness.components.size() != 2 * n || compiled.num_triplets() != n) {
    Report(out, DiagnosticCode::kCertificateMalformed, "phr",
           "witness vectors do not cover the representation's triplets");
    return out;
  }
  if (compiled.subsets().size() != num_dha) {
    Report(out, DiagnosticCode::kCertificateMalformed, "phr",
           "subset count does not match the shared DHA's states");
    return out;
  }

  // --- Components: each witnessed DFA must be exactly the subset-lift of
  // its final NFA over the compiled subsets (or the canonical accept-all /
  // dead DFA for unconditional / empty languages).
  for (size_t j = 0; j < 2 * n; ++j) {
    const size_t i = j / 2;
    const bool is_elder = (j % 2 == 0);
    const strre::Dfa& comp = witness.components[j];
    const std::string span = StrCat(is_elder ? "elder/" : "younger/", i);
    const bool any = is_elder ? witness.elder_any[i] : witness.younger_any[i];
    auto is_one_state_loop = [&](bool accepting) {
      if (comp.num_states() != 1 || comp.start() != 0 ||
          comp.IsAccepting(0) != accepting) {
        return false;
      }
      for (HState q = 0; q < num_dha; ++q) {
        if (comp.Next(0, static_cast<strre::Symbol>(q)) != 0) return false;
      }
      return true;
    };
    if (any) {
      if (!is_one_state_loop(true)) {
        Report(out, DiagnosticCode::kPhrProductIncoherent, span,
               "unconditional triplet must lift to the one-state accept-all "
               "DFA");
      }
      continue;
    }
    const Nfa& lang =
        is_elder ? witness.elder_final[i] : witness.younger_final[i];
    if (lang.num_states() == 0 || lang.start() == strre::kNoState) {
      if (!is_one_state_loop(false)) {
        Report(out, DiagnosticCode::kPhrProductIncoherent, span,
               "empty final language must lift to the one-state dead DFA");
      }
      continue;
    }
    if (comp.start() == strre::kNoState ||
        comp.start() >= comp.num_states()) {
      Report(out, DiagnosticCode::kPhrProductIncoherent, span,
             "lifted component has no start state");
      continue;
    }
    std::vector<Bitset> sets(comp.num_states());
    std::vector<bool> have(comp.num_states(), false);
    Bitset s0(lang.num_states());
    s0.Set(lang.start());
    CloseNfa(lang, s0);
    sets[comp.start()] = std::move(s0);
    have[comp.start()] = true;
    std::deque<strre::StateId> queue{comp.start()};
    size_t reached = 1;
    bool bad = false;
    while (!queue.empty() && !bad) {
      strre::StateId f = queue.front();
      queue.pop_front();
      bool want_accepting = false;
      for (uint32_t s : sets[f].ToVector()) {
        if (lang.IsAccepting(s)) {
          want_accepting = true;
          break;
        }
      }
      if (want_accepting != comp.IsAccepting(f)) {
        Report(out, DiagnosticCode::kPhrProductIncoherent, span,
               "lifted component acceptance disagrees with the recomputed "
               "subset");
        bad = true;
        break;
      }
      for (HState sid = 0; sid < num_dha && !bad; ++sid) {
        const Bitset& letter = compiled.subsets()[sid];
        Bitset next(lang.num_states());
        for (uint32_t s : sets[f].ToVector()) {
          for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
            if (t.symbol < letter.size() && letter.Test(t.symbol)) {
              next.Set(t.to);
            }
          }
        }
        CloseNfa(lang, next);
        strre::StateId to = comp.Next(f, static_cast<strre::Symbol>(sid));
        if (to == strre::kNoState || to >= comp.num_states()) {
          Report(out, DiagnosticCode::kPhrProductIncoherent,
                 StrCat(span, "/", sid),
                 "lifted component is not total over subset letters");
          bad = true;
        } else if (!have[to]) {
          sets[to] = std::move(next);
          have[to] = true;
          ++reached;
          queue.push_back(to);
        } else if (!(sets[to] == next)) {
          Report(out, DiagnosticCode::kPhrProductIncoherent,
                 StrCat(span, "/", sid),
                 "lifted component transition does not match the recomputed "
                 "subset step");
          bad = true;
        }
      }
    }
    if (!bad && reached != comp.num_states()) {
      Report(out, DiagnosticCode::kPhrProductIncoherent, span,
             "lifted component has unreachable states");
    }
  }

  // --- Class product: one independent tuple walk of the components must
  // reproduce the equivalence DFA and both saturation tables.
  const strre::Dfa& equiv = compiled.equiv();
  if (compiled.num_classes() != equiv.num_states()) {
    Report(out, DiagnosticCode::kCertificateMalformed, "equiv",
           "class count does not match the class product's states");
    return out;
  }
  if (equiv.num_states() == 0 || equiv.start() == strre::kNoState ||
      equiv.start() >= equiv.num_states()) {
    Report(out, DiagnosticCode::kPhrProductIncoherent, "equiv",
           "class product has no start state");
    return out;
  }
  {
    std::vector<std::vector<strre::StateId>> tuple_of(equiv.num_states());
    std::vector<bool> have(equiv.num_states(), false);
    std::vector<strre::StateId> t0(2 * n);
    for (size_t j = 0; j < 2 * n; ++j) t0[j] = witness.components[j].start();
    tuple_of[equiv.start()] = std::move(t0);
    have[equiv.start()] = true;
    std::deque<strre::StateId> queue{equiv.start()};
    size_t reached = 1;
    bool bad = false;
    while (!queue.empty() && !bad) {
      strre::StateId e = queue.front();
      queue.pop_front();
      const std::vector<strre::StateId> tuple = tuple_of[e];
      for (size_t i = 0; i < n; ++i) {
        const bool elder_acc =
            tuple[2 * i] != strre::kNoState &&
            witness.components[2 * i].IsAccepting(tuple[2 * i]);
        const bool younger_acc =
            tuple[2 * i + 1] != strre::kNoState &&
            witness.components[2 * i + 1].IsAccepting(tuple[2 * i + 1]);
        if (elder_acc != compiled.ElderClassOk(i, e) ||
            younger_acc != compiled.YoungerClassOk(i, e)) {
          Report(out, DiagnosticCode::kPhrProductIncoherent,
                 StrCat("saturation/", i, "/", e),
                 "saturation table disagrees with the component tuple");
          bad = true;
          break;
        }
      }
      for (HState q = 0; q < num_dha && !bad; ++q) {
        strre::StateId e2 = equiv.Next(e, static_cast<strre::Symbol>(q));
        if (e2 == strre::kNoState || e2 >= equiv.num_states()) {
          Report(out, DiagnosticCode::kPhrProductIncoherent,
                 StrCat("equiv/", e, "/", q),
                 "class product is not total over the state alphabet");
          bad = true;
          break;
        }
        std::vector<strre::StateId> t2(2 * n);
        for (size_t j = 0; j < 2 * n; ++j) {
          t2[j] = witness.components[j].Next(tuple[j],
                                             static_cast<strre::Symbol>(q));
        }
        if (!have[e2]) {
          tuple_of[e2] = std::move(t2);
          have[e2] = true;
          ++reached;
          queue.push_back(e2);
        } else if (tuple_of[e2] != t2) {
          Report(out, DiagnosticCode::kPhrProductIncoherent,
                 StrCat("equiv/", e, "/", q),
                 "two distinct component tuples collapse to one class");
          bad = true;
        }
      }
    }
    if (!bad && reached != equiv.num_states()) {
      Report(out, DiagnosticCode::kPhrProductIncoherent, "equiv",
             "class product has unreachable classes");
    }
    if (bad) return out;
  }

  // --- Symbol index: dense bijection covering every triplet label.
  const uint32_t num_symbols = compiled.num_symbols();
  {
    std::set<hedge::SymbolId> distinct;
    for (uint32_t k = 0; k < num_symbols; ++k) {
      hedge::SymbolId s = compiled.SymbolAt(k);
      if (!distinct.insert(s).second || compiled.SymbolIndex(s) != k) {
        Report(out, DiagnosticCode::kPhrProductIncoherent, "symbols",
               "symbol index is not a dense bijection");
        return out;
      }
    }
    for (const phr::PointedBaseRep& t : phr.triplets()) {
      if (compiled.SymbolIndex(t.label) == query::CompiledPhr::kNoSymbol) {
        Report(out, DiagnosticCode::kPhrProductIncoherent, "symbols",
               "a triplet label is missing from the symbol index");
        return out;
      }
    }
  }

  // --- L = xi(L(r)): recompute the homomorphism image with our own letter
  // arithmetic and compare structurally.
  const uint32_t num_classes = compiled.num_classes();
  {
    std::vector<std::vector<strre::Symbol>> images(n);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t si = compiled.SymbolIndex(phr.triplets()[i].label);
      for (uint32_t c1 = 0; c1 < num_classes; ++c1) {
        if (!compiled.ElderClassOk(i, c1)) continue;
        for (uint32_t c2 = 0; c2 < num_classes; ++c2) {
          if (!compiled.YoungerClassOk(i, c2)) continue;
          images[i].push_back(
              (static_cast<strre::Symbol>(c1) * num_symbols + si) *
                  num_classes +
              c2);
        }
      }
    }
    Nfa expect = strre::SubstituteSets(
        strre::CompileRegex(phr.regex()), [&](strre::Symbol t) {
          return t < images.size() ? images[t]
                                   : std::vector<strre::Symbol>{};
        });
    if (!NfaStructEq(expect, compiled.L())) {
      Report(out, DiagnosticCode::kPhrProductIncoherent, "L",
             "xi-image language does not match the recomputed homomorphism");
      return out;
    }
  }

  // --- Mirror: simulate the reversal of L by backward subsets and walk it
  // against the mirror DFA.
  {
    const Nfa& lang = compiled.L();
    const strre::Dfa& mirror = compiled.mirror();
    std::vector<std::vector<Nfa::Transition>> revtrans(lang.num_states());
    std::vector<std::vector<strre::StateId>> reveps(lang.num_states());
    for (strre::StateId s = 0; s < lang.num_states(); ++s) {
      for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
        revtrans[t.to].push_back(Nfa::Transition{t.symbol, s});
      }
      for (strre::StateId t : lang.EpsilonsFrom(s)) reveps[t].push_back(s);
    }
    auto close_rev = [&](Bitset& set) {
      std::deque<uint32_t> bfs;
      for (uint32_t s : set.ToVector()) bfs.push_back(s);
      while (!bfs.empty()) {
        uint32_t s = bfs.front();
        bfs.pop_front();
        for (strre::StateId p : reveps[s]) {
          if (!set.Test(p)) {
            set.Set(p);
            bfs.push_back(p);
          }
        }
      }
    };
    std::vector<strre::Symbol> letters = mirror.AlphabetInUse();
    {
      std::vector<strre::Symbol> more = lang.AlphabetInUse();
      letters.insert(letters.end(), more.begin(), more.end());
      std::sort(letters.begin(), letters.end());
      letters.erase(std::unique(letters.begin(), letters.end()),
                    letters.end());
    }
    Bitset s0(lang.num_states());
    for (strre::StateId s = 0; s < lang.num_states(); ++s) {
      if (lang.IsAccepting(s)) s0.Set(s);
    }
    close_rev(s0);
    auto accept_set = [&](const Bitset& set) {
      return lang.start() != strre::kNoState && set.Test(lang.start());
    };
    auto accept_m = [&](strre::StateId m) {
      return m != strre::kNoState && mirror.IsAccepting(m);
    };
    struct PairHash {
      size_t operator()(
          const std::pair<Bitset, strre::StateId>& p) const {
        return BitsetHash{}(p.first) * 1000003u + p.second + 1;
      }
    };
    std::unordered_set<std::pair<Bitset, strre::StateId>, PairHash> visited;
    std::deque<std::pair<Bitset, strre::StateId>> queue;
    const size_t cap = 64 * (mirror.num_states() + 2) + 1024;
    visited.insert({s0, mirror.start()});
    queue.emplace_back(std::move(s0), mirror.start());
    while (!queue.empty()) {
      auto [set, m] = std::move(queue.front());
      queue.pop_front();
      if (accept_set(set) != accept_m(m)) {
        Report(out, DiagnosticCode::kPhrProductIncoherent, "mirror",
               "mirror automaton disagrees with the reversed-subset "
               "simulation of L");
        break;
      }
      if (set.None() && m == strre::kNoState) continue;  // dead pair
      for (strre::Symbol a : letters) {
        Bitset next(lang.num_states());
        for (uint32_t s : set.ToVector()) {
          for (const Nfa::Transition& t : revtrans[s]) {
            if (t.symbol == a) next.Set(t.to);
          }
        }
        close_rev(next);
        strre::StateId m2 = mirror.Next(m, a);
        if (!visited.insert({next, m2}).second) continue;
        if (visited.size() > cap) {
          Report(out, DiagnosticCode::kPhrProductIncoherent, "mirror",
                 "reversed-subset simulation exceeded its state bound");
          queue.clear();
          break;
        }
        queue.emplace_back(std::move(next), m2);
      }
    }
  }
  return out;
}

std::vector<Diagnostic> CheckContainment(
    const schema::Schema& schema, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2, const schema::ContainmentResult& result,
    const schema::ContainmentWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const Nha& product = witness.product;
  const size_t np = product.num_states();
  if (witness.marked1.size() != np || witness.marked2.size() != np) {
    Report(out, DiagnosticCode::kCertificateMalformed, "containment",
           "mark table widths do not match the product's states");
    return out;
  }

  if (!result.contained) {
    // Non-containment is certified by a concrete document: it must be
    // schema-valid, and the two queries must actually disagree on the
    // claimed node — re-derived through the naive Definition 22 oracle,
    // never through the product.
    if (!result.counterexample.has_value()) {
      Report(out, DiagnosticCode::kContainmentCertificateRejected, "verdict",
             "not-contained verdict carries no counterexample document");
      return out;
    }
    const hedge::Hedge& doc = result.counterexample->document;
    const hedge::NodeId located = result.counterexample->located;
    if (located >= doc.num_nodes()) {
      Report(out, DiagnosticCode::kCertificateMalformed, "counterexample",
             "located node id out of range");
      return out;
    }
    if (!schema.nha().Accepts(doc)) {
      Report(out, DiagnosticCode::kContainmentCertificateRejected,
             "counterexample",
             "counterexample document is not schema-valid");
    }
    std::optional<std::vector<bool>> l1 = NaiveSelectionLocate(q1, doc);
    std::optional<std::vector<bool>> l2 = NaiveSelectionLocate(q2, doc);
    if (!l1.has_value() || !l2.has_value()) {
      Report(out, DiagnosticCode::kCertificateMalformed, "counterexample",
             "naive re-evaluation exhausted its step budget");
      return out;
    }
    if (!(*l1)[located]) {
      Report(out, DiagnosticCode::kContainmentCertificateRejected,
             "counterexample",
             "q1 does not locate the claimed node of the counterexample");
    }
    if ((*l2)[located]) {
      Report(out, DiagnosticCode::kContainmentCertificateRejected,
             "counterexample",
             "q2 also locates the claimed node — the document separates "
             "nothing");
    }
    return out;
  }

  if (result.counterexample.has_value()) {
    Report(out, DiagnosticCode::kContainmentCertificateRejected, "verdict",
           "contained verdict carries a counterexample document");
    return out;
  }
  // Containment: our own usable-state fixpoint over the witnessed product
  // (bottom-up derivability, then co-reachability from the final language)
  // must find no state q1 marks that q2 does not.
  Bitset derivable(np);
  for (const auto& [x, states] : product.var_map()) {
    for (HState q : states) derivable.Set(q);
  }
  for (const auto& [z, states] : product.subst_map()) {
    for (HState q : states) derivable.Set(q);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : product.rules()) {
      if (derivable.Test(rule.target)) continue;
      if (AcceptsOverAlphabet(rule.content, derivable)) {
        derivable.Set(rule.target);
        changed = true;
      }
    }
  }
  Bitset co = LettersOnAcceptingPaths(product.final_nfa(), derivable, np);
  changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : product.rules()) {
      if (!co.Test(rule.target)) continue;
      Bitset usable = LettersOnAcceptingPaths(rule.content, derivable, np);
      Bitset before = co;
      co |= usable;
      if (!(co == before)) changed = true;
    }
  }
  Bitset useful = derivable;
  useful &= co;
  for (size_t p = 0; p < np; ++p) {
    if (useful.Test(static_cast<uint32_t>(p)) && witness.marked1[p] &&
        !witness.marked2[p]) {
      Report(out, DiagnosticCode::kContainmentCertificateRejected,
             StrCat("state/", p),
             "a usable product state is marked by q1 but not q2 — the "
             "verdict cannot be \"contained\"");
      break;
    }
  }
  return out;
}

namespace {

// Structural HRE equality over shared DAGs, memoized on node-pointer pairs
// so repeated shared subtrees are compared once.
bool HreStructEqImpl(
    const hre::HreNode* a, const hre::HreNode* b,
    std::map<std::pair<const hre::HreNode*, const hre::HreNode*>, bool>&
        memo) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  const auto key = std::make_pair(a, b);
  auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  const bool eq = a->kind() == b->kind() && a->id() == b->id() &&
                  a->subst() == b->subst() &&
                  HreStructEqImpl(a->left().get(), b->left().get(), memo) &&
                  HreStructEqImpl(a->right().get(), b->right().get(), memo);
  memo.emplace(key, eq);
  return eq;
}

bool HreStructEq(const hre::Hre& a, const hre::Hre& b) {
  std::map<std::pair<const hre::HreNode*, const hre::HreNode*>, bool> memo;
  return HreStructEqImpl(a.get(), b.get(), memo);
}

// Checker-side pairing product — the spec of schema::IntersectSchemas
// re-coded independently: output states qa*|Qb|+qb, rule pairs in
// a-outer/b-inner order on matching symbols, content NFAs paired state-wise
// (pair states sa*|Sb|+sb, per-side epsilons, pair letters, accepting iff
// both sides accept), iota paired per variable/substitution symbol, final
// language the pairing of the final NFAs.
Nha CheckerPairProduct(const Nha& a, const Nha& b) {
  Nha out;
  const size_t nb = b.num_states();
  out.AddStates(a.num_states() * nb);
  auto encode = [nb](HState qa, HState qb) {
    return static_cast<HState>(qa * nb + qb);
  };
  auto pair_nfa = [&](const Nfa& ca, const Nfa& cb) {
    Nfa prod;
    const size_t pb = cb.num_states();
    for (size_t i = 0; i < ca.num_states() * pb; ++i) prod.AddState(false);
    if (ca.num_states() == 0 || cb.num_states() == 0) return prod;
    auto pid = [pb](uint32_t sa, uint32_t sb) {
      return static_cast<strre::StateId>(sa * pb + sb);
    };
    prod.SetStart(pid(ca.start(), cb.start()));
    for (uint32_t sa = 0; sa < ca.num_states(); ++sa) {
      for (uint32_t sb = 0; sb < cb.num_states(); ++sb) {
        if (ca.IsAccepting(sa) && cb.IsAccepting(sb)) {
          prod.SetAccepting(pid(sa, sb), true);
        }
        for (uint32_t ta : ca.EpsilonsFrom(sa)) {
          prod.AddEpsilon(pid(sa, sb), pid(ta, sb));
        }
        for (uint32_t tb : cb.EpsilonsFrom(sb)) {
          prod.AddEpsilon(pid(sa, sb), pid(sa, tb));
        }
        for (const Nfa::Transition& ta : ca.TransitionsFrom(sa)) {
          for (const Nfa::Transition& tb : cb.TransitionsFrom(sb)) {
            prod.AddTransition(pid(sa, sb), encode(ta.symbol, tb.symbol),
                               pid(ta.to, tb.to));
          }
        }
      }
    }
    return prod;
  };
  for (const Nha::Rule& ra : a.rules()) {
    for (const Nha::Rule& rb : b.rules()) {
      if (ra.symbol != rb.symbol) continue;
      out.AddRule(ra.symbol, pair_nfa(ra.content, rb.content),
                  encode(ra.target, rb.target));
    }
  }
  for (const auto& [x, states_a] : a.var_map()) {
    for (HState qa : states_a) {
      for (HState qb : b.VariableStates(x)) {
        out.AddVariableState(x, encode(qa, qb));
      }
    }
  }
  for (const auto& [z, states_a] : a.subst_map()) {
    for (HState qa : states_a) {
      for (HState qb : b.SubstStates(z)) {
        out.AddSubstState(z, encode(qa, qb));
      }
    }
  }
  out.SetFinal(pair_nfa(a.final_nfa(), b.final_nfa()));
  return out;
}

// Whole-NHA structural equality (rule order included); on mismatch `why`
// names the first disagreeing section.
bool NhaStructEqWhy(const Nha& x, const Nha& y, std::string* why) {
  if (x.num_states() != y.num_states()) {
    *why = StrCat("states ", x.num_states(), " != ", y.num_states());
    return false;
  }
  if (x.rules().size() != y.rules().size()) {
    *why = StrCat("rules ", x.rules().size(), " != ", y.rules().size());
    return false;
  }
  for (size_t i = 0; i < x.rules().size(); ++i) {
    const Nha::Rule& rx = x.rules()[i];
    const Nha::Rule& ry = y.rules()[i];
    if (rx.symbol != ry.symbol || rx.target != ry.target ||
        !NfaStructEq(rx.content, ry.content)) {
      *why = StrCat("rule/", i);
      return false;
    }
  }
  for (const auto& [v, states] : x.var_map()) {
    if (SortedStates(states) != SortedStates(y.VariableStates(v))) {
      *why = StrCat("var/", v);
      return false;
    }
  }
  for (const auto& [v, states] : y.var_map()) {
    if (!x.var_map().contains(v)) {
      *why = StrCat("var/", v);
      return false;
    }
  }
  for (const auto& [z, states] : x.subst_map()) {
    if (SortedStates(states) != SortedStates(y.SubstStates(z))) {
      *why = StrCat("subst/", z);
      return false;
    }
  }
  for (const auto& [z, states] : y.subst_map()) {
    if (!x.subst_map().contains(z)) {
      *why = StrCat("subst/", z);
      return false;
    }
  }
  if (!NfaStructEq(x.final_nfa(), y.final_nfa())) {
    *why = "final";
    return false;
  }
  return true;
}

}  // namespace

std::vector<Diagnostic> CheckFromNha(const Nha& input, const hre::Hre& output,
                                     const hre::FromNhaWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  if (output == nullptr || witness.result == nullptr) {
    Report(out, DiagnosticCode::kCertificateMalformed, "fromnha",
           "certificate carries no expression");
    return out;
  }
  if (!input.subst_map().empty()) {
    Report(out, DiagnosticCode::kFromNhaWitnessRejected, "input",
           "Lemma 2 does not apply to automata with substitution-symbol "
           "states — the construction cannot have succeeded");
    return out;
  }

  // --- Split table (re-enumerated): the (symbol, target) pairs of the
  // input's rules in first-occurrence order, at most 62.
  std::vector<std::pair<hedge::SymbolId, HState>> splits;
  {
    std::set<std::pair<hedge::SymbolId, HState>> seen;
    for (const Nha::Rule& rule : input.rules()) {
      const auto key = std::make_pair(rule.symbol, rule.target);
      if (seen.insert(key).second) splits.push_back(key);
    }
  }
  if (witness.splits != splits) {
    Report(out, DiagnosticCode::kFromNhaWitnessRejected, "splits",
           "witnessed split table does not match the rule targets in "
           "first-occurrence order");
    return out;
  }
  if (splits.size() > 62 || witness.substs.size() != splits.size()) {
    Report(out, DiagnosticCode::kFromNhaWitnessRejected, "substs",
           StrCat("split table has ", splits.size(), " entries but ",
                  witness.substs.size(), " substitution symbols"));
    return out;
  }
  const uint64_t all_mask =
      splits.empty() ? 0
                     : (splits.size() == 62 ? ~uint64_t{0} >> 2
                                            : (uint64_t{1} << splits.size()) -
                                                  1);

  // --- Recurrence replay (the heart of HQV014): every recursive entry of
  // the witness must equal the recurrence combination of its recorded
  // sub-entries — which precede it in fill order — rebuilt here and
  // compared structurally. A construction that drops an alternative (the
  // from_nha/drop-alternative failpoint) fails this deterministically.
  std::map<std::tuple<uint32_t, uint64_t, uint64_t>, hre::Hre> table;
  for (size_t i = 0; i < witness.entries.size(); ++i) {
    const hre::FromNhaWitness::Entry& e = witness.entries[i];
    if (e.expr == nullptr || e.c >= splits.size() ||
        (e.q1 & ~all_mask) != 0 || (e.q2 & ~all_mask) != 0 ||
        (e.q1 & e.q2) != 0) {
      Report(out, DiagnosticCode::kFromNhaWitnessRejected,
             StrCat("entry/", i), "recurrence entry out of range");
      return out;
    }
    if (e.q1 != 0) {
      const uint32_t p = 63 - static_cast<uint32_t>(__builtin_clzll(e.q1));
      const uint64_t q1_rest = e.q1 & ~(uint64_t{1} << p);
      const uint64_t q2_with_p = e.q2 | (uint64_t{1} << p);
      auto sub = [&](uint32_t c, uint64_t q1, uint64_t q2) -> hre::Hre {
        auto it = table.find(std::make_tuple(c, q1, q2));
        return it == table.end() ? nullptr : it->second;
      };
      const hre::Hre rp = sub(p, q1_rest, e.q2);
      const hre::Hre rp_up = sub(p, q1_rest, q2_with_p);
      const hre::Hre rq_up = sub(e.c, q1_rest, q2_with_p);
      const hre::Hre rq = sub(e.c, q1_rest, e.q2);
      if (rp == nullptr || rp_up == nullptr || rq_up == nullptr ||
          rq == nullptr) {
        Report(out, DiagnosticCode::kFromNhaWitnessRejected,
               StrCat("entry/", i),
               "recurrence entry precedes one of its sub-entries");
        return out;
      }
      const hedge::SubstId zp = witness.substs[p];
      const hre::Hre expected = hre::HUnion(
          hre::HEmbed(
              hre::HUnion(hre::HEmbed(rp, zp, hre::HVClose(rp_up, zp)), rp),
              zp, rq_up),
          rq);
      if (!HreStructEq(expected, e.expr)) {
        Report(out, DiagnosticCode::kFromNhaWitnessRejected,
               StrCat("entry/", i),
               "recurrence entry is not the combination of its sub-entries "
               "(an elimination alternative was altered or dropped)");
      }
    }
    if (!table.emplace(std::make_tuple(e.c, e.q1, e.q2), e.expr).second) {
      Report(out, DiagnosticCode::kFromNhaWitnessRejected,
             StrCat("entry/", i), "duplicate recurrence entry");
    }
    if (out.size() >= kMaxFindings) return out;
  }
  if (!HreStructEq(witness.result, output)) {
    Report(out, DiagnosticCode::kFromNhaWitnessRejected, "result",
           "witnessed result is not the returned expression");
  }
  if (!out.empty()) return out;

  // --- Independent semantic tier: recompile the emitted expression through
  // the Lemma 1 pipeline (verify/checker never shares code with Lemma 2)
  // and differentially compare membership against the source automaton on
  // a bounded-exhaustive plus sampled hedge corpus. Budget exhaustion
  // degrades to the structural tier above instead of flagging.
  ExecBudget budget;
  budget.max_states = size_t{1} << 14;
  budget.max_memory_bytes = size_t{32} << 20;
  budget.max_steps = size_t{1} << 24;
  budget.max_depth = 1024;
  BudgetScope scope(budget);
  Result<Nha> compiled = hre::CompileHre(output, scope);
  if (!compiled.ok()) return out;

  EnumVocab ev;
  {
    std::set<hedge::SymbolId> syms;
    for (const Nha::Rule& rule : input.rules()) syms.insert(rule.symbol);
    ev.symbols.assign(syms.begin(), syms.end());
    // One fresh symbol the automaton has no rule for: both sides must
    // reject hedges mentioning it.
    ev.symbols.push_back(ev.symbols.empty() ? 0 : ev.symbols.back() + 1);
    for (const auto& [x, states] : input.var_map()) {
      ev.variables.push_back(x);
    }
  }
  bool disagreed = false;
  auto compare = [&](const hedge::Hedge& h) {
    const bool want = input.Accepts(h);
    const bool got = compiled->Accepts(h);
    if (want != got) {
      disagreed = true;
      Report(out, DiagnosticCode::kFromNhaWitnessRejected,
             StrCat("hedge/", h.num_nodes()),
             StrCat("recompiled expression ", got ? "accepts" : "rejects",
                    " a ", h.num_nodes(),
                    "-node hedge the source automaton ",
                    want ? "accepts" : "rejects"));
      return false;
    }
    return true;
  };
  size_t remaining = 2000;
  for (size_t size = 0; size <= 3 && remaining > 0 && !disagreed; ++size) {
    const size_t emitted = EnumerateHedges(ev, size, remaining, compare);
    remaining -= std::min(remaining, emitted);
  }
  SplitMix64 rng(1);
  for (size_t i = 0; i < 24 && !disagreed; ++i) {
    compare(SampleHedge(ev, 5, rng));
  }
  return out;
}

std::vector<Diagnostic> CheckAlgebra(const schema::Schema& a,
                                     const schema::Schema& b,
                                     const schema::Schema& result,
                                     const schema::AlgebraWitness& witness) {
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const Nha& na = a.nha();
  const Nha& nb = b.nha();
  const Nha& no = result.nha();

  switch (witness.op) {
    case schema::AlgebraOp::kIntersect:
    case schema::AlgebraOp::kDifference: {
      // --- Product re-derivation: the pairing product of the left operand
      // with the right operand (b, or the witnessed complement of b for
      // difference), rebuilt with the checker's own pairing code and
      // compared structurally — rule order included, so a dropped or
      // reordered rule (the algebra/drop-rule failpoint) cannot hide.
      const Nha& right = witness.op == schema::AlgebraOp::kDifference
                             ? witness.complement
                             : nb;
      std::string why;
      if (!NhaStructEqWhy(CheckerPairProduct(na, right), witness.product,
                          &why)) {
        Report(out, DiagnosticCode::kAlgebraWitnessRejected,
               StrCat("product/", why),
               "witnessed product does not match the re-derived pairing "
               "product");
      }
      // --- The output is the pruned product; re-validate the prune through
      // the independent trim checker.
      for (Diagnostic& d : CheckTrim(witness.product, no, witness.trim)) {
        if (out.size() >= kMaxFindings) break;
        out.push_back(std::move(d));
      }
      break;
    }
    case schema::AlgebraOp::kUnion: {
      // --- Disjoint-union layout: a's copy at offset 0, b's copy after it,
      // rules and iota shifted, re-derived structurally.
      if (witness.offset_a != 0 ||
          witness.offset_b != static_cast<HState>(na.num_states()) ||
          no.num_states() != na.num_states() + nb.num_states()) {
        Report(out, DiagnosticCode::kAlgebraWitnessRejected, "offsets",
               "union offsets do not match the operand state counts");
        break;
      }
      if (no.rules().size() != na.rules().size() + nb.rules().size()) {
        Report(out, DiagnosticCode::kAlgebraWitnessRejected, "rules",
               StrCat("union has ", no.rules().size(), " rules for ",
                      na.rules().size(), " + ", nb.rules().size(),
                      " operand rules"));
        break;
      }
      std::vector<HState> shift_a(na.num_states());
      std::vector<HState> shift_b(nb.num_states());
      for (HState q = 0; q < na.num_states(); ++q) {
        shift_a[q] = q + witness.offset_a;
      }
      for (HState q = 0; q < nb.num_states(); ++q) {
        shift_b[q] = q + witness.offset_b;
      }
      auto check_side = [&](const Nha& side, const std::vector<HState>& shift,
                            HState offset, size_t rule_offset,
                            const char* name) {
        for (size_t i = 0; i < side.rules().size(); ++i) {
          const Nha::Rule& rs = side.rules()[i];
          const Nha::Rule& ro = no.rules()[rule_offset + i];
          if (ro.symbol != rs.symbol || ro.target != rs.target + offset ||
              !NfaStructEq(ro.content, ProjectLetters(rs.content, shift))) {
            Report(out, DiagnosticCode::kAlgebraWitnessRejected,
                   StrCat("rule/", name, "/", i),
                   "union rule is not the shifted copy of the operand rule");
          }
        }
      };
      check_side(na, shift_a, witness.offset_a, 0, "a");
      check_side(nb, shift_b, witness.offset_b, na.rules().size(), "b");
      auto check_iota = [&](auto states_of_a, auto states_of_b,
                            auto states_of_out, const auto& keys,
                            const char* name) {
        for (const auto& key : keys) {
          std::vector<uint32_t> expect;
          for (HState q : states_of_a(key)) {
            expect.push_back(q + witness.offset_a);
          }
          for (HState q : states_of_b(key)) {
            expect.push_back(q + witness.offset_b);
          }
          std::sort(expect.begin(), expect.end());
          expect.erase(std::unique(expect.begin(), expect.end()),
                       expect.end());
          if (SortedStates(states_of_out(key)) != expect) {
            Report(out, DiagnosticCode::kAlgebraWitnessRejected,
                   StrCat(name, "/", key),
                   "union iota is not the shifted pairing of the operands'");
          }
        }
      };
      {
        std::set<hedge::VarId> vars;
        for (const auto& [x, states] : na.var_map()) vars.insert(x);
        for (const auto& [x, states] : nb.var_map()) vars.insert(x);
        for (const auto& [x, states] : no.var_map()) vars.insert(x);
        check_iota([&](hedge::VarId x) { return na.VariableStates(x); },
                   [&](hedge::VarId x) { return nb.VariableStates(x); },
                   [&](hedge::VarId x) { return no.VariableStates(x); },
                   vars, "var");
      }
      {
        std::set<hedge::SubstId> subs;
        for (const auto& [z, states] : na.subst_map()) subs.insert(z);
        for (const auto& [z, states] : nb.subst_map()) subs.insert(z);
        for (const auto& [z, states] : no.subst_map()) subs.insert(z);
        check_iota([&](hedge::SubstId z) { return na.SubstStates(z); },
                   [&](hedge::SubstId z) { return nb.SubstStates(z); },
                   [&](hedge::SubstId z) { return no.SubstStates(z); },
                   subs, "subst");
      }
      // The union's final NFA is covered semantically by the membership
      // oracle below (re-deriving strre::UnionNfa's layout here would just
      // re-run construction code).
      break;
    }
  }

  // --- Enumeration membership oracle: the output must agree with the
  // operand validators pointwise (out == a OP b) on a bounded-exhaustive
  // plus sampled corpus over the joint vocabulary; for difference the
  // witnessed complement must additionally disagree with b everywhere.
  EnumVocab ev;
  {
    std::set<hedge::SymbolId> syms;
    for (hedge::SymbolId s : a.Symbols()) syms.insert(s);
    for (hedge::SymbolId s : b.Symbols()) syms.insert(s);
    ev.symbols.assign(syms.begin(), syms.end());
    std::set<hedge::VarId> vars;
    for (hedge::VarId v : a.Variables()) vars.insert(v);
    for (hedge::VarId v : b.Variables()) vars.insert(v);
    ev.variables.assign(vars.begin(), vars.end());
  }
  bool disagreed = false;
  auto compare = [&](const hedge::Hedge& h) {
    const bool ina = na.Accepts(h);
    const bool inb = nb.Accepts(h);
    const bool ino = no.Accepts(h);
    bool want = false;
    switch (witness.op) {
      case schema::AlgebraOp::kIntersect:
        want = ina && inb;
        break;
      case schema::AlgebraOp::kUnion:
        want = ina || inb;
        break;
      case schema::AlgebraOp::kDifference:
        want = ina && !inb;
        break;
    }
    if (ino != want) {
      disagreed = true;
      Report(out, DiagnosticCode::kAlgebraWitnessRejected,
             StrCat("hedge/", h.num_nodes()),
             StrCat("output ", ino ? "accepts" : "rejects", " a ",
                    h.num_nodes(),
                    "-node hedge the operand validators say it must ",
                    want ? "accept" : "reject"));
      return false;
    }
    if (witness.op == schema::AlgebraOp::kDifference &&
        witness.complement.Accepts(h) == inb) {
      disagreed = true;
      Report(out, DiagnosticCode::kAlgebraWitnessRejected,
             StrCat("hedge/", h.num_nodes()),
             "witnessed complement agrees with b on a joint-vocabulary "
             "hedge");
      return false;
    }
    return true;
  };
  size_t remaining = 1500;
  for (size_t size = 0; size <= 3 && remaining > 0 && !disagreed; ++size) {
    const size_t emitted = EnumerateHedges(ev, size, remaining, compare);
    remaining -= std::min(remaining, emitted);
  }
  SplitMix64 rng(1);
  for (size_t i = 0; i < 16 && !disagreed; ++i) {
    compare(SampleHedge(ev, 5, rng));
  }
  return out;
}

std::vector<Diagnostic> CheckCertificateLight(const Certificate& cert,
                                              size_t sample_rows) {
  if (cert.kind != CertificateKind::kDeterminize || cert.det.chain.empty()) {
    // No chain (or not a determinize certificate): nothing light to do —
    // fall through to the full checker.
    return CheckCertificate(cert);
  }
  std::vector<Diagnostic> out;
  CheckObserver obs_guard(out);
  const automata::Determinized output{cert.dha, cert.subsets};
  const automata::DeterminizeWitness& witness = cert.det;
  const Nha& input = cert.input;
  const Dha& dha = output.dha;
  const ContentIndex ci = IndexContents(input);
  CombinedClosurePool pool(input, ci);
  if (!DetShape(input, output, witness, ci, out)) return out;

  // --- Digest chain (HQV016): one link per stored set in section order;
  // recomputing every link is O(total set bits) and catches any tampering
  // of a set or a link deterministically.
  const size_t total_sets = output.subsets.size() + witness.h_sets.size() +
                            witness.final_sets.size();
  if (witness.chain.size() != total_sets) {
    Report(out, DiagnosticCode::kDigestChainMismatch, "chain",
           StrCat("chain has ", witness.chain.size(), " links for ",
                  total_sets, " interned sets"));
    return out;
  }
  {
    std::string prev;
    size_t i = 0;
    for (const std::vector<Bitset>* section :
         {&output.subsets, &witness.h_sets, &witness.final_sets}) {
      for (const Bitset& set : *section) {
        prev = DigestChainLink(prev, set);
        if (witness.chain[i] != prev) {
          Report(out, DiagnosticCode::kDigestChainMismatch,
                 StrCat("chain/", i),
                 "digest chain link does not recompute from the stored set");
          return out;
        }
        ++i;
      }
    }
  }

  // --- Deterministic cheap sections: start row, iota, and the full lifted
  // final DFA (so a flipped final bit is still caught in light mode).
  DetHStart(input, dha, witness, ci, pool, out);
  DetIota(input, dha, output.subsets, out);

  // --- Spot checks: a seeded random sample of horizontal rows gets the
  // full transition/assignment re-derivation. The seed folds the chain
  // tail, so the choice is deterministic per certificate but varies across
  // entries.
  std::set<hedge::SymbolId> all_symbols;
  for (const Nha::Rule& rule : input.rules()) all_symbols.insert(rule.symbol);
  for (const auto& [symbol, row] : dha.assign_map()) {
    all_symbols.insert(symbol);
  }
  std::vector<std::vector<uint32_t>> subset_bits(output.subsets.size());
  for (size_t i = 0; i < output.subsets.size(); ++i) {
    subset_bits[i] = output.subsets[i].ToVector();
  }
  const size_t rows = witness.h_sets.size();
  if (rows <= sample_rows + 1) {
    for (HhState h = 0; h < rows; ++h) {
      DetRow(h, input, ci, pool, dha, witness, output.subsets, subset_bits,
             all_symbols, out);
    }
  } else {
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    for (char c : witness.chain.back()) {
      seed = seed * 131 + static_cast<unsigned char>(c);
    }
    SplitMix64 rng(seed);
    std::set<HhState> picked{dha.h_start()};
    while (picked.size() < sample_rows + 1) {
      picked.insert(static_cast<HhState>(rng.Below(rows)));
    }
    for (HhState h : picked) {
      DetRow(h, input, ci, pool, dha, witness, output.subsets, subset_bits,
             all_symbols, out);
    }
  }

  DetFinal(input, dha, output.subsets, subset_bits, witness, out);
  return out;
}

std::vector<Diagnostic> CheckCertificate(const Certificate& cert) {
  switch (cert.kind) {
    case CertificateKind::kDeterminize: {
      automata::Determinized output{cert.dha, cert.subsets};
      return CheckDeterminize(cert.input, output, cert.det);
    }
    case CertificateKind::kTrim:
      return CheckTrim(cert.input, cert.trimmed, cert.trim);
    case CertificateKind::kMinimize:
      return CheckMinimize(cert.min_input, cert.min_output, cert.min);
    case CertificateKind::kContainment: {
      if (!cert.q1.has_value() || !cert.q2.has_value()) {
        std::vector<Diagnostic> out;
        Report(out, DiagnosticCode::kCertificateMalformed, "containment",
               "certificate carries no parsed queries");
        return out;
      }
      schema::Schema schema(cert.input);
      return CheckContainment(schema, *cert.q1, *cert.q2, cert.containment,
                              cert.cont);
    }
    case CertificateKind::kFromNha:
      return CheckFromNha(cert.input, cert.fn_output, cert.fn);
    case CertificateKind::kAlgebra: {
      schema::Schema a(cert.input);
      schema::Schema b(cert.alg_b);
      schema::Schema result(cert.alg_out);
      return CheckAlgebra(a, b, result, cert.alg);
    }
  }
  return CheckTrim(cert.input, cert.trimmed, cert.trim);
}

Status DiagnosticsToStatus(const std::vector<Diagnostic>& diagnostics) {
  if (diagnostics.empty()) return Status::Ok();
  std::string message =
      StrCat("certificate rejected: ", lint::FormatDiagnostic(diagnostics[0]));
  if (diagnostics.size() > 1) {
    message += StrCat(" (+", diagnostics.size() - 1, " more)");
  }
  return Status::Internal(std::move(message));
}

}  // namespace hedgeq::verify
