#ifndef HEDGEQ_VERIFY_CHECKER_H_
#define HEDGEQ_VERIFY_CHECKER_H_

#include <span>
#include <vector>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "hre/compile.h"
#include "lint/diagnostics.h"
#include "query/phr_compile.h"
#include "schema/match_identify.h"
#include "schema/transform.h"
#include "verify/certificate.h"

namespace hedgeq::verify {

/// Independent certificate checkers (translation validation). Each checker
/// re-derives the claimed facts from the construction *input* alone — its
/// own content-NFA offset arithmetic, its own epsilon closures, its own
/// reachability fixpoints — and compares against the construction output
/// and witness. No code is shared with the constructions beyond the core
/// automaton types, so a bug in a construction and the matching bug in its
/// checker would have to be introduced twice, independently.
///
/// Findings use the stable HQV0xx code family (lint/diagnostics.h):
///   HQV001 certificate-malformed            shape/range errors
///   HQV002 subset-transition-incoherent     horizontal step mismatch
///   HQV003 final-set-inconsistent           lifted final DFA mismatch
///   HQV004 assignment-incoherent            assignment / iota mismatch
///   HQV005 trim-witness-mismatch            reach/co-reach or projection
///   HQV006 compile-witness-rejected         Lemma 1 trace accounting
///   HQV007 lazy-audit-mismatch              memoized lazy step mismatch
///   HQV008 projection-homomorphism-violated Theorem 5 product projection
///   HQV010 minimize-witness-rejected        partition not a congruence /
///                                           final language not preserved
///   HQV011 phr-product-incoherent           Theorem 4 class product or
///                                           mirror disagrees with recompute
///   HQV012 containment-certificate-rejected verdict contradicts the product
///                                           witness or its counterexample
///   HQV014 from-nha-witness-rejected        Lemma 2 recurrence replay or
///                                           recompiled-membership mismatch
///   HQV015 algebra-witness-rejected         schema-algebra product/offset
///                                           re-derivation or membership
///                                           oracle disagrees
///   HQV016 digest-chain-mismatch            per-step digest chain of a
///                                           determinize certificate does
///                                           not recompute
///
/// All checks run in time near-linear in the size of the certificate
/// (output automaton + witness sets); an empty result means the
/// certificate is valid.

/// Validates a Theorem 1 subset construction: every horizontal transition,
/// assignment, variable/substitution entry and lifted-final-DFA state of
/// `output` must match an independent recomputation from `input` through
/// the witnessed subsets.
std::vector<lint::Diagnostic> CheckDeterminize(
    const automata::Nha& input, const automata::Determinized& output,
    const automata::DeterminizeWitness& witness);

/// Validates one PruneNha run: re-derives the derivable/co-reachable
/// fixpoints and confirms `output` is exactly the projection of `input`
/// onto the witnessed useful states under the witnessed renaming.
std::vector<lint::Diagnostic> CheckTrim(const automata::Nha& input,
                                        const automata::Nha& output,
                                        const automata::TrimWitness& witness);

/// Validates a Lemma 1 compile trace: the post-order entries must spell a
/// traversal of `expr` (in the compiler's child order) whose per-case
/// state/rule accounting closes exactly on `output`'s totals.
std::vector<lint::Diagnostic> CheckCompile(const hre::Hre& expr,
                                           const automata::Nha& output,
                                           const hre::CompileTrace& trace);

/// Validates a lazy-DHA audit log against `nha`: every recorded cache-miss
/// step (horizontal or assignment) is recomputed independently.
std::vector<lint::Diagnostic> CheckLazyAudit(
    const automata::Nha& nha,
    std::span<const automata::LazyAuditEntry> entries);

/// Validates the Theorem 5 product on one document: the match-identifying
/// automaton's unique run must project (via QOf) onto the shared DHA's run,
/// every claimed state must be assignable by the NHA itself, leaf states
/// must sit exactly on leaves, and marks must agree with the marked-state
/// table.
std::vector<lint::Diagnostic> CheckProjection(
    const schema::MatchIdentifying& mi, const query::CompiledPhr& compiled,
    const hedge::Hedge& doc);

/// Validates one MinimizeDha run: the witnessed partition must be a
/// congruence (h-start, sink, every HNext/Assign/variable/substitution
/// entry commutes through the block maps, no output entry lacks a
/// preimage) and the quotient's final DFA must accept exactly the
/// block-renamed final language of the input — established by a product
/// walk, never by re-running the refinement.
std::vector<lint::Diagnostic> CheckMinimize(
    const automata::Dha& input, const automata::Dha& output,
    const automata::MinimizeWitness& witness);

/// Validates a Theorem 4 compilation end to end: every lifted component
/// DFA against its witnessed final NFA, the class product against an
/// independent tuple walk of the components, the elder/younger acceptance
/// maps against the tuple coordinates, the xi-image substitution against
/// a recomputed regex automaton, and the mirror against a reversed-subset
/// simulation of L.
std::vector<lint::Diagnostic> CheckPhrProduct(
    const phr::Phr& phr, const query::CompiledPhr& compiled,
    const query::PhrWitness& witness);

/// Validates one QueryContainment verdict: on "not contained" the
/// counterexample document must be schema-valid and located by q1 but not
/// q2 (re-evaluated through the naive Definition 22 oracle); on
/// "contained" an independent usable-state fixpoint over the witnessed
/// product must find no state marked by q1 only.
std::vector<lint::Diagnostic> CheckContainment(
    const schema::Schema& schema, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2, const schema::ContainmentResult& result,
    const schema::ContainmentWitness& witness);

/// Validates one Lemma 2 extraction (HQV014): the split table is
/// re-enumerated from the input's rules, every recursive entry of the
/// recurrence witness is replayed structurally from its recorded
/// sub-entries (so a dropped alternative cannot hide), and the emitted
/// expression is recompiled through the independent Lemma 1 pipeline and
/// differentially compared against the source NHA over a bounded-exhaustive
/// plus sampled hedge corpus.
std::vector<lint::Diagnostic> CheckFromNha(const automata::Nha& input,
                                           const hre::Hre& output,
                                           const hre::FromNhaWitness& witness);

/// Validates one schema-algebra operation (HQV015): the pairing product /
/// disjoint-union layout is re-derived with the checker's own code and
/// compared structurally against the witness, the internal prune is
/// re-validated through CheckTrim, and an enumeration oracle cross-checks
/// sampled hedge membership of the output against the operand validators
/// (out == a OP b; for difference also the witnessed complement against
/// NOT b over the joint vocabulary).
std::vector<lint::Diagnostic> CheckAlgebra(const schema::Schema& a,
                                           const schema::Schema& b,
                                           const schema::Schema& out,
                                           const schema::AlgebraWitness& witness);

/// Dispatches a deserialized certificate to the matching checker (after
/// cross-field shape validation).
std::vector<lint::Diagnostic> CheckCertificate(const Certificate& cert);

/// Hash-witness light check (HQV016): for determinize certificates carrying
/// a digest chain, recomputes every DigestChainLink over the stored sets
/// (tampering anywhere is caught deterministically in O(sets)), fully
/// re-derives the lifted final DFA and the iota/start sections (cheap, and
/// keeps a flipped final bit deterministic), and spot-checks
/// `sample_rows` randomly chosen horizontal rows with the full
/// transition/assignment re-derivation. Certificates of any other kind —
/// or without a chain — fall through to the full CheckCertificate. This is
/// the default revalidation mode of the certificate cache; full checking
/// stays available behind --check=full.
std::vector<lint::Diagnostic> CheckCertificateLight(const Certificate& cert,
                                                    size_t sample_rows = 8);

/// Collapses checker findings into a Status for the inline-certification
/// hooks: Ok when empty, kInternal carrying the first finding otherwise.
Status DiagnosticsToStatus(const std::vector<lint::Diagnostic>& diagnostics);

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_CHECKER_H_
