#include "verify/oracle.h"

#include <optional>
#include <set>
#include <string>
#include <utility>

#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "automata/streaming.h"
#include "hre/compile.h"
#include "schema/schema.h"
#include "schema/streaming.h"
#include "util/strings.h"
#include "verify/enumerate.h"
#include "verify/naive_match.h"
#include "xml/xml.h"

namespace hedgeq::verify {

namespace {

using hedge::Hedge;
using hedge::Label;
using hedge::LabelKind;
using hedge::NodeId;

constexpr size_t kMaxFindings = 16;

void CollectLabels(const hre::HreNode* e, std::set<const hre::HreNode*>& seen,
                   std::set<InternId>& symbols, std::set<InternId>& variables,
                   std::set<InternId>& substs) {
  if (e == nullptr || !seen.insert(e).second) return;
  switch (e->kind()) {
    case hre::HreKind::kVariable:
      variables.insert(e->id());
      break;
    case hre::HreKind::kTree:
      symbols.insert(e->id());
      break;
    case hre::HreKind::kSubstLeaf:
      symbols.insert(e->id());
      substs.insert(e->subst());
      break;
    case hre::HreKind::kEmbed:
    case hre::HreKind::kVClose:
      substs.insert(e->subst());
      break;
    default:
      break;
  }
  CollectLabels(e->left().get(), seen, symbols, variables, substs);
  CollectLabels(e->right().get(), seen, symbols, variables, substs);
}

struct Verdict {
  const char* engine;
  bool accepts;
};

// Copies the subtree of `n` into `dst` under `dst_parent`, except `victim`:
// a deleted victim vanishes with its whole subtree, a hoisted victim is
// replaced by its children sequence (spliced in place, in order).
void CopyExceptVictim(const Hedge& src, NodeId n, Hedge& dst,
                      NodeId dst_parent, NodeId victim, bool hoist) {
  if (n == victim) {
    if (hoist) {
      for (NodeId kid : src.ChildrenOf(n)) {
        CopyExceptVictim(src, kid, dst, dst_parent, victim, hoist);
      }
    }
    return;
  }
  NodeId copy = dst.Append(dst_parent, src.label(n));
  for (NodeId kid : src.ChildrenOf(n)) {
    CopyExceptVictim(src, kid, dst, copy, victim, hoist);
  }
}

Hedge WithoutSubtree(const Hedge& h, NodeId victim, bool hoist) {
  Hedge out;
  for (NodeId root : h.roots()) {
    CopyExceptVictim(h, root, out, hedge::kNullNode, victim, hoist);
  }
  return out;
}

}  // namespace

Hedge ShrinkHedge(const Hedge& start,
                  const std::function<bool(const Hedge&)>& still_failing,
                  size_t max_checks, size_t* checks_out) {
  Hedge current = start;
  size_t checks = 0;
  bool reduced = true;
  while (reduced && checks < max_checks) {
    reduced = false;
    for (NodeId n : current.PreOrder()) {
      for (bool hoist : {false, true}) {
        if (hoist && current.first_child(n) == hedge::kNullNode) continue;
        Hedge candidate = WithoutSubtree(current, n, hoist);
        ++checks;
        if (still_failing(candidate)) {
          current = std::move(candidate);
          reduced = true;  // node ids shifted: restart the scan
          break;
        }
        if (checks >= max_checks) break;
      }
      if (reduced || checks >= max_checks) break;
    }
  }
  if (checks_out != nullptr) *checks_out = checks;
  return current;
}

Result<OracleReport> RunDifferentialOracle(const hre::Hre& e,
                                           hedge::Vocabulary& vocab,
                                           const OracleOptions& options) {
  OracleReport report;

  BudgetScope scope(options.budget);
  Result<automata::Nha> nha = hre::CompileHre(e, scope);
  if (!nha.ok()) return nha.status();

  // Label universe: the expression's own labels plus one fresh symbol the
  // language cannot mention, so every tier also exercises rejection.
  EnumVocab ev;
  {
    std::set<const hre::HreNode*> seen;
    std::set<InternId> symbols, variables, substs;
    CollectLabels(e.get(), seen, symbols, variables, substs);
    symbols.insert(vocab.symbols.Intern("_oracle_fresh"));
    ev.symbols.assign(symbols.begin(), symbols.end());
    ev.variables.assign(variables.begin(), variables.end());
    ev.substs.assign(substs.begin(), substs.end());
  }

  // Eager engines, when the budget allows.
  std::optional<automata::Dha> dha;
  {
    Result<automata::Determinized> det = automata::Determinize(*nha, scope);
    if (det.ok()) {
      dha = std::move(det->dha);
      report.eager_available = true;
    } else if (!IsDegradable(det.status().code())) {
      return det.status();
    }
  }
  automata::LazyDha lazy(*nha);
  Result<schema::StreamingValidator> validator =
      schema::StreamingValidator::Create(schema::Schema(*nha),
                                         options.budget);
  if (!validator.ok()) return validator.status();

  // `count` is false for shrinking re-checks: they must not inflate the
  // corpus statistics.
  auto verdicts_of = [&](const Hedge& h, bool count) -> std::vector<Verdict> {
    if (count) ++report.hedges_checked;
    std::vector<Verdict> verdicts;
    verdicts.push_back({"nha", nha->Accepts(h)});
    verdicts.push_back({"lazy", lazy.Accepts(h)});
    if (dha.has_value()) verdicts.push_back({"eager", dha->Accepts(h)});

    std::optional<bool> naive =
        NaiveHreMatch(e, h, NaiveMatchOptions{options.naive_max_steps});
    if (naive.has_value()) {
      verdicts.push_back({"naive", *naive});
    } else if (count) {
      ++report.naive_unknown;
    }

    // Streaming runs consume SAX events, which cannot express substitution
    // leaves; skip those hedges for the streaming tier only.
    bool has_subst = false;
    std::set<hedge::VarId> vars_used;
    for (NodeId n = 0; n < h.num_nodes(); ++n) {
      if (h.label(n).kind == LabelKind::kSubst) has_subst = true;
      if (h.label(n).kind == LabelKind::kVariable) {
        vars_used.insert(h.label(n).id);
      }
    }
    if (!has_subst) {
      if (count) ++report.streaming_checked;
      automata::LazyStreamingRun lazy_stream(lazy);
      std::optional<automata::StreamingDhaRun> eager_stream;
      if (dha.has_value()) eager_stream.emplace(*dha);
      struct Emit {
        const Hedge& h;
        automata::LazyStreamingRun& ls;
        std::optional<automata::StreamingDhaRun>& es;
        void Node(NodeId n) {
          Label label = h.label(n);
          if (label.kind == LabelKind::kSymbol) {
            ls.StartElement(label.id);
            if (es.has_value()) es->StartElement(label.id);
            for (NodeId kid : h.ChildrenOf(n)) Node(kid);
            ls.EndElement(label.id);
            if (es.has_value()) es->EndElement(label.id);
          } else {  // variable leaf (substs were excluded, eta never occurs)
            ls.Text(label.id);
            if (es.has_value()) es->Text(label.id);
          }
        }
      } emit{h, lazy_stream, eager_stream};
      for (NodeId root : h.roots()) emit.Node(root);
      verdicts.push_back({"lazy-stream", lazy_stream.Accepted()});
      if (eager_stream.has_value()) {
        verdicts.push_back({"eager-stream", eager_stream->Accepted()});
      }

      // The XML round-trip maps every text node to one text variable, so it
      // is faithful only for hedges using at most one distinct variable —
      // and XML coalesces adjacent text, so two variable leaves that are
      // consecutive siblings parse back as a single leaf. Skip both.
      bool adjacent_text = false;
      auto scan_siblings = [&](auto&& siblings) {
        bool prev_var = false;
        for (NodeId n : siblings) {
          bool is_var = h.label(n).kind == LabelKind::kVariable;
          if (is_var && prev_var) adjacent_text = true;
          prev_var = is_var;
        }
      };
      scan_siblings(h.roots());
      for (NodeId n = 0; n < h.num_nodes(); ++n) {
        scan_siblings(h.ChildrenOf(n));
      }
      if (h.roots().size() == 1 && vars_used.size() <= 1 && !adjacent_text) {
        xml::XmlDocument doc = xml::WrapHedge(h, vocab);
        xml::XmlParseOptions parse_options;
        if (!vars_used.empty()) {
          parse_options.text_variable =
              vocab.variables.NameOf(*vars_used.begin());
        }
        Result<bool> valid = validator->Validate(
            xml::SerializeXml(doc, vocab), vocab, parse_options);
        if (valid.ok()) {
          if (count) ++report.validator_checked;
          verdicts.push_back({"validator", *valid});
        }
      }
    }
    return verdicts;
  };

  auto disagree = [](const std::vector<Verdict>& verdicts) -> bool {
    for (const Verdict& v : verdicts) {
      if (v.accepts != verdicts[0].accepts) return true;
    }
    return false;
  };

  auto check = [&](const Hedge& h) -> bool {  // false stops the corpus walk
    std::vector<Verdict> verdicts = verdicts_of(h, /*count=*/true);
    if (disagree(verdicts)) {
      Hedge reported = h;
      if (options.shrink) {
        size_t spent = 0;
        Hedge small = ShrinkHedge(
            h,
            [&](const Hedge& candidate) {
              return disagree(verdicts_of(candidate, /*count=*/false));
            },
            options.shrink_max_checks, &spent);
        report.shrink_checks += spent;
        if (small.num_nodes() < h.num_nodes()) {
          reported = std::move(small);
          // Report the verdict panel of the hedge actually named in the
          // finding (engines may flip roles between original and shrunk).
          verdicts = verdicts_of(reported, /*count=*/false);
        }
      }
      lint::Diagnostic d;
      d.severity = lint::Severity::kError;
      d.code = lint::DiagnosticCode::kDifferentialDisagreement;
      d.span = StrCat("hedge/", reported.ToString(vocab));
      std::string message = "engines disagree:";
      for (const Verdict& v : verdicts) {
        message += StrCat(" ", v.engine, "=", v.accepts ? 1 : 0);
      }
      if (reported.num_nodes() < h.num_nodes()) {
        message += StrCat(" (shrunk from ", h.num_nodes(), "-node hedge ",
                          h.ToString(vocab), ")");
      }
      d.message = std::move(message);
      report.diagnostics.push_back(std::move(d));
    }
    return report.diagnostics.size() < kMaxFindings;
  };

  // Tier 1: bounded-exhaustive over all sizes up to max_size.
  bool keep_going = true;
  for (size_t size = 0; size <= options.max_size && keep_going; ++size) {
    size_t cap = options.max_exhaustive - report.enumerated;
    report.enumerated += EnumerateHedges(ev, size, cap, [&](const Hedge& h) {
      keep_going = check(h);
      return keep_going;
    });
  }

  // Tier 2: uniform samples at a size the exhaustive tier cannot reach.
  SplitMix64 rng(options.seed);
  for (size_t i = 0; i < options.samples && keep_going; ++i) {
    Hedge h = SampleHedge(ev, options.sample_size, rng);
    if (h.empty() && options.sample_size > 0) break;  // empty vocabulary
    ++report.sampled;
    keep_going = check(h);
  }

  return report;
}

namespace {

// One engine's located node set for a document.
struct NodeSetVerdict {
  const char* engine;
  std::vector<bool> located;
};

std::string FormatNodeSet(const std::vector<bool>& located) {
  std::string out = "{";
  bool first = true;
  for (size_t n = 0; n < located.size(); ++n) {
    if (!located[n]) continue;
    if (!first) out += ",";
    out += StrCat(n);
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

Result<SelectionOracleReport> RunSelectionOracle(
    const query::SelectionQuery& query, hedge::Vocabulary& vocab,
    const OracleOptions& options) {
  SelectionOracleReport report;

  // Label universe: every label of the subhedge expression and of the
  // triplets (conditions and element labels), plus one fresh symbol.
  EnumVocab ev;
  {
    std::set<const hre::HreNode*> seen;
    std::set<InternId> symbols, variables, substs;
    CollectLabels(query.subhedge.get(), seen, symbols, variables, substs);
    for (const phr::PointedBaseRep& t : query.envelope.triplets()) {
      symbols.insert(t.label);
      CollectLabels(t.elder.get(), seen, symbols, variables, substs);
      CollectLabels(t.younger.get(), seen, symbols, variables, substs);
    }
    symbols.insert(vocab.symbols.Intern("_oracle_fresh"));
    ev.symbols.assign(symbols.begin(), symbols.end());
    ev.variables.assign(variables.begin(), variables.end());
    ev.substs.assign(substs.begin(), substs.end());
  }

  // Panel: production evaluator under the caller's budget, the same
  // evaluator forced onto its lazy engines by a starvation budget, the
  // NaivePhrMatcher-based reference, and the independent enumerator.
  Result<query::SelectionEvaluator> eager =
      query::SelectionEvaluator::Create(query, options.budget);
  if (!eager.ok()) return eager.status();
  report.eager_available = !eager->fallback_used();
  std::optional<query::SelectionEvaluator> lazy;
  {
    ExecBudget starve = options.budget;
    starve.max_states = 1;
    Result<query::SelectionEvaluator> forced =
        query::SelectionEvaluator::Create(query, starve);
    if (forced.ok()) {
      lazy = std::move(forced).value();
    } else if (!IsDegradable(forced.status().code())) {
      return forced.status();
    }
  }
  query::NaiveSelectionEvaluator matcher(query);

  auto panel_of = [&](const Hedge& h,
                      bool count) -> std::vector<NodeSetVerdict> {
    if (count) ++report.hedges_checked;
    std::vector<NodeSetVerdict> panel;
    panel.push_back({"evaluator", eager->Locate(h)});
    if (lazy.has_value()) panel.push_back({"lazy", lazy->Locate(h)});
    panel.push_back({"matcher", matcher.Locate(h)});
    std::optional<std::vector<bool>> naive = NaiveSelectionLocate(
        query, h, NaiveMatchOptions{options.naive_max_steps});
    if (naive.has_value()) {
      panel.push_back({"naive", std::move(naive).value()});
    } else if (count) {
      ++report.naive_unknown;
    }
    return panel;
  };

  // First node where any engine's set differs from the first engine's;
  // nullopt when the panel agrees everywhere.
  auto first_disagreement =
      [](const std::vector<NodeSetVerdict>& panel) -> std::optional<NodeId> {
    for (const NodeSetVerdict& v : panel) {
      for (size_t n = 0; n < v.located.size(); ++n) {
        if (v.located[n] != panel[0].located[n]) {
          return static_cast<NodeId>(n);
        }
      }
    }
    return std::nullopt;
  };

  auto check = [&](const Hedge& h) -> bool {  // false stops the corpus walk
    std::vector<NodeSetVerdict> panel = panel_of(h, /*count=*/true);
    std::optional<NodeId> node = first_disagreement(panel);
    if (node.has_value()) {
      Hedge reported = h;
      if (options.shrink) {
        size_t spent = 0;
        Hedge small = ShrinkHedge(
            h,
            [&](const Hedge& candidate) {
              return first_disagreement(panel_of(candidate, /*count=*/false))
                  .has_value();
            },
            options.shrink_max_checks, &spent);
        report.shrink_checks += spent;
        if (small.num_nodes() < h.num_nodes()) {
          reported = std::move(small);
          panel = panel_of(reported, /*count=*/false);
          node = first_disagreement(panel);
        }
      }
      lint::Diagnostic d;
      d.severity = lint::Severity::kError;
      d.code = lint::DiagnosticCode::kSelectionDisagreement;
      d.span = StrCat("hedge/", reported.ToString(vocab));
      std::string message =
          StrCat("selection engines disagree at node ", node.value_or(0), ":");
      for (const NodeSetVerdict& v : panel) {
        message += StrCat(" ", v.engine, "=", FormatNodeSet(v.located));
      }
      if (reported.num_nodes() < h.num_nodes()) {
        message += StrCat(" (shrunk from ", h.num_nodes(), "-node hedge ",
                          h.ToString(vocab), ")");
      }
      d.message = std::move(message);
      report.diagnostics.push_back(std::move(d));
    }
    return report.diagnostics.size() < kMaxFindings;
  };

  bool keep_going = true;
  for (size_t size = 0; size <= options.max_size && keep_going; ++size) {
    size_t cap = options.max_exhaustive - report.enumerated;
    report.enumerated += EnumerateHedges(ev, size, cap, [&](const Hedge& h) {
      keep_going = check(h);
      return keep_going;
    });
  }
  SplitMix64 rng(options.seed);
  for (size_t i = 0; i < options.samples && keep_going; ++i) {
    Hedge h = SampleHedge(ev, options.sample_size, rng);
    if (h.empty() && options.sample_size > 0) break;  // empty vocabulary
    ++report.sampled;
    keep_going = check(h);
  }

  return report;
}

}  // namespace hedgeq::verify
