#ifndef HEDGEQ_VERIFY_ENUMERATE_H_
#define HEDGEQ_VERIFY_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hedge/hedge.h"

namespace hedgeq::verify {

/// The label universe hedges are drawn from.
struct EnumVocab {
  std::vector<hedge::SymbolId> symbols;
  std::vector<hedge::VarId> variables;
  std::vector<hedge::SubstId> substs;
};

/// Number of trees with exactly `size` nodes over `vocab`:
///   T(1) = |S| + |V| + |Z|,  T(n) = |S| * H(n-1).
uint64_t CountTrees(const EnumVocab& vocab, size_t size);

/// Number of hedges with exactly `size` nodes over `vocab`:
///   H(0) = 1,  H(n) = sum_{t=1..n} T(t) * H(n-t).
uint64_t CountHedges(const EnumVocab& vocab, size_t size);

/// Emits every hedge with exactly `size` nodes, in a fixed deterministic
/// order, until `fn` returns false or `max_count` hedges have been emitted.
/// Returns the number emitted.
size_t EnumerateHedges(const EnumVocab& vocab, size_t size, size_t max_count,
                       const std::function<bool(const hedge::Hedge&)>& fn);

/// Deterministic splittable PRNG (splitmix64) — the oracle's only source of
/// randomness, so runs reproduce from a seed.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

 private:
  uint64_t state_;
};

/// Uniform sample among the hedges with exactly `size` nodes, using the
/// counting recurrences to weight the first-tree split. Returns an empty
/// hedge when no hedge of that size exists (empty vocabulary).
hedge::Hedge SampleHedge(const EnumVocab& vocab, size_t size,
                         SplitMix64& rng);

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_ENUMERATE_H_
