#ifndef HEDGEQ_VERIFY_NAIVE_MATCH_H_
#define HEDGEQ_VERIFY_NAIVE_MATCH_H_

#include <cstddef>
#include <optional>

#include "hedge/hedge.h"
#include "hre/ast.h"

namespace hedgeq::verify {

struct NaiveMatchOptions {
  // Total Match/MatchSubst invocations before giving up. The matcher is
  // exponential by design; the oracle treats overruns as "unknown".
  size_t max_steps = size_t{1} << 22;
};

/// Reference matcher: decides hedge membership directly from Definition 11's
/// language equations — all concat splits, explicit star unrolling, and a
/// persistent binding environment for @z / ^z substitution, with embedding
/// expressions captured at binding time. Shares nothing with the automaton
/// pipeline, so it is a fully independent oracle for CompileHre + Determinize.
///
/// Returns nullopt when the step budget is exhausted before a verdict.
std::optional<bool> NaiveHreMatch(const hre::Hre& e, const hedge::Hedge& h,
                                  const NaiveMatchOptions& options = {});

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_NAIVE_MATCH_H_
