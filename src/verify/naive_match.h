#ifndef HEDGEQ_VERIFY_NAIVE_MATCH_H_
#define HEDGEQ_VERIFY_NAIVE_MATCH_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "hedge/hedge.h"
#include "hre/ast.h"
#include "query/selection.h"

namespace hedgeq::verify {

struct NaiveMatchOptions {
  // Total Match/MatchSubst invocations before giving up. The matcher is
  // exponential by design; the oracle treats overruns as "unknown".
  size_t max_steps = size_t{1} << 22;
};

/// Reference matcher: decides hedge membership directly from Definition 11's
/// language equations — all concat splits, explicit star unrolling, and a
/// persistent binding environment for @z / ^z substitution, with embedding
/// expressions captured at binding time. Shares nothing with the automaton
/// pipeline, so it is a fully independent oracle for CompileHre + Determinize.
///
/// Returns nullopt when the step budget is exhausted before a verdict.
std::optional<bool> NaiveHreMatch(const hre::Hre& e, const hedge::Hedge& h,
                                  const NaiveMatchOptions& options = {});

/// Reference selection evaluator: Definition 22 computed literally, per
/// node — the subhedge condition via NaiveHreMatch on the extracted
/// subhedge, the envelope condition by decomposing the extracted envelope
/// into pointed bases and testing every triplet with NaiveHreMatch, then
/// simulating the PHR regex over the resulting letter choices with a local
/// marked-set walk. Shares nothing with the Theorem 3/4 evaluator pipeline
/// (no DHA, no class product, no mirror automaton), so it anchors the
/// selection-semantics oracle and CheckContainment's counterexample replay.
///
/// located[n] == true iff node n is located. Returns nullopt when some
/// triplet test exhausts the step budget before a verdict.
std::optional<std::vector<bool>> NaiveSelectionLocate(
    const query::SelectionQuery& query, const hedge::Hedge& doc,
    const NaiveMatchOptions& options = {});

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_NAIVE_MATCH_H_
