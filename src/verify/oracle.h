#ifndef HEDGEQ_VERIFY_ORACLE_H_
#define HEDGEQ_VERIFY_ORACLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hedge/hedge.h"
#include "hre/ast.h"
#include "lint/diagnostics.h"
#include "query/selection.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::verify {

struct OracleOptions {
  /// Bounded-exhaustive enumeration covers every hedge of up to this many
  /// nodes (over the expression's labels plus one fresh symbol), capped at
  /// `max_exhaustive` hedges overall.
  size_t max_size = 3;
  size_t max_exhaustive = 4000;
  /// On top of the exhaustive tier: uniformly sampled hedges of exactly
  /// `sample_size` nodes, via the tree-counting recurrences.
  size_t samples = 32;
  size_t sample_size = 6;
  uint64_t seed = 1;
  /// Step cap for the exponential reference matcher; overruns are counted
  /// as unknown and skipped, never flagged.
  size_t naive_max_steps = size_t{1} << 22;
  /// Budget for compilation/determinization; eager-engine exhaustion
  /// degrades to lazy-only comparison instead of failing.
  ExecBudget budget;
  /// On an HQV009 disagreement, greedily delta-debug the hedge — delete a
  /// subtree (including whole top-level trees) or hoist a node's children
  /// into its place — re-checking every candidate with the same engine
  /// panel, and report the smallest hedge that still disagrees alongside
  /// the original. Re-checks are capped at `shrink_max_checks` per
  /// finding; the cap only limits how small the counterexample gets.
  bool shrink = true;
  size_t shrink_max_checks = 256;
};

struct OracleReport {
  /// HQV009 findings, one per disagreeing hedge (capped).
  std::vector<lint::Diagnostic> diagnostics;
  size_t hedges_checked = 0;
  size_t enumerated = 0;
  size_t sampled = 0;
  size_t naive_unknown = 0;    // reference matcher hit its step cap
  size_t streaming_checked = 0;
  size_t validator_checked = 0;
  size_t shrink_checks = 0;    // candidate re-evaluations spent shrinking
  /// False when eager determinization blew the budget (lazy engines still
  /// cross-check the NHA and the reference matcher).
  bool eager_available = false;

  bool ok() const { return diagnostics.empty(); }
};

/// Differential testing of the whole pipeline on one expression: every
/// engine that can decide membership — the naive reference matcher, direct
/// NHA simulation, the eager DHA, StreamingDhaRun, LazyDha, LazyStreamingRun
/// and (where the hedge is XML-representable) StreamingValidator — runs over
/// a bounded-exhaustive plus random-sampled hedge corpus; any disagreement
/// is an HQV009 finding naming the hedge and each engine's verdict.
/// Fails only on setup errors (e.g. the expression does not compile).
Result<OracleReport> RunDifferentialOracle(const hre::Hre& e,
                                           hedge::Vocabulary& vocab,
                                           const OracleOptions& options = {});

struct SelectionOracleReport {
  /// HQV013 findings, one per hedge on which the engines' located node
  /// sets differ (capped).
  std::vector<lint::Diagnostic> diagnostics;
  size_t hedges_checked = 0;
  size_t enumerated = 0;
  size_t sampled = 0;
  size_t naive_unknown = 0;  // reference evaluator hit its step cap
  size_t shrink_checks = 0;
  /// False when the production evaluator degraded to a lazy engine; the
  /// explicitly lazy panel member then still covers that code path twice.
  bool eager_available = false;

  bool ok() const { return diagnostics.empty(); }
};

/// Differential testing of *selection semantics* (Definition 22): every
/// engine that can locate nodes — the Theorem 3/4 production evaluator
/// (PhrEvaluator + subhedge DHA), the same evaluator forced onto its lazy
/// engines, the NaivePhrMatcher-based reference evaluator, and the fully
/// independent naive marked-computation enumerator
/// (verify::NaiveSelectionLocate) — runs over the same bounded-exhaustive
/// plus random-sampled corpus as RunDifferentialOracle, and the located
/// node sets are compared element by element. Any difference is an HQV013
/// finding naming the hedge, the first disagreeing node and each engine's
/// node set; with options.shrink the hedge is delta-debugged first under
/// the predicate "the panel still disagrees on some node".
Result<SelectionOracleReport> RunSelectionOracle(
    const query::SelectionQuery& query, hedge::Vocabulary& vocab,
    const OracleOptions& options = {});

/// Greedy delta debugging over hedges: repeatedly applies the smallest
/// structural reductions — delete a subtree (including a whole top-level
/// tree) or hoist a node's children into its place — keeping a reduction
/// whenever `still_failing` holds on the result, until none survives
/// (the result is 1-minimal w.r.t. these operations) or `max_checks`
/// predicate evaluations are spent. `checks`, when non-null, receives the
/// number spent. This is how the oracle shrinks HQV009 counterexamples;
/// exposed for any property-based harness with a hedge-shaped input.
hedge::Hedge ShrinkHedge(
    const hedge::Hedge& start,
    const std::function<bool(const hedge::Hedge&)>& still_failing,
    size_t max_checks, size_t* checks = nullptr);

}  // namespace hedgeq::verify

#endif  // HEDGEQ_VERIFY_ORACLE_H_
