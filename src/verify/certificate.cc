#include "verify/certificate.h"

#include <algorithm>

#include "automata/serialize.h"
#include "util/strings.h"

namespace hedgeq::verify {

using automata::Dha;
using automata::Nha;

namespace {

size_t CountLines(std::string_view text) {
  return static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
}

void WriteBitset(std::string& out, const char* tag, const Bitset& b) {
  out += StrCat(tag, " ", b.size());
  for (uint32_t i : b.ToVector()) out += StrCat(" ", i);
  out += "\n";
}

void WriteBitsetList(std::string& out, const char* tag,
                     const std::vector<Bitset>& sets) {
  out += StrCat(tag, " ", sets.size(), "\n");
  for (const Bitset& b : sets) WriteBitset(out, "set", b);
}

void WriteU32List(std::string& out, const char* tag,
                  const std::vector<uint32_t>& values) {
  out += StrCat(tag, " ", values.size());
  for (uint32_t v : values) out += StrCat(" ", v);
  out += "\n";
}

// Embeds free-form text under a line-count prefix, normalizing to a
// trailing newline so the count is exact.
void WriteEmbedded(std::string& out, const char* tag, std::string_view text) {
  std::string body(text);
  if (body.empty() || body.back() != '\n') body += '\n';
  out += StrCat(tag, " ", CountLines(body), "\n");
  out += body;
}

Bitset BoolsToBitset(const std::vector<bool>& v) {
  Bitset b(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) b.Set(static_cast<uint32_t>(i));
  }
  return b;
}

std::vector<bool> BitsetToBools(const Bitset& b) {
  std::vector<bool> v(b.size(), false);
  for (uint32_t i : b.ToVector()) v[i] = true;
  return v;
}

const char* KindWord(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kDeterminize:
      return "determinize";
    case CertificateKind::kTrim:
      return "trim";
    case CertificateKind::kMinimize:
      return "minimize";
    case CertificateKind::kContainment:
      return "containment";
  }
  return "?";
}

Result<uint32_t> ParseU32(const std::string& field) {
  if (field.empty()) return Status::InvalidArgument("empty number field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("expected a number, got '", field, "'"));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) {
      return Status::InvalidArgument(StrCat("number too large: ", field));
    }
  }
  return static_cast<uint32_t>(value);
}

// Cursor over the raw lines of a certificate, able both to parse directive
// lines and to slice out a length-prefixed embedded document verbatim.
class CertReader {
 public:
  explicit CertReader(std::string_view text) : lines_(StrSplit(text, '\n')) {}

  Result<std::vector<std::string>> Next() {
    while (index_ < lines_.size()) {
      std::string_view stripped = StripAsciiWhitespace(lines_[index_]);
      ++index_;
      if (stripped.empty() || stripped[0] == '#') continue;
      std::vector<std::string> fields;
      for (std::string& f : StrSplit(stripped, ' ')) {
        if (!f.empty()) fields.push_back(std::move(f));
      }
      return fields;
    }
    return Status::InvalidArgument("unexpected end of certificate text");
  }

  // The next `count` raw lines, rejoined verbatim.
  Result<std::string> TakeLines(size_t count) {
    if (index_ + count > lines_.size()) {
      return Status::InvalidArgument("certificate section truncated");
    }
    std::string out;
    for (size_t i = 0; i < count; ++i) {
      out += lines_[index_ + i];
      out += '\n';
    }
    index_ += count;
    return out;
  }

  size_t line() const { return index_; }

 private:
  std::vector<std::string> lines_;
  size_t index_ = 0;
};

Result<Bitset> ReadBitset(const std::vector<std::string>& fields,
                          const char* tag) {
  if (fields.size() < 2 || fields[0] != tag) {
    return Status::InvalidArgument(
        StrCat("expected '", tag, " <bits> <idx>...'"));
  }
  Result<uint32_t> bits = ParseU32(fields[1]);
  if (!bits.ok()) return bits.status();
  Bitset b(*bits);
  for (size_t i = 2; i < fields.size(); ++i) {
    Result<uint32_t> idx = ParseU32(fields[i]);
    if (!idx.ok()) return idx.status();
    if (*idx >= *bits) {
      return Status::InvalidArgument(
          StrCat(tag, " bit index ", *idx, " out of range (", *bits, ")"));
    }
    b.Set(*idx);
  }
  return b;
}

Result<std::vector<Bitset>> ReadBitsetList(CertReader& reader,
                                           const char* tag) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 2 || (*header)[0] != tag) {
    return Status::InvalidArgument(StrCat("expected '", tag, " <count>'"));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  std::vector<Bitset> sets;
  sets.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    Result<Bitset> b = ReadBitset(*fields, "set");
    if (!b.ok()) return b.status();
    sets.push_back(std::move(b).value());
  }
  return sets;
}

Result<std::vector<uint32_t>> ReadU32List(CertReader& reader,
                                          const char* tag) {
  Result<std::vector<std::string>> fields = reader.Next();
  if (!fields.ok()) return fields.status();
  if (fields->size() < 2 || (*fields)[0] != tag) {
    return Status::InvalidArgument(StrCat("expected '", tag, " <n> ...'"));
  }
  Result<uint32_t> n = ParseU32((*fields)[1]);
  if (!n.ok()) return n.status();
  if (fields->size() != 2 + static_cast<size_t>(*n)) {
    return Status::InvalidArgument(StrCat(tag, " entry count mismatch"));
  }
  std::vector<uint32_t> values;
  values.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    Result<uint32_t> v = ParseU32((*fields)[2 + i]);
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

// Reads an embedded, line-count-prefixed document ("<tag> <count>" followed
// by that many verbatim lines).
Result<std::string> ReadEmbedded(CertReader& reader, const char* tag) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 2 || (*header)[0] != tag) {
    return Status::InvalidArgument(
        StrCat("expected '", tag, " <line-count>' near line ",
               reader.line()));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  return reader.TakeLines(*count);
}

}  // namespace

Result<Certificate> BuildDeterminizeCertificate(const automata::Nha& input,
                                                BudgetScope& scope) {
  Certificate cert;
  cert.kind = CertificateKind::kDeterminize;
  cert.input = input;
  automata::DeterminizeWitness witness;
  Result<automata::Determinized> det =
      automata::Determinize(input, scope, &witness);
  if (!det.ok()) return det.status();
  cert.dha = std::move(det->dha);
  cert.subsets = std::move(det->subsets);
  cert.det = std::move(witness);
  return cert;
}

Certificate BuildTrimCertificate(const automata::Nha& input) {
  Certificate cert;
  cert.kind = CertificateKind::kTrim;
  cert.input = input;
  cert.trimmed = automata::PruneNha(input, nullptr, &cert.trim);
  return cert;
}

Certificate BuildMinimizeCertificate(const automata::Dha& input) {
  Certificate cert;
  cert.kind = CertificateKind::kMinimize;
  cert.min_input = input;
  cert.min_output = automata::MinimizeDha(input, &cert.min);
  return cert;
}

Result<Certificate> BuildContainmentCertificate(const schema::Schema& schema,
                                                std::string_view q1_text,
                                                std::string_view q2_text,
                                                hedge::Vocabulary& vocab,
                                                const ExecBudget& options) {
  Certificate cert;
  cert.kind = CertificateKind::kContainment;
  cert.input = schema.nha();
  cert.q1_text = std::string(q1_text);
  cert.q2_text = std::string(q2_text);
  Result<query::SelectionQuery> q1 = query::ParseSelectionQuery(q1_text, vocab);
  if (!q1.ok()) return q1.status();
  Result<query::SelectionQuery> q2 = query::ParseSelectionQuery(q2_text, vocab);
  if (!q2.ok()) return q2.status();
  cert.q1 = std::move(q1).value();
  cert.q2 = std::move(q2).value();
  Result<schema::ContainmentResult> verdict =
      schema::QueryContainment(schema, *cert.q1, *cert.q2, options, &cert.cont);
  if (!verdict.ok()) return verdict.status();
  cert.containment = std::move(verdict).value();
  return cert;
}

std::string SerializeCertificate(const Certificate& cert,
                                 const hedge::Vocabulary& vocab) {
  std::string out = StrCat("cert 1 ", KindWord(cert.kind), "\n");
  if (cert.kind == CertificateKind::kMinimize) {
    WriteEmbedded(out, "dhain", automata::SerializeDha(cert.min_input, vocab));
    WriteEmbedded(out, "dhaout",
                  automata::SerializeDha(cert.min_output, vocab));
    WriteU32List(out, "qblock", cert.min.qblock);
    WriteU32List(out, "hblock", cert.min.hblock);
    out += "end\n";
    return out;
  }
  std::string input_text = automata::SerializeNha(cert.input, vocab);
  out += StrCat("input ", CountLines(input_text), "\n");
  out += input_text;
  if (cert.kind == CertificateKind::kContainment) {
    WriteEmbedded(out, "q1", cert.q1_text);
    WriteEmbedded(out, "q2", cert.q2_text);
    out += StrCat("verdict ",
                  cert.containment.contained ? "contained" : "separated",
                  "\n");
    WriteEmbedded(out, "product", automata::SerializeNha(cert.cont.product,
                                                         vocab));
    WriteBitset(out, "marked1", BoolsToBitset(cert.cont.marked1));
    WriteBitset(out, "marked2", BoolsToBitset(cert.cont.marked2));
    if (cert.containment.counterexample.has_value()) {
      WriteEmbedded(out, "counterexample",
                    cert.containment.counterexample->document.ToString(vocab));
      out += StrCat("located ", cert.containment.counterexample->located,
                    "\n");
    }
    out += "end\n";
    return out;
  }
  if (cert.kind == CertificateKind::kDeterminize) {
    std::string dha_text = automata::SerializeDha(cert.dha, vocab);
    out += StrCat("dha ", CountLines(dha_text), "\n");
    out += dha_text;
    WriteBitsetList(out, "subsets", cert.subsets);
    WriteBitsetList(out, "hsets", cert.det.h_sets);
    WriteBitsetList(out, "finalsets", cert.det.final_sets);
  } else {
    std::string trimmed_text = automata::SerializeNha(cert.trimmed, vocab);
    out += StrCat("trimmed ", CountLines(trimmed_text), "\n");
    out += trimmed_text;
    WriteBitset(out, "derivable", cert.trim.derivable);
    WriteBitset(out, "useful", cert.trim.useful);
    std::string mapping = StrCat("mapping ", cert.trim.mapping.size());
    for (automata::HState q : cert.trim.mapping) {
      mapping += q == strre::kNoState ? std::string(" -")
                                      : StrCat(" ", q);
    }
    out += mapping + "\n";
  }
  out += "end\n";
  return out;
}

Result<Certificate> DeserializeCertificate(std::string_view text,
                                           hedge::Vocabulary& vocab) {
  CertReader reader(text);
  Result<std::vector<std::string>> magic = reader.Next();
  if (!magic.ok()) return magic.status();
  if (magic->size() != 3 || (*magic)[0] != "cert" || (*magic)[1] != "1") {
    return Status::InvalidArgument("expected 'cert 1 <kind>' header");
  }
  Certificate cert;
  if ((*magic)[2] == "determinize") {
    cert.kind = CertificateKind::kDeterminize;
  } else if ((*magic)[2] == "trim") {
    cert.kind = CertificateKind::kTrim;
  } else if ((*magic)[2] == "minimize") {
    cert.kind = CertificateKind::kMinimize;
  } else if ((*magic)[2] == "containment") {
    cert.kind = CertificateKind::kContainment;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown certificate kind '", (*magic)[2], "'"));
  }

  if (cert.kind == CertificateKind::kMinimize) {
    Result<std::string> in_text = ReadEmbedded(reader, "dhain");
    if (!in_text.ok()) return in_text.status();
    Result<Dha> in_dha = automata::DeserializeDha(*in_text, vocab);
    if (!in_dha.ok()) return in_dha.status();
    cert.min_input = std::move(in_dha).value();
    Result<std::string> out_text = ReadEmbedded(reader, "dhaout");
    if (!out_text.ok()) return out_text.status();
    Result<Dha> out_dha = automata::DeserializeDha(*out_text, vocab);
    if (!out_dha.ok()) return out_dha.status();
    cert.min_output = std::move(out_dha).value();
    Result<std::vector<uint32_t>> qblock = ReadU32List(reader, "qblock");
    if (!qblock.ok()) return qblock.status();
    cert.min.qblock = std::move(qblock).value();
    Result<std::vector<uint32_t>> hblock = ReadU32List(reader, "hblock");
    if (!hblock.ok()) return hblock.status();
    cert.min.hblock = std::move(hblock).value();
    Result<std::vector<std::string>> tail = reader.Next();
    if (!tail.ok()) return tail.status();
    if (tail->size() != 1 || (*tail)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  Result<std::string> input_text = ReadEmbedded(reader, "input");
  if (!input_text.ok()) return input_text.status();
  Result<Nha> input = automata::DeserializeNha(*input_text, vocab);
  if (!input.ok()) return input.status();
  cert.input = std::move(input).value();

  if (cert.kind == CertificateKind::kContainment) {
    Result<std::string> q1_text = ReadEmbedded(reader, "q1");
    if (!q1_text.ok()) return q1_text.status();
    cert.q1_text = std::move(q1_text).value();
    Result<std::string> q2_text = ReadEmbedded(reader, "q2");
    if (!q2_text.ok()) return q2_text.status();
    cert.q2_text = std::move(q2_text).value();
    Result<query::SelectionQuery> q1 =
        query::ParseSelectionQuery(StripAsciiWhitespace(cert.q1_text), vocab);
    if (!q1.ok()) return q1.status();
    cert.q1 = std::move(q1).value();
    Result<query::SelectionQuery> q2 =
        query::ParseSelectionQuery(StripAsciiWhitespace(cert.q2_text), vocab);
    if (!q2.ok()) return q2.status();
    cert.q2 = std::move(q2).value();
    Result<std::vector<std::string>> verdict = reader.Next();
    if (!verdict.ok()) return verdict.status();
    if (verdict->size() != 2 || (*verdict)[0] != "verdict" ||
        ((*verdict)[1] != "contained" && (*verdict)[1] != "separated")) {
      return Status::InvalidArgument(
          "expected 'verdict contained|separated'");
    }
    cert.containment.contained = (*verdict)[1] == "contained";
    Result<std::string> product_text = ReadEmbedded(reader, "product");
    if (!product_text.ok()) return product_text.status();
    Result<Nha> product = automata::DeserializeNha(*product_text, vocab);
    if (!product.ok()) return product.status();
    cert.cont.product = std::move(product).value();
    Result<std::vector<std::string>> m1 = reader.Next();
    if (!m1.ok()) return m1.status();
    Result<Bitset> m1_bits = ReadBitset(*m1, "marked1");
    if (!m1_bits.ok()) return m1_bits.status();
    cert.cont.marked1 = BitsetToBools(*m1_bits);
    Result<std::vector<std::string>> m2 = reader.Next();
    if (!m2.ok()) return m2.status();
    Result<Bitset> m2_bits = ReadBitset(*m2, "marked2");
    if (!m2_bits.ok()) return m2_bits.status();
    cert.cont.marked2 = BitsetToBools(*m2_bits);
    Result<std::vector<std::string>> next = reader.Next();
    if (!next.ok()) return next.status();
    if (next->size() == 2 && (*next)[0] == "counterexample") {
      Result<uint32_t> count = ParseU32((*next)[1]);
      if (!count.ok()) return count.status();
      Result<std::string> doc_text = reader.TakeLines(*count);
      if (!doc_text.ok()) return doc_text.status();
      Result<hedge::Hedge> doc = hedge::ParseHedge(*doc_text, vocab);
      if (!doc.ok()) return doc.status();
      Result<std::vector<std::string>> located = reader.Next();
      if (!located.ok()) return located.status();
      if (located->size() != 2 || (*located)[0] != "located") {
        return Status::InvalidArgument("expected 'located <node>'");
      }
      Result<uint32_t> node = ParseU32((*located)[1]);
      if (!node.ok()) return node.status();
      cert.containment.counterexample =
          schema::SampleMatch{std::move(doc).value(), *node};
      next = reader.Next();
      if (!next.ok()) return next.status();
    }
    if (next->size() != 1 || (*next)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  if (cert.kind == CertificateKind::kDeterminize) {
    Result<std::string> dha_text = ReadEmbedded(reader, "dha");
    if (!dha_text.ok()) return dha_text.status();
    Result<Dha> dha = automata::DeserializeDha(*dha_text, vocab);
    if (!dha.ok()) return dha.status();
    cert.dha = std::move(dha).value();
    Result<std::vector<Bitset>> subsets = ReadBitsetList(reader, "subsets");
    if (!subsets.ok()) return subsets.status();
    cert.subsets = std::move(subsets).value();
    Result<std::vector<Bitset>> h_sets = ReadBitsetList(reader, "hsets");
    if (!h_sets.ok()) return h_sets.status();
    cert.det.h_sets = std::move(h_sets).value();
    Result<std::vector<Bitset>> final_sets =
        ReadBitsetList(reader, "finalsets");
    if (!final_sets.ok()) return final_sets.status();
    cert.det.final_sets = std::move(final_sets).value();
  } else {
    Result<std::string> trimmed_text = ReadEmbedded(reader, "trimmed");
    if (!trimmed_text.ok()) return trimmed_text.status();
    Result<Nha> trimmed = automata::DeserializeNha(*trimmed_text, vocab);
    if (!trimmed.ok()) return trimmed.status();
    cert.trimmed = std::move(trimmed).value();
    Result<std::vector<std::string>> derivable = reader.Next();
    if (!derivable.ok()) return derivable.status();
    Result<Bitset> derivable_bits = ReadBitset(*derivable, "derivable");
    if (!derivable_bits.ok()) return derivable_bits.status();
    cert.trim.derivable = std::move(derivable_bits).value();
    Result<std::vector<std::string>> useful = reader.Next();
    if (!useful.ok()) return useful.status();
    Result<Bitset> useful_bits = ReadBitset(*useful, "useful");
    if (!useful_bits.ok()) return useful_bits.status();
    cert.trim.useful = std::move(useful_bits).value();
    Result<std::vector<std::string>> mapping = reader.Next();
    if (!mapping.ok()) return mapping.status();
    if (mapping->size() < 2 || (*mapping)[0] != "mapping") {
      return Status::InvalidArgument("expected 'mapping <n> ...'");
    }
    Result<uint32_t> n = ParseU32((*mapping)[1]);
    if (!n.ok()) return n.status();
    if (mapping->size() != 2 + static_cast<size_t>(*n)) {
      return Status::InvalidArgument("mapping entry count mismatch");
    }
    cert.trim.mapping.reserve(*n);
    for (uint32_t i = 0; i < *n; ++i) {
      const std::string& field = (*mapping)[2 + i];
      if (field == "-") {
        cert.trim.mapping.push_back(strre::kNoState);
      } else {
        Result<uint32_t> q = ParseU32(field);
        if (!q.ok()) return q.status();
        cert.trim.mapping.push_back(*q);
      }
    }
  }

  Result<std::vector<std::string>> tail = reader.Next();
  if (!tail.ok()) return tail.status();
  if (tail->size() != 1 || (*tail)[0] != "end") {
    return Status::InvalidArgument("expected 'end' trailer");
  }
  return cert;
}

}  // namespace hedgeq::verify
