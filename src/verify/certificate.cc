#include "verify/certificate.h"

#include <algorithm>

#include "automata/serialize.h"
#include "util/strings.h"

namespace hedgeq::verify {

using automata::Dha;
using automata::Nha;

namespace {

size_t CountLines(std::string_view text) {
  return static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
}

void WriteBitset(std::string& out, const char* tag, const Bitset& b) {
  out += StrCat(tag, " ", b.size());
  for (uint32_t i : b.ToVector()) out += StrCat(" ", i);
  out += "\n";
}

void WriteBitsetList(std::string& out, const char* tag,
                     const std::vector<Bitset>& sets) {
  out += StrCat(tag, " ", sets.size(), "\n");
  for (const Bitset& b : sets) WriteBitset(out, "set", b);
}

void WriteU32List(std::string& out, const char* tag,
                  const std::vector<uint32_t>& values) {
  out += StrCat(tag, " ", values.size());
  for (uint32_t v : values) out += StrCat(" ", v);
  out += "\n";
}

// Embeds free-form text under a line-count prefix, normalizing to a
// trailing newline so the count is exact.
void WriteEmbedded(std::string& out, const char* tag, std::string_view text) {
  std::string body(text);
  if (body.empty() || body.back() != '\n') body += '\n';
  out += StrCat(tag, " ", CountLines(body), "\n");
  out += body;
}

Bitset BoolsToBitset(const std::vector<bool>& v) {
  Bitset b(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) b.Set(static_cast<uint32_t>(i));
  }
  return b;
}

std::vector<bool> BitsetToBools(const Bitset& b) {
  std::vector<bool> v(b.size(), false);
  for (uint32_t i : b.ToVector()) v[i] = true;
  return v;
}

const char* KindWord(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kDeterminize:
      return "determinize";
    case CertificateKind::kTrim:
      return "trim";
    case CertificateKind::kMinimize:
      return "minimize";
    case CertificateKind::kContainment:
      return "containment";
    case CertificateKind::kFromNha:
      return "fromnha";
    case CertificateKind::kAlgebra:
      return "algebra";
  }
  return "?";
}

const char* OpWord(schema::AlgebraOp op) {
  switch (op) {
    case schema::AlgebraOp::kIntersect:
      return "intersect";
    case schema::AlgebraOp::kUnion:
      return "union";
    case schema::AlgebraOp::kDifference:
      return "difference";
  }
  return "?";
}

Result<uint32_t> ParseU32(const std::string& field) {
  if (field.empty()) return Status::InvalidArgument("empty number field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("expected a number, got '", field, "'"));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) {
      return Status::InvalidArgument(StrCat("number too large: ", field));
    }
  }
  return static_cast<uint32_t>(value);
}

// 64-bit variant for the Lemma 2 recurrence masks (up to 62 split bits).
Result<uint64_t> ParseU64(const std::string& field) {
  if (field.empty()) return Status::InvalidArgument("empty number field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("expected a number, got '", field, "'"));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(StrCat("number too large: ", field));
    }
    value = value * 10 + digit;
  }
  return value;
}

// Cursor over the raw lines of a certificate, able both to parse directive
// lines and to slice out a length-prefixed embedded document verbatim.
class CertReader {
 public:
  explicit CertReader(std::string_view text) : lines_(StrSplit(text, '\n')) {}

  Result<std::vector<std::string>> Next() {
    while (index_ < lines_.size()) {
      std::string_view stripped = StripAsciiWhitespace(lines_[index_]);
      ++index_;
      if (stripped.empty() || stripped[0] == '#') continue;
      std::vector<std::string> fields;
      for (std::string& f : StrSplit(stripped, ' ')) {
        if (!f.empty()) fields.push_back(std::move(f));
      }
      return fields;
    }
    return Status::InvalidArgument("unexpected end of certificate text");
  }

  // The next `count` raw lines, rejoined verbatim.
  Result<std::string> TakeLines(size_t count) {
    if (index_ + count > lines_.size()) {
      return Status::InvalidArgument("certificate section truncated");
    }
    std::string out;
    for (size_t i = 0; i < count; ++i) {
      out += lines_[index_ + i];
      out += '\n';
    }
    index_ += count;
    return out;
  }

  size_t line() const { return index_; }

 private:
  std::vector<std::string> lines_;
  size_t index_ = 0;
};

Result<Bitset> ReadBitset(const std::vector<std::string>& fields,
                          const char* tag) {
  if (fields.size() < 2 || fields[0] != tag) {
    return Status::InvalidArgument(
        StrCat("expected '", tag, " <bits> <idx>...'"));
  }
  Result<uint32_t> bits = ParseU32(fields[1]);
  if (!bits.ok()) return bits.status();
  Bitset b(*bits);
  for (size_t i = 2; i < fields.size(); ++i) {
    Result<uint32_t> idx = ParseU32(fields[i]);
    if (!idx.ok()) return idx.status();
    if (*idx >= *bits) {
      return Status::InvalidArgument(
          StrCat(tag, " bit index ", *idx, " out of range (", *bits, ")"));
    }
    b.Set(*idx);
  }
  return b;
}

Result<std::vector<Bitset>> ReadBitsetList(CertReader& reader,
                                           const char* tag) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 2 || (*header)[0] != tag) {
    return Status::InvalidArgument(StrCat("expected '", tag, " <count>'"));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  std::vector<Bitset> sets;
  sets.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    Result<Bitset> b = ReadBitset(*fields, "set");
    if (!b.ok()) return b.status();
    sets.push_back(std::move(b).value());
  }
  return sets;
}

Result<std::vector<uint32_t>> ReadU32List(CertReader& reader,
                                          const char* tag) {
  Result<std::vector<std::string>> fields = reader.Next();
  if (!fields.ok()) return fields.status();
  if (fields->size() < 2 || (*fields)[0] != tag) {
    return Status::InvalidArgument(StrCat("expected '", tag, " <n> ...'"));
  }
  Result<uint32_t> n = ParseU32((*fields)[1]);
  if (!n.ok()) return n.status();
  if (fields->size() != 2 + static_cast<size_t>(*n)) {
    return Status::InvalidArgument(StrCat(tag, " entry count mismatch"));
  }
  std::vector<uint32_t> values;
  values.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    Result<uint32_t> v = ParseU32((*fields)[2 + i]);
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

// Reads an embedded, line-count-prefixed document ("<tag> <count>" followed
// by that many verbatim lines).
Result<std::string> ReadEmbedded(CertReader& reader, const char* tag) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 2 || (*header)[0] != tag) {
    return Status::InvalidArgument(
        StrCat("expected '", tag, " <line-count>' near line ",
               reader.line()));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  return reader.TakeLines(*count);
}

// The trim-witness triple, shared by the trim and algebra kinds.
void WriteTrimWitness(std::string& out, const automata::TrimWitness& trim) {
  WriteBitset(out, "derivable", trim.derivable);
  WriteBitset(out, "useful", trim.useful);
  std::string mapping = StrCat("mapping ", trim.mapping.size());
  for (automata::HState q : trim.mapping) {
    mapping += q == strre::kNoState ? std::string(" -") : StrCat(" ", q);
  }
  out += mapping + "\n";
}

Status ReadTrimWitness(CertReader& reader, automata::TrimWitness* trim) {
  Result<std::vector<std::string>> derivable = reader.Next();
  if (!derivable.ok()) return derivable.status();
  Result<Bitset> derivable_bits = ReadBitset(*derivable, "derivable");
  if (!derivable_bits.ok()) return derivable_bits.status();
  trim->derivable = std::move(derivable_bits).value();
  Result<std::vector<std::string>> useful = reader.Next();
  if (!useful.ok()) return useful.status();
  Result<Bitset> useful_bits = ReadBitset(*useful, "useful");
  if (!useful_bits.ok()) return useful_bits.status();
  trim->useful = std::move(useful_bits).value();
  Result<std::vector<std::string>> mapping = reader.Next();
  if (!mapping.ok()) return mapping.status();
  if (mapping->size() < 2 || (*mapping)[0] != "mapping") {
    return Status::InvalidArgument("expected 'mapping <n> ...'");
  }
  Result<uint32_t> n = ParseU32((*mapping)[1]);
  if (!n.ok()) return n.status();
  if (mapping->size() != 2 + static_cast<size_t>(*n)) {
    return Status::InvalidArgument("mapping entry count mismatch");
  }
  trim->mapping.clear();
  trim->mapping.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    const std::string& field = (*mapping)[2 + i];
    if (field == "-") {
      trim->mapping.push_back(strre::kNoState);
    } else {
      Result<uint32_t> q = ParseU32(field);
      if (!q.ok()) return q.status();
      trim->mapping.push_back(*q);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Certificate> BuildDeterminizeCertificate(const automata::Nha& input,
                                                BudgetScope& scope) {
  Certificate cert;
  cert.kind = CertificateKind::kDeterminize;
  cert.input = input;
  automata::DeterminizeWitness witness;
  Result<automata::Determinized> det =
      automata::Determinize(input, scope, &witness);
  if (!det.ok()) return det.status();
  cert.dha = std::move(det->dha);
  cert.subsets = std::move(det->subsets);
  cert.det = std::move(witness);
  return cert;
}

Certificate BuildTrimCertificate(const automata::Nha& input) {
  Certificate cert;
  cert.kind = CertificateKind::kTrim;
  cert.input = input;
  cert.trimmed = automata::PruneNha(input, nullptr, &cert.trim);
  return cert;
}

Certificate BuildMinimizeCertificate(const automata::Dha& input) {
  Certificate cert;
  cert.kind = CertificateKind::kMinimize;
  cert.min_input = input;
  cert.min_output = automata::MinimizeDha(input, &cert.min);
  return cert;
}

Result<Certificate> BuildContainmentCertificate(const schema::Schema& schema,
                                                std::string_view q1_text,
                                                std::string_view q2_text,
                                                hedge::Vocabulary& vocab,
                                                const ExecBudget& options) {
  Certificate cert;
  cert.kind = CertificateKind::kContainment;
  cert.input = schema.nha();
  cert.q1_text = std::string(q1_text);
  cert.q2_text = std::string(q2_text);
  Result<query::SelectionQuery> q1 = query::ParseSelectionQuery(q1_text, vocab);
  if (!q1.ok()) return q1.status();
  Result<query::SelectionQuery> q2 = query::ParseSelectionQuery(q2_text, vocab);
  if (!q2.ok()) return q2.status();
  cert.q1 = std::move(q1).value();
  cert.q2 = std::move(q2).value();
  Result<schema::ContainmentResult> verdict =
      schema::QueryContainment(schema, *cert.q1, *cert.q2, options, &cert.cont);
  if (!verdict.ok()) return verdict.status();
  cert.containment = std::move(verdict).value();
  return cert;
}

Result<Certificate> BuildFromNhaCertificate(const automata::Nha& input,
                                            hedge::Vocabulary& vocab) {
  Certificate cert;
  cert.kind = CertificateKind::kFromNha;
  cert.input = input;
  Result<hre::Hre> output = hre::NhaToHre(input, vocab, &cert.fn);
  if (!output.ok()) return output.status();
  cert.fn_output = std::move(output).value();
  return cert;
}

Result<Certificate> BuildAlgebraCertificate(const schema::Schema& a,
                                            const schema::Schema& b,
                                            schema::AlgebraOp op,
                                            const ExecBudget& budget) {
  Certificate cert;
  cert.kind = CertificateKind::kAlgebra;
  cert.input = a.nha();
  cert.alg_b = b.nha();
  switch (op) {
    case schema::AlgebraOp::kIntersect:
      cert.alg_out = schema::IntersectSchemas(a, b, &cert.alg).nha();
      break;
    case schema::AlgebraOp::kUnion:
      cert.alg_out = schema::UnionSchemas(a, b, &cert.alg).nha();
      break;
    case schema::AlgebraOp::kDifference: {
      BudgetScope scope(budget);
      Result<schema::Schema> out =
          schema::DifferenceSchemas(a, b, scope, &cert.alg);
      if (!out.ok()) return out.status();
      cert.alg_out = out->nha();
      break;
    }
  }
  return cert;
}

std::string SerializeCertificate(const Certificate& cert,
                                 const hedge::Vocabulary& vocab) {
  std::string out = StrCat("cert 1 ", KindWord(cert.kind), "\n");
  if (cert.kind == CertificateKind::kMinimize) {
    WriteEmbedded(out, "dhain", automata::SerializeDha(cert.min_input, vocab));
    WriteEmbedded(out, "dhaout",
                  automata::SerializeDha(cert.min_output, vocab));
    WriteU32List(out, "qblock", cert.min.qblock);
    WriteU32List(out, "hblock", cert.min.hblock);
    out += "end\n";
    return out;
  }
  std::string input_text = automata::SerializeNha(cert.input, vocab);
  out += StrCat("input ", CountLines(input_text), "\n");
  out += input_text;
  if (cert.kind == CertificateKind::kContainment) {
    WriteEmbedded(out, "q1", cert.q1_text);
    WriteEmbedded(out, "q2", cert.q2_text);
    out += StrCat("verdict ",
                  cert.containment.contained ? "contained" : "separated",
                  "\n");
    WriteEmbedded(out, "product", automata::SerializeNha(cert.cont.product,
                                                         vocab));
    WriteBitset(out, "marked1", BoolsToBitset(cert.cont.marked1));
    WriteBitset(out, "marked2", BoolsToBitset(cert.cont.marked2));
    if (cert.containment.counterexample.has_value()) {
      WriteEmbedded(out, "counterexample",
                    cert.containment.counterexample->document.ToString(vocab));
      out += StrCat("located ", cert.containment.counterexample->located,
                    "\n");
    }
    out += "end\n";
    return out;
  }
  if (cert.kind == CertificateKind::kFromNha) {
    WriteEmbedded(out, "hre", hre::HreToString(cert.fn_output, vocab));
    out += StrCat("splits ", cert.fn.splits.size(), "\n");
    for (size_t i = 0; i < cert.fn.splits.size(); ++i) {
      out += StrCat("split ", vocab.symbols.NameOf(cert.fn.splits[i].first),
                    " ", cert.fn.splits[i].second, " ",
                    vocab.substs.NameOf(cert.fn.substs[i]), "\n");
    }
    out += StrCat("entries ", cert.fn.entries.size(), "\n");
    for (const hre::FromNhaWitness::Entry& e : cert.fn.entries) {
      std::string expr = hre::HreToString(e.expr, vocab);
      if (expr.empty() || expr.back() != '\n') expr += '\n';
      out += StrCat("entry ", e.c, " ", e.q1, " ", e.q2, " ",
                    CountLines(expr), "\n");
      out += expr;
    }
    out += "end\n";
    return out;
  }
  if (cert.kind == CertificateKind::kAlgebra) {
    out += StrCat("op ", OpWord(cert.alg.op), "\n");
    WriteEmbedded(out, "operand", automata::SerializeNha(cert.alg_b, vocab));
    WriteEmbedded(out, "output", automata::SerializeNha(cert.alg_out, vocab));
    if (cert.alg.op == schema::AlgebraOp::kUnion) {
      out += StrCat("offsets ", cert.alg.offset_a, " ", cert.alg.offset_b,
                    "\n");
    } else {
      if (cert.alg.op == schema::AlgebraOp::kDifference) {
        WriteEmbedded(out, "complement",
                      automata::SerializeNha(cert.alg.complement, vocab));
      }
      WriteEmbedded(out, "product",
                    automata::SerializeNha(cert.alg.product, vocab));
      WriteTrimWitness(out, cert.alg.trim);
    }
    out += "end\n";
    return out;
  }
  if (cert.kind == CertificateKind::kDeterminize) {
    std::string dha_text = automata::SerializeDha(cert.dha, vocab);
    out += StrCat("dha ", CountLines(dha_text), "\n");
    out += dha_text;
    WriteBitsetList(out, "subsets", cert.subsets);
    WriteBitsetList(out, "hsets", cert.det.h_sets);
    WriteBitsetList(out, "finalsets", cert.det.final_sets);
    // The digest chain rides last (just before the trailer) so anti-tamper
    // tests and the check.sh cache gate can target it deterministically.
    if (!cert.det.chain.empty()) {
      out += StrCat("digestchain ", cert.det.chain.size(), "\n");
      for (const std::string& link : cert.det.chain) {
        out += link;
        out += '\n';
      }
    }
  } else {
    std::string trimmed_text = automata::SerializeNha(cert.trimmed, vocab);
    out += StrCat("trimmed ", CountLines(trimmed_text), "\n");
    out += trimmed_text;
    WriteTrimWitness(out, cert.trim);
  }
  out += "end\n";
  return out;
}

Result<Certificate> DeserializeCertificate(std::string_view text,
                                           hedge::Vocabulary& vocab) {
  CertReader reader(text);
  Result<std::vector<std::string>> magic = reader.Next();
  if (!magic.ok()) return magic.status();
  if (magic->size() != 3 || (*magic)[0] != "cert" || (*magic)[1] != "1") {
    return Status::InvalidArgument("expected 'cert 1 <kind>' header");
  }
  Certificate cert;
  if ((*magic)[2] == "determinize") {
    cert.kind = CertificateKind::kDeterminize;
  } else if ((*magic)[2] == "trim") {
    cert.kind = CertificateKind::kTrim;
  } else if ((*magic)[2] == "minimize") {
    cert.kind = CertificateKind::kMinimize;
  } else if ((*magic)[2] == "containment") {
    cert.kind = CertificateKind::kContainment;
  } else if ((*magic)[2] == "fromnha") {
    cert.kind = CertificateKind::kFromNha;
  } else if ((*magic)[2] == "algebra") {
    cert.kind = CertificateKind::kAlgebra;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown certificate kind '", (*magic)[2], "'"));
  }

  if (cert.kind == CertificateKind::kMinimize) {
    Result<std::string> in_text = ReadEmbedded(reader, "dhain");
    if (!in_text.ok()) return in_text.status();
    Result<Dha> in_dha = automata::DeserializeDha(*in_text, vocab);
    if (!in_dha.ok()) return in_dha.status();
    cert.min_input = std::move(in_dha).value();
    Result<std::string> out_text = ReadEmbedded(reader, "dhaout");
    if (!out_text.ok()) return out_text.status();
    Result<Dha> out_dha = automata::DeserializeDha(*out_text, vocab);
    if (!out_dha.ok()) return out_dha.status();
    cert.min_output = std::move(out_dha).value();
    Result<std::vector<uint32_t>> qblock = ReadU32List(reader, "qblock");
    if (!qblock.ok()) return qblock.status();
    cert.min.qblock = std::move(qblock).value();
    Result<std::vector<uint32_t>> hblock = ReadU32List(reader, "hblock");
    if (!hblock.ok()) return hblock.status();
    cert.min.hblock = std::move(hblock).value();
    Result<std::vector<std::string>> tail = reader.Next();
    if (!tail.ok()) return tail.status();
    if (tail->size() != 1 || (*tail)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  Result<std::string> input_text = ReadEmbedded(reader, "input");
  if (!input_text.ok()) return input_text.status();
  Result<Nha> input = automata::DeserializeNha(*input_text, vocab);
  if (!input.ok()) return input.status();
  cert.input = std::move(input).value();

  if (cert.kind == CertificateKind::kContainment) {
    Result<std::string> q1_text = ReadEmbedded(reader, "q1");
    if (!q1_text.ok()) return q1_text.status();
    cert.q1_text = std::move(q1_text).value();
    Result<std::string> q2_text = ReadEmbedded(reader, "q2");
    if (!q2_text.ok()) return q2_text.status();
    cert.q2_text = std::move(q2_text).value();
    Result<query::SelectionQuery> q1 =
        query::ParseSelectionQuery(StripAsciiWhitespace(cert.q1_text), vocab);
    if (!q1.ok()) return q1.status();
    cert.q1 = std::move(q1).value();
    Result<query::SelectionQuery> q2 =
        query::ParseSelectionQuery(StripAsciiWhitespace(cert.q2_text), vocab);
    if (!q2.ok()) return q2.status();
    cert.q2 = std::move(q2).value();
    Result<std::vector<std::string>> verdict = reader.Next();
    if (!verdict.ok()) return verdict.status();
    if (verdict->size() != 2 || (*verdict)[0] != "verdict" ||
        ((*verdict)[1] != "contained" && (*verdict)[1] != "separated")) {
      return Status::InvalidArgument(
          "expected 'verdict contained|separated'");
    }
    cert.containment.contained = (*verdict)[1] == "contained";
    Result<std::string> product_text = ReadEmbedded(reader, "product");
    if (!product_text.ok()) return product_text.status();
    Result<Nha> product = automata::DeserializeNha(*product_text, vocab);
    if (!product.ok()) return product.status();
    cert.cont.product = std::move(product).value();
    Result<std::vector<std::string>> m1 = reader.Next();
    if (!m1.ok()) return m1.status();
    Result<Bitset> m1_bits = ReadBitset(*m1, "marked1");
    if (!m1_bits.ok()) return m1_bits.status();
    cert.cont.marked1 = BitsetToBools(*m1_bits);
    Result<std::vector<std::string>> m2 = reader.Next();
    if (!m2.ok()) return m2.status();
    Result<Bitset> m2_bits = ReadBitset(*m2, "marked2");
    if (!m2_bits.ok()) return m2_bits.status();
    cert.cont.marked2 = BitsetToBools(*m2_bits);
    Result<std::vector<std::string>> next = reader.Next();
    if (!next.ok()) return next.status();
    if (next->size() == 2 && (*next)[0] == "counterexample") {
      Result<uint32_t> count = ParseU32((*next)[1]);
      if (!count.ok()) return count.status();
      Result<std::string> doc_text = reader.TakeLines(*count);
      if (!doc_text.ok()) return doc_text.status();
      Result<hedge::Hedge> doc = hedge::ParseHedge(*doc_text, vocab);
      if (!doc.ok()) return doc.status();
      Result<std::vector<std::string>> located = reader.Next();
      if (!located.ok()) return located.status();
      if (located->size() != 2 || (*located)[0] != "located") {
        return Status::InvalidArgument("expected 'located <node>'");
      }
      Result<uint32_t> node = ParseU32((*located)[1]);
      if (!node.ok()) return node.status();
      cert.containment.counterexample =
          schema::SampleMatch{std::move(doc).value(), *node};
      next = reader.Next();
      if (!next.ok()) return next.status();
    }
    if (next->size() != 1 || (*next)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  if (cert.kind == CertificateKind::kFromNha) {
    Result<std::string> hre_text = ReadEmbedded(reader, "hre");
    if (!hre_text.ok()) return hre_text.status();
    Result<hre::Hre> output =
        hre::ParseHre(StripAsciiWhitespace(*hre_text), vocab);
    if (!output.ok()) return output.status();
    cert.fn_output = std::move(output).value();
    cert.fn.result = cert.fn_output;
    Result<std::vector<std::string>> splits_header = reader.Next();
    if (!splits_header.ok()) return splits_header.status();
    if (splits_header->size() != 2 || (*splits_header)[0] != "splits") {
      return Status::InvalidArgument("expected 'splits <count>'");
    }
    Result<uint32_t> num_splits = ParseU32((*splits_header)[1]);
    if (!num_splits.ok()) return num_splits.status();
    for (uint32_t i = 0; i < *num_splits; ++i) {
      Result<std::vector<std::string>> fields = reader.Next();
      if (!fields.ok()) return fields.status();
      if (fields->size() != 4 || (*fields)[0] != "split") {
        return Status::InvalidArgument(
            "expected 'split <symbol> <state> <subst>'");
      }
      Result<uint32_t> state = ParseU32((*fields)[2]);
      if (!state.ok()) return state.status();
      cert.fn.splits.emplace_back(vocab.symbols.Intern((*fields)[1]), *state);
      cert.fn.substs.push_back(vocab.substs.Intern((*fields)[3]));
    }
    Result<std::vector<std::string>> entries_header = reader.Next();
    if (!entries_header.ok()) return entries_header.status();
    if (entries_header->size() != 2 || (*entries_header)[0] != "entries") {
      return Status::InvalidArgument("expected 'entries <count>'");
    }
    Result<uint32_t> num_entries = ParseU32((*entries_header)[1]);
    if (!num_entries.ok()) return num_entries.status();
    for (uint32_t i = 0; i < *num_entries; ++i) {
      Result<std::vector<std::string>> fields = reader.Next();
      if (!fields.ok()) return fields.status();
      if (fields->size() != 5 || (*fields)[0] != "entry") {
        return Status::InvalidArgument(
            "expected 'entry <c> <q1> <q2> <line-count>'");
      }
      Result<uint32_t> c = ParseU32((*fields)[1]);
      if (!c.ok()) return c.status();
      Result<uint64_t> q1 = ParseU64((*fields)[2]);
      if (!q1.ok()) return q1.status();
      Result<uint64_t> q2 = ParseU64((*fields)[3]);
      if (!q2.ok()) return q2.status();
      Result<uint32_t> count = ParseU32((*fields)[4]);
      if (!count.ok()) return count.status();
      Result<std::string> expr_text = reader.TakeLines(*count);
      if (!expr_text.ok()) return expr_text.status();
      Result<hre::Hre> expr =
          hre::ParseHre(StripAsciiWhitespace(*expr_text), vocab);
      if (!expr.ok()) return expr.status();
      cert.fn.entries.push_back(hre::FromNhaWitness::Entry{
          *c, *q1, *q2, std::move(expr).value()});
    }
    Result<std::vector<std::string>> tail = reader.Next();
    if (!tail.ok()) return tail.status();
    if (tail->size() != 1 || (*tail)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  if (cert.kind == CertificateKind::kAlgebra) {
    Result<std::vector<std::string>> op = reader.Next();
    if (!op.ok()) return op.status();
    if (op->size() != 2 || (*op)[0] != "op") {
      return Status::InvalidArgument(
          "expected 'op intersect|union|difference'");
    }
    if ((*op)[1] == "intersect") {
      cert.alg.op = schema::AlgebraOp::kIntersect;
    } else if ((*op)[1] == "union") {
      cert.alg.op = schema::AlgebraOp::kUnion;
    } else if ((*op)[1] == "difference") {
      cert.alg.op = schema::AlgebraOp::kDifference;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown algebra op '", (*op)[1], "'"));
    }
    Result<std::string> operand_text = ReadEmbedded(reader, "operand");
    if (!operand_text.ok()) return operand_text.status();
    Result<Nha> operand = automata::DeserializeNha(*operand_text, vocab);
    if (!operand.ok()) return operand.status();
    cert.alg_b = std::move(operand).value();
    Result<std::string> output_text = ReadEmbedded(reader, "output");
    if (!output_text.ok()) return output_text.status();
    Result<Nha> output = automata::DeserializeNha(*output_text, vocab);
    if (!output.ok()) return output.status();
    cert.alg_out = std::move(output).value();
    if (cert.alg.op == schema::AlgebraOp::kUnion) {
      Result<std::vector<std::string>> offsets = reader.Next();
      if (!offsets.ok()) return offsets.status();
      if (offsets->size() != 3 || (*offsets)[0] != "offsets") {
        return Status::InvalidArgument("expected 'offsets <a> <b>'");
      }
      Result<uint32_t> oa = ParseU32((*offsets)[1]);
      if (!oa.ok()) return oa.status();
      Result<uint32_t> ob = ParseU32((*offsets)[2]);
      if (!ob.ok()) return ob.status();
      cert.alg.offset_a = *oa;
      cert.alg.offset_b = *ob;
    } else {
      if (cert.alg.op == schema::AlgebraOp::kDifference) {
        Result<std::string> comp_text = ReadEmbedded(reader, "complement");
        if (!comp_text.ok()) return comp_text.status();
        Result<Nha> comp = automata::DeserializeNha(*comp_text, vocab);
        if (!comp.ok()) return comp.status();
        cert.alg.complement = std::move(comp).value();
      }
      Result<std::string> product_text = ReadEmbedded(reader, "product");
      if (!product_text.ok()) return product_text.status();
      Result<Nha> product = automata::DeserializeNha(*product_text, vocab);
      if (!product.ok()) return product.status();
      cert.alg.product = std::move(product).value();
      HEDGEQ_RETURN_IF_ERROR(ReadTrimWitness(reader, &cert.alg.trim));
    }
    Result<std::vector<std::string>> tail = reader.Next();
    if (!tail.ok()) return tail.status();
    if (tail->size() != 1 || (*tail)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  if (cert.kind == CertificateKind::kDeterminize) {
    Result<std::string> dha_text = ReadEmbedded(reader, "dha");
    if (!dha_text.ok()) return dha_text.status();
    Result<Dha> dha = automata::DeserializeDha(*dha_text, vocab);
    if (!dha.ok()) return dha.status();
    cert.dha = std::move(dha).value();
    Result<std::vector<Bitset>> subsets = ReadBitsetList(reader, "subsets");
    if (!subsets.ok()) return subsets.status();
    cert.subsets = std::move(subsets).value();
    Result<std::vector<Bitset>> h_sets = ReadBitsetList(reader, "hsets");
    if (!h_sets.ok()) return h_sets.status();
    cert.det.h_sets = std::move(h_sets).value();
    Result<std::vector<Bitset>> final_sets =
        ReadBitsetList(reader, "finalsets");
    if (!final_sets.ok()) return final_sets.status();
    cert.det.final_sets = std::move(final_sets).value();
    // Optional trailing digest chain (absent in pre-chain certificates).
    Result<std::vector<std::string>> next = reader.Next();
    if (!next.ok()) return next.status();
    if (next->size() == 2 && (*next)[0] == "digestchain") {
      Result<uint32_t> count = ParseU32((*next)[1]);
      if (!count.ok()) return count.status();
      cert.det.chain.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        Result<std::vector<std::string>> link = reader.Next();
        if (!link.ok()) return link.status();
        if (link->size() != 1) {
          return Status::InvalidArgument("expected one digest per line");
        }
        cert.det.chain.push_back(std::move((*link)[0]));
      }
      next = reader.Next();
      if (!next.ok()) return next.status();
    }
    if (next->size() != 1 || (*next)[0] != "end") {
      return Status::InvalidArgument("expected 'end' trailer");
    }
    return cert;
  }

  Result<std::string> trimmed_text = ReadEmbedded(reader, "trimmed");
  if (!trimmed_text.ok()) return trimmed_text.status();
  Result<Nha> trimmed = automata::DeserializeNha(*trimmed_text, vocab);
  if (!trimmed.ok()) return trimmed.status();
  cert.trimmed = std::move(trimmed).value();
  HEDGEQ_RETURN_IF_ERROR(ReadTrimWitness(reader, &cert.trim));

  Result<std::vector<std::string>> tail = reader.Next();
  if (!tail.ok()) return tail.status();
  if (tail->size() != 1 || (*tail)[0] != "end") {
    return Status::InvalidArgument("expected 'end' trailer");
  }
  return cert;
}

}  // namespace hedgeq::verify
