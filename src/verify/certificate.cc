#include "verify/certificate.h"

#include <algorithm>

#include "automata/serialize.h"
#include "util/strings.h"

namespace hedgeq::verify {

using automata::Dha;
using automata::Nha;

namespace {

size_t CountLines(std::string_view text) {
  return static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
}

void WriteBitset(std::string& out, const char* tag, const Bitset& b) {
  out += StrCat(tag, " ", b.size());
  for (uint32_t i : b.ToVector()) out += StrCat(" ", i);
  out += "\n";
}

void WriteBitsetList(std::string& out, const char* tag,
                     const std::vector<Bitset>& sets) {
  out += StrCat(tag, " ", sets.size(), "\n");
  for (const Bitset& b : sets) WriteBitset(out, "set", b);
}

Result<uint32_t> ParseU32(const std::string& field) {
  if (field.empty()) return Status::InvalidArgument("empty number field");
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("expected a number, got '", field, "'"));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) {
      return Status::InvalidArgument(StrCat("number too large: ", field));
    }
  }
  return static_cast<uint32_t>(value);
}

// Cursor over the raw lines of a certificate, able both to parse directive
// lines and to slice out a length-prefixed embedded document verbatim.
class CertReader {
 public:
  explicit CertReader(std::string_view text) : lines_(StrSplit(text, '\n')) {}

  Result<std::vector<std::string>> Next() {
    while (index_ < lines_.size()) {
      std::string_view stripped = StripAsciiWhitespace(lines_[index_]);
      ++index_;
      if (stripped.empty() || stripped[0] == '#') continue;
      std::vector<std::string> fields;
      for (std::string& f : StrSplit(stripped, ' ')) {
        if (!f.empty()) fields.push_back(std::move(f));
      }
      return fields;
    }
    return Status::InvalidArgument("unexpected end of certificate text");
  }

  // The next `count` raw lines, rejoined verbatim.
  Result<std::string> TakeLines(size_t count) {
    if (index_ + count > lines_.size()) {
      return Status::InvalidArgument("certificate section truncated");
    }
    std::string out;
    for (size_t i = 0; i < count; ++i) {
      out += lines_[index_ + i];
      out += '\n';
    }
    index_ += count;
    return out;
  }

  size_t line() const { return index_; }

 private:
  std::vector<std::string> lines_;
  size_t index_ = 0;
};

Result<Bitset> ReadBitset(const std::vector<std::string>& fields,
                          const char* tag) {
  if (fields.size() < 2 || fields[0] != tag) {
    return Status::InvalidArgument(
        StrCat("expected '", tag, " <bits> <idx>...'"));
  }
  Result<uint32_t> bits = ParseU32(fields[1]);
  if (!bits.ok()) return bits.status();
  Bitset b(*bits);
  for (size_t i = 2; i < fields.size(); ++i) {
    Result<uint32_t> idx = ParseU32(fields[i]);
    if (!idx.ok()) return idx.status();
    if (*idx >= *bits) {
      return Status::InvalidArgument(
          StrCat(tag, " bit index ", *idx, " out of range (", *bits, ")"));
    }
    b.Set(*idx);
  }
  return b;
}

Result<std::vector<Bitset>> ReadBitsetList(CertReader& reader,
                                           const char* tag) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 2 || (*header)[0] != tag) {
    return Status::InvalidArgument(StrCat("expected '", tag, " <count>'"));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  std::vector<Bitset> sets;
  sets.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    Result<Bitset> b = ReadBitset(*fields, "set");
    if (!b.ok()) return b.status();
    sets.push_back(std::move(b).value());
  }
  return sets;
}

// Reads an embedded, line-count-prefixed document ("<tag> <count>" followed
// by that many verbatim lines).
Result<std::string> ReadEmbedded(CertReader& reader, const char* tag) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 2 || (*header)[0] != tag) {
    return Status::InvalidArgument(
        StrCat("expected '", tag, " <line-count>' near line ",
               reader.line()));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  return reader.TakeLines(*count);
}

}  // namespace

Result<Certificate> BuildDeterminizeCertificate(const automata::Nha& input,
                                                BudgetScope& scope) {
  Certificate cert;
  cert.kind = CertificateKind::kDeterminize;
  cert.input = input;
  automata::DeterminizeWitness witness;
  Result<automata::Determinized> det =
      automata::Determinize(input, scope, &witness);
  if (!det.ok()) return det.status();
  cert.dha = std::move(det->dha);
  cert.subsets = std::move(det->subsets);
  cert.det = std::move(witness);
  return cert;
}

Certificate BuildTrimCertificate(const automata::Nha& input) {
  Certificate cert;
  cert.kind = CertificateKind::kTrim;
  cert.input = input;
  cert.trimmed = automata::PruneNha(input, nullptr, &cert.trim);
  return cert;
}

std::string SerializeCertificate(const Certificate& cert,
                                 const hedge::Vocabulary& vocab) {
  std::string out = "cert 1 ";
  out += cert.kind == CertificateKind::kDeterminize ? "determinize" : "trim";
  out += "\n";
  std::string input_text = automata::SerializeNha(cert.input, vocab);
  out += StrCat("input ", CountLines(input_text), "\n");
  out += input_text;
  if (cert.kind == CertificateKind::kDeterminize) {
    std::string dha_text = automata::SerializeDha(cert.dha, vocab);
    out += StrCat("dha ", CountLines(dha_text), "\n");
    out += dha_text;
    WriteBitsetList(out, "subsets", cert.subsets);
    WriteBitsetList(out, "hsets", cert.det.h_sets);
    WriteBitsetList(out, "finalsets", cert.det.final_sets);
  } else {
    std::string trimmed_text = automata::SerializeNha(cert.trimmed, vocab);
    out += StrCat("trimmed ", CountLines(trimmed_text), "\n");
    out += trimmed_text;
    WriteBitset(out, "derivable", cert.trim.derivable);
    WriteBitset(out, "useful", cert.trim.useful);
    std::string mapping = StrCat("mapping ", cert.trim.mapping.size());
    for (automata::HState q : cert.trim.mapping) {
      mapping += q == strre::kNoState ? std::string(" -")
                                      : StrCat(" ", q);
    }
    out += mapping + "\n";
  }
  out += "end\n";
  return out;
}

Result<Certificate> DeserializeCertificate(std::string_view text,
                                           hedge::Vocabulary& vocab) {
  CertReader reader(text);
  Result<std::vector<std::string>> magic = reader.Next();
  if (!magic.ok()) return magic.status();
  if (magic->size() != 3 || (*magic)[0] != "cert" || (*magic)[1] != "1") {
    return Status::InvalidArgument("expected 'cert 1 <kind>' header");
  }
  Certificate cert;
  if ((*magic)[2] == "determinize") {
    cert.kind = CertificateKind::kDeterminize;
  } else if ((*magic)[2] == "trim") {
    cert.kind = CertificateKind::kTrim;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown certificate kind '", (*magic)[2], "'"));
  }

  Result<std::string> input_text = ReadEmbedded(reader, "input");
  if (!input_text.ok()) return input_text.status();
  Result<Nha> input = automata::DeserializeNha(*input_text, vocab);
  if (!input.ok()) return input.status();
  cert.input = std::move(input).value();

  if (cert.kind == CertificateKind::kDeterminize) {
    Result<std::string> dha_text = ReadEmbedded(reader, "dha");
    if (!dha_text.ok()) return dha_text.status();
    Result<Dha> dha = automata::DeserializeDha(*dha_text, vocab);
    if (!dha.ok()) return dha.status();
    cert.dha = std::move(dha).value();
    Result<std::vector<Bitset>> subsets = ReadBitsetList(reader, "subsets");
    if (!subsets.ok()) return subsets.status();
    cert.subsets = std::move(subsets).value();
    Result<std::vector<Bitset>> h_sets = ReadBitsetList(reader, "hsets");
    if (!h_sets.ok()) return h_sets.status();
    cert.det.h_sets = std::move(h_sets).value();
    Result<std::vector<Bitset>> final_sets =
        ReadBitsetList(reader, "finalsets");
    if (!final_sets.ok()) return final_sets.status();
    cert.det.final_sets = std::move(final_sets).value();
  } else {
    Result<std::string> trimmed_text = ReadEmbedded(reader, "trimmed");
    if (!trimmed_text.ok()) return trimmed_text.status();
    Result<Nha> trimmed = automata::DeserializeNha(*trimmed_text, vocab);
    if (!trimmed.ok()) return trimmed.status();
    cert.trimmed = std::move(trimmed).value();
    Result<std::vector<std::string>> derivable = reader.Next();
    if (!derivable.ok()) return derivable.status();
    Result<Bitset> derivable_bits = ReadBitset(*derivable, "derivable");
    if (!derivable_bits.ok()) return derivable_bits.status();
    cert.trim.derivable = std::move(derivable_bits).value();
    Result<std::vector<std::string>> useful = reader.Next();
    if (!useful.ok()) return useful.status();
    Result<Bitset> useful_bits = ReadBitset(*useful, "useful");
    if (!useful_bits.ok()) return useful_bits.status();
    cert.trim.useful = std::move(useful_bits).value();
    Result<std::vector<std::string>> mapping = reader.Next();
    if (!mapping.ok()) return mapping.status();
    if (mapping->size() < 2 || (*mapping)[0] != "mapping") {
      return Status::InvalidArgument("expected 'mapping <n> ...'");
    }
    Result<uint32_t> n = ParseU32((*mapping)[1]);
    if (!n.ok()) return n.status();
    if (mapping->size() != 2 + static_cast<size_t>(*n)) {
      return Status::InvalidArgument("mapping entry count mismatch");
    }
    cert.trim.mapping.reserve(*n);
    for (uint32_t i = 0; i < *n; ++i) {
      const std::string& field = (*mapping)[2 + i];
      if (field == "-") {
        cert.trim.mapping.push_back(strre::kNoState);
      } else {
        Result<uint32_t> q = ParseU32(field);
        if (!q.ok()) return q.status();
        cert.trim.mapping.push_back(*q);
      }
    }
  }

  Result<std::vector<std::string>> tail = reader.Next();
  if (!tail.ok()) return tail.status();
  if (tail->size() != 1 || (*tail)[0] != "end") {
    return Status::InvalidArgument("expected 'end' trailer");
  }
  return cert;
}

}  // namespace hedgeq::verify
