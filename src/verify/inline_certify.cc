// Inline certification: when this translation unit is linked into a binary
// (HEDGEQ_CERTIFY=ON builds), every Determinize and PruneNha call in the
// process records a witness and has it validated by the independent checker
// before the result is returned — translation validation as a standing
// invariant of sanitizer builds, not just a test.
//
// Kept as a separate object library: a static-library member with nothing
// but a global constructor would be dropped by the linker.

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "verify/checker.h"

namespace hedgeq::verify {
namespace {

struct Installer {
  Installer() {
    automata::SetDeterminizeValidationHook(
        [](const automata::Nha& input, const automata::Determinized& output,
           const automata::DeterminizeWitness& witness) {
          return DiagnosticsToStatus(
              CheckDeterminize(input, output, witness));
        });
    automata::SetTrimValidationHook(
        [](const automata::Nha& input, const automata::Nha& output,
           const automata::TrimWitness& witness) {
          return DiagnosticsToStatus(CheckTrim(input, output, witness));
        });
  }
};

const Installer installer;

}  // namespace
}  // namespace hedgeq::verify
