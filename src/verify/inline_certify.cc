// Inline certification: when this translation unit is linked into a binary
// (HEDGEQ_CERTIFY=ON builds), every Determinize, PruneNha, MinimizeDha,
// CompilePhr, QueryContainment, NhaToHre and schema-algebra call in the
// process records a witness and has it validated by the independent checker
// before the result is returned — translation validation as a standing
// invariant of sanitizer builds, not just a test.
//
// Kept as a separate object library: a static-library member with nothing
// but a global constructor would be dropped by the linker.

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "query/phr_compile.h"
#include "schema/transform.h"
#include "verify/checker.h"

namespace hedgeq::verify {
namespace {

struct Installer {
  Installer() {
    automata::SetDeterminizeValidationHook(
        [](const automata::Nha& input, const automata::Determinized& output,
           const automata::DeterminizeWitness& witness) {
          return DiagnosticsToStatus(
              CheckDeterminize(input, output, witness));
        });
    automata::SetTrimValidationHook(
        [](const automata::Nha& input, const automata::Nha& output,
           const automata::TrimWitness& witness) {
          return DiagnosticsToStatus(CheckTrim(input, output, witness));
        });
    automata::SetMinimizeValidationHook(
        [](const automata::Dha& input, const automata::Dha& output,
           const automata::MinimizeWitness& witness) {
          return DiagnosticsToStatus(CheckMinimize(input, output, witness));
        });
    query::SetPhrProductValidationHook(
        [](const phr::Phr& phr, const query::CompiledPhr& compiled,
           const query::PhrWitness& witness) {
          return DiagnosticsToStatus(
              CheckPhrProduct(phr, compiled, witness));
        });
    schema::SetContainmentValidationHook(
        [](const schema::Schema& input, const query::SelectionQuery& q1,
           const query::SelectionQuery& q2,
           const schema::ContainmentResult& result,
           const schema::ContainmentWitness& witness) {
          return DiagnosticsToStatus(
              CheckContainment(input, q1, q2, result, witness));
        });
    hre::SetFromNhaValidationHook(
        [](const automata::Nha& input, const hre::Hre& output,
           const hre::FromNhaWitness& witness) {
          return DiagnosticsToStatus(CheckFromNha(input, output, witness));
        });
    schema::SetAlgebraValidationHook(
        [](const schema::Schema& a, const schema::Schema& b,
           const schema::Schema& result,
           const schema::AlgebraWitness& witness) {
          return DiagnosticsToStatus(CheckAlgebra(a, b, result, witness));
        });
  }
};

const Installer installer;

}  // namespace
}  // namespace hedgeq::verify
