#include "hedge/hedge.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"
#include "util/strings.h"

namespace hedgeq::hedge {

NodeId Hedge::Append(NodeId parent, Label label) {
  HEDGEQ_CHECK(parent == kNullNode ||
               labels_[parent].kind == LabelKind::kSymbol);
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(parent);
  first_children_.push_back(kNullNode);
  last_children_.push_back(kNullNode);
  next_siblings_.push_back(kNullNode);

  NodeId prev = kNullNode;
  if (parent == kNullNode) {
    if (!roots_.empty()) prev = roots_.back();
    roots_.push_back(id);
  } else {
    prev = last_children_[parent];
    if (first_children_[parent] == kNullNode) first_children_[parent] = id;
    last_children_[parent] = id;
  }
  prev_siblings_.push_back(prev);
  if (prev != kNullNode) next_siblings_[prev] = id;
  return id;
}

NodeId Hedge::AppendCopy(NodeId parent, const Hedge& src, NodeId src_root) {
  NodeId copy = Append(parent, src.label(src_root));
  for (NodeId c = src.first_child(src_root); c != kNullNode;
       c = src.next_sibling(c)) {
    AppendCopy(copy, src, c);
  }
  return copy;
}

void Hedge::AppendHedgeCopy(NodeId parent, const Hedge& src) {
  for (NodeId r : src.roots()) AppendCopy(parent, src, r);
}

std::vector<NodeId> Hedge::ChildrenOf(NodeId n) const {
  if (n == kNullNode) return roots_;
  std::vector<NodeId> out;
  for (NodeId c = first_children_[n]; c != kNullNode; c = next_siblings_[c]) {
    out.push_back(c);
  }
  return out;
}

std::vector<NodeId> Hedge::PreOrder() const {
  std::vector<NodeId> out;
  out.reserve(num_nodes());
  std::vector<NodeId> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    std::vector<NodeId> kids = ChildrenOf(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

size_t Hedge::SubtreeSize(NodeId n) const {
  size_t total = 1;
  for (NodeId c = first_children_[n]; c != kNullNode; c = next_siblings_[c]) {
    total += SubtreeSize(c);
  }
  return total;
}

std::vector<Label> Hedge::Ceil() const {
  std::vector<Label> out;
  out.reserve(roots_.size());
  for (NodeId r : roots_) out.push_back(labels_[r]);
  return out;
}

std::vector<uint32_t> Hedge::DeweyOf(NodeId n) const {
  std::vector<uint32_t> path;
  NodeId cur = n;
  while (cur != kNullNode) {
    uint32_t index = 0;
    for (NodeId s = prev_siblings_[cur]; s != kNullNode;
         s = prev_siblings_[s]) {
      ++index;
    }
    path.push_back(index);
    cur = parents_[cur];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

NodeId Hedge::AtDewey(const std::vector<uint32_t>& address) const {
  NodeId cur = kNullNode;
  for (uint32_t index : address) {
    NodeId child = (cur == kNullNode)
                       ? (roots_.empty() ? kNullNode : roots_.front())
                       : first_children_[cur];
    for (uint32_t i = 0; i < index && child != kNullNode; ++i) {
      child = next_siblings_[child];
    }
    if (child == kNullNode) return kNullNode;
    cur = child;
  }
  return cur;
}

size_t Hedge::DepthOf(NodeId n) const {
  size_t depth = 0;
  for (NodeId p = parents_[n]; p != kNullNode; p = parents_[p]) ++depth;
  return depth;
}

Hedge Hedge::SubhedgeOf(NodeId n) const {
  Hedge out;
  for (NodeId c = first_children_[n]; c != kNullNode; c = next_siblings_[c]) {
    out.AppendCopy(kNullNode, *this, c);
  }
  return out;
}

namespace {

// Copies the subtree at `root` of `src` into `dst` under `parent`, except
// that the descendants of `skip_children_of` are replaced by a single eta
// leaf.
NodeId CopyWithEta(const Hedge& src, NodeId root, Hedge& dst, NodeId parent,
                   NodeId skip_children_of, NodeId* eta_parent) {
  NodeId copy = dst.Append(parent, src.label(root));
  if (root == skip_children_of) {
    dst.Append(copy, Label::Eta());
    if (eta_parent != nullptr) *eta_parent = copy;
    return copy;
  }
  for (NodeId c = src.first_child(root); c != kNullNode;
       c = src.next_sibling(c)) {
    CopyWithEta(src, c, dst, copy, skip_children_of, eta_parent);
  }
  return copy;
}

}  // namespace

Hedge Hedge::EnvelopeOf(NodeId n, NodeId* eta_parent) const {
  HEDGEQ_CHECK_MSG(labels_[n].kind == LabelKind::kSymbol,
                   "envelope requires a symbol-labeled node");
  Hedge out;
  for (NodeId r : roots_) {
    CopyWithEta(*this, r, out, kNullNode, n, eta_parent);
  }
  return out;
}

bool Hedge::SubtreeEqual(NodeId a, const Hedge& other, NodeId b) const {
  if (!(labels_[a] == other.labels_[b])) return false;
  NodeId ca = first_children_[a];
  NodeId cb = other.first_children_[b];
  while (ca != kNullNode && cb != kNullNode) {
    if (!SubtreeEqual(ca, other, cb)) return false;
    ca = next_siblings_[ca];
    cb = other.next_siblings_[cb];
  }
  return ca == kNullNode && cb == kNullNode;
}

bool Hedge::EqualTo(const Hedge& other) const {
  if (roots_.size() != other.roots_.size()) return false;
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (!SubtreeEqual(roots_[i], other, other.roots_[i])) return false;
  }
  return true;
}

std::string LabelToString(const Label& label, const Vocabulary& vocab) {
  switch (label.kind) {
    case LabelKind::kSymbol:
      return vocab.symbols.NameOf(label.id);
    case LabelKind::kVariable:
      return "$" + vocab.variables.NameOf(label.id);
    case LabelKind::kSubst:
      return "%" + vocab.substs.NameOf(label.id);
    case LabelKind::kEta:
      return "@";
  }
  return "?";
}

namespace {

void TreeToString(const Hedge& h, NodeId n, const Vocabulary& vocab,
                  std::string& out) {
  out += LabelToString(h.label(n), vocab);
  if (h.label(n).kind == LabelKind::kSymbol &&
      h.first_child(n) != kNullNode) {
    out += "<";
    bool first = true;
    for (NodeId c = h.first_child(n); c != kNullNode; c = h.next_sibling(c)) {
      if (!first) out += " ";
      first = false;
      TreeToString(h, c, vocab, out);
    }
    out += ">";
  }
}

}  // namespace

std::string Hedge::ToString(const Vocabulary& vocab) const {
  std::string out;
  bool first = true;
  for (NodeId r : roots_) {
    if (!first) out += " ";
    first = false;
    TreeToString(*this, r, vocab, out);
  }
  return out;
}

namespace {

class HedgeParser {
 public:
  HedgeParser(std::string_view text, Vocabulary& vocab)
      : text_(text), vocab_(vocab) {}

  Result<Hedge> Parse() {
    Hedge h;
    Status s = ParseSequence(h, kNullNode);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(StrCat("unexpected character '",
                                            text_[pos_], "' at offset ", pos_,
                                            " in hedge: ", text_));
    }
    return h;
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-' || c == '#';
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtTreeStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return IsIdentChar(c) || c == '$' || c == '%' || c == '@';
  }

  Status ParseSequence(Hedge& h, NodeId parent) {
    while (AtTreeStart()) {
      HEDGEQ_RETURN_IF_ERROR(ParseTree(h, parent));
    }
    return Status::Ok();
  }

  Status ParseTree(Hedge& h, NodeId parent) {
    SkipSpace();
    char c = text_[pos_];
    if (c == '@') {
      ++pos_;
      h.Append(parent, Label::Eta());
      return Status::Ok();
    }
    if (c == '$' || c == '%') {
      ++pos_;
      std::string name;
      HEDGEQ_RETURN_IF_ERROR(ParseIdent(name));
      Label label = (c == '$') ? Label::Variable(vocab_.variables.Intern(name))
                               : Label::Subst(vocab_.substs.Intern(name));
      h.Append(parent, label);
      return Status::Ok();
    }
    std::string name;
    HEDGEQ_RETURN_IF_ERROR(ParseIdent(name));
    NodeId node = h.Append(parent, Label::Symbol(vocab_.symbols.Intern(name)));
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '<') {
      ++pos_;
      HEDGEQ_RETURN_IF_ERROR(ParseSequence(h, node));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '>') {
        return Status::InvalidArgument(
            StrCat("missing '>' at offset ", pos_, " in hedge: ", text_));
      }
      ++pos_;
    }
    return Status::Ok();
  }

  Status ParseIdent(std::string& out) {
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrCat("expected an identifier at offset ", pos_, " in: ", text_));
    }
    out = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  std::string_view text_;
  Vocabulary& vocab_;
  size_t pos_ = 0;
};

}  // namespace

Result<Hedge> ParseHedge(std::string_view text, Vocabulary& vocab) {
  HedgeParser parser(text, vocab);
  return parser.Parse();
}

}  // namespace hedgeq::hedge
