#include "hedge/pointed.h"

#include <algorithm>

#include "util/check.h"

namespace hedgeq::hedge {

std::optional<NodeId> FindEta(const Hedge& h) {
  std::optional<NodeId> found;
  for (NodeId n : h.PreOrder()) {
    if (h.label(n).kind == LabelKind::kEta) {
      if (found.has_value()) return std::nullopt;  // more than one
      found = n;
    }
  }
  return found;
}

bool IsPointed(const Hedge& h) { return FindEta(h).has_value(); }

namespace {

// Copies the subtree at `root` of `src` into `dst` under `parent`, replacing
// the (single) eta leaf by a copy of the whole hedge `replacement`.
void CopyReplacingEta(const Hedge& src, NodeId root, Hedge& dst, NodeId parent,
                      const Hedge& replacement) {
  if (src.label(root).kind == LabelKind::kEta) {
    dst.AppendHedgeCopy(parent, replacement);
    return;
  }
  NodeId copy = dst.Append(parent, src.label(root));
  for (NodeId c = src.first_child(root); c != kNullNode;
       c = src.next_sibling(c)) {
    CopyReplacingEta(src, c, dst, copy, replacement);
  }
}

}  // namespace

Hedge PointedProduct(const Hedge& u, const Hedge& v) {
  HEDGEQ_CHECK_MSG(IsPointed(u) && IsPointed(v),
                   "pointed product requires pointed operands");
  Hedge out;
  for (NodeId r : v.roots()) {
    CopyReplacingEta(v, r, out, kNullNode, u);
  }
  return out;
}

std::vector<PointedBase> Decompose(const Hedge& pointed) {
  std::optional<NodeId> eta = FindEta(pointed);
  HEDGEQ_CHECK_MSG(eta.has_value(), "Decompose requires a pointed hedge");
  NodeId anchor = pointed.parent(*eta);
  HEDGEQ_CHECK_MSG(anchor != kNullNode,
                   "eta at the top level has no base decomposition");

  std::vector<PointedBase> bases;
  // Walk from eta's parent up to the top level; at each level the base hedge
  // is (elder siblings) label<eta> (younger siblings).
  for (NodeId p = anchor; p != kNullNode; p = pointed.parent(p)) {
    HEDGEQ_CHECK(pointed.label(p).kind == LabelKind::kSymbol);
    PointedBase base;
    base.label = pointed.label(p).id;
    std::vector<NodeId> elders;
    for (NodeId s = pointed.prev_sibling(p); s != kNullNode;
         s = pointed.prev_sibling(s)) {
      elders.push_back(s);
    }
    std::reverse(elders.begin(), elders.end());
    for (NodeId s : elders) base.elder.AppendCopy(kNullNode, pointed, s);
    for (NodeId s = pointed.next_sibling(p); s != kNullNode;
         s = pointed.next_sibling(s)) {
      base.younger.AppendCopy(kNullNode, pointed, s);
    }
    bases.push_back(std::move(base));
  }
  return bases;
}

Hedge Recompose(const std::vector<PointedBase>& bases) {
  HEDGEQ_CHECK(!bases.empty());
  auto build_base = [](const PointedBase& b) {
    Hedge h;
    h.AppendHedgeCopy(kNullNode, b.elder);
    NodeId a = h.Append(kNullNode, Label::Symbol(b.label));
    h.Append(a, Label::Eta());
    h.AppendHedgeCopy(kNullNode, b.younger);
    return h;
  };
  Hedge acc = build_base(bases[0]);
  for (size_t i = 1; i < bases.size(); ++i) {
    acc = PointedProduct(acc, build_base(bases[i]));
  }
  return acc;
}

}  // namespace hedgeq::hedge
