#ifndef HEDGEQ_HEDGE_POINTED_H_
#define HEDGEQ_HEDGE_POINTED_H_

#include <optional>
#include <vector>

#include "hedge/hedge.h"

namespace hedgeq::hedge {

/// A pointed hedge (Definition 13) is a hedge containing exactly one eta
/// leaf. These helpers validate, combine and decompose such hedges.

/// Returns the unique eta node, or nullopt when the hedge is not pointed
/// (zero or multiple eta occurrences).
std::optional<NodeId> FindEta(const Hedge& h);

/// True when h contains exactly one eta leaf.
bool IsPointed(const Hedge& h);

/// The product u (+) v of pointed hedges (Definition 14): replaces the eta
/// leaf of v by the whole hedge u. Both inputs must be pointed; the result
/// is pointed (its eta is the one inside u).
Hedge PointedProduct(const Hedge& u, const Hedge& v);

/// One pointed base hedge (Definition 15) u1 a<eta> u2, split into its
/// elder-sibling hedge u1, the symbol a labeling eta's parent, and the
/// younger-sibling hedge u2.
struct PointedBase {
  Hedge elder;    // u1
  SymbolId label;  // a
  Hedge younger;  // u2
};

/// The unique decomposition of a pointed hedge into pointed base hedges
/// (Figure 2): element 0 is the innermost base (eta's parent level), the
/// last element is the top level. Recomposing with PointedProduct
/// left-to-right yields the original hedge. The input must be pointed and
/// eta must not occur at the top level (it must have a parent).
std::vector<PointedBase> Decompose(const Hedge& pointed);

/// Rebuilds a pointed hedge from base hedges: bases[0] (+) bases[1] (+) ...
Hedge Recompose(const std::vector<PointedBase>& bases);

}  // namespace hedgeq::hedge

#endif  // HEDGEQ_HEDGE_POINTED_H_
