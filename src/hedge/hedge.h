#ifndef HEDGEQ_HEDGE_HEDGE_H_
#define HEDGEQ_HEDGE_HEDGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/interner.h"
#include "util/status.h"

namespace hedgeq::hedge {

/// Node id within one Hedge arena.
using NodeId = uint32_t;
inline constexpr NodeId kNullNode = UINT32_MAX;

/// Interned element name (Sigma), variable (X) or substitution symbol (Z).
using SymbolId = InternId;
using VarId = InternId;
using SubstId = InternId;

/// The shared name spaces of a document/query universe: the alphabet Sigma,
/// the variable set X, and the substitution symbols Z of the paper. All are
/// pairwise disjoint by construction (separate interners).
struct Vocabulary {
  Interner symbols;    // Sigma: labels of non-leaf nodes (XML elements)
  Interner variables;  // X: labels of leaf nodes (XML text)
  Interner substs;     // Z: substitution symbols of hedge regular expressions
};

/// What a node is labeled with.
enum class LabelKind : uint8_t {
  kSymbol,    // a in Sigma, may have children
  kVariable,  // x in X, always a leaf
  kSubst,     // z in Z, always a leaf (hedges with substitution symbols)
  kEta,       // the point of a pointed hedge, always a leaf
};

/// A node label: kind plus the id within the kind's interner.
struct Label {
  LabelKind kind;
  InternId id;  // unused for kEta

  static Label Symbol(SymbolId s) { return {LabelKind::kSymbol, s}; }
  static Label Variable(VarId x) { return {LabelKind::kVariable, x}; }
  static Label Subst(SubstId z) { return {LabelKind::kSubst, z}; }
  static Label Eta() { return {LabelKind::kEta, 0}; }

  bool operator==(const Label& other) const {
    if (kind != other.kind) return false;
    if (kind == LabelKind::kEta) return true;
    return id == other.id;
  }
};

/// An ordered sequence of ordered labeled trees (Definition 1), stored in an
/// append-only arena. Nodes labeled with symbols may have children; nodes
/// labeled with variables, substitution symbols or eta are leaves.
class Hedge {
 public:
  Hedge() = default;

  /// Appends a node as the last child of `parent`, or as a new top-level
  /// tree when parent is kNullNode. Returns the new node's id.
  NodeId Append(NodeId parent, Label label);

  /// Deep-copies the subtree rooted at `src_root` of `src` as the last child
  /// of `parent` (top level when kNullNode). Returns the copy's root id.
  NodeId AppendCopy(NodeId parent, const Hedge& src, NodeId src_root);

  /// Deep-copies every top-level tree of `src` under `parent` (or at the top
  /// level when parent is kNullNode), in order.
  void AppendHedgeCopy(NodeId parent, const Hedge& src);

  size_t num_nodes() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  const std::vector<NodeId>& roots() const { return roots_; }

  Label label(NodeId n) const { return labels_[n]; }
  NodeId parent(NodeId n) const { return parents_[n]; }
  NodeId first_child(NodeId n) const { return first_children_[n]; }
  NodeId last_child(NodeId n) const { return last_children_[n]; }
  NodeId next_sibling(NodeId n) const { return next_siblings_[n]; }
  NodeId prev_sibling(NodeId n) const { return prev_siblings_[n]; }

  /// Children of `n` in document order (the top-level sequence when n is
  /// kNullNode).
  std::vector<NodeId> ChildrenOf(NodeId n) const;

  /// All node ids in document (pre-)order.
  std::vector<NodeId> PreOrder() const;

  /// Number of nodes in the subtree rooted at n (including n).
  size_t SubtreeSize(NodeId n) const;

  /// The ceil (Definition 2): labels of the top-level nodes, in order.
  std::vector<Label> Ceil() const;

  /// Dewey address of a node: the 0-based child-index path from the top.
  std::vector<uint32_t> DeweyOf(NodeId n) const;
  /// Inverse of DeweyOf; kNullNode when the address does not exist.
  NodeId AtDewey(const std::vector<uint32_t>& address) const;

  /// Depth of n (top-level nodes have depth 0).
  size_t DepthOf(NodeId n) const;

  /// The subhedge of n (Definition 21): the hedge of all descendants of n,
  /// i.e. the sequence of n's children subtrees.
  Hedge SubhedgeOf(NodeId n) const;

  /// The envelope of n (Definition 21): this hedge with the subhedge of n
  /// removed and eta added as the only child of n. The result is a pointed
  /// hedge. `eta_parent`, when non-null, receives the id of n's copy.
  Hedge EnvelopeOf(NodeId n, NodeId* eta_parent = nullptr) const;

  /// Structural equality.
  bool EqualTo(const Hedge& other) const;

  /// Renders in the term syntax accepted by ParseHedge.
  std::string ToString(const Vocabulary& vocab) const;

 private:
  bool SubtreeEqual(NodeId a, const Hedge& other, NodeId b) const;

  std::vector<Label> labels_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_children_;
  std::vector<NodeId> last_children_;
  std::vector<NodeId> next_siblings_;
  std::vector<NodeId> prev_siblings_;
  std::vector<NodeId> roots_;
};

/// Parses the term syntax of the paper:
///   hedge  := tree*
///   tree   := SYMBOL ('<' hedge '>')?   -- a<u>; bare a abbreviates a<>
///           | '$' IDENT                 -- variable x in X
///           | '%' IDENT                 -- substitution symbol z in Z
///           | '@'                       -- eta (the point)
/// Identifiers are [A-Za-z0-9_.-]+; whitespace separates trees.
/// New names are interned into `vocab`.
Result<Hedge> ParseHedge(std::string_view text, Vocabulary& vocab);

/// Renders one label ("a", "$x", "%z", "@").
std::string LabelToString(const Label& label, const Vocabulary& vocab);

}  // namespace hedgeq::hedge

#endif  // HEDGEQ_HEDGE_HEDGE_H_
