#include "xml/xml.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/strings.h"

namespace hedgeq::xml {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::Label;
using hedge::NodeId;

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

bool IsWhitespaceOnly(std::string_view s) {
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

// Extended sink used internally: the streaming parser also reports
// attributes so the tree builder can fill the side table.
class AttributeSink {
 public:
  virtual ~AttributeSink() = default;
  virtual Status Attribute(std::string_view name, std::string_view value) = 0;
};

// The single streaming parser; ParseXml runs it with a tree-building
// handler, ParseXmlStream with the caller's.
class XmlStreamParser {
 public:
  XmlStreamParser(std::string_view input, hedge::Vocabulary& vocab,
                  XmlHandler& handler, AttributeSink* attribute_sink,
                  const XmlParseOptions& options)
      : input_(input),
        vocab_(vocab),
        handler_(handler),
        attribute_sink_(attribute_sink),
        options_(options),
        text_variable_(vocab.variables.Intern(options.text_variable)) {}

  Status Parse() {
    if (input_.size() > options_.max_input_bytes) {
      return Status::ResourceExhausted(
          StrCat("XML input is ", input_.size(),
                 " bytes, over XmlParseOptions::max_input_bytes=",
                 options_.max_input_bytes));
    }
    HEDGEQ_RETURN_IF_ERROR(SkipMisc(/*allow_doctype=*/true));
    while (pos_ < input_.size()) {
      if (input_[pos_] == '<') {
        HEDGEQ_RETURN_IF_ERROR(ParseElement());
      } else {
        size_t start = pos_;
        while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
        if (!IsWhitespaceOnly(input_.substr(start, pos_ - start))) {
          return Status::InvalidArgument(
              StrCat("character data outside the document element at offset ",
                     start));
        }
      }
      HEDGEQ_RETURN_IF_ERROR(SkipMisc(/*allow_doctype=*/false));
    }
    return Status::Ok();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Status SkipMisc(bool allow_doctype) {
    while (true) {
      SkipWhitespace();
      if (StartsWith(Rest(), "<?")) {
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument(
              "unterminated processing instruction");
        }
        pos_ = end + 2;
      } else if (StartsWith(Rest(), "<!--")) {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated comment");
        }
        pos_ = end + 3;
      } else if (allow_doctype && StartsWith(Rest(), "<!DOCTYPE")) {
        int depth = 0;
        while (pos_ < input_.size()) {
          char c = input_[pos_++];
          if (c == '[') ++depth;
          if (c == ']') --depth;
          if (c == '>' && depth == 0) break;
        }
      } else {
        return Status::Ok();
      }
    }
  }

  std::string_view Rest() const { return input_.substr(pos_); }

  Status ParseName(std::string& out) {
    if (pos_ >= input_.size() || !IsNameStartChar(input_[pos_])) {
      return Status::InvalidArgument(
          StrCat("expected a name at offset ", pos_));
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    out = std::string(input_.substr(start, pos_ - start));
    return Status::Ok();
  }

  Status DecodeEntity(std::string& out) {
    size_t end = input_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 12) {
      return Status::InvalidArgument(
          StrCat("malformed entity reference at offset ", pos_));
    }
    std::string_view name = input_.substr(pos_ + 1, end - pos_ - 1);
    if (name == "lt") {
      out += '<';
    } else if (name == "gt") {
      out += '>';
    } else if (name == "amp") {
      out += '&';
    } else if (name == "apos") {
      out += '\'';
    } else if (name == "quot") {
      out += '"';
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) {
        return Status::InvalidArgument(
            StrCat("bad character reference &", std::string(name), ";"));
      }
      unsigned long code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') {
          d = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else {
          return Status::InvalidArgument(
              StrCat("bad character reference &", std::string(name), ";"));
        }
        code = code * static_cast<unsigned long>(base) +
               static_cast<unsigned long>(d);
        if (code > 0x10FFFF) {
          return Status::InvalidArgument(
              StrCat("character reference &", std::string(name),
                     "; is beyond U+10FFFF"));
        }
      }
      if (code == 0 || (code >= 0xD800 && code <= 0xDFFF)) {
        return Status::InvalidArgument(
            StrCat("character reference &", std::string(name),
                   "; is not a valid XML character"));
      }
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      return Status::InvalidArgument(
          StrCat("unknown entity &", std::string(name), ";"));
    }
    pos_ = end + 1;
    return Status::Ok();
  }

  Status ParseAttrValue(std::string& out) {
    if (pos_ >= input_.size() ||
        (input_[pos_] != '"' && input_[pos_] != '\'')) {
      return Status::InvalidArgument(
          StrCat("expected a quoted attribute value at offset ", pos_));
    }
    char quote = input_[pos_++];
    while (pos_ < input_.size() && input_[pos_] != quote) {
      if (input_[pos_] == '&') {
        HEDGEQ_RETURN_IF_ERROR(DecodeEntity(out));
      } else if (input_[pos_] == '<') {
        return Status::InvalidArgument(
            StrCat("'<' in attribute value at offset ", pos_));
      } else {
        out += input_[pos_++];
      }
    }
    if (pos_ >= input_.size()) {
      return Status::InvalidArgument("unterminated attribute value");
    }
    ++pos_;
    return Status::Ok();
  }

  Status EmitText(std::string text) {
    if (text.empty()) return Status::Ok();
    if (options_.ignore_whitespace_text && IsWhitespaceOnly(text)) {
      return Status::Ok();
    }
    return handler_.Text(text_variable_, text);
  }

  // One element the parser has opened but not yet closed. The element
  // stack lives on the heap, so max_depth is a pure semantic limit: a
  // nesting bomb fails cleanly no matter how large native stack frames
  // are (sanitizer builds inflate them severely enough that bounded
  // recursion at the old cap still overflowed an 8 MiB stack).
  struct OpenElement {
    std::string name;
    hedge::SymbolId symbol;
    std::string pending_text;
  };

  // Parses one element subtree iteratively: ParseStartTag pushes opened
  // elements onto `open`, close tags pop them, and the loop ends when the
  // element that started it is closed.
  Status ParseElement() {
    std::vector<OpenElement> open;
    HEDGEQ_RETURN_IF_ERROR(ParseStartTag(open));
    while (!open.empty()) {
      if (pos_ >= input_.size()) {
        return Status::InvalidArgument(
            StrCat("unterminated element <", open.back().name, ">"));
      }
      std::string& pending_text = open.back().pending_text;
      if (StartsWith(Rest(), "</")) {
        HEDGEQ_RETURN_IF_ERROR(EmitText(std::move(pending_text)));
        pending_text.clear();
        pos_ += 2;
        std::string close_name;
        HEDGEQ_RETURN_IF_ERROR(ParseName(close_name));
        if (close_name != open.back().name) {
          return Status::InvalidArgument(StrCat("mismatched close tag </",
                                                close_name, "> for <",
                                                open.back().name, ">"));
        }
        SkipWhitespace();
        if (pos_ >= input_.size() || input_[pos_] != '>') {
          return Status::InvalidArgument("malformed close tag");
        }
        ++pos_;
        HEDGEQ_RETURN_IF_ERROR(handler_.EndElement(open.back().symbol));
        open.pop_back();
        continue;
      }
      if (StartsWith(Rest(), "<!--")) {
        size_t end = input_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (StartsWith(Rest(), "<![CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated CDATA section");
        }
        pending_text += std::string(input_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (StartsWith(Rest(), "<?")) {
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument(
              "unterminated processing instruction");
        }
        pos_ = end + 2;
        continue;
      }
      if (input_[pos_] == '<') {
        HEDGEQ_RETURN_IF_ERROR(EmitText(std::move(pending_text)));
        pending_text.clear();
        HEDGEQ_RETURN_IF_ERROR(ParseStartTag(open));
        continue;
      }
      if (input_[pos_] == '&') {
        HEDGEQ_RETURN_IF_ERROR(DecodeEntity(pending_text));
        continue;
      }
      pending_text += input_[pos_++];
    }
    return Status::Ok();
  }

  // Parses one start tag (attributes included). A self-closing tag emits
  // its EndElement immediately; otherwise the element is pushed onto
  // `open` and ParseElement's loop consumes its content.
  Status ParseStartTag(std::vector<OpenElement>& open) {
    if (open.size() >= options_.max_depth) {
      return Status::ResourceExhausted(
          StrCat("element nesting deeper than XmlParseOptions::max_depth=",
                 options_.max_depth, " at offset ", pos_));
    }
    HEDGEQ_CHECK(input_[pos_] == '<');
    ++pos_;
    std::string name;
    HEDGEQ_RETURN_IF_ERROR(ParseName(name));
    hedge::SymbolId symbol = vocab_.symbols.Intern(name);
    HEDGEQ_RETURN_IF_ERROR(handler_.StartElement(symbol));

    // Attributes.
    std::vector<std::pair<std::string, std::string>> attributes;
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) {
        return Status::InvalidArgument("unterminated start tag");
      }
      if (input_[pos_] == '>' || StartsWith(Rest(), "/>")) break;
      std::string attr_name;
      HEDGEQ_RETURN_IF_ERROR(ParseName(attr_name));
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '=') {
        return Status::InvalidArgument(
            StrCat("expected '=' after attribute ", attr_name));
      }
      ++pos_;
      SkipWhitespace();
      std::string value;
      HEDGEQ_RETURN_IF_ERROR(ParseAttrValue(value));
      if (attribute_sink_ != nullptr) {
        HEDGEQ_RETURN_IF_ERROR(attribute_sink_->Attribute(attr_name, value));
      }
      attributes.emplace_back(std::move(attr_name), std::move(value));
    }

    if (options_.attributes_as_elements) {
      for (const auto& [attr_name, value] : attributes) {
        hedge::SymbolId attr_symbol =
            vocab_.symbols.Intern("@" + attr_name);
        HEDGEQ_RETURN_IF_ERROR(handler_.StartElement(attr_symbol));
        HEDGEQ_RETURN_IF_ERROR(handler_.Text(text_variable_, value));
        HEDGEQ_RETURN_IF_ERROR(handler_.EndElement(attr_symbol));
      }
    }

    if (StartsWith(Rest(), "/>")) {
      pos_ += 2;
      return handler_.EndElement(symbol);
    }
    ++pos_;  // '>'
    open.push_back(OpenElement{std::move(name), symbol, std::string()});
    return Status::Ok();
  }

  std::string_view input_;
  hedge::Vocabulary& vocab_;
  XmlHandler& handler_;
  AttributeSink* attribute_sink_;
  const XmlParseOptions& options_;
  hedge::VarId text_variable_;
  size_t pos_ = 0;
};

// Builds an XmlDocument from the event stream (what ParseXml returns).
class TreeBuilder : public XmlHandler, public AttributeSink {
 public:
  Status StartElement(hedge::SymbolId name) override {
    NodeId parent = stack_.empty() ? kNullNode : stack_.back();
    NodeId node = doc_.hedge.Append(parent, Label::Symbol(name));
    doc_.texts.emplace_back();
    doc_.attributes.emplace_back();
    stack_.push_back(node);
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId) override {
    stack_.pop_back();
    return Status::Ok();
  }
  Status Text(hedge::VarId variable, std::string_view content) override {
    NodeId parent = stack_.empty() ? kNullNode : stack_.back();
    doc_.hedge.Append(parent, Label::Variable(variable));
    doc_.texts.emplace_back(content);
    doc_.attributes.emplace_back();
    return Status::Ok();
  }
  Status Attribute(std::string_view name, std::string_view value) override {
    HEDGEQ_CHECK(!stack_.empty());
    doc_.attributes[stack_.back()].emplace_back(name, value);
    return Status::Ok();
  }

  XmlDocument Take() { return std::move(doc_); }

 private:
  XmlDocument doc_;
  std::vector<NodeId> stack_;
};

void SerializeNode(const XmlDocument& doc, const hedge::Vocabulary& vocab,
                   NodeId n, std::string& out) {
  const Label label = doc.hedge.label(n);
  if (label.kind == hedge::LabelKind::kVariable) {
    out += EscapeText(n < doc.texts.size() ? doc.texts[n] : "");
    return;
  }
  HEDGEQ_CHECK(label.kind == hedge::LabelKind::kSymbol);
  const std::string& name = vocab.symbols.NameOf(label.id);
  out += "<" + name;
  if (n < doc.attributes.size()) {
    for (const auto& [attr, value] : doc.attributes[n]) {
      out += " " + attr + "=\"" + EscapeText(value) + "\"";
    }
  }
  NodeId child = doc.hedge.first_child(n);
  if (child == kNullNode) {
    out += "/>";
    return;
  }
  out += ">";
  for (; child != kNullNode; child = doc.hedge.next_sibling(child)) {
    SerializeNode(doc, vocab, child, out);
  }
  out += "</" + name + ">";
}

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input, hedge::Vocabulary& vocab,
                             const XmlParseOptions& options) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kXmlParse);
  TreeBuilder builder;
  XmlStreamParser parser(input, vocab, builder, &builder, options);
  Status status = parser.Parse();
  if (!status.ok()) return status;
  XmlDocument doc = builder.Take();
  doc.texts.resize(doc.hedge.num_nodes());
  doc.attributes.resize(doc.hedge.num_nodes());
  if (obs::Enabled()) {
    const size_t n = doc.hedge.num_nodes();
    // Element depth via one forward sweep (arena ids ascend parent->child).
    std::vector<uint32_t> depth(n, 1);
    uint32_t max_depth = n == 0 ? 0 : 1;
    for (NodeId node = 0; node < n; ++node) {
      NodeId parent = doc.hedge.parent(node);
      if (parent != kNullNode) depth[node] = depth[parent] + 1;
      max_depth = std::max(max_depth, depth[node]);
    }
    HEDGEQ_OBS_COUNT(obs::metrics::kXmlParseBytes, input.size());
    HEDGEQ_OBS_COUNT(obs::metrics::kXmlParseNodes, n);
    HEDGEQ_OBS_GAUGE_MAX(obs::metrics::kXmlParseMaxDepth, max_depth);
    HEDGEQ_OBS_OBSERVE(obs::metrics::kHistDocNodes, n);
    span.AddArg("bytes", input.size());
    span.AddArg("nodes", n);
    span.AddArg("max_depth", max_depth);
  }
  return doc;
}

Status ParseXmlStream(std::string_view input, hedge::Vocabulary& vocab,
                      XmlHandler& handler, const XmlParseOptions& options) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kXmlParse);
  HEDGEQ_OBS_COUNT(obs::metrics::kXmlParseBytes, input.size());
  span.AddArg("bytes", input.size());
  XmlStreamParser parser(input, vocab, handler, nullptr, options);
  return parser.Parse();
}

std::string SerializeXml(const XmlDocument& doc,
                         const hedge::Vocabulary& vocab) {
  std::string out;
  for (NodeId r : doc.hedge.roots()) {
    SerializeNode(doc, vocab, r, out);
  }
  return out;
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

XmlDocument WrapHedge(const hedge::Hedge& h, hedge::Vocabulary& vocab,
                      std::string placeholder_text) {
  XmlDocument doc;
  std::vector<NodeId> map(h.num_nodes(), kNullNode);
  for (NodeId n : h.PreOrder()) {
    NodeId parent = h.parent(n) == kNullNode ? kNullNode : map[h.parent(n)];
    Label label = h.label(n);
    switch (label.kind) {
      case hedge::LabelKind::kSymbol:
      case hedge::LabelKind::kVariable:
        break;
      case hedge::LabelKind::kSubst:
        label = Label::Symbol(
            vocab.symbols.Intern("z:" + vocab.substs.NameOf(label.id)));
        break;
      case hedge::LabelKind::kEta:
        label = Label::Symbol(vocab.symbols.Intern("eta"));
        break;
    }
    map[n] = doc.hedge.Append(parent, label);
  }
  doc.texts.assign(doc.hedge.num_nodes(), "");
  doc.attributes.resize(doc.hedge.num_nodes());
  for (NodeId n = 0; n < doc.hedge.num_nodes(); ++n) {
    if (doc.hedge.label(n).kind == hedge::LabelKind::kVariable) {
      doc.texts[n] = placeholder_text;
    }
  }
  return doc;
}

}  // namespace hedgeq::xml
