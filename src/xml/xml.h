#ifndef HEDGEQ_XML_XML_H_
#define HEDGEQ_XML_XML_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hedge/hedge.h"
#include "util/status.h"

namespace hedgeq::xml {

/// A parsed XML document viewed as a hedge (the paper's data model: XML
/// documents are hedges; element tags are the alphabet Sigma and text nodes
/// are variables). Side tables keep what the hedge abstraction drops so
/// documents can be serialized back.
struct XmlDocument {
  hedge::Hedge hedge;
  /// Raw text content for nodes labeled with the text variable, indexed by
  /// NodeId ("" for element nodes).
  std::vector<std::string> texts;
  /// Attributes per node id (empty for text nodes).
  std::vector<std::vector<std::pair<std::string, std::string>>> attributes;
};

/// Parsing knobs.
struct XmlParseOptions {
  /// Name of the variable in X used to label text nodes (interned into the
  /// vocabulary). The paper requires a finite X, so all text maps to one
  /// variable; the raw content survives in XmlDocument::texts.
  std::string text_variable = "#text";
  /// When true, each attribute becomes a leading child element named
  /// "@<attr>" holding one text node, so queries can see attributes (the
  /// paper's Section 2 suggests extending terminal symbols this way).
  bool attributes_as_elements = false;
  /// When true, whitespace-only text between elements is dropped.
  bool ignore_whitespace_text = true;
  /// Maximum element nesting depth; deeper documents fail with
  /// kResourceExhausted. The parser recurses once per open element, so this
  /// also bounds native stack use against nesting bombs.
  size_t max_depth = 4096;
  /// Maximum input size in bytes; larger inputs fail with
  /// kResourceExhausted before any parsing work.
  size_t max_input_bytes = size_t{1} << 30;  // 1 GiB
};

/// Parses a (non-validating) XML 1.0 subset: elements, attributes,
/// character data, CDATA sections, comments, processing instructions, the
/// XML declaration, a DOCTYPE line (skipped), and the five predefined
/// entities plus decimal/hex character references. Element names are
/// interned into `vocab.symbols`.
Result<XmlDocument> ParseXml(std::string_view input, hedge::Vocabulary& vocab,
                             const XmlParseOptions& options = {});

/// SAX-style event sink for streaming parses. Callbacks may return an
/// error Status to abort parsing.
class XmlHandler {
 public:
  virtual ~XmlHandler() = default;
  virtual Status StartElement(hedge::SymbolId name) = 0;
  virtual Status EndElement(hedge::SymbolId name) = 0;
  /// One text node (whitespace-only runs are dropped unless configured
  /// otherwise); `variable` is the interned text variable.
  virtual Status Text(hedge::VarId variable, std::string_view content) = 0;
};

/// Streaming parse: same grammar as ParseXml but no tree is built —
/// events fire in document order and memory use is O(element depth).
/// Attributes are recorded per element but only surfaced as elements when
/// options.attributes_as_elements is set.
Status ParseXmlStream(std::string_view input, hedge::Vocabulary& vocab,
                      XmlHandler& handler,
                      const XmlParseOptions& options = {});

/// Serializes a document back to XML text. Text nodes emit their raw
/// content (escaped); attributes are emitted from the side table.
std::string SerializeXml(const XmlDocument& doc,
                         const hedge::Vocabulary& vocab);

/// Escapes the five predefined entities in character data.
std::string EscapeText(std::string_view text);

/// Wraps a bare hedge (e.g. from a generator or a schema witness) as an
/// XmlDocument so it can be serialized; every variable leaf carries
/// `placeholder_text` and substitution/eta leaves are rendered as empty
/// elements named "z:<name>" / "eta" (interned into `vocab`).
XmlDocument WrapHedge(const hedge::Hedge& h, hedge::Vocabulary& vocab,
                      std::string placeholder_text = "text");

}  // namespace hedgeq::xml

#endif  // HEDGEQ_XML_XML_H_
