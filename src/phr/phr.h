#ifndef HEDGEQ_PHR_PHR_H_
#define HEDGEQ_PHR_PHR_H_

#include <string>
#include <vector>

#include "automata/nha.h"
#include "hedge/pointed.h"
#include "hre/ast.h"
#include "strre/automaton.h"
#include "strre/regex.h"
#include "util/status.h"

namespace hedgeq::phr {

/// A pointed base hedge representation (Definition 16): a triplet
/// (e1, a, e2) where e1 constrains the elder siblings (and their
/// descendants), a constrains the node label, and e2 constrains the younger
/// siblings. A null expression means "no condition" (any hedge) — with both
/// null the triplet degenerates to a classic path-expression step, which is
/// what the simplified construction at the end of Section 8 exploits.
struct PointedBaseRep {
  hre::Hre elder;          // e1; nullptr = any hedge
  hedge::SymbolId label;   // a
  hre::Hre younger;        // e2; nullptr = any hedge

  bool IsPathStep() const { return elder == nullptr && younger == nullptr; }
};

/// A pointed hedge representation (Definition 18): a regular expression over
/// a finite alphabet of pointed base hedge representations. The regex's
/// symbols are indices into `triplets`. Reading order follows the unique
/// decomposition of pointed hedges: position 0 is the innermost base (the
/// level of the located node), the last position is the top level.
class Phr {
 public:
  Phr(std::vector<PointedBaseRep> triplets, strre::Regex regex)
      : triplets_(std::move(triplets)), regex_(std::move(regex)) {}

  const std::vector<PointedBaseRep>& triplets() const { return triplets_; }
  const strre::Regex& regex() const { return regex_; }

  /// True when every triplet is an unconditional path step, i.e. the PHR is
  /// a traditional path expression.
  bool IsPathExpression() const;

  std::string ToString(const hedge::Vocabulary& vocab) const;

 private:
  std::vector<PointedBaseRep> triplets_;
  strre::Regex regex_;
};

/// Parses the textual PHR syntax (a regex whose atoms are triplets):
///   phr     := union
///   union   := cat ('|' cat)*
///   cat     := factor+
///   factor  := atom ('*' | '+' | '?')*
///   atom    := '[' cond ';' NAME ';' cond ']'   -- (e1, a, e2)
///            | NAME                             -- sugar for [*; NAME; *]
///            | '(' phr ')'
///   cond    := '*' | HRE                        -- '*' = no condition
/// Example (paper Section 5): [a<%z>*^z; b; a<%z>*^z]* — nodes whose
/// ancestors are all b and everything else is a.
Result<Phr> ParsePhr(std::string_view text, hedge::Vocabulary& vocab);

/// Direct implementation of Definition 19, used as the correctness oracle
/// and the naive complexity baseline: decomposes the pointed hedge, tests
/// every base against every triplet by NHA simulation, and simulates the
/// PHR regex over the resulting letter choices.
class NaivePhrMatcher {
 public:
  explicit NaivePhrMatcher(const Phr& phr);

  /// Does this pointed hedge match the representation?
  bool Matches(const hedge::Hedge& pointed) const;

 private:
  const Phr& phr_;
  strre::Nfa regex_nfa_;
  // Compiled automata per triplet (null expressions compile to nothing and
  // always match).
  std::vector<std::optional<automata::Nha>> elder_nhas_;
  std::vector<std::optional<automata::Nha>> younger_nhas_;
};

}  // namespace hedgeq::phr

#endif  // HEDGEQ_PHR_PHR_H_
