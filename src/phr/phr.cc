#include "phr/phr.h"

#include <cctype>

#include "hre/compile.h"
#include "strre/ops.h"
#include "util/strings.h"

namespace hedgeq::phr {

using hedge::Hedge;
using hedge::Vocabulary;

bool Phr::IsPathExpression() const {
  for (const PointedBaseRep& t : triplets_) {
    if (!t.IsPathStep()) return false;
  }
  return true;
}

std::string Phr::ToString(const Vocabulary& vocab) const {
  return strre::RegexToString(regex_, [&](strre::Symbol s) {
    const PointedBaseRep& t = triplets_[s];
    if (t.IsPathStep()) return vocab.symbols.NameOf(t.label);
    std::string e1 = t.elder ? hre::HreToString(t.elder, vocab) : "*";
    std::string e2 = t.younger ? hre::HreToString(t.younger, vocab) : "*";
    return StrCat("[", e1, "; ", vocab.symbols.NameOf(t.label), "; ", e2,
                  "]");
  });
}

namespace {

class PhrParser {
 public:
  PhrParser(std::string_view text, Vocabulary& vocab)
      : text_(text), vocab_(vocab) {}

  Result<Phr> Parse() {
    Result<strre::Regex> r = ParseUnion();
    if (!r.ok()) return r.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(StrCat("unexpected character '",
                                            text_[pos_], "' at offset ", pos_,
                                            " in: ", text_));
    }
    return Phr(std::move(triplets_), std::move(r).value());
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == ')' || c == '|') return false;
    return IsIdentChar(c) || c == '(' || c == '[';
  }

  // Parenthesized atoms re-enter ParseUnion, so nesting maps to native
  // stack depth; bound it so "((((...))))" bombs fail cleanly. 512 holds
  // comfortably within an 8 MiB stack even under ASan's inflated frames
  // (~5 parser frames per nesting level).
  static constexpr size_t kMaxNesting = 512;

  Result<strre::Regex> ParseUnion() {
    if (depth_ >= kMaxNesting) {
      return Status::ResourceExhausted(
          StrCat("nesting deeper than ", kMaxNesting, " at offset ", pos_,
                 " in pointed hedge representation"));
    }
    ++depth_;
    Result<strre::Regex> out = ParseUnionImpl();
    --depth_;
    return out;
  }

  Result<strre::Regex> ParseUnionImpl() {
    Result<strre::Regex> left = ParseConcat();
    if (!left.ok()) return left;
    strre::Regex out = std::move(left).value();
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        Result<strre::Regex> right = ParseConcat();
        if (!right.ok()) return right;
        out = strre::Alt(std::move(out), std::move(right).value());
      } else {
        break;
      }
    }
    return out;
  }

  Result<strre::Regex> ParseConcat() {
    strre::Regex out = strre::Epsilon();
    bool any = false;
    while (AtAtomStart()) {
      Result<strre::Regex> f = ParseFactor();
      if (!f.ok()) return f;
      out = strre::Concat(std::move(out), std::move(f).value());
      any = true;
    }
    if (!any) {
      return Status::InvalidArgument(
          StrCat("expected a triplet or symbol at offset ", pos_,
                 " in: ", text_));
    }
    return out;
  }

  Result<strre::Regex> ParseFactor() {
    Result<strre::Regex> atom = ParseAtom();
    if (!atom.ok()) return atom;
    strre::Regex out = std::move(atom).value();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '*') {
        out = strre::Star(std::move(out));
        ++pos_;
      } else if (c == '+') {
        out = strre::Plus(std::move(out));
        ++pos_;
      } else if (c == '?') {
        out = strre::Optional(std::move(out));
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  Result<strre::Regex> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of pointed hedge "
                                     "representation");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Result<strre::Regex> inner = ParseUnion();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::InvalidArgument(
            StrCat("missing ')' at offset ", pos_, " in: ", text_));
      }
      ++pos_;
      return inner;
    }
    if (c == '[') {
      ++pos_;
      size_t end = text_.find(']', pos_);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument(
            StrCat("missing ']' at offset ", pos_, " in: ", text_));
      }
      std::vector<std::string> parts =
          StrSplit(text_.substr(pos_, end - pos_), ';');
      if (parts.size() != 3) {
        return Status::InvalidArgument(
            StrCat("a triplet needs exactly two ';' separators: [",
                   std::string(text_.substr(pos_, end - pos_)), "]"));
      }
      pos_ = end + 1;

      PointedBaseRep triplet;
      Status s1 = ParseCond(parts[0], &triplet.elder);
      if (!s1.ok()) return s1;
      std::string_view name = StripAsciiWhitespace(parts[1]);
      if (name.empty()) {
        return Status::InvalidArgument("triplet symbol must not be empty");
      }
      triplet.label = vocab_.symbols.Intern(name);
      Status s2 = ParseCond(parts[2], &triplet.younger);
      if (!s2.ok()) return s2;
      return AddTriplet(std::move(triplet));
    }
    if (IsIdentChar(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      PointedBaseRep triplet;
      triplet.elder = nullptr;
      triplet.younger = nullptr;
      triplet.label =
          vocab_.symbols.Intern(text_.substr(start, pos_ - start));
      return AddTriplet(std::move(triplet));
    }
    return Status::InvalidArgument(StrCat("unexpected character '", c,
                                          "' at offset ", pos_,
                                          " in: ", text_));
  }

  Status ParseCond(std::string_view part, hre::Hre* out) {
    part = StripAsciiWhitespace(part);
    if (part == "*") {
      *out = nullptr;
      return Status::Ok();
    }
    Result<hre::Hre> e = hre::ParseHre(part, vocab_);
    if (!e.ok()) return e.status();
    *out = std::move(e).value();
    return Status::Ok();
  }

  strre::Regex AddTriplet(PointedBaseRep triplet) {
    triplets_.push_back(std::move(triplet));
    return strre::Sym(static_cast<strre::Symbol>(triplets_.size() - 1));
  }

  std::string_view text_;
  Vocabulary& vocab_;
  std::vector<PointedBaseRep> triplets_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<Phr> ParsePhr(std::string_view text, Vocabulary& vocab) {
  PhrParser parser(text, vocab);
  return parser.Parse();
}

NaivePhrMatcher::NaivePhrMatcher(const Phr& phr)
    : phr_(phr), regex_nfa_(strre::CompileRegex(phr.regex())) {
  for (const PointedBaseRep& t : phr.triplets()) {
    elder_nhas_.push_back(
        t.elder ? std::optional<automata::Nha>(hre::CompileHre(t.elder))
                : std::nullopt);
    younger_nhas_.push_back(
        t.younger ? std::optional<automata::Nha>(hre::CompileHre(t.younger))
                  : std::nullopt);
  }
}

bool NaivePhrMatcher::Matches(const Hedge& pointed) const {
  std::optional<hedge::NodeId> eta = hedge::FindEta(pointed);
  if (!eta.has_value()) return false;
  if (pointed.parent(*eta) == hedge::kNullNode) {
    // Only the bare pointed hedge "eta" decomposes (into zero bases).
    if (pointed.num_nodes() != 1) return false;
    return strre::AcceptsChoices(regex_nfa_, {});
  }
  std::vector<hedge::PointedBase> bases = hedge::Decompose(pointed);
  std::vector<std::vector<strre::Symbol>> choices(bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    for (size_t t = 0; t < phr_.triplets().size(); ++t) {
      const PointedBaseRep& rep = phr_.triplets()[t];
      if (rep.label != bases[i].label) continue;
      if (elder_nhas_[t].has_value() &&
          !elder_nhas_[t]->Accepts(bases[i].elder)) {
        continue;
      }
      if (younger_nhas_[t].has_value() &&
          !younger_nhas_[t]->Accepts(bases[i].younger)) {
        continue;
      }
      choices[i].push_back(static_cast<strre::Symbol>(t));
    }
    if (choices[i].empty()) return false;
  }
  return strre::AcceptsChoices(regex_nfa_, choices);
}

}  // namespace hedgeq::phr
