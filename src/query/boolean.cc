#include "query/boolean.h"

#include "util/check.h"

namespace hedgeq::query {

BooleanQuery BooleanQuery::Leaf(SelectionQuery query) {
  BooleanQuery out;
  out.kind_ = Kind::kLeaf;
  out.leaf_ = std::make_shared<const SelectionQuery>(std::move(query));
  return out;
}

BooleanQuery BooleanQuery::And(BooleanQuery a, BooleanQuery b) {
  BooleanQuery out;
  out.kind_ = Kind::kAnd;
  out.left_ = std::make_shared<const BooleanQuery>(std::move(a));
  out.right_ = std::make_shared<const BooleanQuery>(std::move(b));
  return out;
}

BooleanQuery BooleanQuery::Or(BooleanQuery a, BooleanQuery b) {
  BooleanQuery out;
  out.kind_ = Kind::kOr;
  out.left_ = std::make_shared<const BooleanQuery>(std::move(a));
  out.right_ = std::make_shared<const BooleanQuery>(std::move(b));
  return out;
}

BooleanQuery BooleanQuery::Not(BooleanQuery a) {
  BooleanQuery out;
  out.kind_ = Kind::kNot;
  out.left_ = std::make_shared<const BooleanQuery>(std::move(a));
  return out;
}

namespace {

void CollectLeaves(const BooleanQuery& q,
                   std::vector<const SelectionQuery*>& out) {
  switch (q.kind()) {
    case BooleanQuery::Kind::kLeaf:
      out.push_back(&q.leaf());
      break;
    case BooleanQuery::Kind::kAnd:
    case BooleanQuery::Kind::kOr:
      CollectLeaves(q.left(), out);
      CollectLeaves(q.right(), out);
      break;
    case BooleanQuery::Kind::kNot:
      CollectLeaves(q.left(), out);
      break;
  }
}

}  // namespace

std::vector<const SelectionQuery*> BooleanQuery::Leaves() const {
  std::vector<const SelectionQuery*> out;
  CollectLeaves(*this, out);
  return out;
}

bool BooleanQuery::EvaluateAt(const std::vector<bool>& verdicts,
                              size_t& next) const {
  switch (kind_) {
    case Kind::kLeaf: {
      HEDGEQ_CHECK(next < verdicts.size());
      return verdicts[next++];
    }
    case Kind::kAnd: {
      bool l = left_->EvaluateAt(verdicts, next);
      bool r = right_->EvaluateAt(verdicts, next);
      return l && r;
    }
    case Kind::kOr: {
      bool l = left_->EvaluateAt(verdicts, next);
      bool r = right_->EvaluateAt(verdicts, next);
      return l || r;
    }
    case Kind::kNot:
      return !left_->EvaluateAt(verdicts, next);
  }
  return false;
}

bool BooleanQuery::Evaluate(const std::vector<bool>& leaf_verdicts) const {
  size_t next = 0;
  bool result = EvaluateAt(leaf_verdicts, next);
  HEDGEQ_CHECK_MSG(next == leaf_verdicts.size(),
                   "verdict count must match leaf count");
  return result;
}

Result<BooleanEvaluator> BooleanEvaluator::Create(BooleanQuery query,
                                                  const ExecBudget& budget) {
  std::vector<SelectionEvaluator> evaluators;
  for (const SelectionQuery* leaf : query.Leaves()) {
    Result<SelectionEvaluator> e = SelectionEvaluator::Create(*leaf, budget);
    if (!e.ok()) return e.status();
    evaluators.push_back(std::move(e).value());
  }
  return BooleanEvaluator(std::move(query), std::move(evaluators));
}

std::vector<bool> BooleanEvaluator::Locate(const hedge::Hedge& doc) const {
  std::vector<std::vector<bool>> per_leaf;
  per_leaf.reserve(evaluators_.size());
  for (const SelectionEvaluator& e : evaluators_) {
    per_leaf.push_back(e.Locate(doc));
  }
  std::vector<bool> out(doc.num_nodes(), false);
  std::vector<bool> verdicts(evaluators_.size(), false);
  for (hedge::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind != hedge::LabelKind::kSymbol) continue;
    for (size_t l = 0; l < per_leaf.size(); ++l) {
      verdicts[l] = per_leaf[l][n];
    }
    out[n] = query_.Evaluate(verdicts);
  }
  return out;
}

}  // namespace hedgeq::query
