#include "query/phr_compile.h"

#include "hre/compile.h"
#include "strre/ops.h"
#include "util/check.h"

namespace hedgeq::query {

using automata::Determinize;
using automata::DeterminizeOptions;
using automata::HState;
using automata::LiftToSubsets;
using automata::Nha;
using strre::Dfa;
using strre::Nfa;

namespace {

// Complete one-state accept-everything DFA over [0, alphabet_size).
Dfa AcceptAllDfa(size_t alphabet_size) {
  Dfa dfa;
  strre::StateId s = dfa.AddState(true);
  for (strre::Symbol a = 0; a < alphabet_size; ++a) {
    dfa.SetTransition(s, a, s);
  }
  return dfa;
}

Nfa ShiftLetters(const Nfa& nfa, HState offset) {
  return strre::SubstituteSets(nfa, [offset](strre::Symbol q) {
    return std::vector<strre::Symbol>{q + offset};
  });
}

}  // namespace

Result<CompiledPhr> CompilePhr(const phr::Phr& phr,
                               const DeterminizeOptions& options) {
  CompiledPhr out;
  const size_t n = phr.triplets().size();

  // --- Shared automaton M: the union NHA of every triplet expression.
  // Using one state set for all M_i1/M_i2 is the paper's "without loss of
  // generality" step (disjoint union instead of full cross product; the
  // subsequent determinization and class product play the same role).
  Nha union_nha;
  std::vector<Nfa> elder_final(n);    // over union_nha states
  std::vector<Nfa> younger_final(n);  // over union_nha states
  std::vector<bool> elder_any(n, false), younger_any(n, false);
  for (size_t i = 0; i < n; ++i) {
    const phr::PointedBaseRep& t = phr.triplets()[i];
    if (t.elder == nullptr) {
      elder_any[i] = true;
    } else {
      Nha m = hre::CompileHre(t.elder);
      HState off = automata::CopyNhaInto(m, union_nha);
      elder_final[i] = ShiftLetters(m.final_nfa(), off);
    }
    if (t.younger == nullptr) {
      younger_any[i] = true;
    } else {
      Nha m = hre::CompileHre(t.younger);
      HState off = automata::CopyNhaInto(m, union_nha);
      younger_final[i] = ShiftLetters(m.final_nfa(), off);
    }
  }

  auto det = Determinize(union_nha, options);
  if (!det.ok()) return det.status();
  out.dha_ = std::move(det->dha);
  out.subsets_ = std::move(det->subsets);

  // --- Lift every final language to a DFA over M's (subset) states and
  // take the synchronous product: its states are the classes of ==.
  const size_t num_dha_states = out.dha_.num_states();
  std::vector<Dfa> components;
  components.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    components.push_back(elder_any[i]
                             ? AcceptAllDfa(num_dha_states)
                             : LiftToSubsets(elder_final[i], out.subsets_));
    components.push_back(younger_any[i]
                             ? AcceptAllDfa(num_dha_states)
                             : LiftToSubsets(younger_final[i], out.subsets_));
  }
  std::vector<strre::Symbol> state_alphabet;
  state_alphabet.reserve(num_dha_states);
  for (HState q = 0; q < num_dha_states; ++q) state_alphabet.push_back(q);
  strre::MultiDfa multi = strre::ProductAll(components, state_alphabet);
  out.equiv_ = std::move(multi.dfa);
  out.num_classes_ = static_cast<uint32_t>(out.equiv_.num_states());

  out.elder_ok_.resize(n);
  out.younger_ok_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.elder_ok_[i] = std::move(multi.component_accepts[2 * i]);
    out.younger_ok_[i] = std::move(multi.component_accepts[2 * i + 1]);
  }

  // --- Dense symbol index over the triplet alphabet.
  for (const phr::PointedBaseRep& t : phr.triplets()) {
    if (!out.symbol_index_.contains(t.label)) {
      out.symbol_index_.emplace(t.label,
                                static_cast<uint32_t>(out.symbols_.size()));
      out.symbols_.push_back(t.label);
    }
  }

  // --- L = xi(L(r)): substitute each triplet letter by its set of
  // (class1, symbol, class2) encodings (the homomorphism image of
  // Theorem 4).
  std::vector<std::vector<strre::Symbol>> images(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t si = out.SymbolIndex(phr.triplets()[i].label);
    HEDGEQ_CHECK(si != CompiledPhr::kNoSymbol);
    for (uint32_t c1 = 0; c1 < out.num_classes_; ++c1) {
      if (!out.elder_ok_[i][c1]) continue;
      for (uint32_t c2 = 0; c2 < out.num_classes_; ++c2) {
        if (!out.younger_ok_[i][c2]) continue;
        images[i].push_back(out.EncodeLetter(c1, si, c2));
      }
    }
  }
  Nfa regex_nfa = strre::CompileRegex(phr.regex());
  out.language_ = strre::SubstituteSets(
      regex_nfa,
      [&images](strre::Symbol t) { return images[t]; });

  // --- N: deterministic automaton for the mirror image of L.
  out.mirror_ = strre::Determinize(strre::ReverseNfa(out.language_));

  return out;
}

}  // namespace hedgeq::query
