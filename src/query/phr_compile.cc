#include "query/phr_compile.h"

#include <atomic>

#include "hre/compile.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "strre/ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace hedgeq::query {

using automata::Determinize;
using automata::HState;
using automata::LiftToSubsetsBounded;
using automata::Nha;
using strre::Dfa;
using strre::Nfa;

namespace {

std::atomic<PhrProductValidationHook> g_phr_product_hook{nullptr};

// Complete one-state accept-everything DFA over [0, alphabet_size).
Dfa AcceptAllDfa(size_t alphabet_size) {
  Dfa dfa;
  strre::StateId s = dfa.AddState(true);
  for (strre::Symbol a = 0; a < alphabet_size; ++a) {
    dfa.SetTransition(s, a, s);
  }
  return dfa;
}

Nfa ShiftLetters(const Nfa& nfa, HState offset) {
  return strre::SubstituteSets(nfa, [offset](strre::Symbol q) {
    return std::vector<strre::Symbol>{q + offset};
  });
}

}  // namespace

void SetPhrProductValidationHook(PhrProductValidationHook hook) {
  g_phr_product_hook.store(hook, std::memory_order_relaxed);
}

PhrProductValidationHook GetPhrProductValidationHook() {
  return g_phr_product_hook.load(std::memory_order_relaxed);
}

Result<CompiledPhr> CompilePhr(const phr::Phr& phr,
                               const ExecBudget& budget) {
  BudgetScope scope(budget);
  return CompilePhr(phr, scope);
}

Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope& scope) {
  return CompilePhr(phr, scope, nullptr);
}

Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope& scope,
                               PhrWitness* witness) {
  return CompilePhr(phr, scope, witness, std::string_view());
}

Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope& scope,
                               PhrWitness* witness,
                               std::string_view cache_scope) {
  HEDGEQ_FAILPOINT("phr/compile");
  HEDGEQ_OBS_SPAN(span, obs::spans::kPhrCompile);
  CompiledPhr out;
  const size_t n = phr.triplets().size();

  // The inline hook needs a full certificate even when the caller did not
  // ask for one: record into a local in that case.
  PhrWitness local_witness;
  if (witness == nullptr && GetPhrProductValidationHook() != nullptr) {
    witness = &local_witness;
  }

  // --- Shared automaton M: the union NHA of every triplet expression.
  // Using one state set for all M_i1/M_i2 is the paper's "without loss of
  // generality" step (disjoint union instead of full cross product; the
  // subsequent determinization and class product play the same role).
  Nha union_nha;
  std::vector<Nfa> elder_final(n);    // over union_nha states
  std::vector<Nfa> younger_final(n);  // over union_nha states
  std::vector<bool> elder_any(n, false), younger_any(n, false);
  for (size_t i = 0; i < n; ++i) {
    const phr::PointedBaseRep& t = phr.triplets()[i];
    if (t.elder == nullptr) {
      elder_any[i] = true;
    } else {
      Result<Nha> m = hre::CompileHre(t.elder, scope);
      if (!m.ok()) return m.status();
      HState off = automata::CopyNhaInto(*m, union_nha);
      elder_final[i] = ShiftLetters(m->final_nfa(), off);
    }
    if (t.younger == nullptr) {
      younger_any[i] = true;
    } else {
      Result<Nha> m = hre::CompileHre(t.younger, scope);
      if (!m.ok()) return m.status();
      HState off = automata::CopyNhaInto(*m, union_nha);
      younger_final[i] = ShiftLetters(m->final_nfa(), off);
    }
  }

  // Scoped caching: the evaluator overloads key the shared determinization
  // by the PHR's canonical text, so a repeat compile of the same query hits
  // the certificate cache without serializing the union NHA for the key.
  // The cache needs the det witness to persist an entry, so force local
  // recording when the caller did not ask for one.
  automata::DeterminizeCache* cache =
      cache_scope.empty() ? nullptr : automata::GetDeterminizeCache();
  automata::DeterminizeWitness local_det;
  automata::DeterminizeWitness* det_sink =
      witness != nullptr ? &witness->det
                         : (cache != nullptr ? &local_det : nullptr);

  Result<automata::Determinized> det = [&]() -> Result<automata::Determinized> {
    if (cache != nullptr) {
      automata::Determinized hit{automata::Dha(1, 1, 0, 0), {}};
      if (cache->LookupScoped(cache_scope, union_nha, &hit, det_sink)) {
        return hit;
      }
    }
    Result<automata::Determinized> fresh =
        Determinize(union_nha, scope, det_sink);
    if (fresh.ok() && cache != nullptr && det_sink != nullptr) {
      cache->StoreScoped(cache_scope, union_nha, *fresh, *det_sink);
    }
    return fresh;
  }();
  if (!det.ok()) return det.status();
  if (witness != nullptr) {
    witness->union_nha = union_nha;
    witness->elder_final = elder_final;
    witness->younger_final = younger_final;
    witness->elder_any = elder_any;
    witness->younger_any = younger_any;
  }
  out.dha_ = std::move(det->dha);
  out.subsets_ = std::move(det->subsets);

  // --- Lift every final language to a DFA over M's (subset) states and
  // take the synchronous product: its states are the classes of ==.
  const size_t num_dha_states = out.dha_.num_states();
  std::vector<Dfa> components;
  components.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    if (elder_any[i]) {
      components.push_back(AcceptAllDfa(num_dha_states));
    } else {
      Result<Dfa> lifted =
          LiftToSubsetsBounded(elder_final[i], out.subsets_, scope);
      if (!lifted.ok()) return lifted.status();
      components.push_back(std::move(lifted).value());
    }
    if (younger_any[i]) {
      components.push_back(AcceptAllDfa(num_dha_states));
    } else {
      Result<Dfa> lifted =
          LiftToSubsetsBounded(younger_final[i], out.subsets_, scope);
      if (!lifted.ok()) return lifted.status();
      components.push_back(std::move(lifted).value());
    }
  }
  if (witness != nullptr) witness->components = components;
  std::vector<strre::Symbol> state_alphabet;
  state_alphabet.reserve(num_dha_states);
  for (HState q = 0; q < num_dha_states; ++q) state_alphabet.push_back(q);
  HEDGEQ_FAILPOINT("phr/product");
  Result<strre::MultiDfa> multi =
      strre::ProductAllBounded(components, state_alphabet, scope);
  if (!multi.ok()) return multi.status();
  out.equiv_ = std::move(multi->dfa);
  out.num_classes_ = static_cast<uint32_t>(out.equiv_.num_states());

  out.elder_ok_.resize(n);
  out.younger_ok_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.elder_ok_[i] = std::move(multi->component_accepts[2 * i]);
    out.younger_ok_[i] = std::move(multi->component_accepts[2 * i + 1]);
  }

  // --- Dense symbol index over the triplet alphabet.
  for (const phr::PointedBaseRep& t : phr.triplets()) {
    if (!out.symbol_index_.contains(t.label)) {
      out.symbol_index_.emplace(t.label,
                                static_cast<uint32_t>(out.symbols_.size()));
      out.symbols_.push_back(t.label);
    }
  }

  // --- L = xi(L(r)): substitute each triplet letter by its set of
  // (class1, symbol, class2) encodings (the homomorphism image of
  // Theorem 4).
  std::vector<std::vector<strre::Symbol>> images(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t si = out.SymbolIndex(phr.triplets()[i].label);
    HEDGEQ_CHECK(si != CompiledPhr::kNoSymbol);
    // The image of one triplet letter is worst-case classes^2 letters.
    HEDGEQ_RETURN_IF_ERROR(scope.ChargeSteps(
        static_cast<size_t>(out.num_classes_) * out.num_classes_ + 1,
        "phr/xi"));
    for (uint32_t c1 = 0; c1 < out.num_classes_; ++c1) {
      if (!out.elder_ok_[i][c1]) continue;
      for (uint32_t c2 = 0; c2 < out.num_classes_; ++c2) {
        if (!out.younger_ok_[i][c2]) continue;
        images[i].push_back(out.EncodeLetter(c1, si, c2));
      }
    }
    HEDGEQ_RETURN_IF_ERROR(scope.ChargeBytes(
        images[i].size() * sizeof(strre::Symbol), "phr/xi"));
  }
  Nfa regex_nfa = strre::CompileRegex(phr.regex());
  out.language_ = strre::SubstituteSets(
      regex_nfa,
      [&images](strre::Symbol t) { return images[t]; });

  // --- N: deterministic automaton for the mirror image of L.
  HEDGEQ_FAILPOINT("phr/mirror");
  Result<Dfa> mirror =
      strre::DeterminizeBounded(strre::ReverseNfa(out.language_), scope);
  if (!mirror.ok()) return mirror.status();
  out.mirror_ = std::move(mirror).value();

  if (PhrProductValidationHook hook = GetPhrProductValidationHook();
      hook != nullptr && witness != nullptr) {
    HEDGEQ_RETURN_IF_ERROR(hook(phr, out, *witness));
  }

  if (obs::Enabled()) {
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrCompileTriplets, n);
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrCompileClasses, out.num_classes_);
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrCompileMirrorStates,
                     out.mirror_.num_states());
    span.AddArg("triplets", n);
    span.AddArg("classes", out.num_classes_);
    span.AddArg("mirror_states", out.mirror_.num_states());
  }
  return out;
}

}  // namespace hedgeq::query
