#ifndef HEDGEQ_QUERY_PHR_COMPILE_H_
#define HEDGEQ_QUERY_PHR_COMPILE_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "automata/determinize.h"
#include "automata/dha.h"
#include "phr/phr.h"
#include "strre/automaton.h"
#include "util/status.h"

namespace hedgeq::query {

/// Certificate of the Theorem 4 shared determinization: the union NHA that
/// fed the subset construction (before it was consumed by the pipeline)
/// plus the determinization witness, so verify::CheckDeterminize can
/// validate the query compile's central transformation independently.
struct PhrWitness {
  automata::Nha union_nha;
  automata::DeterminizeWitness det;
  // Theorem 4 class-product extension (verify::CheckPhrProduct): per
  // triplet, the final NFA of the elder/younger expression rewritten over
  // the union NHA's states (empty NFA when the triplet has no condition —
  // see the matching *_any flag), plus the lifted component DFAs exactly
  // as they fed the synchronous product (components[2i] = elder of triplet
  // i, components[2i+1] = younger).
  std::vector<strre::Nfa> elder_final;
  std::vector<strre::Nfa> younger_final;
  std::vector<bool> elder_any;
  std::vector<bool> younger_any;
  std::vector<strre::Dfa> components;
};

/// The Theorem 4 artifacts for a pointed hedge representation r:
///  - one deterministic hedge automaton M shared by every hedge regular
///    expression occurring in r's triplets (their union NHA, determinized),
///  - the right-invariant equivalence relation over Q*, realized as a
///    complete DFA over M's states whose states are the classes (the
///    synchronous product of all lifted final-language DFAs saturates every
///    F_i1/F_i2),
///  - saturation tables telling which classes lie inside each F_i1/F_i2,
///  - the regular set L over (Q*/==) x Sigma x (Q*/==) (letters encoded as
///    integers), and
///  - the deterministic string automaton N accepting the mirror image of L
///    (run top-down during the second traversal of Algorithm 1).
class CompiledPhr {
 public:
  /// Dense index of a symbol within the triplet alphabet; kNoSymbol when a
  /// document symbol occurs in no triplet (such nodes can never be located).
  static constexpr uint32_t kNoSymbol = UINT32_MAX;

  uint32_t num_classes() const { return num_classes_; }
  uint32_t num_symbols() const {
    return static_cast<uint32_t>(symbols_.size());
  }

  uint32_t SymbolIndex(hedge::SymbolId s) const {
    auto it = symbol_index_.find(s);
    return it == symbol_index_.end() ? kNoSymbol : it->second;
  }
  hedge::SymbolId SymbolAt(uint32_t index) const { return symbols_[index]; }

  /// Encodes one letter of the triplet alphabet.
  strre::Symbol EncodeLetter(uint32_t elder_class, uint32_t symbol_index,
                             uint32_t younger_class) const {
    return (elder_class * num_symbols() + symbol_index) * num_classes_ +
           younger_class;
  }

  const automata::Dha& dha() const { return dha_; }
  const std::vector<Bitset>& subsets() const { return subsets_; }
  const strre::Dfa& equiv() const { return equiv_; }
  const strre::Nfa& L() const { return language_; }
  const strre::Dfa& mirror() const { return mirror_; }

  /// Does equivalence class `cls` lie inside F_i1 (elder condition of
  /// triplet i)? Unconditional triplets accept every class.
  bool ElderClassOk(size_t triplet, uint32_t cls) const {
    return elder_ok_[triplet][cls];
  }
  bool YoungerClassOk(size_t triplet, uint32_t cls) const {
    return younger_ok_[triplet][cls];
  }
  size_t num_triplets() const { return elder_ok_.size(); }

 private:
  friend Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope&,
                                        PhrWitness*, std::string_view);

  automata::Dha dha_{1, 1, 0, 0};
  std::vector<Bitset> subsets_;
  strre::Dfa equiv_;
  uint32_t num_classes_ = 0;
  std::vector<hedge::SymbolId> symbols_;
  std::unordered_map<hedge::SymbolId, uint32_t> symbol_index_;
  std::vector<std::vector<bool>> elder_ok_;
  std::vector<std::vector<bool>> younger_ok_;
  strre::Nfa language_;
  strre::Dfa mirror_;
};

/// Inline certification hook (HEDGEQ_CERTIFY): when installed, every
/// witnessed CompilePhr validates its class product, saturation tables,
/// xi-image language and mirror before returning (a rejection surfaces as
/// the compile's error status). When the caller passed no witness sink,
/// CompilePhr records into a local one so the hook always sees the full
/// certificate. Installed by hedgeq_inline_certify.
using PhrProductValidationHook = Status (*)(const phr::Phr& phr,
                                            const CompiledPhr& compiled,
                                            const PhrWitness& witness);
void SetPhrProductValidationHook(PhrProductValidationHook hook);
PhrProductValidationHook GetPhrProductValidationHook();

/// Theorem 4: compiles a pointed hedge representation. Exponential in the
/// representation size in the worst case (determinization of M and of N,
/// and the class product); the produced artifacts evaluate documents in
/// linear time. Every exponential stage charges the budget, so compilation
/// fails with kResourceExhausted — naming the stage and the count reached —
/// instead of overrunning; PhrEvaluator falls back to the lazy engine then.
Result<CompiledPhr> CompilePhr(const phr::Phr& phr,
                               const ExecBudget& budget = {});

/// As above, charging an existing scope (cumulative caps across a larger
/// pipeline, e.g. SelectionEvaluator::Create).
Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope& scope);

/// As above, additionally recording the Theorem 4 determinization
/// certificate into `witness` (ignored when null).
Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope& scope,
                               PhrWitness* witness);

/// As above, additionally consulting the installed DeterminizeCache under a
/// pipeline-scoped key: `cache_scope` is opaque stable key material — the
/// PhrEvaluator/SelectionEvaluator vocabulary overloads pass the PHR's
/// canonical text rendered against the vocabulary — so the whole Theorem 4
/// determinization hits without re-serializing the union NHA for the key.
/// The cache's validation ladder is unchanged (the stored input automaton
/// is still byte-compared against the union NHA). Empty `cache_scope`
/// disables scoped caching; the per-Determinize input-keyed cache still
/// applies either way.
Result<CompiledPhr> CompilePhr(const phr::Phr& phr, BudgetScope& scope,
                               PhrWitness* witness,
                               std::string_view cache_scope);

}  // namespace hedgeq::query

#endif  // HEDGEQ_QUERY_PHR_COMPILE_H_
