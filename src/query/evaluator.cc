#include "query/evaluator.h"

#include <numeric>

#include "lint/analyze.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "obs/scope.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace hedgeq::query {

using automata::HState;
using hedge::Hedge;
using hedge::kNullNode;
using hedge::NodeId;

SiblingClasses ComputeSiblingClasses(const Hedge& doc,
                                     const std::vector<HState>& states,
                                     const strre::Dfa& equiv) {
  SiblingClasses out;
  out.elder.assign(doc.num_nodes(), equiv.start());
  out.younger.assign(doc.num_nodes(), equiv.start());
  const size_t num_classes = equiv.num_states();

  auto process_group = [&](const std::vector<NodeId>& kids) {
    if (kids.empty()) return;
    // Prefix classes: forward run of the (complete) == DFA.
    strre::StateId s = equiv.start();
    for (NodeId kid : kids) {
      out.elder[kid] = s;
      s = equiv.Next(s, states[kid]);
      HEDGEQ_CHECK_MSG(s != strre::kNoState, "equiv DFA must be complete");
    }
    // Suffix classes: compose transition functions right-to-left. g maps
    // each == state to the state reached after reading the suffix that
    // starts right of the current position.
    std::vector<strre::StateId> g(num_classes);
    std::iota(g.begin(), g.end(), 0);
    std::vector<strre::StateId> next_g(num_classes);
    for (size_t jj = kids.size(); jj-- > 0;) {
      out.younger[kids[jj]] = g[equiv.start()];
      if (jj == 0) break;
      for (uint32_t c = 0; c < num_classes; ++c) {
        strre::StateId step = equiv.Next(c, states[kids[jj]]);
        HEDGEQ_CHECK(step != strre::kNoState);
        next_g[c] = g[step];
      }
      g.swap(next_g);
    }
  };

  process_group(doc.roots());
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind == hedge::LabelKind::kSymbol &&
        doc.first_child(n) != kNullNode) {
      process_group(doc.ChildrenOf(n));
    }
  }
  return out;
}

Result<PhrEvaluator> PhrEvaluator::Create(const phr::Phr& phr,
                                          const ExecBudget& budget) {
  return Create(phr, budget, std::string_view());
}

Result<PhrEvaluator> PhrEvaluator::Create(const phr::Phr& phr,
                                          const ExecBudget& budget,
                                          std::string_view cache_scope) {
  BudgetScope scope(budget);
  Result<CompiledPhr> compiled =
      CompilePhr(phr, scope, nullptr, cache_scope);
  if (compiled.ok()) {
    HEDGEQ_OBS_COUNT(obs::metrics::kQueryEagerCompiles, 1);
    return PhrEvaluator(std::move(compiled).value());
  }
  if (!IsDegradable(compiled.status().code())) {
    return compiled.status();
  }
  // The exponential preprocessing blew its budget (or its wall-clock
  // deadline); degrade to the lazy engine, which answers the same queries
  // with bounded memory. A deadline that has truly passed fails the lazy
  // Create too and surfaces as kDeadlineExceeded.
  Result<LazyPhrEvaluator> lazy = LazyPhrEvaluator::Create(phr, budget);
  if (!lazy.ok()) return lazy.status();
  HEDGEQ_OBS_COUNT(obs::metrics::kQueryLazyFallbacks, 1);
  // Budget outcome for the flight record: the answer is still exact, but
  // this query ran on the degraded engine.
  if (auto* qscope = obs::QueryScope::Current(); qscope != nullptr) {
    qscope->Annotate("outcome", "degraded_lazy");
  }
  PhrEvaluator out;
  out.lazy_ = std::move(lazy).value();
  return out;
}

Result<PhrEvaluator> PhrEvaluator::Create(
    const phr::Phr& phr, const ExecBudget& budget,
    const hedge::Vocabulary& vocab, const lint::LintOptions& preflight,
    std::vector<lint::Diagnostic>* diagnostics) {
  std::vector<lint::Diagnostic> local;
  std::vector<lint::Diagnostic>& sink =
      diagnostics != nullptr ? *diagnostics : local;
  const size_t begin = sink.size();
  lint::LintPhrTriplets(phr, vocab, preflight, sink);
  if (preflight.fail_on_error) {
    HEDGEQ_RETURN_IF_ERROR(lint::ErrorStatus(sink, begin));
  }
  // The vocabulary is in hand, so the Theorem 4 compile can be keyed
  // end-to-end in the certificate cache by the PHR's canonical text.
  return Create(phr, budget, phr.ToString(vocab));
}

automata::EvalStats PhrEvaluator::stats() const {
  if (!lazy_.has_value()) return automata::EvalStats{};
  automata::EvalStats s = lazy_->stats();
  s.fallback_used = true;
  return s;
}

std::vector<bool> PhrEvaluator::Locate(const Hedge& doc) const {
  if (lazy_.has_value()) {
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalFallbackRuns, 1);
    return lazy_->Locate(doc);
  }
  // First traversal: bottom-up state assignment by M, then sibling classes.
  std::vector<HState> states;
  SiblingClasses classes;
  {
    HEDGEQ_OBS_SPAN(pass1, obs::spans::kPhrEvalPass1);
    states = compiled_->dha().Run(doc);
    classes = ComputeSiblingClasses(doc, states, compiled_->equiv());
    if (obs::Enabled()) {
      HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalPass1Nodes, doc.num_nodes());
      pass1.AddArg("nodes", doc.num_nodes());
    }
  }
  HEDGEQ_OBS_SPAN(pass2, obs::spans::kPhrEvalPass2);

  // Second traversal: top-down run of N (which accepts the mirror of L, so
  // feeding triplets from the top level toward the node evaluates the
  // bottom-to-top decomposition sequence). Arena ids ascend from parents to
  // children, so a forward sweep visits parents first.
  const strre::Dfa& mirror = compiled_->mirror();
  std::vector<strre::StateId> nstate(doc.num_nodes(), strre::kNoState);
  std::vector<bool> located(doc.num_nodes(), false);
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind != hedge::LabelKind::kSymbol) continue;
    NodeId parent = doc.parent(n);
    strre::StateId from =
        parent == kNullNode ? mirror.start() : nstate[parent];
    if (from == strre::kNoState) continue;  // dead branch
    uint32_t si = compiled_->SymbolIndex(doc.label(n).id);
    if (si == CompiledPhr::kNoSymbol) continue;  // label in no triplet
    strre::Symbol letter =
        compiled_->EncodeLetter(classes.elder[n], si, classes.younger[n]);
    strre::StateId to = mirror.Next(from, letter);
    nstate[n] = to;
    located[n] = to != strre::kNoState && mirror.IsAccepting(to);
  }
  // Seeded-bug probe: report a wrong node set (the first symbol node
  // flipped) so the selection oracle must catch the eager engine lying.
  if (!failpoint::Check("phr/select-wrong-node").ok()) {
    for (NodeId n = 0; n < doc.num_nodes(); ++n) {
      if (doc.label(n).kind == hedge::LabelKind::kSymbol) {
        located[n] = !located[n];
        break;
      }
    }
  }
  if (obs::Enabled()) {
    size_t hits = 0;
    for (NodeId n = 0; n < doc.num_nodes(); ++n) hits += located[n] ? 1 : 0;
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalPass2Nodes, doc.num_nodes());
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalLocated, hits);
    pass2.AddArg("nodes", doc.num_nodes());
    pass2.AddArg("located", hits);
  }
  return located;
}

}  // namespace hedgeq::query
