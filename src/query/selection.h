#ifndef HEDGEQ_QUERY_SELECTION_H_
#define HEDGEQ_QUERY_SELECTION_H_

#include <optional>
#include <string>
#include <vector>

#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "hre/ast.h"
#include "hre/compile.h"
#include "phr/phr.h"
#include "query/evaluator.h"

namespace hedgeq::query {

/// A selection query select(e1, e2) (Definition 20): e1 is a hedge regular
/// expression constraining the subhedge (descendants) of the node, e2 a
/// pointed hedge representation constraining its envelope (everything else).
struct SelectionQuery {
  hre::Hre subhedge;   // e1; nullptr = no condition on descendants
  phr::Phr envelope;   // e2
};

/// Parses "select(e1; e2)" where e1 is an HRE (or '*' for no condition) and
/// e2 a pointed hedge representation. Example from Section 6:
///   select((b|$x)*; [(); a; b] [b; a; ()])
Result<SelectionQuery> ParseSelectionQuery(std::string_view text,
                                           hedge::Vocabulary& vocab);

/// Production evaluator: Theorem 3's marked automaton M-down-e1 handles the
/// subhedge condition in the first traversal; Algorithm 1 handles the
/// envelope condition. Preprocessing is exponential in the query, each
/// document evaluates in O(nodes).
///
/// Robustness: both exponential stages (determinizing the subhedge
/// automaton, compiling the envelope) run under `budget`; on
/// kResourceExhausted each independently degrades to its lazy engine
/// (LazyDha marks / LazyPhrEvaluator), so Create fails only on genuinely
/// bad input. fallback_used()/stats() report which engines are active.
class SelectionEvaluator {
 public:
  static Result<SelectionEvaluator> Create(const SelectionQuery& query,
                                           const ExecBudget& budget = {});

  /// Opt-in pre-flight lint: statically analyzes e1 and every envelope
  /// triplet before any exponential preprocessing runs. Findings land in
  /// `diagnostics` (when non-null); with preflight.fail_on_error an
  /// empty-language condition rejects the query as kInvalidArgument
  /// instead of paying to compile an evaluator that cannot match.
  static Result<SelectionEvaluator> Create(
      const SelectionQuery& query, const ExecBudget& budget,
      const hedge::Vocabulary& vocab, const lint::LintOptions& preflight,
      std::vector<lint::Diagnostic>* diagnostics = nullptr);

  /// located[n] == true iff node n is located by the query (Definition 22).
  std::vector<bool> Locate(const hedge::Hedge& doc) const;

  /// Node ids located, in document order.
  std::vector<hedge::NodeId> LocatedNodes(const hedge::Hedge& doc) const;

  const PhrEvaluator& phr_evaluator() const { return *phr_; }
  /// The determinized subhedge automaton, when e1 was given and its
  /// determinization fit the budget.
  const std::optional<automata::Dha>& subhedge_dha() const {
    return subhedge_dha_;
  }

  /// True when any stage degraded to its lazy engine.
  bool fallback_used() const {
    return subhedge_lazy_.has_value() || phr_->fallback_used();
  }
  /// Merged expenditure of every lazy engine in use.
  automata::EvalStats stats() const;

 private:
  SelectionEvaluator() = default;

  /// Shared body of both Create overloads; `envelope_cache_scope` keys the
  /// Theorem 4 envelope compile in the certificate cache (empty disables —
  /// the budget-only overload has no vocabulary to render the key with).
  static Result<SelectionEvaluator> CreateImpl(
      const SelectionQuery& query, const ExecBudget& budget,
      std::string_view envelope_cache_scope);

  std::optional<automata::Dha> subhedge_dha_;
  std::optional<automata::LazyDha> subhedge_lazy_;
  std::optional<PhrEvaluator> phr_;
};

/// Reference oracle: evaluates Definition 22 literally, extracting the
/// subhedge and envelope of every symbol node and testing them directly.
/// Quadratic (and worse) in the document; used for tests and as the naive
/// complexity baseline of experiment E6.
class NaiveSelectionEvaluator {
 public:
  explicit NaiveSelectionEvaluator(const SelectionQuery& query);

  std::vector<bool> Locate(const hedge::Hedge& doc) const;

 private:
  std::optional<automata::Nha> subhedge_nha_;
  phr::Phr envelope_;
  phr::NaivePhrMatcher matcher_;
};

}  // namespace hedgeq::query

#endif  // HEDGEQ_QUERY_SELECTION_H_
