#ifndef HEDGEQ_QUERY_EVALUATOR_H_
#define HEDGEQ_QUERY_EVALUATOR_H_

#include <vector>

#include "hedge/hedge.h"
#include "query/phr_compile.h"

namespace hedgeq::query {

/// Per-node sibling context computed during the first traversal: the
/// equivalence class (a state of the == DFA) of the elder-sibling state
/// sequence and of the younger-sibling state sequence.
struct SiblingClasses {
  std::vector<uint32_t> elder;
  std::vector<uint32_t> younger;
};

/// Computes elder/younger classes for every node in O(nodes * |classes|):
/// prefixes by a forward run of the == DFA, suffixes by right-to-left
/// composition of its transition functions (a right-invariant DFA cannot be
/// extended leftward state-by-state, but its transition functions compose).
SiblingClasses ComputeSiblingClasses(const hedge::Hedge& doc,
                                     const std::vector<automata::HState>& states,
                                     const strre::Dfa& equiv);

/// Algorithm 1: evaluates a compiled pointed hedge representation against
/// documents with two depth-first traversals, linear in the node count.
class PhrEvaluator {
 public:
  explicit PhrEvaluator(CompiledPhr compiled) : compiled_(std::move(compiled)) {}

  /// Compiles (Theorem 4) and wraps. Exponential-time preprocessing,
  /// linear-time evaluation.
  static Result<PhrEvaluator> Create(
      const phr::Phr& phr, const automata::DeterminizeOptions& options = {});

  /// located[n] == true iff the envelope of node n matches the
  /// representation. Only symbol-labeled nodes can be located.
  std::vector<bool> Locate(const hedge::Hedge& doc) const;

  const CompiledPhr& compiled() const { return compiled_; }

 private:
  CompiledPhr compiled_;
};

}  // namespace hedgeq::query

#endif  // HEDGEQ_QUERY_EVALUATOR_H_
