#ifndef HEDGEQ_QUERY_EVALUATOR_H_
#define HEDGEQ_QUERY_EVALUATOR_H_

#include <optional>
#include <vector>

#include "hedge/hedge.h"
#include "lint/diagnostics.h"
#include "query/lazy_phr.h"
#include "query/phr_compile.h"

namespace hedgeq::query {

/// Per-node sibling context computed during the first traversal: the
/// equivalence class (a state of the == DFA) of the elder-sibling state
/// sequence and of the younger-sibling state sequence.
struct SiblingClasses {
  std::vector<uint32_t> elder;
  std::vector<uint32_t> younger;
};

/// Computes elder/younger classes for every node in O(nodes * |classes|):
/// prefixes by a forward run of the == DFA, suffixes by right-to-left
/// composition of its transition functions (a right-invariant DFA cannot be
/// extended leftward state-by-state, but its transition functions compose).
SiblingClasses ComputeSiblingClasses(const hedge::Hedge& doc,
                                     const std::vector<automata::HState>& states,
                                     const strre::Dfa& equiv);

/// Algorithm 1: evaluates a compiled pointed hedge representation against
/// documents with two depth-first traversals, linear in the node count.
///
/// Robustness: Create first attempts the eager Theorem 4 compilation under
/// `budget`; if (and only if) that fails with kResourceExhausted it falls
/// back transparently to the LazyPhrEvaluator, which answers the same
/// queries with bounded memory. Inspect fallback_used()/stats() to learn
/// which engine is active and what it spent.
class PhrEvaluator {
 public:
  explicit PhrEvaluator(CompiledPhr compiled) : compiled_(std::move(compiled)) {}

  /// Compiles (Theorem 4) and wraps; on budget exhaustion degrades to the
  /// lazy engine. Any other error (bad input, injected fault) propagates.
  static Result<PhrEvaluator> Create(const phr::Phr& phr,
                                     const ExecBudget& budget = {});

  /// As above, additionally keying the whole compile in the installed
  /// certificate cache under `cache_scope` (opaque stable key material —
  /// the vocabulary overload below passes the PHR's canonical text); empty
  /// disables scoped caching. See CompilePhr's cache_scope overload.
  static Result<PhrEvaluator> Create(const phr::Phr& phr,
                                     const ExecBudget& budget,
                                     std::string_view cache_scope);

  /// Opt-in pre-flight lint: statically analyzes every triplet condition
  /// of `phr` before paying for compilation. Findings are appended to
  /// `diagnostics` (when non-null); an error-severity finding (a triplet
  /// condition with an empty language makes the query unsatisfiable)
  /// rejects the representation with kInvalidArgument when
  /// preflight.fail_on_error is set. `vocab` renders expression spans.
  static Result<PhrEvaluator> Create(
      const phr::Phr& phr, const ExecBudget& budget,
      const hedge::Vocabulary& vocab, const lint::LintOptions& preflight,
      std::vector<lint::Diagnostic>* diagnostics = nullptr);

  /// located[n] == true iff the envelope of node n matches the
  /// representation. Only symbol-labeled nodes can be located. Both engines
  /// return identical vectors.
  std::vector<bool> Locate(const hedge::Hedge& doc) const;

  /// True when eager compilation exceeded its budget and the lazy engine
  /// answers Locate.
  bool fallback_used() const { return lazy_.has_value(); }

  /// Engine expenditure; fallback_used mirrors fallback_used().
  automata::EvalStats stats() const;

  /// The eager artifacts, or nullptr when running on the lazy engine.
  const CompiledPhr* compiled() const {
    return compiled_.has_value() ? &*compiled_ : nullptr;
  }

 private:
  PhrEvaluator() = default;

  std::optional<CompiledPhr> compiled_;
  std::optional<LazyPhrEvaluator> lazy_;
};

}  // namespace hedgeq::query

#endif  // HEDGEQ_QUERY_EVALUATOR_H_
